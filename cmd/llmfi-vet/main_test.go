package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// captureStdout runs fn with os.Stdout redirected and returns what it
// printed.
func captureStdout(t *testing.T, fn func()) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = w
	defer func() { os.Stdout = old }()
	fn()
	w.Close()
	var buf bytes.Buffer
	if _, err := io.Copy(&buf, r); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// writeModule materializes a synthetic mini-module in a temp dir.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		p := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

const goMod = "module minimod\n\ngo 1.22\n"

func TestExitCodeFindings(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": goMod,
		// The package path minimod/internal/core matches the determinism
		// analyzer's scope suffix, so the bare wall-clock read is a finding.
		"internal/core/clock.go": `package core

import "time"

func Stamp() time.Time { return time.Now() }
`,
	})
	if got := run([]string{"-C", dir, "./..."}); got != 1 {
		t.Fatalf("exit code = %d, want 1 (findings)", got)
	}
}

func TestExitCodeClean(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": goMod,
		"internal/core/clock.go": `package core

import "time"

func Stamp() time.Time {
	return time.Now() //llmfi:allow determinism integration test: telemetry only
}
`,
		// A package outside every analyzer scope is not inspected at all.
		"pkg/util/util.go": `package util

import "time"

func Stamp() time.Time { return time.Now() }
`,
	})
	if got := run([]string{"-C", dir, "./..."}); got != 0 {
		t.Fatalf("exit code = %d, want 0 (clean)", got)
	}
}

func TestExitCodeUsage(t *testing.T) {
	if got := run([]string{"-run", "bogus"}); got != 2 {
		t.Fatalf("exit code = %d, want 2 (unknown analyzer)", got)
	}
	dir := writeModule(t, map[string]string{"go.mod": goMod})
	if got := run([]string{"-C", dir, "./does/not/exist"}); got != 2 {
		t.Fatalf("exit code = %d, want 2 (load failure)", got)
	}
}

func TestUnknownRunNameListsValid(t *testing.T) {
	// The usage error must name the bad analyzer and list the valid ones,
	// so a typo is a one-round-trip fix.
	msg := captureStderr(t, func() {
		if got := run([]string{"-run", "guardedbby"}); got != 2 {
			t.Fatalf("exit code = %d, want 2", got)
		}
	})
	if !strings.Contains(msg, "unknown analyzer guardedbby") {
		t.Errorf("stderr %q does not name the unknown analyzer", msg)
	}
	for _, name := range []string{"guardedby", "atomicmix", "golife", "wireschema", "determinism"} {
		if !strings.Contains(msg, name) {
			t.Errorf("stderr %q does not list valid analyzer %s", msg, name)
		}
	}
}

// captureStderr runs fn with os.Stderr redirected and returns what it
// printed.
func captureStderr(t *testing.T, fn func()) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stderr
	os.Stderr = w
	defer func() { os.Stderr = old }()
	fn()
	w.Close()
	var buf bytes.Buffer
	if _, err := io.Copy(&buf, r); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestSuppressionsListing(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": goMod,
		"internal/core/clock.go": `package core

import "time"

func Stamp() time.Time {
	return time.Now() //llmfi:allow determinism telemetry stamp only
}
`,
	})
	var code int
	out := captureStdout(t, func() {
		code = run([]string{"-C", dir, "-suppressions", "./..."})
	})
	if code != 0 {
		t.Fatalf("exit code = %d, want 0 (well-formed allows)", code)
	}
	if !strings.Contains(out, "clock.go:6:") ||
		!strings.Contains(out, "[determinism]") ||
		!strings.Contains(out, "telemetry stamp only") {
		t.Errorf("suppressions listing missing file:line/analyzer/reason:\n%s", out)
	}
}

func TestSuppressionsMalformed(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": goMod,
		"internal/core/clock.go": `package core

import "time"

func Stamp() time.Time {
	return time.Now() //llmfi:allow determinism
}
`,
	})
	var code int
	out := captureStdout(t, func() {
		code = run([]string{"-C", dir, "-suppressions", "./..."})
	})
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (malformed allow)", code)
	}
	if !strings.Contains(out, "needs a reason") {
		t.Errorf("malformed allow not surfaced in listing:\n%s", out)
	}
}

func TestListExitsZero(t *testing.T) {
	if got := run([]string{"-list"}); got != 0 {
		t.Fatalf("exit code = %d, want 0 (-list)", got)
	}
}
