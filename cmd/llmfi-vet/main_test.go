package main

import (
	"os"
	"path/filepath"
	"testing"
)

// writeModule materializes a synthetic mini-module in a temp dir.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		p := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

const goMod = "module minimod\n\ngo 1.22\n"

func TestExitCodeFindings(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": goMod,
		// The package path minimod/internal/core matches the determinism
		// analyzer's scope suffix, so the bare wall-clock read is a finding.
		"internal/core/clock.go": `package core

import "time"

func Stamp() time.Time { return time.Now() }
`,
	})
	if got := run([]string{"-C", dir, "./..."}); got != 1 {
		t.Fatalf("exit code = %d, want 1 (findings)", got)
	}
}

func TestExitCodeClean(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": goMod,
		"internal/core/clock.go": `package core

import "time"

func Stamp() time.Time {
	return time.Now() //llmfi:allow determinism integration test: telemetry only
}
`,
		// A package outside every analyzer scope is not inspected at all.
		"pkg/util/util.go": `package util

import "time"

func Stamp() time.Time { return time.Now() }
`,
	})
	if got := run([]string{"-C", dir, "./..."}); got != 0 {
		t.Fatalf("exit code = %d, want 0 (clean)", got)
	}
}

func TestExitCodeUsage(t *testing.T) {
	if got := run([]string{"-run", "bogus"}); got != 2 {
		t.Fatalf("exit code = %d, want 2 (unknown analyzer)", got)
	}
	dir := writeModule(t, map[string]string{"go.mod": goMod})
	if got := run([]string{"-C", dir, "./does/not/exist"}); got != 2 {
		t.Fatalf("exit code = %d, want 2 (load failure)", got)
	}
}

func TestListExitsZero(t *testing.T) {
	if got := run([]string{"-list"}); got != 0 {
		t.Fatalf("exit code = %d, want 0 (-list)", got)
	}
}
