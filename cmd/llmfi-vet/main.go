// Command llmfi-vet runs the repository's invariant analyzers
// (internal/lint) over the given packages and exits non-zero on
// findings. It is the static half of the methodology's correctness
// story: determinism, hook purity, copy-on-write weight discipline,
// float64 checksum math, context-first cancellation, lock discipline
// (guardedby), atomic/plain access consistency (atomicmix), goroutine
// lifecycle (golife), and wire-schema drift (wireschema) are enforced
// before a campaign ever runs.
//
// Usage:
//
//	llmfi-vet [flags] [packages]
//
// With no packages, ./... is analyzed from the current directory.
// Findings print as file:line:col: [analyzer] message. Suppress a
// finding with //llmfi:allow <analyzer> <reason> on the offending line
// or the line directly above it; the reason is mandatory.
// -suppressions lists every allow in scope with its reason — the
// audited suppression budget in one command — and exits 1 if any allow
// is malformed.
//
// Exit codes: 0 no findings, 1 findings, 2 usage or load failure.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("llmfi-vet", flag.ContinueOnError)
	list := fs.Bool("list", false, "list analyzers and exit")
	names := fs.String("run", "", "comma-separated analyzer subset (default: all)")
	verbose := fs.Bool("v", false, "also report honored suppressions")
	supp := fs.Bool("suppressions", false, "list every //llmfi:allow with file:line, analyzer, and reason; exit 1 on malformed allows")
	dir := fs.String("C", ".", "directory to resolve packages from")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var sel []string
	if *names != "" {
		sel = strings.Split(*names, ",")
	}
	analyzers, err := lint.ByName(sel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "llmfi-vet:", err)
		return 2
	}
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	pkgs, err := lint.Load(*dir, fs.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "llmfi-vet:", err)
		return 2
	}
	if *supp {
		allows, problems := lint.Audit(pkgs, analyzers)
		for _, a := range allows {
			fmt.Printf("%s:%d: [%s] %s\n", a.Pos.Filename, a.Pos.Line, a.Analyzer, a.Reason)
		}
		for _, d := range problems {
			fmt.Println(d)
		}
		if n := len(problems); n > 0 {
			fmt.Fprintf(os.Stderr, "llmfi-vet: %d malformed //llmfi:allow annotation(s)\n", n)
			return 1
		}
		return 0
	}
	res := lint.Run(pkgs, analyzers)
	for _, d := range res.Findings {
		fmt.Println(d)
	}
	if *verbose {
		for _, d := range res.Suppressed {
			fmt.Fprintf(os.Stderr, "suppressed: %s\n", d)
		}
	}
	if n := len(res.Findings); n > 0 {
		fmt.Fprintf(os.Stderr, "llmfi-vet: %d finding(s) in %d package(s)\n", n, len(pkgs))
		return 1
	}
	return 0
}
