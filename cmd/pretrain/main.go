// Command pretrain produces the task-skilled model checkpoints used by
// the fault-injection experiments. It trains every generative-task model
// of Table 1's surrogate roster (math for QwenS/FalconS, translation for
// QwenS/LlamaS plus the ALMA-style fine-tune, summarization for
// LlamaS/QwenS plus the Summarizer-style fine-tune, and QA for all three
// families) and writes them as .gob files under -out.
//
// "General-purpose" checkpoints train for their registry step budget;
// "fine-tuned" checkpoints continue from their base for additional
// steps, yielding the sharper, more specialized models whose extra
// resilience Observation #4 reports.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"repro/internal/pretrained"
	"repro/internal/train"
)

var (
	stepsFlag = flag.Int("steps", 0, "override training steps (0 = per-job default)")
	batchFlag = flag.Int("batch", 0, "override batch size (0 = per-job default)")
	lrFlag    = flag.Float64("lr", 0, "override learning rate (0 = default)")
	decayFlag = flag.Float64("decay", -1, "override weight decay (<0 = default)")
)

func main() {
	log.SetFlags(0)
	out := flag.String("out", "pretrained", "output directory for checkpoints")
	only := flag.String("only", "", "train only the checkpoint with this name")
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}

	for _, job := range pretrained.Jobs() {
		if *only != "" && job.Name != *only {
			continue
		}
		start := time.Now()
		log.Printf("=== %s (task %s, seed %d%s) ===", job.Name, job.Task, job.Seed, ftSuffix(job))
		tr, err := trainJob(job)
		if err != nil {
			log.Fatalf("%s: %v", job.Name, err)
		}
		m := tr.Export(job.Name, job.DType)
		path := filepath.Join(*out, job.Name+".gob")
		if err := m.SaveFile(path); err != nil {
			log.Fatalf("%s: save: %v", job.Name, err)
		}
		task := pretrained.TaskByName(job.Task)
		acc := tr.EvalExactMatch(task, 0xe7a1, 64)
		fmt.Printf("saved %-32s exact-match %.3f  params %d  (%.1fs)\n",
			path, acc, tr.NumParams(), time.Since(start).Seconds())
	}
}

func ftSuffix(job pretrained.Job) string {
	if job.Base != "" {
		return ", fine-tuned from " + job.Base
	}
	return ""
}

// trained caches base models within one invocation so fine-tunes don't
// retrain their base.
var trained = map[string]*train.Trainable{}

func jobConfig(job pretrained.Job) train.Config {
	cfg := train.DefaultConfig(job.Seed)
	cfg.Steps = job.Steps
	cfg.Batch = job.Batch
	cfg.Logf = log.Printf
	if *stepsFlag > 0 {
		cfg.Steps = *stepsFlag
	}
	if *batchFlag > 0 {
		cfg.Batch = *batchFlag
	}
	if *lrFlag > 0 {
		cfg.Opt.LR = *lrFlag
	}
	if *decayFlag >= 0 {
		cfg.Opt.WeightDecay = *decayFlag
	}
	return cfg
}

func trainJob(job pretrained.Job) (*train.Trainable, error) {
	if tr, ok := trained[job.Name]; ok {
		return tr, nil
	}
	task := pretrained.TaskByName(job.Task)
	cfg := jobConfig(job)

	if job.Base == "" {
		tr, err := train.Run(task, job.Arch, cfg)
		if err != nil {
			return nil, err
		}
		trained[job.Name] = tr
		return tr, nil
	}

	baseJob, err := pretrained.JobByName(job.Base)
	if err != nil {
		return nil, err
	}
	base, err := trainJob(baseJob)
	if err != nil {
		return nil, err
	}
	// Fine-tune a copy so the base checkpoint is unaffected.
	ft := base.CloneWeights()
	if err := train.Continue(ft, task, cfg); err != nil {
		return nil, err
	}
	trained[job.Name] = ft
	return ft, nil
}
