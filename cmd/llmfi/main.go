// Command llmfi runs a single statistical fault-injection campaign: one
// model, one task suite, one fault model, N uniformly-sampled injection
// trials — the building block the paper's 13M-injection study composes.
//
//	llmfi -suite gsm8k -model math-qwens -fault 2bits-mem -trials 1000
//	llmfi -suite mmlu -model QwenS -fault 1bit-comp -trials 500
//	llmfi -suite wmt16 -model wmt-alma -fault 2bits-comp -beams 6
//	llmfi -suite wmt16-like -model moe -fault 2bits-mem -gate-only
//	llmfi -list
//
// Long campaigns are interruptible: with -checkpoint, Ctrl-C stops the
// pool within one in-flight trial per worker, persists the completed
// trials, and a later -resume run merges to the bit-identical Result of
// an uninterrupted campaign.
//
//	llmfi -suite wmt16-like -model QwenS -trials 5000 -progress -checkpoint run.ckpt
//	llmfi -suite wmt16-like -model QwenS -trials 5000 -progress -resume run.ckpt
//	llmfi -suite gsm8k -model math-qwens -trials 1000 -telemetry tel.json
//
// The -abft flags arm the checksum detection layer (internal/abft) for
// the campaign, reporting recall and false positives alongside the
// outcome tally:
//
//	llmfi -suite wmt16-like -model QwenS -fault 2bits-comp -abft
//	llmfi -suite wmt16-like -model moe -fault 2bits-mem -abft -abft-policy correct-skip
//
// The observability layer: -trace exports sampled propagation traces
// (JSONL, one trace.Record per line; -trace-sample sets the stride),
// and -http serves /metrics (Prometheus), /healthz, /trials and
// net/http/pprof while the campaign runs:
//
//	llmfi -suite wmt16-like -model QwenS -fault 2bits-comp -trace traces.jsonl -trace-sample 16
//	llmfi -suite wmt16-like -model QwenS -trials 5000 -progress -http :9090
//
// -decode-batch N turns on continuous-batching decode: each worker
// keeps up to N trials in flight through one stacked forward pass per
// token. Results are bit-identical to the serial path; campaigns the
// batched scheduler cannot express (multiple-choice, memory faults,
// beam search) fall back to serial automatically:
//
//	llmfi -suite wmt16-like -model QwenS -fault 2bits-comp -decode-batch 16
//
// The serving extension runs the same model behind a live generate
// endpoint instead of an offline campaign: -serve exposes
// POST /api/v1/generate (plus /healthz and Prometheus /metrics) on the
// continuous-batching engine, SIGINT drains in-flight requests before
// exit, and -inject turns live traffic into a fault campaign — one
// fault per request, sampled over -surfaces, optionally checked by
// -abft. The -loadgen mode is the matching client: it fires
// deterministic concurrent request streams at a running -serve process
// and reports p50/p99 latency, SLO violations, and the outcome tally.
//
//	llmfi -serve :9419 -model QwenS -suite wmt16-like
//	llmfi -serve :9419 -model QwenS -suite wmt16-like -inject -fault 1bit-comp -abft
//	llmfi -loadgen http://127.0.0.1:9419 -model QwenS -suite wmt16-like -streams 8 -requests 64 -slo 250ms
//
// The distributed fabric shards one campaign across processes: a
// coordinator owns the trial-index space and hands out leases over the
// versioned HTTP API (internal/fabric), workers execute leased indices
// and stream results back, and the merged Result is bit-identical to a
// single-process run. Every process constructs the campaign from its
// own flags; the join handshake rejects mismatched configurations.
//
//	llmfi -suite wmt16-like -model QwenS -trials 5000 -coordinator :8080 -checkpoint fleet.ckpt
//	llmfi -suite wmt16-like -model QwenS -trials 5000 -worker http://coordinator:8080
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/faults"
	"repro/internal/gen"
	"repro/internal/metrics"
	"repro/internal/mitigate"
	"repro/internal/model"
	"repro/internal/numerics"
	"repro/internal/obs"
	"repro/internal/pretrained"
	"repro/internal/report"
	"repro/internal/serve"
	"repro/internal/serve/loadgen"
	"repro/internal/tasks"
	"repro/internal/trace"
	"repro/internal/version"
)

const usageExamples = `
examples:
  llmfi -suite gsm8k -model math-qwens -fault 2bits-mem -trials 1000
  llmfi -suite mmlu -model QwenS -fault 1bit-comp -trials 500
  llmfi -suite wmt16-like -model QwenS -trials 5000 -progress -checkpoint run.ckpt
  llmfi -suite wmt16-like -model QwenS -trials 5000 -progress -resume run.ckpt
  llmfi -suite gsm8k -model math-qwens -telemetry tel.json
  llmfi -suite wmt16-like -model QwenS -fault 2bits-comp -abft
  llmfi -suite wmt16-like -model moe -fault 2bits-mem -abft -abft-policy correct-skip
  llmfi -suite wmt16-like -model QwenS -fault 2bits-comp -trace traces.jsonl -trace-sample 16
  llmfi -suite wmt16-like -model QwenS -trials 5000 -progress -http :9090
  llmfi -suite wmt16-like -model QwenS -fault 2bits-comp -decode-batch 16
  llmfi -suite wmt16-like -model QwenS -trials 5000 -coordinator :8080 -checkpoint fleet.ckpt
  llmfi -suite wmt16-like -model QwenS -trials 5000 -worker http://coordinator:8080
  llmfi -serve :9419 -model QwenS -suite wmt16-like -inject -fault 1bit-comp -abft
  llmfi -loadgen http://127.0.0.1:9419 -model QwenS -suite wmt16-like -streams 8 -requests 64 -slo 250ms
  llmfi -list
`

func main() {
	log.SetFlags(0)
	var (
		suiteName = flag.String("suite", "gsm8k", "task suite: mmlu|arc|truthfulqa|winogrande|hellaswag|gsm8k|gsm8k-direct|wmt16|xlsum|squadv2|wmt16-like|squad-like")
		modelName = flag.String("model", "math-qwens", "model: a checkpoint name (math-qwens, wmt-alma, ...), a profile (QwenS|LlamaS|FalconS), or 'moe'")
		faultName = flag.String("fault", "2bits-mem", "fault model: 1bit-comp|2bits-comp|2bits-mem")
		trials    = flag.Int("trials", 500, "number of injection trials")
		instances = flag.Int("instances", 10, "evaluation inputs")
		seed      = flag.Uint64("seed", 2025, "campaign seed")
		beams     = flag.Int("beams", 1, "beam count (1 = greedy)")
		gateOnly  = flag.Bool("gate-only", false, "inject only into MoE gate (router) layers")
		reasoning = flag.Bool("reasoning-only", false, "restrict computational faults to reasoning tokens (math suites)")
		dtypeName = flag.String("dtype", "", "override datatype for dense models: FP16|FP32|BF16")
		dir       = flag.String("pretrained", "", "checkpoint directory (default: auto-locate)")
		workers   = flag.Int("workers", 0, "campaign worker pool size (0 = GOMAXPROCS)")
		batchDec  = flag.Int("decode-batch", 0, "continuous-batching decode width per worker (<=1 = serial; results are bit-identical)")
		ckptPath  = flag.String("checkpoint", "", "persist completed trials to this file (periodically and on SIGINT)")
		ckptEvery = flag.Int("checkpoint-every", 64, "completed trials between periodic checkpoint writes")
		resume    = flag.String("resume", "", "resume from this checkpoint file, skipping completed trials")
		progress  = flag.Bool("progress", false, "print a live progress line to stderr")
		telemetry = flag.String("telemetry", "", "write the campaign telemetry snapshot (JSON) to this file")
		abft      = flag.Bool("abft", false, "verify injection-site linear layers with checksum ABFT")
		abftPol   = flag.String("abft-policy", "detect", "ABFT response: detect|correct|correct-skip")
		abftTol   = flag.Float64("abft-tol", 0, "ABFT checksum tolerance override (0 = derived per layer)")
		abftAll   = flag.Bool("abft-all", false, "ABFT: protect every linear layer, not just the trial's site")
		list      = flag.Bool("list", false, "list suites and models")
		csvTrials = flag.String("csv", "", "write per-trial results to this CSV file")
		csvSum    = flag.String("csv-summary", "", "write the aggregate summary to this CSV file")
		tracePath = flag.String("trace", "", "write sampled propagation traces (JSONL) to this file")
		traceN    = flag.Int("trace-sample", 16, "with -trace: trace every N-th trial (1 = all)")
		httpAddr  = flag.String("http", "", "serve /metrics, /healthz, /api/v1/trials and /debug/pprof on this address (e.g. :9090); with -worker: the worker's own /metrics, advertised to the coordinator's fleet fan-in")
		coordAddr = flag.String("coordinator", "", "serve as fleet coordinator on this address (e.g. :8080); workers execute the trials")
		workerURL = flag.String("worker", "", "join the fleet coordinator at this base URL (e.g. http://host:8080) as a worker")
		workerID  = flag.String("worker-name", "", "with -worker: fixed fleet identity (default: coordinator-assigned)")
		serveAddr = flag.String("serve", "", "serve POST /api/v1/generate, /healthz and /metrics on this address (e.g. :9419); SIGINT drains in-flight requests")
		loadURL   = flag.String("loadgen", "", "drive deterministic request streams at a llmfi -serve endpoint at this base URL (e.g. http://127.0.0.1:9419)")
		streams   = flag.Int("streams", 8, "with -serve/-loadgen: engine decode width / concurrent client streams")
		requests  = flag.Int("requests", 64, "with -loadgen: total requests to fire")
		maxNew    = flag.Int("max-new", 12, "with -loadgen: per-request generation budget (0 = server default)")
		reqDL     = flag.Duration("req-deadline", 0, "with -loadgen: per-request deadline (0 = none)")
		sloDur    = flag.Duration("slo", 0, "with -serve/-loadgen: latency objective; slower requests count as SLO violations")
		injectLv  = flag.Bool("inject", false, "with -serve: campaign mode — inject one fault per request (shaped by -fault, -surfaces, -abft)")
		surfaces  = flag.String("surfaces", "all", "with -serve -inject: comma-separated fault surfaces (linear,kv,norm,embed,attn) or 'all'")
		leaseN    = flag.Int("lease-trials", 0, "with -coordinator: trial indices per lease (0 = default 16)")
		leaseTTL  = flag.Duration("lease-ttl", 0, "with -coordinator: lease expiry without worker contact (0 = default 30s)")
		spansPath = flag.String("spans", "", "export sampled end-to-end spans (JSONL, one span per line) to this file")
		spanN     = flag.Int("span-sample", 16, "span sampling stride: trace every N-th root (1 = all, 0 = off)")
		scrapeEv  = flag.Duration("scrape-every", 0, "with -coordinator: worker /metrics scrape interval for the llmfi_fleet_* fan-in (0 = default 2s)")
		showVer   = flag.Bool("version", false, "print the llmfi version and exit")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: llmfi [flags]\n\nflags:\n")
		flag.PrintDefaults()
		fmt.Fprint(flag.CommandLine.Output(), usageExamples)
	}
	flag.Parse()

	if *showVer {
		fmt.Println("llmfi " + version.Version)
		return
	}
	if *list {
		printInventory()
		return
	}
	if *coordAddr != "" && *workerURL != "" {
		log.Fatal("llmfi: -coordinator and -worker are mutually exclusive")
	}
	if *serveAddr != "" && *loadURL != "" {
		log.Fatal("llmfi: -serve and -loadgen are mutually exclusive")
	}
	if (*serveAddr != "" || *loadURL != "") && (*coordAddr != "" || *workerURL != "") {
		log.Fatal("llmfi: -serve/-loadgen cannot combine with the fleet flags")
	}

	suite, err := buildSuite(*suiteName, *seed, *instances)
	if err != nil {
		log.Fatal(err)
	}
	m, err := buildModel(*modelName, suite, *seed, *dir)
	if err != nil {
		log.Fatal(err)
	}
	if *dtypeName != "" {
		dt, err := parseDType(*dtypeName)
		if err != nil {
			log.Fatal(err)
		}
		if m, err = model.WithDType(m, dt); err != nil {
			log.Fatal(err)
		}
	}
	fm, err := parseFault(*faultName)
	if err != nil {
		log.Fatal(err)
	}

	// Checkpoint wiring: -checkpoint names the file; a bare -resume reuses
	// its file so the resumed run keeps checkpointing. In fabric modes the
	// campaign itself carries no path — trial persistence belongs to the
	// coordinator (workers must never write a local checkpoint).
	saveTo := *ckptPath
	if saveTo == "" {
		saveTo = *resume
	}
	opts := []core.Option{
		core.WithWorkers(*workers),
		core.WithDecodeBatch(*batchDec),
		core.WithGen(gen.Settings{NumBeams: *beams}),
		core.WithReasoningOnly(*reasoning),
		core.WithCheckpointInterval(*ckptEvery),
	}
	if saveTo != "" && *coordAddr == "" && *workerURL == "" {
		opts = append(opts, core.WithCheckpointPath(saveTo))
	}
	if *gateOnly {
		opts = append(opts, core.WithFilter(faults.GateOnly))
	}
	if *abft || *abftAll {
		pol, err := mitigate.ParsePolicy(*abftPol)
		if err != nil {
			log.Fatal(err)
		}
		opts = append(opts, core.WithABFT(core.ABFTConfig{Tol: *abftTol, Policy: pol, AllLayers: *abftAll}))
	}
	c := core.New(m, suite, fm, *trials, *seed, opts...)

	// SIGINT cancels the campaign; the runner writes a final checkpoint
	// on the way out, so no completed trial is lost.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *serveAddr != "" {
		var inj *serve.InjectConfig
		if *injectLv {
			sfs, err := parseSurfaces(*surfaces)
			if err != nil {
				log.Fatal(err)
			}
			inj = &serve.InjectConfig{Fault: fm, Surfaces: sfs, Seed: *seed}
			if *abft || *abftAll {
				pol, err := mitigate.ParsePolicy(*abftPol)
				if err != nil {
					log.Fatal(err)
				}
				inj.ABFT = &serve.ABFTConfig{Tol: *abftTol, Policy: pol, AllLayers: *abftAll}
			}
		}
		rec, sw := buildRecorder(*spansPath, "serve", *spanN, true)
		runServe(ctx, m, suite, *serveAddr, *streams, *sloDur, inj, rec)
		closeSpans(sw, *spansPath, rec)
		return
	}
	if *loadURL != "" {
		runLoadgen(ctx, suite, *loadURL, loadgen.Config{
			Streams: *streams, Requests: *requests, MaxNew: *maxNew,
			Deadline: *reqDL, Seed: *seed, SLO: *sloDur,
		})
		return
	}

	if *coordAddr != "" {
		rec, sw := buildRecorder(*spansPath, "coordinator", *spanN, true)
		runCoordinator(ctx, c, *coordAddr, *ckptPath, *ckptEvery, *leaseN, *leaseTTL, *csvTrials, *csvSum,
			rec, sw, *spansPath, *scrapeEv)
		return
	}
	if *workerURL != "" {
		rec, sw := buildRecorder(*spansPath, "worker", *spanN, true)
		runWorker(ctx, c, *workerURL, *workerID, *httpAddr, rec)
		closeSpans(sw, *spansPath, rec)
		return
	}

	tel := core.NewTelemetry()
	ropts := []core.RunnerOption{
		core.WithTelemetry(tel),
	}
	if *resume != "" {
		ck, err := core.LoadCheckpoint(*resume)
		if err != nil {
			log.Fatal(err)
		}
		if err := ck.Matches(c); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "llmfi: resuming from %s: %d/%d trials already complete\n",
			*resume, ck.Done(), c.Trials)
		ropts = append(ropts, core.WithResumeFrom(ck))
	}

	// Trace export: a fresh campaign truncates the file, a resumed one
	// appends — the interrupted run's records stay valid (resumed trials
	// never re-execute, so appending cannot duplicate a trial).
	var traceW *report.TraceWriter
	if *tracePath != "" {
		f, appended, err := report.OpenTrace(*tracePath, *resume != "")
		if err != nil {
			log.Fatal(err)
		}
		if appended {
			fmt.Fprintf(os.Stderr, "llmfi: appending traces to existing %s (resume)\n", *tracePath)
		}
		traceW = report.NewTraceWriter(f)
		ropts = append(ropts, core.WithTrace(*traceN, traceW.Write))
	}

	// Span export: where -trace captures per-trial fault propagation,
	// -spans captures end-to-end timing — one trial span per sampled
	// trial (phase seconds as attributes) under a campaign root span.
	// The observer is collector-side and read-only, so outcomes stay
	// bit-identical with it on.
	rec, spanW := buildRecorder(*spansPath, "campaign", *spanN, false)
	campStart := time.Now()
	var campRoot obs.SpanContext
	if rec.Enabled() {
		campRoot = rec.StartTrace()
		root := campRoot
		ropts = append(ropts, core.WithSpanObserver(func(index int, spans []trace.Span, busy time.Duration) {
			if !rec.SampleRoot() {
				return
			}
			attrs := make([]obs.Attr, 0, len(spans)+1)
			attrs = append(attrs, obs.Int("index", int64(index)))
			for _, ps := range spans {
				attrs = append(attrs, obs.Num(string(ps.Phase)+"_s", ps.Seconds))
			}
			rec.Record(obs.NewSpan(rec.Child(root), root.Span, "trial",
				time.Now().Add(-busy), busy, attrs...))
		}))
	}

	label := fmt.Sprintf("%s/%s/%v", c.Suite.Name, c.Model.Cfg.Name, c.Fault)

	var srv *report.Server
	if *httpAddr != "" {
		srv = report.NewServer(label, tel)
		ln, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			log.Fatal(err)
		}
		hs := &http.Server{Handler: srv.Handler()}
		go hs.Serve(ln) //llmfi:allow golife listener lifetime is owned by the deferred hs.Close, not a ctx
		defer hs.Close()
		fmt.Fprintf(os.Stderr, "llmfi: serving /metrics /healthz /api/v1/trials /debug/pprof on http://%s\n", ln.Addr())
	}

	var final core.CampaignDone
	var lastProg core.Progress
	for ev := range core.NewRunner(c, ropts...).Stream(ctx) {
		if srv != nil {
			srv.Observe(ev)
		}
		switch e := ev.(type) {
		case core.BaselineReady:
			if *progress {
				fmt.Fprintf(os.Stderr, "llmfi: baseline ready (%d instances)\n", len(e.Baseline.Instances))
			}
		case core.Progress:
			lastProg = e
			if *progress {
				fmt.Fprintf(os.Stderr, "\r%-100s", report.ProgressLine(label, e))
			}
		case core.CampaignDone:
			final = e
		}
	}
	if *progress {
		// Clear the carriage-return line, then leave a durable summary in
		// the scrollback (the CR line would be clobbered by whatever
		// prints next — e.g. the detection summary).
		fmt.Fprintf(os.Stderr, "\r%-100s\r", "")
		if lastProg.Total > 0 {
			fmt.Fprintln(os.Stderr, report.SummaryLine(label, lastProg))
		}
	}
	if traceW != nil {
		n := traceW.Count()
		if err := traceW.Close(); err != nil {
			log.Print(err)
		} else {
			fmt.Fprintf(os.Stderr, "llmfi: wrote %d trace records to %s\n", n, *tracePath)
		}
	}
	if rec.Enabled() {
		rec.Record(obs.NewSpan(campRoot, "", "campaign", campStart, time.Since(campStart),
			obs.Str("label", label), obs.Int("trials", int64(c.Trials))))
	}
	closeSpans(spanW, *spansPath, rec)

	if *telemetry != "" {
		if err := writeTelemetry(*telemetry, tel.Snapshot()); err != nil {
			log.Print(err)
		}
	}
	if final.Err != nil {
		if errors.Is(final.Err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "llmfi: interrupted")
			if saveTo != "" {
				fmt.Fprintf(os.Stderr, "llmfi: partial results saved; resume with -resume %s\n", saveTo)
			}
			os.Exit(130)
		}
		log.Fatal(final.Err)
	}

	printResult(final.Result)
	if *csvTrials != "" {
		if err := writeCSV(*csvTrials, final.Result, report.WriteTrialsCSV); err != nil {
			log.Fatal(err)
		}
	}
	if *csvSum != "" {
		if err := writeCSV(*csvSum, final.Result, report.WriteSummaryCSV); err != nil {
			log.Fatal(err)
		}
	}
}

// runCoordinator serves the fleet API on addr and blocks until every
// trial is merged, then prints the campaign result exactly like a
// single-process run (the merge is bit-identical).
func runCoordinator(ctx context.Context, c core.Campaign, addr, ckptPath string, ckptEvery, leaseTrials int, leaseTTL time.Duration, csvTrials, csvSum string, rec *obs.Recorder, sw *obs.SpanWriter, spansPath string, scrapeEvery time.Duration) {
	co, err := fabric.NewCoordinator(fabric.CoordinatorConfig{
		Campaign:        c,
		LeaseTTL:        leaseTTL,
		LeaseTrials:     leaseTrials,
		CheckpointPath:  ckptPath,
		CheckpointEvery: ckptEvery,
		Recorder:        rec,
		ScrapeEvery:     scrapeEvery,
	})
	if err != nil {
		log.Fatal(err)
	}
	if n := co.Restored(); n > 0 {
		fmt.Fprintf(os.Stderr, "llmfi: coordinator restored %d/%d trials from %s\n", n, c.Trials, ckptPath)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: co.Handler()}
	go hs.Serve(ln) //llmfi:allow golife listener lifetime is owned by the deferred hs.Close, not a ctx
	defer hs.Close()
	go co.RunScrapes(ctx)
	fmt.Fprintf(os.Stderr, "llmfi: coordinating %d trials on http://%s (join with -worker; dashboard at /debug/fleet)\n", c.Trials, ln.Addr())

	res, err := co.Result(ctx)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			if err := co.Checkpoint(); err != nil {
				log.Print(err)
			}
			closeSpans(sw, spansPath, rec)
			done, total := co.Done()
			fmt.Fprintf(os.Stderr, "llmfi: coordinator interrupted with %d/%d trials merged\n", done, total)
			if ckptPath != "" {
				fmt.Fprintln(os.Stderr, "llmfi: restart the coordinator with the same flags to resume")
			}
			os.Exit(130)
		}
		log.Fatal(err)
	}
	closeSpans(sw, spansPath, rec)
	printResult(res)
	if csvTrials != "" {
		if err := writeCSV(csvTrials, res, report.WriteTrialsCSV); err != nil {
			log.Fatal(err)
		}
	}
	if csvSum != "" {
		if err := writeCSV(csvSum, res, report.WriteSummaryCSV); err != nil {
			log.Fatal(err)
		}
	}
}

// runWorker joins the coordinator at url and executes leases until the
// campaign completes. With httpAddr, the worker serves its own /metrics
// there and advertises the address at join so the coordinator's fan-in
// scrapes it into the llmfi_fleet_* families.
func runWorker(ctx context.Context, c core.Campaign, url, name, httpAddr string, rec *obs.Recorder) {
	cfg := fabric.WorkerConfig{
		Campaign:    c,
		Coordinator: url,
		Name:        name,
		Logf:        log.Printf,
		Recorder:    rec,
	}
	var ln net.Listener
	if httpAddr != "" {
		var err error
		if ln, err = net.Listen("tcp", httpAddr); err != nil {
			log.Fatal(err)
		}
		cfg.HTTPAddr = advertiseURL(ln.Addr())
	}
	wk, err := fabric.NewWorker(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if ln != nil {
		hs := &http.Server{Handler: wk.Handler()}
		go hs.Serve(ln) //llmfi:allow golife listener lifetime is owned by the deferred hs.Close, not a ctx
		defer hs.Close()
		fmt.Fprintf(os.Stderr, "llmfi: worker metrics on %s/metrics\n", cfg.HTTPAddr)
	}
	if err := wk.Run(ctx); err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintf(os.Stderr, "llmfi: worker interrupted after %d trials (outstanding leases will be reissued)\n", wk.Executed())
			os.Exit(130)
		}
		log.Fatal(err)
	}
}

// runServe exposes the model behind the live generate endpoint on the
// continuous-batching engine and blocks until SIGINT, then drains every
// in-flight request before returning (Engine.Run's graceful-drain
// contract).
func runServe(ctx context.Context, m *model.Model, suite *tasks.Suite, addr string, width int, slo time.Duration, inj *serve.InjectConfig, rec *obs.Recorder) {
	e, err := serve.NewEngine(serve.Config{
		Model: m, Vocab: suite.Vocab, Width: width, SLO: slo, Inject: inj,
		Recorder: rec,
	})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: e.Handler()}
	go hs.Serve(ln) //llmfi:allow golife listener lifetime is owned by the deferred hs.Close, not a ctx
	defer hs.Close()
	mode := "clean"
	if inj != nil {
		mode = fmt.Sprintf("fault campaign: %v over %d surfaces", inj.Fault, len(inj.Surfaces))
		if inj.ABFT != nil {
			mode += ", abft armed"
		}
	}
	fmt.Fprintf(os.Stderr, "llmfi: serving %s/generate /healthz /metrics /debug/fleet on http://%s (%s; SIGINT drains)\n",
		report.APIVersion, ln.Addr(), mode)
	if err := e.Run(ctx); err != nil {
		log.Fatal(err)
	}
	s := e.Metrics().Snapshot()
	var total int64
	for _, n := range s.Requests {
		total += n
	}
	fmt.Fprintf(os.Stderr, "llmfi: drained: %d requests finished, %d tokens generated, %d SLO violations\n",
		total, s.Tokens, s.SLOViolations)
}

// runLoadgen fires deterministic request streams at a remote -serve
// endpoint, drawing prompts from the configured suite (the server must
// be built from the same -suite/-model flags for the vocabulary to
// round-trip), and prints the operator-facing summary.
func runLoadgen(ctx context.Context, suite *tasks.Suite, url string, cfg loadgen.Config) {
	cfg.Prompts = make([][]int, len(suite.Instances))
	for i, inst := range suite.Instances {
		cfg.Prompts[i] = inst.Prompt
	}
	tgt := &loadgen.HTTPTarget{Base: strings.TrimRight(url, "/"), Vocab: suite.Vocab}
	st, err := loadgen.Run(ctx, tgt, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loadgen: %d requests over %d streams against %s\n",
		cfg.Requests, cfg.Streams, tgt.Base)
	fmt.Printf("  status: ok %d, deadline %d, canceled %d, failed %d\n",
		st.OK, st.DeadlineExceeded, st.Canceled, st.Failed)
	fmt.Printf("  latency: p50 %v  p90 %v  p99 %v  max %v\n", st.P50, st.P90, st.P99, st.Max)
	if cfg.SLO > 0 {
		fmt.Printf("  slo %v: %d violations (%.1f%%)\n",
			cfg.SLO, st.SLOViolations, 100*float64(st.SLOViolations)/float64(cfg.Requests))
	}
	if st.Injected > 0 {
		fmt.Printf("  campaign: injected %d, fired %d\n", st.Injected, st.Fired)
	}
	if st.Failed > 0 {
		for _, resp := range st.Responses {
			if resp.Err != nil && resp.Err != context.DeadlineExceeded && resp.Err != context.Canceled {
				log.Fatalf("llmfi: request %s failed: %v", resp.ID, resp.Err)
			}
		}
	}
}

// parseSurfaces reads the -surfaces list ("all" = every surface).
func parseSurfaces(s string) ([]faults.Surface, error) {
	if s == "" || s == "all" {
		return faults.Surfaces, nil
	}
	var out []faults.Surface
	for _, name := range strings.Split(s, ",") {
		sf, err := faults.ParseSurface(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		out = append(out, sf)
	}
	return out, nil
}

// buildRecorder wires -spans/-span-sample into a span recorder for one
// service. With no -spans file, dashboard-backed modes (ring=true:
// serve, coordinator, worker) still get an in-memory recorder so
// /debug/fleet shows recent spans and fleet traces stitch; the offline
// campaign mode returns a nil (disabled) recorder instead — the default
// campaign path carries zero tracing overhead.
func buildRecorder(path, service string, sample int, ring bool) (*obs.Recorder, *obs.SpanWriter) {
	if path == "" && !ring {
		return nil, nil
	}
	cfg := obs.Config{Service: service, Sample: sample, Recent: 128}
	var sw *obs.SpanWriter
	if path != "" {
		var err error
		if sw, err = obs.OpenSpans(path); err != nil {
			log.Fatal(err)
		}
		cfg.Sink = sw.Write
	}
	return obs.NewRecorder(cfg), sw
}

// closeSpans flushes the span export file and reports any latched sink
// error. Safe on a nil writer (no -spans flag).
func closeSpans(sw *obs.SpanWriter, path string, rec *obs.Recorder) {
	if sw == nil {
		return
	}
	if err := rec.Err(); err != nil {
		log.Printf("llmfi: span export: %v", err)
	}
	n := sw.Count()
	if err := sw.Close(); err != nil {
		log.Print(err)
		return
	}
	fmt.Fprintf(os.Stderr, "llmfi: wrote %d spans to %s\n", n, path)
}

// advertiseURL turns a bound listener address into a base URL other
// processes can reach; unspecified hosts (":9431") become loopback.
func advertiseURL(a net.Addr) string {
	host, port, err := net.SplitHostPort(a.String())
	if err != nil {
		return "http://" + a.String()
	}
	if ip := net.ParseIP(host); ip == nil || ip.IsUnspecified() {
		host = "127.0.0.1"
	}
	return "http://" + net.JoinHostPort(host, port)
}

// writeTelemetry dumps the telemetry snapshot as JSON to path.
func writeTelemetry(path string, s core.TelemetrySnapshot) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := report.WriteTelemetryJSON(f, s); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeCSV writes a campaign export to path.
func writeCSV(path string, res *core.Result, fn func(io.Writer, *core.Result) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f, res); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func buildSuite(name string, seed uint64, n int) (*tasks.Suite, error) {
	switch name {
	case "mmlu", "arc", "truthfulqa", "winogrande", "hellaswag":
		return tasks.NewMCSuite(name, seed, n)
	case "gsm8k":
		return pretrained.MathTask().Suite(seed, n, true), nil
	case "gsm8k-direct":
		return pretrained.MathTask().Suite(seed, n, false), nil
	case "wmt16":
		return pretrained.TranslationTask().Suite(seed, n), nil
	case "xlsum":
		return pretrained.SummTask().Suite(seed, n), nil
	case "squadv2":
		return pretrained.QATask().Suite(seed, n), nil
	case "wmt16-like":
		return tasks.NewSelfRefSuite(name, seed, n, 8, 12,
			[]metrics.Kind{metrics.KindBLEU, metrics.KindChrF}), nil
	case "squad-like":
		return tasks.NewSelfRefSuite(name, seed, n, 14, 6,
			[]metrics.Kind{metrics.KindEM, metrics.KindF1}), nil
	default:
		return nil, fmt.Errorf("unknown suite %q (try -list)", name)
	}
}

func buildModel(name string, suite *tasks.Suite, seed uint64, dir string) (*model.Model, error) {
	switch name {
	case "QwenS", "LlamaS", "FalconS", "moe":
		vocab := tasks.GeneralVocab()
		if suite.Vocab.Size() != vocab.Size() {
			return nil, fmt.Errorf("profile models use the general vocabulary; suite %s needs a trained checkpoint (try -list)", suite.Name)
		}
		cfg := model.StandardConfig(name, vocab.Size(), numerics.BF16)
		fam := model.LlamaS
		switch name {
		case "QwenS":
			fam = model.QwenS
		case "FalconS":
			fam = model.FalconS
		case "moe":
			cfg = model.MoEConfig(cfg)
		}
		return model.Build(model.Spec{Config: cfg, Family: fam, Seed: seed + uint64(fam)})
	default:
		if dir == "" {
			dir = pretrained.DefaultDir()
		}
		return pretrained.NewLoader(dir).Load(name)
	}
}

func parseFault(name string) (faults.Model, error) {
	for _, fm := range faults.Models {
		if fm.String() == name {
			return fm, nil
		}
	}
	return 0, fmt.Errorf("unknown fault model %q", name)
}

func parseDType(name string) (numerics.DType, error) {
	switch strings.ToUpper(name) {
	case "FP16":
		return numerics.FP16, nil
	case "FP32":
		return numerics.FP32, nil
	case "BF16":
		return numerics.BF16, nil
	default:
		return 0, fmt.Errorf("unknown dtype %q", name)
	}
}

func printResult(res *core.Result) {
	c := res.Campaign
	fmt.Printf("campaign: %s on %s under %v, %d trials, seed %d\n\n",
		c.Model.Cfg.Name, c.Suite.Name, c.Fault, len(res.Trials), c.Seed)

	fmt.Println("fault-free baseline:")
	for _, k := range c.Suite.Metrics {
		fmt.Printf("  %-12s %.4f\n", k, res.Baseline.MetricMeans[k])
	}
	fmt.Printf("  %-12s %.4f\n\n", "gold-acc", res.Baseline.GoldAccuracy)

	t := report.NewTable("Metric", "P_fault", "NormPerf", "95% CI")
	for _, k := range c.Suite.Metrics {
		r := res.Normalized(k)
		t.Row(string(k), res.MetricMean(k), r.Value, fmt.Sprintf("[%.4f, %.4f]", r.Lo, r.Hi))
	}
	fmt.Println(t.String())

	if c.ABFT != nil {
		d := res.Detection()
		fmt.Printf("abft: %d checks, %d flagged; recall %.1f%% (%d/%d fired), false positives %d, cascaded %d\n",
			d.Checks, d.Flagged, 100*d.Recall(), d.Detected, d.Fired, d.FalsePositives, d.Cascaded)
		if d.Corrected+d.Skipped > 0 {
			fmt.Printf("abft: corrected %d rows, skipped (zeroed) %d rows\n", d.Corrected, d.Skipped)
		}
	}

	tally := res.Tally()
	fmt.Printf("outcomes: Masked %d (%.1f%%), SDC-subtle %d, SDC-distorted %d; fired %.1f%%\n",
		tally.Masked, 100*res.MaskedRate(), tally.Subtle, tally.Distorted, 100*res.FiredRate())
	if c.Model.Cfg.IsMoE() {
		fmt.Printf("expert selection changed: %.1f%%\n", 100*res.ExpertChangedRate())
	}

	buckets := res.BitBreakdown()
	if len(buckets) > 0 {
		fmt.Println("\nSDCs by highest flipped bit:")
		bt := report.NewTable("Bit", "Trials", "Subtle", "Distorted")
		for _, b := range buckets {
			bt.Row(b.Bit, b.Trials, b.Subtle, b.Distorted)
		}
		fmt.Println(bt.String())
	}
}

func printInventory() {
	fmt.Println("suites:")
	for _, s := range []string{"mmlu", "arc", "truthfulqa", "winogrande", "hellaswag"} {
		fmt.Printf("  %-12s multiple-choice, models: QwenS LlamaS FalconS moe\n", s)
	}
	fmt.Println("  gsm8k        generative math (+gsm8k-direct), models: math-qwens math-falcons")
	fmt.Println("  wmt16        translation, models: wmt-qwens wmt-llamas wmt-alma")
	fmt.Println("  xlsum        summarization, models: xlsum-llamas xlsum-qwens xlsum-summarizer")
	fmt.Println("  squadv2      QA, models: squad-llamas squad-qwens squad-falcons")
	fmt.Println("  wmt16-like   self-referential generative, models: QwenS LlamaS FalconS moe")
	fmt.Println("  squad-like   self-referential generative, models: QwenS LlamaS FalconS moe")
	fmt.Println("\ncheckpoints (run cmd/pretrain to (re)generate):")
	for _, j := range pretrained.Jobs() {
		ft := ""
		if j.Base != "" {
			ft = " (fine-tuned from " + j.Base + ")"
		}
		fmt.Printf("  %-18s task %s%s\n", j.Name, j.Task, ft)
	}
}
