// Command figures regenerates the paper's tables and figures from the
// reproduction library. Each experiment prints an ASCII rendering of the
// corresponding artifact plus its headline numbers.
//
//	figures -fig fig3 -trials 500 -instances 20
//	figures -fig table1 -progress
//	figures -all
//	figures -list
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	"repro/internal/experiments"
)

func main() {
	log.SetFlags(0)
	fig := flag.String("fig", "", "experiment id to run (fig3..fig21, table1, table2)")
	all := flag.Bool("all", false, "run every experiment")
	list := flag.Bool("list", false, "list experiment ids")
	trials := flag.Int("trials", 0, "injection trials per campaign (0 = default 120)")
	instances := flag.Int("instances", 0, "evaluation inputs per suite (0 = default 10)")
	seed := flag.Uint64("seed", 0, "campaign seed (0 = default)")
	workers := flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	dir := flag.String("pretrained", "", "checkpoint directory (default: auto-locate)")
	progress := flag.Bool("progress", false, "print a live per-campaign progress line to stderr")
	flag.Parse()

	cfg := experiments.Config{
		Trials: *trials, Instances: *instances, Seed: *seed,
		Workers: *workers, Dir: *dir,
	}
	if *progress {
		cfg.Progress = os.Stderr
	}

	// SIGINT cancels the running experiment's campaigns promptly.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	switch {
	case *list:
		for _, e := range experiments.All() {
			fmt.Printf("%-8s %s (%s)\n", e.ID, e.Title, e.PaperRef)
		}
	case *all:
		for _, e := range experiments.All() {
			runOne(ctx, e, cfg)
		}
	case *fig != "":
		e, err := experiments.Get(*fig)
		if err != nil {
			log.Fatal(err)
		}
		runOne(ctx, e, cfg)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func runOne(ctx context.Context, e experiments.Experiment, cfg experiments.Config) {
	start := time.Now()
	out, err := e.Run(ctx, cfg)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintf(os.Stderr, "figures: %s interrupted\n", e.ID)
			os.Exit(130)
		}
		log.Fatalf("%s: %v", e.ID, err)
	}
	fmt.Printf("\n================ %s — %s (%s) ================\n\n", out.ID, e.Title, e.PaperRef)
	fmt.Println(out.Text)
	if len(out.Keys) > 0 {
		fmt.Println("key numbers:")
		for _, k := range out.Keys {
			fmt.Printf("  %-32s %.4f\n", k, out.Numbers[k])
		}
	}
	fmt.Printf("(%.1fs)\n", time.Since(start).Seconds())
}
