// Command figures regenerates the paper's tables and figures from the
// reproduction library. Each experiment prints an ASCII rendering of the
// corresponding artifact plus its headline numbers.
//
//	figures -fig fig3 -trials 500 -instances 20
//	figures -fig table1 -progress
//	figures -fig fig_propagation -trace prop.jsonl
//	figures -all
//	figures -list
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	"repro/internal/experiments"
	"repro/internal/report"
)

func main() {
	os.Exit(run())
}

// run is main minus os.Exit, so the trace writer's deferred flush runs
// on every path — including experiment errors and SIGINT.
func run() int {
	log.SetFlags(0)
	fig := flag.String("fig", "", "experiment id to run (fig3..fig21, table1, table2)")
	all := flag.Bool("all", false, "run every experiment")
	list := flag.Bool("list", false, "list experiment ids")
	trials := flag.Int("trials", 0, "injection trials per campaign (0 = default 120)")
	instances := flag.Int("instances", 0, "evaluation inputs per suite (0 = default 10)")
	seed := flag.Uint64("seed", 0, "campaign seed (0 = default)")
	workers := flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	dir := flag.String("pretrained", "", "checkpoint directory (default: auto-locate)")
	progress := flag.Bool("progress", false, "print a live per-campaign progress line to stderr")
	tracePath := flag.String("trace", "", "write sampled propagation traces (JSONL) to this file")
	traceN := flag.Int("trace-sample", 16, "with -trace: trace every N-th trial of each campaign")
	flag.Parse()

	cfg := experiments.Config{
		Trials: *trials, Instances: *instances, Seed: *seed,
		Workers: *workers, Dir: *dir,
	}
	if *progress {
		cfg.Progress = os.Stderr
	}
	if *tracePath != "" {
		f, _, err := report.OpenTrace(*tracePath, false)
		if err != nil {
			log.Print(err)
			return 1
		}
		tw := report.NewTraceWriter(f)
		cfg.TraceEvery = *traceN
		cfg.TraceSink = tw.Write
		defer func() {
			if err := tw.Close(); err != nil {
				log.Print(err)
				return
			}
			fmt.Fprintf(os.Stderr, "figures: wrote %d trace records to %s\n", tw.Count(), *tracePath)
		}()
	}

	// SIGINT cancels the running experiment's campaigns promptly.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	switch {
	case *list:
		for _, e := range experiments.All() {
			fmt.Printf("%-8s %s (%s)\n", e.ID, e.Title, e.PaperRef)
		}
	case *all:
		for _, e := range experiments.All() {
			if code := runOne(ctx, e, cfg); code != 0 {
				return code
			}
		}
	case *fig != "":
		e, err := experiments.Get(*fig)
		if err != nil {
			log.Print(err)
			return 1
		}
		return runOne(ctx, e, cfg)
	default:
		flag.Usage()
		return 2
	}
	return 0
}

func runOne(ctx context.Context, e experiments.Experiment, cfg experiments.Config) int {
	start := time.Now()
	out, err := e.Run(ctx, cfg)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintf(os.Stderr, "figures: %s interrupted\n", e.ID)
			return 130
		}
		log.Printf("%s: %v", e.ID, err)
		return 1
	}
	fmt.Printf("\n================ %s — %s (%s) ================\n\n", out.ID, e.Title, e.PaperRef)
	fmt.Println(out.Text)
	if len(out.Keys) > 0 {
		fmt.Println("key numbers:")
		for _, k := range out.Keys {
			fmt.Printf("  %-32s %.4f\n", k, out.Numbers[k])
		}
	}
	fmt.Printf("(%.1fs)\n", time.Since(start).Seconds())
	return 0
}
