// Mitigation demonstrates the two defenses built on the study's
// findings: range restriction (squash the 1e30-scale values that
// exponent-MSB flips create — the dominant SDC source per Figs. 9-10)
// and ABFT weight checksums (detect resident memory faults, the worse
// fault class per Observation #1, before they silently corrupt outputs).
//
//	go run ./examples/mitigation
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/mitigate"
	"repro/internal/pretrained"
	"repro/internal/prng"
)

func main() {
	log.SetFlags(0)
	loader := pretrained.NewLoader(pretrained.DefaultDir())
	m, err := loader.Load("math-qwens")
	if err != nil {
		log.Fatal(err)
	}
	mt := pretrained.MathTask()
	suite := mt.Suite(21, 8, true)

	// --- Defense 1: range restriction -------------------------------
	calib := mt.Suite(9001, 16, true) // held-out calibration prompts
	profile := mitigate.Calibrate(m.Clone(), calib, 0)
	fmt.Printf("calibrated %d layer ranges on %d held-out prompts\n\n", profile.Layers(), 16)

	plain, err := core.New(m, suite, faults.Mem2Bit, 200, 99).Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	restrictor := mitigate.NewRestrictor(profile)
	protected, err := core.New(m, suite, faults.Mem2Bit, 200, 99,
		core.WithExtraHook(restrictor.Hook),
	).Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("2bits-mem on GSM8k (200 injections):")
	fmt.Printf("  unprotected norm. accuracy: %.4f\n", plain.Normalized(metrics.KindAccuracy).Value)
	fmt.Printf("  range-restricted:           %.4f  (%d values clamped)\n\n",
		protected.Normalized(metrics.KindAccuracy).Value, restrictor.Clamped())

	// --- Defense 2: ABFT weight checksums ---------------------------
	wm := m.Clone()
	wc := mitigate.NewWeightChecksums(wm)
	sampler, err := faults.NewSampler(wm, nil)
	if err != nil {
		log.Fatal(err)
	}
	detected := 0
	const trials = 100
	src := prng.New(7)
	for i := 0; i < trials; i++ {
		site := sampler.Sample(src.Split(uint64(i)), faults.Mem2Bit, 1)
		inj, err := faults.Arm(wm, site, 0)
		if err != nil {
			log.Fatal(err)
		}
		if wc.Detects(wm, site.Layer, site.Col) {
			detected++
		}
		inj.Disarm()
	}
	fmt.Printf("weight-checksum scan: %d/%d memory faults detected and localized\n", detected, trials)
	fmt.Println("(detection lets a serving system reload weights instead of emitting SDCs)")
}
