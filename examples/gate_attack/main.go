// Gate_attack demonstrates Observation #6: memory faults targeted at the
// MoE gate (router) layers alone change expert selections — and thereby
// the generated output — without touching a single expert weight. The
// paper flags this as both a reliability and a security concern.
//
//	go run ./examples/gate_attack
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/numerics"
	"repro/internal/tasks"
)

func main() {
	log.SetFlags(0)

	vocab := tasks.GeneralVocab()
	cfg := model.MoEConfig(model.StandardConfig("moe-demo", vocab.Size(), numerics.BF16))
	m, err := model.Build(model.Spec{Config: cfg, Family: model.LlamaS, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model: %s — %d params, top-%d of %d experts\n",
		cfg.Name, cfg.NumParams(), cfg.TopK, cfg.NumExperts)

	suite := tasks.NewSelfRefSuite("wmt16-like", 7, 8, 8, 12,
		[]metrics.Kind{metrics.KindBLEU, metrics.KindChrF})

	res, err := core.New(m, suite, faults.Mem2Bit, 150, 9,
		core.WithFilter(faults.GateOnly), // routers only — the attack surface
	).Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%d gate-layer injections:\n", len(res.Trials))
	fmt.Printf("  expert selection changed: %5.1f%%\n", res.ExpertChangedRate()*100)
	fmt.Printf("  output changed:           %5.1f%%\n", res.OutputChangedRate()*100)
	fmt.Printf("  BLEU   normalized perf:   %.4f\n", res.Normalized(metrics.KindBLEU).Value)
	fmt.Printf("  chrF++ normalized perf:   %.4f\n", res.Normalized(metrics.KindChrF).Value)

	// Show one concrete trial where routing changed the output.
	for _, tr := range res.Trials {
		if tr.ExpertChanged && tr.Outcome.Changed {
			inst := suite.Instances[tr.Instance]
			base := res.Baseline.Instances[tr.Instance]
			mc := m.Clone()
			inj, err := faults.Arm(mc, tr.Site, len(inst.Prompt))
			if err != nil {
				log.Fatal(err)
			}
			faulty := core.RerunInstance(mc, suite, &inst)
			inj.Disarm()
			fmt.Printf("\nexample (site %v):\n  fault-free: %s\n  faulty:     %s\n",
				tr.Site, base.Text, faulty)
			break
		}
	}
}
