// Quickstart: build a model, inject one memory fault and one
// computational fault, and inspect what they do to the output.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/faults"
	"repro/internal/gen"
	"repro/internal/model"
	"repro/internal/numerics"
	"repro/internal/pretrained"
)

func main() {
	log.SetFlags(0)

	// Load the trained translation model (falls back to training a small
	// one in-process if the checkpoint directory is missing).
	loader := pretrained.NewLoader(pretrained.DefaultDir())
	m, err := loader.Load("wmt-alma")
	if err != nil {
		log.Fatal(err)
	}
	task := pretrained.TranslationTask()
	suite := task.Suite(1, 1)
	inst := suite.Instances[0]

	fmt.Println("model:     ", m.Cfg.Name, "—", m.Cfg.NumParams(), "params,", m.Cfg.DType)
	fmt.Println("source:    ", suite.Vocab.DecodeAll(inst.Prompt[1:len(inst.Prompt)-1]))
	fmt.Println("reference: ", inst.Reference)

	// 1. Fault-free generation.
	clean := gen.Generate(m, inst.Prompt, gen.Defaults(inst.MaxNew))
	fmt.Println("fault-free:", suite.Vocab.Decode(clean.Tokens))

	// 2. A 2-bit memory fault: flip the exponent MSB (bit 14 of BF16) and
	// one lower bit of one weight of a middle block's up_proj, run, then
	// restore — the §3.2 protocol.
	site := faults.Site{
		Fault: faults.Mem2Bit,
		Layer: model.LayerRef{Block: 1, Kind: model.KindUp, Expert: -1},
		Row:   20, Col: 20,
		Bits: []int{numerics.BF16.Bits() - 2, 5},
	}
	before, after, err := faults.FaultValue(m, site)
	if err != nil {
		log.Fatal(err)
	}
	inj, err := faults.Arm(m, site, len(inst.Prompt))
	if err != nil {
		log.Fatal(err)
	}
	faulty := gen.Generate(m, inst.Prompt, gen.Defaults(inst.MaxNew))
	inj.Disarm()
	fmt.Printf("\nmemory fault at %v: weight %.4g -> %.4g\n", site.Layer, before, after)
	fmt.Println("faulty:    ", suite.Vocab.Decode(faulty.Tokens))

	// 3. A transient computational fault in one neuron during the third
	// generated token.
	comp := faults.Site{
		Fault: faults.Comp2Bit,
		Layer: model.LayerRef{Block: 1, Kind: model.KindDown, Expert: -1},
		Col:   7, Bits: []int{14, 13}, GenIter: 2,
	}
	inj, err = faults.Arm(m, comp, len(inst.Prompt))
	if err != nil {
		log.Fatal(err)
	}
	faulty = gen.Generate(m, inst.Prompt, gen.Defaults(inst.MaxNew))
	fired := inj.Fired
	inj.Disarm()
	fmt.Printf("\ncomputational fault %v (fired=%v)\n", comp, fired)
	fmt.Println("faulty:    ", suite.Vocab.Decode(faulty.Tokens))
}
