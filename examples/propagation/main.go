// Propagation renders the fault-propagation traces of Figures 5 and 6:
// how a memory fault corrupts one output column and then the whole next
// tensor, versus how a computational fault stays confined to one row and
// is squashed by RMSNorm.
//
//	go run ./examples/propagation
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/experiments"
)

func main() {
	log.SetFlags(0)
	for _, id := range []string{"fig5", "fig6"} {
		e, err := experiments.Get(id)
		if err != nil {
			log.Fatal(err)
		}
		out, err := e.Run(context.Background(), experiments.Config{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %s ===\n%s\n", e.Title, out.Text)
	}
}
