// Cot_study contrasts Chain-of-Thought and direct-answer prompting on
// the arithmetic task under fault injection (Observation #10), and shows
// a recovery case: a corrupted reasoning token that the model overrides
// to still produce the right answer.
//
//	go run ./examples/cot_study
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/outcome"
	"repro/internal/pretrained"
)

func main() {
	log.SetFlags(0)
	loader := pretrained.NewLoader(pretrained.DefaultDir())
	m, err := loader.Load("math-qwens")
	if err != nil {
		log.Fatal(err)
	}
	mt := pretrained.MathTask()

	fmt.Println("mode    fault       norm-accuracy")
	for _, mode := range []struct {
		name string
		cot  bool
	}{{"CoT", true}, {"direct", false}} {
		suite := mt.Suite(11, 8, mode.cot)
		for _, fm := range []faults.Model{faults.Comp2Bit, faults.Mem2Bit} {
			// The paper injects computational faults only into the
			// reasoning-token iterations when CoT is on (§4.3.2).
			res, err := core.New(m, suite, fm, 160, 77,
				core.WithReasoningOnly(mode.cot && fm == faults.Comp2Bit),
			).Run(context.Background())
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-7s %-11v %.4f\n", mode.name, fm, res.Normalized(metrics.KindAccuracy).Value)
		}
	}

	// Hunt for a recovery example: the chain changed but the final answer
	// survived (Masked despite Changed).
	suite := mt.Suite(11, 8, true)
	res, err := core.New(m, suite, faults.Comp2Bit, 400, 13,
		core.WithReasoningOnly(true),
	).Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	for _, tr := range res.Trials {
		if tr.Outcome.Class == outcome.Masked && tr.Outcome.Changed {
			inst := suite.Instances[tr.Instance]
			base := res.Baseline.Instances[tr.Instance]
			mc := m.Clone()
			inj, err := faults.Arm(mc, tr.Site, len(inst.Prompt))
			if err != nil {
				log.Fatal(err)
			}
			faulty := core.RerunInstance(mc, suite, &inst)
			inj.Disarm()
			fmt.Printf("\nrecovery example (site %v):\n", tr.Site)
			fmt.Printf("  question:   %s\n", suite.Vocab.DecodeAll(inst.Prompt[1:]))
			fmt.Printf("  fault-free: %s\n", base.Text)
			fmt.Printf("  faulty:     %s\n", faulty)
			fmt.Println("  the chain diverged, yet the final answer is still correct —")
			fmt.Println("  the model re-derived it from the operands (Obs #10).")
			return
		}
	}
	fmt.Println("\nno recovery example found at this trial budget; raise Trials")
}
