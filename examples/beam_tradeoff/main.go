// Beam_tradeoff sweeps the beam count on the fine-tuned translation
// model under 2-bit computational faults, reproducing Figure 19's
// resilience-vs-runtime trade-off (Observation #9: beam search routes
// around corrupted tokens; beyond ~2 beams only the cost grows).
//
//	go run ./examples/beam_tradeoff
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/gen"
	"repro/internal/metrics"
	"repro/internal/pretrained"
)

func main() {
	log.SetFlags(0)
	loader := pretrained.NewLoader(pretrained.DefaultDir())
	m, err := loader.Load("wmt-alma")
	if err != nil {
		log.Fatal(err)
	}
	suite := pretrained.TranslationTask().Suite(5, 8)

	fmt.Println("beams  norm-BLEU  steps/trial  ms/trial")
	for _, beams := range []int{1, 2, 4, 6, 8} {
		start := time.Now()
		res, err := core.New(m, suite, faults.Comp2Bit, 120, 31,
			core.WithGen(gen.Settings{NumBeams: beams}),
		).Run(context.Background())
		if err != nil {
			log.Fatal(err)
		}
		ms := time.Since(start).Seconds() * 1000 / 120
		fmt.Printf("%5d  %9.4f  %11.1f  %8.2f\n",
			beams, res.Normalized(metrics.KindBLEU).Value, res.MeanSteps(), ms)
	}
	fmt.Println("\ngreedy = 1 beam; the resilience gain lands at 2 beams while the")
	fmt.Println("decode cost keeps rising — the paper's recommended setting is 2.")
}
