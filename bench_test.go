// Package repro's benchmark harness: one testing.B entry per table and
// figure of the paper. Each benchmark runs the corresponding experiment
// at a reduced campaign size (raise via cmd/figures -trials for paper-
// scale runs) and reports the experiment's headline number as a custom
// metric, so `go test -bench=. -benchmem` regenerates every artifact and
// prints its key quantities.
//
// Experiments cache shared campaign grids within the process, so the
// first iteration of a grid-backed benchmark (Fig3/4/11, Fig8/9/10) pays
// the campaign cost and later iterations measure only aggregation.
package repro

import (
	"context"
	"testing"

	"repro/internal/experiments"
)

// benchCfg keeps benchmark campaigns small enough for CI-style runs.
var benchCfg = experiments.Config{Trials: 60, Instances: 6, Seed: 2025}

func runExperiment(b *testing.B, id string, keys ...string) {
	b.Helper()
	e, err := experiments.Get(id)
	if err != nil {
		b.Fatal(err)
	}
	var out *experiments.Outcome
	for i := 0; i < b.N; i++ {
		out, err = e.Run(context.Background(), benchCfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, k := range keys {
		if v, ok := out.Numbers[k]; ok {
			b.ReportMetric(v, k)
		}
	}
}

func BenchmarkTable1Workloads(b *testing.B) { runExperiment(b, "table1", "table1.suites") }
func BenchmarkTable2Formats(b *testing.B)   { runExperiment(b, "table2", "table2.BF16.expbits") }
func BenchmarkFig3Overall(b *testing.B) {
	runExperiment(b, "fig3", "fig3.mean_norm", "fig3.worst_norm")
}
func BenchmarkFig4FaultModels(b *testing.B) {
	runExperiment(b, "fig4", "fig4.2bits-mem", "fig4.2bits-comp")
}
func BenchmarkFig5MemTrace(b *testing.B)     { runExperiment(b, "fig5", "fig5.next_layer_frac") }
func BenchmarkFig6CompTrace(b *testing.B)    { runExperiment(b, "fig6", "fig6.next_layer_frac") }
func BenchmarkFig7Examples(b *testing.B)     { runExperiment(b, "fig7", "fig7.distorted") }
func BenchmarkFig8SDCBreakdown(b *testing.B) { runExperiment(b, "fig8") }
func BenchmarkFig9BitPosition(b *testing.B)  { runExperiment(b, "fig9") }
func BenchmarkFig10BitPosition(b *testing.B) { runExperiment(b, "fig10") }
func BenchmarkFig11PerTask(b *testing.B) {
	runExperiment(b, "fig11", "fig11.mc_avg", "fig11.gen_avg")
}
func BenchmarkFig12ReasoningSDC(b *testing.B) { runExperiment(b, "fig12", "fig12.found") }
func BenchmarkFig13Distributions(b *testing.B) {
	runExperiment(b, "fig13", "fig13.QwenS.weight_std", "fig13.FalconS.weight_std")
}
func BenchmarkFig14MoE(b *testing.B) {
	runExperiment(b, "fig14", "fig14.wmt16-like.moe", "fig14.wmt16-like.dense")
}
func BenchmarkFig15GateFaults(b *testing.B) {
	runExperiment(b, "fig15", "fig15.expert_changed", "fig15.output_changed_given_expert")
}
func BenchmarkFig16Scale(b *testing.B) { runExperiment(b, "fig16", "fig16.spread_std") }
func BenchmarkFig17Quant(b *testing.B) {
	runExperiment(b, "fig17", "fig17.BF16", "fig17.GPTQ-4bit")
}
func BenchmarkFig18Beam(b *testing.B) {
	runExperiment(b, "fig18", "fig18.WMT16/ALMA-S.greedy", "fig18.WMT16/ALMA-S.beam6")
}
func BenchmarkFig19BeamTradeoff(b *testing.B) {
	runExperiment(b, "fig19", "fig19.beam1.norm", "fig19.beam2.norm", "fig19.beam8.steps")
}
func BenchmarkFig20CoT(b *testing.B) {
	runExperiment(b, "fig20", "fig20.Qwen2.5-S.2bits-comp.cot", "fig20.Qwen2.5-S.2bits-comp.direct")
}
func BenchmarkFig21Datatype(b *testing.B) {
	runExperiment(b, "fig21", "fig21.FP16.2bits-mem", "fig21.BF16.2bits-mem")
}

func BenchmarkObs4FineTuned(b *testing.B) {
	runExperiment(b, "obs4", "obs4.wmt16.finetuned", "obs4.wmt16.general_avg")
}

// Extension and ablation studies (beyond the paper's figures).

func BenchmarkExt1RangeRestriction(b *testing.B) {
	runExperiment(b, "ext1", "ext1.2bits-mem.plain", "ext1.2bits-mem.protected")
}
func BenchmarkExt2Checksums(b *testing.B) {
	runExperiment(b, "ext2", "ext2.detected", "ext2.localized")
}
func BenchmarkAbl1Sampling(b *testing.B) {
	runExperiment(b, "abl1", "abl1.type_uniform", "abl1.instance_uniform")
}
func BenchmarkAbl2Thresholds(b *testing.B) { runExperiment(b, "abl2") }
