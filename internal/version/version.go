// Package version pins the build's release identity. The fabric join
// handshake compares it across the fleet — a worker built from a
// different revision than its coordinator could sample different
// injection sites or classify outcomes differently, silently breaking
// the bit-identity guarantee of the distributed merge — and llmfi
// -version prints it so mismatched binaries can be identified by hand.
package version

// Version identifies the llmfi runtime release. Bump it whenever a
// change could alter campaign results (sampling, decoding, scoring,
// classification); fleets must run one version end to end.
const Version = "0.8.0"
