package abft

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/mitigate"
	"repro/internal/model"
	"repro/internal/numerics"
	"repro/internal/tasks"
	"repro/internal/tensor"
	"repro/internal/token"
)

func testModel(t *testing.T, moe bool) *model.Model {
	t.Helper()
	vocab := tasks.GeneralVocab()
	cfg := model.StandardConfig("abft-test", vocab.Size(), numerics.BF16)
	if moe {
		cfg = model.MoEConfig(cfg)
	}
	return model.MustBuild(model.Spec{Config: cfg, Family: model.QwenS, Seed: 8})
}

// generate runs a short fault-free generation with the checker armed and
// returns the number of checks performed.
func generate(t *testing.T, m *model.Model, ch *Checker) int {
	t.Helper()
	suite := tasks.NewSelfRefSuite("abft-noise", 4, 3, 40, 16, nil)
	m.SetChecker(ch)
	defer m.SetChecker(nil)
	for _, inst := range suite.Instances {
		st := m.NewState()
		logits := st.Prefill(inst.Prompt)
		gen.GenerateFrom(m, st, append([]float32(nil), logits...),
			gen.Settings{NumBeams: 1, MaxNewTokens: inst.MaxNew, StopToken: token.EOS, BanSpecials: true})
	}
	return ch.Stats().Checks
}

// TestDefaultTolClearsNoiseFloor drives fault-free generation through
// dense and MoE models with every layer protected: the derived tolerance
// must record zero violations (a detector that cries wolf on clean
// inference is useless), and the worst observed accumulation noise must
// sit well below it so the margin is real, not lucky.
func TestDefaultTolClearsNoiseFloor(t *testing.T) {
	for _, moe := range []bool{false, true} {
		m := testModel(t, moe)

		ch := New(Config{})
		if err := ch.ProtectAll(m); err != nil {
			t.Fatal(err)
		}
		checks := generate(t, m, ch)
		if checks == 0 {
			t.Fatal("no checks ran")
		}
		if got := ch.Stats().Flagged; got != 0 {
			t.Fatalf("moe=%v: %d false positives on fault-free generation (of %d checks)", moe, got, checks)
		}

		// Measure the actual noise by re-running with a tolerance below
		// any achievable float32 deviation, so every check "fails" and
		// reports its deviation.
		probe := New(Config{Tol: 1e-300})
		if err := probe.ProtectAll(m); err != nil {
			t.Fatal(err)
		}
		generate(t, m, probe)
		for _, ev := range probe.Events() {
			w, err := m.Layer(ev.Ref)
			if err != nil {
				t.Fatal(err)
			}
			if ev.Deviation == 0 {
				continue
			}
			tol := DefaultTol(w.In())
			if ratio := ev.Deviation / ev.Scale; ratio > tol/8 {
				t.Errorf("moe=%v %v pos %d: noise %.3g within 8x of tolerance %.3g", moe, ev.Ref, ev.Pos, ratio, tol)
			}
		}
	}
}

// corruptionCase computes one clean linear output and hands the pieces to
// a test: the layer, its input row, and the clean output.
func corruptionCase(t *testing.T, m *model.Model) (ref model.LayerRef, w model.Weight, in, out []float32) {
	t.Helper()
	ref = model.LayerRef{Block: 1, Kind: model.KindQ, Expert: -1}
	var err error
	w, err = m.Layer(ref)
	if err != nil {
		t.Fatal(err)
	}
	in = make([]float32, w.In())
	for i := range in {
		in[i] = float32(math.Sin(float64(i)+0.5)) * 0.8
	}
	out = make([]float32, w.Out())
	w.Forward(out, in)
	return ref, w, in, out
}

func TestDetectsExponentFlipMissesLowMantissa(t *testing.T) {
	m := testModel(t, false)
	ch := New(Config{})
	ref, w, in, out := corruptionCase(t, m)
	if err := ch.Protect(m, ref); err != nil {
		t.Fatal(err)
	}

	// Clean output passes.
	ch.CheckLinear(ref, 0, w, in, out)
	if ch.Stats().Flagged != 0 {
		t.Fatal("clean output flagged")
	}

	// Exponent-MSB flip (BF16 bit 14) is caught.
	corrupted := append([]float32(nil), out...)
	corrupted[3] = float32(numerics.FlipBits(numerics.BF16, float64(corrupted[3]), 14))
	ch.Reset()
	ch.CheckLinear(ref, 0, w, in, corrupted)
	if ch.Stats().Flagged != 1 {
		t.Fatalf("exponent-MSB flip not flagged (value %g -> %g)", out[3], corrupted[3])
	}
	if ev := ch.Events()[0]; ev.Ref != ref || ev.Pos != 0 {
		t.Fatalf("event at %v pos %d, want %v pos 0", ev.Ref, ev.Pos, ref)
	}

	// A low-mantissa flip on a near-zero element escapes: its deviation
	// is a fraction of that element's own magnitude, below the noise
	// tolerance. Pick an element whose flip provably lands under half the
	// threshold so the assertion tests the physics, not one lucky value.
	_, _, scale := tensor.NewChecksums(w.(*model.Dense).T).CheckRow(in, out, 0)
	threshold := DefaultTol(w.In()) * scale
	victim := -1
	for i, v := range out {
		f := numerics.FlipBits(numerics.BF16, float64(v), 0)
		if d := math.Abs(f - float64(v)); d > 0 && d < threshold/2 {
			victim = i
			break
		}
	}
	if victim < 0 {
		t.Fatal("no output element small enough for a sub-threshold flip; widen the layer")
	}
	corrupted = append([]float32(nil), out...)
	corrupted[victim] = float32(numerics.FlipBits(numerics.BF16, float64(corrupted[victim]), 0))
	ch.Reset()
	ch.CheckLinear(ref, 0, w, in, corrupted)
	if ch.Stats().Flagged != 0 {
		t.Fatal("sub-threshold mantissa flip flagged; tolerance is too tight")
	}

	// A NaN in the output always fails the check.
	corrupted = append([]float32(nil), out...)
	corrupted[0] = float32(math.NaN())
	ch.Reset()
	ch.CheckLinear(ref, 0, w, in, corrupted)
	if ch.Stats().Flagged != 1 {
		t.Fatal("NaN output not flagged")
	}
}

func TestCorrectRestoresBitIdenticalOutput(t *testing.T) {
	m := testModel(t, false)
	ch := New(Config{Policy: mitigate.PolicyCorrect})
	ref, w, in, out := corruptionCase(t, m)
	if err := ch.Protect(m, ref); err != nil {
		t.Fatal(err)
	}

	corrupted := append([]float32(nil), out...)
	corrupted[7] = float32(numerics.FlipBits(numerics.BF16, float64(corrupted[7]), 14))
	ch.CheckLinear(ref, 5, w, in, corrupted)

	st := ch.Stats()
	if st.Flagged != 1 || st.Corrected != 1 {
		t.Fatalf("stats = %+v, want 1 flagged 1 corrected", st)
	}
	for i, v := range corrupted {
		if v != out[i] {
			t.Fatalf("corrected[%d] = %g, want clean %g", i, v, out[i])
		}
	}
	if ch.Events()[0].Action != mitigate.ActionCorrect {
		t.Fatalf("action = %v, want correct", ch.Events()[0].Action)
	}
}

func TestSkipZeroesPersistentCorruption(t *testing.T) {
	m := testModel(t, false)
	ch := New(Config{Policy: mitigate.PolicyCorrectOrSkip})
	ref, w, in, _ := corruptionCase(t, m)
	// Checksums snapshot the clean weights...
	if err := ch.Protect(m, ref); err != nil {
		t.Fatal(err)
	}
	// ...then a resident fault corrupts the weight itself, so recompute
	// reproduces the corruption and the escalation falls through to skip.
	restore := w.FlipBits(2, 3, []int{14})
	defer restore()

	out := make([]float32, w.Out())
	w.Forward(out, in)
	ch.CheckLinear(ref, 0, w, in, out)

	st := ch.Stats()
	if st.Flagged != 1 || st.Skipped != 1 || st.Corrected != 0 {
		t.Fatalf("stats = %+v, want 1 flagged 1 skipped", st)
	}
	for i, v := range out {
		if v != 0 {
			t.Fatalf("out[%d] = %g after skip, want 0", i, v)
		}
	}
	// PolicyCorrect alone must leave the corrupted output in place.
	ch2 := New(Config{Policy: mitigate.PolicyCorrect})
	if err := ch2.Protect(m, ref); err != nil {
		t.Fatal(err)
	}
	// Note Protect ran with the fault still armed: re-protect from clean
	// weights to keep the reference honest.
	restore()
	ch2 = New(Config{Policy: mitigate.PolicyCorrect})
	if err := ch2.Protect(m, ref); err != nil {
		t.Fatal(err)
	}
	restore2 := w.FlipBits(2, 3, []int{14})
	defer restore2()
	w.Forward(out, in)
	before := append([]float32(nil), out...)
	ch2.CheckLinear(ref, 0, w, in, out)
	if st := ch2.Stats(); st.Flagged != 1 || st.Corrected != 0 || st.Skipped != 0 {
		t.Fatalf("stats = %+v, want flag without correction", st)
	}
	for i, v := range out {
		if v != before[i] {
			t.Fatalf("PolicyCorrect mutated an uncorrectable output at %d", i)
		}
	}
}

// genericWeight hides the *model.Dense concrete type so newLayerSums
// takes the interface Get path.
type genericWeight struct{ model.Weight }

func TestGenericWeightChecksumPath(t *testing.T) {
	m := testModel(t, false)
	ref, w, in, out := corruptionCase(t, m)

	ch := New(Config{})
	if err := ch.Protect(m, ref); err != nil {
		t.Fatal(err)
	}
	fast := ch.sums[ref]

	slow := New(Config{}).newLayerSums(genericWeight{w})
	if len(fast.cs.Sum) != len(slow.cs.Sum) || fast.tol != slow.tol {
		t.Fatal("generic checksum shape/tolerance mismatch")
	}
	for i := range fast.cs.Sum {
		if fast.cs.Sum[i] != slow.cs.Sum[i] || fast.cs.Abs[i] != slow.cs.Abs[i] {
			t.Fatalf("checksum[%d] fast %g/%g vs generic %g/%g",
				i, fast.cs.Sum[i], fast.cs.Abs[i], slow.cs.Sum[i], slow.cs.Abs[i])
		}
	}
	if ok, _, _ := slow.cs.CheckRow(in, out, slow.tol); !ok {
		t.Fatal("generic checksums reject a clean output")
	}
}

func TestProtectUnknownLayer(t *testing.T) {
	m := testModel(t, false)
	ch := New(Config{})
	bad := model.LayerRef{Block: 99, Kind: model.KindQ, Expert: -1}
	if err := ch.Protect(m, bad); err == nil {
		t.Fatal("Protect accepted an out-of-range layer")
	}
}

func TestDefaultTolScaling(t *testing.T) {
	if DefaultTol(0) <= 0 {
		t.Fatal("DefaultTol(0) not positive")
	}
	if DefaultTol(64) >= DefaultTol(256) {
		t.Fatal("DefaultTol must grow with reduction length")
	}
	// k=64: 4 * 8 * 2^-24 = 1.91e-6.
	want := 4 * 8 * eps32
	if got := DefaultTol(64); math.Abs(got-want) > 1e-12 {
		t.Fatalf("DefaultTol(64) = %g, want %g", got, want)
	}
}
