// Package abft implements online algorithm-based fault tolerance for the
// model's linear layers: every protected GEMM output row is verified
// against precomputed float64 checksums of the clean weights, in the
// style of the ReaLM line of work the paper's related-work section
// discusses. A Checker plugs into model.SetChecker, so the check runs
// after the fault-injection hooks (it observes corrupted values exactly
// as a deployed detector would) and before datatype rounding (its noise
// floor is the float32 kernel, not BF16 storage).
//
// Detection physics under the repo's fault models: an exponent-bit flip
// either multiplies the struck value by 2^2^i — a deviation that dwarfs
// any activation scale — or divides it, leaving a deviation of roughly
// the value's own magnitude; both clear the tolerance except when the
// struck value was already near zero. Low-order mantissa flips perturb
// the output checksum by a fraction of one element's magnitude and
// disappear below the float32 accumulation noise the tolerance must
// admit — they escape, which is acceptable precisely because the paper
// shows such flips are overwhelmingly Masked.
package abft

import (
	"math"
	"time"

	"repro/internal/mitigate"
	"repro/internal/model"
	"repro/internal/tensor"
)

// eps32 is the float32 unit roundoff (2^-24): the checked kernel
// accumulates in float32, so its noise is proportional to eps32.
const eps32 = 1.0 / (1 << 24)

// defaultMargin is the safety factor DefaultTol places between the
// detection threshold and the kernel's typical accumulation noise.
// Fault-free generation over the dense and MoE profiles measures peak
// deviation/(scale·sqrt(k)) of ~0.075·eps32 (see TestDefaultTolClears-
// NoiseFloor), so a margin of 4 still leaves >50x headroom over the
// observed noise while keeping the divide-direction exponent-flip miss
// band (deviation ≈ |struck value| < tol·scale) four times narrower than
// a margin of 16 would.
const defaultMargin = 4

// DefaultTol returns the relative checksum tolerance for a linear layer
// with k input features. The output checksum deviates from the float64
// expectation by the kernel's float32 rounding error, which is bounded by
// k·eps32 relative to the absolute-product scale Σ|x|·Σ|W| but behaves in
// practice like a random walk of ~sqrt(k) rounding steps. DefaultTol
// therefore sits a defaultMargin factor above sqrt(k)·eps32 — far enough
// from the noise floor that a fault-free campaign records zero false
// positives, close enough that any deviation larger than ~tol·scale
// (roughly one typical activation magnitude) is still caught.
func DefaultTol(k int) float64 {
	if k < 1 {
		k = 1
	}
	return defaultMargin * math.Sqrt(float64(k)) * eps32
}

// Config parameterizes a Checker.
type Config struct {
	// Tol overrides the per-layer derived tolerance (0 = DefaultTol of
	// each protected layer's input width).
	Tol float64
	// Policy selects the response escalation (default detect-only).
	Policy mitigate.Policy
}

// Event is one flagged check.
type Event struct {
	Ref model.LayerRef
	// Pos is the absolute token position whose output row failed.
	Pos int
	// Deviation and Scale are the measured checksum deviation and the
	// magnitude scale the tolerance was relative to.
	Deviation, Scale float64
	// Action is the response taken (detect / correct / skip).
	Action mitigate.Action
}

// Stats counts a trial's checks and responses.
type Stats struct {
	// Checks is the number of checksum evaluations; Flagged the violations.
	Checks, Flagged int
	// Corrected and Skipped count recompute-repaired and zeroed outputs.
	Corrected, Skipped int
}

// Checker verifies protected linear layers through the model.LinearChecker
// interface. It is not safe for concurrent use: the campaign engine gives
// each worker its own Checker, armed on that worker's model clone.
//
// Clean-weight checksums are cached per layer across trials — sound
// because every trial restores the weights on Disarm — so only the first
// trial touching a layer pays the O(k·n) summation. Protect must
// therefore run before faults.Arm: a memory fault flips the very storage
// the checksums are the reference for.
type Checker struct {
	cfg     Config
	sums    map[model.LayerRef]layerSums
	active  map[model.LayerRef]bool
	events  []Event
	stats   Stats
	scratch []float32
	mitTime time.Duration
}

type layerSums struct {
	cs  tensor.Checksums
	tol float64
}

// New returns an empty Checker.
func New(cfg Config) *Checker {
	return NewWithCache(cfg, NewCache())
}

// Cache is a shareable clean-weight checksum store. Checkers built over
// the same Cache (NewWithCache) compute each layer's O(k·n) sums once
// between them — the batched decode scheduler gives every in-flight
// trial its own Checker (own events, stats, tolerance bookkeeping) over
// the worker's single Cache. Like Checker it is not safe for concurrent
// use; a worker's trials all run on one goroutine.
type Cache struct {
	sums map[model.LayerRef]layerSums
}

// NewCache returns an empty checksum cache.
func NewCache() *Cache {
	return &Cache{sums: map[model.LayerRef]layerSums{}}
}

// NewWithCache returns a Checker whose clean-weight checksums live in
// (and are shared through) cache. The per-layer tolerance is resolved by
// whichever Checker first protects a layer, so Checkers sharing a cache
// must agree on Config.Tol — the campaign engine derives one tolerance
// per campaign, which every trial's Checker inherits.
func NewWithCache(cfg Config, cache *Cache) *Checker {
	return &Checker{
		cfg:    cfg,
		sums:   cache.sums,
		active: map[model.LayerRef]bool{},
	}
}

// Protect replaces the active layer set, computing (and caching)
// clean-weight checksums for layers not seen before. It must be called
// before the trial's fault is armed so the checksums reflect fault-free
// weights.
func (c *Checker) Protect(m *model.Model, refs ...model.LayerRef) error {
	c.active = make(map[model.LayerRef]bool, len(refs))
	for _, ref := range refs {
		if _, ok := c.sums[ref]; !ok {
			w, err := m.Layer(ref)
			if err != nil {
				return err
			}
			c.sums[ref] = c.newLayerSums(w)
		}
		c.active[ref] = true
	}
	return nil
}

// ProtectAll protects every block linear layer of m (the paper's
// injection sites) — the full-coverage configuration whose runtime cost
// the BENCH_3 comparison measures.
func (c *Checker) ProtectAll(m *model.Model) error {
	infos := m.LinearLayers()
	refs := make([]model.LayerRef, len(infos))
	for i, li := range infos {
		refs[i] = li.Ref
	}
	return c.Protect(m, refs...)
}

// newLayerSums computes a layer's checksums, fast-pathing dense storage.
func (c *Checker) newLayerSums(w model.Weight) layerSums {
	tol := c.cfg.Tol
	if tol <= 0 {
		tol = DefaultTol(w.In())
	}
	if d, ok := w.(*model.Dense); ok {
		return layerSums{cs: tensor.NewChecksums(d.T), tol: tol}
	}
	k, n := w.In(), w.Out()
	cs := tensor.Checksums{Sum: make([]float64, k), Abs: make([]float64, k)}
	for r := 0; r < k; r++ {
		var s, a float64
		for j := 0; j < n; j++ {
			v := w.Get(r, j)
			s += v
			a += math.Abs(v)
		}
		cs.Sum[r] = s
		cs.Abs[r] = a
	}
	return layerSums{cs: cs, tol: tol}
}

// Reset clears the event log and counters for a new trial. The checksum
// cache and active set persist: Disarm restores the weights, so the
// clean-weight sums stay valid across trials.
func (c *Checker) Reset() {
	c.events = c.events[:0]
	c.stats = Stats{}
	c.mitTime = 0
}

// MitigationTime returns the wall time spent inside the mitigation
// escalation (recompute, verify, fallback) since the last Reset. The
// telemetry layer subtracts it from the checker span so detection cost
// and repair cost report as separate phases.
func (c *Checker) MitigationTime() time.Duration { return c.mitTime }

// Events returns the flagged checks since the last Reset. The slice is
// reused; copy it to retain past Reset.
func (c *Checker) Events() []Event { return c.events }

// Stats returns the counters since the last Reset.
func (c *Checker) Stats() Stats { return c.stats }

// CheckLinear implements model.LinearChecker: it verifies the output row
// of a protected layer and, under a correcting policy, repairs it in
// place via the mitigate escalation (recompute, verify, fall back to
// zeroing the row). Unprotected layers cost one map lookup.
func (c *Checker) CheckLinear(ref model.LayerRef, pos int, w model.Weight, in, out []float32) {
	if !c.active[ref] {
		return
	}
	ls := c.sums[ref]
	c.stats.Checks++
	ok, dev, scale := ls.cs.CheckRow(in, out, ls.tol)
	if ok {
		return
	}
	c.stats.Flagged++
	ev := Event{Ref: ref, Pos: pos, Deviation: dev, Scale: scale, Action: mitigate.ActionDetect}
	if c.cfg.Policy != mitigate.PolicyDetect {
		if cap(c.scratch) < len(out) {
			c.scratch = make([]float32, len(out))
		}
		mitStart := time.Now() //llmfi:allow determinism mitigation-latency telemetry; never feeds the detection decision
		ev.Action = mitigate.Respond(c.cfg.Policy, out, c.scratch[:len(out)],
			func(dst []float32) { w.Forward(dst, in) },
			func(cand []float32) bool {
				ok, _, _ := ls.cs.CheckRow(in, cand, ls.tol)
				return ok
			})
		c.mitTime += time.Since(mitStart) //llmfi:allow determinism mitigation-latency telemetry; never feeds the detection decision
		switch ev.Action {
		case mitigate.ActionCorrect:
			c.stats.Corrected++
		case mitigate.ActionSkip:
			c.stats.Skipped++
		}
	}
	c.events = append(c.events, ev)
}
