package gen

import "repro/internal/tensor"

// Stepper is the greedy decode loop unrolled into a per-token state
// machine, so a continuous-batching scheduler can interleave many
// trials' loops while each one visits exactly the computation the
// serial ContinueGreedy would. Feed it the logits of the current
// position; it tells you which token to decode next and whether to
// keep going. ContinueGreedy itself is rewritten on top of Stepper, so
// the two can never drift apart.
type Stepper struct {
	s    Settings
	res  Result
	i    int
	done bool
}

// NewStepper starts a greedy decode under s.
func NewStepper(s Settings) *Stepper {
	return &Stepper{s: s}
}

// Next consumes the logits of the state's current position and returns
// the chosen token plus whether the caller should run a decode step
// with it. The logits are masked in place exactly as ContinueGreedy
// masks them. pos and maxSeq are the state's position and the model's
// sequence capacity — when step is false the loop is over and Result
// holds the finished generation. Note the serial loop runs one final
// DecodeStep whose logits are never consumed (the step that would
// produce the token after the last kept one); Next preserves that:
// step is true for the last kept token, and the following Next call
// returns step=false without looking at the logits only when the token
// budget is exhausted.
func (sp *Stepper) Next(logits []float32, pos, maxSeq int) (tok int, step bool) {
	if sp.done || sp.i >= sp.s.MaxNewTokens {
		return 0, false
	}
	masked := maskLogits(logits, sp.s, sp.i)
	lsm := tensor.LogSoftmaxRow(masked)
	next := tensor.Argmax(masked)
	sp.res.LogProb += lsm[next]
	sp.res.Steps++
	sp.i++
	if next == sp.s.StopToken {
		sp.res.Stopped = true
		sp.done = true
		return next, false
	}
	sp.res.Tokens = append(sp.res.Tokens, next)
	if pos >= maxSeq {
		sp.done = true
		return next, false
	}
	return next, true
}

// Result returns the generation accumulated so far; it is final once
// Next has returned step=false.
func (sp *Stepper) Result() Result {
	return sp.res
}
