// Package gen implements the decoding strategies studied in §4.3:
// deterministic greedy search, beam search with configurable width, and
// sequence option scoring for multiple-choice evaluation. Sampling is
// deliberately absent — the paper disables it (§3.3.4) so that the
// fault-free and fault-injected runs visit identical computation.
package gen

import (
	"math"
	"sort"

	"repro/internal/model"
	"repro/internal/tensor"
	"repro/internal/token"
)

// Settings controls one generation call. The zero value is not useful;
// start from Defaults.
type Settings struct {
	// MaxNewTokens bounds the generated sequence length.
	MaxNewTokens int
	// NumBeams selects greedy search (1) or beam search (>1), mirroring
	// HuggingFace generate(num_beams=...).
	NumBeams int
	// StopToken ends generation when produced (normally token.EOS).
	StopToken int
	// BanSpecials forbids PAD/BOS/UNK from being generated, keeping
	// corrupted outputs printable without changing the argmax dynamics of
	// real tokens.
	BanSpecials bool
	// MinNewTokens suppresses StopToken for the first MinNewTokens steps.
	MinNewTokens int
}

// Defaults returns the paper's default generation settings: greedy
// decoding with an EOS stop.
func Defaults(maxNew int) Settings {
	return Settings{
		MaxNewTokens: maxNew,
		NumBeams:     1,
		StopToken:    token.EOS,
		BanSpecials:  true,
	}
}

// Result is a completed generation.
type Result struct {
	// Tokens are the generated ids, excluding the prompt and excluding the
	// stop token.
	Tokens []int
	// LogProb is the cumulative log-probability of the returned sequence
	// under the model (including the stop token when one was produced).
	LogProb float64
	// Stopped reports whether generation ended on StopToken (vs. running
	// into MaxNewTokens).
	Stopped bool
	// Steps is the number of decode steps performed across all beams —
	// the runtime-cost proxy reported in Figure 19.
	Steps int
}

// Generate decodes from m after the given prompt. It dispatches on
// NumBeams. The model's registered hooks (fault injectors, tracers) fire
// during both prefill and generation.
func Generate(m *model.Model, prompt []int, s Settings) Result {
	if s.NumBeams <= 1 {
		return greedy(m, prompt, s)
	}
	return beam(m, prompt, s)
}

// GenerateFrom decodes from an already-prefilled state whose last logits
// are given — the prefix-cache entry point. The caller keeps ownership of
// logits; pass a private copy when the backing slice must survive (both
// strategies mask it in place). Steps counts only the continuation, so
// reused-prefix trials do not recount prompt positions they never ran.
func GenerateFrom(m *model.Model, st *model.State, logits []float32, s Settings) Result {
	if s.NumBeams <= 1 {
		return ContinueGreedy(m, st, logits, s)
	}
	return ContinueBeam(m, st, logits, s)
}

// maskLogits applies the settings' token bans in place and returns the
// possibly-modified slice.
func maskLogits(logits []float32, s Settings, step int) []float32 {
	ninf := float32(math.Inf(-1))
	if s.BanSpecials {
		logits[token.PAD] = ninf
		logits[token.BOS] = ninf
		logits[token.UNK] = ninf
	}
	if step < s.MinNewTokens {
		logits[s.StopToken] = ninf
	}
	return logits
}

func greedy(m *model.Model, prompt []int, s Settings) Result {
	st := m.NewState()
	logits := st.Prefill(prompt)
	res := ContinueGreedy(m, st, logits, s)
	res.Steps += len(prompt)
	return res
}

// ContinueGreedy decodes greedily from an already-prefilled state whose
// last logits are given. Callers that need a custom state (e.g. with
// expert tracing enabled) prefill themselves and hand over here. The
// returned Steps counts only the continuation.
func ContinueGreedy(m *model.Model, st *model.State, logits []float32, s Settings) Result {
	sp := NewStepper(s)
	for {
		tok, step := sp.Next(logits, st.Pos, m.Cfg.MaxSeq)
		if !step {
			break
		}
		logits = st.DecodeStep(tok)
	}
	return sp.Result()
}

// hypothesis is one live beam.
type hypothesis struct {
	st      *model.State
	tokens  []int
	logProb float64
	logits  []float32
}

func beam(m *model.Model, prompt []int, s Settings) Result {
	st := m.NewState()
	logits := st.Prefill(prompt)
	res := ContinueBeam(m, st, logits, s)
	res.Steps += len(prompt)
	return res
}

// ContinueBeam runs beam search from an already-prefilled state whose
// last logits are given. The returned Steps counts only the continuation.
func ContinueBeam(m *model.Model, st *model.State, logits []float32, s Settings) Result {
	first := &hypothesis{st: st, logits: append([]float32(nil), logits...)}
	live := []*hypothesis{first}
	var done []*hypothesis
	steps := 0

	for i := 0; i < s.MaxNewTokens && len(live) > 0; i++ {
		type cand struct {
			parent *hypothesis
			tok    int
			lp     float64
		}
		var cands []cand
		for _, h := range live {
			masked := maskLogits(h.logits, s, i)
			lsm := tensor.LogSoftmaxRow(masked)
			for _, tok := range topTokens(lsm, s.NumBeams) {
				cands = append(cands, cand{h, tok, h.logProb + lsm[tok]})
			}
		}
		sort.SliceStable(cands, func(a, b int) bool { return cands[a].lp > cands[b].lp })
		if len(cands) > s.NumBeams {
			cands = cands[:s.NumBeams]
		}

		// Pre-fork: a parent whose state is needed by several surviving
		// candidates must be copied before the first candidate advances it.
		counts := make(map[*hypothesis]int)
		for _, c := range cands {
			if c.tok != s.StopToken {
				counts[c.parent]++
			}
		}
		forks := make(map[*hypothesis][]*model.State)
		for parent, n := range counts {
			for j := 1; j < n; j++ {
				forks[parent] = append(forks[parent], parent.st.Fork())
			}
		}

		var next []*hypothesis
		used := make(map[*hypothesis]bool)
		for _, c := range cands {
			if c.tok == s.StopToken {
				done = append(done, &hypothesis{
					tokens:  append([]int(nil), c.parent.tokens...),
					logProb: c.lp,
				})
				continue
			}
			var hst *model.State
			if !used[c.parent] {
				hst = c.parent.st
				used[c.parent] = true
			} else {
				f := forks[c.parent]
				hst, forks[c.parent] = f[len(f)-1], f[:len(f)-1]
			}
			nh := &hypothesis{
				st:      hst,
				tokens:  append(append([]int(nil), c.parent.tokens...), c.tok),
				logProb: c.lp,
			}
			if hst.Pos < m.Cfg.MaxSeq {
				nh.logits = append(nh.logits[:0], hst.DecodeStep(c.tok)...)
				steps++
				next = append(next, nh)
			} else {
				done = append(done, nh)
			}
			if len(next) == s.NumBeams {
				break
			}
		}
		live = next
		// Early exit: if the best finished hypothesis already beats every
		// live one, no live beam can overtake it (log-probs only decrease).
		if best := bestHyp(done); best != nil && len(live) > 0 {
			allWorse := true
			for _, h := range live {
				if h.logProb > best.logProb {
					allWorse = false
					break
				}
			}
			if allWorse {
				live = nil
			}
		}
	}
	done = append(done, live...)
	best := bestHyp(done)
	if best == nil {
		return Result{Steps: steps}
	}
	return Result{
		Tokens:  best.tokens,
		LogProb: best.logProb,
		Stopped: best.st == nil, // finished hypotheses carry no state
		Steps:   steps,
	}
}

func bestHyp(hs []*hypothesis) *hypothesis {
	var best *hypothesis
	for _, h := range hs {
		if best == nil || h.logProb > best.logProb {
			best = h
		}
	}
	return best
}

// topTokens returns the indices of the k largest log-probabilities.
func topTokens(lsm []float64, k int) []int {
	idx := make([]int, len(lsm))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return lsm[idx[a]] > lsm[idx[b]] })
	if k < len(idx) {
		idx = idx[:k]
	}
	return idx
}

// ScoreOption returns the total log-likelihood of option continuing
// prompt — the multiple-choice scoring rule of §3.3.2 (the model scores
// each option and the highest wins).
func ScoreOption(m *model.Model, prompt, option []int) float64 {
	st := m.NewState()
	logits := st.Prefill(prompt)
	var total float64
	for _, tok := range option {
		lsm := tensor.LogSoftmaxRow(logits)
		total += lsm[tok]
		if st.Pos >= m.Cfg.MaxSeq {
			break
		}
		logits = st.DecodeStep(tok)
	}
	return total
}

// ChooseOption scores every option and returns the index of the best one
// together with all scores. Ties break toward the lower index.
func ChooseOption(m *model.Model, prompt []int, options [][]int) (int, []float64) {
	scores := make([]float64, len(options))
	best := 0
	for i, opt := range options {
		scores[i] = ScoreOption(m, prompt, opt)
		if scores[i] > scores[best] {
			best = i
		}
	}
	return best, scores
}
