package gen

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/model"
	"repro/internal/numerics"
	"repro/internal/token"
)

func testModel(seed uint64) *model.Model {
	cfg := model.Config{
		Name: "gen-test", Vocab: 24, DModel: 16, NHeads: 2, NBlocks: 2,
		FFHidden: 24, MaxSeq: 48, Eps: 1e-5, DType: numerics.FP32,
		RopeTheta: 10000,
	}
	return model.MustBuild(model.Spec{Config: cfg, Family: model.LlamaS, Seed: seed})
}

func TestGreedyDeterministic(t *testing.T) {
	m := testModel(3)
	s := Defaults(8)
	a := Generate(m, []int{1, 5, 6}, s)
	b := Generate(m, []int{1, 5, 6}, s)
	if len(a.Tokens) != len(b.Tokens) {
		t.Fatal("nondeterministic generation length")
	}
	for i := range a.Tokens {
		if a.Tokens[i] != b.Tokens[i] {
			t.Fatal("nondeterministic generation")
		}
	}
}

func TestGreedyRespectsMaxNew(t *testing.T) {
	m := testModel(4)
	s := Defaults(5)
	s.MinNewTokens = 5 // EOS banned throughout, so length is exactly 5
	res := Generate(m, []int{1, 5}, s)
	if len(res.Tokens) != 5 {
		t.Fatalf("generated %d tokens, want 5", len(res.Tokens))
	}
}

func TestBanSpecials(t *testing.T) {
	f := func(seed uint64) bool {
		m := testModel(seed%16 + 1)
		s := Defaults(10)
		res := Generate(m, []int{1, 5, 7}, s)
		for _, tok := range res.Tokens {
			if tok == token.PAD || tok == token.BOS || tok == token.UNK {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

func TestBeamOneMatchesGreedy(t *testing.T) {
	// With a single beam the search must produce exactly the greedy
	// sequence.
	for seed := uint64(1); seed <= 6; seed++ {
		m := testModel(seed)
		g := Generate(m, []int{1, 5, 6}, Defaults(10))
		s := Defaults(10)
		s.NumBeams = 1
		b := beam(m, []int{1, 5, 6}, s)
		if len(g.Tokens) != len(b.Tokens) {
			t.Fatalf("seed %d: beam-1 len %d vs greedy %d", seed, len(b.Tokens), len(g.Tokens))
		}
		for i := range g.Tokens {
			if g.Tokens[i] != b.Tokens[i] {
				t.Fatalf("seed %d: beam-1 diverges from greedy at %d", seed, i)
			}
		}
	}
}

func TestBeamLogProbMonotone(t *testing.T) {
	// Wider beams can only find sequences of equal or higher cumulative
	// log-probability (they search a superset of paths).
	for seed := uint64(1); seed <= 5; seed++ {
		m := testModel(seed)
		prompt := []int{1, 5, 6, 7}
		var prev float64 = math.Inf(-1)
		for _, beams := range []int{1, 2, 4, 8} {
			s := Defaults(8)
			s.NumBeams = beams
			res := Generate(m, prompt, s)
			if res.LogProb+1e-6 < prev {
				t.Fatalf("seed %d: beam %d logprob %.6f < narrower beam %.6f",
					seed, beams, res.LogProb, prev)
			}
			prev = res.LogProb
		}
	}
}

func TestBeamStepsGrowWithWidth(t *testing.T) {
	m := testModel(7)
	prompt := []int{1, 5, 6}
	s1 := Defaults(8)
	s6 := Defaults(8)
	s6.NumBeams = 6
	r1 := Generate(m, prompt, s1)
	r6 := Generate(m, prompt, s6)
	if r6.Steps <= r1.Steps {
		t.Fatalf("beam-6 steps %d should exceed greedy %d", r6.Steps, r1.Steps)
	}
}

func TestScoreOptionAdditive(t *testing.T) {
	m := testModel(9)
	prompt := []int{1, 5, 6}
	opt := []int{7, 8}
	got := ScoreOption(m, prompt, opt)

	// Manual: sum of per-token log-softmax probabilities.
	st := m.NewState()
	logits := st.Prefill(prompt)
	var want float64
	for _, tok := range opt {
		lsm := logSoftmax(logits)
		want += lsm[tok]
		logits = st.DecodeStep(tok)
	}
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("ScoreOption = %f, manual = %f", got, want)
	}
}

func logSoftmax(row []float32) []float64 {
	maxv := math.Inf(-1)
	for _, v := range row {
		if float64(v) > maxv {
			maxv = float64(v)
		}
	}
	var sum float64
	for _, v := range row {
		sum += math.Exp(float64(v) - maxv)
	}
	out := make([]float64, len(row))
	for i, v := range row {
		out[i] = float64(v) - maxv - math.Log(sum)
	}
	return out
}

func TestChooseOptionPicksBest(t *testing.T) {
	m := testModel(11)
	prompt := []int{1, 5}
	options := [][]int{{6}, {7}, {8, 9}}
	best, scores := ChooseOption(m, prompt, options)
	for i, s := range scores {
		if s > scores[best] {
			t.Fatalf("option %d score %f beats chosen %d (%f)", i, s, best, scores[best])
		}
	}
}

func TestGenerationStopsOnEOS(t *testing.T) {
	m := testModel(13)
	// Force EOS by hooking the LM head and boosting the EOS logit.
	m.AddHook(func(ref model.LayerRef, pos int, out []float32) {
		if ref.Kind == model.KindLMHead && pos >= 4 {
			out[token.EOS] = 1e4
		}
	})
	defer m.ClearHooks()
	res := Generate(m, []int{1, 5}, Defaults(20))
	if !res.Stopped {
		t.Fatal("generation should have stopped on EOS")
	}
	if len(res.Tokens) > 4 {
		t.Fatalf("generated %d tokens after forced EOS", len(res.Tokens))
	}
}
