// Package metrics reimplements, from scratch, every output-quality metric
// of Table 1: BLEU and chrF++ for translation, ROUGE-1 and ROUGE-L for
// summarization, Exact Match and token-level F1 for question answering,
// and plain accuracy for multiple-choice and math. All metrics return
// values in [0, 1].
package metrics

import (
	"math"
	"strings"
)

// Tokenize lower-cases and splits text on whitespace. All task suites in
// this repository emit space-separated word tokens, so no further
// normalization is required.
func Tokenize(text string) []string {
	return strings.Fields(strings.ToLower(text))
}

// ---------------------------------------------------------------------------
// BLEU (Papineni et al., 2002)

// BLEU computes sentence-level BLEU-4 with the standard brevity penalty
// and +1 smoothing on higher-order precisions (Lin & Och smoothing
// method 1 applied to orders with zero matches), so short sentences do
// not collapse to zero.
func BLEU(candidate, reference string) float64 {
	cand := Tokenize(candidate)
	ref := Tokenize(reference)
	return BLEUTokens(cand, ref)
}

// BLEUTokens is BLEU over pre-tokenized word slices.
func BLEUTokens(cand, ref []string) float64 {
	if len(cand) == 0 {
		return 0
	}
	// Orders above the candidate length contribute no n-grams; averaging
	// over the achievable orders (as sacrebleu's effective order does)
	// keeps very short sentences comparable.
	maxN := 4
	if len(cand) < maxN {
		maxN = len(cand)
	}
	logSum := 0.0
	for n := 1; n <= maxN; n++ {
		match, total := ngramOverlap(cand, ref, n)
		p := float64(match) / float64(total)
		if match == 0 {
			if n == 1 {
				// No lexical overlap at all: the sentence scores zero.
				return 0
			}
			p = 1 / float64(2*total) // smoothing for zero higher-order matches
		}
		logSum += math.Log(p)
	}
	bleu := math.Exp(logSum / float64(maxN))
	// Brevity penalty.
	c, r := float64(len(cand)), float64(len(ref))
	if c < r && c > 0 {
		bleu *= math.Exp(1 - r/c)
	}
	return clamp01(bleu)
}

// ngramOverlap returns the clipped match count and the total candidate
// n-gram count for order n.
func ngramOverlap(cand, ref []string, n int) (match, total int) {
	if len(cand) < n {
		return 0, 0
	}
	refCounts := ngramCounts(ref, n)
	seen := make(map[string]int)
	for i := 0; i+n <= len(cand); i++ {
		g := strings.Join(cand[i:i+n], "\x00")
		total++
		if seen[g] < refCounts[g] {
			match++
		}
		seen[g]++
	}
	return match, total
}

func ngramCounts(toks []string, n int) map[string]int {
	counts := make(map[string]int)
	for i := 0; i+n <= len(toks); i++ {
		counts[strings.Join(toks[i:i+n], "\x00")]++
	}
	return counts
}

// ---------------------------------------------------------------------------
// chrF++ (Popović, 2017)

// ChrF computes chrF++ — the F-beta (beta=2) mean over character n-grams
// (orders 1..6) plus word unigrams and bigrams, averaged uniformly over
// orders as in the reference implementation.
func ChrF(candidate, reference string) float64 {
	candW := Tokenize(candidate)
	refW := Tokenize(reference)
	candC := strings.Join(candW, " ")
	refC := strings.Join(refW, " ")

	const beta = 2.0
	var scores []float64
	for n := 1; n <= 6; n++ {
		scores = append(scores, fScore(charNgrams(candC, n), charNgrams(refC, n), beta))
	}
	for n := 1; n <= 2; n++ {
		scores = append(scores, fScore(ngramCounts(candW, n), ngramCounts(refW, n), beta))
	}
	var sum float64
	for _, s := range scores {
		sum += s
	}
	return clamp01(sum / float64(len(scores)))
}

func charNgrams(s string, n int) map[string]int {
	counts := make(map[string]int)
	runes := []rune(s)
	for i := 0; i+n <= len(runes); i++ {
		counts[string(runes[i:i+n])]++
	}
	return counts
}

// fScore computes the clipped-overlap F-beta between two bags.
func fScore(cand, ref map[string]int, beta float64) float64 {
	var candTotal, refTotal, overlap int
	for _, c := range cand {
		candTotal += c
	}
	for _, c := range ref {
		refTotal += c
	}
	for g, c := range cand {
		r := ref[g]
		if r < c {
			overlap += r
		} else {
			overlap += c
		}
	}
	if candTotal == 0 || refTotal == 0 {
		if candTotal == refTotal {
			return 1 // both empty at this order: neutral
		}
		return 0
	}
	p := float64(overlap) / float64(candTotal)
	r := float64(overlap) / float64(refTotal)
	if p+r == 0 {
		return 0
	}
	b2 := beta * beta
	return (1 + b2) * p * r / (b2*p + r)
}

// ---------------------------------------------------------------------------
// ROUGE (Lin, 2004)

// Rouge1 computes the ROUGE-1 F1: unigram overlap between candidate and
// reference.
func Rouge1(candidate, reference string) float64 {
	return fScore(ngramCounts(Tokenize(candidate), 1), ngramCounts(Tokenize(reference), 1), 1)
}

// RougeL computes the ROUGE-L F1 based on the longest common subsequence
// of the word sequences.
func RougeL(candidate, reference string) float64 {
	cand := Tokenize(candidate)
	ref := Tokenize(reference)
	if len(cand) == 0 || len(ref) == 0 {
		if len(cand) == len(ref) {
			return 1
		}
		return 0
	}
	l := float64(lcsLength(cand, ref))
	p := l / float64(len(cand))
	r := l / float64(len(ref))
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// lcsLength computes the longest-common-subsequence length with an
// O(min) rolling row.
func lcsLength(a, b []string) int {
	if len(b) > len(a) {
		a, b = b, a
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for i := 1; i <= len(a); i++ {
		for j := 1; j <= len(b); j++ {
			if a[i-1] == b[j-1] {
				cur[j] = prev[j-1] + 1
			} else if prev[j] >= cur[j-1] {
				cur[j] = prev[j]
			} else {
				cur[j] = cur[j-1]
			}
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// ---------------------------------------------------------------------------
// SQuAD-style Exact Match and token F1

// ExactMatch reports 1 if the normalized candidate equals the normalized
// reference, else 0.
func ExactMatch(candidate, reference string) float64 {
	if strings.Join(Tokenize(candidate), " ") == strings.Join(Tokenize(reference), " ") {
		return 1
	}
	return 0
}

// F1 computes the SQuAD token-level F1 between candidate and reference.
func F1(candidate, reference string) float64 {
	return fScore(ngramCounts(Tokenize(candidate), 1), ngramCounts(Tokenize(reference), 1), 1)
}

// ---------------------------------------------------------------------------

// Accuracy returns the fraction of correct booleans.
func Accuracy(correct []bool) float64 {
	if len(correct) == 0 {
		return 0
	}
	n := 0
	for _, c := range correct {
		if c {
			n++
		}
	}
	return float64(n) / float64(len(correct))
}

// Mean averages a slice, returning 0 for empty input. NaN inputs are
// skipped (a metric can be NaN only if upstream produced a degenerate
// comparison; skipping matches how evaluation scripts drop such rows).
func Mean(xs []float64) float64 {
	var sum float64
	n := 0
	for _, x := range xs {
		if math.IsNaN(x) {
			continue
		}
		sum += x
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	if math.IsNaN(v) {
		return 0
	}
	return v
}

// Kind names a metric for reporting.
type Kind string

// Metric kinds used across the experiment harness.
const (
	KindAccuracy Kind = "Accuracy"
	KindBLEU     Kind = "BLEU"
	KindChrF     Kind = "chrF++"
	KindRouge1   Kind = "ROUGE-1"
	KindRougeL   Kind = "ROUGE-L"
	KindEM       Kind = "ExactMatch"
	KindF1       Kind = "F1"
)

// Func is a sentence-pair metric.
type Func func(candidate, reference string) float64

// ByKind returns the metric function for a kind.
func ByKind(k Kind) Func {
	switch k {
	case KindBLEU:
		return BLEU
	case KindChrF:
		return ChrF
	case KindRouge1:
		return Rouge1
	case KindRougeL:
		return RougeL
	case KindEM:
		return ExactMatch
	case KindF1:
		return F1
	default:
		return ExactMatch
	}
}
