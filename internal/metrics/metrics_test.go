package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/prng"
)

func TestBLEUPerfectMatch(t *testing.T) {
	s := "the cat sat on the mat with a hat"
	if got := BLEU(s, s); math.Abs(got-1) > 1e-9 {
		t.Fatalf("BLEU(x,x) = %g, want 1", got)
	}
}

func TestBLEUDisjoint(t *testing.T) {
	got := BLEU("aa bb cc dd ee", "vv ww xx yy zz")
	if got > 0.1 {
		t.Fatalf("BLEU of disjoint sentences = %g, want ~0", got)
	}
}

func TestBLEUEmptyCandidate(t *testing.T) {
	if BLEU("", "reference words here") != 0 {
		t.Fatal("empty candidate should score 0")
	}
}

func TestBLEUBrevityPenalty(t *testing.T) {
	ref := "a b c d e f g h"
	full := BLEU("a b c d e f g h", ref)
	short := BLEU("a b c d", ref)
	if short >= full {
		t.Fatalf("short candidate (%g) should be penalized vs full (%g)", short, full)
	}
}

func TestBLEUClipping(t *testing.T) {
	// Candidate repeating a reference word must not gain from repetition.
	rep := BLEU("the the the the", "the cat sat down")
	if rep > 0.3 {
		t.Fatalf("repetition should be clipped, BLEU = %g", rep)
	}
}

func TestBLEUOrderSensitivity(t *testing.T) {
	ref := "a b c d e f"
	inOrder := BLEU("a b c d e f", ref)
	shuffled := BLEU("f e d c b a", ref)
	if shuffled >= inOrder {
		t.Fatalf("shuffled (%g) should score below in-order (%g)", shuffled, inOrder)
	}
}

func TestChrFPerfectAndBounds(t *testing.T) {
	s := "guten morgen welt"
	if got := ChrF(s, s); math.Abs(got-1) > 1e-9 {
		t.Fatalf("ChrF(x,x) = %g", got)
	}
	got := ChrF("abc", "xyz qrs")
	if got < 0 || got > 0.3 {
		t.Fatalf("ChrF disjoint = %g", got)
	}
}

func TestChrFPartialCredit(t *testing.T) {
	// chrF++ gives character-level partial credit that BLEU denies.
	cand, ref := "translat", "translate"
	if ChrF(cand, ref) <= BLEU(cand, ref) {
		t.Fatal("chrF should give partial credit for near-match words")
	}
}

func TestRouge1(t *testing.T) {
	if got := Rouge1("a b c", "a b c"); got != 1 {
		t.Fatalf("Rouge1 perfect = %g", got)
	}
	got := Rouge1("a b", "a c")
	// precision 1/2, recall 1/2 -> F1 = 0.5
	if math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("Rouge1 = %g, want 0.5", got)
	}
}

func TestRougeLSubsequence(t *testing.T) {
	// LCS("a b c d", "a x c d") = 3 -> P=R=3/4 -> F1=0.75.
	got := RougeL("a b c d", "a x c d")
	if math.Abs(got-0.75) > 1e-9 {
		t.Fatalf("RougeL = %g, want 0.75", got)
	}
	// ROUGE-L respects order where ROUGE-1 does not.
	if RougeL("d c b a", "a b c d") >= RougeL("a b c d", "a b c d") {
		t.Fatal("RougeL should punish reordering")
	}
}

func TestLCSAgainstBruteForce(t *testing.T) {
	words := []string{"a", "b", "c"}
	gen := func(src *prng.Source, n int) []string {
		out := make([]string, n)
		for i := range out {
			out[i] = words[src.Intn(len(words))]
		}
		return out
	}
	var brute func(a, b []string) int
	brute = func(a, b []string) int {
		if len(a) == 0 || len(b) == 0 {
			return 0
		}
		if a[len(a)-1] == b[len(b)-1] {
			return brute(a[:len(a)-1], b[:len(b)-1]) + 1
		}
		x := brute(a[:len(a)-1], b)
		if y := brute(a, b[:len(b)-1]); y > x {
			x = y
		}
		return x
	}
	f := func(seed uint64, la, lb uint8) bool {
		src := prng.New(seed)
		a := gen(src, int(la%8)+1)
		b := gen(src, int(lb%8)+1)
		return lcsLength(a, b) == brute(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestExactMatch(t *testing.T) {
	if ExactMatch("Hello World", "hello   world") != 1 {
		t.Fatal("EM should normalize case and whitespace")
	}
	if ExactMatch("hello", "world") != 0 {
		t.Fatal("EM mismatch should be 0")
	}
}

func TestF1(t *testing.T) {
	// cand {a,b}, ref {b,c}: overlap 1, P=0.5, R=0.5 -> F1 0.5.
	if got := F1("a b", "b c"); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("F1 = %g", got)
	}
	if F1("", "") != 1 {
		t.Fatal("both empty should be 1")
	}
	if F1("a", "") != 0 {
		t.Fatal("one empty should be 0")
	}
}

func TestAccuracy(t *testing.T) {
	if Accuracy([]bool{true, false, true, true}) != 0.75 {
		t.Fatal("accuracy arithmetic")
	}
	if Accuracy(nil) != 0 {
		t.Fatal("empty accuracy should be 0")
	}
}

func TestMeanSkipsNaN(t *testing.T) {
	if got := Mean([]float64{1, math.NaN(), 3}); got != 2 {
		t.Fatalf("Mean = %g, want 2", got)
	}
}

// Property: every metric is in [0,1] and equals 1 on identical texts.
func TestMetricProperties(t *testing.T) {
	words := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	kinds := []Kind{KindBLEU, KindChrF, KindRouge1, KindRougeL, KindEM, KindF1}
	f := func(seed uint64, la, lb uint8) bool {
		src := prng.New(seed)
		mk := func(n int) string {
			parts := make([]string, n)
			for i := range parts {
				parts[i] = words[src.Intn(len(words))]
			}
			return strings.Join(parts, " ")
		}
		a := mk(int(la%10) + 1)
		b := mk(int(lb%10) + 1)
		for _, k := range kinds {
			fn := ByKind(k)
			v := fn(a, b)
			if v < 0 || v > 1 || math.IsNaN(v) {
				return false
			}
			if fn(a, a) != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func BenchmarkBLEU(b *testing.B) {
	cand := "the quick brown fox jumps over the lazy dog near the river bank"
	ref := "a quick brown fox jumped over the lazy dog by the river"
	for i := 0; i < b.N; i++ {
		BLEU(cand, ref)
	}
}

func BenchmarkChrF(b *testing.B) {
	cand := "the quick brown fox jumps over the lazy dog"
	ref := "a quick brown fox jumped over a lazy dog"
	for i := 0; i < b.N; i++ {
		ChrF(cand, ref)
	}
}
