package outcome

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/model"
	"repro/internal/numerics"
	"repro/internal/tasks"
)

// degenerateRun generates once fault-free and once with corrupt injected
// into every LM-head logit vector from position fromPos on, and returns
// both token sequences.
func degenerateRun(t *testing.T, fromPos int, corrupt func(out []float32)) (baseline, faulty []int) {
	t.Helper()
	vocab := tasks.GeneralVocab()
	cfg := model.StandardConfig("degenerate", vocab.Size(), numerics.BF16)
	// Model/suite seeds chosen so the fault-free generation has zero
	// short-period repetition: the distortion verdicts below then isolate
	// the injected degeneracy rather than the untrained model's own loops.
	m := model.MustBuild(model.Spec{Config: cfg, Family: model.QwenS, Seed: 21})
	suite := tasks.NewSelfRefSuite("degenerate", 4, 1, 12, 10, nil)
	prompt := suite.Instances[0].Prompt
	settings := gen.Defaults(suite.Instances[0].MaxNew)

	baseline = gen.Generate(m, prompt, settings).Tokens

	m.AddHook(func(ref model.LayerRef, step int, out []float32) {
		if ref.Kind == model.KindLMHead && step >= fromPos {
			corrupt(out)
		}
	})
	defer m.ClearHooks()
	faulty = gen.Generate(m, prompt, settings).Tokens
	return baseline, faulty
}

// TestClassifyNaNLogitsMidSequence pins the end-to-end behaviour when a
// fault floods the LM head with NaN mid-generation: tensor.SoftmaxRow /
// Argmax treat an all-NaN row as "no valid candidate" and fall back to
// index 0 (PAD), so the tail degenerates into a period-1 repetition that
// the classifier must call SDC-distorted.
func TestClassifyNaNLogitsMidSequence(t *testing.T) {
	const fromPos = 16 // prompt is 12 tokens; corrupt from the 5th decode step
	baseline, faulty := degenerateRun(t, fromPos, func(out []float32) {
		nan := float32(math.NaN())
		for i := range out {
			out[i] = nan
		}
	})

	if len(faulty) != len(baseline) {
		t.Logf("baseline %v", baseline)
		t.Logf("faulty   %v", faulty)
		t.Fatalf("lengths diverged: %d vs %d", len(faulty), len(baseline))
	}
	// Golden: the first 4 generated tokens predate the corruption and
	// match the baseline bit-for-bit; everything after collapses to PAD.
	for i, tok := range faulty {
		if i < 4 {
			if tok != baseline[i] {
				t.Fatalf("pre-fault token %d changed: %d vs %d", i, tok, baseline[i])
			}
		} else if tok != 0 {
			t.Fatalf("post-NaN token %d = %d, want PAD collapse", i, tok)
		}
	}

	a := Classify(faulty, baseline, false, Thresholds{})
	if a.Class != SDCDistorted {
		t.Fatalf("NaN tail classified %v, want SDC-distorted (analysis %+v)", a.Class, a)
	}
	if !a.Changed {
		t.Fatal("Changed not set")
	}
	if a.RepetitionFrac < 0.5 {
		t.Fatalf("repetition frac %.2f, want the PAD run to dominate", a.RepetitionFrac)
	}
}

// TestClassifyInfSpikeMidSequence pins the +Inf saturation case: a single
// saturated logit deterministically wins the argmax (SoftmaxRow puts all
// mass on the +Inf entries), steering generation onto a new but
// structurally well-formed path — subtly wrong, not distorted.
func TestClassifyInfSpikeMidSequence(t *testing.T) {
	const fromPos = 16
	spike := 0
	baseline, faulty := degenerateRun(t, fromPos, func(out []float32) {
		// Saturate a rotating real-token id so the output does not repeat.
		id := 10 + spike%7
		spike++
		out[id] = float32(math.Inf(1))
	})

	a := Classify(faulty, baseline, false, Thresholds{})
	if !a.Changed {
		t.Fatalf("Inf spike left output unchanged: %v vs %v", faulty, baseline)
	}
	if a.Class != SDCSubtle {
		t.Fatalf("Inf spike classified %v, want SDC-subtle (analysis %+v, faulty %v)", a.Class, a, faulty)
	}
	// With a matching answer the same evidence must stay Masked: the
	// distortion detector, not the spike itself, decides the class.
	if b := Classify(faulty, baseline, true, Thresholds{}); b.Class != Masked {
		t.Fatalf("answer-matching Inf spike classified %v, want Masked", b.Class)
	}
}

// TestClassifyTruncationByEOSInf pins the opposite failure: the fault
// saturates the stop token, generation halts immediately, and the empty
// (or near-empty) tail must classify as distorted via the truncation rule.
func TestClassifyTruncationByEOSInf(t *testing.T) {
	baseline, faulty := degenerateRun(t, 12, func(out []float32) {
		out[2] = float32(math.Inf(1)) // token.EOS
	})
	if len(faulty) != 0 {
		t.Fatalf("EOS saturation still generated %v", faulty)
	}
	a := Classify(faulty, baseline, false, Thresholds{})
	if a.Class != SDCDistorted {
		t.Fatalf("empty output classified %v, want SDC-distorted", a.Class)
	}
	if a.LengthRatio != 0 {
		t.Fatalf("length ratio %.2f, want 0", a.LengthRatio)
	}
}

// TestClassifyGoldenTable pins the classifier on hand-written token
// sequences covering the NaN/Inf shapes above without a model in the
// loop, so the thresholds cannot drift silently.
func TestClassifyGoldenTable(t *testing.T) {
	base := []int{10, 11, 12, 13, 14, 15, 16, 17}
	cases := []struct {
		name    string
		faulty  []int
		matches bool
		want    Class
		golden  string
	}{
		{"identical", base, true, Masked,
			"class=Masked rep=0.00 len=1.00 changed=false"},
		{"pad-collapse", []int{10, 11, 12, 0, 0, 0, 0, 0}, false, SDCDistorted,
			"class=SDC-distorted rep=0.62 len=1.00 changed=true"},
		{"empty", nil, false, SDCDistorted,
			"class=SDC-distorted rep=0.00 len=0.00 changed=true"},
		{"rerouted", []int{10, 11, 30, 31, 32, 33, 34, 35}, false, SDCSubtle,
			"class=SDC-subtle rep=0.00 len=1.00 changed=true"},
		{"rerouted-masked", []int{10, 11, 30, 31, 32, 33, 34, 35}, true, Masked,
			"class=Masked rep=0.00 len=1.00 changed=true"},
		{"period-2-loop", []int{10, 11, 20, 21, 20, 21, 20, 21, 20, 21}, false, SDCDistorted,
			"class=SDC-distorted rep=0.80 len=1.25 changed=true"},
	}
	for _, tc := range cases {
		a := Classify(tc.faulty, base, tc.matches, Thresholds{})
		if a.Class != tc.want {
			t.Errorf("%s: class %v, want %v", tc.name, a.Class, tc.want)
		}
		got := fmt.Sprintf("class=%v rep=%.2f len=%.2f changed=%v",
			a.Class, a.RepetitionFrac, a.LengthRatio, a.Changed)
		if got != tc.golden {
			t.Errorf("%s: golden mismatch\n got %s\nwant %s", tc.name, got, tc.golden)
		}
	}
}
