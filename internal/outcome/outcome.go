// Package outcome classifies fault-injection results following §3.2 and
// §4.1.1 of the paper: an experiment is Masked when the model's answer
// matches the reference, and a Silent Data Corruption (SDC) otherwise;
// SDCs subdivide into "distorted" outputs (repeated or meaningless
// tokens, the Figure 7 top pattern) and "subtly wrong" outputs (fluent
// but incorrect content).
package outcome

import "fmt"

// Class is the outcome of one fault-injection trial.
type Class int

const (
	// Masked: the fault did not change the task answer.
	Masked Class = iota
	// SDCSubtle: the answer changed but the output remains structurally
	// well-formed ("subtly wrong").
	SDCSubtle
	// SDCDistorted: the output degenerated into repetition, truncation, or
	// garbage tokens.
	SDCDistorted
)

// String names the class.
func (c Class) String() string {
	switch c {
	case Masked:
		return "Masked"
	case SDCSubtle:
		return "SDC-subtle"
	case SDCDistorted:
		return "SDC-distorted"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// IsSDC reports whether the class is either SDC kind.
func (c Class) IsSDC() bool { return c != Masked }

// Analysis carries the classification with its evidence.
type Analysis struct {
	Class Class
	// RepetitionFrac is the fraction of the output covered by the longest
	// short-period repetition.
	RepetitionFrac float64
	// BaselineRepetitionFrac is the same measure on the fault-free output.
	BaselineRepetitionFrac float64
	// LengthRatio is len(faulty)/max(1, len(baseline)).
	LengthRatio float64
	// Changed reports whether any token differs from the baseline.
	Changed bool
}

// Thresholds tune the distortion detector. Zero value means defaults.
type Thresholds struct {
	// RepetitionFrac above which (in excess of the baseline's own
	// repetition) an output counts as distorted. Default 0.5.
	RepetitionFrac float64
	// LengthExplosion is the length ratio beyond which an output counts
	// as distorted. Default 3.
	LengthExplosion float64
}

func (t Thresholds) withDefaults() Thresholds {
	if t.RepetitionFrac == 0 {
		t.RepetitionFrac = 0.5
	}
	if t.LengthExplosion == 0 {
		t.LengthExplosion = 3
	}
	return t
}

// Classify compares a faulty generation against the fault-free baseline
// of the same model and input. answerMatches tells whether the
// task-level answer (extracted by the task suite: the chosen option, the
// number after '#', or the full text for quality tasks) agrees with the
// reference.
func Classify(faulty, baseline []int, answerMatches bool, th Thresholds) Analysis {
	th = th.withDefaults()
	a := Analysis{
		RepetitionFrac:         repetitionFrac(faulty),
		BaselineRepetitionFrac: repetitionFrac(baseline),
		Changed:                !equalTokens(faulty, baseline),
	}
	bl := len(baseline)
	if bl == 0 {
		bl = 1
	}
	a.LengthRatio = float64(len(faulty)) / float64(bl)

	distorted := false
	if a.RepetitionFrac > a.BaselineRepetitionFrac+th.RepetitionFrac {
		distorted = true
	}
	if a.LengthRatio >= th.LengthExplosion && len(faulty) >= 8 {
		distorted = true
	}
	if len(faulty) == 0 && len(baseline) > 0 {
		distorted = true
	}

	switch {
	case distorted:
		a.Class = SDCDistorted
	case answerMatches:
		a.Class = Masked
	default:
		a.Class = SDCSubtle
	}
	return a
}

func equalTokens(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i, v := range a {
		if v != b[i] {
			return false
		}
	}
	return true
}

// repetitionFrac returns the fraction of tokens covered by the longest
// contiguous repetition of a period-1..4 pattern. A healthy sentence
// scores near 0; the classic fault signature "the the the the ..." or
// "x y x y x y ..." scores near 1.
func repetitionFrac(toks []int) float64 {
	n := len(toks)
	if n < 4 {
		return 0
	}
	best := 0
	for period := 1; period <= 4; period++ {
		run := 0
		longest := 0
		for i := period; i < n; i++ {
			if toks[i] == toks[i-period] {
				run++
				if run > longest {
					longest = run
				}
			} else {
				run = 0
			}
		}
		// A run of k matches at period p covers k+p tokens.
		if longest > 0 && longest+period > best {
			best = longest + period
		}
	}
	if best < 2*1 { // require at least one full repeat
		return 0
	}
	return float64(best) / float64(n)
}

// Tally accumulates outcome counts across a campaign.
type Tally struct {
	Masked, Subtle, Distorted int
}

// Add records one analysis.
func (t *Tally) Add(a Analysis) {
	switch a.Class {
	case Masked:
		t.Masked++
	case SDCSubtle:
		t.Subtle++
	default:
		t.Distorted++
	}
}

// Total returns the number of recorded trials.
func (t *Tally) Total() int { return t.Masked + t.Subtle + t.Distorted }

// SDCRate returns the fraction of trials that were SDCs.
func (t *Tally) SDCRate() float64 {
	n := t.Total()
	if n == 0 {
		return 0
	}
	return float64(t.Subtle+t.Distorted) / float64(n)
}

// DistortedFrac returns the distorted share of all trials.
func (t *Tally) DistortedFrac() float64 {
	n := t.Total()
	if n == 0 {
		return 0
	}
	return float64(t.Distorted) / float64(n)
}
