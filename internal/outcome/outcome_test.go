package outcome

import (
	"testing"
	"testing/quick"

	"repro/internal/prng"
)

func seq(vals ...int) []int { return vals }

func TestMaskedWhenAnswerMatches(t *testing.T) {
	base := seq(5, 6, 7, 8)
	a := Classify(seq(5, 6, 7, 8), base, true, Thresholds{})
	if a.Class != Masked || a.Changed {
		t.Fatalf("identical output should be Masked, got %v", a.Class)
	}
	// Changed tokens but matching answer is still Masked (e.g. a
	// different-but-correct reasoning chain).
	a = Classify(seq(5, 9, 7, 8), base, true, Thresholds{})
	if a.Class != Masked || !a.Changed {
		t.Fatalf("changed-but-correct should be Masked+Changed, got %+v", a)
	}
}

func TestSubtleWrong(t *testing.T) {
	base := seq(5, 6, 7, 8)
	a := Classify(seq(5, 6, 9, 8), base, false, Thresholds{})
	if a.Class != SDCSubtle {
		t.Fatalf("got %v", a.Class)
	}
}

func TestDistortedRepetition(t *testing.T) {
	base := seq(5, 6, 7, 8, 9, 10)
	rep := seq(4, 4, 4, 4, 4, 4, 4, 4, 4, 4)
	a := Classify(rep, base, false, Thresholds{})
	if a.Class != SDCDistorted {
		t.Fatalf("pure repetition should be distorted, got %v (repFrac %f)", a.Class, a.RepetitionFrac)
	}
}

func TestDistortedPeriodTwoRepetition(t *testing.T) {
	base := seq(5, 6, 7, 8, 9, 10)
	rep := seq(4, 9, 4, 9, 4, 9, 4, 9, 4, 9)
	a := Classify(rep, base, false, Thresholds{})
	if a.Class != SDCDistorted {
		t.Fatalf("period-2 repetition should be distorted, got %v", a.Class)
	}
}

func TestDistortedLengthExplosion(t *testing.T) {
	base := seq(5, 6, 7)
	long := make([]int, 30)
	for i := range long {
		long[i] = 5 + i // no repetition, just runaway length
	}
	a := Classify(long, base, false, Thresholds{})
	if a.Class != SDCDistorted {
		t.Fatalf("length explosion should be distorted, got %v", a.Class)
	}
}

func TestDistortedEmptyOutput(t *testing.T) {
	base := seq(5, 6, 7)
	a := Classify(nil, base, false, Thresholds{})
	if a.Class != SDCDistorted {
		t.Fatalf("empty output should be distorted, got %v", a.Class)
	}
}

func TestRepetitiveBaselineNotPenalized(t *testing.T) {
	// If the fault-free output is itself repetitive (untrained models),
	// equally-repetitive faulty output is not "distorted".
	base := seq(4, 4, 4, 4, 4, 4, 4, 4)
	faulty := seq(5, 5, 5, 5, 5, 5, 5, 5)
	a := Classify(faulty, base, false, Thresholds{})
	if a.Class == SDCDistorted {
		t.Fatal("matching baseline repetition should not count as distortion")
	}
}

func TestRepetitionFrac(t *testing.T) {
	if f := repetitionFrac(seq(1, 2, 3, 4, 5)); f != 0 {
		t.Fatalf("distinct tokens repFrac = %f", f)
	}
	if f := repetitionFrac(seq(7, 7, 7, 7)); f < 0.9 {
		t.Fatalf("constant tokens repFrac = %f", f)
	}
	if f := repetitionFrac(seq(1, 2)); f != 0 {
		t.Fatalf("too-short sequence repFrac = %f", f)
	}
}

// Property: classification is deterministic and the analysis fields are
// consistent (Changed false implies Masked given answer match).
func TestClassifyConsistency(t *testing.T) {
	f := func(seed uint64, nb, nf uint8) bool {
		src := prng.New(seed)
		mk := func(n int) []int {
			out := make([]int, n)
			for i := range out {
				out[i] = src.Intn(6) + 4
			}
			return out
		}
		base := mk(int(nb%12) + 1)
		faulty := mk(int(nf % 16))
		match := src.Float64() < 0.5
		a := Classify(faulty, base, match, Thresholds{})
		b := Classify(faulty, base, match, Thresholds{})
		if a != b {
			return false
		}
		if !a.Changed && match && a.Class != Masked {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestTally(t *testing.T) {
	var tl Tally
	tl.Add(Analysis{Class: Masked})
	tl.Add(Analysis{Class: SDCSubtle})
	tl.Add(Analysis{Class: SDCSubtle})
	tl.Add(Analysis{Class: SDCDistorted})
	if tl.Total() != 4 || tl.SDCRate() != 0.75 || tl.DistortedFrac() != 0.25 {
		t.Fatalf("tally %+v", tl)
	}
}

func TestClassStrings(t *testing.T) {
	if Masked.String() != "Masked" || Masked.IsSDC() {
		t.Fatal("Masked")
	}
	if !SDCSubtle.IsSDC() || !SDCDistorted.IsSDC() {
		t.Fatal("SDC classes")
	}
}
