package trace

import (
	"encoding/json"
	"math"
	"reflect"
	"testing"

	"repro/internal/model"
)

// TestRecordJSONRoundTrip requires a fully-populated Record to survive
// Marshal/Unmarshal bit-identically — the JSONL export contract.
func TestRecordJSONRoundTrip(t *testing.T) {
	rec := Record{
		Schema: SchemaVersion, Trial: 7, Instance: 2,
		Fault: "comp-1bit", Site: "t7 block1.up_proj row3 bit14",
		Layer: "block1.up_proj", Block: 1, Bits: []int{14}, HighestBit: 14,
		GenIter: 3, StrikePos: 21, Fired: true, Outcome: "Distorted",
		AnswerOK: false, Steps: 9,
		FirstDivergence: &Divergence{
			Layer: "block1.up_proj", Block: 1, Pos: 21, RelL2: 4.5, LInf: 120,
		},
		PropagationDepth: 3, BlastRadius: 0.875, MaxRelL2: 9.25, MaxLInf: 300.5,
		Compared: 48,
		Layers: []LayerDev{
			{Layer: "block1.up_proj", Block: 1, Pos: 21, RelL2: 4.5, LInf: 120, Exceeded: true},
			{Layer: "block2.q_proj", Block: 2, Pos: 21, RelL2: 0.5, LInf: 3, Exceeded: true},
		},
		LogitMargins: []Margin{{Pos: 21, Margin: 1.25, Diverged: true}},
		Spans: []Span{
			{Phase: PhasePrefill, Seconds: 0.001},
			{Phase: PhaseDecode, Seconds: 0.01, Count: 9},
		},
	}
	data, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	var back Record
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rec, back) {
		t.Fatalf("round trip mismatch:\nwant %+v\ngot  %+v", rec, back)
	}
}

// TestPhaseIndex pins the canonical ordering the telemetry histograms
// key on.
func TestPhaseIndex(t *testing.T) {
	for i, p := range Phases {
		if PhaseIndex(p) != i {
			t.Fatalf("PhaseIndex(%s) = %d, want %d", p, PhaseIndex(p), i)
		}
	}
	if PhaseIndex("nope") != -1 {
		t.Fatal("unknown phase must map to -1")
	}
}

func TestFiniteClamp(t *testing.T) {
	cases := map[float64]float64{
		math.NaN():   math.MaxFloat64,
		math.Inf(1):  math.MaxFloat64,
		math.Inf(-1): -math.MaxFloat64,
		1.5:          1.5,
	}
	for in, want := range cases {
		if got := finite(in); got != want {
			t.Errorf("finite(%v) = %v, want %v", in, got, want)
		}
	}
}

// TestCaptureSemantics: rows below minPos are dropped, rows are copied
// (not aliased), and a sealed capture ignores further writes.
func TestCaptureSemantics(t *testing.T) {
	cc := NewCapture(5)
	hook := cc.Hook()
	ref := model.LayerRef{Block: 0, Kind: model.KindUp, Expert: -1}
	src := []float32{1, 2, 3}
	hook(ref, 4, src) // below minPos: dropped
	hook(ref, 5, src)
	src[0] = 99 // must not leak into the stored row
	if cc.Len() != 1 {
		t.Fatalf("capture holds %d rows, want 1", cc.Len())
	}
	if got := cc.row(ref, 5); got[0] != 1 {
		t.Fatalf("captured row aliases the source: %v", got)
	}
	cc.Seal()
	hook(ref, 6, src)
	if cc.Len() != 1 {
		t.Fatal("sealed capture accepted a write")
	}
}

// probeRefs builds the synthetic 4-block layer sequence used by the
// probe tests, ending with the LM head.
func probeRefs() []model.LayerRef {
	refs := make([]model.LayerRef, 0, 5)
	for b := 0; b < 4; b++ {
		refs = append(refs, model.LayerRef{Block: b, Kind: model.KindUp, Expert: -1})
	}
	refs = append(refs, model.LayerRef{Block: -1, Kind: model.KindLMHead, Expert: -1})
	return refs
}

// feedClean replays one clean forward at pos into a hook.
func feedClean(hook model.Hook, refs []model.LayerRef, pos int) {
	for _, r := range refs {
		hook(r, pos, []float32{1, 2, 3, 4})
	}
}

// TestProbeTransientDivergence is the deterministic first-divergence
// check: a large perturbation injected at block1 (the configured site)
// must register the first divergence at exactly that layer and position,
// count the downstream cascade, and report a full blast radius.
func TestProbeTransientDivergence(t *testing.T) {
	refs := probeRefs()
	const strike = 7
	cc := NewCapture(strike)
	ch := cc.Hook()
	feedClean(ch, refs, strike)
	feedClean(ch, refs, strike+1)
	cc.Seal()

	site := refs[1]
	p := NewProbe(cc, ProbeConfig{StrikePos: strike, Site: site})
	ph := p.Hook()
	// Faulty pass at the strike position: block0 clean, block1 (site)
	// grossly corrupted, blocks 2-3 and the LM head dragged along.
	ph(refs[0], strike, []float32{1, 2, 3, 4})
	ph(refs[1], strike, []float32{1, 2, 3, 4000})
	ph(refs[2], strike, []float32{10, 2, 3, 4})
	ph(refs[3], strike, []float32{1, 20, 3, 4})
	ph(refs[4], strike, []float32{1, 2, 30, 4})
	// Next position: everything still off.
	for _, r := range refs {
		ph(r, strike+1, []float32{2, 2, 3, 4})
	}

	var rec Record
	p.Fill(&rec)
	if rec.FirstDivergence == nil {
		t.Fatal("no first divergence recorded")
	}
	if rec.FirstDivergence.Layer != site.String() || rec.FirstDivergence.Pos != strike {
		t.Fatalf("first divergence at %s pos %d, want %s pos %d",
			rec.FirstDivergence.Layer, rec.FirstDivergence.Pos, site, strike)
	}
	// Blocks 1, 2, 3 exceeded at the strike position; the LM head (block
	// -1) is excluded from the depth count.
	if rec.PropagationDepth != 3 {
		t.Fatalf("propagation depth = %d, want 3", rec.PropagationDepth)
	}
	// Downstream window: site + blocks 2, 3 + LM head = 4 invocations,
	// all exceeded.
	if rec.BlastRadius != 1 {
		t.Fatalf("blast radius = %v, want 1", rec.BlastRadius)
	}
	if len(rec.Layers) != len(refs) {
		t.Fatalf("per-layer profile has %d rows, want %d", len(rec.Layers), len(refs))
	}
	if rec.Layers[0].Exceeded {
		t.Fatal("pre-site layer must not read as exceeded")
	}
	if rec.Compared != 2*len(refs) {
		t.Fatalf("compared = %d, want %d", rec.Compared, 2*len(refs))
	}
}

// TestProbeBelowTolerance: mantissa-noise-sized perturbations must not
// register any divergence.
func TestProbeBelowTolerance(t *testing.T) {
	refs := probeRefs()
	const strike = 3
	cc := NewCapture(strike)
	ch := cc.Hook()
	feedClean(ch, refs, strike)
	cc.Seal()

	p := NewProbe(cc, ProbeConfig{StrikePos: strike, Site: refs[1]})
	ph := p.Hook()
	for _, r := range refs {
		ph(r, strike, []float32{1, 2, 3, 4.000001})
	}
	var rec Record
	p.Fill(&rec)
	if rec.FirstDivergence != nil {
		t.Fatalf("sub-tolerance deviation flagged as divergence: %+v", rec.FirstDivergence)
	}
	if rec.PropagationDepth != 0 || rec.BlastRadius != 0 {
		t.Fatalf("depth/blast = %d/%v, want 0/0", rec.PropagationDepth, rec.BlastRadius)
	}
	if rec.MaxRelL2 <= 0 {
		t.Fatal("max deviation should still record the sub-tolerance wiggle")
	}
}

// TestProbeResidentFault: with StrikePos < 0 (memory faults, live
// everywhere) the profile anchors at the first diverged position.
func TestProbeResidentFault(t *testing.T) {
	refs := probeRefs()
	cc := NewCapture(0)
	ch := cc.Hook()
	feedClean(ch, refs, 0)
	feedClean(ch, refs, 1)
	cc.Seal()

	p := NewProbe(cc, ProbeConfig{StrikePos: -1})
	ph := p.Hook()
	feedClean(ph, refs, 0) // clean at pos 0
	// Diverges from block2 onward at pos 1.
	ph(refs[0], 1, []float32{1, 2, 3, 4})
	ph(refs[1], 1, []float32{1, 2, 3, 4})
	ph(refs[2], 1, []float32{1, 2, 3, 400})
	ph(refs[3], 1, []float32{1, 200, 3, 4})
	ph(refs[4], 1, []float32{1, 2, 3, 4})

	var rec Record
	p.Fill(&rec)
	if rec.FirstDivergence == nil || rec.FirstDivergence.Pos != 1 ||
		rec.FirstDivergence.Layer != refs[2].String() {
		t.Fatalf("bad first divergence %+v", rec.FirstDivergence)
	}
	if rec.PropagationDepth != 2 {
		t.Fatalf("depth = %d, want 2 (blocks 2 and 3)", rec.PropagationDepth)
	}
	// Downstream window opens at the first diverged invocation (block2):
	// block2, block3, lm_head = 3 invocations, 2 exceeded.
	if want := 2.0 / 3.0; rec.BlastRadius != want {
		t.Fatalf("blast radius = %v, want %v", rec.BlastRadius, want)
	}
}

// TestProbeLogitMargins checks the margin trajectory and argmax
// divergence flag from LM-head invocations.
func TestProbeLogitMargins(t *testing.T) {
	lm := model.LayerRef{Block: -1, Kind: model.KindLMHead, Expert: -1}
	cc := NewCapture(0)
	ch := cc.Hook()
	ch(lm, 0, []float32{0, 1, 5}) // clean argmax 2
	cc.Seal()

	p := NewProbe(cc, ProbeConfig{StrikePos: 0, Site: lm})
	ph := p.Hook()
	ph(lm, 0, []float32{9, 1, 5}) // faulty argmax 0, margin 4
	ph(lm, 1, []float32{0, 2, 3}) // no clean row: diverged by definition

	var rec Record
	p.Fill(&rec)
	if len(rec.LogitMargins) != 2 {
		t.Fatalf("got %d margins, want 2", len(rec.LogitMargins))
	}
	m0 := rec.LogitMargins[0]
	if !m0.Diverged || m0.Margin != 4 || m0.Pos != 0 {
		t.Fatalf("bad margin sample %+v", m0)
	}
	if !rec.LogitMargins[1].Diverged {
		t.Fatal("position without clean logits must read as diverged")
	}
}

// TestProbeNonFiniteClamped: a NaN activation reads as infinite
// deviation, and the filled record still marshals to JSON.
func TestProbeNonFiniteClamped(t *testing.T) {
	refs := probeRefs()
	cc := NewCapture(0)
	ch := cc.Hook()
	feedClean(ch, refs, 0)
	cc.Seal()

	p := NewProbe(cc, ProbeConfig{StrikePos: 0, Site: refs[0]})
	ph := p.Hook()
	ph(refs[0], 0, []float32{float32(math.NaN()), 2, 3, 4})

	var rec Record
	p.Fill(&rec)
	if rec.MaxRelL2 != math.MaxFloat64 || rec.FirstDivergence == nil ||
		rec.FirstDivergence.RelL2 != math.MaxFloat64 {
		t.Fatalf("non-finite deviation not clamped: %+v", rec)
	}
	if _, err := json.Marshal(rec); err != nil {
		t.Fatalf("clamped record does not marshal: %v", err)
	}
}

func TestTopMargin(t *testing.T) {
	if i, m := topMargin([]float32{1, 3, 2}); i != 1 || m != 1 {
		t.Fatalf("topMargin = %d, %v, want 1, 1", i, m)
	}
	// NaN entries never win.
	if i, _ := topMargin([]float32{float32(math.NaN()), 2, 1}); i != 1 {
		t.Fatalf("NaN won the argmax: %d", i)
	}
	if i, m := topMargin([]float32{7}); i != 0 || m != 0 {
		t.Fatalf("single-entry margin = %d, %v, want 0, 0", i, m)
	}
}

// TestDeviationZero pins the bit-identical case: identical rows deviate
// by exactly zero, so clean pre-site layers can never false-positive.
func TestDeviationZero(t *testing.T) {
	v := []float32{1.5, -2.25, 0, 4}
	rel, linf := deviation(v, v)
	if rel != 0 || linf != 0 {
		t.Fatalf("deviation of identical rows = %v, %v", rel, linf)
	}
}
