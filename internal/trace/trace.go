// Package trace implements the fault-propagation tracing layer: per-trial
// propagation probes that ride the model's forward-hook mechanism to
// measure how an injected fault spreads through the network (per-layer
// activation deviation against the clean baseline forward, the
// first-divergence site, blast radius, and the logit-margin trajectory of
// the faulty decode), plus the timing-span taxonomy the campaign runtime
// aggregates into per-phase latency histograms.
//
// The clean reference is captured once per instance during the fault-free
// baseline evaluation — the same pass that snapshots the prefix KV cache —
// so a traced trial pays only an O(width) vector comparison per layer
// invocation, not a second inference.
//
// Records export as JSONL with a versioned schema (SchemaVersion); see
// DESIGN.md §10 for the schema and sampling semantics.
package trace

import "math"

// SchemaVersion identifies the trace Record layout. Bump on any
// incompatible field change so downstream analysis can dispatch.
const SchemaVersion = 1

// DefaultTol is the relative-L2 deviation above which a layer output
// counts as diverged from the clean baseline. 1e-3 matches the
// corruption-mask threshold of the Figure 5/6 reproductions: far above
// float32 kernel noise, far below any fault that could flip a token.
const DefaultTol = 1e-3

// Phase names one timed segment of a trial. The set is closed: the
// telemetry registry keys its latency histograms by PhaseIndex.
type Phase string

const (
	// PhasePrefill covers prompt processing: the batched prefill matmuls,
	// or the prefix-snapshot fork when the trial resumes from the shared
	// baseline KV cache.
	PhasePrefill Phase = "prefill"
	// PhaseDecode covers the full token-generation loop of a trial.
	PhaseDecode Phase = "decode"
	// PhaseDecodeToken is the per-token decode latency (recorded as one
	// per-trial mean observation: decode time / decode steps).
	PhaseDecodeToken Phase = "decode_token"
	// PhaseABFTCheck is time inside the checksum detector, excluding
	// mitigation (recompute / skip) work.
	PhaseABFTCheck Phase = "abft_check"
	// PhaseMitigate is time spent repairing flagged rows (recompute,
	// verify, zero-fallback).
	PhaseMitigate Phase = "mitigate"
	// PhaseClassify covers outcome classification: metric scoring,
	// distortion analysis, and detection attribution.
	PhaseClassify Phase = "classify"
)

// Phases lists every phase in canonical order.
var Phases = []Phase{
	PhasePrefill, PhaseDecode, PhaseDecodeToken,
	PhaseABFTCheck, PhaseMitigate, PhaseClassify,
}

// PhaseIndex returns the canonical index of p, or -1 if unknown.
func PhaseIndex(p Phase) int {
	for i, q := range Phases {
		if q == p {
			return i
		}
	}
	return -1
}

// Span is one timed phase of a trial.
type Span struct {
	Phase   Phase   `json:"phase"`
	Seconds float64 `json:"seconds"`
	// Count carries the number of underlying operations when the span is
	// an aggregate (e.g. decode steps for PhaseDecode).
	Count int `json:"count,omitempty"`
}

// Divergence locates the first layer invocation whose output deviated
// from the clean baseline beyond tolerance.
type Divergence struct {
	// Layer is the full layer address (e.g. "block3.up_proj"); Block its
	// block index (-1 for the LM head).
	Layer string `json:"layer"`
	Block int    `json:"block"`
	// Pos is the absolute token position of the diverged invocation.
	Pos int `json:"pos"`
	// RelL2 and LInf are the deviation that crossed the tolerance
	// (non-finite values are clamped to MaxFloat64 for JSON).
	RelL2 float64 `json:"rel_l2"`
	LInf  float64 `json:"l_inf"`
}

// LayerDev is one layer's deviation from the clean baseline at the
// strike position — the per-layer propagation profile of Figures 5–6.
type LayerDev struct {
	Layer string  `json:"layer"`
	Block int     `json:"block"`
	Pos   int     `json:"pos"`
	RelL2 float64 `json:"rel_l2"`
	LInf  float64 `json:"l_inf"`
	// Exceeded reports RelL2 > tolerance.
	Exceeded bool `json:"exceeded"`
}

// Margin is the logit-margin trajectory sample of one decode position of
// the faulty run.
type Margin struct {
	// Pos is the absolute token position whose logits were observed.
	Pos int `json:"pos"`
	// Margin is top1 − top2 of the faulty logits: how far the winning
	// token is from being flipped.
	Margin float64 `json:"margin"`
	// Diverged reports that the faulty argmax differs from the clean
	// baseline argmax at this position (or that the baseline has no
	// logits here because the trajectories already diverged in length).
	Diverged bool `json:"diverged"`
}

// Record is one traced trial: injection identity, propagation
// measurements, and phase timings. It round-trips through JSON (all
// float fields are finite; the probe clamps non-finite deviations).
type Record struct {
	Schema   int    `json:"schema"`
	Trial    int    `json:"trial"`
	Instance int    `json:"instance"`
	Fault    string `json:"fault"`
	// Site is the compact injection descriptor; Layer/Block/Bits break
	// out the grouping keys so analysis needs no parsing.
	Site       string `json:"site"`
	Layer      string `json:"layer"`
	Block      int    `json:"block"`
	Bits       []int  `json:"bits"`
	HighestBit int    `json:"highest_bit"`
	GenIter    int    `json:"gen_iter"`
	// StrikePos is the absolute token position of a transient fault
	// (prompt length + GenIter); -1 for resident (memory) faults, which
	// are live at every position.
	StrikePos int    `json:"strike_pos"`
	Fired     bool   `json:"fired"`
	Outcome   string `json:"outcome"`
	AnswerOK  bool   `json:"answer_ok"`
	Steps     int    `json:"steps"`

	// FirstDivergence is nil when no layer output left tolerance (the
	// fault was masked numerically or never struck).
	FirstDivergence *Divergence `json:"first_divergence,omitempty"`
	// PropagationDepth counts distinct transformer blocks whose output
	// exceeded tolerance at the strike position — the cascade depth.
	PropagationDepth int `json:"propagation_depth"`
	// BlastRadius is the fraction of layer invocations at the strike
	// position, from the injection site onward, that exceeded tolerance.
	BlastRadius float64 `json:"blast_radius"`
	// MaxRelL2 / MaxLInf are the worst deviations seen anywhere.
	MaxRelL2 float64 `json:"max_rel_l2"`
	MaxLInf  float64 `json:"max_l_inf"`
	// Compared counts layer invocations that had a clean reference row.
	Compared int `json:"compared"`

	Layers       []LayerDev `json:"layers,omitempty"`
	LogitMargins []Margin   `json:"logit_margins,omitempty"`
	Spans        []Span     `json:"spans,omitempty"`
}

// finite clamps NaN/±Inf to ±MaxFloat64 so records stay JSON-encodable:
// degenerate faults legitimately drive activations non-finite, and the
// trace must still serialize.
func finite(v float64) float64 {
	switch {
	case math.IsNaN(v):
		return math.MaxFloat64
	case math.IsInf(v, 1):
		return math.MaxFloat64
	case math.IsInf(v, -1):
		return -math.MaxFloat64
	}
	return v
}
