package trace

import (
	"math"

	"repro/internal/model"
)

// capKey addresses one layer invocation of a forward pass: the layer and
// the absolute token position it produced output for.
type capKey struct {
	ref model.LayerRef
	pos int
}

// Capture records the clean per-layer activations of one instance's
// baseline forward pass. It is built once (during baseline evaluation,
// with the capture hook installed) and then read concurrently by every
// traced trial of that instance — immutable after Seal.
type Capture struct {
	minPos int
	rows   map[capKey][]float32
	sealed bool
}

// NewCapture returns a Capture that stores layer outputs for token
// positions >= minPos. Campaigns over transient computational faults pass
// the prompt length (faults strike only during decode, so prompt rows are
// dead weight); campaigns over resident memory faults pass 0 (a flipped
// weight corrupts the prefill too).
func NewCapture(minPos int) *Capture {
	return &Capture{minPos: minPos, rows: map[capKey][]float32{}}
}

// Hook returns the model.Hook that records clean rows. Install it for the
// baseline forward only; it must never observe a faulty pass.
func (c *Capture) Hook() model.Hook {
	return func(ref model.LayerRef, pos int, out []float32) {
		if c.sealed || pos < c.minPos {
			return
		}
		row := make([]float32, len(out))
		copy(row, out)
		c.rows[capKey{ref, pos}] = row
	}
}

// Seal freezes the capture for concurrent read-only use by trial probes.
func (c *Capture) Seal() { c.sealed = true }

// Len reports the number of captured layer rows.
func (c *Capture) Len() int { return len(c.rows) }

func (c *Capture) row(ref model.LayerRef, pos int) []float32 {
	return c.rows[capKey{ref, pos}]
}

// ProbeConfig parameterizes one trial's propagation probe.
type ProbeConfig struct {
	// Tol is the relative-L2 divergence tolerance (0 = DefaultTol).
	Tol float64
	// StrikePos is the absolute token position where a transient fault
	// fires (prompt length + GenIter), or -1 for resident faults; the
	// per-layer deviation profile and blast radius are measured there.
	// For resident faults the profile is taken at the first diverged
	// position instead.
	StrikePos int
	// Site is the injected layer. Blast radius counts invocations from
	// this layer onward at the strike position.
	Site model.LayerRef
}

// Probe observes one faulty trial's layer outputs through a model.Hook
// and compares them against the instance's clean Capture. It is
// single-trial, single-goroutine state: the campaign engine creates one
// per traced trial on the worker that runs it.
//
// The probe hook is installed after the fault-injection hook, so it sees
// activations exactly as the faulty forward produces them (post-fault,
// pre-ABFT-mitigation, pre-rounding).
type Probe struct {
	ref *Capture
	cfg ProbeConfig

	firstDiv   *Divergence
	devs       []LayerDev
	margins    []Margin
	blocksHit  map[int]bool
	downstream bool
	dsTotal    int
	dsExceeded int
	maxRelL2   float64
	maxLInf    float64
	compared   int
}

// NewProbe returns a probe comparing the faulty forward against ref.
func NewProbe(ref *Capture, cfg ProbeConfig) *Probe {
	if cfg.Tol <= 0 {
		cfg.Tol = DefaultTol
	}
	return &Probe{ref: ref, cfg: cfg, blocksHit: map[int]bool{}}
}

// Hook returns the model.Hook that performs the per-invocation
// comparison. It never mutates the output row.
func (p *Probe) Hook() model.Hook {
	return func(ref model.LayerRef, pos int, out []float32) {
		clean := p.ref.row(ref, pos)
		if ref.Kind == model.KindLMHead {
			p.observeLogits(pos, out, clean)
		}
		if clean == nil || len(clean) != len(out) {
			return
		}
		p.compared++
		rel, linf := deviation(out, clean)
		if rel > p.maxRelL2 {
			p.maxRelL2 = rel
		}
		if linf > p.maxLInf {
			p.maxLInf = linf
		}
		exceeded := rel > p.cfg.Tol
		if exceeded && p.firstDiv == nil {
			p.firstDiv = &Divergence{
				Layer: ref.String(), Block: ref.Block, Pos: pos,
				RelL2: finite(rel), LInf: finite(linf),
			}
		}
		strike := p.strikeAt()
		if strike < 0 || pos != strike {
			return
		}
		p.devs = append(p.devs, LayerDev{
			Layer: ref.String(), Block: ref.Block, Pos: pos,
			RelL2: finite(rel), LInf: finite(linf), Exceeded: exceeded,
		})
		// Blast radius counts from the injection site onward: for a
		// transient fault the site layer's own invocation opens the
		// window; for a resident fault (no single site invocation at
		// this position) the first diverged invocation does.
		if !p.downstream {
			if p.cfg.StrikePos >= 0 {
				p.downstream = ref == p.cfg.Site
			} else {
				p.downstream = exceeded
			}
		}
		if p.downstream {
			p.dsTotal++
			if exceeded {
				p.dsExceeded++
				if ref.Block >= 0 {
					p.blocksHit[ref.Block] = true
				}
			}
		}
	}
}

// strikeAt resolves the position the per-layer profile is measured at:
// the known transient strike position, or — for resident faults — the
// position of the first divergence once one is seen.
func (p *Probe) strikeAt() int {
	if p.cfg.StrikePos >= 0 {
		return p.cfg.StrikePos
	}
	if p.firstDiv != nil {
		return p.firstDiv.Pos
	}
	return -1
}

// observeLogits samples the logit-margin trajectory from an LM-head
// invocation: top1 − top2 of the faulty logits, and whether the faulty
// argmax departs from the clean baseline's.
func (p *Probe) observeLogits(pos int, out, clean []float32) {
	fi, fm := topMargin(out)
	diverged := true
	if clean != nil {
		ci, _ := topMargin(clean)
		diverged = fi != ci
	}
	p.margins = append(p.margins, Margin{Pos: pos, Margin: finite(fm), Diverged: diverged})
}

// Fill writes the probe's measurements into rec.
func (p *Probe) Fill(rec *Record) {
	rec.FirstDivergence = p.firstDiv
	rec.PropagationDepth = len(p.blocksHit)
	if p.dsTotal > 0 {
		rec.BlastRadius = float64(p.dsExceeded) / float64(p.dsTotal)
	}
	rec.MaxRelL2 = finite(p.maxRelL2)
	rec.MaxLInf = finite(p.maxLInf)
	rec.Compared = p.compared
	rec.Layers = p.devs
	rec.LogitMargins = p.margins
}

// deviation computes the relative L2 and absolute L∞ deviation of out
// from clean. A non-finite faulty value reads as an infinite deviation
// (the clean reference is always finite).
func deviation(out, clean []float32) (relL2, linf float64) {
	var sum, ref float64
	for i, v := range out {
		c := float64(clean[i])
		ref += c * c
		fv := float64(v)
		if math.IsNaN(fv) || math.IsInf(fv, 0) {
			return math.Inf(1), math.Inf(1)
		}
		d := fv - c
		sum += d * d
		if a := math.Abs(d); a > linf {
			linf = a
		}
	}
	return math.Sqrt(sum) / (math.Sqrt(ref) + 1e-30), linf
}

// topMargin returns the argmax of v and the gap top1 − top2. Non-finite
// entries compare as in gen's argmax: NaN never wins.
func topMargin(v []float32) (int, float64) {
	best, second := math.Inf(-1), math.Inf(-1)
	idx := -1
	for i, x := range v {
		fx := float64(x)
		if math.IsNaN(fx) {
			continue
		}
		if fx > best {
			second = best
			best = fx
			idx = i
		} else if fx > second {
			second = fx
		}
	}
	if idx < 0 || math.IsInf(second, -1) {
		return idx, 0
	}
	return idx, best - second
}
