package train

import (
	"math"

	"repro/internal/tensor"
)

// LossAndGrad runs forward and backward over one token sequence.
// tokens[t] is the input at position t; the model is trained to predict
// tokens[t+1]. lossMask[t] selects which predictions contribute to the
// loss (true for the completion region). Gradients accumulate into the
// parameter .G buffers; call ZeroGrad before a new batch and Step after.
// It returns the mean cross-entropy over the masked positions.
func (tr *Trainable) LossAndGrad(tokens []int, lossMask []bool) float64 {
	return tr.LossAndGradIO(tokens[:len(tokens)-1], tokens[1:], lossMask)
}

// LossAndGradIO is LossAndGrad with decoupled inputs and labels:
// labels[t] is the target for position t, which may differ from
// inputs[t+1]. This trains denoising behaviour — showing the model a
// corrupted reasoning token while supervising the clean continuation
// teaches it to re-derive from the operands instead of trusting the
// chain, the recovery ability behind Observation #10.
func (tr *Trainable) LossAndGradIO(inputs, labels []int, lossMask []bool) float64 {
	sc := tr.forwardSeq(inputs)
	T := sc.T
	V := tr.Cfg.Vocab

	// Cross-entropy and dLogits.
	dLogits := tensor.New(T, V)
	count := 0
	for t := 0; t < T; t++ {
		if lossMask[t] {
			count++
		}
	}
	if count == 0 {
		return 0
	}
	invCount := 1 / float64(count)
	var loss float64
	for t := 0; t < T; t++ {
		if !lossMask[t] {
			continue
		}
		label := labels[t]
		row := sc.logits.Row(t)
		lsm := tensor.LogSoftmaxRow(row)
		loss -= lsm[label]
		drow := dLogits.Row(t)
		for i := range drow {
			drow[i] = float32(math.Exp(lsm[i]) * invCount)
		}
		drow[label] -= float32(invCount)
	}
	loss *= invCount

	tr.backwardSeq(sc, dLogits)
	return loss
}

// backwardSeq propagates dLogits back through the cached sequence,
// accumulating parameter gradients.
func (tr *Trainable) backwardSeq(sc *seqCache, dLogits *tensor.Tensor) {
	cfg := &tr.Cfg
	T, d := sc.T, cfg.DModel

	// LM head.
	dxNorm := tensor.New(T, d)
	tensor.MatMulT(dxNorm, dLogits, tr.LMHead.W)
	tensor.AddMatMulAT(tr.LMHead.G, sc.xNorm, dLogits)

	// Final norm.
	dx := tr.rmsNormBackward(sc.xPre, dxNorm, tr.FinalNorm, sc.invF)

	for b := len(tr.Blocks) - 1; b >= 0; b-- {
		blk := tr.Blocks[b]
		bc := sc.blocks[b]
		ff := cfg.FFHidden

		// ---- MLP backward: x = x2 + WDown(silu(g)*u) ----
		dAct := tensor.New(T, ff)
		tensor.MatMulT(dAct, dx, blk.WDown.W)
		tensor.AddMatMulAT(blk.WDown.G, bc.act, dx)

		dG := tensor.New(T, ff)
		dU := tensor.New(T, ff)
		for i, da := range dAct.Data {
			g := bc.g.Data[i]
			dU.Data[i] = da * silu(g)
			dG.Data[i] = da * bc.u.Data[i] * siluGrad(g)
		}
		dH2 := tensor.New(T, d)
		tensor.MatMulT(dH2, dG, blk.WGate.W)
		tmp := tensor.New(T, d)
		tensor.MatMulT(tmp, dU, blk.WUp.W)
		dH2.AddInPlace(tmp)
		tensor.AddMatMulAT(blk.WGate.G, bc.h2Norm, dG)
		tensor.AddMatMulAT(blk.WUp.G, bc.h2Norm, dU)

		dX2 := tr.rmsNormBackward(bc.x2, dH2, blk.MLPNorm, bc.invM)
		dX2.AddInPlace(dx) // residual branch

		// ---- attention backward: x2 = xIn + Wo(concat) ----
		dConcat := tensor.New(T, d)
		tensor.MatMulT(dConcat, dX2, blk.Wo.W)
		tensor.AddMatMulAT(blk.Wo.G, bc.concat, dX2)

		dQ, dK, dV := tr.attentionBackward(bc, dConcat)

		// RoPE backward: transpose rotation.
		tr.ropeAll(dQ, -1)
		tr.ropeAll(dK, -1)

		dHNorm := tensor.New(T, d)
		tensor.MatMulT(dHNorm, dQ, blk.Wq.W)
		tensor.MatMulT(tmp, dK, blk.Wk.W)
		dHNorm.AddInPlace(tmp)
		tensor.MatMulT(tmp, dV, blk.Wv.W)
		dHNorm.AddInPlace(tmp)
		tensor.AddMatMulAT(blk.Wq.G, bc.hNorm, dQ)
		tensor.AddMatMulAT(blk.Wk.G, bc.hNorm, dK)
		tensor.AddMatMulAT(blk.Wv.G, bc.hNorm, dV)

		dXIn := tr.rmsNormBackward(bc.xIn, dHNorm, blk.AttnNorm, bc.invA)
		dXIn.AddInPlace(dX2) // residual branch
		dx = dXIn
	}

	// Embedding.
	for t, tok := range sc.tokens {
		erow := tr.Embed.G.Row(tok)
		drow := dx.Row(t)
		for i, v := range drow {
			erow[i] += v
		}
	}
}

// rmsNormBackward computes dx for y = (x * inv) ⊙ g and accumulates the
// gain gradient. inv holds the cached per-row 1/RMS factors.
func (tr *Trainable) rmsNormBackward(x, dy *tensor.Tensor, gain *Param, inv []float64) *tensor.Tensor {
	d := x.Cols
	dx := tensor.New(x.Rows, d)
	g := gain.W.Data
	gg := gain.G.Data
	for t := 0; t < x.Rows; t++ {
		xrow, dyrow, dxrow := x.Row(t), dy.Row(t), dx.Row(t)
		iv := inv[t]
		var dot float64
		for i := range dyrow {
			dyg := float64(dyrow[i]) * float64(g[i])
			dot += dyg * float64(xrow[i])
			gg[i] += float32(float64(dyrow[i]) * float64(xrow[i]) * iv)
		}
		c := iv * iv * iv * dot / float64(d)
		for i := range dxrow {
			dxrow[i] = float32(float64(dyrow[i])*float64(g[i])*iv - float64(xrow[i])*c)
		}
	}
	return dx
}

// attentionBackward computes gradients w.r.t. the post-RoPE q, k and the
// v projections given the gradient of the concatenated head outputs.
func (tr *Trainable) attentionBackward(bc *blockCache, dConcat *tensor.Tensor) (dQ, dK, dV *tensor.Tensor) {
	cfg := &tr.Cfg
	T := dConcat.Rows
	hd := cfg.DModel / cfg.NHeads
	scale := 1 / math.Sqrt(float64(hd))
	dQ = tensor.New(T, cfg.DModel)
	dK = tensor.New(T, cfg.DModel)
	dV = tensor.New(T, cfg.DModel)

	dP := make([]float64, T)
	dS := make([]float64, T)
	for h := 0; h < cfg.NHeads; h++ {
		off := h * hd
		P := bc.probs[h]
		for t := 0; t < T; t++ {
			dArow := dConcat.Row(t)[off : off+hd]
			prow := P.Row(t)
			// dV[j] += P[t,j] * dA[t]; dP[t,j] = dA[t]·V[j]
			var dot float64
			for j := 0; j <= t; j++ {
				p := float64(prow[j])
				vrow := bc.v.Row(j)[off : off+hd]
				dvrow := dV.Row(j)[off : off+hd]
				var dpj float64
				for i, da := range dArow {
					dvrow[i] += float32(p * float64(da))
					dpj += float64(da) * float64(vrow[i])
				}
				dP[j] = dpj
				dot += dpj * p
			}
			// dS = P ⊙ (dP - Σ dP⊙P)
			for j := 0; j <= t; j++ {
				dS[j] = float64(prow[j]) * (dP[j] - dot)
			}
			// dQ[t] += scale * Σ_j dS[j] * K[j]; dK[j] += scale*dS[j]*Q[t]
			dqrow := dQ.Row(t)[off : off+hd]
			qrow := bc.q.Row(t)[off : off+hd]
			for j := 0; j <= t; j++ {
				ds := dS[j] * scale
				if ds == 0 {
					continue
				}
				krow := bc.k.Row(j)[off : off+hd]
				dkrow := dK.Row(j)[off : off+hd]
				for i := range dqrow {
					dqrow[i] += float32(ds * float64(krow[i]))
					dkrow[i] += float32(ds * float64(qrow[i]))
				}
			}
		}
	}
	return dQ, dK, dV
}
