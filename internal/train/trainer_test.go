package train

import (
	"testing"

	"repro/internal/numerics"
	"repro/internal/prng"
	"repro/internal/tasks"
	"repro/internal/token"
)

func TestBuildSequence(t *testing.T) {
	prompt := []int{1, 10, 11}
	completion := []int{12, 13}
	seq, mask := BuildSequence(prompt, completion)
	want := []int{1, 10, 11, 12, 13, token.EOS}
	if len(seq) != len(want) {
		t.Fatalf("seq = %v", seq)
	}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("seq = %v, want %v", seq, want)
		}
	}
	// Mask covers predictions of the completion tokens and EOS: positions
	// len(prompt)-1 .. end.
	if len(mask) != len(seq)-1 {
		t.Fatal("mask length")
	}
	for i, m := range mask {
		want := i >= len(prompt)-1
		if m != want {
			t.Fatalf("mask[%d] = %v, want %v", i, m, want)
		}
	}
}

func TestCloneWeightsIndependent(t *testing.T) {
	tr, err := NewTrainable(tinyConfig(), 3)
	if err != nil {
		t.Fatal(err)
	}
	cl := tr.CloneWeights()
	if cl.NumParams() != tr.NumParams() {
		t.Fatal("clone parameter count differs")
	}
	cl.Blocks[0].Wq.W.Data[0] += 1
	if tr.Blocks[0].Wq.W.Data[0] == cl.Blocks[0].Wq.W.Data[0] {
		t.Fatal("clone shares weight storage")
	}
	// Optimizer state is fresh.
	if cl.step != 0 {
		t.Fatal("clone should reset step count")
	}
}

func TestExportMatchesTrainableGreedy(t *testing.T) {
	// The exported inference model must reproduce the trainer's own
	// greedy decoding exactly in FP32 (identical architecture + weights).
	task := tasks.NewQATask()
	cfg := tinyConfig()
	cfg.Vocab = task.Vocab().Size()
	cfg.MaxSeq = task.MaxLen() + 2
	tr, err := NewTrainable(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	// A short bit of training so logits are not degenerate.
	tcfg := DefaultConfig(5)
	tcfg.Steps = 8
	tcfg.Batch = 4
	if err := Continue(tr, task, tcfg); err != nil {
		t.Fatal(err)
	}
	m := tr.Export("x", numerics.FP32)

	src := prng.New(2)
	for i := 0; i < 5; i++ {
		prompt, _ := task.Pair(src.Split(uint64(i)))
		want := tr.Greedy(prompt, 4)
		st := m.NewState()
		logits := st.Prefill(prompt)
		got := make([]int, 0, 4)
		for j := 0; j < 4; j++ {
			next := argmaxBanned(logits)
			if next == token.EOS {
				break
			}
			got = append(got, next)
			logits = st.DecodeStep(next)
		}
		if len(got) != len(want) {
			t.Fatalf("export mismatch: %v vs %v", got, want)
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("export mismatch at %d: %v vs %v", j, got, want)
			}
		}
	}
}

func TestDenoisingPathUsed(t *testing.T) {
	// With a NoisyTask, training must not crash and must still learn
	// (smoke: loss decreases over a few steps on math).
	task := tasks.NewMathTask(4)
	cfg := tinyConfig()
	cfg.Vocab = task.Vocab().Size()
	cfg.MaxSeq = task.MaxLen()
	tr, err := NewTrainable(cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	tcfg := DefaultConfig(7)
	tcfg.Steps = 5
	tcfg.Batch = 4
	if err := Continue(tr, task, tcfg); err != nil {
		t.Fatal(err)
	}
}

func TestEvalExactMatchBounds(t *testing.T) {
	task := tasks.NewQATask()
	cfg := tinyConfig()
	cfg.Vocab = task.Vocab().Size()
	cfg.MaxSeq = task.MaxLen() + 2
	tr, err := NewTrainable(cfg, 9)
	if err != nil {
		t.Fatal(err)
	}
	acc := tr.EvalExactMatch(task, 1, 8)
	if acc < 0 || acc > 1 {
		t.Fatalf("accuracy out of range: %f", acc)
	}
}

func TestContinueRejectsVocabMismatch(t *testing.T) {
	tr, err := NewTrainable(tinyConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	task := tasks.NewMathTask(9)
	if err := Continue(tr, task, DefaultConfig(1)); err == nil {
		t.Fatal("vocab mismatch should error")
	}
}
