package train

import (
	"math"

	"repro/internal/model"
	"repro/internal/prng"
	"repro/internal/tensor"
)

// NewTrainable builds a trainable model with small Gaussian init.
func NewTrainable(cfg model.Config, seed uint64) (*Trainable, error) {
	cfg.DType = 0 // training always runs FP32
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	src := prng.New(seed ^ 0x7261696e)
	d, ff := cfg.DModel, cfg.FFHidden
	sigma := 0.6 / math.Sqrt(float64(d))

	tr := &Trainable{Cfg: cfg}
	tr.Embed = newParam(cfg.Vocab, d, false)
	fillNorm(tr.Embed.W, src.Split(0), sigma)
	tr.LMHead = newParam(d, cfg.Vocab, true)
	fillNorm(tr.LMHead.W, src.Split(1), sigma)
	tr.FinalNorm = newParam(1, d, false)
	tr.FinalNorm.W.Fill(1)

	for b := 0; b < cfg.NBlocks; b++ {
		bs := src.Split(uint64(10 + b))
		blk := &TBlock{
			AttnNorm: newParam(1, d, false),
			MLPNorm:  newParam(1, d, false),
			Wq:       newParam(d, d, true),
			Wk:       newParam(d, d, true),
			Wv:       newParam(d, d, true),
			Wo:       newParam(d, d, true),
			WGate:    newParam(d, ff, true),
			WUp:      newParam(d, ff, true),
			WDown:    newParam(ff, d, true),
		}
		blk.AttnNorm.W.Fill(1)
		blk.MLPNorm.W.Fill(1)
		fillNorm(blk.Wq.W, bs.Split(0), sigma)
		fillNorm(blk.Wk.W, bs.Split(1), sigma)
		fillNorm(blk.Wv.W, bs.Split(2), sigma)
		fillNorm(blk.Wo.W, bs.Split(3), sigma)
		fillNorm(blk.WGate.W, bs.Split(4), sigma)
		fillNorm(blk.WUp.W, bs.Split(5), sigma)
		fillNorm(blk.WDown.W, bs.Split(6), 0.6/math.Sqrt(float64(ff)))
		tr.Blocks = append(tr.Blocks, blk)
	}
	tr.initRope()
	return tr, nil
}

func fillNorm(t *tensor.Tensor, src *prng.Source, sigma float64) {
	for i := range t.Data {
		t.Data[i] = float32(src.NormFloat64() * sigma)
	}
}

func (tr *Trainable) initRope() {
	cfg := &tr.Cfg
	hd := cfg.DModel / cfg.NHeads
	tr.ropeCos = make([][]float32, cfg.MaxSeq)
	tr.ropeSin = make([][]float32, cfg.MaxSeq)
	for p := 0; p < cfg.MaxSeq; p++ {
		cosT := make([]float32, hd/2)
		sinT := make([]float32, hd/2)
		for i := 0; i < hd/2; i++ {
			freq := 1 / math.Pow(cfg.RopeTheta, float64(2*i)/float64(hd))
			ang := float64(p) * freq
			cosT[i] = float32(math.Cos(ang))
			sinT[i] = float32(math.Sin(ang))
		}
		tr.ropeCos[p] = cosT
		tr.ropeSin[p] = sinT
	}
}

// blockCache stores the intermediates one block needs for backprop.
type blockCache struct {
	xIn     *tensor.Tensor // block input, T x d
	hNorm   *tensor.Tensor // RMSNorm(xIn)
	invA    []float64      // per-row inv factors of the attention norm
	q, k, v *tensor.Tensor // post-RoPE q/k, plain v (T x d)
	probs   []*tensor.Tensor
	concat  *tensor.Tensor // attention head concat (T x d)
	x2      *tensor.Tensor // after attention residual
	h2Norm  *tensor.Tensor // RMSNorm(x2)
	invM    []float64
	g, u    *tensor.Tensor // gate/up projections (T x ff)
	act     *tensor.Tensor // silu(g) * u
}

// seqCache holds everything the backward pass of one sequence needs.
type seqCache struct {
	T      int
	tokens []int
	x0     *tensor.Tensor
	blocks []*blockCache
	xPre   *tensor.Tensor // input to final norm
	invF   []float64
	xNorm  *tensor.Tensor
	logits *tensor.Tensor
}

// forwardSeq runs teacher-forced forward over tokens[0:T] producing
// logits for each position.
func (tr *Trainable) forwardSeq(tokens []int) *seqCache {
	cfg := &tr.Cfg
	T, d := len(tokens), cfg.DModel
	sc := &seqCache{T: T, tokens: tokens}

	x := tensor.New(T, d)
	for t, tok := range tokens {
		copy(x.Row(t), tr.Embed.W.Row(tok))
	}
	sc.x0 = x.Clone()

	for _, blk := range tr.Blocks {
		bc := &blockCache{xIn: x.Clone()}
		// Attention norm.
		bc.hNorm, bc.invA = tr.rmsNorm(x, blk.AttnNorm)
		// Projections.
		bc.q = tensor.New(T, d)
		bc.k = tensor.New(T, d)
		bc.v = tensor.New(T, d)
		tensor.MatMul(bc.q, bc.hNorm, blk.Wq.W)
		tensor.MatMul(bc.k, bc.hNorm, blk.Wk.W)
		tensor.MatMul(bc.v, bc.hNorm, blk.Wv.W)
		tr.ropeAll(bc.q, +1)
		tr.ropeAll(bc.k, +1)
		// Attention per head.
		bc.probs, bc.concat = tr.attention(bc.q, bc.k, bc.v)
		// Output projection + residual.
		attnOut := tensor.New(T, d)
		tensor.MatMul(attnOut, bc.concat, blk.Wo.W)
		x.AddInPlace(attnOut)
		bc.x2 = x.Clone()
		// MLP norm.
		bc.h2Norm, bc.invM = tr.rmsNorm(x, blk.MLPNorm)
		// SwiGLU.
		ff := cfg.FFHidden
		bc.g = tensor.New(T, ff)
		bc.u = tensor.New(T, ff)
		tensor.MatMul(bc.g, bc.h2Norm, blk.WGate.W)
		tensor.MatMul(bc.u, bc.h2Norm, blk.WUp.W)
		bc.act = tensor.New(T, ff)
		for i, g := range bc.g.Data {
			bc.act.Data[i] = silu(g) * bc.u.Data[i]
		}
		mlpOut := tensor.New(T, d)
		tensor.MatMul(mlpOut, bc.act, blk.WDown.W)
		x.AddInPlace(mlpOut)
		sc.blocks = append(sc.blocks, bc)
	}

	sc.xPre = x.Clone()
	sc.xNorm, sc.invF = tr.rmsNorm(x, tr.FinalNorm)
	sc.logits = tensor.New(T, cfg.Vocab)
	tensor.MatMul(sc.logits, sc.xNorm, tr.LMHead.W)
	return sc
}

// rmsNorm normalizes each row of x by RMS and applies gain, returning the
// normalized tensor and the per-row inverse factors.
func (tr *Trainable) rmsNorm(x *tensor.Tensor, gain *Param) (*tensor.Tensor, []float64) {
	d := x.Cols
	out := tensor.New(x.Rows, d)
	inv := make([]float64, x.Rows)
	g := gain.W.Data
	for t := 0; t < x.Rows; t++ {
		row := x.Row(t)
		var ss float64
		for _, v := range row {
			ss += float64(v) * float64(v)
		}
		iv := 1 / math.Sqrt(ss/float64(d)+float64(tr.Cfg.Eps))
		inv[t] = iv
		orow := out.Row(t)
		for i, v := range row {
			orow[i] = float32(float64(v)*iv) * g[i]
		}
	}
	return out, inv
}

// ropeAll applies RoPE to every row (position = row index). dir +1
// rotates forward, -1 applies the transpose (backward).
func (tr *Trainable) ropeAll(x *tensor.Tensor, dir float32) {
	hd := tr.Cfg.DModel / tr.Cfg.NHeads
	for t := 0; t < x.Rows; t++ {
		cosT, sinT := tr.ropeCos[t], tr.ropeSin[t]
		row := x.Row(t)
		for h := 0; h < tr.Cfg.NHeads; h++ {
			off := h * hd
			for i := 0; i < hd/2; i++ {
				c, s := cosT[i], dir*sinT[i]
				a, b := row[off+2*i], row[off+2*i+1]
				row[off+2*i] = a*c - b*s
				row[off+2*i+1] = a*s + b*c
			}
		}
	}
}

// attention computes causal softmax attention per head, returning the
// probability matrices (per head, T x T) and the concatenated output.
func (tr *Trainable) attention(q, k, v *tensor.Tensor) ([]*tensor.Tensor, *tensor.Tensor) {
	cfg := &tr.Cfg
	T := q.Rows
	hd := cfg.DModel / cfg.NHeads
	scale := 1 / math.Sqrt(float64(hd))
	probs := make([]*tensor.Tensor, cfg.NHeads)
	concat := tensor.New(T, cfg.DModel)
	for h := 0; h < cfg.NHeads; h++ {
		off := h * hd
		P := tensor.New(T, T)
		for t := 0; t < T; t++ {
			qrow := q.Row(t)[off : off+hd]
			prow := P.Row(t)
			for j := 0; j <= t; j++ {
				krow := k.Row(j)[off : off+hd]
				var dot float64
				for i, qv := range qrow {
					dot += float64(qv) * float64(krow[i])
				}
				prow[j] = float32(dot * scale)
			}
			for j := t + 1; j < T; j++ {
				prow[j] = float32(math.Inf(-1))
			}
			tensor.SoftmaxRow(prow)
		}
		probs[h] = P
		for t := 0; t < T; t++ {
			orow := concat.Row(t)[off : off+hd]
			prow := P.Row(t)
			for j := 0; j <= t; j++ {
				w := prow[j]
				if w == 0 {
					continue
				}
				vrow := v.Row(j)[off : off+hd]
				for i, vv := range vrow {
					orow[i] += w * vv
				}
			}
		}
	}
	return probs, concat
}

func silu(x float32) float32 {
	return float32(float64(x) / (1 + math.Exp(-float64(x))))
}

func siluGrad(x float32) float32 {
	s := 1 / (1 + math.Exp(-float64(x)))
	return float32(s * (1 + float64(x)*(1-s)))
}
