package train

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/numerics"
	"repro/internal/prng"
	"repro/internal/tasks"
	"repro/internal/tensor"
	"repro/internal/token"
)

// Config drives one training run.
type Config struct {
	Steps     int
	Batch     int
	Opt       Opt
	Seed      uint64
	EvalEvery int // 0 disables progress evaluation
	EvalN     int
	// Logf receives progress lines; nil silences them.
	Logf func(format string, args ...any)
}

// DefaultConfig returns the settings used to produce the shipped
// checkpoints.
func DefaultConfig(seed uint64) Config {
	return Config{Steps: 400, Batch: 16, Opt: DefaultOpt(), Seed: seed, EvalEvery: 100, EvalN: 32}
}

// BuildSequence assembles the training token sequence and loss mask for a
// (prompt, completion) pair: seq = prompt ++ completion ++ EOS, with the
// loss covering exactly the completion tokens and the EOS.
func BuildSequence(prompt, completion []int) (seq []int, mask []bool) {
	seq = append(append(append([]int{}, prompt...), completion...), token.EOS)
	mask = make([]bool, len(seq)-1)
	for t := len(prompt) - 1; t < len(mask); t++ {
		mask[t] = true
	}
	return seq, mask
}

// Run trains a fresh model on task for cfg.Steps steps and returns it.
// The architecture comes from arch (vocab size is overwritten from the
// task; MaxSeq must cover task.MaxLen()).
func Run(task tasks.TrainTask, arch model.Config, cfg Config) (*Trainable, error) {
	arch.Vocab = task.Vocab().Size()
	if arch.MaxSeq < task.MaxLen() {
		arch.MaxSeq = task.MaxLen()
	}
	tr, err := NewTrainable(arch, cfg.Seed)
	if err != nil {
		return nil, err
	}
	if err := Continue(tr, task, cfg); err != nil {
		return nil, err
	}
	return tr, nil
}

// Continue trains an existing model further (the "fine-tuning" stage of
// the general-vs-fine-tuned comparison, Observation #4).
func Continue(tr *Trainable, task tasks.TrainTask, cfg Config) error {
	if tr.Cfg.Vocab != task.Vocab().Size() {
		return fmt.Errorf("train: model vocab %d != task vocab %d", tr.Cfg.Vocab, task.Vocab().Size())
	}
	src := prng.New(cfg.Seed ^ 0xfeed)
	for step := 1; step <= cfg.Steps; step++ {
		tr.ZeroGrad()
		var loss float64
		noisy, _ := task.(tasks.NoisyTask)
		for b := 0; b < cfg.Batch; b++ {
			esrc := src.Split(uint64(step)*1000 + uint64(b))
			prompt, completion := task.Pair(esrc)
			seq, mask := BuildSequence(prompt, completion)
			labels := seq[1:]
			inputs := append([]int(nil), seq[:len(seq)-1]...)
			if noisy != nil {
				inputs = noisy.CorruptInputs(esrc, inputs, len(prompt))
			}
			loss += tr.LossAndGradIO(inputs, labels, mask)
		}
		loss /= float64(cfg.Batch)
		// Average the accumulated gradients over the batch.
		inv := float32(1.0 / float64(cfg.Batch))
		for _, p := range tr.params() {
			p.G.ScaleInPlace(inv)
		}
		tr.Step(cfg.Opt)
		if cfg.Logf != nil && (cfg.EvalEvery > 0 && step%cfg.EvalEvery == 0 || step == cfg.Steps) {
			acc := tr.EvalExactMatch(task, cfg.Seed^0xe7a1, cfg.EvalN)
			cfg.Logf("step %4d  loss %.4f  exact-match %.3f", step, loss, acc)
		}
	}
	return nil
}

// Greedy decodes greedily from prompt by re-running the teacher-forced
// forward each step (fine at training scale). Returns generated tokens
// (EOS excluded).
func (tr *Trainable) Greedy(prompt []int, maxNew int) []int {
	seq := append([]int(nil), prompt...)
	var out []int
	for i := 0; i < maxNew && len(seq) < tr.Cfg.MaxSeq; i++ {
		sc := tr.forwardSeq(seq)
		logits := sc.logits.Row(sc.T - 1)
		next := argmaxBanned(logits)
		if next == token.EOS {
			break
		}
		out = append(out, next)
		seq = append(seq, next)
	}
	return out
}

// argmaxBanned is greedy argmax with PAD/BOS/UNK banned, matching the
// inference-time generation settings.
func argmaxBanned(logits []float32) int {
	best, bestv := token.EOS, logits[token.EOS]
	for i, v := range logits {
		if i == token.PAD || i == token.BOS || i == token.UNK {
			continue
		}
		if v > bestv {
			best, bestv = i, v
		}
	}
	return best
}

// EvalExactMatch measures the fraction of n fresh task samples whose
// greedy completion exactly matches the gold completion.
func (tr *Trainable) EvalExactMatch(task tasks.TrainTask, seed uint64, n int) float64 {
	src := prng.New(seed)
	hits := 0
	for i := 0; i < n; i++ {
		prompt, completion := task.Pair(src.Split(uint64(i)))
		got := tr.Greedy(prompt, len(completion)+2)
		if equalInts(got, completion) {
			hits++
		}
	}
	return float64(hits) / float64(n)
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i, v := range a {
		if v != b[i] {
			return false
		}
	}
	return true
}

// Export copies the trained parameters into an inference model with the
// given name and datatype. The returned model is independent of the
// Trainable (weights are cloned, then rounded to dt by the model
// package).
func (tr *Trainable) Export(name string, dt numerics.DType) *model.Model {
	cfg := tr.Cfg
	cfg.Name = name
	cfg.DType = dt
	m := &model.Model{
		Cfg:       cfg,
		Embed:     tr.Embed.W.Clone(),
		FinalNorm: cloneRow(tr.FinalNorm.W),
		LMHead:    model.NewDense(tr.LMHead.W.Clone(), dt),
	}
	for _, blk := range tr.Blocks {
		m.Blocks = append(m.Blocks, &model.Block{
			AttnNorm: cloneRow(blk.AttnNorm.W),
			MLPNorm:  cloneRow(blk.MLPNorm.W),
			Wq:       model.NewDense(blk.Wq.W.Clone(), dt),
			Wk:       model.NewDense(blk.Wk.W.Clone(), dt),
			Wv:       model.NewDense(blk.Wv.W.Clone(), dt),
			Wo:       model.NewDense(blk.Wo.W.Clone(), dt),
			MLP: &model.MLPWeights{
				WGate: model.NewDense(blk.WGate.W.Clone(), dt),
				WUp:   model.NewDense(blk.WUp.W.Clone(), dt),
				WDown: model.NewDense(blk.WDown.W.Clone(), dt),
			},
		})
	}
	m.InitRope()
	return m
}

func cloneRow(t *tensor.Tensor) []float32 {
	return append([]float32(nil), t.Data...)
}
