// Package train is the training substrate that produces the task-skilled
// tiny models of the study: a from-scratch reverse-mode implementation of
// the full Llama-block computation (embedding, RMSNorm, RoPE, causal
// multi-head attention, SwiGLU MLP, cross-entropy) with an AdamW
// optimizer. It exists because several of the paper's observations —
// CoT recovery (Obs #10), subtle-vs-distorted math SDCs (Fig. 8, 12),
// fine-tuned-model resilience (Obs #4) — require models that genuinely
// perform their task, not random weights.
//
// The trained parameters export into internal/model for inference, so
// the model under fault injection is exactly the model that was trained.
package train

import (
	"math"

	"repro/internal/model"
	"repro/internal/tensor"
)

// Param is one trainable tensor with its gradient and Adam moments.
type Param struct {
	W *tensor.Tensor
	G *tensor.Tensor
	m []float32
	v []float32
	// decay marks the parameter for weight decay (matrices yes, norm
	// gains and embeddings no — the usual AdamW convention).
	decay bool
}

func newParam(rows, cols int, decay bool) *Param {
	return &Param{
		W:     tensor.New(rows, cols),
		G:     tensor.New(rows, cols),
		m:     make([]float32, rows*cols),
		v:     make([]float32, rows*cols),
		decay: decay,
	}
}

// zeroGrad clears the gradient buffer.
func (p *Param) zeroGrad() {
	for i := range p.G.Data {
		p.G.Data[i] = 0
	}
}

// TBlock is one trainable transformer block.
type TBlock struct {
	AttnNorm, MLPNorm *Param // 1 x d gains
	Wq, Wk, Wv, Wo    *Param
	WGate, WUp, WDown *Param
}

// Trainable is a dense FP32 model under training.
type Trainable struct {
	Cfg       model.Config
	Embed     *Param
	Blocks    []*TBlock
	FinalNorm *Param
	LMHead    *Param

	ropeCos, ropeSin [][]float32
	step             int
}

// params enumerates every parameter.
func (tr *Trainable) params() []*Param {
	ps := []*Param{tr.Embed, tr.FinalNorm, tr.LMHead}
	for _, b := range tr.Blocks {
		ps = append(ps, b.AttnNorm, b.MLPNorm, b.Wq, b.Wk, b.Wv, b.Wo, b.WGate, b.WUp, b.WDown)
	}
	return ps
}

// ZeroGrad clears all gradients.
func (tr *Trainable) ZeroGrad() {
	for _, p := range tr.params() {
		p.zeroGrad()
	}
}

// NumParams returns the trainable parameter count.
func (tr *Trainable) NumParams() int {
	n := 0
	for _, p := range tr.params() {
		n += len(p.W.Data)
	}
	return n
}

// CloneWeights returns an independent copy of the model with the same
// weights but fresh gradients and optimizer state — the starting point of
// a fine-tuning run.
func (tr *Trainable) CloneWeights() *Trainable {
	nt := &Trainable{Cfg: tr.Cfg}
	cp := func(p *Param) *Param {
		np := newParam(p.W.Rows, p.W.Cols, p.decay)
		copy(np.W.Data, p.W.Data)
		return np
	}
	nt.Embed = cp(tr.Embed)
	nt.FinalNorm = cp(tr.FinalNorm)
	nt.LMHead = cp(tr.LMHead)
	for _, b := range tr.Blocks {
		nt.Blocks = append(nt.Blocks, &TBlock{
			AttnNorm: cp(b.AttnNorm), MLPNorm: cp(b.MLPNorm),
			Wq: cp(b.Wq), Wk: cp(b.Wk), Wv: cp(b.Wv), Wo: cp(b.Wo),
			WGate: cp(b.WGate), WUp: cp(b.WUp), WDown: cp(b.WDown),
		})
	}
	nt.initRope()
	return nt
}

// Opt is the AdamW configuration.
type Opt struct {
	LR          float64
	Beta1       float64
	Beta2       float64
	Eps         float64
	WeightDecay float64
	// Warmup linearly ramps the learning rate over this many steps.
	Warmup int
	// ClipNorm rescales the global gradient norm above this bound
	// (0 disables clipping).
	ClipNorm float64
}

// DefaultOpt returns sensible hyperparameters for the tiny task models.
func DefaultOpt() Opt {
	return Opt{LR: 3e-3, Beta1: 0.9, Beta2: 0.95, Eps: 1e-8, WeightDecay: 0.02, Warmup: 30, ClipNorm: 1}
}

// Step applies one AdamW update from the accumulated gradients.
func (tr *Trainable) Step(opt Opt) {
	tr.step++
	lr := opt.LR
	if opt.Warmup > 0 && tr.step < opt.Warmup {
		lr *= float64(tr.step) / float64(opt.Warmup)
	}
	if opt.ClipNorm > 0 {
		var ss float64
		for _, p := range tr.params() {
			for _, g := range p.G.Data {
				ss += float64(g) * float64(g)
			}
		}
		norm := math.Sqrt(ss)
		if norm > opt.ClipNorm {
			scale := float32(opt.ClipNorm / norm)
			for _, p := range tr.params() {
				for i := range p.G.Data {
					p.G.Data[i] *= scale
				}
			}
		}
	}
	b1c := 1 - math.Pow(opt.Beta1, float64(tr.step))
	b2c := 1 - math.Pow(opt.Beta2, float64(tr.step))
	for _, p := range tr.params() {
		for i, g := range p.G.Data {
			gm := float64(g)
			p.m[i] = float32(opt.Beta1*float64(p.m[i]) + (1-opt.Beta1)*gm)
			p.v[i] = float32(opt.Beta2*float64(p.v[i]) + (1-opt.Beta2)*gm*gm)
			mhat := float64(p.m[i]) / b1c
			vhat := float64(p.v[i]) / b2c
			upd := lr * mhat / (math.Sqrt(vhat) + opt.Eps)
			w := float64(p.W.Data[i])
			if p.decay {
				w -= lr * opt.WeightDecay * w
			}
			p.W.Data[i] = float32(w - upd)
		}
	}
}
