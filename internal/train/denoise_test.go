package train

import (
	"math"
	"testing"

	"repro/internal/token"
)

// TestDenoisingGradientDiffers: corrupting an input token while keeping
// labels clean must change the loss/gradients relative to the clean
// sequence — the signal that teaches recovery (Observation #10's
// mechanism).
func TestDenoisingGradientDiffers(t *testing.T) {
	tr, err := NewTrainable(tinyConfig(), 13)
	if err != nil {
		t.Fatal(err)
	}
	seq := []int{1, 5, 6, 7, 8, 9, 10, 2}
	mask := make([]bool, len(seq)-1)
	for i := 2; i < len(mask); i++ {
		mask[i] = true
	}
	labels := seq[1:]
	clean := append([]int(nil), seq[:len(seq)-1]...)

	tr.ZeroGrad()
	cleanLoss := tr.LossAndGradIO(clean, labels, mask)
	cleanGrad := append([]float32(nil), tr.Embed.G.Data...)

	corrupted := append([]int(nil), clean...)
	corrupted[4] = 10 // change one completion-region input token
	tr.ZeroGrad()
	corruptLoss := tr.LossAndGradIO(corrupted, labels, mask)

	if cleanLoss == corruptLoss {
		t.Fatal("corrupted input produced identical loss")
	}
	diff := false
	for i, g := range tr.Embed.G.Data {
		if g != cleanGrad[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("corrupted input produced identical gradients")
	}
}

// TestDenoisingLabelsStayClean: the gradient at the position predicting
// the corrupted token still pushes toward the CLEAN label (the label
// distribution's target row is the clean token, not the corrupted one).
func TestDenoisingLabelsStayClean(t *testing.T) {
	tr, err := NewTrainable(tinyConfig(), 14)
	if err != nil {
		t.Fatal(err)
	}
	seq := []int{1, 5, 6, 7, 8, 9, 10, 2}
	labels := seq[1:]
	inputs := append([]int(nil), seq[:len(seq)-1]...)
	inputs[4] = 10 // corrupted; labels[3] == 8 (clean) predicts position 4

	mask := make([]bool, len(inputs))
	mask[3] = true // only the prediction of the (clean) token at pos 4

	tr.ZeroGrad()
	loss := tr.LossAndGradIO(inputs, labels, mask)
	// The loss must be the cross-entropy against label 8, not 10: verify
	// by flipping the label and seeing a different loss.
	labels2 := append([]int(nil), labels...)
	labels2[3] = 10
	tr.ZeroGrad()
	loss2 := tr.LossAndGradIO(inputs, labels2, mask)
	if math.Abs(loss-loss2) < 1e-9 {
		t.Fatal("loss insensitive to which label is supervised")
	}
}

// TestGreedyStopsAtEOS ensures trainer-side greedy matches inference
// conventions (EOS stop, specials banned).
func TestGreedyConventions(t *testing.T) {
	tr, err := NewTrainable(tinyConfig(), 15)
	if err != nil {
		t.Fatal(err)
	}
	out := tr.Greedy([]int{1, 5}, 6)
	for _, tok := range out {
		if tok == token.PAD || tok == token.BOS || tok == token.UNK || tok == token.EOS {
			t.Fatalf("greedy emitted special token %d", tok)
		}
	}
	if len(out) > 6 {
		t.Fatal("greedy exceeded maxNew")
	}
}
