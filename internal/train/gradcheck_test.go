package train

import (
	"math"
	"testing"

	"repro/internal/model"
)

// tinyConfig returns a minimal architecture for gradient checking.
func tinyConfig() model.Config {
	return model.Config{
		Name: "gradcheck", Vocab: 11, DModel: 8, NHeads: 2, NBlocks: 2,
		FFHidden: 12, MaxSeq: 8, Eps: 1e-5, RopeTheta: 10000,
	}
}

// lossOnly evaluates the loss without touching gradients.
func lossOnly(tr *Trainable, tokens []int, mask []bool) float64 {
	sc := tr.forwardSeq(tokens[:len(tokens)-1])
	var loss float64
	count := 0
	for t := 0; t < sc.T; t++ {
		if !mask[t] {
			continue
		}
		count++
		row := sc.logits.Row(t)
		maxv := float64(math.Inf(-1))
		for _, v := range row {
			if float64(v) > maxv {
				maxv = float64(v)
			}
		}
		var sum float64
		for _, v := range row {
			sum += math.Exp(float64(v) - maxv)
		}
		loss -= float64(row[tokens[t+1]]) - maxv - math.Log(sum)
	}
	return loss / float64(count)
}

// TestGradCheck verifies the analytic gradients of every parameter class
// against central finite differences on a small model.
func TestGradCheck(t *testing.T) {
	tr, err := NewTrainable(tinyConfig(), 7)
	if err != nil {
		t.Fatal(err)
	}
	tokens := []int{1, 5, 6, 7, 8, 9, 10, 2}
	mask := make([]bool, len(tokens)-1)
	for i := 2; i < len(mask); i++ {
		mask[i] = true
	}

	tr.ZeroGrad()
	tr.LossAndGrad(tokens, mask)

	const eps = 1e-3
	checked := 0
	for pi, p := range tr.params() {
		// Probe a handful of elements per parameter.
		probes := []int{0, len(p.W.Data) / 2, len(p.W.Data) - 1}
		for _, idx := range probes {
			orig := p.W.Data[idx]
			p.W.Data[idx] = orig + eps
			lp := lossOnly(tr, tokens, mask)
			p.W.Data[idx] = orig - eps
			lm := lossOnly(tr, tokens, mask)
			p.W.Data[idx] = orig

			want := (lp - lm) / (2 * eps)
			got := float64(p.G.Data[idx])
			tol := 2e-2*math.Max(math.Abs(want), math.Abs(got)) + 2e-4
			if math.Abs(want-got) > tol {
				t.Errorf("param %d elem %d: analytic %.6g vs numeric %.6g", pi, idx, got, want)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no gradients checked")
	}
}

// TestTrainingReducesLoss ensures a short optimization run actually
// learns (loss decreases substantially on a fixed batch).
func TestTrainingReducesLoss(t *testing.T) {
	tr, err := NewTrainable(tinyConfig(), 9)
	if err != nil {
		t.Fatal(err)
	}
	tokens := []int{1, 5, 6, 7, 8, 9, 10, 2}
	mask := make([]bool, len(tokens)-1)
	for i := range mask {
		mask[i] = true
	}
	opt := DefaultOpt()
	opt.Warmup = 0
	first := lossOnly(tr, tokens, mask)
	for i := 0; i < 60; i++ {
		tr.ZeroGrad()
		tr.LossAndGrad(tokens, mask)
		tr.Step(opt)
	}
	last := lossOnly(tr, tokens, mask)
	if last > first*0.5 {
		t.Fatalf("loss did not drop: %.4f -> %.4f", first, last)
	}
}
