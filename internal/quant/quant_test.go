package quant

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/model"
	"repro/internal/numerics"
	"repro/internal/prng"
	"repro/internal/tensor"
)

func randWeights(seed uint64, r, c int, sigma float64) *tensor.Tensor {
	src := prng.New(seed)
	t := tensor.New(r, c)
	for i := range t.Data {
		t.Data[i] = float32(src.NormFloat64() * sigma)
	}
	return t
}

func TestQuantizeRoundtripError(t *testing.T) {
	// Property: dequantized values differ from the originals by at most
	// half the group scale (round-to-nearest bound).
	f := func(seed uint64, bits8 bool) bool {
		bits := 4
		if bits8 {
			bits = 8
		}
		w := randWeights(seed, 64, 16, 0.1)
		q, err := Quantize(w, bits)
		if err != nil {
			return false
		}
		for r := 0; r < w.Rows; r++ {
			for c := 0; c < w.Cols; c++ {
				g := r / GroupSize
				scale := float64(q.scales[g*q.out+c])
				if math.Abs(q.Get(r, c)-float64(w.At(r, c))) > scale/2+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestQuantizedForwardApproximatesDense(t *testing.T) {
	w := randWeights(5, 48, 24, 0.1)
	q8, err := Quantize(w, 8)
	if err != nil {
		t.Fatal(err)
	}
	src := prng.New(6)
	x := make([]float32, 48)
	for i := range x {
		x[i] = float32(src.NormFloat64())
	}
	dense := make([]float32, 24)
	tensor.MatVec(dense, x, w)
	quant := make([]float32, 24)
	q8.Forward(quant, x)
	for i := range dense {
		if math.Abs(float64(dense[i]-quant[i])) > 0.05 {
			t.Fatalf("INT8 forward[%d] = %g vs dense %g", i, quant[i], dense[i])
		}
	}
}

func TestInt4RangePreservedUnderFlips(t *testing.T) {
	w := randWeights(7, 32, 8, 0.1)
	q4, err := Quantize(w, 4)
	if err != nil {
		t.Fatal(err)
	}
	f := func(rRaw, cRaw, b1Raw, b2Raw uint8) bool {
		r, c := int(rRaw)%32, int(cRaw)%8
		b1, b2 := int(b1Raw)%4, int(b2Raw)%4
		bits := []int{b1}
		if b2 != b1 {
			bits = append(bits, b2)
		}
		restore := q4.FlipBits(r, c, bits)
		code := q4.codes[r*q4.out+c]
		restore()
		return code >= -8 && code <= 7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestFlipBitsRestore(t *testing.T) {
	w := randWeights(8, 32, 8, 0.1)
	q, err := Quantize(w, 8)
	if err != nil {
		t.Fatal(err)
	}
	before := append([]int8(nil), q.codes...)
	restore := q.FlipBits(3, 2, []int{0, 7})
	restore()
	for i := range before {
		if q.codes[i] != before[i] {
			t.Fatal("FlipBits restore incomplete")
		}
	}
}

func TestMaxPerturbationBound(t *testing.T) {
	// Observation #8's mechanism: no single-element fault can move a
	// quantized weight further than MaxPerturbation, which is tiny
	// compared to a BF16 exponent flip.
	w := randWeights(9, 64, 8, 0.1)
	for _, bits := range []int{4, 8} {
		q, err := Quantize(w, bits)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 200; trial++ {
			src := prng.New(uint64(trial))
			r, c := src.Intn(64), src.Intn(8)
			var flip []int
			for len(flip) < 2 {
				b := src.Intn(bits)
				if len(flip) == 0 || flip[0] != b {
					flip = append(flip, b)
				}
			}
			before := q.Get(r, c)
			restore := q.FlipBits(r, c, flip)
			after := q.Get(r, c)
			restore()
			if math.Abs(after-before) > q.MaxPerturbation(r, c) {
				t.Fatalf("perturbation %g exceeds bound %g", math.Abs(after-before), q.MaxPerturbation(r, c))
			}
			if math.Abs(after) > 1 {
				t.Fatalf("quantized weight reached %g — should be bounded by scale", after)
			}
		}
	}
}

func TestQuantizeModelEndToEnd(t *testing.T) {
	cfg := model.Config{
		Name: "q", Vocab: 32, DModel: 16, NHeads: 2, NBlocks: 2,
		FFHidden: 24, MaxSeq: 16, Eps: 1e-5, DType: numerics.FP32,
		RopeTheta: 10000,
	}
	m := model.MustBuild(model.Spec{Config: cfg, Family: model.QwenS, Seed: 4})
	qm, err := QuantizeModel(m, 8)
	if err != nil {
		t.Fatal(err)
	}
	a := m.NewState().Prefill([]int{1, 5, 6, 7})
	b := qm.NewState().Prefill([]int{1, 5, 6, 7})
	// INT8 outputs track the dense model closely in argmax terms.
	if tensor.Argmax(a) != tensor.Argmax(b) {
		t.Log("argmax differs between dense and INT8 (acceptable but unusual at this scale)")
	}
	var maxDiff float64
	for i := range a {
		d := math.Abs(float64(a[i] - b[i]))
		if d > maxDiff {
			maxDiff = d
		}
	}
	if maxDiff > 0.5 {
		t.Fatalf("INT8 model deviates too much: max logit diff %g", maxDiff)
	}
	// Quantized layers are enumerable and injectable.
	layers := qm.LinearLayers()
	if len(layers) != 14 {
		t.Fatalf("quantized model layers = %d", len(layers))
	}
	if layers[0].Weight.StorageBits() != 8 {
		t.Fatalf("storage bits = %d, want 8", layers[0].Weight.StorageBits())
	}
}

func TestQuantizeRejectsBadBits(t *testing.T) {
	if _, err := Quantize(tensor.New(4, 4), 3); err == nil {
		t.Fatal("expected error for 3-bit quantization")
	}
}

func TestCloneWeightIndependent(t *testing.T) {
	w := randWeights(1, 32, 4, 0.1)
	q, _ := Quantize(w, 8)
	c := q.CloneWeight().(*Weight)
	c.FlipBits(0, 0, []int{7})
	if q.codes[0] == c.codes[0] {
		t.Fatal("clone shares code storage")
	}
}
