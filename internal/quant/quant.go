// Package quant implements group-wise integer weight quantization in the
// style of GPTQ/round-to-nearest: weights are stored as signed INT4 or
// INT8 codes with one float32 scale per contiguous group of a column.
//
// The resilience mechanism of Observation #8 lives here: a memory fault
// flips bits of the stored integer code, so the post-fault weight can move
// by at most scale·(2^(bits-1)) — a modest, distribution-bounded change —
// whereas a BF16 exponent flip can reach ±3.4e38. Quantized models are
// therefore nearly immune to the distorted-output failure mode.
package quant

import (
	"fmt"
	"math"

	"repro/internal/model"
	"repro/internal/tensor"
)

// GroupSize is the number of consecutive weights (along the input
// dimension) sharing one scale, matching common GPTQ configurations.
const GroupSize = 32

// Weight is a quantized linear layer implementing model.Weight. Codes are
// stored one int8 per element even for INT4 (the low nibble is used);
// addressing is unaffected and the INT4 value range is enforced on
// encode and after bit flips.
type Weight struct {
	in, out int
	bits    int // 4 or 8
	// codes[r*out+c] holds the signed code of element (r, c).
	codes []int8
	// scales[g*out+c] holds the scale for group g of column c, where
	// g = r / GroupSize.
	scales []float32
	groups int
}

var _ model.Weight = (*Weight)(nil)

// Quantize converts a dense float tensor (in x out) to a quantized weight
// with the given bit width (4 or 8). Scales are chosen per (group,
// column) as max|w| / qmax — symmetric round-to-nearest quantization.
func Quantize(t *tensor.Tensor, bits int) (*Weight, error) {
	if bits != 4 && bits != 8 {
		return nil, fmt.Errorf("quant: unsupported bit width %d", bits)
	}
	in, out := t.Rows, t.Cols
	groups := (in + GroupSize - 1) / GroupSize
	w := &Weight{
		in: in, out: out, bits: bits,
		codes:  make([]int8, in*out),
		scales: make([]float32, groups*out),
		groups: groups,
	}
	qmax := float64(int(1)<<(bits-1) - 1) // 7 for INT4, 127 for INT8

	for g := 0; g < groups; g++ {
		r0, r1 := g*GroupSize, (g+1)*GroupSize
		if r1 > in {
			r1 = in
		}
		for c := 0; c < out; c++ {
			var maxAbs float64
			for r := r0; r < r1; r++ {
				a := math.Abs(float64(t.At(r, c)))
				if a > maxAbs {
					maxAbs = a
				}
			}
			scale := maxAbs / qmax
			if scale == 0 {
				scale = 1e-8
			}
			w.scales[g*out+c] = float32(scale)
			for r := r0; r < r1; r++ {
				q := math.Round(float64(t.At(r, c)) / scale)
				if q > qmax {
					q = qmax
				}
				if q < -qmax-1 {
					q = -qmax - 1
				}
				w.codes[r*out+c] = int8(q)
			}
		}
	}
	return w, nil
}

// QuantizeModel returns a copy of m with every linear layer (including
// the LM head) replaced by a bits-wide quantized version. Norm gains and
// embeddings stay in floating point, as GPTQ leaves them.
func QuantizeModel(m *model.Model, bits int) (*model.Model, error) {
	qm := &model.Model{
		Cfg:       m.Cfg,
		Embed:     m.Embed.Clone(),
		FinalNorm: append([]float32(nil), m.FinalNorm...),
	}
	qm.Cfg.Name = fmt.Sprintf("%s-int%d", m.Cfg.Name, bits)
	var err error
	if qm.LMHead, err = quantizeWeight(m.LMHead, bits); err != nil {
		return nil, err
	}
	for _, blk := range m.Blocks {
		nb := &model.Block{
			AttnNorm: append([]float32(nil), blk.AttnNorm...),
			MLPNorm:  append([]float32(nil), blk.MLPNorm...),
		}
		if nb.Wq, err = quantizeWeight(blk.Wq, bits); err != nil {
			return nil, err
		}
		if nb.Wk, err = quantizeWeight(blk.Wk, bits); err != nil {
			return nil, err
		}
		if nb.Wv, err = quantizeWeight(blk.Wv, bits); err != nil {
			return nil, err
		}
		if nb.Wo, err = quantizeWeight(blk.Wo, bits); err != nil {
			return nil, err
		}
		if blk.MLP != nil {
			if nb.MLP, err = quantizeMLP(blk.MLP, bits); err != nil {
				return nil, err
			}
		}
		if blk.Router != nil {
			if nb.Router, err = quantizeWeight(blk.Router, bits); err != nil {
				return nil, err
			}
			for _, ex := range blk.Experts {
				qe, err := quantizeMLP(ex, bits)
				if err != nil {
					return nil, err
				}
				nb.Experts = append(nb.Experts, qe)
			}
		}
		qm.Blocks = append(qm.Blocks, nb)
	}
	qm.InitRope()
	return qm, nil
}

func quantizeWeight(w model.Weight, bits int) (*Weight, error) {
	d, ok := w.(*model.Dense)
	if !ok {
		return nil, fmt.Errorf("quant: can only quantize dense weights, got %T", w)
	}
	return Quantize(d.T, bits)
}

func quantizeMLP(m *model.MLPWeights, bits int) (*model.MLPWeights, error) {
	g, err := quantizeWeight(m.WGate, bits)
	if err != nil {
		return nil, err
	}
	u, err := quantizeWeight(m.WUp, bits)
	if err != nil {
		return nil, err
	}
	dn, err := quantizeWeight(m.WDown, bits)
	if err != nil {
		return nil, err
	}
	return &model.MLPWeights{WGate: g, WUp: u, WDown: dn}, nil
}

// In returns the input dimension.
func (w *Weight) In() int { return w.in }

// Out returns the output dimension.
func (w *Weight) Out() int { return w.out }

// Bits returns the code width (4 or 8).
func (w *Weight) Bits() int { return w.bits }

// StorageBits returns the number of fault-addressable bits per element:
// the code width (scales are assumed ECC-protected metadata, the common
// deployment assumption; the paper flips weight storage).
func (w *Weight) StorageBits() int { return w.bits }

// Get returns the dequantized value at (r, c).
func (w *Weight) Get(r, c int) float64 {
	g := r / GroupSize
	return float64(w.codes[r*w.out+c]) * float64(w.scales[g*w.out+c])
}

// Forward computes out = x · Wdeq, dequantizing on the fly per group.
func (w *Weight) Forward(out, x []float32) {
	if len(x) != w.in || len(out) != w.out {
		panic("quant: Forward shape mismatch")
	}
	for i := range out {
		out[i] = 0
	}
	n := w.out
	for r, xv := range x {
		if xv == 0 {
			continue
		}
		g := r / GroupSize
		crow := w.codes[r*n : (r+1)*n]
		srow := w.scales[g*n : (g+1)*n]
		for c, code := range crow {
			out[c] += xv * float32(code) * srow[c]
		}
	}
}

// FlipBits flips the given bit positions (0 = LSB) of the code at (r, c),
// wrapping within the code's bit width using two's complement, and
// returns a restorer. This models a memory fault striking the quantized
// weight storage.
func (w *Weight) FlipBits(r, c int, bitsPos []int) func() {
	idx := r*w.out + c
	old := w.codes[idx]
	u := uint8(old)
	for _, b := range bitsPos {
		if b < 0 || b >= w.bits {
			panic(fmt.Sprintf("quant: bit %d out of range for int%d", b, w.bits))
		}
		u ^= 1 << uint(b)
	}
	if w.bits == 4 {
		// Sign-extend the low nibble so the code remains a valid INT4.
		u &= 0x0F
		if u&0x08 != 0 {
			u |= 0xF0
		}
	}
	w.codes[idx] = int8(u)
	return func() { w.codes[idx] = old }
}

// CloneWeight returns a deep copy.
func (w *Weight) CloneWeight() model.Weight {
	nw := &Weight{
		in: w.in, out: w.out, bits: w.bits, groups: w.groups,
		codes:  append([]int8(nil), w.codes...),
		scales: append([]float32(nil), w.scales...),
	}
	return nw
}

// MaxPerturbation returns the largest possible |Δweight| a single-element
// fault can cause at (r, c): the full code range times the group scale.
// It quantifies Observation #8's bound.
func (w *Weight) MaxPerturbation(r, c int) float64 {
	g := r / GroupSize
	return float64(w.scales[g*w.out+c]) * float64(int(1)<<uint(w.bits))
}
