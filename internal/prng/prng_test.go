package prng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
	c := New(43)
	same := 0
	a = New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds collide on %d/100 outputs", same)
	}
}

func TestSplitOrderIndependence(t *testing.T) {
	// A child stream must not depend on how much the parent has emitted.
	p1 := New(7)
	c1 := p1.Split(5).Uint64()
	p2 := New(7)
	for i := 0; i < 50; i++ {
		p2.Uint64()
	}
	c2 := p2.Split(5).Uint64()
	if c1 != c2 {
		t.Fatal("Split depends on parent consumption")
	}
}

func TestSplitChildrenIndependent(t *testing.T) {
	p := New(9)
	seen := map[uint64]bool{}
	for i := uint64(0); i < 200; i++ {
		v := p.Split(i).Uint64()
		if seen[v] {
			t.Fatalf("children collide at index %d", i)
		}
		seen[v] = true
	}
}

func TestIntnBounds(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		src := New(seed)
		for i := 0; i < 20; i++ {
			v := src.Intn(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	src := New(123)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[src.Intn(n)]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want)/want > 0.05 {
			t.Errorf("bucket %d: %d (want ~%.0f)", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	src := New(5)
	for i := 0; i < 10000; i++ {
		v := src.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %g", v)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	src := New(77)
	const n = 200000
	var sum, ss float64
	for i := 0; i < n; i++ {
		v := src.NormFloat64()
		sum += v
		ss += v * v
	}
	mean := sum / n
	variance := ss/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("normal mean %.4f, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("normal variance %.4f, want ~1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%50) + 1
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestShuffle(t *testing.T) {
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	src := New(3)
	src.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	sum := 0
	for _, v := range xs {
		sum += v
	}
	if sum != 28 {
		t.Fatal("shuffle lost elements")
	}
}

func BenchmarkUint64(b *testing.B) {
	src := New(1)
	for i := 0; i < b.N; i++ {
		_ = src.Uint64()
	}
}

func BenchmarkSplit(b *testing.B) {
	src := New(1)
	for i := 0; i < b.N; i++ {
		_ = src.Split(uint64(i))
	}
}
