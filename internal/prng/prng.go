// Package prng provides a deterministic, splittable pseudo-random number
// generator used throughout the fault-injection campaigns.
//
// Reproducibility is a hard requirement of the methodology (§3.3.4 of the
// paper fixes seeds so fault-free and fault-injected runs visit the same
// injection sites). math/rand is avoided so that streams can be split
// hierarchically: a campaign seed deterministically derives an independent
// stream per trial, which in turn derives per-decision values. Splitting
// keeps trials independent of evaluation order, so campaigns may be
// executed by any number of workers and still produce identical results.
package prng

import (
	"math"
	"math/bits"
)

// splitmix64 advances the state and returns the next output of the
// SplitMix64 generator (Steele, Lea & Flood, OOPSLA 2014). It is used both
// as a stream seeder and as the mixing function for Split.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Source is a xoshiro256** generator. The zero value is not useful; create
// instances with New or by splitting an existing Source.
type Source struct {
	s [4]uint64
	// id is the immutable seed fingerprint; Split derives children from
	// it so splitting is independent of how many values the parent has
	// emitted.
	id uint64
}

// New returns a Source seeded deterministically from seed. Distinct seeds
// yield (with overwhelming probability) non-overlapping streams.
func New(seed uint64) *Source {
	var src Source
	sm := seed
	src.id = splitmix64(&sm)
	sm = seed
	for i := range src.s {
		src.s[i] = splitmix64(&sm)
	}
	// xoshiro256** must not be seeded with the all-zero state.
	if src.s[0]|src.s[1]|src.s[2]|src.s[3] == 0 {
		src.s[0] = 0x9e3779b97f4a7c15
	}
	return &src
}

// Uint64 returns the next 64 random bits.
func (src *Source) Uint64() uint64 {
	s := &src.s
	result := bits.RotateLeft64(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = bits.RotateLeft64(s[3], 45)
	return result
}

// Split derives an independent child Source identified by index. Splitting
// does not advance the parent, and the same (parent seed, index) pair
// always yields the same child regardless of how many values the parent
// has produced — campaign trials stay order-independent under any worker
// schedule.
func (src *Source) Split(index uint64) *Source {
	// Mix the immutable seed fingerprint with the index through SplitMix64
	// twice to decorrelate nearby indices.
	h := src.id ^ index*0xd1342543de82ef95
	_ = splitmix64(&h)
	return New(splitmix64(&h))
}

// Intn returns a uniformly distributed integer in [0, n). It panics if
// n <= 0, mirroring math/rand.
func (src *Source) Intn(n int) int {
	if n <= 0 {
		panic("prng: Intn called with n <= 0")
	}
	// Lemire's nearly-divisionless bounded sampling.
	v := src.Uint64()
	hi, lo := bits.Mul64(v, uint64(n))
	if lo < uint64(n) {
		thresh := uint64(-n) % uint64(n)
		for lo < thresh {
			v = src.Uint64()
			hi, lo = bits.Mul64(v, uint64(n))
		}
	}
	return int(hi)
}

// Float64 returns a uniformly distributed value in [0, 1).
func (src *Source) Float64() float64 {
	return float64(src.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal variate (mean 0, stddev 1) using
// the Marsaglia polar method.
func (src *Source) NormFloat64() float64 {
	for {
		u := 2*src.Float64() - 1
		v := 2*src.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Perm returns a random permutation of [0, n) (Fisher-Yates).
func (src *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := src.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (src *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := src.Intn(i + 1)
		swap(i, j)
	}
}
