package mitigate

import "testing"

func TestPolicyStringParseRoundTrip(t *testing.T) {
	for _, p := range []Policy{PolicyDetect, PolicyCorrect, PolicyCorrectOrSkip} {
		got, err := ParsePolicy(p.String())
		if err != nil {
			t.Fatalf("ParsePolicy(%q): %v", p.String(), err)
		}
		if got != p {
			t.Fatalf("round trip %v -> %q -> %v", p, p.String(), got)
		}
	}
	if _, err := ParsePolicy("retry-forever"); err == nil {
		t.Fatal("ParsePolicy accepted an unknown policy")
	}
}

func TestActionString(t *testing.T) {
	for a, want := range map[Action]string{
		ActionDetect:  "detect",
		ActionCorrect: "correct",
		ActionSkip:    "skip",
	} {
		if got := a.String(); got != want {
			t.Fatalf("Action(%d).String() = %q, want %q", a, got, want)
		}
	}
}

// respondCase drives Respond with a recompute that writes `clean` and a
// verify that reports `verifies`.
func respondCase(t *testing.T, p Policy, verifies bool) (Action, []float32) {
	t.Helper()
	out := []float32{9, 9, 9}
	scratch := make([]float32, len(out))
	clean := []float32{1, 2, 3}
	recomputed := false
	act := Respond(p, out, scratch,
		func(dst []float32) { recomputed = true; copy(dst, clean) },
		func(cand []float32) bool { return verifies })
	if p == PolicyDetect && recomputed {
		t.Fatal("detect-only policy recomputed")
	}
	if p != PolicyDetect && !recomputed {
		t.Fatal("correcting policy never recomputed")
	}
	return act, out
}

func TestRespondDetectOnly(t *testing.T) {
	act, out := respondCase(t, PolicyDetect, true)
	if act != ActionDetect {
		t.Fatalf("action = %v, want detect", act)
	}
	for _, v := range out {
		if v != 9 {
			t.Fatal("detect-only policy mutated the output")
		}
	}
}

func TestRespondCorrectSucceeds(t *testing.T) {
	for _, p := range []Policy{PolicyCorrect, PolicyCorrectOrSkip} {
		act, out := respondCase(t, p, true)
		if act != ActionCorrect {
			t.Fatalf("policy %v: action = %v, want correct", p, act)
		}
		for i, want := range []float32{1, 2, 3} {
			if out[i] != want {
				t.Fatalf("policy %v: out[%d] = %g, want recomputed %g", p, i, out[i], want)
			}
		}
	}
}

func TestRespondCorrectFailsWithoutSkip(t *testing.T) {
	act, out := respondCase(t, PolicyCorrect, false)
	if act != ActionDetect {
		t.Fatalf("action = %v, want detect (unverified recompute must not land)", act)
	}
	for _, v := range out {
		if v != 9 {
			t.Fatal("unverified recompute overwrote the output")
		}
	}
}

func TestRespondSkipZeroes(t *testing.T) {
	act, out := respondCase(t, PolicyCorrectOrSkip, false)
	if act != ActionSkip {
		t.Fatalf("action = %v, want skip", act)
	}
	for _, v := range out {
		if v != 0 {
			t.Fatal("skip left nonzero output")
		}
	}
}
