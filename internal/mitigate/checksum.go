package mitigate

import (
	"math"

	"repro/internal/model"
)

// WeightChecksums holds per-column checksums of every linear layer's
// weights — the ABFT invariant that x·W's checksum column must equal the
// sum of per-column products. Verifying the stored sums against a fresh
// pass over the weights detects resident memory faults before (or
// between) inferences, the ALBERTA-style detection the paper's related
// work discusses. Detection granularity is one column sum per layer,
// chosen because a single flipped weight perturbs exactly one column sum
// (Figure 5's propagation unit).
type WeightChecksums struct {
	sums map[model.LayerRef][]float64
	// Tolerance is the relative deviation above which a column is
	// reported faulty. Weights are static, so recomputation is exact up
	// to float summation order; a small epsilon absorbs that.
	Tolerance float64
}

// NewWeightChecksums computes checksums over every linear layer of m
// (including the LM head).
func NewWeightChecksums(m *model.Model) *WeightChecksums {
	wc := &WeightChecksums{sums: map[model.LayerRef][]float64{}, Tolerance: 1e-6}
	for _, li := range m.LinearLayers() {
		wc.sums[li.Ref] = columnSums(li.Weight)
	}
	wc.sums[model.LayerRef{Block: -1, Kind: model.KindLMHead, Expert: -1}] = columnSums(m.LMHead)
	return wc
}

func columnSums(w model.Weight) []float64 {
	sums := make([]float64, w.Out())
	for r := 0; r < w.In(); r++ {
		for c := 0; c < w.Out(); c++ {
			sums[c] += w.Get(r, c)
		}
	}
	return sums
}

// Violation reports one detected checksum mismatch.
type Violation struct {
	Layer  model.LayerRef
	Column int
	// Stored and Observed are the checksum values.
	Stored, Observed float64
}

// Verify recomputes every layer's column sums on m and returns the
// violations. A fault-free model returns nil; a model carrying a flipped
// weight returns the faulted layer and column.
func (wc *WeightChecksums) Verify(m *model.Model) []Violation {
	var out []Violation
	check := func(ref model.LayerRef, w model.Weight) {
		stored, ok := wc.sums[ref]
		if !ok {
			return
		}
		observed := columnSums(w)
		for c := range stored {
			diff := math.Abs(observed[c] - stored[c])
			scale := math.Abs(stored[c])
			if scale < 1 {
				scale = 1
			}
			if diff > wc.Tolerance*scale || math.IsNaN(diff) {
				out = append(out, Violation{Layer: ref, Column: c, Stored: stored[c], Observed: observed[c]})
			}
		}
	}
	for _, li := range m.LinearLayers() {
		check(li.Ref, li.Weight)
	}
	check(model.LayerRef{Block: -1, Kind: model.KindLMHead, Expert: -1}, m.LMHead)
	return out
}

// Detects reports whether a specific (layer, column) weight fault would
// be caught: true iff Verify flags that exact column.
func (wc *WeightChecksums) Detects(m *model.Model, ref model.LayerRef, col int) bool {
	for _, v := range wc.Verify(m) {
		if v.Layer == ref && v.Column == col {
			return true
		}
	}
	return false
}
