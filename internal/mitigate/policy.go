package mitigate

import "fmt"

// Policy selects the online ABFT response escalation applied when a
// checksum check flags a linear-layer output (internal/abft). The levels
// form a strict ladder: each adds one recovery step on top of the last.
type Policy int

const (
	// PolicyDetect records the violation and leaves the output untouched —
	// the measurement mode: recall and false-positive rates are observable
	// without perturbing outcome classification.
	PolicyDetect Policy = iota
	// PolicyCorrect recomputes the flagged output from its input. A
	// transient computational fault is gone on recomputation (the upset
	// struck one GEMM execution), so the fresh pass verifies clean and
	// replaces the corrupted row bit-exactly. If the recomputation still
	// fails — persistent corruption, e.g. a resident weight fault — the
	// corrupted output is left in place.
	PolicyCorrect
	// PolicyCorrectOrSkip recomputes like PolicyCorrect and, when the
	// recomputation also fails, zeroes the output row: the transformer's
	// residual stream then carries the activation past the broken layer
	// unchanged (layer skipping), trading one layer's contribution for
	// containment of an arbitrarily large corruption.
	PolicyCorrectOrSkip
)

// String renders the policy as its flag spelling.
func (p Policy) String() string {
	switch p {
	case PolicyDetect:
		return "detect"
	case PolicyCorrect:
		return "correct"
	case PolicyCorrectOrSkip:
		return "correct-skip"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// ParsePolicy converts a flag spelling to a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "detect":
		return PolicyDetect, nil
	case "correct":
		return PolicyCorrect, nil
	case "correct-skip":
		return PolicyCorrectOrSkip, nil
	default:
		return 0, fmt.Errorf("mitigate: unknown policy %q (want detect, correct, or correct-skip)", s)
	}
}

// Action is the response actually taken to one flagged output.
type Action int

const (
	// ActionDetect: flagged, output left untouched (detect-only policy, or
	// a correcting policy whose recomputation did not verify).
	ActionDetect Action = iota
	// ActionCorrect: recomputation verified clean and replaced the output.
	ActionCorrect
	// ActionSkip: recomputation still failed; the output was zeroed.
	ActionSkip
)

// String names the action.
func (a Action) String() string {
	switch a {
	case ActionDetect:
		return "detect"
	case ActionCorrect:
		return "correct"
	case ActionSkip:
		return "skip"
	default:
		return fmt.Sprintf("Action(%d)", int(a))
	}
}

// Respond executes the detect → recompute-correct → fallback-skip
// escalation on a flagged linear output and returns the action taken.
// recompute must run a fresh forward pass of the layer into its argument
// (len(out) elements, distinct from out); verify must report whether a
// candidate output passes the same check that flagged out. scratch is
// caller-owned recomputation space so per-check responses do not allocate.
func Respond(p Policy, out, scratch []float32, recompute func(dst []float32), verify func(cand []float32) bool) Action {
	if p == PolicyDetect {
		return ActionDetect
	}
	recompute(scratch)
	if verify(scratch) {
		copy(out, scratch)
		return ActionCorrect
	}
	if p == PolicyCorrectOrSkip {
		for i := range out {
			out[i] = 0
		}
		return ActionSkip
	}
	return ActionDetect
}
