package mitigate

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/faults"
	"repro/internal/gen"
	"repro/internal/model"
	"repro/internal/numerics"
	"repro/internal/prng"
	"repro/internal/tasks"
)

func testModel(t *testing.T) *model.Model {
	t.Helper()
	vocab := tasks.GeneralVocab()
	cfg := model.Config{
		Name: "mit", Vocab: vocab.Size(), DModel: 16, NHeads: 2, NBlocks: 2,
		FFHidden: 24, MaxSeq: 48, Eps: 1e-5, DType: numerics.BF16,
		RopeTheta: 10000,
	}
	return model.MustBuild(model.Spec{Config: cfg, Family: model.QwenS, Seed: 21})
}

func testSuite() *tasks.Suite {
	return tasks.NewSelfRefSuite("mit", 3, 6, 6, 8, nil)
}

func TestCalibrateCoversAllLayers(t *testing.T) {
	m := testModel(t)
	p := Calibrate(m, testSuite(), 0)
	// 2 blocks x 7 kinds + LM head = 15 distinct refs.
	if p.Layers() != 15 {
		t.Fatalf("profiled %d layers, want 15", p.Layers())
	}
	for _, li := range m.LinearLayers() {
		lo, hi, ok := p.Bounds(li.Ref)
		if !ok {
			t.Fatalf("layer %v not profiled", li.Ref)
		}
		if lo >= hi {
			t.Fatalf("layer %v bounds inverted: [%g, %g]", li.Ref, lo, hi)
		}
	}
}

func TestBoundsWidenedByMargin(t *testing.T) {
	p := NewProfile()
	ref := model.LayerRef{Block: 0, Kind: model.KindUp, Expert: -1}
	hook := p.observeHook()
	hook(ref, 0, []float32{-2, 4})
	lo, hi, ok := p.Bounds(ref)
	if !ok {
		t.Fatal("bounds missing")
	}
	if lo != -2.5 || hi != 5 {
		t.Fatalf("bounds [%g, %g], want [-2.5, 5] at margin 1.25", lo, hi)
	}
}

func TestMoEExpertsShareRange(t *testing.T) {
	p := NewProfile()
	hook := p.observeHook()
	hook(model.LayerRef{Block: 0, Kind: model.KindUp, Expert: 3}, 0, []float32{-1, 1})
	if _, _, ok := p.Bounds(model.LayerRef{Block: 0, Kind: model.KindUp, Expert: 5}); !ok {
		t.Fatal("expert ranges should be shared across expert indices")
	}
}

func TestRestrictorClampsFaultValues(t *testing.T) {
	m := testModel(t)
	suite := testSuite()
	p := Calibrate(m, suite, 0)
	r := NewRestrictor(p)

	prompt := suite.Instances[0].Prompt
	clean := gen.Generate(m, prompt, gen.Defaults(8))

	// Inject an exponent-MSB memory fault, then clamp.
	site := faults.Site{
		Fault: faults.Mem2Bit,
		Layer: model.LayerRef{Block: 0, Kind: model.KindUp, Expert: -1},
		Row:   3, Col: 5, Bits: []int{14, 2},
	}
	inj, err := faults.Arm(m, site, len(prompt))
	if err != nil {
		t.Fatal(err)
	}
	m.AddHook(r.Hook())
	protected := gen.Generate(m, prompt, gen.Defaults(8))
	m.ClearHooks()
	inj.Disarm()

	if r.Clamped() == 0 {
		t.Fatal("restrictor never clamped despite an MSB fault")
	}
	// With the huge value squashed, the output should match the fault-free
	// generation (range restriction's goal). Allow graceful degradation:
	// at minimum the output must not be empty.
	if len(protected.Tokens) == 0 {
		t.Fatal("protected generation is empty")
	}
	_ = clean
}

func TestRestrictorPassesCleanValues(t *testing.T) {
	m := testModel(t)
	suite := testSuite()
	p := Calibrate(m, suite, 0)
	r := NewRestrictor(p)
	prompt := suite.Instances[1].Prompt
	clean := gen.Generate(m, prompt, gen.Defaults(8))
	m.AddHook(r.Hook())
	protected := gen.Generate(m, prompt, gen.Defaults(8))
	m.ClearHooks()
	// Calibration covered this prompt, so nothing should clamp and the
	// output must be identical.
	if r.Clamped() != 0 {
		t.Fatalf("clamped %d values on a calibration input", r.Clamped())
	}
	if len(clean.Tokens) != len(protected.Tokens) {
		t.Fatal("restriction changed a fault-free generation")
	}
	for i := range clean.Tokens {
		if clean.Tokens[i] != protected.Tokens[i] {
			t.Fatal("restriction changed a fault-free generation")
		}
	}
}

func TestRestrictorHandlesNaN(t *testing.T) {
	p := NewProfile()
	ref := model.LayerRef{Block: 0, Kind: model.KindUp, Expert: -1}
	p.observeHook()(ref, 0, []float32{-1, 1})
	r := NewRestrictor(p)
	out := []float32{float32(math.NaN()), 0.5}
	r.Hook()(ref, 0, out)
	if math.IsNaN(float64(out[0])) {
		t.Fatal("NaN not scrubbed")
	}
	if out[1] != 0.5 {
		t.Fatal("in-range value modified")
	}
}

func TestChecksumsCleanModelVerifies(t *testing.T) {
	m := testModel(t)
	wc := NewWeightChecksums(m)
	if v := wc.Verify(m); len(v) != 0 {
		t.Fatalf("fault-free model reports %d violations", len(v))
	}
}

func TestChecksumsDetectAndLocalize(t *testing.T) {
	m := testModel(t)
	wc := NewWeightChecksums(m)
	sp, err := faults.NewSampler(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed uint64) bool {
		site := sp.Sample(prng.New(seed), faults.Mem2Bit, 1)
		// Skip flips below detection interest: only check MSB-involving
		// flips here (exhaustive coverage measured in experiment ext2).
		hasHigh := false
		for _, b := range site.Bits {
			if b >= 7 {
				hasHigh = true
			}
		}
		if !hasHigh {
			return true
		}
		inj, err := faults.Arm(m, site, 0)
		if err != nil {
			return false
		}
		ok := wc.Detects(m, site.Layer, site.Col)
		inj.Disarm()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestChecksumsRestoreLeavesClean(t *testing.T) {
	m := testModel(t)
	wc := NewWeightChecksums(m)
	sp, _ := faults.NewSampler(m, nil)
	src := prng.New(8)
	for i := 0; i < 20; i++ {
		site := sp.Sample(src, faults.Mem2Bit, 1)
		inj, err := faults.Arm(m, site, 0)
		if err != nil {
			t.Fatal(err)
		}
		inj.Disarm()
	}
	if v := wc.Verify(m); len(v) != 0 {
		t.Fatalf("model dirty after flip/restore cycles: %d violations", len(v))
	}
}
