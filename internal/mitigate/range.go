// Package mitigate implements the fault-tolerance mechanisms the paper's
// conclusion calls for ("future work could focus on developing inference
// algorithms for LLMs that reduce fault propagation (i.e., fault
// isolation)"), built from the literature it cites:
//
//   - Range restriction (Chen et al., DSN'21 — the paper's [12]): profile
//     each linear layer's fault-free activation range, then clamp outputs
//     to the profiled bounds during inference. A bit flip that drives an
//     activation to ±1e38 is squashed back before it can propagate — the
//     cheap, software-only defense against exactly the exponent-MSB
//     faults Figures 9–10 identify as the dominant SDC source.
//
//   - Algorithm-based fault tolerance (ALBERTA-style, the paper's [46]):
//     per-column weight checksums verified against the computation,
//     detecting resident memory faults so the serving system can reload
//     the weights (detection, not correction).
package mitigate

import (
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/gen"
	"repro/internal/model"
	"repro/internal/tasks"
)

// Range holds the profiled output bounds of one linear layer.
type Range struct {
	Lo, Hi float32
}

// Profile maps each linear layer to its fault-free output range.
type Profile struct {
	mu     sync.Mutex
	ranges map[model.LayerRef]*Range
	// Margin widens the profiled bounds multiplicatively (1.0 = exact
	// profiled extremes). The paper's cited range-restriction work uses a
	// safety margin so rare-but-legal activations are not clipped.
	Margin float32
}

// NewProfile returns an empty profile with the default 1.25x margin.
func NewProfile() *Profile {
	return &Profile{ranges: map[model.LayerRef]*Range{}, Margin: 1.25}
}

// observeHook returns a forward hook that widens the profile to cover
// every observed activation.
func (p *Profile) observeHook() model.Hook {
	return func(ref model.LayerRef, pos int, out []float32) {
		ref.Expert = canonExpert(ref)
		p.mu.Lock()
		r := p.ranges[ref]
		if r == nil {
			r = &Range{Lo: float32(math.Inf(1)), Hi: float32(math.Inf(-1))}
			p.ranges[ref] = r
		}
		for _, v := range out {
			if v < r.Lo {
				r.Lo = v
			}
			if v > r.Hi {
				r.Hi = v
			}
		}
		p.mu.Unlock()
	}
}

// canonExpert collapses expert indices: all experts of a block share one
// profiled range (they are exchangeable by construction and a fault must
// not evade clamping by landing in a cold expert).
func canonExpert(ref model.LayerRef) int {
	if ref.Expert >= 0 {
		return 0
	}
	return ref.Expert
}

// Calibrate runs every instance of the suite through m fault-free —
// prompt processing AND greedy generation of up to MaxNew tokens, so the
// profile covers the activations of both phases — and records per-layer
// output ranges. maxInstances > 0 truncates the calibration set.
func Calibrate(m *model.Model, suite *tasks.Suite, maxInstances int) *Profile {
	p := NewProfile()
	m.AddHook(p.observeHook())
	defer m.ClearHooks()
	n := 0
	for i := range suite.Instances {
		if maxInstances > 0 && n >= maxInstances {
			break
		}
		inst := &suite.Instances[i]
		maxNew := inst.MaxNew
		if maxNew == 0 {
			maxNew = 8
		}
		gen.Generate(m, inst.Prompt, gen.Defaults(maxNew))
		n++
	}
	return p
}

// Bounds returns the margin-widened clamp bounds for a layer, or ok=false
// if the layer was never profiled.
func (p *Profile) Bounds(ref model.LayerRef) (lo, hi float32, ok bool) {
	ref.Expert = canonExpert(ref)
	p.mu.Lock()
	defer p.mu.Unlock()
	r := p.ranges[ref]
	if r == nil || r.Lo > r.Hi {
		return 0, 0, false
	}
	return widen(r.Lo, p.Margin, false), widen(r.Hi, p.Margin, true), true
}

// widen scales a bound away from zero by margin.
func widen(v, margin float32, upper bool) float32 {
	if v == 0 {
		if upper {
			return 1e-3
		}
		return -1e-3
	}
	if (v > 0) == upper {
		return v * margin
	}
	return v / margin
}

// Layers returns the number of profiled layers.
func (p *Profile) Layers() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.ranges)
}

// Restrictor clamps layer outputs to profiled ranges and counts how often
// it intervenes. Counters are atomic so one Restrictor may serve the
// concurrent workers of a campaign.
type Restrictor struct {
	Profile *Profile
	// clamped counts individual clamped values; activations counts layer
	// outputs in which at least one value was clamped.
	clamped     atomic.Int64
	activations atomic.Int64
}

// NewRestrictor wraps a profile.
func NewRestrictor(p *Profile) *Restrictor {
	return &Restrictor{Profile: p}
}

// Clamped returns the number of individual values clamped so far.
func (r *Restrictor) Clamped() int64 { return r.clamped.Load() }

// Activations returns the number of layer outputs with >= 1 clamp.
func (r *Restrictor) Activations() int64 { return r.activations.Load() }

// Hook returns the clamping forward hook. Register it AFTER any fault-
// injection hooks so the restriction sees the corrupted values — exactly
// the deployment ordering (the fault happens in hardware; the clamp is
// the next software step).
func (r *Restrictor) Hook() model.Hook {
	return func(ref model.LayerRef, pos int, out []float32) {
		lo, hi, ok := r.Profile.Bounds(ref)
		if !ok {
			return
		}
		hits := 0
		for i, v := range out {
			switch {
			case math.IsNaN(float64(v)):
				out[i] = 0
				hits++
			case v > hi:
				out[i] = hi
				hits++
			case v < lo:
				out[i] = lo
				hits++
			}
		}
		if hits > 0 {
			r.clamped.Add(int64(hits))
			r.activations.Add(1)
		}
	}
}
