package serve_test

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/report"
	"repro/internal/serve"
)

// postGenerate fires one wire request at the handler.
func postGenerate(h http.Handler, body string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodPost, report.APIVersion+"/generate", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func errCode(t *testing.T, w *httptest.ResponseRecorder) string {
	t.Helper()
	var env report.APIError
	if err := json.Unmarshal(w.Body.Bytes(), &env); err != nil {
		t.Fatalf("error envelope did not parse: %v (body %q)", err, w.Body.String())
	}
	return env.Error.Code
}

// TestHandlerGenerateOK drives a valid request through the full HTTP
// path and checks the response mirrors the engine's output.
func TestHandlerGenerateOK(t *testing.T) {
	m, vocab := testServeModel(t)
	e, stop := startEngine(t, serve.Config{Model: m, Vocab: vocab})
	defer stop()
	h := e.Handler()

	w := postGenerate(h, `{"id":"h1","prompt":"w05 w09 w17","max_tokens":8}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var resp struct {
		ID     string `json:"id"`
		Text   string `json:"text"`
		Tokens []int  `json:"tokens"`
		Steps  int    `json:"steps"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.ID != "h1" || len(resp.Tokens) == 0 {
		t.Fatalf("response %+v", resp)
	}
	if want := vocab.Decode(resp.Tokens); resp.Text != want {
		t.Fatalf("text %q, want %q", resp.Text, want)
	}
	// The same prompt through Submit must match byte-for-byte.
	direct := e.Submit(context.Background(), serve.Request{
		ID: "h1", Prompt: vocab.Encode("w05 w09 w17"), MaxNew: 8,
	})
	if direct.Err != nil || direct.Text != resp.Text {
		t.Fatalf("direct submit %q (%v) vs wire %q", direct.Text, direct.Err, resp.Text)
	}
}

// TestHandlerGenerateErrors pins the 4xx envelope for every request
// decoding failure the fuzz target protects.
func TestHandlerGenerateErrors(t *testing.T) {
	m, vocab := testServeModel(t)
	e, stop := startEngine(t, serve.Config{Model: m, Vocab: vocab, MaxNewCap: 16})
	defer stop()
	h := e.Handler()

	cases := []struct {
		name, body string
		status     int
		code       string
	}{
		{"malformed-json", `{"prompt": w"`, http.StatusBadRequest, "bad_json"},
		{"trailing-data", `{"prompt":"w05"}{"again":1}`, http.StatusBadRequest, "bad_json"},
		{"unknown-field", `{"prompt":"w05","temperature":2}`, http.StatusBadRequest, "bad_json"},
		{"empty-body", ``, http.StatusBadRequest, "bad_json"},
		{"empty-prompt", `{"prompt":"   "}`, http.StatusBadRequest, "empty_prompt"},
		{"long-id", `{"id":"` + strings.Repeat("x", 200) + `","prompt":"w05"}`, http.StatusBadRequest, "bad_id"},
		{"negative-max-tokens", `{"prompt":"w05","max_tokens":-3}`, http.StatusBadRequest, "bad_max_tokens"},
		{"absurd-max-tokens", `{"prompt":"w05","max_tokens":1000000000}`, http.StatusBadRequest, "bad_max_tokens"},
		{"prompt-too-long", `{"prompt":"` + strings.TrimSpace(strings.Repeat("w05 ", 45)) + `"}`, http.StatusBadRequest, "prompt_too_long"},
		{"zero-deadline", `{"prompt":"w05","deadline_ms":0}`, http.StatusBadRequest, "bad_deadline"},
		{"negative-deadline", `{"prompt":"w05","deadline_ms":-50}`, http.StatusBadRequest, "bad_deadline"},
		{"huge-deadline", `{"prompt":"w05","deadline_ms":9000000000000}`, http.StatusBadRequest, "bad_deadline"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			w := postGenerate(h, c.body)
			if w.Code != c.status {
				t.Fatalf("status %d, want %d (%s)", w.Code, c.status, w.Body.String())
			}
			if got := errCode(t, w); got != c.code {
				t.Fatalf("code %q, want %q", got, c.code)
			}
		})
	}

	t.Run("method-not-allowed", func(t *testing.T) {
		req := httptest.NewRequest(http.MethodGet, report.APIVersion+"/generate", nil)
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if w.Code != http.StatusMethodNotAllowed || errCode(t, w) != "method_not_allowed" {
			t.Fatalf("status %d code %q", w.Code, errCode(t, w))
		}
	})
	t.Run("body-too-large", func(t *testing.T) {
		big := `{"prompt":"` + strings.Repeat("a", 1<<20) + `"}`
		w := postGenerate(h, big)
		if w.Code != http.StatusRequestEntityTooLarge {
			t.Fatalf("status %d", w.Code)
		}
	})
}

// TestHandlerDraining pins the 503 envelope after shutdown.
func TestHandlerDraining(t *testing.T) {
	m, vocab := testServeModel(t)
	e, stop := startEngine(t, serve.Config{Model: m, Vocab: vocab})
	h := e.Handler()
	stop()
	w := postGenerate(h, `{"prompt":"w05"}`)
	if w.Code != http.StatusServiceUnavailable || errCode(t, w) != "draining" {
		t.Fatalf("status %d body %s", w.Code, w.Body.String())
	}
}

// TestHandlerDeadline pins the 504 mapping for expired deadlines.
func TestHandlerDeadline(t *testing.T) {
	m, vocab := testServeModel(t)
	e, stop := startEngine(t, serve.Config{Model: m, Vocab: vocab})
	defer stop()
	w := postGenerate(e.Handler(), `{"prompt":"w05 w09","deadline_ms":1}`)
	// 1ms may occasionally be enough on a fast machine; accept either the
	// timeout envelope or a completed response, but never anything else.
	switch w.Code {
	case http.StatusGatewayTimeout:
		if got := errCode(t, w); got != "deadline_exceeded" {
			t.Fatalf("code %q", got)
		}
	case http.StatusOK:
	default:
		t.Fatalf("status %d body %s", w.Code, w.Body.String())
	}
}

// TestHandlerObservability drives a request and checks /healthz and
// /metrics expose the serving families.
func TestHandlerObservability(t *testing.T) {
	m, vocab := testServeModel(t)
	e, stop := startEngine(t, serve.Config{Model: m, Vocab: vocab})
	defer stop()
	h := e.Handler()
	if w := postGenerate(h, `{"prompt":"w05 w09","max_tokens":6}`); w.Code != http.StatusOK {
		t.Fatalf("generate: %d", w.Code)
	}

	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if w.Code != http.StatusOK || !strings.Contains(w.Body.String(), `"status": "ok"`) {
		t.Fatalf("healthz %d: %s", w.Code, w.Body.String())
	}

	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("metrics: %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("metrics content type %q", ct)
	}
	for _, family := range []string{
		"llmfi_serve_in_flight",
		`llmfi_serve_requests_total{status="ok"} 1`,
		"llmfi_serve_request_latency_seconds_bucket",
		"llmfi_serve_slo_violations_total",
		"llmfi_serve_tokens_total",
	} {
		if !strings.Contains(w.Body.String(), family) {
			t.Fatalf("metrics missing %q:\n%s", family, w.Body.String())
		}
	}
}
