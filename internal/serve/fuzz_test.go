package serve_test

import (
	"fmt"
	"testing"

	"repro/internal/serve"
	"repro/internal/token"
)

// FuzzGenerateRequest throws arbitrary bytes at the serving request
// decoder: it must never panic, and every accepted request must satisfy
// the engine's admission invariants (max_tokens in range, prompt fits
// the context, deadline positive and bounded). Rejections must carry a
// 4xx status and a non-empty code — the clean error envelope the HTTP
// layer renders.
func FuzzGenerateRequest(f *testing.F) {
	words := make([]string, 28)
	for i := range words {
		words[i] = fmt.Sprintf("w%02d", i)
	}
	vocab := token.NewVocab(words)
	lim := serve.ParseLimits{MaxSeq: 48, DefaultMaxNew: 8, MaxNewCap: 32}

	seeds := []string{
		`{"id":"a","prompt":"w05 w09","max_tokens":8}`,
		`{"prompt":"w05","deadline_ms":250,"seed":42}`,
		`{"prompt": w"`,
		`{"prompt":"w05"}{"again":1}`,
		`{"prompt":"w05","temperature":2}`,
		`{"prompt":"","max_tokens":0}`,
		`{"prompt":"w05","max_tokens":-9000000000000000000}`,
		`{"prompt":"w05","max_tokens":9000000000000000000}`,
		`{"prompt":"w05","deadline_ms":0}`,
		`{"prompt":"w05","deadline_ms":-1}`,
		`{"prompt":"w05","deadline_ms":9000000000000}`,
		`{"id":"` + string(make([]byte, 200)) + `","prompt":"w05"}`,
		`[1,2,3]`,
		`null`,
		`"w05"`,
		``,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		req, rerr := serve.ParseGenerateRequest(data, vocab, lim)
		if rerr != nil {
			if rerr.Status < 400 || rerr.Status > 499 || rerr.Code == "" {
				t.Fatalf("rejection without a clean 4xx envelope: %+v", rerr)
			}
			return
		}
		if len(req.Prompt) == 0 {
			t.Fatalf("accepted request with empty prompt: %q", data)
		}
		if req.MaxNew <= 0 || req.MaxNew > lim.MaxNewCap {
			t.Fatalf("accepted max_tokens %d outside (0, %d]: %q", req.MaxNew, lim.MaxNewCap, data)
		}
		if len(req.Prompt)+req.MaxNew > lim.MaxSeq {
			t.Fatalf("accepted request exceeding context: %q", data)
		}
		if req.Deadline < 0 {
			t.Fatalf("accepted negative deadline: %q", data)
		}
	})
}
