package serve

// Status indexes re-exported for the external scenario tests
// (package serve_test imports loadgen, which imports serve, so those
// tests cannot live in-package).
const (
	StatusOKForTest       = statusOK
	StatusInvalidForTest  = statusInvalid
	StatusDeadlineForTest = statusDeadline
	StatusCanceledForTest = statusCanceled
	StatusDrainingForTest = statusDraining
)
