package serve_test

import (
	"context"
	"encoding/json"
	"os"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/mitigate"
	"repro/internal/serve"
	"repro/internal/serve/loadgen"
)

// TestEmitServeBenchJSON measures serving-under-faults end to end:
// 8 concurrent request streams over the batched engine, injection over
// all five surfaces, with ABFT off / site-scoped / all-layers — per-arm
// p50/p99 latency, SLO-violation rate (SLO = 2x the clean pass's p99),
// outcome tally, and detection counts — written to BENCH_6.json. Gated
// behind BENCH6_JSON_OUT so it only runs from `make bench`.
func TestEmitServeBenchJSON(t *testing.T) {
	out := os.Getenv("BENCH6_JSON_OUT")
	if out == "" {
		t.Skip("set BENCH6_JSON_OUT to emit the serving benchmark JSON")
	}

	m, vocab := testServeModel(t)
	prompts := testPrompts()
	const (
		streams  = 8
		requests = 96
		maxNew   = 12
	)
	baselines := baselinesFor(m, prompts, maxNew)

	type arm struct {
		P50MS        float64        `json:"p50_ms"`
		P99MS        float64        `json:"p99_ms"`
		SLOViolation float64        `json:"slo_violation_rate"`
		OK           int            `json:"ok"`
		Fired        int            `json:"fired"`
		Detected     int64          `json:"detected"`
		Outcomes     map[string]int `json:"outcomes,omitempty"`
	}

	run := func(inject *serve.InjectConfig, slo time.Duration) arm {
		e, err := serve.NewEngine(serve.Config{
			Model: m, Vocab: vocab, Width: streams, SLO: slo, Inject: inject,
		})
		if err != nil {
			t.Fatal(err)
		}
		runCtx, cancel := context.WithCancel(context.Background())
		runDone := make(chan error, 1)
		go func() { runDone <- e.Run(runCtx) }()
		st, err := loadgen.Run(context.Background(), e, loadgen.Config{
			Streams: streams, Requests: requests, Prompts: prompts,
			Baselines: baselines, MaxNew: maxNew, Seed: 6000, SLO: slo,
		})
		cancel()
		if err != nil {
			t.Fatal(err)
		}
		if err := <-runDone; err != nil {
			t.Fatal(err)
		}
		return arm{
			P50MS:        float64(st.P50) / float64(time.Millisecond),
			P99MS:        float64(st.P99) / float64(time.Millisecond),
			SLOViolation: float64(st.SLOViolations) / float64(requests),
			OK:           st.OK,
			Fired:        st.Fired,
			Detected:     e.Metrics().Snapshot().Detected,
			Outcomes:     st.Outcomes,
		}
	}

	inject := func(abft *serve.ABFTConfig) *serve.InjectConfig {
		return &serve.InjectConfig{
			Fault:    faults.Comp1Bit,
			Surfaces: faults.Surfaces,
			Seed:     8181,
			ABFT:     abft,
		}
	}

	run(nil, 0) // warmup
	clean := run(nil, 0)
	cleanP99 := time.Duration(clean.P99MS * float64(time.Millisecond))
	slo := 2 * cleanP99

	report := struct {
		Workload string  `json:"workload"`
		Streams  int     `json:"streams"`
		Requests int     `json:"requests"`
		SLOMS    float64 `json:"slo_ms"`
		Clean    arm     `json:"clean"`
		ABFTOff  arm     `json:"abft_off"`
		ABFTSite arm     `json:"abft_site"`
		ABFTAll  arm     `json:"abft_all"`
	}{
		Workload: "serving under faults: all five surfaces, comp-1bit, batched width 8",
		Streams:  streams,
		Requests: requests,
		SLOMS:    float64(slo) / float64(time.Millisecond),
		Clean:    run(nil, slo),
		ABFTOff:  run(inject(nil), slo),
		ABFTSite: run(inject(&serve.ABFTConfig{Policy: mitigate.PolicyDetect}), slo),
		ABFTAll:  run(inject(&serve.ABFTConfig{Policy: mitigate.PolicyDetect, AllLayers: true}), slo),
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("clean p50=%.2fms p99=%.2fms; off p99=%.2fms viol=%.2f; site p99=%.2fms det=%d; all p99=%.2fms det=%d",
		report.Clean.P50MS, report.Clean.P99MS,
		report.ABFTOff.P99MS, report.ABFTOff.SLOViolation,
		report.ABFTSite.P99MS, report.ABFTSite.Detected,
		report.ABFTAll.P99MS, report.ABFTAll.Detected)

	for name, a := range map[string]arm{"clean": report.Clean, "off": report.ABFTOff, "site": report.ABFTSite, "all": report.ABFTAll} {
		if a.OK != requests {
			t.Errorf("%s arm: %d of %d requests ok", name, a.OK, requests)
		}
	}
	if report.ABFTAll.Detected < report.ABFTSite.Detected {
		t.Errorf("all-layers detection (%d) below site-scoped (%d)", report.ABFTAll.Detected, report.ABFTSite.Detected)
	}
}
