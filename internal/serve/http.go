package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"hash/fnv"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/token"
	"repro/internal/version"
)

// maxRequestBody bounds the generate request payload.
const maxRequestBody = 1 << 20

// maxDeadlineMS caps deadline_ms at 24 hours: larger values are
// nonsense and would overflow the nanosecond conversion.
const maxDeadlineMS = 24 * 60 * 60 * 1000

// maxIDLen bounds the request id echoed into responses and logs.
const maxIDLen = 128

// RequestError is a 4xx request-decoding failure, rendered as the
// repo-standard JSON error envelope.
type RequestError struct {
	Status  int
	Code    string
	Message string
}

// Error implements error.
func (e *RequestError) Error() string { return e.Code + ": " + e.Message }

func reqErr(status int, code, msg string) *RequestError {
	return &RequestError{Status: status, Code: code, Message: msg}
}

// ParseLimits bounds what a wire request may ask for.
type ParseLimits struct {
	// MaxSeq is the model context length.
	MaxSeq int
	// DefaultMaxNew substitutes an omitted max_tokens.
	DefaultMaxNew int
	// MaxNewCap rejects larger max_tokens.
	MaxNewCap int
}

// wireGenerateRequest is the POST /api/v1/generate payload.
type wireGenerateRequest struct {
	ID         string  `json:"id"`
	Prompt     string  `json:"prompt"`
	MaxTokens  int     `json:"max_tokens"`
	DeadlineMS *int64  `json:"deadline_ms"`
	Seed       *uint64 `json:"seed"`
}

// wireGenerateResponse is the success payload.
type wireGenerateResponse struct {
	ID        string  `json:"id"`
	Text      string  `json:"text"`
	Tokens    []int   `json:"tokens"`
	Steps     int     `json:"steps"`
	LatencyMS float64 `json:"latency_ms"`
	Injected  bool    `json:"injected,omitempty"`
	Fired     bool    `json:"fired,omitempty"`
	Site      string  `json:"site,omitempty"`
	Surface   string  `json:"surface,omitempty"`
	Outcome   string  `json:"outcome,omitempty"`
	Detected  int     `json:"detected,omitempty"`
}

// ParseGenerateRequest decodes and validates a generate payload into an
// engine Request. It never panics on any input (fuzzed: malformed JSON,
// absurd max_tokens, zero or negative deadlines) — every failure is a
// typed 4xx RequestError. Unknown fields are rejected, matching the
// fleet API's schema-drift discipline.
func ParseGenerateRequest(body []byte, vocab *token.Vocab, lim ParseLimits) (Request, *RequestError) {
	var wire wireGenerateRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&wire); err != nil {
		return Request{}, reqErr(http.StatusBadRequest, "bad_json", err.Error())
	}
	// A second document after the first is as malformed as a bad first.
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return Request{}, reqErr(http.StatusBadRequest, "bad_json", "trailing data after request object")
	}
	if len(wire.ID) > maxIDLen {
		return Request{}, reqErr(http.StatusBadRequest, "bad_id", "id longer than 128 bytes")
	}
	words := strings.Fields(wire.Prompt)
	if len(words) == 0 {
		return Request{}, reqErr(http.StatusBadRequest, "empty_prompt", "prompt has no tokens")
	}
	prompt := vocab.EncodeWords(words)
	maxNew := wire.MaxTokens
	if maxNew == 0 {
		maxNew = lim.DefaultMaxNew
	}
	if maxNew < 0 || maxNew > lim.MaxNewCap {
		return Request{}, reqErr(http.StatusBadRequest, "bad_max_tokens",
			"max_tokens outside the service's accepted range")
	}
	if len(prompt)+maxNew > lim.MaxSeq {
		return Request{}, reqErr(http.StatusBadRequest, "prompt_too_long",
			"prompt plus max_tokens exceeds the model context")
	}
	var deadline time.Duration
	if wire.DeadlineMS != nil {
		ms := *wire.DeadlineMS
		if ms <= 0 || ms > maxDeadlineMS {
			return Request{}, reqErr(http.StatusBadRequest, "bad_deadline",
				"deadline_ms must be in (0, 86400000]")
		}
		deadline = time.Duration(ms) * time.Millisecond
	}
	seed := requestSeed(wire.ID, wire.Prompt)
	if wire.Seed != nil {
		seed = *wire.Seed
	}
	return Request{
		ID:       wire.ID,
		Prompt:   prompt,
		MaxNew:   maxNew,
		Deadline: deadline,
		Seed:     seed,
	}, nil
}

// requestSeed derives a deterministic fault-sampling seed for wire
// requests that do not pin one.
func requestSeed(id, prompt string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(id))
	h.Write([]byte{0})
	h.Write([]byte(prompt))
	return h.Sum64()
}

// limits resolves the engine's parse bounds.
func (e *Engine) limits() ParseLimits {
	return ParseLimits{
		MaxSeq:        e.m.Cfg.MaxSeq,
		DefaultMaxNew: e.cfg.DefaultMaxNew,
		MaxNewCap:     e.cfg.MaxNewCap,
	}
}

// Handler returns the serving HTTP surface: POST /api/v1/generate plus
// /healthz, /metrics, and the /debug/fleet live dashboard. The engine
// must have a Vocab.
func (e *Engine) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(report.APIVersion+"/generate", e.handleGenerate)
	mux.HandleFunc("/healthz", e.handleHealthz)
	mux.HandleFunc("/metrics", e.handleMetrics)
	mux.HandleFunc("/debug/fleet", obs.DashboardHandler(e.dashboardData))
	return mux
}

// dashboardData gathers the live serving view for /debug/fleet.
func (e *Engine) dashboardData() obs.DashboardData {
	s := e.met.Snapshot()
	status := obs.DashboardSection{Title: "serving", Rows: [][2]string{
		{"in flight", fmtI(s.InFlight)},
		{"requests ok", fmtI(s.Requests[statusOK])},
		{"tokens", fmtI(s.Tokens)},
		{"slo violations", fmtI(s.SLOViolations)},
		{"injected", fmtI(s.Injected)},
		{"detected", fmtI(s.Detected)},
	}}
	slow := obs.DashboardSection{Title: "recent SLO violations (newest first)"}
	for _, sr := range e.SlowRequests() {
		detail := sr.Status
		if sr.Injected {
			detail += " site=" + sr.Site
			if sr.Fired {
				detail += " fired"
			}
			if sr.Outcome != "" {
				detail += " outcome=" + sr.Outcome
			}
		}
		if sr.Trace != "" {
			detail += " trace=" + sr.Trace
		}
		slow.Rows = append(slow.Rows, [2]string{
			sr.ID + " " + strconv.FormatFloat(sr.LatencyMS, 'f', 1, 64) + "ms",
			detail,
		})
	}
	var metrics strings.Builder
	_ = report.WriteBuildInfoText(&metrics, obs.SchemaVersion)
	_ = WriteMetricsText(&metrics, s)
	return obs.DashboardData{
		Title:    "llmfi serve",
		Version:  version.Version,
		Sections: []obs.DashboardSection{status, slow},
		Metrics:  metrics.String(),
		Spans:    e.cfg.Recorder.Recent(32),
	}
}

func fmtI(v int64) string { return strconv.FormatInt(v, 10) }

// handleGenerate runs one request through the engine.
func (e *Engine) handleGenerate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		report.WriteAPIError(w, http.StatusMethodNotAllowed, "method_not_allowed", "POST only")
		return
	}
	if e.cfg.Vocab == nil {
		report.WriteAPIError(w, http.StatusInternalServerError, "no_vocab", "engine has no vocabulary")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRequestBody))
	if err != nil {
		report.WriteAPIError(w, http.StatusRequestEntityTooLarge, "body_too_large", err.Error())
		return
	}
	req, rerr := ParseGenerateRequest(body, e.cfg.Vocab, e.limits())
	if rerr != nil {
		report.WriteAPIError(w, rerr.Status, rerr.Code, rerr.Message)
		return
	}
	// Trace context is advisory: malformed, missing, or foreign-version
	// traceparent headers are silently ignored, never an error.
	incoming, hasTP := obs.ParseTraceparent(r.Header.Get(obs.TraceparentHeader))
	if hasTP {
		req.Trace = incoming
	}
	resp := e.Submit(r.Context(), req)
	// Echo trace context back: the engine's root when this request was
	// sampled (so the caller can find the server-side spans), otherwise
	// the caller's own context, preserved round-trip.
	if resp.Trace.Valid() {
		w.Header().Set(obs.TraceparentHeader, resp.Trace.Traceparent())
	} else if hasTP {
		w.Header().Set(obs.TraceparentHeader, incoming.Traceparent())
	}
	if resp.Err != nil {
		status, code := http.StatusServiceUnavailable, "draining"
		switch {
		case errors.Is(resp.Err, context.DeadlineExceeded):
			status, code = http.StatusGatewayTimeout, "deadline_exceeded"
		case errors.Is(resp.Err, context.Canceled):
			status, code = http.StatusServiceUnavailable, "canceled"
		case errors.Is(resp.Err, ErrInvalid):
			status, code = http.StatusBadRequest, "invalid_request"
		}
		report.WriteAPIError(w, status, code, resp.Err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(wireGenerateResponse{
		ID:        resp.ID,
		Text:      resp.Text,
		Tokens:    resp.Tokens,
		Steps:     resp.Steps,
		LatencyMS: float64(resp.Latency) / float64(time.Millisecond),
		Injected:  resp.Injected,
		Fired:     resp.Fired,
		Site:      resp.Site,
		Surface:   resp.Surface,
		Outcome:   resp.Outcome,
		Detected:  resp.Detected,
	})
}

// handleHealthz reports liveness and load.
func (e *Engine) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(map[string]any{
		"status":    "ok",
		"in_flight": e.met.Snapshot().InFlight,
	})
}

// handleMetrics exposes the serving metrics in Prometheus text format.
func (e *Engine) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", report.ContentTypeMetrics)
	_ = report.WriteBuildInfoText(w, obs.SchemaVersion)
	_ = WriteMetricsText(w, e.met.Snapshot())
}
