package serve

import (
	"fmt"
	"io"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/outcome"
)

// reqStatus labels a finished (or rejected) request.
type reqStatus int

const (
	statusOK reqStatus = iota
	statusInvalid
	statusDeadline
	statusCanceled
	statusDraining

	nStatus
)

// String names the status as exported in metric labels.
func (s reqStatus) String() string {
	switch s {
	case statusOK:
		return "ok"
	case statusInvalid:
		return "invalid"
	case statusDeadline:
		return "deadline_exceeded"
	case statusCanceled:
		return "canceled"
	case statusDraining:
		return "draining"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// nLatencyBuckets and latencyBucketBounds mirror the campaign
// telemetry's phase-latency histogram shape (internal/core): exponential
// bounds starting at 1µs and doubling per bucket. Requests live longer
// than kernel phases, so the request histogram carries 26 finite buckets
// (~33.6s) before +Inf.
const nLatencyBuckets = 26

// latencyBucketBounds returns the finite bucket upper bounds in seconds.
func latencyBucketBounds() [nLatencyBuckets]float64 {
	var b [nLatencyBuckets]float64
	v := 1e-6
	for i := range b {
		b[i] = v
		v *= 2
	}
	return b
}

// Metrics is the per-request serving instrumentation: request counters
// by status, an exponential latency histogram, SLO violations, the
// in-flight gauge, and campaign-mode injection/outcome counters. All
// methods are safe for concurrent use (lock-free atomics on the hot
// path, matching the campaign telemetry's design).
type Metrics struct {
	inFlight      atomic.Int64
	requests      [nStatus]atomic.Int64
	tokens        atomic.Int64
	sloViolations atomic.Int64

	latBuckets [nLatencyBuckets + 1]atomic.Int64
	latCount   atomic.Int64
	latSumNS   atomic.Int64

	ttftBuckets [nLatencyBuckets + 1]atomic.Int64
	ttftCount   atomic.Int64
	ttftSumNS   atomic.Int64

	itBuckets [nLatencyBuckets + 1]atomic.Int64
	itCount   atomic.Int64
	itSumNS   atomic.Int64

	injected atomic.Int64
	detected atomic.Int64
	outcomes [3]atomic.Int64
}

// NewMetrics returns zeroed serving metrics.
func NewMetrics() *Metrics { return &Metrics{} }

func (m *Metrics) requestStarted() { m.inFlight.Add(1) }
func (m *Metrics) requestDone()    { m.inFlight.Add(-1) }

// bucketIndex places a latency into the shared exponential bucket shape.
func bucketIndex(latency time.Duration) int {
	sec := latency.Seconds()
	bounds := latencyBucketBounds()
	for i, b := range bounds {
		if sec <= b {
			return i
		}
	}
	return nLatencyBuckets // +Inf
}

// observeRequest records one finished request.
func (m *Metrics) observeRequest(st reqStatus, latency time.Duration, tokens int) {
	m.requests[st].Add(1)
	m.tokens.Add(int64(tokens))
	m.latBuckets[bucketIndex(latency)].Add(1)
	m.latCount.Add(1)
	m.latSumNS.Add(int64(latency))
}

// observeTTFT records one request's time to first token.
func (m *Metrics) observeTTFT(d time.Duration) {
	m.ttftBuckets[bucketIndex(d)].Add(1)
	m.ttftCount.Add(1)
	m.ttftSumNS.Add(int64(d))
}

// observeInterToken records one gap between consecutive decode tokens
// of a request.
func (m *Metrics) observeInterToken(d time.Duration) {
	m.itBuckets[bucketIndex(d)].Add(1)
	m.itCount.Add(1)
	m.itSumNS.Add(int64(d))
}

// observeRejected records a request refused before it ran.
func (m *Metrics) observeRejected(st reqStatus) { m.requests[st].Add(1) }

func (m *Metrics) observeSLOViolation() { m.sloViolations.Add(1) }

func (m *Metrics) observeInjected() { m.injected.Add(1) }

func (m *Metrics) observeDetection(flagged int) { m.detected.Add(int64(flagged)) }

func (m *Metrics) observeOutcome(c outcome.Class) {
	if c >= 0 && int(c) < len(m.outcomes) {
		m.outcomes[c].Add(1)
	}
}

// MetricsSnapshot is a consistent-enough copy of the counters for
// rendering (individual counters are atomic; the set is sampled live).
type MetricsSnapshot struct {
	InFlight      int64
	Requests      [nStatus]int64
	Tokens        int64
	SLOViolations int64
	LatBuckets    [nLatencyBuckets + 1]int64
	LatCount      int64
	LatSum        float64 // seconds
	TTFTBuckets   [nLatencyBuckets + 1]int64
	TTFTCount     int64
	TTFTSum       float64 // seconds
	ITBuckets     [nLatencyBuckets + 1]int64
	ITCount       int64
	ITSum         float64 // seconds
	Injected      int64
	Detected      int64
	Outcomes      [3]int64
}

// Snapshot samples the counters.
func (m *Metrics) Snapshot() MetricsSnapshot {
	var s MetricsSnapshot
	s.InFlight = m.inFlight.Load()
	for i := range s.Requests {
		s.Requests[i] = m.requests[i].Load()
	}
	s.Tokens = m.tokens.Load()
	s.SLOViolations = m.sloViolations.Load()
	for i := range s.LatBuckets {
		s.LatBuckets[i] = m.latBuckets[i].Load()
	}
	s.LatCount = m.latCount.Load()
	s.LatSum = time.Duration(m.latSumNS.Load()).Seconds()
	for i := range s.TTFTBuckets {
		s.TTFTBuckets[i] = m.ttftBuckets[i].Load()
	}
	s.TTFTCount = m.ttftCount.Load()
	s.TTFTSum = time.Duration(m.ttftSumNS.Load()).Seconds()
	for i := range s.ITBuckets {
		s.ITBuckets[i] = m.itBuckets[i].Load()
	}
	s.ITCount = m.itCount.Load()
	s.ITSum = time.Duration(m.itSumNS.Load()).Seconds()
	s.Injected = m.injected.Load()
	s.Detected = m.detected.Load()
	for i := range s.Outcomes {
		s.Outcomes[i] = m.outcomes[i].Load()
	}
	return s
}

// WriteMetricsText renders the snapshot in Prometheus text exposition
// format 0.0.4, deterministically (fixed family and label order), in
// the same style as the campaign metrics renderer (internal/report).
func WriteMetricsText(w io.Writer, s MetricsSnapshot) error {
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	fv := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

	p("# HELP llmfi_serve_in_flight Requests currently being served.\n")
	p("# TYPE llmfi_serve_in_flight gauge\n")
	p("llmfi_serve_in_flight %d\n", s.InFlight)

	p("# HELP llmfi_serve_requests_total Finished requests by terminal status.\n")
	p("# TYPE llmfi_serve_requests_total counter\n")
	for st := reqStatus(0); st < nStatus; st++ {
		p("llmfi_serve_requests_total{status=%q} %d\n", st.String(), s.Requests[st])
	}

	p("# HELP llmfi_serve_tokens_total Generated tokens returned to clients.\n")
	p("# TYPE llmfi_serve_tokens_total counter\n")
	p("llmfi_serve_tokens_total %d\n", s.Tokens)

	p("# HELP llmfi_serve_slo_violations_total Finished requests slower than the configured SLO.\n")
	p("# TYPE llmfi_serve_slo_violations_total counter\n")
	p("llmfi_serve_slo_violations_total %d\n", s.SLOViolations)

	hist := func(name, help string, buckets [nLatencyBuckets + 1]int64, count int64, sum float64) {
		p("# HELP %s %s\n", name, help)
		p("# TYPE %s histogram\n", name)
		bounds := latencyBucketBounds()
		var cum int64
		for i, b := range bounds {
			cum += buckets[i]
			p("%s_bucket{le=%q} %d\n", name, fv(b), cum)
		}
		cum += buckets[nLatencyBuckets]
		p("%s_bucket{le=\"+Inf\"} %d\n", name, cum)
		p("%s_sum %s\n", name, fv(sum))
		p("%s_count %d\n", name, count)
	}
	hist("llmfi_serve_request_latency_seconds", "End-to-end request latency.",
		s.LatBuckets, s.LatCount, s.LatSum)
	hist("llmfi_serve_ttft_seconds", "Time from request submission to first generated token.",
		s.TTFTBuckets, s.TTFTCount, s.TTFTSum)
	hist("llmfi_serve_inter_token_seconds", "Gap between consecutive decode tokens of a request.",
		s.ITBuckets, s.ITCount, s.ITSum)

	p("# HELP llmfi_serve_injected_total Requests served with an armed fault.\n")
	p("# TYPE llmfi_serve_injected_total counter\n")
	p("llmfi_serve_injected_total %d\n", s.Injected)

	p("# HELP llmfi_serve_detected_total ABFT checks flagged across served requests.\n")
	p("# TYPE llmfi_serve_detected_total counter\n")
	p("llmfi_serve_detected_total %d\n", s.Detected)

	p("# HELP llmfi_serve_outcome_total Classified request outcomes under injection.\n")
	p("# TYPE llmfi_serve_outcome_total counter\n")
	for c := outcome.Masked; c <= outcome.SDCDistorted; c++ {
		p("llmfi_serve_outcome_total{class=%q} %d\n", c.String(), s.Outcomes[c])
	}
	return err
}
