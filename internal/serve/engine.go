// Package serve is the live inference service: an engine that admits
// concurrent generate requests onto the continuous-batching decode core
// (model.Batch), with per-request deadlines and cancellation, graceful
// drain, per-request serving metrics, and an optional fault-campaign
// mode that injects into live traffic.
//
// The serving path preserves the offline trial contract. Every number a
// request's decode produces is bit-identical to the same request running
// alone through the serial generator: the batched GEMMs keep per-row
// accumulation order, injection hooks and ABFT checkers are row-scoped,
// and fault sites are a pure function of the request's seed — never of
// admission order or batch composition. Weight-resident faults (norm,
// embedding, linear memory) cannot be row-scoped, so those requests run
// serially on a private copy-on-write clone, exactly as offline
// campaigns serialize memory-fault trials per model instance.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/abft"
	"repro/internal/faults"
	"repro/internal/gen"
	"repro/internal/mitigate"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/outcome"
	"repro/internal/prng"
	"repro/internal/token"
)

// ErrDraining rejects a request that arrived after shutdown began.
var ErrDraining = errors.New("serve: engine draining")

// ErrInvalid wraps request-validation failures (the HTTP layer maps it
// to a 400 envelope).
var ErrInvalid = errors.New("serve: invalid request")

// ABFTConfig arms checksum detection on served requests.
type ABFTConfig struct {
	// Tol overrides the derived per-layer tolerance (0 = DefaultTol).
	Tol float64
	// Policy selects the detection response (detect/correct/skip).
	Policy mitigate.Policy
	// AllLayers protects every block linear; false protects only the
	// request's own injection site, and only when that site is a linear
	// layer — the non-linear surfaces have no checksum to violate,
	// which is exactly the coverage boundary fig_serving measures.
	AllLayers bool
}

// InjectConfig turns the engine into a live fault campaign: each
// admitted request receives one fault whose site is a pure function of
// (Seed, request seed), sampled uniformly over the configured surfaces.
type InjectConfig struct {
	// Fault is the fault model (bit multiplicity / residence).
	Fault faults.Model
	// Surfaces to sample uniformly; empty defaults to SurfaceLinear.
	Surfaces []faults.Surface
	// Seed is the campaign-level base seed.
	Seed uint64
	// ABFT, when non-nil, arms a checker per request.
	ABFT *ABFTConfig
}

// Config parameterizes an Engine.
type Config struct {
	// Model serves all requests; its weights are treated as read-only
	// (weight-resident faults clone copy-on-write before flipping).
	Model *model.Model
	// Vocab, when non-nil, fills Response.Text and enables the HTTP
	// prompt codec.
	Vocab *token.Vocab
	// Width is the decode-batch capacity (default 8).
	Width int
	// Queue bounds admission backlog before Submit blocks (default 2×Width).
	Queue int
	// DefaultMaxNew is max_tokens for requests that omit it (default 32).
	DefaultMaxNew int
	// MaxNewCap bounds per-request max_tokens (default MaxSeq).
	MaxNewCap int
	// SLO is the latency objective; finished requests slower than it
	// count as violations. 0 disables SLO accounting.
	SLO time.Duration
	// Inject, when non-nil, enables the live fault campaign.
	Inject *InjectConfig
	// Recorder, when non-nil and enabled, records per-request spans
	// (queue wait, first token, decode) for sampled requests. Purely
	// observational: tokens, outcomes, and fault sampling are
	// bit-identical with recording on or off.
	Recorder *obs.Recorder
	// SlowLog bounds the ring of recent SLO-violating requests kept for
	// the dashboard (default 64).
	SlowLog int
}

// Request is one generate call.
type Request struct {
	// ID labels the request in responses and logs.
	ID string
	// Prompt is the tokenized prompt (non-empty).
	Prompt []int
	// MaxNew bounds generated tokens; 0 takes the engine default.
	MaxNew int
	// Deadline, when positive, bounds the request's wall time.
	Deadline time.Duration
	// Seed drives campaign-mode fault sampling for this request; the
	// sampled site depends only on (engine seed, Seed).
	Seed uint64
	// Baseline, when non-nil, is the fault-free output of this request;
	// campaign mode classifies the served output against it.
	Baseline []int
	// Trace is the caller's trace context (from a traceparent header).
	// Invalid or zero means none; the engine starts a fresh trace when
	// the request is sampled. Advisory only — it never affects results.
	Trace obs.SpanContext
}

// Response is the outcome of one request. Err is nil on success;
// typed errors (ErrDraining, ErrInvalid, context errors) report
// rejection, deadline expiry, or cancellation. Tokens carries whatever
// was generated before the request ended either way.
type Response struct {
	ID      string
	Tokens  []int
	Text    string
	Steps   int
	Latency time.Duration
	// Injected / Fired / Site / Surface describe the campaign fault.
	Injected bool
	Fired    bool
	Site     string
	Surface  string
	// Outcome is the classification against Request.Baseline ("" when
	// no baseline or no injection).
	Outcome string
	// Detected counts flagged ABFT checks.
	Detected int
	// Trace is the root span context of this request's recorded trace
	// (zero when the request was not sampled).
	Trace obs.SpanContext
	Err   error
}

// reqTiming carries a request's observability state: the sampled-trace
// decision and context plus the phase timings the span exporter and the
// TTFT histogram consume. Zero value = unsampled, no timings.
type reqTiming struct {
	sampled bool
	root    obs.SpanContext
	parent  string // incoming span ID when the trace was propagated in

	enq       time.Time // when the request entered the admission queue
	admitted  time.Time // when it took a batch row
	queueWait time.Duration
	ttft      time.Duration
	hasTTFT   bool
}

// pending is a prefilled request waiting for a batch slot.
type pending struct {
	req    Request
	ctx    context.Context
	start  time.Time
	st     *model.State
	prefix []float32
	site   *faults.Site
	tm     reqTiming
	resp   chan Response
}

// flight is one admitted request occupying a batch row.
type flight struct {
	p       *pending
	row     *model.DecodeRow
	stepper *gen.Stepper
	inj     *faults.Injection
	sf      *faults.StateFault
	checker *abft.Checker
	lastTok time.Time // last decode-step completion, for inter-token gaps
}

// Engine is the serving core. Create with NewEngine, start the
// scheduler with Run (usually in its own goroutine), send traffic with
// Submit, and stop by cancelling Run's context: in-flight requests
// finish, queued and later ones get ErrDraining, then Run returns.
type Engine struct {
	cfg     Config
	m       *model.Model
	met     *Metrics
	sampler *faults.Sampler
	// cache holds clean-weight ABFT checksums. It is not safe for
	// concurrent use; only the scheduler goroutine touches it (the
	// serial fault path builds private caches).
	cache *abft.Cache
	queue chan *pending
	done  chan struct{}

	mu       sync.Mutex
	draining bool //llmfi:guardedby mu
	serial   sync.WaitGroup

	slowMu   sync.Mutex
	slow     []SlowRequest //llmfi:guardedby slowMu — ring, newest at slowNext-1
	slowNext int           //llmfi:guardedby slowMu
}

// SlowRequest is one SLO-violating request retained for the dashboard
// and slow-request log: enough to find the full trace (Trace) and to
// attribute the slowness (fault + detection annotations).
type SlowRequest struct {
	ID        string  `json:"id"`
	Trace     string  `json:"trace,omitempty"`
	LatencyMS float64 `json:"latency_ms"`
	SLOMS     float64 `json:"slo_ms"`
	Status    string  `json:"status"`
	Injected  bool    `json:"injected,omitempty"`
	Fired     bool    `json:"fired,omitempty"`
	Site      string  `json:"site,omitempty"`
	Surface   string  `json:"surface,omitempty"`
	Outcome   string  `json:"outcome,omitempty"`
	Detected  int     `json:"detected,omitempty"`
}

// noteSlow appends one entry to the slow-request ring.
func (e *Engine) noteSlow(sr SlowRequest) {
	e.slowMu.Lock()
	defer e.slowMu.Unlock()
	if len(e.slow) < e.cfg.SlowLog {
		e.slow = append(e.slow, sr)
		e.slowNext = len(e.slow) % e.cfg.SlowLog
		return
	}
	e.slow[e.slowNext] = sr
	e.slowNext = (e.slowNext + 1) % e.cfg.SlowLog
}

// SlowRequests returns the retained SLO violations, newest first.
func (e *Engine) SlowRequests() []SlowRequest {
	e.slowMu.Lock()
	defer e.slowMu.Unlock()
	out := make([]SlowRequest, 0, len(e.slow))
	for i := 0; i < len(e.slow); i++ {
		j := e.slowNext - 1 - i
		if j < 0 {
			j += len(e.slow)
		}
		out = append(out, e.slow[j])
	}
	return out
}

// NewEngine validates cfg and builds an engine. Run must be started
// before Submit calls can complete.
func NewEngine(cfg Config) (*Engine, error) {
	if cfg.Model == nil {
		return nil, errors.New("serve: Config.Model is required")
	}
	if cfg.Width <= 0 {
		cfg.Width = 8
	}
	if cfg.Queue <= 0 {
		cfg.Queue = 2 * cfg.Width
	}
	if cfg.DefaultMaxNew <= 0 {
		cfg.DefaultMaxNew = 32
	}
	if cfg.MaxNewCap <= 0 {
		cfg.MaxNewCap = cfg.Model.Cfg.MaxSeq
	}
	if cfg.DefaultMaxNew > cfg.MaxNewCap {
		cfg.DefaultMaxNew = cfg.MaxNewCap
	}
	if cfg.SlowLog <= 0 {
		cfg.SlowLog = 64
	}
	e := &Engine{
		cfg:   cfg,
		m:     cfg.Model,
		met:   NewMetrics(),
		queue: make(chan *pending, cfg.Queue),
		done:  make(chan struct{}),
	}
	if inj := cfg.Inject; inj != nil {
		if len(inj.Surfaces) == 0 {
			inj.Surfaces = []faults.Surface{faults.SurfaceLinear}
		}
		for _, s := range inj.Surfaces {
			if s == faults.SurfaceLinear {
				sp, err := faults.NewSampler(cfg.Model, nil)
				if err != nil {
					return nil, err
				}
				e.sampler = sp
			}
		}
		if inj.ABFT != nil {
			e.cache = abft.NewCache()
		}
	}
	return e, nil
}

// Metrics exposes the engine's serving counters.
func (e *Engine) Metrics() *Metrics { return e.met }

// Recorder exposes the engine's span recorder (nil when tracing is off;
// obs.Recorder methods are nil-safe).
func (e *Engine) Recorder() *obs.Recorder { return e.cfg.Recorder }

// sampleTrace makes the per-request trace decision. The root context
// continues the caller's propagated trace when one came in, otherwise
// starts fresh.
func (e *Engine) sampleTrace(req *Request) reqTiming {
	var tm reqTiming
	if !e.cfg.Recorder.SampleRoot() {
		return tm
	}
	tm.sampled = true
	tm.root = e.cfg.Recorder.Child(req.Trace)
	if req.Trace.Valid() {
		tm.parent = req.Trace.Span
	}
	return tm
}

// genSettings builds the per-request greedy-decode settings.
func (e *Engine) genSettings(maxNew int) gen.Settings {
	return gen.Defaults(maxNew)
}

// validate normalizes req in place.
func (e *Engine) validate(req *Request) error {
	if len(req.Prompt) == 0 {
		return fmt.Errorf("%w: empty prompt", ErrInvalid)
	}
	if req.MaxNew == 0 {
		req.MaxNew = e.cfg.DefaultMaxNew
	}
	if req.MaxNew < 0 || req.MaxNew > e.cfg.MaxNewCap {
		return fmt.Errorf("%w: max_tokens %d outside (0, %d]", ErrInvalid, req.MaxNew, e.cfg.MaxNewCap)
	}
	if len(req.Prompt)+req.MaxNew > e.m.Cfg.MaxSeq {
		return fmt.Errorf("%w: prompt %d + max_tokens %d exceeds context %d",
			ErrInvalid, len(req.Prompt), req.MaxNew, e.m.Cfg.MaxSeq)
	}
	return nil
}

// sampleSite draws the request's fault site — a pure function of the
// engine's campaign seed and the request's own seed, independent of
// admission order, batch composition, and sibling requests.
func (e *Engine) sampleSite(req *Request) (faults.Site, error) {
	inj := e.cfg.Inject
	src := prng.New(inj.Seed).Split(req.Seed)
	surf := inj.Surfaces[src.Intn(len(inj.Surfaces))]
	return faults.SampleSurface(src, e.sampler, e.m, surf, inj.Fault, req.MaxNew, len(req.Prompt))
}

// Submit runs one request to completion and returns its Response. It
// blocks for the request's full latency; callers wanting concurrency
// use one goroutine per stream (see loadgen). Respect ctx: cancelling
// it abandons the request at the next decode step.
func (e *Engine) Submit(ctx context.Context, req Request) Response {
	start := time.Now()
	if err := e.validate(&req); err != nil {
		e.met.observeRejected(statusInvalid)
		return Response{ID: req.ID, Err: err}
	}
	e.met.requestStarted()
	defer e.met.requestDone()
	tm := e.sampleTrace(&req)

	if req.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, req.Deadline)
		defer cancel()
	}

	var site *faults.Site
	if e.cfg.Inject != nil {
		s, err := e.sampleSite(&req)
		if err != nil {
			e.met.observeRejected(statusInvalid)
			return Response{ID: req.ID, Err: fmt.Errorf("%w: %v", ErrInvalid, err)}
		}
		site = &s
	}

	if site != nil && site.WeightResident() {
		// Weight-resident faults flip shared parameter storage; they
		// cannot ride a shared batch. Run serially on a private
		// copy-on-write clone in this goroutine.
		if !e.trackSerial() {
			e.met.observeRejected(statusDraining)
			return Response{ID: req.ID, Err: ErrDraining}
		}
		defer e.serial.Done()
		return e.runSerial(ctx, req, *site, start, tm)
	}

	// Prefill here, concurrently with other submitters: the state is
	// private and the shared weights are read-only on this path.
	st := e.m.NewState()
	logits := st.Prefill(req.Prompt)
	tm.enq = time.Now()
	p := &pending{
		req:    req,
		ctx:    ctx,
		start:  start,
		st:     st,
		prefix: append([]float32(nil), logits...),
		site:   site,
		tm:     tm,
		resp:   make(chan Response, 1),
	}
	select {
	case e.queue <- p:
	case <-ctx.Done():
		return e.finishErr(req.ID, start, ctx.Err())
	case <-e.done:
		e.met.observeRejected(statusDraining)
		return Response{ID: req.ID, Err: ErrDraining}
	}
	select {
	case r := <-p.resp:
		return r
	case <-e.done:
		// Prefer a response that raced the drain.
		select {
		case r := <-p.resp:
			return r
		default:
			e.met.observeRejected(statusDraining)
			return Response{ID: req.ID, Err: ErrDraining}
		}
	}
}

// trackSerial registers a serial-path request with the drain barrier.
func (e *Engine) trackSerial() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.draining {
		return false
	}
	e.serial.Add(1)
	return true
}

// Run is the scheduler: it owns the decode batch, admits pending
// requests into free rows, steps the batch, and retires finished rows.
// It returns after ctx is cancelled AND every in-flight request (batched
// and serial) has finished — the graceful-drain contract behind the
// SIGINT handling in cmd/llmfi.
func (e *Engine) Run(ctx context.Context) error {
	bt := e.m.NewBatch(e.cfg.Width)
	live := make([]*flight, 0, e.cfg.Width)
	rows := make([]*model.DecodeRow, 0, e.cfg.Width)
	running := true

	for {
		if running && ctx.Err() != nil {
			running = false
			e.mu.Lock()
			e.draining = true
			e.mu.Unlock()
			e.failQueued()
		}
		if len(live) == 0 {
			if !running {
				break
			}
			select {
			case p := <-e.queue:
				if f := e.admit(p); f != nil {
					live = append(live, f)
				}
			case <-ctx.Done():
			}
			continue
		}
		if running {
		topUp:
			for len(live) < e.cfg.Width {
				select {
				case p := <-e.queue:
					if f := e.admit(p); f != nil {
						live = append(live, f)
					}
				default:
					break topUp
				}
			}
		}

		// Sweep cancelled/expired requests before spending a step on them.
		keep := live[:0]
		for _, f := range live {
			if err := f.p.ctx.Err(); err != nil {
				e.retire(f, err)
				continue
			}
			keep = append(keep, f)
		}
		live = keep
		if len(live) == 0 {
			continue
		}

		// Land KV-cache strikes due this iteration, then step.
		rows = rows[:0]
		for _, f := range live {
			if f.sf != nil {
				f.sf.BeforeStep(f.row.St)
			}
			rows = append(rows, f.row)
		}
		bt.Step(rows)

		// One clock read covers the whole stacked step: each live flight
		// produced one token, so the gap since its previous token is an
		// inter-token latency sample.
		stepAt := time.Now()
		for _, f := range live {
			if !f.lastTok.IsZero() {
				e.met.observeInterToken(stepAt.Sub(f.lastTok))
			}
			f.lastTok = stepAt
		}

		keep = live[:0]
		for _, f := range live {
			tok, ok := f.stepper.Next(f.row.Logits, f.row.St.Pos, e.m.Cfg.MaxSeq)
			if !ok {
				e.retire(f, nil)
				continue
			}
			f.row.Tok = tok
			keep = append(keep, f)
		}
		live = keep
	}

	e.serial.Wait()
	close(e.done)
	return nil
}

// failQueued rejects every request still waiting in the queue buffer.
func (e *Engine) failQueued() {
	for {
		select {
		case p := <-e.queue:
			e.met.observeRejected(statusDraining)
			p.resp <- Response{ID: p.req.ID, Err: ErrDraining}
		default:
			return
		}
	}
}

// admit turns a pending request into a flight: build its stepper, arm
// its fault and checker on the row (scheduler goroutine — the checksum
// cache is single-threaded by construction), and consume the prefix
// logits for the first token. Returns nil if the request finished
// during admission (first token was EOS).
func (e *Engine) admit(p *pending) *flight {
	f := &flight{
		p:       p,
		stepper: gen.NewStepper(e.genSettings(p.req.MaxNew)),
		row:     &model.DecodeRow{St: p.st, Logits: make([]float32, e.m.Cfg.Vocab)},
	}
	if p.site != nil {
		if err := e.armRow(f); err != nil {
			e.retire(f, fmt.Errorf("%w: %v", ErrInvalid, err))
			return nil
		}
	}
	tok, ok := f.stepper.Next(p.prefix, p.st.Pos, e.m.Cfg.MaxSeq)
	if !ok {
		e.retire(f, nil)
		return nil
	}
	// The first generated token materializes here, off the prefix
	// logits: this is the request's TTFT.
	p.tm.admitted = time.Now()
	p.tm.queueWait = p.tm.admitted.Sub(p.tm.enq)
	p.tm.ttft = p.tm.admitted.Sub(p.start)
	p.tm.hasTTFT = true
	e.met.observeTTFT(p.tm.ttft)
	f.lastTok = p.tm.admitted
	f.row.Tok = tok
	return f
}

// armRow scopes the request's fault and checker to its own batch row.
func (e *Engine) armRow(f *flight) error {
	site := *f.p.site
	promptLen := len(f.p.req.Prompt)
	switch site.Surface {
	case faults.SurfaceKV:
		sf, err := faults.ArmKV(site, promptLen)
		if err != nil {
			return err
		}
		f.sf = sf
	default:
		inj, hook, err := faults.ArmHook(e.m, site, promptLen)
		if err != nil {
			return err
		}
		f.inj = inj
		if site.Surface == faults.SurfaceAttn {
			f.row.AttnHooks = []model.Hook{hook}
		} else {
			f.row.Hooks = []model.Hook{hook}
		}
	}
	if a := e.cfg.Inject.ABFT; a != nil {
		ck := abft.NewWithCache(abft.Config{Tol: a.Tol, Policy: a.Policy}, e.cache)
		if a.AllLayers {
			if err := ck.ProtectAll(e.m); err != nil {
				return err
			}
		} else if site.Surface == faults.SurfaceLinear {
			if err := ck.Protect(e.m, site.Layer); err != nil {
				return err
			}
		}
		f.checker = ck
		f.row.Checker = ck
	}
	return nil
}

// retire finishes a flight: score, classify, record, respond.
func (e *Engine) retire(f *flight, err error) {
	res := f.stepper.Result()
	fired := false
	if f.inj != nil {
		fired = f.inj.Fired
		f.inj.Disarm()
	} else if f.sf != nil {
		fired = f.sf.Fired
	}
	detected := 0
	if f.checker != nil {
		detected = f.checker.Stats().Flagged
		e.met.observeDetection(detected)
	}
	f.p.resp <- e.finish(f.p.req, f.p.start, res.Tokens, res.Steps, f.p.site, err, fired, detected, f.p.tm)
}

// runSerial executes a weight-resident-fault request on a private
// copy-on-write clone: clean prefill, checksum capture, arm, serial
// decode with per-token cancellation checks, disarm. Sibling requests
// never observe the flip — the clone privatizes the struck storage
// before writing.
func (e *Engine) runSerial(ctx context.Context, req Request, site faults.Site, start time.Time, tm reqTiming) Response {
	wm := e.m.CloneShared()
	st := wm.NewState()
	logits := st.Prefill(req.Prompt)

	var ck *abft.Checker
	if a := e.cfg.Inject.ABFT; a != nil {
		// Private cache: the engine's cache belongs to the scheduler
		// goroutine. Protect before Arm so checksums capture clean weights.
		ck = abft.NewWithCache(abft.Config{Tol: a.Tol, Policy: a.Policy}, abft.NewCache())
		var err error
		if a.AllLayers {
			err = ck.ProtectAll(wm)
		} else if site.Surface == faults.SurfaceLinear {
			err = ck.Protect(wm, site.Layer)
		}
		if err != nil {
			e.met.observeRejected(statusInvalid)
			return Response{ID: req.ID, Err: fmt.Errorf("%w: %v", ErrInvalid, err)}
		}
		wm.SetChecker(ck)
	}

	inj, err := faults.Arm(wm, site, len(req.Prompt))
	if err != nil {
		e.met.observeRejected(statusInvalid)
		return Response{ID: req.ID, Err: fmt.Errorf("%w: %v", ErrInvalid, err)}
	}
	defer inj.Disarm()

	stepper := gen.NewStepper(e.genSettings(req.MaxNew))
	tok, ok := stepper.Next(logits, st.Pos, wm.Cfg.MaxSeq)
	last := time.Now()
	if ok {
		// Serial path has no queue: its first token lands right after
		// prefill, so queue wait is zero and TTFT is prefill time.
		tm.admitted = last
		tm.ttft = last.Sub(start)
		tm.hasTTFT = true
		e.met.observeTTFT(tm.ttft)
	}
	var ctxErr error
	for ok {
		if err := ctx.Err(); err != nil {
			ctxErr = err
			break
		}
		logits = st.DecodeStep(tok)
		stepAt := time.Now()
		e.met.observeInterToken(stepAt.Sub(last))
		last = stepAt
		tok, ok = stepper.Next(logits, st.Pos, wm.Cfg.MaxSeq)
	}
	res := stepper.Result()
	detected := 0
	if ck != nil {
		detected = ck.Stats().Flagged
		e.met.observeDetection(detected)
	}
	return e.finish(req, start, res.Tokens, res.Steps, &site, ctxErr, inj.Fired, detected, tm)
}

// finish assembles the Response and records the request's metrics,
// spans, and (when SLO-violating) the slow-request log entry.
func (e *Engine) finish(req Request, start time.Time, tokens []int, steps int, site *faults.Site, err error, fired bool, detected int, tm reqTiming) Response {
	latency := time.Since(start)
	resp := Response{
		ID:       req.ID,
		Tokens:   tokens,
		Steps:    steps,
		Latency:  latency,
		Fired:    fired,
		Detected: detected,
		Err:      err,
	}
	if e.cfg.Vocab != nil {
		resp.Text = e.cfg.Vocab.Decode(tokens)
	}
	st := statusOK
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		st = statusDeadline
	case errors.Is(err, context.Canceled):
		st = statusCanceled
	case err != nil:
		st = statusInvalid
	}
	if site != nil {
		resp.Injected = true
		resp.Site = site.String()
		resp.Surface = site.Surface.String()
		e.met.observeInjected()
		if req.Baseline != nil && err == nil {
			an := outcome.Classify(tokens, req.Baseline, tokensEqual(tokens, req.Baseline), outcome.Thresholds{})
			resp.Outcome = an.Class.String()
			e.met.observeOutcome(an.Class)
		}
	}
	e.met.observeRequest(st, latency, len(tokens))
	if tm.sampled {
		resp.Trace = tm.root
		e.recordRequestSpans(resp, st, start, latency, tm, steps)
	}
	if e.cfg.SLO > 0 && latency > e.cfg.SLO {
		e.met.observeSLOViolation()
		e.noteSlow(SlowRequest{
			ID:        req.ID,
			Trace:     tm.root.Trace,
			LatencyMS: float64(latency) / float64(time.Millisecond),
			SLOMS:     float64(e.cfg.SLO) / float64(time.Millisecond),
			Status:    st.String(),
			Injected:  resp.Injected,
			Fired:     fired,
			Site:      resp.Site,
			Surface:   resp.Surface,
			Outcome:   resp.Outcome,
			Detected:  detected,
		})
	}
	return resp
}

// recordRequestSpans emits the sampled request's span tree: a root
// "request" span carrying the outcome annotations, plus queue_wait /
// first_token / decode children when the request got that far.
func (e *Engine) recordRequestSpans(resp Response, st reqStatus, start time.Time, latency time.Duration, tm reqTiming, steps int) {
	rec := e.cfg.Recorder
	attrs := []obs.Attr{
		obs.Str("id", resp.ID),
		obs.Str("status", st.String()),
		obs.Int("tokens", int64(len(resp.Tokens))),
		obs.Int("steps", int64(steps)),
	}
	if resp.Injected {
		attrs = append(attrs,
			obs.Str("site", resp.Site),
			obs.Str("surface", resp.Surface),
			obs.Int("fired", boolInt(resp.Fired)),
			obs.Int("detected", int64(resp.Detected)))
		if resp.Outcome != "" {
			attrs = append(attrs, obs.Str("outcome", resp.Outcome))
		}
	}
	rec.Record(obs.NewSpan(tm.root, tm.parent, "request", start, latency, attrs...))
	if tm.hasTTFT {
		if tm.queueWait > 0 {
			rec.Record(obs.NewSpan(rec.Child(tm.root), tm.root.Span, "queue_wait",
				tm.admitted.Add(-tm.queueWait), tm.queueWait))
		}
		rec.Record(obs.NewSpan(rec.Child(tm.root), tm.root.Span, "first_token",
			start, tm.ttft))
		sp := obs.NewSpan(rec.Child(tm.root), tm.root.Span, "decode",
			tm.admitted, latency-tm.ttft)
		sp.Count = steps
		rec.Record(sp)
	}
}

func boolInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// finishErr records a request that failed before reaching a batch row.
func (e *Engine) finishErr(id string, start time.Time, err error) Response {
	latency := time.Since(start)
	st := statusCanceled
	if errors.Is(err, context.DeadlineExceeded) {
		st = statusDeadline
	}
	e.met.observeRequest(st, latency, 0)
	if e.cfg.SLO > 0 && latency > e.cfg.SLO {
		e.met.observeSLOViolation()
	}
	return Response{ID: id, Latency: latency, Err: err}
}

// tokensEqual reports exact sequence equality.
func tokensEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i, v := range a {
		if v != b[i] {
			return false
		}
	}
	return true
}
