package serve_test

import (
	"context"
	"encoding/json"
	"os"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/numerics"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/serve/loadgen"
	"repro/internal/tasks"
	"repro/internal/trace"
)

// TestEmitObsBenchJSON measures the observability plane's cost on both
// execution planes: a fault-injection campaign (core.Runner with a span
// observer) and the batched serving path (engine with a recorder), each
// with tracing off / sampled every 16th root / every root. Per-arm
// wall-clock and overhead vs the off arm go to BENCH_7.json; the paper
// claim pinned here is that sampled tracing stays within 5% of off.
// Gated behind BENCH7_JSON_OUT so it only runs from `make bench`.
func TestEmitObsBenchJSON(t *testing.T) {
	out := os.Getenv("BENCH7_JSON_OUT")
	if out == "" {
		t.Skip("set BENCH7_JSON_OUT to emit the observability benchmark JSON")
	}

	type arm struct {
		Seconds     float64 `json:"seconds"`
		Spans       int64   `json:"spans"`
		OverheadPct float64 `json:"overhead_pct"`
	}

	// Best-of-5 wall clock: the claim is about the plane's intrinsic
	// cost, not scheduler noise, and the minimum is the stable estimator.
	bestOf := func(f func() int64) arm {
		best := arm{Seconds: -1}
		for i := 0; i < 5; i++ {
			start := time.Now()
			spans := f()
			s := time.Since(start).Seconds()
			if best.Seconds < 0 || s < best.Seconds {
				best = arm{Seconds: s, Spans: spans}
			}
		}
		return best
	}

	// Campaign plane: the same observer wiring cmd/llmfi uses.
	campaign := func() core.Campaign {
		vocab := tasks.GeneralVocab()
		cfg := model.StandardConfig("obsbench", vocab.Size(), numerics.BF16)
		m := model.MustBuild(model.Spec{Config: cfg, Family: model.QwenS, Seed: 21})
		suite := tasks.NewSelfRefSuite("obsbench", 4, 2, 16, 6, []metrics.Kind{metrics.KindBLEU})
		return core.New(m, suite, faults.Comp2Bit, 192, 17, core.WithWorkers(2))
	}
	runCampaign := func(sample int) int64 {
		var ropts []core.RunnerOption
		rec := obs.NewRecorder(obs.Config{Service: "campaign", Sample: sample})
		if rec.Enabled() {
			root := rec.StartTrace()
			ropts = append(ropts, core.WithSpanObserver(func(index int, spans []trace.Span, busy time.Duration) {
				if !rec.SampleRoot() {
					return
				}
				attrs := make([]obs.Attr, 0, len(spans)+1)
				attrs = append(attrs, obs.Int("index", int64(index)))
				for _, ps := range spans {
					attrs = append(attrs, obs.Num(string(ps.Phase)+"_s", ps.Seconds))
				}
				rec.Record(obs.NewSpan(rec.Child(root), root.Span, "trial",
					time.Now().Add(-busy), busy, attrs...))
			}))
		}
		if _, err := core.NewRunner(campaign(), ropts...).Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		return int64(rec.Count())
	}

	// Serving plane: batched engine under loadgen, tracing via Recorder.
	m, vocab := testServeModel(t)
	prompts := testPrompts()
	const (
		streams  = 4
		requests = 256
		maxNew   = 12
	)
	runServe := func(sample int) int64 {
		rec := obs.NewRecorder(obs.Config{Service: "serve", Sample: sample})
		e, stop := startEngine(t, serve.Config{Model: m, Vocab: vocab, Width: streams, Recorder: rec})
		defer stop()
		if _, err := loadgen.Run(context.Background(), e, loadgen.Config{
			Streams: streams, Requests: requests, Prompts: prompts, MaxNew: maxNew, Seed: 900,
		}); err != nil {
			t.Fatal(err)
		}
		stop()
		return int64(rec.Count())
	}

	overhead := func(a, off arm) arm {
		if off.Seconds > 0 {
			a.OverheadPct = (a.Seconds - off.Seconds) / off.Seconds * 100
		}
		return a
	}

	type plane struct {
		Off     arm `json:"off"`
		Sampled arm `json:"sampled_16"`
		Full    arm `json:"full"`
	}
	measure := func(run func(sample int) int64) plane {
		run(0) // warmup
		off := bestOf(func() int64 { return run(0) })
		return plane{
			Off:     off,
			Sampled: overhead(bestOf(func() int64 { return run(16) }), off),
			Full:    overhead(bestOf(func() int64 { return run(1) }), off),
		}
	}

	report := struct {
		Workload string `json:"workload"`
		Campaign plane  `json:"campaign"`
		Serve    plane  `json:"serve"`
	}{
		Workload: "observability overhead: spans off vs sampled(16) vs full, campaign + batched serving",
		Campaign: measure(runCampaign),
		Serve:    measure(runServe),
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("campaign: off=%.3fs sampled=%+.2f%% full=%+.2f%%; serve: off=%.3fs sampled=%+.2f%% full=%+.2f%%",
		report.Campaign.Off.Seconds, report.Campaign.Sampled.OverheadPct, report.Campaign.Full.OverheadPct,
		report.Serve.Off.Seconds, report.Serve.Sampled.OverheadPct, report.Serve.Full.OverheadPct)

	// The acceptance line: sampled tracing costs at most 5% on either
	// plane, and the sampled arms actually recorded spans.
	for name, p := range map[string]plane{"campaign": report.Campaign, "serve": report.Serve} {
		if p.Sampled.OverheadPct > 5.0 {
			t.Errorf("%s: sampled tracing overhead %.2f%% exceeds the 5%% budget", name, p.Sampled.OverheadPct)
		}
		if p.Sampled.Spans == 0 || p.Full.Spans == 0 {
			t.Errorf("%s: traced arms recorded no spans (sampled=%d full=%d)", name, p.Sampled.Spans, p.Full.Spans)
		}
		if p.Off.Spans != 0 {
			t.Errorf("%s: off arm recorded %d spans", name, p.Off.Spans)
		}
	}
}
