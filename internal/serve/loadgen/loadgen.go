// Package loadgen drives deterministic concurrent request streams at a
// serving engine — the measurement harness behind fig_serving and the
// serving scenario tests. Request r always carries prompt
// Prompts[r%len(Prompts)], id "r%05d", and seed Seed+r, and stream k
// owns requests k, k+Streams, k+2·Streams, … — a strided assignment
// with no shared counter, so the request set (and, over a bit-identical
// engine, the response token set) is a pure function of the Config
// regardless of scheduling interleavings.
package loadgen

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/serve"
)

// Target serves one request to completion. *serve.Engine implements it
// directly; HTTPTarget adapts a remote endpoint.
type Target interface {
	Submit(ctx context.Context, req serve.Request) serve.Response
}

// Config shapes the generated load.
type Config struct {
	// Streams is the number of concurrent request streams (default 1).
	Streams int
	// Requests is the total request count.
	Requests int
	// Prompts are cycled through by request index (required).
	Prompts [][]int
	// Baselines, when non-nil, parallels Prompts with fault-free outputs
	// for outcome classification.
	Baselines [][]int
	// MaxNew bounds each request's generation (0 = engine default).
	MaxNew int
	// Deadline, when positive, is attached to every request.
	Deadline time.Duration
	// Seed offsets the per-request fault-sampling seeds.
	Seed uint64
	// SLO, when positive, counts client-side latency violations.
	SLO time.Duration
}

// Stats aggregates a run.
type Stats struct {
	// Responses holds every response, indexed by request number.
	Responses []serve.Response
	// OK, DeadlineExceeded, Canceled, and Failed partition the requests.
	OK, DeadlineExceeded, Canceled, Failed int
	// Injected and Fired count campaign-mode faults.
	Injected, Fired int
	// Outcomes tallies classified outcomes by class name.
	Outcomes map[string]int
	// P50, P90, P99, and Max summarize client-observed latency.
	P50, P90, P99, Max time.Duration
	// SLOViolations counts responses slower than Config.SLO.
	SLOViolations int
}

// Run fires cfg.Requests requests at tgt over cfg.Streams concurrent
// streams and aggregates the responses. Cancelling ctx stops the
// streams at their next request boundary; responses already in flight
// are kept.
func Run(ctx context.Context, tgt Target, cfg Config) (*Stats, error) {
	if cfg.Requests <= 0 {
		return nil, fmt.Errorf("loadgen: Requests must be positive")
	}
	if len(cfg.Prompts) == 0 {
		return nil, fmt.Errorf("loadgen: at least one prompt is required")
	}
	if cfg.Streams <= 0 {
		cfg.Streams = 1
	}
	if cfg.Baselines != nil && len(cfg.Baselines) != len(cfg.Prompts) {
		return nil, fmt.Errorf("loadgen: Baselines must parallel Prompts")
	}

	st := &Stats{
		Responses: make([]serve.Response, cfg.Requests),
		Outcomes:  map[string]int{},
	}
	var wg sync.WaitGroup
	for k := 0; k < cfg.Streams; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			for r := k; r < cfg.Requests; r += cfg.Streams {
				if ctx.Err() != nil {
					return
				}
				st.Responses[r] = tgt.Submit(ctx, buildRequest(cfg, r))
			}
		}(k)
	}
	wg.Wait()

	var lats []time.Duration
	for _, resp := range st.Responses {
		switch {
		case resp.Err == nil:
			st.OK++
		case resp.Err == context.DeadlineExceeded:
			st.DeadlineExceeded++
		case resp.Err == context.Canceled:
			st.Canceled++
		default:
			st.Failed++
		}
		if resp.Injected {
			st.Injected++
		}
		if resp.Fired {
			st.Fired++
		}
		if resp.Outcome != "" {
			st.Outcomes[resp.Outcome]++
		}
		if resp.Latency > 0 {
			lats = append(lats, resp.Latency)
			if cfg.SLO > 0 && resp.Latency > cfg.SLO {
				st.SLOViolations++
			}
		}
	}
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		st.P50 = percentile(lats, 0.50)
		st.P90 = percentile(lats, 0.90)
		st.P99 = percentile(lats, 0.99)
		st.Max = lats[len(lats)-1]
	}
	return st, nil
}

// buildRequest materializes request r of the configured load.
func buildRequest(cfg Config, r int) serve.Request {
	i := r % len(cfg.Prompts)
	req := serve.Request{
		ID:       fmt.Sprintf("r%05d", r),
		Prompt:   cfg.Prompts[i],
		MaxNew:   cfg.MaxNew,
		Deadline: cfg.Deadline,
		Seed:     cfg.Seed + uint64(r),
	}
	if cfg.Baselines != nil {
		req.Baseline = cfg.Baselines[i]
	}
	return req
}

// percentile reads the q-quantile from an ascending latency slice.
func percentile(sorted []time.Duration, q float64) time.Duration {
	idx := int(q * float64(len(sorted)))
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
