package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/report"
	"repro/internal/serve"
	"repro/internal/token"
)

// HTTPTarget fires requests at a remote serving endpoint over the wire
// API — the loadgen arm of the CI serve-smoke job. Token prompts are
// rendered to words through the vocabulary (the wire format carries
// text), so special tokens are elided; use the in-process Engine target
// when exact prompt-token fidelity matters.
type HTTPTarget struct {
	// Base is the server root, e.g. "http://127.0.0.1:9419".
	Base string
	// Vocab renders prompt tokens to wire text.
	Vocab *token.Vocab
	// Client defaults to http.DefaultClient.
	Client *http.Client
}

// Submit implements Target over the wire API.
func (t *HTTPTarget) Submit(ctx context.Context, req serve.Request) serve.Response {
	start := time.Now()
	fail := func(err error) serve.Response {
		return serve.Response{ID: req.ID, Latency: time.Since(start), Err: err}
	}
	wire := map[string]any{
		"id":     req.ID,
		"prompt": t.Vocab.Decode(req.Prompt),
		"seed":   req.Seed,
	}
	if req.MaxNew > 0 {
		wire["max_tokens"] = req.MaxNew
	}
	if req.Deadline > 0 {
		wire["deadline_ms"] = req.Deadline.Milliseconds()
	}
	body, err := json.Marshal(wire)
	if err != nil {
		return fail(err)
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost,
		t.Base+report.APIVersion+"/generate", bytes.NewReader(body))
	if err != nil {
		return fail(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	client := t.Client
	if client == nil {
		client = http.DefaultClient
	}
	hres, err := client.Do(hreq)
	if err != nil {
		return fail(err)
	}
	defer hres.Body.Close()
	data, err := io.ReadAll(io.LimitReader(hres.Body, 1<<20))
	if err != nil {
		return fail(err)
	}
	if hres.StatusCode != http.StatusOK {
		// Deliberately tolerant sniff: the error body may be a typed
		// envelope or proxy plaintext; extra fields must not hide it.
		var env report.APIError
		if json.Unmarshal(data, &env) == nil && env.Error.Code != "" { //llmfi:allow wireschema error-envelope sniff is tolerant by design
			return fail(fmt.Errorf("loadgen: %s (%d): %s", env.Error.Code, hres.StatusCode, env.Error.Message))
		}
		return fail(fmt.Errorf("loadgen: status %d", hres.StatusCode))
	}
	// Strict decode of the success payload: this struct mirrors the
	// server's wireGenerateResponse field-for-field (latency_ms included,
	// even though the harness reports its own client-observed latency),
	// so serve-side schema growth breaks the loadgen loudly.
	var out struct {
		ID        string  `json:"id"`
		Text      string  `json:"text"`
		Tokens    []int   `json:"tokens"`
		Steps     int     `json:"steps"`
		LatencyMS float64 `json:"latency_ms"`
		Injected  bool    `json:"injected"`
		Fired     bool    `json:"fired"`
		Site      string  `json:"site"`
		Surface   string  `json:"surface"`
		Outcome   string  `json:"outcome"`
		Detected  int     `json:"detected"`
	}
	if err := report.StrictUnmarshal(data, &out); err != nil {
		return fail(err)
	}
	return serve.Response{
		ID:       out.ID,
		Tokens:   out.Tokens,
		Text:     out.Text,
		Steps:    out.Steps,
		Latency:  time.Since(start),
		Injected: out.Injected,
		Fired:    out.Fired,
		Site:     out.Site,
		Surface:  out.Surface,
		Outcome:  out.Outcome,
		Detected: out.Detected,
	}
}
