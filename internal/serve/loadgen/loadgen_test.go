package loadgen

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/serve"
)

// fakeTarget scripts responses by request index and records which
// requests arrived, for assertions about the strided assignment.
type fakeTarget struct {
	mu   sync.Mutex
	seen map[string]serve.Request
	resp func(r serve.Request) serve.Response
}

func (f *fakeTarget) Submit(ctx context.Context, req serve.Request) serve.Response {
	f.mu.Lock()
	f.seen[req.ID] = req
	f.mu.Unlock()
	return f.resp(req)
}

func TestLoadgenValidation(t *testing.T) {
	tgt := &fakeTarget{seen: map[string]serve.Request{}}
	if _, err := Run(context.Background(), tgt, Config{Requests: 0, Prompts: [][]int{{1}}}); err == nil {
		t.Fatal("want error for zero requests")
	}
	if _, err := Run(context.Background(), tgt, Config{Requests: 4}); err == nil {
		t.Fatal("want error for no prompts")
	}
	if _, err := Run(context.Background(), tgt, Config{
		Requests: 4, Prompts: [][]int{{1}, {2}}, Baselines: [][]int{{1}},
	}); err == nil {
		t.Fatal("want error for mismatched baselines")
	}
}

// TestLoadgenDeterministicAssignment pins the request construction:
// ids, prompt cycling, per-request seeds, and baselines are pure
// functions of the config, independent of stream count.
func TestLoadgenDeterministicAssignment(t *testing.T) {
	prompts := [][]int{{4, 5}, {6, 7, 8}, {9}}
	baselines := [][]int{{1}, {2}, {3}}
	for _, streams := range []int{1, 3, 8} {
		tgt := &fakeTarget{
			seen: map[string]serve.Request{},
			resp: func(r serve.Request) serve.Response {
				return serve.Response{ID: r.ID, Tokens: r.Prompt, Latency: time.Millisecond}
			},
		}
		st, err := Run(context.Background(), tgt, Config{
			Streams: streams, Requests: 10, Prompts: prompts, Baselines: baselines,
			MaxNew: 6, Seed: 1000,
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(tgt.seen) != 10 || st.OK != 10 {
			t.Fatalf("streams=%d: saw %d requests, %d ok", streams, len(tgt.seen), st.OK)
		}
		for r := 0; r < 10; r++ {
			id := fmt.Sprintf("r%05d", r)
			req, ok := tgt.seen[id]
			if !ok {
				t.Fatalf("streams=%d: request %s never fired", streams, id)
			}
			if req.Seed != 1000+uint64(r) || req.MaxNew != 6 {
				t.Fatalf("streams=%d %s: seed=%d maxNew=%d", streams, id, req.Seed, req.MaxNew)
			}
			if len(req.Prompt) != len(prompts[r%3]) || len(req.Baseline) != len(baselines[r%3]) {
				t.Fatalf("streams=%d %s: prompt/baseline cycling broke", streams, id)
			}
			if len(st.Responses[r].Tokens) != len(prompts[r%3]) {
				t.Fatalf("streams=%d: response %d landed in the wrong slot", streams, r)
			}
		}
	}
}

// TestLoadgenAggregation pins the status partition, latency percentiles,
// and SLO accounting over a scripted response set.
func TestLoadgenAggregation(t *testing.T) {
	tgt := &fakeTarget{
		seen: map[string]serve.Request{},
		resp: func(r serve.Request) serve.Response {
			var n int
			fmt.Sscanf(r.ID, "r%05d", &n)
			resp := serve.Response{ID: r.ID, Latency: time.Duration(n+1) * time.Millisecond}
			switch {
			case n == 0:
				resp.Err = context.DeadlineExceeded
			case n == 1:
				resp.Err = context.Canceled
			case n == 2:
				resp.Err = serve.ErrDraining
			default:
				resp.Injected = true
				resp.Fired = n%2 == 0
				resp.Outcome = "Masked"
			}
			return resp
		},
	}
	st, err := Run(context.Background(), tgt, Config{
		Streams: 4, Requests: 20, Prompts: [][]int{{1}}, SLO: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.OK != 17 || st.DeadlineExceeded != 1 || st.Canceled != 1 || st.Failed != 1 {
		t.Fatalf("partition ok=%d dl=%d cancel=%d failed=%d", st.OK, st.DeadlineExceeded, st.Canceled, st.Failed)
	}
	if st.Injected != 17 || st.Fired != 8 || st.Outcomes["Masked"] != 17 {
		t.Fatalf("injected=%d fired=%d outcomes=%v", st.Injected, st.Fired, st.Outcomes)
	}
	// Latencies are 1..20ms; 10 of them exceed the 10ms SLO.
	if st.SLOViolations != 10 {
		t.Fatalf("slo violations = %d", st.SLOViolations)
	}
	if st.Max != 20*time.Millisecond || st.P50 != 11*time.Millisecond {
		t.Fatalf("max=%v p50=%v", st.Max, st.P50)
	}
	if st.P99 != 20*time.Millisecond {
		t.Fatalf("p99=%v", st.P99)
	}
}

// TestLoadgenCancellation checks streams stop at the next request
// boundary once the context dies.
func TestLoadgenCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	fired := 0
	tgt := &fakeTarget{
		seen: map[string]serve.Request{},
		resp: func(r serve.Request) serve.Response {
			fired++
			if fired == 3 {
				cancel()
			}
			return serve.Response{ID: r.ID}
		},
	}
	st, err := Run(ctx, tgt, Config{Streams: 1, Requests: 100, Prompts: [][]int{{1}}})
	if err != nil {
		t.Fatal(err)
	}
	if fired >= 100 {
		t.Fatalf("cancellation ignored: %d requests fired", fired)
	}
	_ = st
}
