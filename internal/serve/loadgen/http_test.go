package loadgen

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/serve"
	"repro/internal/token"
)

// TestHTTPTargetStrictDecode pins the wire contract between the loadgen
// and the serve endpoint: the full wireGenerateResponse — latency_ms
// included, the field this decode once silently lacked — parses
// cleanly, and an unknown field (schema growth on the server) surfaces
// as an error instead of being dropped.
func TestHTTPTargetStrictDecode(t *testing.T) {
	var payload string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(payload))
	}))
	defer ts.Close()

	tgt := &HTTPTarget{Base: ts.URL, Vocab: token.NewVocab([]string{"a", "b"})}
	req := serve.Request{ID: "r1", Prompt: []int{4}, Seed: 9}

	payload = `{"id":"r1","text":"a b","tokens":[4,5],"steps":2,"latency_ms":1.5,` +
		`"injected":true,"fired":false,"site":"","surface":"","outcome":"ok","detected":0}`
	resp := tgt.Submit(context.Background(), req)
	if resp.Err != nil {
		t.Fatalf("full wire response rejected: %v", resp.Err)
	}
	if resp.ID != "r1" || len(resp.Tokens) != 2 || resp.Steps != 2 || resp.Outcome != "ok" || !resp.Injected {
		t.Fatalf("response mangled: %+v", resp)
	}

	payload = `{"id":"r1","text":"a","tokens":[4],"steps":1,"latency_ms":1,` +
		`"injected":false,"fired":false,"site":"","surface":"","outcome":"ok","detected":0,` +
		`"from_the_future":true}`
	resp = tgt.Submit(context.Background(), req)
	if resp.Err == nil || !strings.Contains(resp.Err.Error(), "from_the_future") {
		t.Fatalf("unknown field not rejected: %v", resp.Err)
	}
}

// TestHTTPTargetErrorEnvelope: error bodies stay tolerant — extra
// envelope fields must not hide the typed error.
func TestHTTPTargetErrorEnvelope(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusTooManyRequests)
		_, _ = w.Write([]byte(`{"error":{"status":429,"code":"overloaded",` +
			`"message":"shed","envelope_extra":1}}`))
	}))
	defer ts.Close()

	tgt := &HTTPTarget{Base: ts.URL, Vocab: token.NewVocab([]string{"a"})}
	resp := tgt.Submit(context.Background(), serve.Request{ID: "r2", Prompt: []int{4}})
	if resp.Err == nil || !strings.Contains(resp.Err.Error(), "overloaded") {
		t.Fatalf("typed error envelope not surfaced: %v", resp.Err)
	}
}
