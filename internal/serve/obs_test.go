package serve_test

import (
	"context"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/mitigate"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/serve/loadgen"
)

// TestTracingGoldenEquivalence is the observational-by-construction
// proof for the serving plane: the same injected campaign with tracing
// off, sampled, and full produces byte-identical response sets. Spans
// read timings; they never touch tokens, fault sites, or outcomes.
func TestTracingGoldenEquivalence(t *testing.T) {
	m, vocab := testServeModel(t)
	prompts := testPrompts()

	run := func(rec *obs.Recorder) *loadgen.Stats {
		e, stop := startEngine(t, serve.Config{
			Model: m, Vocab: vocab, Width: 4, Recorder: rec,
			SLO: time.Nanosecond, // force the slow-request path too
			Inject: &serve.InjectConfig{
				Fault: faults.Comp1Bit, Surfaces: faults.Surfaces, Seed: 77,
				ABFT: &serve.ABFTConfig{Policy: mitigate.PolicyDetect},
			},
		})
		defer stop()
		st, err := loadgen.Run(context.Background(), e, loadgen.Config{
			Streams: 4, Requests: 12, Prompts: prompts, MaxNew: 8, Seed: 31,
		})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}

	ref := run(nil)
	for name, rec := range map[string]*obs.Recorder{
		"sampled": obs.NewRecorder(obs.Config{Service: "serve", Sample: 4}),
		"full":    obs.NewRecorder(obs.Config{Service: "serve", Sample: 1}),
	} {
		got := run(rec)
		if len(got.Responses) != len(ref.Responses) {
			t.Fatalf("%s: %d responses, want %d", name, len(got.Responses), len(ref.Responses))
		}
		for i := range ref.Responses {
			a, b := ref.Responses[i], got.Responses[i]
			if !reflect.DeepEqual(a.Tokens, b.Tokens) || a.Steps != b.Steps ||
				a.Injected != b.Injected || a.Outcome != b.Outcome {
				t.Fatalf("%s: response %d diverged under tracing:\noff  %+v\ntraced %+v", name, i, a, b)
			}
		}
		if rec.Count() == 0 {
			t.Fatalf("%s: recorder captured no spans", name)
		}
	}
}

// TestRequestSpans: a fully-sampled engine emits a root request span
// with queue/first-token/decode children sharing one trace.
func TestRequestSpans(t *testing.T) {
	m, vocab := testServeModel(t)
	rec := obs.NewRecorder(obs.Config{Service: "serve", Sample: 1})
	e, stop := startEngine(t, serve.Config{Model: m, Vocab: vocab, Width: 2, Recorder: rec})
	defer stop()

	resp := e.Submit(context.Background(), serve.Request{ID: "sp1", Prompt: []int{5, 9, 17}, MaxNew: 6})
	if resp.Err != nil {
		t.Fatal(resp.Err)
	}
	if !resp.Trace.Valid() {
		t.Fatalf("sampled response carries no trace context: %+v", resp.Trace)
	}
	stop()

	spans := rec.Recent(0)
	byName := map[string]obs.Span{}
	for _, sp := range spans {
		if sp.Trace == resp.Trace.Trace {
			byName[sp.Name] = sp
		}
	}
	root, ok := byName["request"]
	if !ok {
		t.Fatalf("no request root span; got %v", byName)
	}
	if root.ID != resp.Trace.Span {
		t.Fatalf("root span ID %s != response trace span %s", root.ID, resp.Trace.Span)
	}
	for _, child := range []string{"first_token", "decode"} {
		sp, ok := byName[child]
		if !ok {
			t.Fatalf("missing %s child span; got %v", child, byName)
		}
		if sp.Parent != root.ID {
			t.Fatalf("%s span parent %s, want root %s", child, sp.Parent, root.ID)
		}
	}
	if byName["decode"].Count == 0 {
		t.Fatal("decode span carries no step count")
	}
}

// TestHandlerTraceparent pins the wire contract: malformed or foreign
// traceparent headers are ignored (200, no error envelope, no echo of
// garbage), a valid one is continued — the response's traceparent
// carries the same trace ID.
func TestHandlerTraceparent(t *testing.T) {
	m, vocab := testServeModel(t)
	rec := obs.NewRecorder(obs.Config{Service: "serve", Sample: 1})
	e, stop := startEngine(t, serve.Config{Model: m, Vocab: vocab, Recorder: rec})
	defer stop()
	h := e.Handler()

	post := func(tp string) *httptest.ResponseRecorder {
		req := httptest.NewRequest(http.MethodPost, "/api/v1/generate",
			strings.NewReader(`{"id":"tp","prompt":"w05 w09","max_tokens":4}`))
		req.Header.Set("Content-Type", "application/json")
		if tp != "" {
			req.Header.Set(obs.TraceparentHeader, tp)
		}
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		return w
	}

	// Malformed headers must never fail the request.
	for _, bad := range []string{
		"zz-not-a-traceparent",
		"00-00000000000000000000000000000000-0000000000000000-01",
		"01-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",
		strings.Repeat("0", 55),
	} {
		w := post(bad)
		if w.Code != http.StatusOK {
			t.Fatalf("traceparent %q: status %d, want 200 (malformed headers are ignored)", bad, w.Code)
		}
	}

	// A valid context is continued: same trace ID on the response header.
	in := obs.SpanContext{Trace: "0af7651916cd43dd8448eb211c80319c", Span: "b7ad6b7169203331"}
	w := post(in.Traceparent())
	if w.Code != http.StatusOK {
		t.Fatalf("valid traceparent: status %d", w.Code)
	}
	got, ok := obs.ParseTraceparent(w.Header().Get(obs.TraceparentHeader))
	if !ok {
		t.Fatalf("response carries no parseable traceparent (header %q)", w.Header().Get(obs.TraceparentHeader))
	}
	if got.Trace != in.Trace {
		t.Fatalf("response trace %s, want continuation of %s", got.Trace, in.Trace)
	}
	if got.Span == in.Span {
		t.Fatal("response echoed the caller's span ID instead of minting its own")
	}
}

// TestServeMetricsSurface: /metrics leads with llmfi_build_info and
// includes the serving-depth histograms; /debug/fleet renders.
func TestServeMetricsSurface(t *testing.T) {
	m, vocab := testServeModel(t)
	rec := obs.NewRecorder(obs.Config{Service: "serve", Sample: 1})
	e, stop := startEngine(t, serve.Config{Model: m, Vocab: vocab, Recorder: rec, SLO: time.Nanosecond})
	defer stop()
	if resp := e.Submit(context.Background(), serve.Request{ID: "m1", Prompt: []int{5, 9}, MaxNew: 4}); resp.Err != nil {
		t.Fatal(resp.Err)
	}
	h := e.Handler()

	get := func(path string) *httptest.ResponseRecorder {
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, path, nil))
		return w
	}

	mw := get("/metrics")
	if mw.Code != http.StatusOK {
		t.Fatalf("/metrics: status %d", mw.Code)
	}
	body := mw.Body.String()
	for _, want := range []string{
		"llmfi_build_info{version=",
		`schema="` + "1" + `"} 1`,
		"llmfi_serve_ttft_seconds_bucket",
		"llmfi_serve_inter_token_seconds_bucket",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if !strings.HasPrefix(body, "# HELP llmfi_build_info") {
		t.Error("/metrics does not lead with llmfi_build_info")
	}

	dw := get("/debug/fleet")
	if dw.Code != http.StatusOK {
		t.Fatalf("/debug/fleet: status %d", dw.Code)
	}
	for _, want := range []string{"<html", "serving", "llmfi_build_info"} {
		if !strings.Contains(dw.Body.String(), want) {
			t.Errorf("/debug/fleet missing %q", want)
		}
	}

	// The SLO-violation slow log carries the trace ID annotation.
	slow := e.SlowRequests()
	if len(slow) == 0 {
		t.Fatal("no slow requests recorded under a 1ns SLO")
	}
	if slow[0].Trace == "" {
		t.Errorf("slow request lacks a trace ID: %+v", slow[0])
	}
}
