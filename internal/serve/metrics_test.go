package serve

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/outcome"
)

// TestMetricsGoldenExposition pins the Prometheus text rendering of the
// serving metrics byte-for-byte against testdata/metrics_golden.txt —
// family names, label order, histogram bucket bounds, and cumulative
// semantics are all part of the scrape contract.
func TestMetricsGoldenExposition(t *testing.T) {
	m := NewMetrics()
	m.requestStarted()
	m.requestStarted()
	m.requestDone()
	m.observeRequest(statusOK, 3*time.Millisecond, 5)
	m.observeRequest(statusOK, 100*time.Millisecond, 7)
	m.observeRequest(statusDeadline, 250*time.Millisecond, 2)
	m.observeRejected(statusInvalid)
	m.observeRejected(statusDraining)
	m.observeSLOViolation()
	m.observeInjected()
	m.observeInjected()
	m.observeDetection(3)
	m.observeOutcome(outcome.Masked)
	m.observeOutcome(outcome.SDCDistorted)
	m.observeTTFT(2 * time.Millisecond)
	m.observeTTFT(30 * time.Millisecond)
	m.observeInterToken(500 * time.Microsecond)
	m.observeInterToken(500 * time.Microsecond)
	m.observeInterToken(700 * time.Microsecond)

	var b strings.Builder
	if err := WriteMetricsText(&b, m.Snapshot()); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join("testdata", "metrics_golden.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if b.String() != string(want) {
		t.Fatalf("exposition drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", b.String(), want)
	}
}

// TestMetricsHistogramBuckets pins the bucket edges: le semantics
// (latency equal to a bound lands in that bucket) and +Inf overflow.
func TestMetricsHistogramBuckets(t *testing.T) {
	m := NewMetrics()
	m.observeRequest(statusOK, time.Microsecond, 0)   // == first bound
	m.observeRequest(statusOK, 2*time.Microsecond, 0) // == second bound
	m.observeRequest(statusOK, 40*time.Second, 0)     // past the last bound
	s := m.Snapshot()
	if s.LatBuckets[0] != 1 || s.LatBuckets[1] != 1 {
		t.Fatalf("boundary latencies landed in %v", s.LatBuckets[:3])
	}
	if s.LatBuckets[nLatencyBuckets] != 1 {
		t.Fatalf("+Inf bucket = %d", s.LatBuckets[nLatencyBuckets])
	}
	if s.LatCount != 3 {
		t.Fatalf("count = %d", s.LatCount)
	}
}

// TestReqStatusNames pins the metric label values.
func TestReqStatusNames(t *testing.T) {
	want := map[reqStatus]string{
		statusOK:       "ok",
		statusInvalid:  "invalid",
		statusDeadline: "deadline_exceeded",
		statusCanceled: "canceled",
		statusDraining: "draining",
	}
	for st, name := range want {
		if st.String() != name {
			t.Errorf("%d.String() = %q, want %q", int(st), st.String(), name)
		}
	}
}
