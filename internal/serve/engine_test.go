package serve_test

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/gen"
	"repro/internal/mitigate"
	"repro/internal/model"
	"repro/internal/numerics"
	"repro/internal/serve"
	"repro/internal/serve/loadgen"
	"repro/internal/token"
)

// testServeModel builds the tiny deterministic model and matching
// vocabulary the serving scenario tests run on.
func testServeModel(t testing.TB) (*model.Model, *token.Vocab) {
	t.Helper()
	words := make([]string, 28)
	for i := range words {
		words[i] = fmt.Sprintf("w%02d", i)
	}
	vocab := token.NewVocab(words)
	cfg := model.Config{
		Name: "serve-test", Vocab: vocab.Size(), DModel: 16, NHeads: 2,
		NBlocks: 3, FFHidden: 24, MaxSeq: 48, Eps: 1e-5,
		DType: numerics.BF16, RopeTheta: 10000,
	}
	return model.MustBuild(model.Spec{Config: cfg, Family: model.QwenS, Seed: 7}), vocab
}

// testPrompts is a fixed prompt set (token ids all in-vocab).
func testPrompts() [][]int {
	return [][]int{
		{5, 9, 17, 4},
		{21, 6, 30, 11, 8},
		{12, 25, 7},
		{18, 18, 4, 29, 15, 10},
	}
}

// baselinesFor decodes each prompt fault-free through the serial
// generator — the reference the batched serving path must match
// bit-identically.
func baselinesFor(m *model.Model, prompts [][]int, maxNew int) [][]int {
	out := make([][]int, len(prompts))
	for i, p := range prompts {
		out[i] = gen.Generate(m, p, gen.Defaults(maxNew)).Tokens
	}
	return out
}

// startEngine launches cfg's engine with a running scheduler and returns
// it with a stop function (idempotent) that drains and waits for Run.
func startEngine(t *testing.T, cfg serve.Config) (*serve.Engine, func()) {
	t.Helper()
	e, err := serve.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() { runDone <- e.Run(ctx) }()
	var once sync.Once
	stop := func() {
		once.Do(func() {
			cancel()
			if err := <-runDone; err != nil {
				t.Errorf("Run: %v", err)
			}
		})
	}
	t.Cleanup(stop)
	return e, stop
}

// TestServeLoadgenGolden is the deterministic end-to-end scenario: N
// concurrent requests with fixed seeds produce a byte-identical response
// set, equal to serial generation, regardless of stream count or batch
// composition.
func TestServeLoadgenGolden(t *testing.T) {
	m, vocab := testServeModel(t)
	prompts := testPrompts()
	const maxNew = 12
	want := baselinesFor(m, prompts, maxNew)

	run := func(streams, width int) *loadgen.Stats {
		e, stop := startEngine(t, serve.Config{Model: m, Vocab: vocab, Width: width})
		defer stop()
		st, err := loadgen.Run(context.Background(), e, loadgen.Config{
			Streams: streams, Requests: 16, Prompts: prompts, MaxNew: maxNew, Seed: 900,
		})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}

	ref := run(1, 1)
	if ref.OK != 16 || ref.Failed != 0 {
		t.Fatalf("serial reference: %d ok, %d failed", ref.OK, ref.Failed)
	}
	for r, resp := range ref.Responses {
		if !reflect.DeepEqual(resp.Tokens, want[r%len(prompts)]) {
			t.Fatalf("request %d: served %v, serial baseline %v", r, resp.Tokens, want[r%len(prompts)])
		}
		if wantText := vocab.Decode(resp.Tokens); resp.Text != wantText {
			t.Fatalf("request %d: text %q, want %q", r, resp.Text, wantText)
		}
	}
	for _, streams := range []int{4, 8} {
		st := run(streams, 8)
		if st.OK != 16 {
			t.Fatalf("streams=%d: %d ok", streams, st.OK)
		}
		for r := range st.Responses {
			if !reflect.DeepEqual(st.Responses[r].Tokens, ref.Responses[r].Tokens) {
				t.Fatalf("streams=%d request %d: %v, want %v",
					streams, r, st.Responses[r].Tokens, ref.Responses[r].Tokens)
			}
		}
	}
}

// TestServeDeadlineExceeded pins the deadline path: an already-expired
// per-request deadline surfaces as context.DeadlineExceeded and counts
// under the deadline_exceeded status.
func TestServeDeadlineExceeded(t *testing.T) {
	m, vocab := testServeModel(t)
	e, stop := startEngine(t, serve.Config{Model: m, Vocab: vocab})
	defer stop()
	resp := e.Submit(context.Background(), serve.Request{
		ID: "dl", Prompt: testPrompts()[0], MaxNew: 8, Deadline: time.Nanosecond,
	})
	if !errors.Is(resp.Err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", resp.Err)
	}
	if got := e.Metrics().Snapshot().Requests[serve.StatusDeadlineForTest]; got != 1 {
		t.Fatalf("deadline_exceeded count = %d", got)
	}
}

// TestServeCancelMidRequest cancels a request that is already admitted:
// the engine is started only after the request is enqueued and its
// context cancelled, so the scheduler deterministically sweeps it out
// with context.Canceled.
func TestServeCancelMidRequest(t *testing.T) {
	m, vocab := testServeModel(t)
	e, err := serve.NewEngine(serve.Config{Model: m, Vocab: vocab})
	if err != nil {
		t.Fatal(err)
	}
	reqCtx, cancelReq := context.WithCancel(context.Background())
	respCh := make(chan serve.Response, 1)
	go func() {
		respCh <- e.Submit(reqCtx, serve.Request{ID: "c", Prompt: testPrompts()[1], MaxNew: 8})
	}()
	// The request sits in the queue (no scheduler yet); cancel it, then
	// start the scheduler, which must retire it as canceled.
	time.Sleep(10 * time.Millisecond)
	cancelReq()
	runCtx, cancelRun := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() { runDone <- e.Run(runCtx) }()
	resp := <-respCh
	if !errors.Is(resp.Err, context.Canceled) {
		t.Fatalf("err = %v, want canceled", resp.Err)
	}
	if got := e.Metrics().Snapshot().Requests[serve.StatusCanceledForTest]; got != 1 {
		t.Fatalf("canceled count = %d", got)
	}
	cancelRun()
	if err := <-runDone; err != nil {
		t.Fatal(err)
	}
}

// TestServeGracefulDrain pins the shutdown contract: after Run's context
// is cancelled, every submitted request resolves (completed or
// serve.ErrDraining, nothing lost or hung), Run returns, later Submits get
// serve.ErrDraining, and the in-flight gauge returns to zero.
func TestServeGracefulDrain(t *testing.T) {
	m, vocab := testServeModel(t)
	e, err := serve.NewEngine(serve.Config{Model: m, Vocab: vocab, Width: 2})
	if err != nil {
		t.Fatal(err)
	}
	runCtx, cancelRun := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() { runDone <- e.Run(runCtx) }()

	const n = 12
	resps := make([]serve.Response, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resps[i] = e.Submit(context.Background(), serve.Request{
				ID: fmt.Sprintf("g%d", i), Prompt: testPrompts()[i%4], MaxNew: 10,
			})
		}(i)
	}
	time.Sleep(2 * time.Millisecond) // let some requests reach the batch
	cancelRun()
	wg.Wait()
	if err := <-runDone; err != nil {
		t.Fatal(err)
	}

	completed, drained := 0, 0
	for i, r := range resps {
		switch {
		case r.Err == nil:
			completed++
		case errors.Is(r.Err, serve.ErrDraining):
			drained++
		default:
			t.Fatalf("request %d: unexpected error %v", i, r.Err)
		}
	}
	if completed+drained != n {
		t.Fatalf("accounted %d+%d of %d requests", completed, drained, n)
	}
	s := e.Metrics().Snapshot()
	if s.InFlight != 0 {
		t.Fatalf("in-flight gauge %d after drain", s.InFlight)
	}
	if s.Requests[serve.StatusOKForTest] != int64(completed) || s.Requests[serve.StatusDrainingForTest] < int64(drained) {
		t.Fatalf("status counters %v vs completed=%d drained=%d", s.Requests, completed, drained)
	}

	resp := e.Submit(context.Background(), serve.Request{ID: "late", Prompt: testPrompts()[0], MaxNew: 4})
	if !errors.Is(resp.Err, serve.ErrDraining) {
		t.Fatalf("post-drain Submit err = %v, want ErrDraining", resp.Err)
	}
}

// TestServeInvalidRequests pins request validation.
func TestServeInvalidRequests(t *testing.T) {
	m, vocab := testServeModel(t)
	e, stop := startEngine(t, serve.Config{Model: m, Vocab: vocab, MaxNewCap: 16})
	defer stop()
	cases := []serve.Request{
		{ID: "empty"},
		{ID: "negative", Prompt: []int{5}, MaxNew: -1},
		{ID: "over-cap", Prompt: []int{5}, MaxNew: 17},
		{ID: "too-long", Prompt: make([]int, 40), MaxNew: 16},
	}
	for _, req := range cases {
		if resp := e.Submit(context.Background(), req); !errors.Is(resp.Err, serve.ErrInvalid) {
			t.Fatalf("%s: err = %v, want ErrInvalid", req.ID, resp.Err)
		}
	}
	if got := e.Metrics().Snapshot().Requests[serve.StatusInvalidForTest]; got != int64(len(cases)) {
		t.Fatalf("invalid count = %d, want %d", got, len(cases))
	}
}

// campaignStats runs one injection campaign over the engine and renders
// each response as a comparable line (latency excluded — everything else
// must be a pure function of the load config).
func campaignStats(t *testing.T, m *model.Model, vocab *token.Vocab, streams int) []string {
	t.Helper()
	prompts := testPrompts()
	const maxNew = 10
	e, stop := startEngine(t, serve.Config{
		Model: m, Vocab: vocab, Width: 4,
		Inject: &serve.InjectConfig{
			Fault:    faults.Comp1Bit,
			Surfaces: faults.Surfaces,
			Seed:     4242,
			ABFT:     &serve.ABFTConfig{Policy: mitigate.PolicyDetect},
		},
	})
	defer stop()
	st, err := loadgen.Run(context.Background(), e, loadgen.Config{
		Streams: streams, Requests: 24, Prompts: prompts,
		Baselines: baselinesFor(m, prompts, maxNew),
		MaxNew:    maxNew, Seed: 31,
	})
	if err != nil {
		t.Fatal(err)
	}
	lines := make([]string, len(st.Responses))
	for i, r := range st.Responses {
		lines[i] = fmt.Sprintf("%s tok=%v fired=%v site=%q surf=%s out=%s det=%d err=%v",
			r.ID, r.Tokens, r.Fired, r.Site, r.Surface, r.Outcome, r.Detected, r.Err)
	}
	return lines
}

// TestServeCampaignDeterminism pins the live-campaign trial contract:
// with all five surfaces armed and ABFT in site policy, every
// per-request result (tokens, site, fired, outcome, detection) is
// identical across runs AND across stream counts — fault sites depend
// only on (campaign seed, request seed), never on batch composition.
func TestServeCampaignDeterminism(t *testing.T) {
	m, vocab := testServeModel(t)
	a := campaignStats(t, m, vocab, 6)
	b := campaignStats(t, m, vocab, 6)
	c := campaignStats(t, m, vocab, 1)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("rerun diverged at request %d:\n%s\n%s", i, a[i], b[i])
		}
		if a[i] != c[i] {
			t.Fatalf("stream count changed request %d:\n%s\n%s", i, a[i], c[i])
		}
	}
	// The campaign must actually have injected and classified.
	injected := 0
	for _, line := range a {
		if line != "" {
			injected++
		}
	}
	if injected != 24 {
		t.Fatalf("expected 24 responses, got %d", injected)
	}
}

// TestServeCampaignClassification checks campaign-mode bookkeeping: all
// responses report injection, outcomes are classified against baselines,
// and weight-resident surfaces really did take the serial path (their
// site strings name norm/embed storage).
func TestServeCampaignClassification(t *testing.T) {
	m, vocab := testServeModel(t)
	prompts := testPrompts()
	const maxNew = 10
	e, stop := startEngine(t, serve.Config{
		Model: m, Vocab: vocab, Width: 4,
		Inject: &serve.InjectConfig{Fault: faults.Comp1Bit, Surfaces: faults.Surfaces, Seed: 77},
	})
	defer stop()
	st, err := loadgen.Run(context.Background(), e, loadgen.Config{
		Streams: 8, Requests: 32, Prompts: prompts,
		Baselines: baselinesFor(m, prompts, maxNew),
		MaxNew:    maxNew, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.OK != 32 {
		t.Fatalf("%d ok of 32 (failed=%d)", st.OK, st.Failed)
	}
	if st.Injected != 32 {
		t.Fatalf("injected=%d, want 32", st.Injected)
	}
	surfaces := map[string]int{}
	outcomes := 0
	for _, r := range st.Responses {
		surfaces[r.Surface]++
		if r.Outcome != "" {
			outcomes++
		}
	}
	if outcomes != 32 {
		t.Fatalf("classified %d of 32", outcomes)
	}
	if len(surfaces) < 3 {
		t.Fatalf("surface spread too narrow: %v", surfaces)
	}
	snap := e.Metrics().Snapshot()
	if snap.Injected != 32 {
		t.Fatalf("metrics injected=%d", snap.Injected)
	}
	var outSum int64
	for _, v := range snap.Outcomes {
		outSum += v
	}
	if outSum != 32 {
		t.Fatalf("metrics outcomes sum=%d", outSum)
	}
	// A fresh engine must serve the clean baseline afterwards: no trial
	// left residue in the shared weights.
	clean, stopClean := startEngine(t, serve.Config{Model: m, Vocab: vocab})
	defer stopClean()
	want := baselinesFor(m, prompts, maxNew)
	for i, p := range prompts {
		resp := clean.Submit(context.Background(), serve.Request{ID: "post", Prompt: p, MaxNew: maxNew})
		if !reflect.DeepEqual(resp.Tokens, want[i]) {
			t.Fatalf("prompt %d corrupted after campaign: %v vs %v", i, resp.Tokens, want[i])
		}
	}
}
