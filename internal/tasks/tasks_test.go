package tasks

import (
	"strconv"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/prng"
	"repro/internal/token"
)

func TestMCSuiteDeterministic(t *testing.T) {
	a, err := NewMCSuite("mmlu", 7, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := NewMCSuite("mmlu", 7, 5)
	for i := range a.Instances {
		if a.Instances[i].ID != b.Instances[i].ID {
			t.Fatal("IDs differ")
		}
		for j := range a.Instances[i].Prompt {
			if a.Instances[i].Prompt[j] != b.Instances[i].Prompt[j] {
				t.Fatal("prompts differ across builds")
			}
		}
	}
	c, _ := NewMCSuite("mmlu", 8, 5)
	if c.Instances[0].Prompt[2] == a.Instances[0].Prompt[2] &&
		c.Instances[1].Prompt[2] == a.Instances[1].Prompt[2] &&
		c.Instances[2].Prompt[2] == a.Instances[2].Prompt[2] {
		t.Fatal("different seeds produced identical prompts")
	}
}

func TestAllMCSuitesWellFormed(t *testing.T) {
	for _, name := range MCSuiteNames() {
		s, err := NewMCSuite(name, 3, 6)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if s.Type != MultipleChoice {
			t.Fatalf("%s: wrong type", name)
		}
		for _, inst := range s.Instances {
			if len(inst.Options) < 2 {
				t.Fatalf("%s: instance with %d options", name, len(inst.Options))
			}
			if inst.Gold < 0 || inst.Gold >= len(inst.Options) {
				t.Fatalf("%s: gold out of range", name)
			}
			for _, opt := range inst.Options {
				for _, id := range opt {
					if id < token.NumReserved || id >= s.Vocab.Size() {
						t.Fatalf("%s: option token %d out of vocab", name, id)
					}
				}
			}
		}
	}
	if _, err := NewMCSuite("nope", 1, 1); err == nil {
		t.Fatal("unknown suite should error")
	}
}

func TestWinograndeHasTwoOptions(t *testing.T) {
	s, _ := NewMCSuite("winogrande", 1, 3)
	for _, inst := range s.Instances {
		if len(inst.Options) != 2 {
			t.Fatal("winogrande is binary choice")
		}
	}
}

func TestMathCompletionCorrect(t *testing.T) {
	mt := NewMathTask(9)
	f := func(aR, bR, cR uint8) bool {
		p := Problem{A: int(aR % 10), B: int(bR % 10), C: int(cR % 10)}
		cot := mt.Completion(p, true)
		if mt.ExtractAnswer(cot) != p.Answer() {
			return false
		}
		direct := mt.Completion(p, false)
		return mt.ExtractAnswer(direct) == p.Answer()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMathExtractAnswerFallback(t *testing.T) {
	mt := NewMathTask(9)
	v := mt.Vocab()
	// No '#': fall back to last number.
	toks := []int{v.ID("3"), v.ID("+"), v.ID("5")}
	if mt.ExtractAnswer(toks) != 5 {
		t.Fatal("fallback to last number failed")
	}
	// No numbers at all.
	if mt.ExtractAnswer([]int{v.ID("+"), v.ID(";")}) != -1 {
		t.Fatal("no-number extraction should be -1")
	}
}

func TestMathReasoningLength(t *testing.T) {
	mt := NewMathTask(9)
	p := Problem{A: 1, B: 2, C: 3}
	cot := mt.Completion(p, true)
	rl := mt.ReasoningLength(cot)
	if rl != 12 {
		t.Fatalf("reasoning length = %d, want 12", rl)
	}
	direct := mt.Completion(p, false)
	if mt.ReasoningLength(direct) != 0 {
		t.Fatal("direct mode reasoning length should be 0")
	}
}

func TestMathCorruptInputsPreservesLabelsRegion(t *testing.T) {
	mt := NewMathTask(9)
	p := Problem{A: 3, B: 4, C: 5}
	prompt := mt.Prompt(p, true)
	completion := mt.Completion(p, true)
	seq := append(append([]int{}, prompt...), completion...)
	changed := 0
	for i := 0; i < 400; i++ {
		inputs := append([]int(nil), seq...)
		out := mt.CorruptInputs(prng.New(uint64(i)), inputs, len(prompt))
		diffs := 0
		for j := range out {
			if out[j] != seq[j] {
				diffs++
				if j < len(prompt) {
					t.Fatal("corruption touched the prompt region")
				}
			}
		}
		if diffs > 1 {
			t.Fatalf("corrupted %d positions, want <= 1", diffs)
		}
		if diffs == 1 {
			changed++
		}
	}
	if changed == 0 || changed == 400 {
		t.Fatalf("corruption rate %d/400 implausible for NoiseProb %.2f", changed, NoiseProb)
	}
}

func TestMathSuiteModes(t *testing.T) {
	mt := NewMathTask(9)
	cot := mt.Suite(3, 5, true)
	direct := mt.Suite(3, 5, false)
	if cot.Instances[0].MaxNew <= direct.Instances[0].MaxNew {
		t.Fatal("CoT suite should allow longer generations")
	}
	v := mt.Vocab()
	if cot.Instances[0].Prompt[1] != v.ID(MathSolve) {
		t.Fatal("CoT prompt should start with solve marker")
	}
	if direct.Instances[0].Prompt[1] != v.ID(MathDirect) {
		t.Fatal("direct prompt should start with direct marker")
	}
	// Same seed: same problems in both modes.
	if cot.Instances[2].Reference != direct.Instances[2].Reference {
		t.Fatal("modes should share problems for a given seed")
	}
}

func TestTranslationMappingBijective(t *testing.T) {
	tt := NewTranslationTask()
	seen := map[string]bool{}
	for _, p := range translationPairs {
		if seen[p[1]] {
			t.Fatalf("duplicate target word %q", p[1])
		}
		seen[p[1]] = true
		if tt.mapping[p[0]] != p[1] {
			t.Fatal("mapping mismatch")
		}
	}
}

func TestTranslationPairConsistent(t *testing.T) {
	tt := NewTranslationTask()
	f := func(seed uint64) bool {
		prompt, completion := tt.Pair(prng.New(seed))
		if len(prompt) < 3 || len(prompt) > tt.MaxLen() {
			return false
		}
		// prompt = BOS translate <src...> => ; completion = mapped words.
		src := prompt[2 : len(prompt)-1]
		if len(src) != len(completion) {
			return false
		}
		for i, sid := range src {
			want := tt.mapping[tt.vocab.Word(sid)]
			if tt.vocab.Word(completion[i]) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSummPairIsLeadSentence(t *testing.T) {
	st := NewSummTask()
	f := func(seed uint64) bool {
		prompt, completion := st.Pair(prng.New(seed))
		if len(completion) != st.senLen {
			return false
		}
		// The completion must equal the words right after the marker.
		for i, id := range completion {
			if prompt[2+i] != id {
				return false
			}
		}
		return len(prompt)+len(completion)+1 <= st.MaxLen()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQAPairAnswerInContext(t *testing.T) {
	qt := NewQATask()
	f := func(seed uint64) bool {
		prompt, completion := qt.Pair(prng.New(seed))
		if len(completion) != 1 {
			return false
		}
		// The answer token must appear in the prompt (span extraction).
		found := false
		for _, id := range prompt {
			if id == completion[0] {
				found = true
			}
		}
		return found && len(prompt)+2 <= qt.MaxLen()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQASuiteGoldConsistent(t *testing.T) {
	qt := NewQATask()
	s := qt.Suite(5, 10)
	for _, inst := range s.Instances {
		if !qt.vocab.Has(inst.Reference) {
			t.Fatalf("reference %q not in vocab", inst.Reference)
		}
	}
}

func TestTrainTasksMaxLen(t *testing.T) {
	for _, task := range []TrainTask{
		NewMathTask(9), NewTranslationTask(), NewSummTask(), NewQATask(),
	} {
		f := func(seed uint64) bool {
			prompt, completion := task.Pair(prng.New(seed))
			return len(prompt)+len(completion)+1 <= task.MaxLen()
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("%s: %v", task.Name(), err)
		}
	}
}

func TestSelfRefSuite(t *testing.T) {
	s := NewSelfRefSuite("x", 3, 4, 8, 12, nil)
	if len(s.Instances) != 4 {
		t.Fatal("instance count")
	}
	for _, inst := range s.Instances {
		if inst.Reference != "" {
			t.Fatal("self-ref suites must have empty references")
		}
		if len(inst.Prompt) != 9 { // BOS + 8 words
			t.Fatalf("prompt length %d", len(inst.Prompt))
		}
	}
}

func TestGeneralVocabStable(t *testing.T) {
	a := GeneralVocab()
	b := GeneralVocab()
	if a.Size() != b.Size() {
		t.Fatal("vocab size unstable")
	}
	for i := 0; i < a.Size(); i++ {
		if a.Word(i) != b.Word(i) {
			t.Fatal("vocab order unstable")
		}
	}
}

func TestSuiteMaxSeqNeeded(t *testing.T) {
	mt := NewMathTask(9)
	s := mt.Suite(1, 5, true)
	need := s.MaxSeqNeeded()
	for _, inst := range s.Instances {
		if len(inst.Prompt)+inst.MaxNew+1 > need {
			t.Fatal("MaxSeqNeeded underestimates")
		}
	}
}

func TestMathVocabNumbers(t *testing.T) {
	mt := NewMathTask(9)
	v := mt.Vocab()
	for i := 0; i <= 27; i++ {
		if !v.Has(strconv.Itoa(i)) {
			t.Fatalf("missing number token %d", i)
		}
	}
}

func TestMCPromptEndsWithMarkers(t *testing.T) {
	s, _ := NewMCSuite("arc", 2, 3)
	for _, inst := range s.Instances {
		text := s.Vocab.DecodeAll(inst.Prompt)
		if !strings.HasSuffix(text, "question answer") {
			t.Fatalf("prompt %q should end with question/answer markers", text)
		}
	}
}
