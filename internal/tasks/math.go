package tasks

import (
	"fmt"
	"strconv"

	"repro/internal/metrics"
	"repro/internal/prng"
	"repro/internal/token"
)

// MathTask is the GSM8k surrogate: three-operand addition posed as a
// word problem skeleton. In Chain-of-Thought mode the model must emit the
// two intermediate partial sums before the final answer; in direct mode
// (the paper's "output only the final numerical answer" instruction,
// §4.3.2) it must produce the answer immediately.
//
//	CoT:    solve 3 + 5 + 9 =  →  3 + 5 = 8 ; 8 + 9 = 17 ; # 17
//	Direct: direct 3 + 5 + 9 = →  # 17
//
// The reasoning chain reproduces Figure 12's failure mode: a fault that
// corrupts an intermediate sum propagates to the final answer — unless
// the model recovers by re-attending to the operands (Observation #10).
type MathTask struct {
	vocab *token.Vocab
	// maxOperand bounds each operand (answers reach 3*maxOperand).
	maxOperand int
}

// Math task marker words.
const (
	MathSolve  = "solve"
	MathDirect = "direct"
	MathAnswer = "#"
)

// NewMathTask builds the arithmetic task with operands in [0, maxOperand].
func NewMathTask(maxOperand int) *MathTask {
	words := []string{"+", "=", ";", MathAnswer, MathSolve, MathDirect}
	for i := 0; i <= 3*maxOperand; i++ {
		words = append(words, strconv.Itoa(i))
	}
	return &MathTask{vocab: token.NewVocab(words), maxOperand: maxOperand}
}

// Name implements TrainTask.
func (t *MathTask) Name() string { return "math" }

// Vocab implements TrainTask.
func (t *MathTask) Vocab() *token.Vocab { return t.vocab }

// MaxLen implements TrainTask: prompt (8 tokens incl. BOS) + CoT
// completion (14) + EOS.
func (t *MathTask) MaxLen() int { return 8 + 14 + 1 }

// num returns the token id of integer v.
func (t *MathTask) num(v int) int { return t.vocab.ID(strconv.Itoa(v)) }

// Problem is one arithmetic instance.
type Problem struct {
	A, B, C int
}

// Answer returns the final sum.
func (p Problem) Answer() int { return p.A + p.B + p.C }

// Prompt tokenizes the problem statement for the given mode.
func (t *MathTask) Prompt(p Problem, cot bool) []int {
	mode := MathDirect
	if cot {
		mode = MathSolve
	}
	return []int{
		token.BOS, t.vocab.ID(mode),
		t.num(p.A), t.vocab.ID("+"), t.num(p.B), t.vocab.ID("+"), t.num(p.C),
		t.vocab.ID("="),
	}
}

// Completion returns the gold output tokens for the given mode (without
// EOS).
func (t *MathTask) Completion(p Problem, cot bool) []int {
	if !cot {
		return []int{t.vocab.ID(MathAnswer), t.num(p.Answer())}
	}
	s1 := p.A + p.B
	return []int{
		t.num(p.A), t.vocab.ID("+"), t.num(p.B), t.vocab.ID("="), t.num(s1), t.vocab.ID(";"),
		t.num(s1), t.vocab.ID("+"), t.num(p.C), t.vocab.ID("="), t.num(p.Answer()), t.vocab.ID(";"),
		t.vocab.ID(MathAnswer), t.num(p.Answer()),
	}
}

// Pair implements TrainTask, mixing CoT and direct examples 3:1 so the
// model supports both prompting modes.
func (t *MathTask) Pair(src *prng.Source) (prompt, completion []int) {
	p := Problem{
		A: src.Intn(t.maxOperand + 1),
		B: src.Intn(t.maxOperand + 1),
		C: src.Intn(t.maxOperand + 1),
	}
	cot := src.Intn(4) != 0
	return t.Prompt(p, cot), t.Completion(p, cot)
}

// NoiseProb is the fraction of CoT training examples whose input chain
// carries one corrupted intermediate number. Supervising the clean
// continuation on corrupted chains teaches the model to recover from
// wrong reasoning tokens — the behaviour Observation #10 measures.
const NoiseProb = 0.25

// CorruptInputs implements NoisyTask: with probability NoiseProb, one
// number token inside the reasoning region (before the '#' marker) is
// replaced by a random number. Labels are untouched by the trainer, so
// the model learns to emit the correct partial sums and final answer
// even when the visible chain is wrong.
func (t *MathTask) CorruptInputs(src *prng.Source, inputs []int, promptLen int) []int {
	if src.Float64() >= NoiseProb {
		return inputs
	}
	marker := t.vocab.ID(MathAnswer)
	var numPos []int
	for i := promptLen; i < len(inputs); i++ {
		if inputs[i] == marker {
			break
		}
		if _, ok := t.tokenValue(inputs[i]); ok {
			numPos = append(numPos, i)
		}
	}
	if len(numPos) == 0 {
		return inputs
	}
	pos := numPos[src.Intn(len(numPos))]
	inputs[pos] = t.num(src.Intn(3*t.maxOperand + 1))
	return inputs
}

// ExtractAnswer parses a generated token sequence: the number following
// the final '#' marker, or the last number token if no marker survived.
// It returns -1 when no number is present at all (fully distorted
// output).
func (t *MathTask) ExtractAnswer(toks []int) int {
	marker := t.vocab.ID(MathAnswer)
	ans := -1
	lastNum := -1
	for i, tok := range toks {
		if v, ok := t.tokenValue(tok); ok {
			lastNum = v
			if i > 0 && toks[i-1] == marker {
				ans = v
			}
		}
	}
	if ans >= 0 {
		return ans
	}
	return lastNum
}

// tokenValue decodes a number token.
func (t *MathTask) tokenValue(tok int) (int, bool) {
	w := t.vocab.Word(tok)
	v, err := strconv.Atoi(w)
	if err != nil {
		return 0, false
	}
	return v, true
}

// Suite materializes n evaluation instances. cot selects the prompting
// mode; the reference text is the gold completion, so accuracy measures
// genuine correctness of the trained model.
func (t *MathTask) Suite(seed uint64, n int, cot bool) *Suite {
	src := prng.New(seed ^ hashName("gsm8k"))
	name := "gsm8k"
	if !cot {
		name = "gsm8k-direct"
	}
	s := &Suite{
		Name:    name,
		Dataset: "GSM8k",
		Type:    Generative,
		Vocab:   t.vocab,
		Metrics: []metrics.Kind{metrics.KindAccuracy},
	}
	maxNew := 16
	if !cot {
		maxNew = 4
	}
	for i := 0; i < n; i++ {
		isrc := src.Split(uint64(i))
		p := Problem{
			A: isrc.Intn(t.maxOperand + 1),
			B: isrc.Intn(t.maxOperand + 1),
			C: isrc.Intn(t.maxOperand + 1),
		}
		s.Instances = append(s.Instances, Instance{
			ID:        fmt.Sprintf("%s-%03d", name, i),
			Prompt:    t.Prompt(p, cot),
			Reference: fmt.Sprintf("%d", p.Answer()),
			MaxNew:    maxNew,
		})
	}
	return s
}

// AnswerMatches reports whether the extracted answer of a generation
// equals the reference answer string.
func (t *MathTask) AnswerMatches(generated []int, reference string) bool {
	want, err := strconv.Atoi(reference)
	if err != nil {
		return false
	}
	return t.ExtractAnswer(generated) == want
}

// ReasoningLength returns the number of generated tokens before the '#'
// answer marker in a token sequence (the reasoning segment length used to
// restrict computational-fault iterations in the CoT study, §4.3.2).
func (t *MathTask) ReasoningLength(toks []int) int {
	marker := t.vocab.ID(MathAnswer)
	for i, tok := range toks {
		if tok == marker {
			return i
		}
	}
	return len(toks)
}
