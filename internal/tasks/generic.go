package tasks

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/prng"
	"repro/internal/token"
)

// NewSelfRefSuite builds a generative suite over the general vocabulary
// with no gold references: the fault-free output of the model under test
// becomes the reference (normalized performance is then exactly the
// output-stability measure). These suites drive the studies that need
// generative behaviour from the untrained profile models — MoE vs dense
// (Figure 14), gate-layer faults (Figure 15), and the scale study
// (Figure 16) — where the paper used WMT16/SQuAD-style workloads on
// models we do not train for those tasks.
func NewSelfRefSuite(name string, seed uint64, n, promptLen, maxNew int, kinds []metrics.Kind) *Suite {
	vocab := GeneralVocab()
	src := prng.New(seed ^ hashName(name))
	s := &Suite{
		Name:    name,
		Dataset: "self-referential " + name,
		Type:    Generative,
		Vocab:   vocab,
		Metrics: kinds,
	}
	pools := [][]string{commonWords, narrativeWords, scienceWords, humanitiesWords}
	for i := 0; i < n; i++ {
		isrc := src.Split(uint64(i))
		words := make([]string, 0, promptLen)
		for len(words) < promptLen {
			words = append(words, pick(isrc, pools[isrc.Intn(len(pools))]))
		}
		prompt := append([]int{token.BOS}, vocab.EncodeWords(words)...)
		s.Instances = append(s.Instances, Instance{
			ID:     fmt.Sprintf("%s-%03d", name, i),
			Prompt: prompt,
			MaxNew: maxNew,
			MinNew: maxNew / 2,
		})
	}
	return s
}
