package tasks

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/prng"
	"repro/internal/token"
)

// QA task marker words.
const (
	QAContext  = "context"
	QAQuestion = "question"
	QAIs       = "is"
	QASep      = ","
	QAArrow    = "=>"
)

// QATask is the SQuAD v2 surrogate: span extraction over a synthetic
// context of named facts. The context lists "name is place" facts (the
// number of facts varies per example); the question repeats one of the
// fact names together with its ordinal, and the answer is that fact's
// place value. The ordinal makes the retrieval a question-conditioned
// span selection — the content-to-position attention pattern that tiny
// transformers acquire reliably — while the name token keeps the
// question textual. Faults that corrupt the attention pathway yield
// wrong-span answers (subtle SDCs), matching the paper's QA behaviour.
type QATask struct {
	vocab    *token.Vocab
	keys     []string
	values   []string
	ordinals []string
	minFacts int
	maxFacts int
}

// NewQATask builds the QA task with 2–4 facts per context.
func NewQATask() *QATask {
	ordinals := []string{"first", "second", "third", "fourth"}
	words := []string{QAContext, QAQuestion, QAIs, QASep, QAArrow}
	words = append(words, ordinals...)
	words = append(words, nameWords...)
	words = append(words, placeWords...)
	return &QATask{
		vocab:    token.NewVocab(words),
		keys:     nameWords,
		values:   placeWords,
		ordinals: ordinals,
		minFacts: 2,
		maxFacts: 4,
	}
}

// Name implements TrainTask.
func (t *QATask) Name() string { return "qa" }

// Vocab implements TrainTask.
func (t *QATask) Vocab() *token.Vocab { return t.vocab }

// MaxLen implements TrainTask.
func (t *QATask) MaxLen() int { return 2 + t.maxFacts*4 + 4 + 1 + 1 + 1 }

// qaInstance is one generated example.
type qaInstance struct {
	keys, vals []string
	ask        int
}

func (t *QATask) instance(src *prng.Source) qaInstance {
	perm := src.Perm(len(t.keys))
	n := t.minFacts + src.Intn(t.maxFacts-t.minFacts+1)
	inst := qaInstance{ask: src.Intn(n)}
	for i := 0; i < n; i++ {
		inst.keys = append(inst.keys, t.keys[perm[i]])
		inst.vals = append(inst.vals, pick(src, t.values))
	}
	return inst
}

// prompt tokenizes
// "context k1 is v1 , k2 is v2 question second k2 =>".
func (t *QATask) prompt(inst qaInstance) []int {
	ids := []int{token.BOS, t.vocab.ID(QAContext)}
	for i := range inst.keys {
		if i > 0 {
			ids = append(ids, t.vocab.ID(QASep))
		}
		ids = append(ids, t.vocab.ID(inst.keys[i]), t.vocab.ID(QAIs), t.vocab.ID(inst.vals[i]))
	}
	ids = append(ids,
		t.vocab.ID(QAQuestion),
		t.vocab.ID(t.ordinals[inst.ask]),
		t.vocab.ID(inst.keys[inst.ask]),
		t.vocab.ID(QAArrow))
	return ids
}

// Pair implements TrainTask.
func (t *QATask) Pair(src *prng.Source) (prompt, completion []int) {
	inst := t.instance(src)
	return t.prompt(inst), []int{t.vocab.ID(inst.vals[inst.ask])}
}

// Suite materializes n instances with gold answers.
func (t *QATask) Suite(seed uint64, n int) *Suite {
	src := prng.New(seed ^ hashName("squadv2"))
	s := &Suite{
		Name:    "squadv2",
		Dataset: "SQuAD v2",
		Type:    Generative,
		Vocab:   t.vocab,
		Metrics: []metrics.Kind{metrics.KindEM, metrics.KindF1},
	}
	for i := 0; i < n; i++ {
		isrc := src.Split(uint64(i))
		inst := t.instance(isrc)
		s.Instances = append(s.Instances, Instance{
			ID:        fmt.Sprintf("squadv2-%03d", i),
			Prompt:    t.prompt(inst),
			Reference: inst.vals[inst.ask],
			MaxNew:    3,
		})
	}
	return s
}
