// Package tasks provides the synthetic downstream-task suites standing in
// for Table 1's datasets: five multiple-choice suites (MMLU, AI2 ARC,
// TruthfulQA, WinoGrande, HellaSwag surrogates), a multi-step arithmetic
// suite (GSM8k surrogate) with optional Chain-of-Thought, a dictionary
// translation suite (WMT16 de-en surrogate), an extractive summarization
// suite (XLSum surrogate), and a span-extraction QA suite (SQuAD v2
// surrogate). Each generative task doubles as a training-data generator
// for the tiny trained models (internal/train).
package tasks

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/prng"
	"repro/internal/token"
)

// Type distinguishes the two evaluation modes of §3.3.2.
type Type int

const (
	// MultipleChoice tasks score each option's log-likelihood and pick the
	// best; no tokens are generated.
	MultipleChoice Type = iota
	// Generative tasks produce content token by token.
	Generative
)

// String names the type.
func (t Type) String() string {
	if t == MultipleChoice {
		return "multiple-choice"
	}
	return "generative"
}

// Instance is one evaluation input.
type Instance struct {
	ID     string
	Prompt []int
	// Options holds the tokenized answer options for multiple-choice
	// instances; Gold indexes the nominally correct one.
	Options [][]int
	Gold    int
	// Reference is the gold output text for generative instances. Empty
	// means self-relative evaluation (the fault-free output becomes the
	// reference), used with the untrained general-purpose profiles.
	Reference string
	// MaxNew bounds generation length.
	MaxNew int
	// MinNew suppresses EOS for the first MinNew tokens (keeps untrained
	// models from degenerating to empty outputs).
	MinNew int
}

// Suite is a dataset plus its evaluation protocol.
type Suite struct {
	Name      string
	Dataset   string // paper dataset this stands in for
	Type      Type
	Vocab     *token.Vocab
	Metrics   []metrics.Kind
	Instances []Instance
}

// String renders a short descriptor.
func (s *Suite) String() string {
	return fmt.Sprintf("%s(%s, %d instances)", s.Name, s.Type, len(s.Instances))
}

// MaxSeqNeeded returns the longest prompt+generation the suite can
// produce, for sizing model contexts.
func (s *Suite) MaxSeqNeeded() int {
	maxLen := 0
	for _, in := range s.Instances {
		l := len(in.Prompt) + in.MaxNew + 1
		if s.Type == MultipleChoice {
			longest := 0
			for _, o := range in.Options {
				if len(o) > longest {
					longest = len(o)
				}
			}
			l = len(in.Prompt) + longest + 1
		}
		if l > maxLen {
			maxLen = l
		}
	}
	return maxLen
}

// TrainTask generates supervised (prompt, completion) pairs for the
// trained tiny models. Completion excludes EOS; the trainer appends it.
type TrainTask interface {
	// Name identifies the task.
	Name() string
	// Vocab returns the task vocabulary.
	Vocab() *token.Vocab
	// Pair draws one training example.
	Pair(src *prng.Source) (prompt, completion []int)
	// MaxLen returns the longest prompt+completion+1 the task emits.
	MaxLen() int
}

// NoisyTask is a TrainTask whose training inputs may be corrupted while
// the supervision labels stay clean — denoising training. The trainer
// checks for this interface and passes each example's input sequence
// through CorruptInputs.
type NoisyTask interface {
	TrainTask
	// CorruptInputs returns the (possibly modified) input token sequence.
	// promptLen marks where the completion region starts. The slice may
	// be modified in place.
	CorruptInputs(src *prng.Source, inputs []int, promptLen int) []int
}

// pick returns a uniformly chosen element of list.
func pick(src *prng.Source, list []string) string {
	return list[src.Intn(len(list))]
}

// sampleWords draws n words (with replacement) from list.
func sampleWords(src *prng.Source, list []string, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = pick(src, list)
	}
	return out
}
