package tasks

import (
	"fmt"
	"strings"

	"repro/internal/metrics"
	"repro/internal/prng"
	"repro/internal/token"
)

// SummMarker introduces the summarization instruction; SummStop ends a
// sentence within the document.
const (
	SummMarker = "summarize"
	SummStop   = "."
	SummArrow  = "=>"
)

// SummTask is the XLSum surrogate: an extractive lead-sentence
// summarization task. A document is 2–4 short sentences; the gold summary
// is the first sentence (lead-1 extraction, what the fine-tuned
// Llama3.1-Summarizer of Table 1 effectively performs). The model must
// locate and copy the lead sentence — a long-range copy behaviour whose
// corruption under faults produces both subtle (wrong words) and
// distorted (repetition) outputs.
type SummTask struct {
	vocab  *token.Vocab
	words  []string
	minSen int
	maxSen int
	senLen int
}

// NewSummTask builds the summarization task.
func NewSummTask() *SummTask {
	body := append(append([]string(nil), narrativeWords...), commonWords...)
	vocabWords := append([]string{SummMarker, SummStop, SummArrow}, body...)
	return &SummTask{
		vocab:  token.NewVocab(vocabWords),
		words:  body,
		minSen: 2,
		maxSen: 3,
		senLen: 5,
	}
}

// Name implements TrainTask.
func (t *SummTask) Name() string { return "summarization" }

// Vocab implements TrainTask.
func (t *SummTask) Vocab() *token.Vocab { return t.vocab }

// MaxLen implements TrainTask.
func (t *SummTask) MaxLen() int {
	return 2 + t.maxSen*(t.senLen+1) + 1 + t.senLen + 1
}

// document draws sentences; each sentence is senLen words plus ".".
func (t *SummTask) document(src *prng.Source) [][]string {
	n := t.minSen + src.Intn(t.maxSen-t.minSen+1)
	doc := make([][]string, n)
	for i := range doc {
		doc[i] = sampleWords(src, t.words, t.senLen)
	}
	return doc
}

// Prompt tokenizes "summarize <s1> . <s2> . ... =>".
func (t *SummTask) Prompt(doc [][]string) []int {
	ids := []int{token.BOS, t.vocab.ID(SummMarker)}
	for _, sen := range doc {
		ids = append(ids, t.vocab.EncodeWords(sen)...)
		ids = append(ids, t.vocab.ID(SummStop))
	}
	return append(ids, t.vocab.ID(SummArrow))
}

// Pair implements TrainTask: the completion is the lead sentence.
func (t *SummTask) Pair(src *prng.Source) (prompt, completion []int) {
	doc := t.document(src)
	return t.Prompt(doc), t.vocab.EncodeWords(doc[0])
}

// Suite materializes n instances with gold lead-1 references.
func (t *SummTask) Suite(seed uint64, n int) *Suite {
	src := prng.New(seed ^ hashName("xlsum"))
	s := &Suite{
		Name:    "xlsum",
		Dataset: "XLSum",
		Type:    Generative,
		Vocab:   t.vocab,
		Metrics: []metrics.Kind{metrics.KindRouge1, metrics.KindRougeL},
	}
	for i := 0; i < n; i++ {
		isrc := src.Split(uint64(i))
		doc := t.document(isrc)
		s.Instances = append(s.Instances, Instance{
			ID:        fmt.Sprintf("xlsum-%03d", i),
			Prompt:    t.Prompt(doc),
			Reference: strings.Join(doc[0], " "),
			MaxNew:    t.senLen + 3,
		})
	}
	return s
}
