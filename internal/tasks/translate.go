package tasks

import (
	"fmt"
	"strings"

	"repro/internal/metrics"
	"repro/internal/prng"
	"repro/internal/token"
)

// translationPairs is the bilingual dictionary of the WMT16 de-en
// surrogate: a closed German→English word mapping. Sentences are built
// from these words, and translating means emitting each source word's
// target in order — a task a two-block transformer learns essentially
// perfectly, giving a high fault-free BLEU baseline to degrade from.
var translationPairs = [][2]string{
	{"der", "the"}, {"ein", "a"}, {"hund", "dog"}, {"katze", "cat"},
	{"mann", "man"}, {"frau", "woman"}, {"kind", "child"}, {"haus", "house"},
	{"baum", "tree"}, {"fluss", "river"}, {"berg", "mountain"}, {"stadt", "city"},
	{"buch", "book"}, {"brot", "bread"}, {"wasser", "water"}, {"licht", "light"},
	{"sieht", "sees"}, {"liebt", "loves"}, {"hat", "has"}, {"isst", "eats"},
	{"trinkt", "drinks"}, {"baut", "builds"}, {"findet", "finds"}, {"kennt", "knows"},
	{"klein", "small"}, {"gross", "big"}, {"alt", "old"}, {"neu", "new"},
	{"rot", "red"}, {"blau", "blue"}, {"schnell", "fast"}, {"leise", "quiet"},
	{"und", "and"}, {"oder", "or"}, {"hier", "here"}, {"dort", "there"},
}

// TransMarker introduces the translation instruction.
const TransMarker = "translate"

// TransArrow separates source from target.
const TransArrow = "=>"

// TranslationTask is the WMT16 de-en surrogate.
type TranslationTask struct {
	vocab   *token.Vocab
	sources []string
	mapping map[string]string
	minLen  int
	maxLen  int
}

// NewTranslationTask builds the task with sentences of 4–8 source words.
func NewTranslationTask() *TranslationTask {
	t := &TranslationTask{
		mapping: make(map[string]string, len(translationPairs)),
		minLen:  4,
		maxLen:  8,
	}
	var words []string
	words = append(words, TransMarker, TransArrow)
	for _, p := range translationPairs {
		t.sources = append(t.sources, p[0])
		t.mapping[p[0]] = p[1]
		words = append(words, p[0], p[1])
	}
	t.vocab = token.NewVocab(words)
	return t
}

// Name implements TrainTask.
func (t *TranslationTask) Name() string { return "translation" }

// Vocab implements TrainTask.
func (t *TranslationTask) Vocab() *token.Vocab { return t.vocab }

// MaxLen implements TrainTask.
func (t *TranslationTask) MaxLen() int { return 1 + 1 + t.maxLen + 1 + t.maxLen + 1 }

// sentence draws a source sentence.
func (t *TranslationTask) sentence(src *prng.Source) []string {
	n := t.minLen + src.Intn(t.maxLen-t.minLen+1)
	return sampleWords(src, t.sources, n)
}

// Translate maps a source sentence to its gold translation.
func (t *TranslationTask) Translate(srcWords []string) []string {
	out := make([]string, len(srcWords))
	for i, w := range srcWords {
		out[i] = t.mapping[w]
	}
	return out
}

// Prompt tokenizes "translate <src> =>".
func (t *TranslationTask) Prompt(srcWords []string) []int {
	ids := []int{token.BOS, t.vocab.ID(TransMarker)}
	ids = append(ids, t.vocab.EncodeWords(srcWords)...)
	return append(ids, t.vocab.ID(TransArrow))
}

// Pair implements TrainTask.
func (t *TranslationTask) Pair(src *prng.Source) (prompt, completion []int) {
	s := t.sentence(src)
	return t.Prompt(s), t.vocab.EncodeWords(t.Translate(s))
}

// Suite materializes n evaluation instances with gold references.
func (t *TranslationTask) Suite(seed uint64, n int) *Suite {
	src := prng.New(seed ^ hashName("wmt16"))
	s := &Suite{
		Name:    "wmt16",
		Dataset: "WMT16 de-en",
		Type:    Generative,
		Vocab:   t.vocab,
		Metrics: []metrics.Kind{metrics.KindBLEU, metrics.KindChrF},
	}
	for i := 0; i < n; i++ {
		isrc := src.Split(uint64(i))
		sent := t.sentence(isrc)
		s.Instances = append(s.Instances, Instance{
			ID:        fmt.Sprintf("wmt16-%03d", i),
			Prompt:    t.Prompt(sent),
			Reference: strings.Join(t.Translate(sent), " "),
			MaxNew:    t.maxLen + 3,
		})
	}
	return s
}
