package tasks

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/prng"
	"repro/internal/token"
)

// mcProfile shapes one multiple-choice suite. The suites differ in prompt
// length, option count/length, and topical vocabulary — the independent
// variables that give each benchmark its own score-margin profile (and
// hence its own masking behaviour under faults, §4.1.2).
type mcProfile struct {
	name       string
	dataset    string
	promptLen  int
	numOptions int
	optionLen  int
	// overlap makes options share a prefix with each other, shrinking
	// score margins (harder, more fault-sensitive suites).
	overlap int
	topics  [][]string
}

var mcProfiles = []mcProfile{
	{
		name: "mmlu", dataset: "MMLU", promptLen: 24, numOptions: 4,
		optionLen: 4, overlap: 1,
		topics: [][]string{scienceWords, humanitiesWords, commonWords},
	},
	{
		name: "arc", dataset: "AI2_ARC", promptLen: 16, numOptions: 4,
		optionLen: 3, overlap: 1,
		topics: [][]string{scienceWords, commonWords},
	},
	{
		name: "truthfulqa", dataset: "TruthfulQA", promptLen: 20,
		numOptions: 4, optionLen: 6, overlap: 0,
		topics: [][]string{commonWords, humanitiesWords},
	},
	{
		name: "winogrande", dataset: "WinoGrande", promptLen: 14,
		numOptions: 2, optionLen: 2, overlap: 0,
		topics: [][]string{narrativeWords, nameWords, commonWords},
	},
	{
		name: "hellaswag", dataset: "HellaSwag", promptLen: 30,
		numOptions: 4, optionLen: 8, overlap: 2,
		topics: [][]string{narrativeWords, commonWords},
	},
}

// MCSuiteNames lists the multiple-choice suite names in canonical order.
func MCSuiteNames() []string {
	names := make([]string, len(mcProfiles))
	for i, p := range mcProfiles {
		names[i] = p.name
	}
	return names
}

// NewMCSuite builds n instances of the named multiple-choice suite over
// the shared general vocabulary. The same (name, seed, n) always yields
// the same dataset — the tinyBenchmarks-style fixed evaluation subset.
func NewMCSuite(name string, seed uint64, n int) (*Suite, error) {
	var prof *mcProfile
	for i := range mcProfiles {
		if mcProfiles[i].name == name {
			prof = &mcProfiles[i]
			break
		}
	}
	if prof == nil {
		return nil, fmt.Errorf("tasks: unknown MC suite %q", name)
	}
	vocab := GeneralVocab()
	src := prng.New(seed ^ hashName(prof.name))
	s := &Suite{
		Name:    prof.name,
		Dataset: prof.dataset,
		Type:    MultipleChoice,
		Vocab:   vocab,
		Metrics: []metrics.Kind{metrics.KindAccuracy},
	}
	for i := 0; i < n; i++ {
		isrc := src.Split(uint64(i))
		inst := Instance{
			ID:     fmt.Sprintf("%s-%03d", prof.name, i),
			Prompt: mcPrompt(isrc, vocab, prof),
			Gold:   isrc.Intn(prof.numOptions),
		}
		var shared []string
		if prof.overlap > 0 {
			shared = sampleWords(isrc, prof.topics[0], prof.overlap)
		}
		for o := 0; o < prof.numOptions; o++ {
			words := append(append([]string(nil), shared...),
				sampleWords(isrc, prof.topics[isrc.Intn(len(prof.topics))], prof.optionLen-prof.overlap)...)
			inst.Options = append(inst.Options, vocab.EncodeWords(words))
		}
		s.Instances = append(s.Instances, inst)
	}
	return s, nil
}

func mcPrompt(src *prng.Source, vocab *token.Vocab, prof *mcProfile) []int {
	words := make([]string, 0, prof.promptLen+2)
	for len(words) < prof.promptLen {
		topic := prof.topics[src.Intn(len(prof.topics))]
		words = append(words, pick(src, topic))
	}
	words = append(words, "question", "answer")
	ids := append([]int{token.BOS}, vocab.EncodeWords(words)...)
	return ids
}

// hashName folds a suite name into a seed component (FNV-1a).
func hashName(name string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}
