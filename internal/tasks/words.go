package tasks

import (
	"sort"

	"repro/internal/token"
)

// Topic wordlists backing the multiple-choice suites. They only need to
// be plausible word inventories with stable ids; task semantics come from
// the suite construction, not the words.
var (
	scienceWords = []string{
		"atom", "cell", "energy", "gravity", "orbit", "photon", "plasma",
		"protein", "quark", "enzyme", "neuron", "fossil", "magma", "tide",
		"vapor", "crystal", "magnet", "circuit", "lens", "prism",
	}
	humanitiesWords = []string{
		"empire", "treaty", "poem", "myth", "ritual", "dialect", "fresco",
		"sonnet", "dynasty", "archive", "relic", "scroll", "temple",
		"ballad", "canon", "motif", "satire", "chorus", "fable", "edict",
	}
	commonWords = []string{
		"the", "a", "an", "is", "are", "was", "will", "can", "must",
		"about", "with", "from", "into", "over", "under", "between",
		"because", "which", "that", "when", "where", "how", "why",
		"people", "time", "way", "thing", "world", "life", "work",
		"number", "group", "place", "fact", "point", "water", "light",
		"answer", "question", "option", "correct", "true", "false",
		"most", "least", "best", "more", "less", "first", "second",
		"third", "fourth", "new", "old", "large", "small", "long",
	}
	narrativeWords = []string{
		"walked", "opened", "carried", "dropped", "lifted", "watched",
		"smiled", "turned", "waited", "started", "finished", "cleaned",
		"painted", "kitchen", "garden", "window", "ladder", "bucket",
		"jacket", "ticket", "engine", "bridge", "market", "station",
		"morning", "evening", "slowly", "quickly", "carefully", "together",
	}
	nameWords = []string{
		"anna", "boris", "carla", "dmitri", "elena", "farid", "greta",
		"hugo", "irene", "jonas", "kira", "luis", "mara", "nils",
	}
	placeWords = []string{
		"paris", "cairo", "lima", "oslo", "kyoto", "quito", "delhi",
		"accra", "turin", "malmo", "perth", "davao",
	}
	colorWords = []string{
		"red", "blue", "green", "amber", "violet", "teal", "coral",
		"ivory", "slate", "olive",
	}
)

// generalWords returns the union wordlist behind GeneralVocab.
func generalWords() []string {
	set := make(map[string]bool)
	for _, list := range [][]string{
		scienceWords, humanitiesWords, commonWords, narrativeWords,
		nameWords, placeWords, colorWords,
	} {
		for _, w := range list {
			set[w] = true
		}
	}
	words := make([]string, 0, len(set))
	for w := range set {
		words = append(words, w)
	}
	sort.Strings(words)
	return words
}

// GeneralVocab returns the shared vocabulary of the multiple-choice
// suites (and of the untrained general-purpose profile models).
func GeneralVocab() *token.Vocab {
	return token.NewVocab(generalWords())
}
