package report

import (
	"bytes"
	"context"
	"encoding/csv"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/numerics"
	"repro/internal/tasks"
)

func exportResult(t *testing.T) *core.Result {
	t.Helper()
	vocab := tasks.GeneralVocab()
	cfg := model.StandardConfig("exp", vocab.Size(), numerics.BF16)
	m, err := model.Build(model.Spec{Config: cfg, Family: model.QwenS, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	suite := tasks.NewSelfRefSuite("exp", 3, 3, 5, 6,
		[]metrics.Kind{metrics.KindBLEU, metrics.KindChrF})
	res, err := core.Campaign{
		Model: m, Suite: suite, Fault: faults.Mem2Bit, Trials: 8, Seed: 5,
	}.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestWriteTrialsCSV(t *testing.T) {
	res := exportResult(t)
	var buf bytes.Buffer
	if err := WriteTrialsCSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1+len(res.Trials) {
		t.Fatalf("csv rows = %d, want %d", len(rows), 1+len(res.Trials))
	}
	wantCols := 14 + len(res.Campaign.Suite.Metrics)
	for i, r := range rows {
		if len(r) != wantCols {
			t.Fatalf("row %d has %d columns, want %d", i, len(r), wantCols)
		}
	}
	if rows[0][0] != "trial" || rows[0][len(rows[0])-1] != "chrF++" {
		t.Fatalf("header = %v", rows[0])
	}
}

func TestWriteSummaryCSV(t *testing.T) {
	res := exportResult(t)
	var buf bytes.Buffer
	if err := WriteSummaryCSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Count(out, "\n")
	if lines != 1+len(res.Campaign.Suite.Metrics) {
		t.Fatalf("summary lines = %d", lines)
	}
	if !strings.Contains(out, "2bits-mem") || !strings.Contains(out, "BLEU") {
		t.Fatalf("summary missing fields:\n%s", out)
	}
}
