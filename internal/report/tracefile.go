package report

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"

	"repro/internal/trace"
)

// TraceWriter streams propagation-trace records as JSON Lines: one
// trace.Record object per line, schema-versioned via Record.Schema.
// Write is safe for concurrent use, though the campaign runner already
// serializes sink calls through its collector goroutine.
type TraceWriter struct {
	mu sync.Mutex
	bw *bufio.Writer
	c  io.Closer
	n  int
}

// NewTraceWriter wraps w (buffered). If w is an io.Closer, Close closes
// it after flushing.
func NewTraceWriter(w io.Writer) *TraceWriter {
	tw := &TraceWriter{bw: bufio.NewWriter(w)}
	if c, ok := w.(io.Closer); ok {
		tw.c = c
	}
	return tw
}

// Write appends one record as a JSON line. It satisfies the runner's
// trace-sink signature (core.WithTrace).
func (tw *TraceWriter) Write(rec trace.Record) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("trace record: %w", err)
	}
	tw.mu.Lock()
	defer tw.mu.Unlock()
	if _, err := tw.bw.Write(data); err != nil {
		return err
	}
	if err := tw.bw.WriteByte('\n'); err != nil {
		return err
	}
	tw.n++
	return nil
}

// Count reports records written so far.
func (tw *TraceWriter) Count() int {
	tw.mu.Lock()
	defer tw.mu.Unlock()
	return tw.n
}

// Close flushes buffered lines and closes the underlying writer when it
// is closable.
func (tw *TraceWriter) Close() error {
	tw.mu.Lock()
	defer tw.mu.Unlock()
	err := tw.bw.Flush()
	if tw.c != nil {
		if cerr := tw.c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// OpenTrace opens a trace file for writing. A fresh campaign truncates
// path (standard output-file semantics); a resumed campaign appends, so
// the records of the interrupted run are preserved and the file ends up
// covering exactly the sampled trials of the whole campaign — resumed
// trials are never re-executed, so append never duplicates a trial.
// appended reports whether existing records were kept.
func OpenTrace(path string, resuming bool) (f *os.File, appended bool, err error) {
	if !resuming {
		f, err = os.Create(path)
		return f, false, err
	}
	f, err = os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, false, err
	}
	if st, serr := f.Stat(); serr == nil && st.Size() > 0 {
		appended = true
	}
	return f, appended, nil
}

// ReadTraces decodes a JSONL trace stream back into records — the
// round-trip counterpart of TraceWriter for analysis and tests. It
// verifies each record's schema version and rejects unknown fields:
// extra keys mean the file was written by a newer schema than this
// reader understands.
func ReadTraces(r io.Reader) ([]trace.Record, error) {
	dec := json.NewDecoder(bufio.NewReader(r))
	dec.DisallowUnknownFields()
	var recs []trace.Record
	for {
		var rec trace.Record
		if err := dec.Decode(&rec); err != nil {
			if errors.Is(err, io.EOF) {
				return recs, nil
			}
			return recs, fmt.Errorf("trace record %d: %w", len(recs), err)
		}
		if rec.Schema != trace.SchemaVersion {
			return recs, fmt.Errorf("trace record %d: schema %d, want %d",
				len(recs), rec.Schema, trace.SchemaVersion)
		}
		recs = append(recs, rec)
	}
}
