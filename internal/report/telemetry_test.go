package report

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/outcome"
)

func TestWriteTelemetryJSON(t *testing.T) {
	s := core.TelemetrySnapshot{
		ElapsedSeconds: 2.5,
		TotalTrials:    120,
		DoneTrials:     60,
		TrialsPerSec:   24,
		Fired:          45,
		FiredRate:      0.75,
		Masked:         30,
		Subtle:         20,
		Distorted:      10,
		HookFires:      1234,
		Workers: []core.WorkerSnapshot{
			{Trials: 30, BusySeconds: 2.4, Utilization: 0.96},
			{Trials: 30, BusySeconds: 2.3, Utilization: 0.92},
		},
	}
	var buf bytes.Buffer
	if err := WriteTelemetryJSON(&buf, s); err != nil {
		t.Fatal(err)
	}
	var back core.TelemetrySnapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("telemetry JSON does not round-trip: %v\n%s", err, buf.String())
	}
	if back.DoneTrials != 60 || back.FiredRate != 0.75 || back.HookFires != 1234 ||
		len(back.Workers) != 2 || back.Workers[1].Utilization != 0.92 {
		t.Fatalf("round-trip lost fields: %+v", back)
	}
	for _, key := range []string{"trials_per_sec", "fired_rate", "hook_fires", "utilization"} {
		if !strings.Contains(buf.String(), key) {
			t.Fatalf("JSON missing %q:\n%s", key, buf.String())
		}
	}
}

func TestProgressLine(t *testing.T) {
	p := core.Progress{
		Done: 42, Total: 120,
		TrialsPerSec: 3.1,
		Fired:        26,
		Tally:        outcome.Tally{Masked: 12, Subtle: 25, Distorted: 5},
		Elapsed:      13 * time.Second,
	}
	line := ProgressLine("fig3", p)
	for _, want := range []string{"fig3", "42/120", "3.1 trials/s", "fired", "12/25/5", "ETA"} {
		if !strings.Contains(line, want) {
			t.Fatalf("progress line missing %q: %s", want, line)
		}
	}
	if strings.Contains(line, "\n") {
		t.Fatal("progress line must be single-line (overwritten in place)")
	}

	// Degenerate events must not divide by zero.
	if got := ProgressLine("x", core.Progress{}); !strings.Contains(got, "0/0") {
		t.Fatalf("zero progress line: %s", got)
	}
}
