package report

import (
	"bytes"
	"encoding/json"
	"net/http"
)

// APIVersion is the versioned HTTP surface prefix shared by the
// observability server and the distributed campaign fabric. Endpoints
// under it speak JSON with typed request/response structs; breaking
// changes bump the prefix (and the fabric wire schema) together.
const APIVersion = "/api/v1"

// APIError is the JSON error envelope of every /api/v1 endpoint: a
// machine-readable code, a human-readable message, and the HTTP status
// echoed in the body so logs of captured payloads stay self-describing.
type APIError struct {
	Error APIErrorBody `json:"error"`
}

// APIErrorBody is the envelope payload.
type APIErrorBody struct {
	Status  int    `json:"status"`
	Code    string `json:"code"`
	Message string `json:"message"`
}

// WriteAPIError writes the envelope with the given HTTP status.
func WriteAPIError(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(APIError{Error: APIErrorBody{Status: status, Code: code, Message: msg}})
}

// DecodeJSON unmarshals an API request body into v, rejecting unknown
// fields so schema drift between fleet binaries surfaces as a typed
// error instead of silently-dropped fields.
func DecodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// StrictUnmarshal is the []byte sibling of DecodeJSON: it unmarshals
// wire bytes into v rejecting unknown fields, so clients of the fleet
// API hold their servers to the same schema discipline the servers
// apply to requests. (llmfi-vet's wireschema analyzer forbids plain
// json.Unmarshal on these surfaces for exactly this reason.)
func StrictUnmarshal(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}
