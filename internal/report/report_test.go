package report

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := NewTable("Name", "Value")
	tb.Row("short", 1.5)
	tb.Row("a-much-longer-name", 10)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("expected 4 lines, got %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "Name") {
		t.Fatal("header missing")
	}
	if !strings.Contains(lines[1], "---") {
		t.Fatal("separator missing")
	}
	// All rows should start the second column at the same offset.
	off := strings.Index(lines[2], "1.5000")
	off2 := strings.Index(lines[3], "10")
	if off != off2 {
		t.Fatalf("columns misaligned: %d vs %d", off, off2)
	}
}

func TestFloatFormatting(t *testing.T) {
	if formatFloat(3) != "3" {
		t.Fatalf("integral float: %q", formatFloat(3))
	}
	if formatFloat(0.12345) != "0.1235" {
		t.Fatalf("fraction: %q", formatFloat(0.12345))
	}
	if formatFloat(float64FromNaN()) != "NaN" {
		t.Fatal("NaN formatting")
	}
}

func float64FromNaN() float64 {
	var zero float64
	return zero / zero
}

func TestBarScaling(t *testing.T) {
	full := Bar("x", 1, 0, 1, 10)
	if strings.Count(full, "█") != 10 {
		t.Fatalf("full bar: %q", full)
	}
	empty := Bar("x", 0, 0, 1, 10)
	if strings.Count(empty, "█") != 0 {
		t.Fatalf("empty bar: %q", empty)
	}
	clamped := Bar("x", 5, 0, 1, 10)
	if strings.Count(clamped, "█") != 10 {
		t.Fatal("overflow should clamp")
	}
}

func TestBarChart(t *testing.T) {
	out := BarChart([]string{"a", "b"}, []float64{0.5, 1}, 0, 1)
	if strings.Count(out, "\n") != 2 {
		t.Fatalf("chart lines: %q", out)
	}
}

func TestCIFormat(t *testing.T) {
	got := CI(0.9, 0.8, 1.0)
	if got != "0.9000 [0.8000, 1.0000]" {
		t.Fatalf("CI = %q", got)
	}
}

func TestSection(t *testing.T) {
	if !strings.HasPrefix(Section("T", "body"), "== T ==\n") {
		t.Fatal("section header")
	}
}
