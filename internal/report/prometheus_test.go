package report

import (
	"fmt"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"encoding/json"
	"os"

	"repro/internal/core"
	"repro/internal/trace"
	"repro/internal/version"
)

// TestWriteBuildInfoText pins the exact shape of the build-identity
// gauge every /metrics surface emits first.
func TestWriteBuildInfoText(t *testing.T) {
	var b strings.Builder
	if err := WriteBuildInfoText(&b, 7); err != nil {
		t.Fatal(err)
	}
	want := "# HELP llmfi_build_info Build identity of this llmfi process.\n" +
		"# TYPE llmfi_build_info gauge\n" +
		fmt.Sprintf("llmfi_build_info{version=%q,schema=\"7\"} 1\n", version.Version)
	if b.String() != want {
		t.Fatalf("WriteBuildInfoText:\n got %q\nwant %q", b.String(), want)
	}
}

// promSnapshot is the fixed snapshot behind the golden exposition test.
func promSnapshot() core.TelemetrySnapshot {
	return core.TelemetrySnapshot{
		ElapsedSeconds:   2.5,
		TotalTrials:      120,
		DoneTrials:       64,
		ResumedTrials:    16,
		TrialsPerSec:     19.2,
		Fired:            40,
		FiredRate:        0.625,
		Masked:           30,
		Subtle:           24,
		Distorted:        10,
		HookFires:        4096,
		TracedTrials:     4,
		DecodeBatchSteps: 32,
		DecodeBatchRows:  224,
		BatchOccupancy:   7,
		AbftChecks:       500,
		AbftFlagged:      12,
		AbftDetected:     10,
		AbftMissed:       2,
		Workers: []core.WorkerSnapshot{
			{Trials: 40, BusySeconds: 1.5, Utilization: 0.6},
			{Trials: 24, BusySeconds: 1, Utilization: 0.4},
		},
		PhaseBucketBounds: []float64{0.001, 0.01},
		Phases: []core.PhaseSnapshot{
			{Phase: "prefill", Count: 6, SumSeconds: 0.012, Buckets: []int64{1, 3, 2}},
		},
	}
}

// TestWriteMetricsTextGolden pins the exposition format line by line:
// Prometheus scrapers are whitespace- and structure-sensitive, so the
// output must not drift.
func TestWriteMetricsTextGolden(t *testing.T) {
	var b strings.Builder
	if err := WriteMetricsText(&b, promSnapshot()); err != nil {
		t.Fatal(err)
	}
	got := b.String()

	want := []string{
		"# HELP llmfi_trials_total Trials configured for the campaign.",
		"# TYPE llmfi_trials_total gauge",
		"llmfi_trials_total 120",
		"llmfi_trials_done 64",
		"llmfi_trials_resumed 16",
		"llmfi_trials_fired 40",
		"llmfi_fired_rate 0.625",
		"llmfi_trials_per_second 19.2",
		"llmfi_elapsed_seconds 2.5",
		`llmfi_outcome_trials{class="masked"} 30`,
		`llmfi_outcome_trials{class="sdc_subtle"} 24`,
		`llmfi_outcome_trials{class="sdc_distorted"} 10`,
		"# TYPE llmfi_hook_fires_total counter",
		"llmfi_hook_fires_total 4096",
		"llmfi_traced_trials_total 4",
		"llmfi_decode_batch_steps_total 32",
		"llmfi_decode_batch_rows_total 224",
		"llmfi_decode_batch_occupancy 7",
		"llmfi_abft_checks_total 500",
		"llmfi_abft_flagged_total 12",
		"llmfi_abft_detected_total 10",
		"llmfi_abft_missed_total 2",
		"llmfi_abft_false_positives_total 0",
		"llmfi_abft_cascaded_total 0",
		"llmfi_abft_corrected_total 0",
		"llmfi_abft_skipped_total 0",
		`llmfi_worker_trials{worker="0"} 40`,
		`llmfi_worker_trials{worker="1"} 24`,
		`llmfi_worker_busy_seconds{worker="0"} 1.5`,
		`llmfi_worker_utilization{worker="1"} 0.4`,
		"# TYPE llmfi_phase_latency_seconds histogram",
		`llmfi_phase_latency_seconds_bucket{phase="prefill",le="0.001"} 1`,
		`llmfi_phase_latency_seconds_bucket{phase="prefill",le="0.01"} 4`,
		`llmfi_phase_latency_seconds_bucket{phase="prefill",le="+Inf"} 6`,
		`llmfi_phase_latency_seconds_sum{phase="prefill"} 0.012`,
		`llmfi_phase_latency_seconds_count{phase="prefill"} 6`,
	}
	for _, line := range want {
		if !strings.Contains(got, line+"\n") {
			t.Errorf("exposition missing line %q", line)
		}
	}
	// Structural invariants: every series line is preceded by HELP/TYPE
	// for its family, and no family appears twice.
	types := map[string]bool{}
	for _, line := range strings.Split(strings.TrimRight(got, "\n"), "\n") {
		if name, ok := strings.CutPrefix(line, "# TYPE "); ok {
			fam := strings.Fields(name)[0]
			if types[fam] {
				t.Errorf("family %s declared twice", fam)
			}
			types[fam] = true
		}
	}
	if len(types) == 0 {
		t.Fatal("no TYPE lines in exposition")
	}
}

// TestWriteMetricsTextEmpty: a zero snapshot (campaign not started) must
// still render core families without worker or histogram sections.
func TestWriteMetricsTextEmpty(t *testing.T) {
	var b strings.Builder
	if err := WriteMetricsText(&b, core.TelemetrySnapshot{}); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	if !strings.Contains(got, "llmfi_trials_total 0\n") {
		t.Fatal("zero snapshot missing trials gauge")
	}
	if strings.Contains(got, "llmfi_worker_trials") || strings.Contains(got, "llmfi_phase_latency_seconds") {
		t.Fatal("zero snapshot emitted empty optional families")
	}
}

// TestTraceFileRoundTrip writes records through the full OpenTrace /
// TraceWriter path and reads them back, covering truncate-on-fresh and
// append-on-resume semantics.
func TestTraceFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	mk := func(trial int) trace.Record {
		return trace.Record{
			Schema: trace.SchemaVersion, Trial: trial, Fault: "comp-1bit",
			Layer: "block0.up_proj", Bits: []int{9}, HighestBit: 9,
			StrikePos: 21, Fired: true, Outcome: "Masked",
			Spans: []trace.Span{{Phase: trace.PhaseDecode, Seconds: 0.25, Count: 7}},
		}
	}

	write := func(resuming bool, trials ...int) bool {
		f, appended, err := OpenTrace(path, resuming)
		if err != nil {
			t.Fatal(err)
		}
		tw := NewTraceWriter(f)
		for _, tr := range trials {
			if err := tw.Write(mk(tr)); err != nil {
				t.Fatal(err)
			}
		}
		if tw.Count() != len(trials) {
			t.Fatalf("writer count %d, want %d", tw.Count(), len(trials))
		}
		if err := tw.Close(); err != nil {
			t.Fatal(err)
		}
		return appended
	}
	read := func() []trace.Record {
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		recs, err := ReadTraces(f)
		if err != nil {
			t.Fatal(err)
		}
		return recs
	}

	if appended := write(false, 0, 1); appended {
		t.Fatal("fresh open reported appending")
	}
	recs := read()
	if len(recs) != 2 || recs[0].Trial != 0 || recs[1].Trial != 1 {
		t.Fatalf("bad round trip: %+v", recs)
	}
	if recs[0].Spans[0].Phase != trace.PhaseDecode || recs[0].Spans[0].Count != 7 {
		t.Fatalf("span did not round-trip: %+v", recs[0].Spans)
	}

	// Resume appends after the existing records.
	if appended := write(true, 2); !appended {
		t.Fatal("resume open did not report appending")
	}
	if recs = read(); len(recs) != 3 || recs[2].Trial != 2 {
		t.Fatalf("append semantics broken: %+v", recs)
	}

	// A fresh campaign truncates.
	if write(false, 5); len(read()) != 1 {
		t.Fatal("fresh open did not truncate")
	}

	// Schema mismatches are refused.
	if err := os.WriteFile(path, []byte(`{"schema":999}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := ReadTraces(f); err == nil {
		t.Fatal("unknown schema version accepted")
	}
}

// TestServerEndpoints drives the HTTP observability surface through
// httptest: /healthz, /metrics, and /trials with a ring of observed
// events.
func TestServerEndpoints(t *testing.T) {
	tel := core.NewTelemetry()
	srv := NewServer("bench camp", tel)
	for i := 0; i < recentTrials+3; i++ {
		srv.Observe(core.TrialDone{Index: i, Worker: i % 2, Trace: &trace.Record{}})
	}
	srv.Observe(core.Progress{Done: 67, Total: 120})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	get := func(path string) (*httptest.ResponseRecorder, string) {
		req := httptest.NewRequest("GET", path, nil)
		rr := httptest.NewRecorder()
		srv.Handler().ServeHTTP(rr, req)
		return rr, rr.Body.String()
	}

	rr, body := get("/healthz")
	if rr.Code != 200 {
		t.Fatalf("/healthz status %d", rr.Code)
	}
	var hz struct {
		Status   string `json:"status"`
		Label    string `json:"label"`
		Done     int    `json:"done"`
		Total    int    `json:"total"`
		Finished bool   `json:"finished"`
	}
	if err := json.Unmarshal([]byte(body), &hz); err != nil {
		t.Fatal(err)
	}
	if hz.Status != "ok" || hz.Label != "bench camp" || hz.Done != 67 || hz.Total != 120 || hz.Finished {
		t.Fatalf("bad /healthz payload %+v", hz)
	}

	rr, body = get("/metrics")
	if rr.Code != 200 {
		t.Fatalf("/metrics status %d", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("bad /metrics content type %q", ct)
	}
	for _, name := range []string{"llmfi_trials_done", "llmfi_fired_rate", "llmfi_hook_fires_total"} {
		if !strings.Contains(body, name) {
			t.Fatalf("/metrics missing %s", name)
		}
	}
	// Every llmfi Prometheus surface leads with the build-identity gauge,
	// labelled with the schema of the record stream it exports — here the
	// trace schema.
	if !strings.HasPrefix(body, "# HELP llmfi_build_info") {
		t.Fatal("/metrics does not lead with llmfi_build_info")
	}
	if want := fmt.Sprintf("llmfi_build_info{version=%q,schema=\"%d\"} 1\n", version.Version, trace.SchemaVersion); !strings.Contains(body, want) {
		t.Fatalf("/metrics missing %q", want)
	}

	// The pre-v1 path answers a permanent redirect to the versioned one.
	rr, _ = get("/trials")
	if rr.Code != 301 {
		t.Fatalf("/trials status %d, want 301", rr.Code)
	}
	if loc := rr.Header().Get("Location"); loc != APIVersion+"/trials" {
		t.Fatalf("/trials redirects to %q", loc)
	}

	rr, body = get(APIVersion + "/trials")
	if rr.Code != 200 {
		t.Fatalf("%s/trials status %d", APIVersion, rr.Code)
	}
	var trials []TrialEvent
	if err := json.Unmarshal([]byte(body), &trials); err != nil {
		t.Fatal(err)
	}
	if len(trials) != recentTrials {
		t.Fatalf("trials returned %d events, want ring size %d", len(trials), recentTrials)
	}
	// Newest first: the last observed index leads, and the ring dropped
	// the oldest three.
	if trials[0].Index != recentTrials+2 || trials[len(trials)-1].Index != 3 {
		t.Fatalf("trials order wrong: first %d last %d", trials[0].Index, trials[len(trials)-1].Index)
	}
	if !trials[0].Traced {
		t.Fatal("traced flag lost in trials payload")
	}

	// Wrong method and unknown API paths answer the JSON error envelope.
	post := func(path string) (*httptest.ResponseRecorder, string) {
		req := httptest.NewRequest("POST", path, nil)
		rr := httptest.NewRecorder()
		srv.Handler().ServeHTTP(rr, req)
		return rr, rr.Body.String()
	}
	rr, body = post(APIVersion + "/trials")
	if rr.Code != 405 || !strings.Contains(body, "method_not_allowed") {
		t.Fatalf("POST trials: status %d body %s", rr.Code, body)
	}
	rr, body = get(APIVersion + "/nope")
	if rr.Code != 404 || !strings.Contains(body, "not_found") {
		t.Fatalf("unknown API path: status %d body %s", rr.Code, body)
	}
	if ct := rr.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("error envelope content type %q", ct)
	}

	// CampaignDone flips /healthz to finished and surfaces the error.
	srv.Observe(core.CampaignDone{Err: errBoom{}})
	_, body = get("/healthz")
	if !strings.Contains(body, `"finished": true`) || !strings.Contains(body, "boom") {
		t.Fatalf("terminal state not reflected: %s", body)
	}

	// pprof index is mounted.
	if rr, _ := get("/debug/pprof/"); rr.Code != 200 {
		t.Fatalf("/debug/pprof/ status %d", rr.Code)
	}
}

type errBoom struct{}

func (errBoom) Error() string { return "boom" }
