package report

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/core"
)

// WriteTelemetryJSON dumps a campaign telemetry snapshot as indented
// JSON — the machine-readable counterpart of the live progress line,
// for dashboards and post-hoc throughput analysis.
func WriteTelemetryJSON(w io.Writer, s core.TelemetrySnapshot) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// ProgressLine renders a Progress event as a single-line status update
// suitable for overwriting in place on stderr (carriage return, no
// newline):
//
//	label  42/120 ( 35.0%)  3.1 trials/s  fired 61.9%  M/S/D 12/25/5  ETA 25s
func ProgressLine(label string, p core.Progress) string {
	line := fmt.Sprintf("%s  %d/%d (%5.1f%%)", label, p.Done, p.Total, p.Pct())
	if p.TrialsPerSec > 0 {
		line += fmt.Sprintf("  %.1f trials/s", p.TrialsPerSec)
	}
	if p.Done > 0 {
		line += fmt.Sprintf("  fired %.1f%%", 100*float64(p.Fired)/float64(p.Done))
	}
	line += fmt.Sprintf("  M/S/D %d/%d/%d", p.Tally.Masked, p.Tally.Subtle, p.Tally.Distorted)
	if eta := p.ETA(); eta > 0 {
		line += fmt.Sprintf("  ETA %s", eta.Round(time.Second))
	}
	return line
}

// SummaryLine renders the final state of a campaign as a one-line
// summary. Unlike ProgressLine it is meant to be printed with a newline
// and survive in the scrollback — the last carriage-return progress
// line is otherwise clobbered by whatever prints next.
func SummaryLine(label string, p core.Progress) string {
	line := fmt.Sprintf("%s  %d/%d trials in %s", label, p.Done, p.Total,
		p.Elapsed.Round(10*time.Millisecond))
	if p.TrialsPerSec > 0 {
		line += fmt.Sprintf("  %.1f trials/s", p.TrialsPerSec)
	}
	if p.Done > 0 {
		line += fmt.Sprintf("  fired %.1f%% (%d/%d)", 100*float64(p.Fired)/float64(p.Done), p.Fired, p.Done)
	}
	line += fmt.Sprintf("  M/S/D %d/%d/%d", p.Tally.Masked, p.Tally.Subtle, p.Tally.Distorted)
	return line
}
