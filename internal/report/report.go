// Package report renders experiment results as aligned ASCII tables and
// bar charts — the textual equivalents of the paper's figures.
package report

import (
	"fmt"
	"math"
	"strings"
)

// Table accumulates rows of cells and renders them column-aligned.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// Row appends a row; values are formatted with %v (float64 with %.4g).
func (t *Table) Row(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
}

func formatFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 0):
		return "Inf"
	case v == math.Trunc(v) && math.Abs(v) < 1e6:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(pad(c, widths[i]))
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Bar renders a labeled horizontal bar for a value in [lo, hi].
func Bar(label string, value, lo, hi float64, width int) string {
	frac := (value - lo) / (hi - lo)
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	n := int(frac * float64(width))
	return fmt.Sprintf("%-24s %7.4f |%s%s|", label, value,
		strings.Repeat("█", n), strings.Repeat(" ", width-n))
}

// BarChart renders a series of labeled values as horizontal bars scaled
// to [lo, hi].
func BarChart(labels []string, values []float64, lo, hi float64) string {
	var b strings.Builder
	for i, l := range labels {
		b.WriteString(Bar(l, values[i], lo, hi, 40))
		b.WriteByte('\n')
	}
	return b.String()
}

// CI formats a value with its confidence bounds.
func CI(v, lo, hi float64) string {
	return fmt.Sprintf("%.4f [%.4f, %.4f]", v, lo, hi)
}

// Section renders a titled block.
func Section(title, body string) string {
	return fmt.Sprintf("== %s ==\n%s", title, body)
}
