package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/internal/core"
	"repro/internal/metrics"
)

// WriteTrialsCSV dumps every trial of a campaign result as CSV for
// offline analysis/plotting: one row per injection with its site, the
// outcome class, and the per-metric scores. Columns:
//
//	trial,instance,fault,layer,row,col,bits,highest_bit,gen_iter,fired,
//	outcome,changed,expert_changed,steps,<one column per suite metric>
func WriteTrialsCSV(w io.Writer, res *core.Result) error {
	cw := csv.NewWriter(w)
	kinds := res.Campaign.Suite.Metrics
	header := []string{
		"trial", "instance", "fault", "layer", "row", "col", "bits",
		"highest_bit", "gen_iter", "fired", "outcome", "changed",
		"expert_changed", "steps",
	}
	for _, k := range kinds {
		header = append(header, string(k))
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for i, tr := range res.Trials {
		row := []string{
			strconv.Itoa(i),
			strconv.Itoa(tr.Instance),
			tr.Site.Fault.String(),
			tr.Site.Layer.String(),
			strconv.Itoa(tr.Site.Row),
			strconv.Itoa(tr.Site.Col),
			fmt.Sprint(tr.Site.Bits),
			strconv.Itoa(tr.Site.HighestBit()),
			strconv.Itoa(tr.Site.GenIter),
			strconv.FormatBool(tr.Fired),
			tr.Outcome.Class.String(),
			strconv.FormatBool(tr.Outcome.Changed),
			strconv.FormatBool(tr.ExpertChanged),
			strconv.Itoa(tr.Steps),
		}
		for _, k := range kinds {
			row = append(row, strconv.FormatFloat(tr.Metrics[k], 'g', 6, 64))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteSummaryCSV writes one row per metric with the campaign's
// normalized performance and interval — the figure-ready aggregate.
func WriteSummaryCSV(w io.Writer, res *core.Result) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"suite", "model", "fault", "metric", "baseline", "faulty",
		"norm_perf", "ci_lo", "ci_hi", "masked_rate", "trials",
	}); err != nil {
		return err
	}
	c := res.Campaign
	for _, k := range c.Suite.Metrics {
		r := res.Normalized(k)
		row := []string{
			c.Suite.Name, c.Model.Cfg.Name, c.Fault.String(), string(k),
			fmtF(res.Baseline.MetricMeans[metrics.Kind(k)]),
			fmtF(res.MetricMean(k)),
			fmtF(r.Value), fmtF(r.Lo), fmtF(r.Hi),
			fmtF(res.MaskedRate()),
			strconv.Itoa(len(res.Trials)),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func fmtF(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }
