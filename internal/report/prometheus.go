package report

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/version"
)

// ContentTypeMetrics is the Content-Type every llmfi /metrics endpoint
// serves: Prometheus text exposition format 0.0.4.
const ContentTypeMetrics = "text/plain; version=0.0.4; charset=utf-8"

// WriteBuildInfoText emits the llmfi_build_info gauge shared by every
// Prometheus surface (report, serve, fabric). Its labels pin the build:
// version from internal/version — the single source of truth the fleet
// handshake also compares — and the schema version of whatever record
// stream that surface exports (trace, span, or wire schema).
func WriteBuildInfoText(w io.Writer, schema int) error {
	_, err := fmt.Fprintf(w,
		"# HELP llmfi_build_info Build identity of this llmfi process.\n"+
			"# TYPE llmfi_build_info gauge\n"+
			"llmfi_build_info{version=%q,schema=\"%d\"} 1\n",
		version.Version, schema)
	return err
}

// WriteMetricsText renders a telemetry snapshot in the Prometheus text
// exposition format (version 0.0.4): campaign gauges, outcome-class and
// ABFT counters, per-worker series, and the per-phase latency
// histograms. Output is deterministic for a given snapshot — families in
// a fixed order, label values in input order — so it can be golden
// tested and diffed across scrapes.
func WriteMetricsText(w io.Writer, s core.TelemetrySnapshot) error {
	var b strings.Builder
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n",
			name, help, name, name, fmtVal(v))
	}
	counter := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %s\n",
			name, help, name, name, fmtVal(v))
	}

	gauge("llmfi_trials_total", "Trials configured for the campaign.", float64(s.TotalTrials))
	gauge("llmfi_trials_done", "Completed trials, including any restored from a resume checkpoint.", float64(s.DoneTrials))
	gauge("llmfi_trials_resumed", "Trials restored from a resume checkpoint (counted in llmfi_trials_done).", float64(s.ResumedTrials))
	gauge("llmfi_trials_fired", "Trials whose fault actually struck.", float64(s.Fired))
	gauge("llmfi_fired_rate", "Fraction of completed trials whose fault struck.", s.FiredRate)
	gauge("llmfi_trials_per_second", "Throughput of this run (resumed trials excluded).", s.TrialsPerSec)
	gauge("llmfi_elapsed_seconds", "Wall time since the campaign (or resumed run) started.", s.ElapsedSeconds)

	fmt.Fprintf(&b, "# HELP llmfi_outcome_trials Completed trials by outcome class.\n# TYPE llmfi_outcome_trials gauge\n")
	fmt.Fprintf(&b, "llmfi_outcome_trials{class=\"masked\"} %d\n", s.Masked)
	fmt.Fprintf(&b, "llmfi_outcome_trials{class=\"sdc_subtle\"} %d\n", s.Subtle)
	fmt.Fprintf(&b, "llmfi_outcome_trials{class=\"sdc_distorted\"} %d\n", s.Distorted)

	counter("llmfi_hook_fires_total", "Forward-hook invocations of the mitigation (ExtraHook) slot.", float64(s.HookFires))
	counter("llmfi_traced_trials_total", "Trials that produced a propagation-trace record.", float64(s.TracedTrials))

	counter("llmfi_decode_batch_steps_total", "Stacked decode steps of the continuous-batching scheduler.", float64(s.DecodeBatchSteps))
	counter("llmfi_decode_batch_rows_total", "Trial rows carried by stacked decode steps.", float64(s.DecodeBatchRows))
	gauge("llmfi_decode_batch_occupancy", "Mean in-flight trials per stacked decode step.", s.BatchOccupancy)

	counter("llmfi_abft_checks_total", "ABFT checksum evaluations.", float64(s.AbftChecks))
	counter("llmfi_abft_flagged_total", "ABFT checksum violations.", float64(s.AbftFlagged))
	counter("llmfi_abft_detected_total", "Fired trials flagged at the injection site.", float64(s.AbftDetected))
	counter("llmfi_abft_missed_total", "Fired trials the checker did not flag at the site.", float64(s.AbftMissed))
	counter("llmfi_abft_false_positives_total", "Violations with no fault active.", float64(s.AbftFalsePositives))
	counter("llmfi_abft_cascaded_total", "Downstream violations of a live fault.", float64(s.AbftCascaded))
	counter("llmfi_abft_corrected_total", "Flagged rows repaired by recomputation.", float64(s.AbftCorrected))
	counter("llmfi_abft_skipped_total", "Flagged rows zeroed after failed recomputation.", float64(s.AbftSkipped))

	if len(s.Workers) > 0 {
		fmt.Fprintf(&b, "# HELP llmfi_worker_trials Trials completed per pool worker.\n# TYPE llmfi_worker_trials gauge\n")
		for i, ws := range s.Workers {
			fmt.Fprintf(&b, "llmfi_worker_trials{worker=\"%d\"} %d\n", i, ws.Trials)
		}
		fmt.Fprintf(&b, "# HELP llmfi_worker_busy_seconds Time each worker spent inside trials.\n# TYPE llmfi_worker_busy_seconds gauge\n")
		for i, ws := range s.Workers {
			fmt.Fprintf(&b, "llmfi_worker_busy_seconds{worker=\"%d\"} %s\n", i, fmtVal(ws.BusySeconds))
		}
		fmt.Fprintf(&b, "# HELP llmfi_worker_utilization Worker busy time over campaign wall time.\n# TYPE llmfi_worker_utilization gauge\n")
		for i, ws := range s.Workers {
			fmt.Fprintf(&b, "llmfi_worker_utilization{worker=\"%d\"} %s\n", i, fmtVal(ws.Utilization))
		}
	}

	if len(s.Phases) > 0 {
		fmt.Fprintf(&b, "# HELP llmfi_phase_latency_seconds Per-trial latency by campaign phase.\n# TYPE llmfi_phase_latency_seconds histogram\n")
		for _, ph := range s.Phases {
			cum := int64(0)
			for i, n := range ph.Buckets {
				cum += n
				le := "+Inf"
				if i < len(s.PhaseBucketBounds) {
					le = fmtVal(s.PhaseBucketBounds[i])
				}
				fmt.Fprintf(&b, "llmfi_phase_latency_seconds_bucket{phase=%q,le=%q} %d\n", ph.Phase, le, cum)
			}
			fmt.Fprintf(&b, "llmfi_phase_latency_seconds_sum{phase=%q} %s\n", ph.Phase, fmtVal(ph.SumSeconds))
			fmt.Fprintf(&b, "llmfi_phase_latency_seconds_count{phase=%q} %d\n", ph.Phase, ph.Count)
		}
	}

	_, err := io.WriteString(w, b.String())
	return err
}

// fmtVal renders a sample value the way Prometheus clients do: shortest
// round-trip representation, integers without a decimal point.
func fmtVal(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
