package report

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/trace"
)

// TestStrictUnmarshal pins the client-side decode discipline: known
// fields round-trip, unknown fields — schema growth on the far side —
// fail loudly instead of being silently dropped.
func TestStrictUnmarshal(t *testing.T) {
	var v struct {
		Worker string `json:"worker_name"`
	}
	if err := StrictUnmarshal([]byte(`{"worker_name":"w0"}`), &v); err != nil {
		t.Fatalf("known fields rejected: %v", err)
	}
	if v.Worker != "w0" {
		t.Fatalf("Worker = %q, want w0", v.Worker)
	}
	err := StrictUnmarshal([]byte(`{"worker_name":"w0","from_the_future":1}`), &v)
	if err == nil || !strings.Contains(err.Error(), "from_the_future") {
		t.Fatalf("unknown field not rejected: %v", err)
	}
}

// TestReadTracesRejectsUnknownField: a trace record carrying a key this
// reader doesn't know means the file was written by a newer schema —
// refuse it rather than drop the field.
func TestReadTracesRejectsUnknownField(t *testing.T) {
	line := fmt.Sprintf(`{"schema":%d,"from_the_future":true}`+"\n", trace.SchemaVersion)
	if _, err := ReadTraces(strings.NewReader(line)); err == nil ||
		!strings.Contains(err.Error(), "from_the_future") {
		t.Fatalf("unknown field not rejected: %v", err)
	}
}
