package report

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"sync"

	"repro/internal/core"
	"repro/internal/trace"
)

// recentTrials bounds the /trials ring buffer.
const recentTrials = 64

// TrialEvent is the JSON rendering of one recent TrialDone event served
// by /trials.
type TrialEvent struct {
	Index    int    `json:"index"`
	Worker   int    `json:"worker"`
	Site     string `json:"site"`
	Fired    bool   `json:"fired"`
	Outcome  string `json:"outcome"`
	AnswerOK bool   `json:"answer_ok"`
	Steps    int    `json:"steps"`
	Traced   bool   `json:"traced"`
}

// Server exposes a live campaign over HTTP: /metrics (Prometheus text
// exposition of the telemetry snapshot, including the per-phase latency
// histograms), /healthz (liveness + campaign progress), /api/v1/trials
// (the most recent TrialDone events, newest first; the pre-v1 /trials
// path answers 301 to it), and net/http/pprof under /debug/pprof/.
// Unknown /api/v1 paths and wrong methods answer the JSON error
// envelope (APIError). Feed it events from the runner's stream via
// Observe; all handlers are safe for concurrent use while the campaign
// runs.
type Server struct {
	label string
	tel   *core.Telemetry

	mu       sync.Mutex
	done     int
	total    int
	finished bool
	errMsg   string
	recent   []TrialEvent // ring, newest at (next-1+len)%len once full
	next     int
}

// NewServer returns a Server reading metrics from tel.
func NewServer(label string, tel *core.Telemetry) *Server {
	return &Server{label: label, tel: tel}
}

// Observe folds one campaign event into the server's live state.
func (s *Server) Observe(ev core.Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch e := ev.(type) {
	case core.TrialDone:
		te := TrialEvent{
			Index:    e.Index,
			Worker:   e.Worker,
			Site:     e.Trial.Site.String(),
			Fired:    e.Trial.Fired,
			Outcome:  e.Trial.Outcome.Class.String(),
			AnswerOK: e.Trial.AnswerOK,
			Steps:    e.Trial.Steps,
			Traced:   e.Trace != nil,
		}
		if len(s.recent) < recentTrials {
			s.recent = append(s.recent, te)
			s.next = len(s.recent) % recentTrials
		} else {
			s.recent[s.next] = te
			s.next = (s.next + 1) % recentTrials
		}
	case core.Progress:
		s.done, s.total = e.Done, e.Total
	case core.CampaignDone:
		s.finished = true
		if e.Err != nil {
			s.errMsg = e.Err.Error()
		}
	}
}

// Handler returns the server's route mux. The conventional operational
// paths (/metrics, /healthz, /debug/pprof) stay at their expected
// locations; campaign data lives under the versioned APIVersion prefix.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc(APIVersion+"/trials", s.handleTrials)
	// The pre-v1 path survives as a permanent redirect so existing
	// dashboards and curl muscle memory keep working.
	mux.Handle("/trials", http.RedirectHandler(APIVersion+"/trials", http.StatusMovedPermanently))
	// Everything else under the API prefix is a typed JSON 404 — API
	// consumers should never see the default text/html error page.
	mux.HandleFunc(APIVersion+"/", func(w http.ResponseWriter, r *http.Request) {
		WriteAPIError(w, http.StatusNotFound, "not_found", "unknown API path "+r.URL.Path)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", ContentTypeMetrics)
	_ = WriteBuildInfoText(w, trace.SchemaVersion)
	_ = WriteMetricsText(w, s.tel.Snapshot())
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	resp := struct {
		Status   string `json:"status"`
		Label    string `json:"label"`
		Done     int    `json:"done"`
		Total    int    `json:"total"`
		Finished bool   `json:"finished"`
		Error    string `json:"error,omitempty"`
	}{Status: "ok", Label: s.label, Done: s.done, Total: s.total, Finished: s.finished, Error: s.errMsg}
	s.mu.Unlock()
	writeJSON(w, resp)
}

func (s *Server) handleTrials(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		WriteAPIError(w, http.StatusMethodNotAllowed, "method_not_allowed", r.Method+" not allowed; use GET")
		return
	}
	s.mu.Lock()
	out := make([]TrialEvent, 0, len(s.recent))
	// Newest first: walk the ring backwards from the last write.
	for i := 0; i < len(s.recent); i++ {
		j := (s.next - 1 - i + 2*recentTrials) % recentTrials
		if j < len(s.recent) {
			out = append(out, s.recent[j])
		}
	}
	s.mu.Unlock()
	writeJSON(w, out)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
