package tensor

import (
	"runtime"
	"sync"
)

// minRowsPerWorker keeps tiny matmuls single-threaded; spawning goroutines
// for a 1×64 · 64×64 product costs more than the product.
const minRowsPerWorker = 32

// MatMul computes out = a · b with up to GOMAXPROCS worker goroutines.
// Callers that must bound their CPU share (campaign workers splitting the
// machine) use MatMulP with an explicit worker count instead; there is no
// package-global parallelism knob.
func MatMul(out, a, b *Tensor) {
	MatMulP(out, a, b, runtime.GOMAXPROCS(0))
}

// MatMulP computes out = a · b where a is m×k and b is k×n, using at most
// workers goroutines (values < 1 mean serial). out must be m×n and
// distinct from a and b. Work is split across rows of a when the product
// is large enough, so the per-row arithmetic — and therefore the result —
// is bit-identical for every worker count.
//
// The kernel iterates k in the middle loop with b accessed row-wise so the
// inner loop is a contiguous saxpy — the standard cache-friendly ikj
// ordering. Accumulation is in float32, matching GPU tensor-core GEMM
// behaviour closely enough for this study (fault magnitudes dwarf
// accumulation-order noise).
func MatMulP(out, a, b *Tensor, workers int) {
	if a.Cols != b.Rows || out.Rows != a.Rows || out.Cols != b.Cols {
		panic("tensor: MatMul shape mismatch")
	}
	if workers > 1 && a.Rows >= minRowsPerWorker*2 {
		parallelRows(a.Rows, workers, func(r0, r1 int) {
			matmulRowsBlocked(out, a, b, r0, r1)
		})
		return
	}
	matmulRowsBlocked(out, a, b, 0, a.Rows)
}

// MatMulRows computes the first rows rows of out = a · b, leaving the
// remaining rows of out untouched. This is the batched-decode GEMM entry
// point: a continuous-batching scheduler keeps activation tensors sized
// for its batch capacity and stacks however many trials are currently in
// flight into the leading rows. Each output row's accumulation sequence
// is bit-identical to MatVec on that row (p ascending with zero inputs
// skipped, then the contiguous saxpy in x ascending order), so one
// rows×k matmul per layer per step replaces rows GEMVs without changing
// a single bit of any trial's result — for every worker count.
func MatMulRows(out, a, b *Tensor, rows, workers int) {
	if a.Cols != b.Rows || out.Rows != a.Rows || out.Cols != b.Cols {
		panic("tensor: MatMulRows shape mismatch")
	}
	if rows < 0 || rows > a.Rows {
		panic("tensor: MatMulRows row count out of range")
	}
	if workers > 1 && rows >= minRowsPerWorker*2 {
		parallelRows(rows, workers, func(r0, r1 int) {
			matmulRowsBlocked(out, a, b, r0, r1)
		})
		return
	}
	matmulRowsBlocked(out, a, b, 0, rows)
}

// matmulRowsBlocked computes rows [r0, r1) of out = a·b through the
// register-tiled row kernel behind MatVec. Per-row dispatch is a
// deliberate choice over cross-row register blocking: the weight
// matrices of this study are L1-resident, so sharing loaded b elements
// across rows buys nothing, while the extra per-row zero-skip branching
// a shared-load kernel needs (each row must skip exactly the inputs
// MatVec would skip, or bit-identity breaks) costs more than the loads
// it saves — measured in BenchmarkMatMulRows vs BenchmarkMatVecLoop.
// Rows remain the parallel-split axis for multi-worker calls.
func matmulRowsBlocked(out, a, b *Tensor, r0, r1 int) {
	n := b.Cols
	k := a.Cols
	for i := r0; i < r1; i++ {
		matVecTiled(out.Data[i*n:(i+1)*n], a.Data[i*k:(i+1)*k], b.Data, n)
	}
}

// matmulRows computes rows [r0, r1) of out = a·b.
func matmulRows(out, a, b *Tensor, r0, r1 int) {
	n := b.Cols
	k := a.Cols
	for i := r0; i < r1; i++ {
		orow := out.Data[i*n : (i+1)*n]
		for x := range orow {
			orow[x] = 0
		}
		arow := a.Data[i*k : (i+1)*k]
		for p := 0; p < k; p++ {
			av := arow[p]
			if av == 0 {
				continue
			}
			brow := b.Data[p*n : (p+1)*n]
			for x, bv := range brow {
				orow[x] += av * bv
			}
		}
	}
}

// MatMulT computes out = a · bᵀ where a is m×k and b is n×k, so out is
// m×n. This is the natural layout for attention scores (Q·Kᵀ) and lets
// both operands stream row-wise.
func MatMulT(out, a, b *Tensor) {
	if a.Cols != b.Cols || out.Rows != a.Rows || out.Cols != b.Rows {
		panic("tensor: MatMulT shape mismatch")
	}
	k := a.Cols
	n := b.Rows
	body := func(r0, r1 int) {
		for i := r0; i < r1; i++ {
			arow := a.Data[i*k : (i+1)*k]
			orow := out.Data[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				brow := b.Data[j*k : (j+1)*k]
				var sum float32
				for p, av := range arow {
					sum += av * brow[p]
				}
				orow[j] = sum
			}
		}
	}
	if workers := runtime.GOMAXPROCS(0); workers > 1 && a.Rows >= minRowsPerWorker*2 {
		parallelRows(a.Rows, workers, body)
		return
	}
	body(0, a.Rows)
}

// MatMulAT computes out = aᵀ · b where a is t×m and b is t×n, so out is
// m×n. This is the dW = Xᵀ·dY shape of linear-layer backprop.
func MatMulAT(out, a, b *Tensor) {
	if a.Rows != b.Rows || out.Rows != a.Cols || out.Cols != b.Cols {
		panic("tensor: MatMulAT shape mismatch")
	}
	for i := range out.Data {
		out.Data[i] = 0
	}
	m, n := a.Cols, b.Cols
	for t := 0; t < a.Rows; t++ {
		arow := a.Data[t*m : (t+1)*m]
		brow := b.Data[t*n : (t+1)*n]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			orow := out.Data[i*n : (i+1)*n]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// AddMatMulAT computes out += aᵀ · b, accumulating into out (gradient
// accumulation across a batch).
func AddMatMulAT(out, a, b *Tensor) {
	if a.Rows != b.Rows || out.Rows != a.Cols || out.Cols != b.Cols {
		panic("tensor: AddMatMulAT shape mismatch")
	}
	m, n := a.Cols, b.Cols
	for t := 0; t < a.Rows; t++ {
		arow := a.Data[t*m : (t+1)*m]
		brow := b.Data[t*n : (t+1)*n]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			orow := out.Data[i*n : (i+1)*n]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// parallelRows splits [0, rows) into contiguous chunks and runs body on
// each chunk in its own goroutine, waiting for all to finish.
func parallelRows(rows, workers int, body func(r0, r1 int)) {
	if workers > rows {
		workers = rows
	}
	var wg sync.WaitGroup
	chunk := (rows + workers - 1) / workers
	for r0 := 0; r0 < rows; r0 += chunk {
		r1 := r0 + chunk
		if r1 > rows {
			r1 = rows
		}
		wg.Add(1)
		go func(r0, r1 int) {
			defer wg.Done()
			body(r0, r1)
		}(r0, r1)
	}
	wg.Wait()
}

// MatVec computes out = x · w where x is a 1×k row vector and w is k×n.
// It is the hot path of single-token decoding. The kernel tiles eight
// output columns into register accumulators per pass over x, replacing
// the saxpy form's per-element load/store of out with one store per
// column; each out element's accumulation sequence (p ascending, zero
// inputs skipped) is unchanged, so the rewrite is bit-identical to the
// reference saxpy kernel — the contract every batched and blocked GEMM
// in this package is pinned to.
func MatVec(out []float32, x []float32, w *Tensor) {
	if len(x) != w.Rows || len(out) != w.Cols {
		panic("tensor: MatVec shape mismatch")
	}
	matVecTiled(out, x, w.Data, w.Cols)
}

// matVecTiled is the shared row kernel: out = x · w for one activation
// row, where wd is the k×n weight data laid out row-major.
func matVecTiled(out, x, wd []float32, n int) {
	i := 0
	for ; i+8 <= n; i += 8 {
		var s0, s1, s2, s3, s4, s5, s6, s7 float32
		off := i
		for _, xv := range x {
			if xv != 0 {
				wr := wd[off : off+8 : off+8]
				s0 += xv * wr[0]
				s1 += xv * wr[1]
				s2 += xv * wr[2]
				s3 += xv * wr[3]
				s4 += xv * wr[4]
				s5 += xv * wr[5]
				s6 += xv * wr[6]
				s7 += xv * wr[7]
			}
			off += n
		}
		out[i], out[i+1], out[i+2], out[i+3] = s0, s1, s2, s3
		out[i+4], out[i+5], out[i+6], out[i+7] = s4, s5, s6, s7
	}
	for ; i < n; i++ {
		var s float32
		off := i
		for _, xv := range x {
			if xv != 0 {
				s += xv * wd[off]
			}
			off += n
		}
		out[i] = s
	}
}
