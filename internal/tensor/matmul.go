package tensor

import (
	"runtime"
	"sync"
)

// minRowsPerWorker keeps tiny matmuls single-threaded; spawning goroutines
// for a 1×64 · 64×64 product costs more than the product.
const minRowsPerWorker = 32

// MatMul computes out = a · b with up to GOMAXPROCS worker goroutines.
// Callers that must bound their CPU share (campaign workers splitting the
// machine) use MatMulP with an explicit worker count instead; there is no
// package-global parallelism knob.
func MatMul(out, a, b *Tensor) {
	MatMulP(out, a, b, runtime.GOMAXPROCS(0))
}

// MatMulP computes out = a · b where a is m×k and b is k×n, using at most
// workers goroutines (values < 1 mean serial). out must be m×n and
// distinct from a and b. Work is split across rows of a when the product
// is large enough, so the per-row arithmetic — and therefore the result —
// is bit-identical for every worker count.
//
// The kernel iterates k in the middle loop with b accessed row-wise so the
// inner loop is a contiguous saxpy — the standard cache-friendly ikj
// ordering. Accumulation is in float32, matching GPU tensor-core GEMM
// behaviour closely enough for this study (fault magnitudes dwarf
// accumulation-order noise).
func MatMulP(out, a, b *Tensor, workers int) {
	if a.Cols != b.Rows || out.Rows != a.Rows || out.Cols != b.Cols {
		panic("tensor: MatMul shape mismatch")
	}
	if workers > 1 && a.Rows >= minRowsPerWorker*2 {
		parallelRows(a.Rows, workers, func(r0, r1 int) {
			matmulRows(out, a, b, r0, r1)
		})
		return
	}
	matmulRows(out, a, b, 0, a.Rows)
}

// matmulRows computes rows [r0, r1) of out = a·b.
func matmulRows(out, a, b *Tensor, r0, r1 int) {
	n := b.Cols
	k := a.Cols
	for i := r0; i < r1; i++ {
		orow := out.Data[i*n : (i+1)*n]
		for x := range orow {
			orow[x] = 0
		}
		arow := a.Data[i*k : (i+1)*k]
		for p := 0; p < k; p++ {
			av := arow[p]
			if av == 0 {
				continue
			}
			brow := b.Data[p*n : (p+1)*n]
			for x, bv := range brow {
				orow[x] += av * bv
			}
		}
	}
}

// MatMulT computes out = a · bᵀ where a is m×k and b is n×k, so out is
// m×n. This is the natural layout for attention scores (Q·Kᵀ) and lets
// both operands stream row-wise.
func MatMulT(out, a, b *Tensor) {
	if a.Cols != b.Cols || out.Rows != a.Rows || out.Cols != b.Rows {
		panic("tensor: MatMulT shape mismatch")
	}
	k := a.Cols
	n := b.Rows
	body := func(r0, r1 int) {
		for i := r0; i < r1; i++ {
			arow := a.Data[i*k : (i+1)*k]
			orow := out.Data[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				brow := b.Data[j*k : (j+1)*k]
				var sum float32
				for p, av := range arow {
					sum += av * brow[p]
				}
				orow[j] = sum
			}
		}
	}
	if workers := runtime.GOMAXPROCS(0); workers > 1 && a.Rows >= minRowsPerWorker*2 {
		parallelRows(a.Rows, workers, body)
		return
	}
	body(0, a.Rows)
}

// MatMulAT computes out = aᵀ · b where a is t×m and b is t×n, so out is
// m×n. This is the dW = Xᵀ·dY shape of linear-layer backprop.
func MatMulAT(out, a, b *Tensor) {
	if a.Rows != b.Rows || out.Rows != a.Cols || out.Cols != b.Cols {
		panic("tensor: MatMulAT shape mismatch")
	}
	for i := range out.Data {
		out.Data[i] = 0
	}
	m, n := a.Cols, b.Cols
	for t := 0; t < a.Rows; t++ {
		arow := a.Data[t*m : (t+1)*m]
		brow := b.Data[t*n : (t+1)*n]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			orow := out.Data[i*n : (i+1)*n]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// AddMatMulAT computes out += aᵀ · b, accumulating into out (gradient
// accumulation across a batch).
func AddMatMulAT(out, a, b *Tensor) {
	if a.Rows != b.Rows || out.Rows != a.Cols || out.Cols != b.Cols {
		panic("tensor: AddMatMulAT shape mismatch")
	}
	m, n := a.Cols, b.Cols
	for t := 0; t < a.Rows; t++ {
		arow := a.Data[t*m : (t+1)*m]
		brow := b.Data[t*n : (t+1)*n]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			orow := out.Data[i*n : (i+1)*n]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// parallelRows splits [0, rows) into contiguous chunks and runs body on
// each chunk in its own goroutine, waiting for all to finish.
func parallelRows(rows, workers int, body func(r0, r1 int)) {
	if workers > rows {
		workers = rows
	}
	var wg sync.WaitGroup
	chunk := (rows + workers - 1) / workers
	for r0 := 0; r0 < rows; r0 += chunk {
		r1 := r0 + chunk
		if r1 > rows {
			r1 = rows
		}
		wg.Add(1)
		go func(r0, r1 int) {
			defer wg.Done()
			body(r0, r1)
		}(r0, r1)
	}
	wg.Wait()
}

// MatVec computes out = x · w where x is a 1×k row vector and w is k×n.
// It is the hot path of single-token decoding.
func MatVec(out []float32, x []float32, w *Tensor) {
	if len(x) != w.Rows || len(out) != w.Cols {
		panic("tensor: MatVec shape mismatch")
	}
	for i := range out {
		out[i] = 0
	}
	n := w.Cols
	for p, xv := range x {
		if xv == 0 {
			continue
		}
		wrow := w.Data[p*n : (p+1)*n]
		for i, wv := range wrow {
			out[i] += xv * wv
		}
	}
}
