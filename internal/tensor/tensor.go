// Package tensor provides the dense linear-algebra substrate of the
// inference engine: row-major float32 matrices, a parallel blocked GEMM,
// the elementwise and reduction operations transformer blocks need, and
// the column/row statistics used to trace fault propagation (Figures 5–6
// of the paper).
//
// Values are stored as float32 but logically belong to a numerics.DType;
// operations that must respect the storage format (fault injection,
// requantization) go through that package.
package tensor

import (
	"fmt"
	"math"
)

// Tensor is a dense row-major matrix. A vector is a Tensor with Rows == 1.
// The zero value is an empty tensor; use New or FromSlice for real data.
type Tensor struct {
	Rows, Cols int
	Data       []float32
}

// New returns a zero-filled Rows×Cols tensor.
func New(rows, cols int) *Tensor {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: invalid shape %dx%d", rows, cols))
	}
	return &Tensor{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// FromSlice wraps data (length rows*cols) without copying.
func FromSlice(rows, cols int, data []float32) *Tensor {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: data length %d does not match %dx%d", len(data), rows, cols))
	}
	return &Tensor{Rows: rows, Cols: cols, Data: data}
}

// At returns element (r, c).
func (t *Tensor) At(r, c int) float32 { return t.Data[r*t.Cols+c] }

// Set assigns element (r, c).
func (t *Tensor) Set(r, c int, v float32) { t.Data[r*t.Cols+c] = v }

// Row returns row r as a slice sharing the tensor's storage.
func (t *Tensor) Row(r int) []float32 { return t.Data[r*t.Cols : (r+1)*t.Cols] }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	out := New(t.Rows, t.Cols)
	copy(out.Data, t.Data)
	return out
}

// CopyFrom copies src's contents into t; shapes must match.
func (t *Tensor) CopyFrom(src *Tensor) {
	if t.Rows != src.Rows || t.Cols != src.Cols {
		panic(fmt.Sprintf("tensor: copy shape mismatch %dx%d vs %dx%d", t.Rows, t.Cols, src.Rows, src.Cols))
	}
	copy(t.Data, src.Data)
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// Equal reports whether two tensors have identical shape and bitwise-equal
// elements (NaNs compare equal to NaNs so corrupted tensors can be
// compared for change detection).
func Equal(a, b *Tensor) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i, v := range a.Data {
		w := b.Data[i]
		if v != w && !(math.IsNaN(float64(v)) && math.IsNaN(float64(w))) {
			return false
		}
	}
	return true
}

// MaxAbsDiff returns the largest absolute elementwise difference between
// a and b. Differences involving NaN or Inf report +Inf.
func MaxAbsDiff(a, b *Tensor) float64 {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic("tensor: MaxAbsDiff shape mismatch")
	}
	maxd := 0.0
	for i := range a.Data {
		d := math.Abs(float64(a.Data[i]) - float64(b.Data[i]))
		if math.IsNaN(d) {
			return math.Inf(1)
		}
		if d > maxd {
			maxd = d
		}
	}
	return maxd
}

// AddInPlace sets t += other elementwise.
func (t *Tensor) AddInPlace(other *Tensor) {
	if t.Rows != other.Rows || t.Cols != other.Cols {
		panic("tensor: AddInPlace shape mismatch")
	}
	for i := range t.Data {
		t.Data[i] += other.Data[i]
	}
}

// MulInPlace sets t *= other elementwise (Hadamard product).
func (t *Tensor) MulInPlace(other *Tensor) {
	if t.Rows != other.Rows || t.Cols != other.Cols {
		panic("tensor: MulInPlace shape mismatch")
	}
	for i := range t.Data {
		t.Data[i] *= other.Data[i]
	}
}

// ScaleInPlace multiplies every element by s.
func (t *Tensor) ScaleInPlace(s float32) {
	for i := range t.Data {
		t.Data[i] *= s
	}
}

// Apply replaces each element x with f(x).
func (t *Tensor) Apply(f func(float32) float32) {
	for i, v := range t.Data {
		t.Data[i] = f(v)
	}
}

// String renders a compact shape descriptor, not the contents.
func (t *Tensor) String() string {
	return fmt.Sprintf("Tensor(%dx%d)", t.Rows, t.Cols)
}
