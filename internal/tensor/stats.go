package tensor

import (
	"fmt"
	"math"
	"strings"
)

// ColumnMaxAbs returns, per column, the maximum absolute value. A memory
// fault in a weight corrupts one GEMM output column (Figure 5), so a
// spike in exactly one entry of this profile is the memory-fault
// signature.
func (t *Tensor) ColumnMaxAbs() []float64 {
	out := make([]float64, t.Cols)
	for r := 0; r < t.Rows; r++ {
		row := t.Row(r)
		for c, v := range row {
			a := math.Abs(float64(v))
			if math.IsNaN(a) {
				a = math.Inf(1)
			}
			if a > out[c] {
				out[c] = a
			}
		}
	}
	return out
}

// RowMaxAbs returns, per row, the maximum absolute value — the
// computational-fault signature (Figure 6) is a spike in one row.
func (t *Tensor) RowMaxAbs() []float64 {
	out := make([]float64, t.Rows)
	for r := 0; r < t.Rows; r++ {
		for _, v := range t.Row(r) {
			a := math.Abs(float64(v))
			if math.IsNaN(a) {
				a = math.Inf(1)
			}
			if a > out[r] {
				out[r] = a
			}
		}
	}
	return out
}

// CorruptionMask compares t against a reference and returns a boolean
// matrix marking elements that differ by more than tol (relative to the
// reference magnitude, with an absolute floor). It drives the propagation
// heatmaps of Figures 5–6.
func CorruptionMask(t, ref *Tensor, tol float64) [][]bool {
	if t.Rows != ref.Rows || t.Cols != ref.Cols {
		panic("tensor: CorruptionMask shape mismatch")
	}
	mask := make([][]bool, t.Rows)
	for r := 0; r < t.Rows; r++ {
		mask[r] = make([]bool, t.Cols)
		for c := 0; c < t.Cols; c++ {
			a, b := float64(t.At(r, c)), float64(ref.At(r, c))
			diff := math.Abs(a - b)
			if math.IsNaN(a) != math.IsNaN(b) || math.IsNaN(diff) {
				mask[r][c] = true
				continue
			}
			scale := math.Abs(b)
			if scale < 1 {
				scale = 1
			}
			mask[r][c] = diff > tol*scale
		}
	}
	return mask
}

// MaskStats summarizes a corruption mask: the fraction of corrupted
// elements, and how many full columns / full rows are corrupted (every
// element in them differing). These are the quantities behind the
// paper's "entire column" vs "single row" propagation narrative.
type MaskStats struct {
	Corrupted     int
	Total         int
	FullColumns   int
	FullRows      int
	TouchedCols   int
	TouchedRows   int
	CorruptedFrac float64
}

// SummarizeMask computes MaskStats for mask.
func SummarizeMask(mask [][]bool) MaskStats {
	var s MaskStats
	if len(mask) == 0 {
		return s
	}
	rows, cols := len(mask), len(mask[0])
	s.Total = rows * cols
	colCount := make([]int, cols)
	for _, row := range mask {
		rc := 0
		for c, hit := range row {
			if hit {
				s.Corrupted++
				rc++
				colCount[c]++
			}
		}
		if rc > 0 {
			s.TouchedRows++
		}
		if rc == cols {
			s.FullRows++
		}
	}
	for _, n := range colCount {
		if n > 0 {
			s.TouchedCols++
		}
		if n == rows {
			s.FullColumns++
		}
	}
	if s.Total > 0 {
		s.CorruptedFrac = float64(s.Corrupted) / float64(s.Total)
	}
	return s
}

// Heatmap renders an ASCII heatmap of |t| in log scale, clipped to at most
// maxR×maxC cells (the paper shows the first 50×50 elements). Darker
// characters mean larger magnitude; '#' marks extreme values caused by
// faults (the yellow cells of Figure 5).
func (t *Tensor) Heatmap(maxR, maxC int) string {
	shades := []byte(" .:-=+*%@#")
	rows, cols := t.Rows, t.Cols
	if rows > maxR {
		rows = maxR
	}
	if cols > maxC {
		cols = maxC
	}
	// Log-scale bounds over the clipped region, ignoring non-finite.
	lo, hi := math.Inf(1), math.Inf(-1)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			a := math.Abs(float64(t.At(r, c)))
			if a == 0 || math.IsInf(a, 0) || math.IsNaN(a) {
				continue
			}
			l := math.Log10(a)
			if l < lo {
				lo = l
			}
			if l > hi {
				hi = l
			}
		}
	}
	if lo > hi { // all zero / non-finite
		lo, hi = 0, 1
	}
	if hi == lo {
		hi = lo + 1
	}
	var b strings.Builder
	fmt.Fprintf(&b, "|abs| log10 range [%.2f, %.2f], showing %dx%d of %dx%d\n", lo, hi, rows, cols, t.Rows, t.Cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			a := math.Abs(float64(t.At(r, c)))
			var ch byte
			switch {
			case math.IsNaN(a) || math.IsInf(a, 0) || a >= 1e30:
				ch = '#'
			case a == 0:
				ch = ' '
			default:
				f := (math.Log10(a) - lo) / (hi - lo)
				if f < 0 {
					f = 0
				}
				if f > 1 {
					f = 1
				}
				ch = shades[int(f*float64(len(shades)-2))]
			}
			b.WriteByte(ch)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
