package tensor

import "math"

// Softmax replaces each row of t with its softmax. The max-subtraction
// trick keeps the computation finite for ordinary rows; rows corrupted to
// +Inf by a fault saturate to a one-hot distribution and rows containing
// NaN stay NaN, both of which mirror what PyTorch produces and both of
// which the outcome classifier must cope with.
func Softmax(t *Tensor) {
	for r := 0; r < t.Rows; r++ {
		SoftmaxRow(t.Row(r))
	}
}

// SoftmaxRow computes an in-place softmax over row.
func SoftmaxRow(row []float32) {
	maxv := float32(math.Inf(-1))
	for _, v := range row {
		if v > maxv {
			maxv = v
		}
	}
	if math.IsInf(float64(maxv), -1) {
		// All -Inf (fully masked row): uniform, matching framework behaviour
		// of exp(-Inf - -Inf) handling; choose uniform to stay finite.
		u := float32(1) / float32(len(row))
		for i := range row {
			row[i] = u
		}
		return
	}
	if math.IsInf(float64(maxv), 1) {
		// A fault saturated some entries to +Inf: the distribution
		// concentrates on them (exp(Inf)/exp(Inf) elsewhere underflows).
		nInf := 0
		for _, v := range row {
			if math.IsInf(float64(v), 1) {
				nInf++
			}
		}
		u := float32(1) / float32(nInf)
		for i, v := range row {
			if math.IsInf(float64(v), 1) {
				row[i] = u
			} else {
				row[i] = 0
			}
		}
		return
	}
	var sum float64
	for i, v := range row {
		e := math.Exp(float64(v - maxv))
		row[i] = float32(e)
		sum += e
	}
	if sum == 0 || math.IsNaN(sum) {
		// Degenerate (NaN contamination): leave NaNs to propagate.
		for i := range row {
			row[i] = float32(math.NaN())
		}
		return
	}
	inv := float32(1 / sum)
	for i := range row {
		row[i] *= inv
	}
}

// LogSoftmaxRow returns the log-softmax of row as float64s, used for
// option scoring (summed token log-likelihoods) in multiple-choice tasks.
func LogSoftmaxRow(row []float32) []float64 {
	out := make([]float64, len(row))
	maxv := float64(math.Inf(-1))
	for _, v := range row {
		if float64(v) > maxv {
			maxv = float64(v)
		}
	}
	var sum float64
	for _, v := range row {
		sum += math.Exp(float64(v) - maxv)
	}
	logZ := maxv + math.Log(sum)
	for i, v := range row {
		out[i] = float64(v) - logZ
	}
	return out
}

// RMSNormRow normalizes row in place by its root-mean-square and applies
// the per-channel gain, the normalization used by Llama-family models.
// eps guards the division. A row corrupted to huge magnitude is squashed
// back to ~±gain — this is precisely the masking effect the paper credits
// for the resilience to computational faults (Figure 6).
func RMSNormRow(row, gain []float32, eps float32) {
	var ss float64
	for _, v := range row {
		ss += float64(v) * float64(v)
	}
	inv := 1 / math.Sqrt(ss/float64(len(row))+float64(eps))
	for i := range row {
		row[i] = float32(float64(row[i])*inv) * gain[i]
	}
}

// SiLU applies x*sigmoid(x) elementwise, the activation inside SwiGLU.
func SiLU(t *Tensor) {
	for i, v := range t.Data {
		t.Data[i] = siluScalar(v)
	}
}

func siluScalar(v float32) float32 {
	return float32(float64(v) / (1 + math.Exp(-float64(v))))
}

// Argmax returns the index of the largest value in row, with ties broken
// toward the lower index (greedy decoding's determinism depends on this).
// NaNs are skipped; a row of all NaNs returns 0.
func Argmax(row []float32) int {
	best := 0
	bestv := float32(math.Inf(-1))
	for i, v := range row {
		if math.IsNaN(float64(v)) {
			continue
		}
		if v > bestv {
			bestv = v
			best = i
		}
	}
	return best
}

// TopK returns the indices of the k largest values of row in descending
// value order (ties toward lower index), used by the MoE router.
func TopK(row []float32, k int) []int {
	if k > len(row) {
		k = len(row)
	}
	idx := make([]int, 0, k)
	for n := 0; n < k; n++ {
		best := -1
		bestv := float32(math.Inf(-1))
		for i, v := range row {
			if math.IsNaN(float64(v)) {
				continue
			}
			taken := false
			for _, j := range idx {
				if j == i {
					taken = true
					break
				}
			}
			if taken {
				continue
			}
			if v > bestv {
				bestv = v
				best = i
			}
		}
		if best < 0 {
			best = n % len(row) // all-NaN row: deterministic fallback
		}
		idx = append(idx, best)
	}
	return idx
}
