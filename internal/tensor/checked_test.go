package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/prng"
)

// checkedTol mirrors abft.DefaultTol without importing it: a relative
// tolerance of 4·sqrt(k) float32 ulps for a length-k reduction.
func checkedTol(k int) float64 {
	return 4 * math.Sqrt(float64(k)) / (1 << 24)
}

// TestMatMulCheckedBitIdentical is the metamorphic property: adding the
// checksum verification must not change a single output bit relative to
// the unchecked kernel, for random shapes and worker counts, and a clean
// multiply must never be flagged.
func TestMatMulCheckedBitIdentical(t *testing.T) {
	f := func(seed uint64, mr, kr, nr, wr uint8) bool {
		m, k, n := int(mr%40)+1, int(kr%96)+1, int(nr%40)+1
		workers := int(wr%8) + 1
		src := prng.New(seed)
		a := randTensor(src, m, k)
		b := randTensor(src, k, n)

		want := New(m, n)
		MatMul(want, a, b)

		got := New(m, n)
		bad := MatMulChecked(got, a, b, workers, checkedTol(k))
		if bad != nil {
			t.Logf("clean multiply flagged rows %v (m=%d k=%d n=%d)", bad, m, k, n)
			return false
		}
		for i := range got.Data {
			if got.Data[i] != want.Data[i] {
				t.Logf("output differs at %d: %g vs %g", i, got.Data[i], want.Data[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestCheckRowsFlagsEveryDetectableBit replays MatMulChecked's internals
// with a single float32 bit flip injected between the kernel and the
// verification, for every one of the 32 bit positions. The oracle is the
// flip's own magnitude against the tolerance, with a 2x guard band on
// each side so kernel accumulation noise cannot turn the predicate into
// a tautology: flips at least twice the threshold must be flagged, flips
// below half of it must not, and flips inside the ambiguous band are
// exercised but not asserted on.
func TestCheckRowsFlagsEveryDetectableBit(t *testing.T) {
	const m, k, n = 4, 64, 48
	src := prng.New(41)
	a := randTensor(src, m, k)
	b := randTensor(src, k, n)
	clean := New(m, n)
	MatMulP(clean, a, b, 2)
	cs := NewChecksums(b)
	tol := checkedTol(k)

	const row, col = 1, 5
	_, _, scale := cs.CheckRow(a.Row(row), clean.Row(row), tol)
	threshold := tol * scale

	asserted := 0
	for bit := 0; bit < 32; bit++ {
		out := clean.Clone()
		orig := out.At(row, col)
		flipped := math.Float32frombits(math.Float32bits(orig) ^ (1 << bit))
		out.Set(row, col, flipped)

		bad := cs.CheckRows(a, out, tol)
		flagged := len(bad) == 1 && bad[0] == row
		if len(bad) > 0 && !flagged {
			t.Fatalf("bit %d: flagged rows %v, corrupted only row %d", bit, bad, row)
		}

		delta := math.Abs(float64(flipped) - float64(orig))
		switch {
		case math.IsNaN(delta) || math.IsInf(delta, 0):
			if !flagged {
				t.Errorf("bit %d: %g -> %v not flagged", bit, orig, flipped)
			}
			asserted++
		case delta > 2*threshold:
			if !flagged {
				t.Errorf("bit %d: delta %.3g above 2x threshold %.3g not flagged", bit, delta, threshold)
			}
			asserted++
		case delta < threshold/2:
			if flagged {
				t.Errorf("bit %d: delta %.3g below half threshold %.3g flagged", bit, delta, threshold)
			}
			asserted++
		}
	}
	// With unit-scale normal data the ambiguous band is a narrow sliver of
	// mantissa positions; most of the 32 bits must have decisive verdicts.
	if asserted < 28 {
		t.Fatalf("only %d/32 bit positions had decisive verdicts", asserted)
	}
}

func TestCheckRowNonFiniteSemantics(t *testing.T) {
	src := prng.New(7)
	b := randTensor(src, 8, 6)
	cs := NewChecksums(b)
	x := make([]float32, 8)
	for i := range x {
		x[i] = float32(src.NormFloat64())
	}
	out := make([]float32, 6)
	for j := 0; j < 6; j++ {
		var s float32
		for p := range x {
			s += x[p] * b.At(p, j)
		}
		out[j] = s
	}

	if ok, _, _ := cs.CheckRow(x, out, checkedTol(8)); !ok {
		t.Fatal("clean row rejected")
	}

	// NaN in the output with finite inputs: hard failure, infinite deviation.
	bad := append([]float32(nil), out...)
	bad[2] = float32(math.NaN())
	ok, dev, _ := cs.CheckRow(x, bad, checkedTol(8))
	if ok || !math.IsInf(dev, 1) {
		t.Fatalf("NaN output: ok=%v dev=%g, want fail with +Inf", ok, dev)
	}
	bad[2] = float32(math.Inf(-1))
	if ok, _, _ := cs.CheckRow(x, bad, checkedTol(8)); ok {
		t.Fatal("Inf output passed")
	}

	// NaN on the input side: the corruption predates this GEMM, so the
	// check passes vacuously rather than misattributing the fault here.
	nx := append([]float32(nil), x...)
	nx[0] = float32(math.NaN())
	if ok, dev, _ := cs.CheckRow(nx, bad, checkedTol(8)); !ok || dev != 0 {
		t.Fatalf("non-finite input: ok=%v dev=%g, want vacuous pass", ok, dev)
	}

	// All-zero input floors the scale at 1, so the threshold stays
	// meaningful for an absolute comparison.
	zero := make([]float32, 8)
	zout := make([]float32, 6)
	if ok, _, scale := cs.CheckRow(zero, zout, checkedTol(8)); !ok || scale != 1 {
		t.Fatalf("zero row: ok=%v scale=%g, want pass with scale floor 1", ok, scale)
	}
	zout[0] = 1
	if ok, _, _ := cs.CheckRow(zero, zout, checkedTol(8)); ok {
		t.Fatal("nonzero output from zero input passed")
	}
}
