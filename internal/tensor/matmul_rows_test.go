package tensor

import (
	"math"
	"math/bits"
	"testing"
)

// testRand is a tiny deterministic generator (splitmix64) so kernel tests
// never touch math/rand (the determinism linter forbids it repo-wide).
type testRand struct{ s uint64 }

func (r *testRand) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *testRand) float() float32 {
	return float32(r.next()>>40)/float32(1<<24)*2 - 1
}

// fillRandom populates t with deterministic pseudo-random values, zeroing
// a fraction of them so the kernels' zero-skip paths are exercised.
func fillRandom(t *Tensor, r *testRand, zeroFrac float64) {
	for i := range t.Data {
		if float64(r.next()>>40)/float64(1<<24) < zeroFrac {
			t.Data[i] = 0
			continue
		}
		t.Data[i] = r.float()
	}
}

// bitsEqual compares float32 slices bit for bit (NaN-safe).
func bitsEqual(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			return false
		}
	}
	return true
}

// TestMatVecMatchesReference pins the register-tiled MatVec to the
// original saxpy kernel (matmulRows on a 1-row matrix): the per-element
// accumulation order — p ascending, zero inputs skipped — is the
// bit-identity contract everything else in this package builds on.
func TestMatVecMatchesReference(t *testing.T) {
	r := &testRand{s: 23}
	for _, shape := range [][2]int{{1, 1}, {7, 5}, {16, 8}, {64, 64}, {48, 37}, {64, 130}} {
		k, n := shape[0], shape[1]
		w := New(k, n)
		fillRandom(w, r, 0.1)
		x := New(1, k)
		fillRandom(x, r, 0.3)
		x.Set(0, 0, float32(math.Inf(1))) // non-finite propagation too
		want := New(1, n)
		matmulRows(want, x, w, 0, 1)
		got := make([]float32, n)
		MatVec(got, x.Row(0), w)
		if !bitsEqual(got, want.Row(0)) {
			t.Fatalf("k=%d n=%d: MatVec differs from reference saxpy kernel", k, n)
		}
	}
}

// TestMatMulRowsMatchesMatVec is the batched-decode bit-identity
// contract: every computed row of MatMulRows must equal MatVec on that
// row exactly, for every in-flight row count (including the ragged
// remainders of the 4-row blocking) and every worker count.
func TestMatMulRowsMatchesMatVec(t *testing.T) {
	r := &testRand{s: 7}
	const capacity, k, n = 19, 48, 37
	b := New(k, n)
	fillRandom(b, r, 0.1)
	a := New(capacity, k)
	fillRandom(a, r, 0.25)

	want := New(capacity, n)
	for i := 0; i < capacity; i++ {
		MatVec(want.Row(i), a.Row(i), b)
	}
	for rows := 0; rows <= capacity; rows++ {
		for _, workers := range []int{1, 3} {
			out := New(capacity, n)
			out.Fill(float32(math.NaN())) // untouched rows must stay untouched
			MatMulRows(out, a, b, rows, workers)
			for i := 0; i < rows; i++ {
				if !bitsEqual(out.Row(i), want.Row(i)) {
					t.Fatalf("rows=%d workers=%d: row %d differs from MatVec", rows, workers, i)
				}
			}
			for i := rows; i < capacity; i++ {
				for x, v := range out.Row(i) {
					if !math.IsNaN(float64(v)) {
						t.Fatalf("rows=%d: untouched row %d col %d was written (%v)", rows, i, x, v)
					}
				}
			}
		}
	}
}

// TestMatMulRowsSpecials checks the blocked kernel propagates non-finite
// activations exactly as MatVec does (a fault-corrupted batch row must
// not contaminate or diverge from its serial twin).
func TestMatMulRowsSpecials(t *testing.T) {
	r := &testRand{s: 11}
	const rows, k, n = 6, 16, 9
	b := New(k, n)
	fillRandom(b, r, 0)
	a := New(rows, k)
	fillRandom(a, r, 0)
	a.Set(1, 3, float32(math.Inf(1)))
	a.Set(2, 0, float32(math.NaN()))
	a.Set(4, 15, float32(math.Inf(-1)))

	want := New(rows, n)
	for i := 0; i < rows; i++ {
		MatVec(want.Row(i), a.Row(i), b)
	}
	out := New(rows, n)
	MatMulRows(out, a, b, rows, 1)
	if !bitsEqual(out.Data, want.Data) {
		t.Fatal("non-finite rows diverge from MatVec")
	}
}

// TestMatMulPBlockedEquivalence pins the register-blocked kernel now
// behind MatMulP to the reference row-at-a-time kernel over many shapes.
func TestMatMulPBlockedEquivalence(t *testing.T) {
	r := &testRand{s: 3}
	for _, shape := range [][3]int{{1, 8, 8}, {3, 16, 5}, {4, 9, 12}, {7, 33, 21}, {64, 24, 24}, {70, 13, 40}} {
		m, k, n := shape[0], shape[1], shape[2]
		a := New(m, k)
		b := New(k, n)
		fillRandom(a, r, 0.2)
		fillRandom(b, r, 0.05)
		want := New(m, n)
		matmulRows(want, a, b, 0, m)
		for _, workers := range []int{1, 2, 5} {
			got := New(m, n)
			MatMulP(got, a, b, workers)
			if !bitsEqual(got.Data, want.Data) {
				t.Fatalf("%dx%dx%d workers=%d: blocked kernel differs from reference", m, k, n, workers)
			}
		}
	}
}

// TestMatMulRowsChecked exercises the precomputed-checksum batched check:
// clean rows pass, a corrupted row among clean siblings is the only one
// flagged, and untouched tail rows are never checked.
func TestMatMulRowsChecked(t *testing.T) {
	r := &testRand{s: 19}
	const capacity, k, n = 8, 32, 24
	b := New(k, n)
	fillRandom(b, r, 0)
	a := New(capacity, k)
	fillRandom(a, r, 0)
	cs := NewChecksums(b)

	out := New(capacity, n)
	if bad := MatMulRowsChecked(out, a, b, 5, 1, cs, 1e-5); len(bad) != 0 {
		t.Fatalf("clean batch flagged rows %v", bad)
	}
	// Corrupt one computed row's output (post-GEMM, as a fault hook would).
	MatMulRows(out, a, b, 5, 1)
	out.Set(2, 7, out.At(2, 7)*1024)
	if bad := cs.CheckRowsN(a, out, 5, 1e-5); len(bad) != 1 || bad[0] != 2 {
		t.Fatalf("corrupted row not isolated: flagged %v", bad)
	}
}

// TestCheckRowsNBounds verifies the row-count guards.
func TestCheckRowsNBounds(t *testing.T) {
	b := New(4, 4)
	cs := NewChecksums(b)
	a, out := New(3, 4), New(3, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("CheckRowsN out-of-range rows must panic")
		}
	}()
	cs.CheckRowsN(a, out, 4, 1e-6)
}

// sink prevents dead-code elimination in benchmarks.
var sink uint64

// BenchmarkMatVecLoop and BenchmarkMatMulRows compare m GEMVs against one
// m×k GEMM at decode-batch shapes (k=n=64, the StandardConfig DModel).
func BenchmarkMatVecLoop(bm *testing.B) {
	r := &testRand{s: 5}
	const m, k, n = 16, 64, 64
	a, b, out := New(m, k), New(k, n), New(m, n)
	fillRandom(a, r, 0)
	fillRandom(b, r, 0)
	bm.ResetTimer()
	for i := 0; i < bm.N; i++ {
		for row := 0; row < m; row++ {
			MatVec(out.Row(row), a.Row(row), b)
		}
	}
	sink += uint64(bits.Reverse32(math.Float32bits(out.At(0, 0))))
}

func BenchmarkMatMulRows(bm *testing.B) {
	r := &testRand{s: 5}
	const m, k, n = 16, 64, 64
	a, b, out := New(m, k), New(k, n), New(m, n)
	fillRandom(a, r, 0)
	fillRandom(b, r, 0)
	bm.ResetTimer()
	for i := 0; i < bm.N; i++ {
		MatMulRows(out, a, b, m, 1)
	}
	sink += uint64(bits.Reverse32(math.Float32bits(out.At(0, 0))))
}
