package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/prng"
)

func randTensor(src *prng.Source, r, c int) *Tensor {
	t := New(r, c)
	for i := range t.Data {
		t.Data[i] = float32(src.NormFloat64())
	}
	return t
}

// naiveMatMul is the reference triple loop.
func naiveMatMul(a, b *Tensor) *Tensor {
	out := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var sum float32
			for k := 0; k < a.Cols; k++ {
				sum += a.At(i, k) * b.At(k, j)
			}
			out.Set(i, j, sum)
		}
	}
	return out
}

func tensorsClose(a, b *Tensor, tol float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := range a.Data {
		if math.Abs(float64(a.Data[i]-b.Data[i])) > tol {
			return false
		}
	}
	return true
}

func TestMatMulMatchesNaive(t *testing.T) {
	f := func(seed uint64, mr, kr, nr uint8) bool {
		m, k, n := int(mr%20)+1, int(kr%20)+1, int(nr%20)+1
		src := prng.New(seed)
		a := randTensor(src, m, k)
		b := randTensor(src, k, n)
		got := New(m, n)
		MatMul(got, a, b)
		return tensorsClose(got, naiveMatMul(a, b), 1e-4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMatMulParallelMatchesSerial(t *testing.T) {
	src := prng.New(11)
	a := randTensor(src, 200, 32)
	b := randTensor(src, 32, 48)
	serial := New(200, 48)
	matmulRows(serial, a, b, 0, 200)
	for _, workers := range []int{0, 1, 2, 4, 7} {
		parallel := New(200, 48)
		MatMulP(parallel, a, b, workers)
		if !Equal(serial, parallel) {
			t.Fatalf("matmul with %d workers differs from serial", workers)
		}
	}
}

func TestMatMulTMatchesNaive(t *testing.T) {
	f := func(seed uint64, mr, kr, nr uint8) bool {
		m, k, n := int(mr%16)+1, int(kr%16)+1, int(nr%16)+1
		src := prng.New(seed)
		a := randTensor(src, m, k)
		b := randTensor(src, n, k) // b is n x k, we compute a · bᵀ
		got := New(m, n)
		MatMulT(got, a, b)
		// reference: transpose b then naive
		bt := New(k, n)
		for i := 0; i < n; i++ {
			for j := 0; j < k; j++ {
				bt.Set(j, i, b.At(i, j))
			}
		}
		return tensorsClose(got, naiveMatMul(a, bt), 1e-4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMatMulATMatchesNaive(t *testing.T) {
	f := func(seed uint64, tr, mr, nr uint8) bool {
		T, m, n := int(tr%16)+1, int(mr%16)+1, int(nr%16)+1
		src := prng.New(seed)
		a := randTensor(src, T, m)
		b := randTensor(src, T, n)
		got := New(m, n)
		MatMulAT(got, a, b)
		at := New(m, T)
		for i := 0; i < T; i++ {
			for j := 0; j < m; j++ {
				at.Set(j, i, a.At(i, j))
			}
		}
		return tensorsClose(got, naiveMatMul(at, b), 1e-4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAddMatMulATAccumulates(t *testing.T) {
	src := prng.New(3)
	a := randTensor(src, 5, 4)
	b := randTensor(src, 5, 6)
	acc := New(4, 6)
	acc.Fill(1)
	AddMatMulAT(acc, a, b)
	plain := New(4, 6)
	MatMulAT(plain, a, b)
	for i := range acc.Data {
		if math.Abs(float64(acc.Data[i]-plain.Data[i]-1)) > 1e-5 {
			t.Fatal("AddMatMulAT did not accumulate onto existing values")
		}
	}
}

func TestMatVecMatchesMatMul(t *testing.T) {
	src := prng.New(9)
	w := randTensor(src, 12, 7)
	x := make([]float32, 12)
	for i := range x {
		x[i] = float32(src.NormFloat64())
	}
	out := make([]float32, 7)
	MatVec(out, x, w)
	ref := New(1, 7)
	MatMul(ref, FromSlice(1, 12, x), w)
	for i := range out {
		if math.Abs(float64(out[i]-ref.Data[i])) > 1e-4 {
			t.Fatalf("MatVec[%d] = %g, MatMul = %g", i, out[i], ref.Data[i])
		}
	}
}

func TestMatMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected shape panic")
		}
	}()
	MatMul(New(2, 2), New(2, 3), New(4, 2))
}

func TestSoftmaxRowSumsToOne(t *testing.T) {
	f := func(seed uint64, nr uint8) bool {
		n := int(nr%30) + 2
		src := prng.New(seed)
		row := make([]float32, n)
		for i := range row {
			row[i] = float32(src.NormFloat64() * 5)
		}
		SoftmaxRow(row)
		var sum float64
		for _, v := range row {
			if v < 0 {
				return false
			}
			sum += float64(v)
		}
		return math.Abs(sum-1) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSoftmaxRowInfSaturates(t *testing.T) {
	row := []float32{1, float32(math.Inf(1)), 2}
	SoftmaxRow(row)
	if row[1] != 1 || row[0] != 0 || row[2] != 0 {
		t.Fatalf("softmax with +Inf should be one-hot, got %v", row)
	}
}

func TestSoftmaxRowAllMasked(t *testing.T) {
	ninf := float32(math.Inf(-1))
	row := []float32{ninf, ninf, ninf}
	SoftmaxRow(row)
	for _, v := range row {
		if math.Abs(float64(v)-1.0/3) > 1e-6 {
			t.Fatalf("all-masked softmax should be uniform, got %v", row)
		}
	}
}

func TestSoftmaxRowNaNPropagates(t *testing.T) {
	row := []float32{1, float32(math.NaN()), 2}
	SoftmaxRow(row)
	if !math.IsNaN(float64(row[0])) {
		t.Fatal("NaN contamination should propagate")
	}
}

func TestLogSoftmaxConsistent(t *testing.T) {
	row := []float32{0.5, -1, 3, 0}
	lsm := LogSoftmaxRow(row)
	var sum float64
	for _, v := range lsm {
		sum += math.Exp(v)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("exp(logsoftmax) sums to %g", sum)
	}
}

func TestRMSNormRowScaleInvariantDirection(t *testing.T) {
	// RMSNorm output depends only on the direction of the input (up to
	// eps): scaling the input by any positive constant barely changes the
	// output — the masking property for huge corrupted values.
	gain := []float32{1, 1, 1, 1}
	a := []float32{1, 2, -1, 0.5}
	b := []float32{1e6, 2e6, -1e6, 0.5e6}
	RMSNormRow(a, gain, 1e-5)
	RMSNormRow(b, gain, 1e-5)
	for i := range a {
		if math.Abs(float64(a[i]-b[i])) > 1e-3 {
			t.Fatalf("RMSNorm not scale invariant: %v vs %v", a, b)
		}
	}
}

func TestRMSNormBoundsCorruptedValue(t *testing.T) {
	gain := []float32{1, 1, 1, 1}
	row := []float32{1, 1e30, 1, 1}
	RMSNormRow(row, gain, 1e-5)
	if math.Abs(float64(row[1])-2) > 1e-2 {
		t.Fatalf("corrupted element should squash to ~sqrt(d)=2, got %g", row[1])
	}
	if math.Abs(float64(row[0])) > 1e-10+1e-25 {
		// other elements collapse toward zero
	}
}

func TestArgmax(t *testing.T) {
	if Argmax([]float32{1, 3, 2}) != 1 {
		t.Error("argmax basic")
	}
	if Argmax([]float32{1, 3, 3}) != 1 {
		t.Error("argmax tie should pick lower index")
	}
	nan := float32(math.NaN())
	if Argmax([]float32{nan, 2, 5}) != 2 {
		t.Error("argmax should skip NaN")
	}
	if Argmax([]float32{nan, nan}) != 0 {
		t.Error("all-NaN argmax should return 0")
	}
}

func TestTopK(t *testing.T) {
	got := TopK([]float32{0.1, 5, 3, 4}, 2)
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("TopK = %v, want [1 3]", got)
	}
	got = TopK([]float32{1, 2}, 5)
	if len(got) != 2 {
		t.Fatal("TopK should clamp k to len")
	}
	nan := float32(math.NaN())
	got = TopK([]float32{nan, nan, nan}, 2)
	if len(got) != 2 {
		t.Fatal("all-NaN TopK must still return k experts")
	}
}

func TestCloneIndependent(t *testing.T) {
	a := New(2, 2)
	a.Fill(3)
	b := a.Clone()
	b.Set(0, 0, 9)
	if a.At(0, 0) != 3 {
		t.Fatal("Clone shares storage")
	}
}

func TestEqualTreatsNaNEqual(t *testing.T) {
	nan := float32(math.NaN())
	a := FromSlice(1, 2, []float32{nan, 1})
	b := FromSlice(1, 2, []float32{nan, 1})
	if !Equal(a, b) {
		t.Fatal("NaN should compare equal to NaN in Equal")
	}
}

func TestCorruptionMaskAndSummary(t *testing.T) {
	clean := New(3, 4)
	faulty := clean.Clone()
	// Corrupt one full column.
	for r := 0; r < 3; r++ {
		faulty.Set(r, 2, 100)
	}
	mask := CorruptionMask(faulty, clean, 1e-3)
	st := SummarizeMask(mask)
	if st.FullColumns != 1 || st.TouchedCols != 1 || st.FullRows != 0 || st.Corrupted != 3 {
		t.Fatalf("unexpected mask stats: %+v", st)
	}
}

func TestColumnRowMaxAbs(t *testing.T) {
	x := FromSlice(2, 3, []float32{1, -5, 2, 0, 3, float32(math.Inf(1))})
	cols := x.ColumnMaxAbs()
	if cols[0] != 1 || cols[1] != 5 || !math.IsInf(cols[2], 1) {
		t.Fatalf("ColumnMaxAbs = %v", cols)
	}
	rows := x.RowMaxAbs()
	if rows[0] != 5 || !math.IsInf(rows[1], 1) {
		t.Fatalf("RowMaxAbs = %v", rows)
	}
}

func TestHeatmapMarksExtremes(t *testing.T) {
	x := New(3, 3)
	x.Fill(1)
	x.Set(1, 1, 1e31)
	art := x.Heatmap(3, 3)
	found := false
	for _, ch := range art {
		if ch == '#' {
			found = true
		}
	}
	if !found {
		t.Fatal("heatmap should mark extreme values with '#'")
	}
}

func BenchmarkMatMul64(b *testing.B) {
	src := prng.New(1)
	a := randTensor(src, 64, 64)
	w := randTensor(src, 64, 64)
	out := New(64, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MatMul(out, a, w)
	}
}

func BenchmarkMatVec(b *testing.B) {
	src := prng.New(1)
	w := randTensor(src, 64, 176)
	x := make([]float32, 64)
	out := make([]float32, 176)
	for i := range x {
		x[i] = float32(src.NormFloat64())
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MatVec(out, x, w)
	}
}
