package tensor

import "math"

// Checksums holds the ABFT check vectors of a weight matrix b (k×n):
// Sum[p] = Σ_j b[p,j] and Abs[p] = Σ_j |b[p,j]|, both accumulated in
// float64. The checked-GEMM invariant is that for out = x·b the output
// checksum Σ_j out[j] must equal the input-weighted checksum Σ_p x[p]·Sum[p]
// up to float32 accumulation noise; Abs supplies the magnitude scale that
// noise is proportional to (Σ_p |x[p]|·Abs[p] bounds the absolute mass of
// the products the kernel summed). Float64 accumulation keeps the check's
// own rounding error (~eps64 per term) three orders of magnitude below the
// float32 kernel noise it must tolerate, so the tolerance can be derived
// from the kernel alone.
type Checksums struct {
	Sum []float64
	Abs []float64
}

// NewChecksums computes the check vectors of b.
func NewChecksums(b *Tensor) Checksums {
	sum := make([]float64, b.Rows)
	abs := make([]float64, b.Rows)
	n := b.Cols
	for p := 0; p < b.Rows; p++ {
		var s, a float64
		for _, v := range b.Data[p*n : (p+1)*n] {
			fv := float64(v)
			s += fv
			a += math.Abs(fv)
		}
		sum[p] = s
		abs[p] = a
	}
	return Checksums{Sum: sum, Abs: abs}
}

// CheckRow verifies one output row out = x·b against the checksums with
// relative tolerance tol. It returns the verdict plus the measured
// deviation |Σout − Σ_p x[p]·Sum[p]| and the magnitude scale the tolerance
// is relative to (floored at 1 so all-zero rows still have a meaningful
// absolute threshold).
//
// A non-finite observed checksum from a finite-input row always fails: the
// kernel cannot legitimately produce NaN/Inf from finite inputs and finite
// expected mass. When the *input side* is already non-finite (x carries a
// propagated NaN/Inf, or the expected mass overflows float64) the check
// passes vacuously — the corruption predates this GEMM and blaming it here
// would misattribute the fault.
func (c Checksums) CheckRow(x, out []float32, tol float64) (ok bool, dev, scale float64) {
	var expected, sc float64
	for p, xv := range x {
		fx := float64(xv)
		expected += fx * c.Sum[p]
		sc += math.Abs(fx) * c.Abs[p]
	}
	if sc < 1 {
		sc = 1
	}
	if !isFinite(expected) || !isFinite(sc) {
		return true, 0, sc
	}
	var observed float64
	for _, v := range out {
		observed += float64(v)
	}
	if !isFinite(observed) {
		return false, math.Inf(1), sc
	}
	dev = math.Abs(observed - expected)
	return dev <= tol*sc, dev, sc
}

// CheckRows verifies every row of out = a·b, returning the indices of the
// rows whose deviation exceeds tolerance.
func (c Checksums) CheckRows(a, out *Tensor, tol float64) []int {
	return c.CheckRowsN(a, out, a.Rows, tol)
}

// CheckRowsN verifies the first rows rows of out = a·b — the shape a
// partially occupied decode batch produces — returning the indices of
// rows whose deviation exceeds tolerance.
func (c Checksums) CheckRowsN(a, out *Tensor, rows int, tol float64) []int {
	if rows < 0 || rows > a.Rows {
		panic("tensor: CheckRowsN row count out of range")
	}
	var bad []int
	for i := 0; i < rows; i++ {
		if ok, _, _ := c.CheckRow(a.Row(i), out.Row(i), tol); !ok {
			bad = append(bad, i)
		}
	}
	return bad
}

// MatMulChecked computes out = a·b through the same blocked kernel as
// MatMulP — the result is bit-identical to MatMul for every worker count —
// and then verifies each output row against float64 checksums of b,
// returning the indices of rows that violate the relative tolerance (nil
// when every row checks out).
func MatMulChecked(out, a, b *Tensor, workers int, tol float64) []int {
	MatMulP(out, a, b, workers)
	cs := NewChecksums(b)
	return cs.CheckRows(a, out, tol)
}

// MatMulRowsChecked computes the first rows rows of out = a·b through the
// batched-decode kernel (bit-identical to per-row MatVec) and verifies
// each computed row against cs, returning the indices of rows violating
// the relative tolerance. Unlike MatMulChecked it takes precomputed
// checksums: a batched scheduler checks the same weights every step, so
// recomputing the O(k·n) sums per call would dwarf the GEMM itself.
func MatMulRowsChecked(out, a, b *Tensor, rows, workers int, cs Checksums, tol float64) []int {
	MatMulRows(out, a, b, rows, workers)
	return cs.CheckRowsN(a, out, rows, tol)
}

func isFinite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}
