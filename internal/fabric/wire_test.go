package fabric

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestWorkerStrictSuccessDecode pins the worker's wire discipline:
// success payloads decode strictly (a coordinator speaking a newer
// schema fails the decode instead of silently dropping fields), while
// error envelopes stay tolerant — extra fields must not hide the typed
// rejection.
func TestWorkerStrictSuccessDecode(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/clean", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"worker_name":"w0"}`))
	})
	mux.HandleFunc("/drifted", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"worker_name":"w0","from_the_future":true}`))
	})
	mux.HandleFunc("/reject", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusConflict)
		_, _ = w.Write([]byte(`{"error":{"status":409,"code":"fingerprint_mismatch",` +
			`"message":"campaigns diverge","envelope_extra":1}}`))
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	wk := &Worker{cfg: WorkerConfig{
		Coordinator: ts.URL, Client: ts.Client(),
		Logf: func(string, ...any) {},
	}}
	var resp struct {
		Worker string `json:"worker_name"`
	}
	ctx := context.Background()

	if err := wk.postOnce(ctx, "/clean", obs.SpanContext{}, []byte(`{}`), &resp); err != nil {
		t.Fatalf("clean success payload rejected: %v", err)
	}
	if resp.Worker != "w0" {
		t.Fatalf("Worker = %q, want w0", resp.Worker)
	}

	err := wk.postOnce(ctx, "/drifted", obs.SpanContext{}, []byte(`{}`), &resp)
	if err == nil || !strings.Contains(err.Error(), "from_the_future") {
		t.Fatalf("drifted success payload not rejected: %v", err)
	}

	err = wk.postOnce(ctx, "/reject", obs.SpanContext{}, []byte(`{}`), &resp)
	var re *RemoteError
	if !errors.As(err, &re) || re.Code != "fingerprint_mismatch" || re.Status != http.StatusConflict {
		t.Fatalf("tolerant envelope sniff broken: %v", err)
	}
}
