// Package fabric shards one fault-injection campaign across processes:
// a coordinator owns the campaign definition and hands out trial-index
// leases over a versioned HTTP+JSON API, workers run leased indices
// through the core runtime and stream the completed trials back, and
// the coordinator merges them into a Result bit-identical to a
// single-process run.
//
// The bit-identity argument is the same one that makes checkpoint
// resume sound: trial t derives all of its randomness from Split(t) of
// the campaign seed and runs against the deterministic fault-free
// baseline, so a trial's outcome is a pure function of (campaign
// fingerprint, t). Any partition of the index space across any number
// of workers — including re-executions after lease reissue — therefore
// merges, index-keyed, to the bit-identical full Result. Correctness
// never depends on lease bookkeeping: leases only prevent duplicate
// work, and duplicate submissions are deduplicated by index.
package fabric

import (
	"repro/internal/core"
	"repro/internal/report"
)

// SchemaVersion is the fabric wire-API schema. Every request and
// response carries it; a coordinator refuses joins from workers
// speaking a different schema. Bump it together with any change to the
// wire structs below. (v2: JoinRequest.HTTPAddr for the coordinator's
// metrics fan-in.)
const SchemaVersion = 2

// The versioned endpoint paths. Join performs the fleet handshake
// (schema + binary version + campaign fingerprint), Lease hands out
// trial-index leases, Results accepts completed trials (idempotent,
// index-keyed), and Status reports fleet-level progress.
const (
	PathJoin    = report.APIVersion + "/join"
	PathLease   = report.APIVersion + "/lease"
	PathResults = report.APIVersion + "/results"
	PathStatus  = report.APIVersion + "/status"
)

// JoinRequest is a worker's handshake. The coordinator rejects any
// mismatch in schema, binary version, or campaign fingerprint — a
// worker built from different code or configured with different flags
// could compute different trials, which would silently break the
// merged Result's bit-identity.
type JoinRequest struct {
	Schema  int    `json:"schema"`
	Version string `json:"version"`
	// Fingerprint is the worker's locally-constructed campaign identity;
	// it must equal the coordinator's.
	Fingerprint core.Fingerprint `json:"fingerprint"`
	// Worker, when non-empty, rejoins under an existing identity (after
	// a connection loss or a coordinator restart).
	Worker string `json:"worker,omitempty"`
	// HTTPAddr, when non-empty, is the base URL of the worker's own
	// observability surface (its -http listener). The coordinator
	// scrapes <HTTPAddr>/metrics on an interval and re-exports the
	// series as aggregated llmfi_fleet_* metrics. Optional: workers
	// without a listener simply stay out of the fan-in.
	HTTPAddr string `json:"http_addr,omitempty"`
}

// JoinResponse accepts a worker into the fleet.
type JoinResponse struct {
	Schema int `json:"schema"`
	// Worker is the identity assigned to (or confirmed for) the worker.
	Worker string `json:"worker"`
	// Trials is the campaign's total trial count.
	Trials int `json:"trials"`
	// LeaseTTLMs is how long a lease stays valid without a result
	// submission (submissions renew the worker's leases).
	LeaseTTLMs int64 `json:"lease_ttl_ms"`
	// LeaseTrials is the maximum indices per lease.
	LeaseTrials int `json:"lease_trials"`
}

// LeaseRequest asks for a batch of trial indices to execute.
type LeaseRequest struct {
	Schema int    `json:"schema"`
	Worker string `json:"worker"`
	// Max caps the returned batch (0 or above the coordinator's
	// configured lease size means the coordinator's size).
	Max int `json:"max,omitempty"`
}

// Lease is one granted batch of trial indices.
type Lease struct {
	ID      uint64 `json:"id"`
	Indices []int  `json:"indices"`
	// TTLMs is the lease's time budget; unsubmitted indices return to
	// the pool when it elapses without contact from the worker.
	TTLMs int64 `json:"ttl_ms"`
}

// LeaseResponse carries a lease, a wait hint, or campaign completion.
type LeaseResponse struct {
	Schema int    `json:"schema"`
	Lease  *Lease `json:"lease,omitempty"`
	// Wait reports that every remaining trial is currently leased to
	// other workers — poll again shortly (an outstanding lease may
	// complete or expire).
	Wait bool `json:"wait,omitempty"`
	// Done reports that every trial of the campaign is complete; the
	// worker should exit.
	Done bool `json:"done,omitempty"`
}

// TrialResult is one completed trial, keyed by its campaign index. The
// Trial payload round-trips through JSON bit-identically: every field
// is a bool, integer, string, or finite float64, and Go's JSON encoder
// emits the shortest float representation that parses back exactly.
type TrialResult struct {
	Index int        `json:"index"`
	Trial core.Trial `json:"trial"`
}

// ResultsRequest submits completed trials. Submission is idempotent:
// indices already completed (e.g. re-executed under a reissued lease)
// are counted as duplicates and discarded. A submission also serves as
// the worker's heartbeat, renewing its outstanding leases.
type ResultsRequest struct {
	Schema int    `json:"schema"`
	Worker string `json:"worker"`
	// Lease is the lease the trials were executed under (informational;
	// results are accepted index-keyed even after the lease expired).
	Lease  uint64        `json:"lease,omitempty"`
	Trials []TrialResult `json:"trials"`
}

// ResultsResponse acknowledges a submission.
type ResultsResponse struct {
	Schema     int  `json:"schema"`
	Accepted   int  `json:"accepted"`
	Duplicates int  `json:"duplicates"`
	Done       bool `json:"done,omitempty"`
}

// WorkerStatus is one fleet member's view in the status report.
type WorkerStatus struct {
	Worker string `json:"worker"`
	// Trials counts results accepted from this worker (duplicates
	// excluded).
	Trials int `json:"trials"`
	// TrialsPerSec is the worker's accepted-trial rate since it joined.
	TrialsPerSec float64 `json:"trials_per_sec"`
	// OutstandingLeases / OutstandingTrials are the worker's live leases
	// and the not-yet-submitted indices they hold.
	OutstandingLeases int `json:"outstanding_leases"`
	OutstandingTrials int `json:"outstanding_trials"`
	// LastSeenSec is seconds since the worker's last request.
	LastSeenSec float64 `json:"last_seen_seconds"`
}

// StatusResponse is the fleet-level progress report (GET /api/v1/status).
type StatusResponse struct {
	Schema      int              `json:"schema"`
	Version     string           `json:"version"`
	Fingerprint core.Fingerprint `json:"fingerprint"`
	Trials      int              `json:"trials"`
	Done        int              `json:"done"`
	// OutstandingTrials are leased-but-unsubmitted indices;
	// OutstandingLeases the live leases holding them.
	OutstandingTrials int `json:"outstanding_trials"`
	OutstandingLeases int `json:"outstanding_leases"`
	// ReissuedLeases counts leases whose worker went silent past the TTL
	// and whose unsubmitted indices returned to the pool.
	ReissuedLeases int `json:"reissued_leases"`
	// DuplicateTrials counts submissions discarded by index-keyed
	// dedup (the cost of reissue, never a correctness problem).
	DuplicateTrials int `json:"duplicate_trials"`
	// StitchedResults counts result submissions that carried the trace
	// context the coordinator issued with the lease — i.e. worker spans
	// that stitch to a coordinator-side trace.
	StitchedResults int            `json:"stitched_results,omitempty"`
	Finished        bool           `json:"finished"`
	ElapsedSec      float64        `json:"elapsed_seconds"`
	TrialsPerSec    float64        `json:"trials_per_sec"`
	Workers         []WorkerStatus `json:"workers,omitempty"`
}
