package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/numerics"
	"repro/internal/tasks"
	"repro/internal/version"
)

// testCampaign builds a fresh but identical campaign per call — the
// fleet's reality: every process constructs the definition from its own
// flags, and identity is established by fingerprint, not shared memory.
func testCampaign(t testing.TB) core.Campaign {
	t.Helper()
	vocab := tasks.GeneralVocab()
	cfg := model.StandardConfig("fabric", vocab.Size(), numerics.BF16)
	m := model.MustBuild(model.Spec{Config: cfg, Family: model.QwenS, Seed: 21})
	suite := tasks.NewSelfRefSuite("fab", 3, 2, 16, 6, []metrics.Kind{metrics.KindBLEU})
	return core.New(m, suite, faults.Comp2Bit, 24, 17)
}

// singleProcess runs the campaign in-process — the golden reference the
// distributed merge must match bit for bit.
func singleProcess(t *testing.T) *core.Result {
	t.Helper()
	res, err := testCampaign(t).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func requireGolden(t *testing.T, got, want *core.Result) {
	t.Helper()
	if len(got.Trials) != len(want.Trials) {
		t.Fatalf("trial counts differ: %d vs %d", len(got.Trials), len(want.Trials))
	}
	for i := range want.Trials {
		if !reflect.DeepEqual(got.Trials[i], want.Trials[i]) {
			t.Fatalf("trial %d differs:\nfabric %+v\nsingle %+v", i, got.Trials[i], want.Trials[i])
		}
	}
	for i := range want.Baseline.Instances {
		a, b := &got.Baseline.Instances[i], &want.Baseline.Instances[i]
		if a.Text != b.Text || a.Steps != b.Steps || !reflect.DeepEqual(a.Metrics, b.Metrics) {
			t.Fatalf("baseline instance %d differs:\nfabric %+v\nsingle %+v", i, a, b)
		}
	}
}

// postJSON is a bare-hands fleet client for protocol-level tests.
func postJSON(t *testing.T, url string, req, resp any) int {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hres, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer hres.Body.Close()
	if hres.StatusCode == http.StatusOK && resp != nil {
		if err := json.NewDecoder(hres.Body).Decode(resp); err != nil {
			t.Fatal(err)
		}
	}
	return hres.StatusCode
}

// TestGoldenEquivalence: a coordinator plus two workers over real HTTP
// must merge to the bit-identical Result of a single-process run.
func TestGoldenEquivalence(t *testing.T) {
	single := singleProcess(t)

	co, err := NewCoordinator(CoordinatorConfig{Campaign: testCampaign(t), LeaseTrials: 5})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(co.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := range errs {
		wk, err := NewWorker(WorkerConfig{
			Campaign:    testCampaign(t),
			Coordinator: ts.URL,
			Poll:        10 * time.Millisecond,
			SubmitEvery: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = wk.Run(context.Background())
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := co.Result(ctx)
	if err != nil {
		t.Fatal(err)
	}
	requireGolden(t, res, single)

	st := co.Status()
	if !st.Finished || st.Done != st.Trials {
		t.Fatalf("status not finished: %+v", st)
	}
	if got := 0; true {
		for _, ws := range st.Workers {
			got += ws.Trials
		}
		if got != st.Trials {
			t.Fatalf("per-worker trials sum %d, want %d", got, st.Trials)
		}
	}
}

// TestKilledWorkerReissue: a worker that takes a lease and dies must not
// stall the campaign — its lease expires, the indices are reissued, and
// the merged Result is still golden.
func TestKilledWorkerReissue(t *testing.T) {
	single := singleProcess(t)

	co, err := NewCoordinator(CoordinatorConfig{
		Campaign:    testCampaign(t),
		LeaseTrials: 6,
		LeaseTTL:    150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(co.Handler())
	defer ts.Close()

	// The doomed worker: joins, takes a lease, and is never heard from
	// again (SIGKILL equivalent — no graceful lease return exists).
	var join JoinResponse
	if code := postJSON(t, ts.URL+PathJoin, JoinRequest{
		Schema: SchemaVersion, Version: version.Version,
		Fingerprint: co.cfg.Campaign.Fingerprint(),
	}, &join); code != 200 {
		t.Fatalf("doomed join status %d", code)
	}
	var lease LeaseResponse
	if code := postJSON(t, ts.URL+PathLease, LeaseRequest{Schema: SchemaVersion, Worker: join.Worker}, &lease); code != 200 {
		t.Fatalf("doomed lease status %d", code)
	}
	if lease.Lease == nil || len(lease.Lease.Indices) == 0 {
		t.Fatalf("doomed worker got no lease: %+v", lease)
	}

	wk, err := NewWorker(WorkerConfig{
		Campaign:    testCampaign(t),
		Coordinator: ts.URL,
		Poll:        20 * time.Millisecond,
		SubmitEvery: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := wk.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := co.Result(ctx)
	if err != nil {
		t.Fatal(err)
	}
	requireGolden(t, res, single)

	st := co.Status()
	if st.ReissuedLeases == 0 {
		t.Fatal("no lease was reissued despite the dead worker")
	}
	if st.OutstandingLeases != 0 || st.OutstandingTrials != 0 {
		t.Fatalf("finished campaign has outstanding work: %+v", st)
	}
}

// TestLeaseExpiryReissue drives the lease state machine with a fake
// clock: granted indices return to the pool exactly when the TTL
// elapses, and submissions renew the holder's leases.
func TestLeaseExpiryReissue(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	co, err := NewCoordinator(CoordinatorConfig{
		Campaign:    testCampaign(t),
		LeaseTrials: 4,
		LeaseTTL:    time.Second,
		Clock:       clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(co.Handler())
	defer ts.Close()

	joinWorker := func() string {
		var jr JoinResponse
		if code := postJSON(t, ts.URL+PathJoin, JoinRequest{
			Schema: SchemaVersion, Version: version.Version,
			Fingerprint: co.cfg.Campaign.Fingerprint(),
		}, &jr); code != 200 {
			t.Fatalf("join status %d", code)
		}
		return jr.Worker
	}
	lease := func(worker string) LeaseResponse {
		var lr LeaseResponse
		if code := postJSON(t, ts.URL+PathLease, LeaseRequest{Schema: SchemaVersion, Worker: worker}, &lr); code != 200 {
			t.Fatalf("lease status %d", code)
		}
		return lr
	}

	w1, w2 := joinWorker(), joinWorker()
	l1 := lease(w1)
	if l1.Lease == nil {
		t.Fatalf("w1 got no lease: %+v", l1)
	}

	// Within the TTL the indices stay with w1.
	now = now.Add(500 * time.Millisecond)
	l2 := lease(w2)
	if l2.Lease == nil {
		t.Fatal("w2 got no lease of its own")
	}
	for _, a := range l1.Lease.Indices {
		for _, b := range l2.Lease.Indices {
			if a == b {
				t.Fatalf("index %d double-leased before expiry", a)
			}
		}
	}

	// w2's lease request renewed only w2's leases; one more 600ms step
	// pushes w1 past its TTL while w2 stays live.
	now = now.Add(600 * time.Millisecond)
	l3 := lease(w2)
	if l3.Lease == nil {
		t.Fatal("w2 got nothing after w1 expiry")
	}
	if !reflect.DeepEqual(l3.Lease.Indices, l1.Lease.Indices) {
		t.Fatalf("reissued lease %v, want w1's expired indices %v", l3.Lease.Indices, l1.Lease.Indices)
	}
	if st := co.Status(); st.ReissuedLeases != 1 {
		t.Fatalf("ReissuedLeases = %d, want 1", st.ReissuedLeases)
	}
}

// TestDuplicateSubmissionIdempotent: the same trial submitted twice (a
// reissue race) is merged once; the second copy is counted, not applied.
func TestDuplicateSubmissionIdempotent(t *testing.T) {
	single := singleProcess(t)
	co, err := NewCoordinator(CoordinatorConfig{Campaign: testCampaign(t)})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(co.Handler())
	defer ts.Close()

	var jr JoinResponse
	postJSON(t, ts.URL+PathJoin, JoinRequest{
		Schema: SchemaVersion, Version: version.Version,
		Fingerprint: co.cfg.Campaign.Fingerprint(),
	}, &jr)

	sub := ResultsRequest{Schema: SchemaVersion, Worker: jr.Worker, Trials: []TrialResult{
		{Index: 3, Trial: single.Trials[3]},
		{Index: 7, Trial: single.Trials[7]},
	}}
	var r1, r2 ResultsResponse
	if code := postJSON(t, ts.URL+PathResults, sub, &r1); code != 200 {
		t.Fatalf("first submission status %d", code)
	}
	if r1.Accepted != 2 || r1.Duplicates != 0 {
		t.Fatalf("first submission: %+v", r1)
	}
	if code := postJSON(t, ts.URL+PathResults, sub, &r2); code != 200 {
		t.Fatalf("second submission status %d", code)
	}
	if r2.Accepted != 0 || r2.Duplicates != 2 {
		t.Fatalf("second submission: %+v", r2)
	}
	if done, _ := co.Done(); done != 2 {
		t.Fatalf("done = %d, want 2", done)
	}

	var bad ResultsResponse
	if code := postJSON(t, ts.URL+PathResults, ResultsRequest{
		Schema: SchemaVersion, Worker: jr.Worker,
		Trials: []TrialResult{{Index: 999}},
	}, &bad); code != http.StatusBadRequest {
		t.Fatalf("out-of-range index status %d, want 400", code)
	}
}

// TestJoinRejection: schema, binary-version, and campaign-fingerprint
// mismatches are all refused with typed 409 envelopes.
func TestJoinRejection(t *testing.T) {
	co, err := NewCoordinator(CoordinatorConfig{Campaign: testCampaign(t)})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(co.Handler())
	defer ts.Close()

	fp := co.cfg.Campaign.Fingerprint()
	otherFP := fp
	otherFP.Seed++

	cases := []struct {
		name string
		req  JoinRequest
		code string
	}{
		{"schema", JoinRequest{Schema: SchemaVersion + 1, Version: version.Version, Fingerprint: fp}, "schema_mismatch"},
		{"version", JoinRequest{Schema: SchemaVersion, Version: "v0.0.0-dev", Fingerprint: fp}, "version_mismatch"},
		{"fingerprint", JoinRequest{Schema: SchemaVersion, Version: version.Version, Fingerprint: otherFP}, "fingerprint_mismatch"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			body, _ := json.Marshal(tc.req)
			hres, err := http.Post(ts.URL+PathJoin, "application/json", bytes.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			defer hres.Body.Close()
			if hres.StatusCode != http.StatusConflict {
				t.Fatalf("status %d, want 409", hres.StatusCode)
			}
			var env struct {
				Error struct {
					Code string `json:"code"`
				} `json:"error"`
			}
			if err := json.NewDecoder(hres.Body).Decode(&env); err != nil {
				t.Fatal(err)
			}
			if env.Error.Code != tc.code {
				t.Fatalf("error code %q, want %q", env.Error.Code, tc.code)
			}
		})
	}

	// A worker whose campaign fingerprint differs gets a permanent error.
	diverged := testCampaign(t)
	diverged.Seed++
	wk, err := NewWorker(WorkerConfig{Campaign: diverged, Coordinator: ts.URL})
	if err != nil {
		t.Fatal(err)
	}
	var re *RemoteError
	if err := wk.Run(context.Background()); !errors.As(err, &re) || re.Code != "fingerprint_mismatch" {
		t.Fatalf("diverged worker err = %v, want fingerprint_mismatch", err)
	}
}

// TestCoordinatorRestartResume: a coordinator killed after a checkpoint
// restores the completed trials, hands out only the remainder, and the
// final merge is golden. A worker known to the dead coordinator rejoins
// transparently.
func TestCoordinatorRestartResume(t *testing.T) {
	single := singleProcess(t)
	ckpt := filepath.Join(t.TempDir(), "fleet.ckpt")

	coA, err := NewCoordinator(CoordinatorConfig{
		Campaign:        testCampaign(t),
		CheckpointPath:  ckpt,
		CheckpointEvery: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	tsA := httptest.NewServer(coA.Handler())

	// Feed the first 10 trials from the golden run, as a worker would.
	var jr JoinResponse
	postJSON(t, tsA.URL+PathJoin, JoinRequest{
		Schema: SchemaVersion, Version: version.Version,
		Fingerprint: coA.cfg.Campaign.Fingerprint(), Worker: "w-test",
	}, &jr)
	var sub []TrialResult
	for i := 0; i < 10; i++ {
		sub = append(sub, TrialResult{Index: i, Trial: single.Trials[i]})
	}
	var rr ResultsResponse
	if code := postJSON(t, tsA.URL+PathResults, ResultsRequest{
		Schema: SchemaVersion, Worker: jr.Worker, Trials: sub,
	}, &rr); code != 200 || rr.Accepted != 10 {
		t.Fatalf("seed submission: status %d, %+v", code, rr)
	}
	if err := coA.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	tsA.Close() // the coordinator dies

	coB, err := NewCoordinator(CoordinatorConfig{
		Campaign:       testCampaign(t),
		CheckpointPath: ckpt,
	})
	if err != nil {
		t.Fatal(err)
	}
	if coB.Restored() != 10 {
		t.Fatalf("restored %d trials, want 10", coB.Restored())
	}
	tsB := httptest.NewServer(coB.Handler())
	defer tsB.Close()

	// The old worker's identity is gone from the fresh registry; its
	// first lease request is answered unknown_worker and the worker
	// rejoins under the same name before continuing.
	wk, err := NewWorker(WorkerConfig{
		Campaign:    testCampaign(t),
		Coordinator: tsB.URL,
		Name:        "w-test",
		Poll:        10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := wk.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if wk.Executed() != 14 {
		t.Fatalf("restarted fleet executed %d trials, want the 14 not in the checkpoint", wk.Executed())
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := coB.Result(ctx)
	if err != nil {
		t.Fatal(err)
	}
	requireGolden(t, res, single)
}

// TestWorkerRejoinAfterRestart exercises the unknown_worker path
// directly: a lease request from an unregistered worker is a 404 with
// the typed code the worker keys its rejoin on.
func TestWorkerRejoinAfterRestart(t *testing.T) {
	co, err := NewCoordinator(CoordinatorConfig{Campaign: testCampaign(t)})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(co.Handler())
	defer ts.Close()

	body, _ := json.Marshal(LeaseRequest{Schema: SchemaVersion, Worker: "ghost"})
	hres, err := http.Post(ts.URL+PathLease, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer hres.Body.Close()
	if hres.StatusCode != http.StatusNotFound {
		t.Fatalf("ghost lease status %d, want 404", hres.StatusCode)
	}
	var env struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	if err := json.NewDecoder(hres.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if env.Error.Code != "unknown_worker" {
		t.Fatalf("error code %q, want unknown_worker", env.Error.Code)
	}
}

// TestTrialWireRoundTrip pins the bit-identity of trials crossing the
// wire: real campaign trials (float metrics included) must survive
// JSON encode/decode exactly.
func TestTrialWireRoundTrip(t *testing.T) {
	res := singleProcess(t)
	for i, tr := range res.Trials {
		data, err := json.Marshal(TrialResult{Index: i, Trial: tr})
		if err != nil {
			t.Fatal(err)
		}
		var got TrialResult
		dec := json.NewDecoder(bytes.NewReader(data))
		if err := dec.Decode(&got); err != nil {
			t.Fatal(err)
		}
		if got.Index != i || !reflect.DeepEqual(got.Trial, tr) {
			t.Fatalf("trial %d did not round-trip:\nsent %+v\ngot  %+v", i, tr, got.Trial)
		}
	}
}

// TestFleetMetricsText smoke-tests the Prometheus rendering: all fleet
// families present, worker series labeled, deterministic output.
func TestFleetMetricsText(t *testing.T) {
	s := StatusResponse{
		Schema: SchemaVersion, Trials: 100, Done: 40,
		OutstandingTrials: 12, OutstandingLeases: 3,
		ReissuedLeases: 2, DuplicateTrials: 5,
		ElapsedSec: 2.5, TrialsPerSec: 16,
		Workers: []WorkerStatus{
			{Worker: "w1", Trials: 30, TrialsPerSec: 12, OutstandingTrials: 8, OutstandingLeases: 2, LastSeenSec: 0.5},
			{Worker: "w2", Trials: 10, TrialsPerSec: 4, OutstandingTrials: 4, OutstandingLeases: 1, LastSeenSec: 1.25},
		},
	}
	var a, b strings.Builder
	if err := WriteFleetMetricsText(&a, s); err != nil {
		t.Fatal(err)
	}
	if err := WriteFleetMetricsText(&b, s); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("fleet exposition is not deterministic")
	}
	for _, line := range []string{
		"llmfi_fabric_trials_total 100",
		"llmfi_fabric_trials_done 40",
		"llmfi_fabric_trials_outstanding 12",
		"llmfi_fabric_leases_outstanding 3",
		"llmfi_fabric_leases_reissued_total 2",
		"llmfi_fabric_duplicate_trials_total 5",
		"llmfi_fabric_workers 2",
		"llmfi_fabric_trials_per_second 16",
		"llmfi_fabric_finished 0",
		`llmfi_fabric_worker_trials{worker="w1"} 30`,
		`llmfi_fabric_worker_trials_per_second{worker="w2"} 4`,
		`llmfi_fabric_worker_last_seen_seconds{worker="w2"} 1.25`,
	} {
		if !strings.Contains(a.String(), line+"\n") {
			t.Errorf("fleet exposition missing %q", line)
		}
	}
}
