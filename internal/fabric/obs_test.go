package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/version"
)

// httpGet fetches url and returns the body as a string.
func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, data)
	}
	return string(data)
}

// getStatus fetches the coordinator's fleet status.
func getStatus(t *testing.T, base string) StatusResponse {
	t.Helper()
	var st StatusResponse
	if err := json.Unmarshal([]byte(httpGet(t, base+PathStatus)), &st); err != nil {
		t.Fatal(err)
	}
	return st
}

// postRaw posts req as JSON with an optional traceparent header and
// returns the raw response (caller closes the body).
func postRaw(t *testing.T, url string, req any, traceparent string) *http.Response {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hreq, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	if traceparent != "" {
		hreq.Header.Set(obs.TraceparentHeader, traceparent)
	}
	hres, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	return hres
}

// runLeaseTrials executes the given campaign indices in-process and
// returns them as wire results.
func runLeaseTrials(t *testing.T, c core.Campaign, indices []int) []TrialResult {
	t.Helper()
	var out []TrialResult
	r := core.NewRunner(c, core.WithOnly(indices), core.WithCheckpoint(""))
	for ev := range r.Stream(context.Background()) {
		switch e := ev.(type) {
		case core.TrialDone:
			out = append(out, TrialResult{Index: e.Index, Trial: e.Trial})
		case core.CampaignDone:
			if e.Err != nil {
				t.Fatal(e.Err)
			}
		}
	}
	return out
}

// TestFleetTraceStitch runs a real coordinator plus two workers, all
// recording spans, and checks the tentpole end-to-end property: one
// trace ID stitches coordinator-side lease spans to worker-side
// execution spans (propagated via traceparent headers on the wire), the
// coordinator counts stitched result submissions, and its /metrics
// re-exports the workers' scraped series as llmfi_fleet_* aggregates
// with per-worker labels — surviving a worker that dies mid-campaign.
func TestFleetTraceStitch(t *testing.T) {
	coRec := obs.NewRecorder(obs.Config{Service: "coordinator", Sample: 1})
	co, err := NewCoordinator(CoordinatorConfig{
		Campaign:    testCampaign(t),
		LeaseTrials: 5,
		Recorder:    coRec,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(co.Handler())
	defer ts.Close()

	type workerRig struct {
		rec *obs.Recorder
		srv *httptest.Server
	}
	rigs := make([]*workerRig, 2)
	var wg sync.WaitGroup
	errs := make([]error, len(rigs))
	for i := range rigs {
		rec := obs.NewRecorder(obs.Config{Service: "worker", Sample: 1})
		var h http.Handler
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			h.ServeHTTP(w, r)
		}))
		wk, err := NewWorker(WorkerConfig{
			Campaign:    testCampaign(t),
			Coordinator: ts.URL,
			Name:        fmt.Sprintf("w%d", i+1),
			Poll:        10 * time.Millisecond,
			SubmitEvery: 3,
			HTTPAddr:    srv.URL,
			Recorder:    rec,
		})
		if err != nil {
			t.Fatal(err)
		}
		h = wk.Handler()
		rigs[i] = &workerRig{rec: rec, srv: srv}
		wg.Add(1)
		go func(i int, wk *Worker) {
			defer wg.Done()
			errs[i] = wk.Run(context.Background())
		}(i, wk)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}

	// One trace ID in both span sets: every coordinator span belongs to
	// the campaign root trace; worker lease/trial spans must join it.
	coSpans := coRec.Recent(0)
	if len(coSpans) == 0 {
		t.Fatal("coordinator recorded no spans")
	}
	coTrace := coSpans[0].Trace
	names := map[string]bool{}
	for _, sp := range coSpans {
		if sp.Trace != coTrace {
			t.Fatalf("coordinator spans span multiple traces: %s vs %s", sp.Trace, coTrace)
		}
		names[sp.Name] = true
	}
	if !names["campaign"] || !names["lease"] {
		t.Fatalf("coordinator span names = %v, want campaign + lease", names)
	}
	stitched := 0
	for _, rig := range rigs {
		for _, sp := range rig.rec.Recent(0) {
			if sp.Trace == coTrace {
				stitched++
				break
			}
		}
	}
	if stitched == 0 {
		t.Fatal("no worker span joined the coordinator's trace (traceparent stitch broken)")
	}

	// The results wire carried the stitch back: status counts it.
	st := getStatus(t, ts.URL)
	if st.StitchedResults == 0 {
		t.Fatal("StitchedResults == 0: result submissions did not echo the lease traceparent")
	}

	// Fan-in: scrape both workers, then kill one and scrape again — the
	// dead worker goes up=0 but keeps its per-worker series.
	co.FanIn().ScrapeOnce(context.Background())
	rigs[1].srv.Close()
	co.FanIn().ScrapeOnce(context.Background())
	defer rigs[0].srv.Close()

	body := httpGet(t, ts.URL+"/metrics")
	for _, want := range []string{
		"llmfi_build_info{version=",
		"llmfi_fabric_stitched_results_total",
		`llmfi_fleet_worker_self_trials_total{agg="sum"}`,
		`llmfi_fleet_worker_self_trials_total{worker="w1"}`,
		`llmfi_fleet_worker_self_trials_total{worker="w2"}`,
		`llmfi_fleet_worker_up{worker="w1"} 1`,
		`llmfi_fleet_worker_up{worker="w2"} 0`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("coordinator /metrics missing %q", want)
		}
	}

	dash := httpGet(t, ts.URL+"/debug/fleet")
	for _, want := range []string{"<html", "llmfi_fleet_worker_up"} {
		if !strings.Contains(dash, want) {
			t.Errorf("/debug/fleet missing %q", want)
		}
	}
}

// TestLeaseTraceparentRoundTrip drives the wire by hand: the lease
// response carries a traceparent; echoing it on results is acknowledged
// (stitched), while a malformed or foreign traceparent is ignored, never
// rejected.
func TestLeaseTraceparentRoundTrip(t *testing.T) {
	coRec := obs.NewRecorder(obs.Config{Service: "coordinator", Sample: 1})
	co, err := NewCoordinator(CoordinatorConfig{Campaign: testCampaign(t), LeaseTrials: 4, Recorder: coRec})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(co.Handler())
	defer ts.Close()

	c := testCampaign(t)
	var join JoinResponse
	postJSON(t, ts.URL+PathJoin, JoinRequest{Schema: SchemaVersion, Version: version.Version, Fingerprint: c.Fingerprint()}, &join)

	// Lease over raw HTTP to reach the response header.
	req := LeaseRequest{Schema: SchemaVersion, Worker: join.Worker}
	hres := postRaw(t, ts.URL+PathLease, req, "")
	defer hres.Body.Close()
	var lease LeaseResponse
	if err := json.NewDecoder(hres.Body).Decode(&lease); err != nil {
		t.Fatal(err)
	}
	if lease.Lease == nil {
		t.Fatalf("no lease granted: %+v", lease)
	}
	tp, ok := obs.ParseTraceparent(hres.Header.Get(obs.TraceparentHeader))
	if !ok {
		t.Fatalf("lease response carries no traceparent (header %q)", hres.Header.Get(obs.TraceparentHeader))
	}

	// Execute one leased trial for real so the submission is valid.
	trials := runLeaseTrials(t, c, lease.Lease.Indices[:1])
	results := ResultsRequest{Schema: SchemaVersion, Worker: join.Worker, Lease: lease.Lease.ID, Trials: trials}

	// Malformed and foreign traceparents: accepted (200), not stitched.
	for _, hdr := range []string{"garbage", "00-" + strings.Repeat("ab", 16) + "-" + strings.Repeat("cd", 8) + "-01"} {
		res := postRaw(t, ts.URL+PathResults, ResultsRequest{Schema: SchemaVersion, Worker: join.Worker, Trials: nil}, hdr)
		if res.StatusCode != http.StatusOK {
			t.Fatalf("traceparent %q: status %d, want 200", hdr, res.StatusCode)
		}
		res.Body.Close()
	}
	if st := getStatus(t, ts.URL); st.StitchedResults != 0 {
		t.Fatalf("foreign traceparent counted as stitched: %d", st.StitchedResults)
	}

	// The real lease context stitches.
	res := postRaw(t, ts.URL+PathResults, results, tp.Traceparent())
	if res.StatusCode != http.StatusOK {
		t.Fatalf("results: status %d", res.StatusCode)
	}
	echoed, ok := obs.ParseTraceparent(res.Header.Get(obs.TraceparentHeader))
	res.Body.Close()
	if !ok || echoed.Trace != tp.Trace {
		t.Fatalf("results response did not echo the trace: %+v ok=%v", echoed, ok)
	}
	if st := getStatus(t, ts.URL); st.StitchedResults != 1 {
		t.Fatalf("StitchedResults = %d, want 1", st.StitchedResults)
	}
}
