package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/trace"
	"repro/internal/version"
)

// RemoteError is a coordinator-side rejection: the JSON error envelope
// decoded into an error value. Status < 500 rejections are permanent
// (the request itself is wrong — mismatched fingerprint, bad index);
// transport failures and 5xx responses are retried.
type RemoteError struct {
	Status  int
	Code    string
	Message string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("coordinator rejected request (%d %s): %s", e.Status, e.Code, e.Message)
}

// WorkerConfig configures a fleet worker.
type WorkerConfig struct {
	// Campaign is the worker's locally-constructed campaign definition.
	// It must be identical to the coordinator's — the join handshake
	// compares fingerprints and refuses divergent configurations.
	Campaign core.Campaign
	// Coordinator is the coordinator's base URL (e.g. "http://host:8080").
	Coordinator string
	// Name, when set, joins under a fixed identity (and reclaims it after
	// a reconnect). Empty lets the coordinator assign one.
	Name string
	// Client overrides the HTTP client (default: 30s timeout).
	Client *http.Client
	// Poll is the sleep between lease requests while every remaining
	// trial is leased elsewhere (default 200ms).
	Poll time.Duration
	// SubmitEvery is the number of completed trials per results
	// submission (default 8). Submissions double as heartbeats, so the
	// batch size bounds how long the worker goes silent mid-lease.
	SubmitEvery int
	// Logf, when set, receives progress lines (log.Printf-compatible).
	Logf func(format string, args ...any)
	// HTTPAddr, when set, is the base URL of this worker's own
	// observability listener (serve Handler() there). It is advertised
	// at join so the coordinator's fan-in scrapes it.
	HTTPAddr string
	// Recorder, when non-nil and enabled, records worker-side spans
	// (lease execution + per-trial phase spans) continuing the trace
	// context the coordinator propagates on lease responses.
	Recorder *obs.Recorder
}

// Worker executes leased trial-index ranges through the core runtime
// and streams completed trials back to the coordinator. The fault-free
// baseline is evaluated once, during the first lease, and reused for
// every later lease.
type Worker struct {
	cfg      WorkerConfig
	name     string
	baseline *core.Baseline
	executed int

	// leaseCtx is the trace context of the current lease, captured from
	// the coordinator's traceparent response header and echoed on result
	// submissions. recvTP holds the most recent response's traceparent
	// (zero when absent/malformed). Run is single-goroutine, so plain
	// fields suffice.
	leaseCtx obs.SpanContext
	recvTP   obs.SpanContext

	// Self-metrics for the worker's own /metrics surface. The campaign
	// telemetry registry resets per runner run (per lease), so lease-
	// lifetime counters live here as plain atomics instead.
	selfLeases     atomic.Int64
	selfTrials     atomic.Int64
	selfSubmits    atomic.Int64
	selfDuplicates atomic.Int64
}

// NewWorker validates the configuration and returns a worker ready to
// Run.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if cfg.Campaign.Trials <= 0 {
		return nil, core.ErrNoTrials
	}
	if cfg.Coordinator == "" {
		return nil, errors.New("fabric: coordinator URL required")
	}
	cfg.Coordinator = strings.TrimSuffix(cfg.Coordinator, "/")
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 30 * time.Second}
	}
	if cfg.Poll <= 0 {
		cfg.Poll = 200 * time.Millisecond
	}
	if cfg.SubmitEvery <= 0 {
		cfg.SubmitEvery = 8
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	return &Worker{cfg: cfg, name: cfg.Name}, nil
}

// Name returns the worker's fleet identity (assigned at join).
func (w *Worker) Name() string { return w.name }

// Executed returns the number of trials this worker has submitted.
func (w *Worker) Executed() int { return w.executed }

// Handler returns the worker's own observability surface: /metrics
// (self-counters in Prometheus text format, the series the
// coordinator's fan-in scrapes and re-exports as llmfi_fleet_*) and
// /healthz. Serve it on the address advertised via WorkerConfig.HTTPAddr.
func (w *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", w.handleMetrics)
	mux.HandleFunc("/healthz", func(rw http.ResponseWriter, _ *http.Request) {
		writeJSON(rw, struct {
			Status string `json:"status"`
			Worker string `json:"worker"`
			Trials int64  `json:"trials"`
		}{Status: "ok", Worker: w.name, Trials: w.selfTrials.Load()})
	})
	return mux
}

func (w *Worker) handleMetrics(rw http.ResponseWriter, _ *http.Request) {
	rw.Header().Set("Content-Type", report.ContentTypeMetrics)
	_ = report.WriteBuildInfoText(rw, SchemaVersion)
	// The llmfi_worker_self_* prefix keeps these distinct from the
	// campaign telemetry's llmfi_worker_* (pool workers) and the
	// coordinator's llmfi_fabric_worker_* (fleet view) families.
	counter := func(name, help string, v int64) {
		fmt.Fprintf(rw, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("llmfi_worker_self_leases_total", "Leases this worker has executed.", w.selfLeases.Load())
	counter("llmfi_worker_self_trials_total", "Trials this worker has completed and submitted.", w.selfTrials.Load())
	counter("llmfi_worker_self_submits_total", "Result submissions posted to the coordinator.", w.selfSubmits.Load())
	counter("llmfi_worker_self_duplicates_total", "Submitted trials the coordinator discarded as duplicates.", w.selfDuplicates.Load())
	counter("llmfi_worker_self_spans_total", "Spans recorded by this worker's recorder.", int64(w.cfg.Recorder.Count()))
}

// Run joins the fleet and works leases until the campaign completes
// (returns nil), ctx is cancelled, or the coordinator permanently
// rejects the worker (mismatched schema/version/fingerprint).
func (w *Worker) Run(ctx context.Context) error {
	if err := w.join(ctx); err != nil {
		return err
	}
	for {
		var resp LeaseResponse
		err := w.post(ctx, PathLease, obs.SpanContext{}, LeaseRequest{Schema: SchemaVersion, Worker: w.name}, &resp)
		var re *RemoteError
		switch {
		case errors.As(err, &re) && re.Code == "unknown_worker":
			// The coordinator restarted and lost the fleet registry;
			// rejoin under the same identity and carry on.
			w.cfg.Logf("fabric worker %s: coordinator does not know us; rejoining", w.name)
			if err := w.join(ctx); err != nil {
				return err
			}
		case err != nil:
			return err
		case resp.Done:
			w.cfg.Logf("fabric worker %s: campaign complete (%d trials executed here)", w.name, w.executed)
			return nil
		case resp.Lease != nil:
			// The coordinator propagates its lease span's trace context on
			// the response header; adopting it here is what stitches this
			// worker's spans into the coordinator-side trace.
			w.leaseCtx = w.recvTP
			if err := w.execute(ctx, resp.Lease); err != nil {
				return err
			}
		default:
			// Everything pending is leased to other workers; an
			// outstanding lease may complete or expire, so poll again.
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(w.cfg.Poll):
			}
		}
	}
}

// join performs the fleet handshake. A version, schema, or fingerprint
// mismatch is a permanent RemoteError — the worker would compute
// different trials than the coordinator expects.
func (w *Worker) join(ctx context.Context) error {
	req := JoinRequest{
		Schema:      SchemaVersion,
		Version:     version.Version,
		Fingerprint: w.cfg.Campaign.Fingerprint(),
		Worker:      w.name,
		HTTPAddr:    w.cfg.HTTPAddr,
	}
	var resp JoinResponse
	if err := w.post(ctx, PathJoin, obs.SpanContext{}, req, &resp); err != nil {
		return err
	}
	w.name = resp.Worker
	w.cfg.Logf("fabric worker %s: joined — %d trials total, lease ttl %dms, %d trials/lease",
		w.name, resp.Trials, resp.LeaseTTLMs, resp.LeaseTrials)
	return nil
}

// execute runs one lease's indices through the core runtime, streaming
// completed trials back in batches. Each submission renews the lease
// server-side, so a healthy worker never loses a lease mid-run.
func (w *Worker) execute(ctx context.Context, l *Lease) error {
	w.cfg.Logf("fabric worker %s: lease %d — %d trials", w.name, l.ID, len(l.Indices))
	w.selfLeases.Add(1)
	// The worker must not write the campaign's own checkpoint: trial
	// persistence is the coordinator's job, and two workers sharing a
	// path would clobber each other. WithCheckpoint("") clears any
	// checkpoint path configured on the campaign.
	opts := []core.RunnerOption{core.WithOnly(l.Indices), core.WithCheckpoint("")}
	if w.baseline != nil {
		opts = append(opts, core.WithBaseline(w.baseline))
	}
	rec := w.cfg.Recorder
	traced := rec.SampleRoot()
	var execCtx obs.SpanContext
	start := time.Now()
	if traced {
		// Child of the coordinator's lease span when the lease response
		// carried one; a fresh worker-local root otherwise. Either way the
		// observer below only reads phase timings the runner already
		// produced — it cannot feed anything back into trial outcomes.
		execCtx = rec.Child(w.leaseCtx)
		opts = append(opts, core.WithSpanObserver(func(index int, spans []trace.Span, busy time.Duration) {
			attrs := make([]obs.Attr, 0, len(spans)+1)
			attrs = append(attrs, obs.Int("index", int64(index)))
			for _, ps := range spans {
				attrs = append(attrs, obs.Num(string(ps.Phase)+"_s", ps.Seconds))
			}
			rec.Record(obs.NewSpan(rec.Child(execCtx), execCtx.Span, "trial",
				time.Now().Add(-busy), busy, attrs...))
		}))
	}
	r := core.NewRunner(w.cfg.Campaign, opts...)
	batch := make([]TrialResult, 0, w.cfg.SubmitEvery)
	var runErr error
	for ev := range r.Stream(ctx) {
		switch e := ev.(type) {
		case core.BaselineReady:
			w.baseline = e.Baseline
		case core.TrialDone:
			w.selfTrials.Add(1)
			batch = append(batch, TrialResult{Index: e.Index, Trial: e.Trial})
			if len(batch) >= w.cfg.SubmitEvery {
				if err := w.submit(ctx, l.ID, batch); err != nil {
					return err
				}
				batch = batch[:0]
			}
		case core.CampaignDone:
			runErr = e.Err
		}
	}
	if runErr != nil {
		return runErr
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if len(batch) > 0 {
		if err := w.submit(ctx, l.ID, batch); err != nil {
			return err
		}
	}
	if traced {
		var parent string
		if w.leaseCtx.Valid() {
			parent = w.leaseCtx.Span
		}
		rec.Record(obs.NewSpan(execCtx, parent, "lease_execute", start, time.Since(start),
			obs.Str("worker", w.name),
			obs.Int("lease", int64(l.ID)),
			obs.Int("trials", int64(len(l.Indices)))))
	}
	return nil
}

// submit posts one batch of completed trials. Duplicates (the batch
// re-executed a reissued index) are the coordinator's to count; the
// worker only tracks what it ran.
func (w *Worker) submit(ctx context.Context, lease uint64, trials []TrialResult) error {
	req := ResultsRequest{
		Schema: SchemaVersion,
		Worker: w.name,
		Lease:  lease,
		Trials: trials,
	}
	var resp ResultsResponse
	// Echoing the lease's trace context on the submission is what lets
	// the coordinator count this result as stitched to its trace.
	if err := w.post(ctx, PathResults, w.leaseCtx, req, &resp); err != nil {
		return err
	}
	w.executed += len(trials)
	w.selfSubmits.Add(1)
	w.selfDuplicates.Add(int64(resp.Duplicates))
	if resp.Duplicates > 0 {
		w.cfg.Logf("fabric worker %s: %d of %d submitted trials were duplicates (lease reissue race)",
			w.name, resp.Duplicates, len(trials))
	}
	return nil
}

// post sends one JSON request and decodes the response, retrying
// transport failures and 5xx responses with exponential backoff until
// ctx is cancelled. Status < 500 envelopes return as *RemoteError. A
// valid tp is attached as a traceparent request header; the response's
// traceparent (if any) lands in w.recvTP.
func (w *Worker) post(ctx context.Context, path string, tp obs.SpanContext, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	backoff := 250 * time.Millisecond
	for {
		err := w.postOnce(ctx, path, tp, body, resp)
		var re *RemoteError
		if err == nil || (errors.As(err, &re) && re.Status < 500) {
			return err
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		w.cfg.Logf("fabric worker %s: %s failed (%v); retrying in %s", w.name, path, err, backoff)
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(backoff):
		}
		if backoff < 4*time.Second {
			backoff *= 2
		}
	}
}

func (w *Worker) postOnce(ctx context.Context, path string, tp obs.SpanContext, body []byte, resp any) error {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, w.cfg.Coordinator+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	hreq.Header.Set("Content-Type", "application/json")
	if tp.Valid() {
		hreq.Header.Set(obs.TraceparentHeader, tp.Traceparent())
	}
	hres, err := w.cfg.Client.Do(hreq)
	if err != nil {
		return err
	}
	defer hres.Body.Close()
	w.recvTP, _ = obs.ParseTraceparent(hres.Header.Get(obs.TraceparentHeader))
	data, err := io.ReadAll(io.LimitReader(hres.Body, 8<<20))
	if err != nil {
		return err
	}
	if hres.StatusCode != http.StatusOK {
		// Deliberately tolerant sniff: the error body may be a typed
		// envelope or proxy-generated plaintext; extra fields must not
		// hide the error itself.
		var env report.APIError
		if json.Unmarshal(data, &env) == nil && env.Error.Code != "" { //llmfi:allow wireschema error-envelope sniff is tolerant by design
			return &RemoteError{Status: hres.StatusCode, Code: env.Error.Code, Message: env.Error.Message}
		}
		return &RemoteError{Status: hres.StatusCode, Code: "http_error", Message: strings.TrimSpace(string(data))}
	}
	// Success payloads are strict: a coordinator speaking a newer wire
	// schema fails the decode instead of silently dropping fields.
	return report.StrictUnmarshal(data, resp)
}
