package fabric

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// WriteFleetMetricsText renders the fleet status in the Prometheus text
// exposition format (version 0.0.4) — the multi-node counterpart of
// report.WriteMetricsText. Output is deterministic for a given status
// (fixed family order, workers sorted by name), so it can be golden
// tested and diffed across scrapes.
func WriteFleetMetricsText(w io.Writer, s StatusResponse) error {
	var b strings.Builder
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n",
			name, help, name, name, fmtVal(v))
	}
	counter := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %s\n",
			name, help, name, name, fmtVal(v))
	}

	gauge("llmfi_fabric_trials_total", "Trials configured for the distributed campaign.", float64(s.Trials))
	gauge("llmfi_fabric_trials_done", "Trials merged by the coordinator.", float64(s.Done))
	gauge("llmfi_fabric_trials_outstanding", "Leased, not-yet-submitted trial indices.", float64(s.OutstandingTrials))
	gauge("llmfi_fabric_leases_outstanding", "Live leases across the fleet.", float64(s.OutstandingLeases))
	counter("llmfi_fabric_leases_reissued_total", "Leases expired past their TTL and returned to the pool.", float64(s.ReissuedLeases))
	counter("llmfi_fabric_duplicate_trials_total", "Submitted trials discarded by index-keyed dedup.", float64(s.DuplicateTrials))
	counter("llmfi_fabric_stitched_results_total", "Result submissions carrying the lease's trace context (coordinator/worker trace stitch).", float64(s.StitchedResults))
	gauge("llmfi_fabric_workers", "Workers that have joined the fleet.", float64(len(s.Workers)))
	gauge("llmfi_fabric_trials_per_second", "Fleet-wide merge throughput (restored trials excluded).", s.TrialsPerSec)
	gauge("llmfi_fabric_elapsed_seconds", "Wall time since the coordinator started.", s.ElapsedSec)
	finished := 0.0
	if s.Finished {
		finished = 1
	}
	gauge("llmfi_fabric_finished", "Whether every trial is merged (0/1).", finished)

	if len(s.Workers) > 0 {
		fmt.Fprintf(&b, "# HELP llmfi_fabric_worker_trials Trials accepted per worker.\n# TYPE llmfi_fabric_worker_trials gauge\n")
		for _, ws := range s.Workers {
			fmt.Fprintf(&b, "llmfi_fabric_worker_trials{worker=%q} %d\n", ws.Worker, ws.Trials)
		}
		fmt.Fprintf(&b, "# HELP llmfi_fabric_worker_trials_per_second Accepted-trial rate per worker since it joined.\n# TYPE llmfi_fabric_worker_trials_per_second gauge\n")
		for _, ws := range s.Workers {
			fmt.Fprintf(&b, "llmfi_fabric_worker_trials_per_second{worker=%q} %s\n", ws.Worker, fmtVal(ws.TrialsPerSec))
		}
		fmt.Fprintf(&b, "# HELP llmfi_fabric_worker_outstanding_trials Leased, unsubmitted indices per worker.\n# TYPE llmfi_fabric_worker_outstanding_trials gauge\n")
		for _, ws := range s.Workers {
			fmt.Fprintf(&b, "llmfi_fabric_worker_outstanding_trials{worker=%q} %d\n", ws.Worker, ws.OutstandingTrials)
		}
		fmt.Fprintf(&b, "# HELP llmfi_fabric_worker_last_seen_seconds Seconds since each worker's last request.\n# TYPE llmfi_fabric_worker_last_seen_seconds gauge\n")
		for _, ws := range s.Workers {
			fmt.Fprintf(&b, "llmfi_fabric_worker_last_seen_seconds{worker=%q} %s\n", ws.Worker, fmtVal(ws.LastSeenSec))
		}
	}

	_, err := io.WriteString(w, b.String())
	return err
}

// fmtVal renders a sample value the way Prometheus clients do: shortest
// round-trip representation, integers without a decimal point.
func fmtVal(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// writeJSON writes an indented JSON response body.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// sortStrings orders worker names deterministically.
func sortStrings(s []string) { sort.Strings(s) }
