package fabric

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/version"
)

// Trial-index lease state machine. Every index is pending (available to
// lease), leased (handed to a worker, unsubmitted), or done (result
// merged). pending → leased on grant; leased → done on submission;
// leased → pending when the lease's TTL elapses without contact from
// its worker (the reissue path). done is terminal: later submissions of
// the same index are deduplicated, never re-merged.
type trialState uint8

const (
	statePending trialState = iota
	stateLeased
	stateDone
)

// leaseRec is one live lease. indices keeps the granted order; entries
// already submitted are skipped via the coordinator's state array.
type leaseRec struct {
	id      uint64
	worker  string
	indices []int
	expires time.Time
	// granted / ctx are observability-only: when the coordinator traces,
	// every lease gets a span context (child of the campaign root) that
	// rides the lease response's traceparent header to the worker, and a
	// "lease" span covering granted→retire/expire.
	granted time.Time
	ctx     obs.SpanContext
}

// workerRec tracks one fleet member.
type workerRec struct {
	name     string
	joined   time.Time
	lastSeen time.Time
	trials   int
	leases   map[uint64]*leaseRec
}

// CoordinatorConfig configures a campaign coordinator.
type CoordinatorConfig struct {
	// Campaign is the full campaign definition. The coordinator never
	// executes trials itself; it needs the definition for the
	// fingerprint handshake and the final baseline evaluation.
	Campaign core.Campaign
	// LeaseTTL is how long a lease survives without a result submission
	// from its worker (default 30s). Submissions renew all of the
	// worker's leases.
	LeaseTTL time.Duration
	// LeaseTrials is the maximum trial indices per lease (default 16).
	LeaseTrials int
	// CheckpointPath, when set, persists completed trials (the standard
	// core.Checkpoint format) periodically and at campaign completion; a
	// restarted coordinator pointed at the same path resumes with the
	// completed trials merged and every other index leasable again.
	CheckpointPath string
	// CheckpointEvery is the number of accepted trials between periodic
	// checkpoint writes (default 256).
	CheckpointEvery int
	// Clock overrides wall-clock reads (test seam; default time.Now).
	Clock func() time.Time
	// Recorder, when non-nil and enabled, records coordinator-side spans
	// (campaign root + per-lease lifecycle) whose trace context is
	// propagated to workers over the lease response's traceparent header.
	Recorder *obs.Recorder
	// ScrapeEvery is the worker /metrics fan-in interval used by
	// RunScrapes (default 2s).
	ScrapeEvery time.Duration
	// ScrapeClient overrides the fan-in's HTTP client (test seam).
	ScrapeClient *http.Client
}

// Coordinator owns a campaign's trial-index space and merges worker
// results. All exported methods and HTTP handlers are safe for
// concurrent use.
type Coordinator struct {
	cfg CoordinatorConfig
	fp  core.Fingerprint
	now func() time.Time

	mu         sync.Mutex
	state      []trialState          //llmfi:guardedby mu
	trials     []core.Trial          //llmfi:guardedby mu
	done       int                   //llmfi:guardedby mu
	leases     map[uint64]*leaseRec  //llmfi:guardedby mu
	workers    map[string]*workerRec //llmfi:guardedby mu
	nextLease  uint64                //llmfi:guardedby mu
	nextWorker int                   //llmfi:guardedby mu
	reissued   int                   //llmfi:guardedby mu
	duplicates int                   //llmfi:guardedby mu
	scan       int                   //llmfi:guardedby mu — lowest possibly-pending index (lease-grant cursor)
	start      time.Time             //llmfi:guardedby mu
	sinceCkpt  int                   //llmfi:guardedby mu
	finished   chan struct{}         // closed under mu, received lock-free (Finished)
	restored   int                   //llmfi:guardedby mu

	fan      *obs.FanIn
	root     obs.SpanContext // campaign trace root (zero when untraced)
	stitched int             //llmfi:guardedby mu — result submissions carrying lease trace context
}

// NewCoordinator validates the campaign, restores a checkpoint when one
// exists at CheckpointPath, and returns a coordinator ready to serve.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	if cfg.Campaign.Trials <= 0 {
		return nil, core.ErrNoTrials
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 30 * time.Second
	}
	if cfg.LeaseTrials <= 0 {
		cfg.LeaseTrials = 16
	}
	if cfg.CheckpointEvery <= 0 {
		cfg.CheckpointEvery = 256
	}
	co := &Coordinator{
		cfg:      cfg,
		fp:       cfg.Campaign.Fingerprint(),
		now:      cfg.Clock,
		state:    make([]trialState, cfg.Campaign.Trials),
		trials:   make([]core.Trial, cfg.Campaign.Trials),
		leases:   map[uint64]*leaseRec{},
		workers:  map[string]*workerRec{},
		finished: make(chan struct{}),
	}
	if co.now == nil {
		co.now = time.Now
	}
	if cfg.ScrapeEvery <= 0 {
		cfg.ScrapeEvery = 2 * time.Second
		co.cfg.ScrapeEvery = cfg.ScrapeEvery
	}
	co.fan = obs.NewFanIn(cfg.ScrapeClient)
	if cfg.Recorder.SampleRoot() {
		// The whole distributed campaign is one trace: the root span
		// spans coordinator start → last merge, and every lease is a
		// child whose context workers continue.
		co.root = cfg.Recorder.StartTrace()
	}
	co.start = co.now()
	if cfg.CheckpointPath != "" {
		if err := co.restore(cfg.CheckpointPath); err != nil {
			return nil, err
		}
	}
	if co.done == len(co.state) {
		close(co.finished)
	}
	return co, nil
}

// restore merges a prior coordinator's checkpoint: completed trials
// become done, everything else — including indices that were leased
// when the old coordinator died — returns to the pool, so outstanding
// work resumes under fresh leases. A missing file is a fresh campaign.
func (co *Coordinator) restore(path string) error {
	ck, err := core.LoadCheckpoint(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil
		}
		return err
	}
	if err := ck.Matches(co.cfg.Campaign); err != nil {
		return err
	}
	// Only NewCoordinator calls restore, before the coordinator is
	// published, so the lock is uncontended — but holding it keeps the
	// guardedby invariant uniformly true instead of special-cased.
	co.mu.Lock()
	defer co.mu.Unlock()
	for i, t := range ck.Indices {
		if t < 0 || t >= len(co.state) || co.state[t] == stateDone {
			continue
		}
		co.state[t] = stateDone
		co.trials[t] = ck.Trials[i]
		co.done++
	}
	co.restored = co.done
	return nil
}

// Restored returns the number of trials recovered from the checkpoint.
func (co *Coordinator) Restored() int {
	co.mu.Lock()
	defer co.mu.Unlock()
	return co.restored
}

// Handler returns the coordinator's HTTP surface: the versioned fabric
// API (join/lease/results/status), fleet Prometheus metrics at the
// conventional /metrics, and a /healthz liveness probe.
func (co *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(PathJoin, co.handleJoin)
	mux.HandleFunc(PathLease, co.handleLease)
	mux.HandleFunc(PathResults, co.handleResults)
	mux.HandleFunc(PathStatus, co.handleStatus)
	mux.HandleFunc(report.APIVersion+"/", func(w http.ResponseWriter, r *http.Request) {
		report.WriteAPIError(w, http.StatusNotFound, "not_found", "unknown API path "+r.URL.Path)
	})
	mux.HandleFunc("/metrics", co.handleMetrics)
	mux.HandleFunc("/healthz", co.handleHealthz)
	mux.HandleFunc("/debug/fleet", obs.DashboardHandler(co.dashboardData))
	return mux
}

// FanIn exposes the coordinator's worker-metrics aggregator.
func (co *Coordinator) FanIn() *obs.FanIn { return co.fan }

// RunScrapes runs the worker /metrics fan-in loop until ctx is done.
// Start it in its own goroutine next to the HTTP server.
func (co *Coordinator) RunScrapes(ctx context.Context) {
	co.fan.Run(ctx, co.cfg.ScrapeEvery)
}

// recordLeaseSpanLocked emits the lease-lifecycle span (grant →
// retire/expire). Callers hold co.mu; the recorder has its own lock.
func (co *Coordinator) recordLeaseSpanLocked(l *leaseRec, now time.Time, outcome string) {
	if !l.ctx.Valid() {
		return
	}
	co.cfg.Recorder.Record(obs.NewSpan(l.ctx, co.root.Span, "lease",
		l.granted, now.Sub(l.granted),
		obs.Str("worker", l.worker),
		obs.Int("trials", int64(len(l.indices))),
		obs.Str("outcome", outcome)))
}

// Result blocks until every trial is merged (or ctx is cancelled),
// evaluates the fault-free baseline, and returns the completed Result —
// bit-identical to a single-process run of the same campaign.
func (co *Coordinator) Result(ctx context.Context) (*core.Result, error) {
	select {
	case <-co.finished:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	baseline := co.cfg.Campaign.EvalBaseline()
	co.mu.Lock()
	trials := append([]core.Trial(nil), co.trials...)
	co.mu.Unlock()
	return &core.Result{Campaign: co.cfg.Campaign, Baseline: baseline, Trials: trials}, nil
}

// Done reports merged-trial progress.
func (co *Coordinator) Done() (done, total int) {
	co.mu.Lock()
	defer co.mu.Unlock()
	return co.done, len(co.state)
}

// Finished returns a channel closed when every trial is merged.
func (co *Coordinator) Finished() <-chan struct{} { return co.finished }

// sweepLocked expires leases whose TTL elapsed: their unsubmitted
// indices return to the pool and count one reissue per lease that
// actually surrendered work. Callers hold co.mu.
func (co *Coordinator) sweepLocked(now time.Time) {
	for id, l := range co.leases {
		if now.Before(l.expires) {
			continue
		}
		returned := 0
		for _, t := range l.indices {
			if co.state[t] == stateLeased {
				co.state[t] = statePending
				if t < co.scan {
					co.scan = t
				}
				returned++
			}
		}
		co.recordLeaseSpanLocked(l, now, "expired")
		co.dropLeaseLocked(id, l)
		if returned > 0 {
			co.reissued++
		}
	}
}

// dropLeaseLocked removes a lease from the registry and its worker.
func (co *Coordinator) dropLeaseLocked(id uint64, l *leaseRec) {
	delete(co.leases, id)
	if w := co.workers[l.worker]; w != nil {
		delete(w.leases, id)
	}
}

// grantLocked builds a lease of up to max pending indices for worker w,
// or nil when none are pending. Callers hold co.mu.
func (co *Coordinator) grantLocked(w *workerRec, max int, now time.Time) *leaseRec {
	var indices []int
	for t := co.scan; t < len(co.state) && len(indices) < max; t++ {
		if co.state[t] == statePending {
			indices = append(indices, t)
		} else if len(indices) == 0 {
			co.scan = t + 1
		}
	}
	if len(indices) == 0 {
		return nil
	}
	for _, t := range indices {
		co.state[t] = stateLeased
	}
	co.nextLease++
	l := &leaseRec{
		id:      co.nextLease,
		worker:  w.name,
		indices: indices,
		expires: now.Add(co.cfg.LeaseTTL),
		granted: now,
	}
	if co.root.Valid() {
		l.ctx = co.cfg.Recorder.Child(co.root)
	}
	co.leases[l.id] = l
	w.leases[l.id] = l
	return l
}

// touchLocked marks worker contact and renews its leases — any request
// from a worker proves it alive, so its in-flight work keeps its grant.
func (co *Coordinator) touchLocked(w *workerRec, now time.Time) {
	w.lastSeen = now
	for _, l := range w.leases {
		l.expires = now.Add(co.cfg.LeaseTTL)
	}
}

func (co *Coordinator) handleJoin(w http.ResponseWriter, r *http.Request) {
	var req JoinRequest
	if !co.decode(w, r, &req) {
		return
	}
	if req.Schema != SchemaVersion {
		report.WriteAPIError(w, http.StatusConflict, "schema_mismatch",
			fmt.Sprintf("worker speaks wire schema %d, coordinator %d", req.Schema, SchemaVersion))
		return
	}
	if req.Version != version.Version {
		report.WriteAPIError(w, http.StatusConflict, "version_mismatch",
			fmt.Sprintf("worker binary version %q, coordinator %q — fleets must run one build", req.Version, version.Version))
		return
	}
	if req.Fingerprint != co.fp {
		report.WriteAPIError(w, http.StatusConflict, "fingerprint_mismatch",
			fmt.Sprintf("worker campaign %s/%s/%s trials=%d seed=%d does not match coordinator %s/%s/%s trials=%d seed=%d",
				req.Fingerprint.Model, req.Fingerprint.Suite, req.Fingerprint.Fault, req.Fingerprint.Trials, req.Fingerprint.Seed,
				co.fp.Model, co.fp.Suite, co.fp.Fault, co.fp.Trials, co.fp.Seed))
		return
	}

	co.mu.Lock()
	now := co.now()
	name := req.Worker
	if name == "" {
		co.nextWorker++
		name = fmt.Sprintf("w%d", co.nextWorker)
	}
	wr := co.workers[name]
	if wr == nil {
		wr = &workerRec{name: name, joined: now, leases: map[uint64]*leaseRec{}}
		co.workers[name] = wr
	}
	co.touchLocked(wr, now)
	resp := JoinResponse{
		Schema:      SchemaVersion,
		Worker:      name,
		Trials:      len(co.state),
		LeaseTTLMs:  co.cfg.LeaseTTL.Milliseconds(),
		LeaseTrials: co.cfg.LeaseTrials,
	}
	co.mu.Unlock()
	// Fan-in registration rides the join: a worker advertising an
	// observability address gets its /metrics scraped from now on.
	co.fan.Register(name, req.HTTPAddr)
	writeJSON(w, resp)
}

func (co *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if !co.decode(w, r, &req) {
		return
	}
	if !co.checkSchema(w, req.Schema) {
		return
	}
	co.mu.Lock()
	now := co.now()
	co.sweepLocked(now)
	wr := co.workers[req.Worker]
	if wr == nil {
		co.mu.Unlock()
		report.WriteAPIError(w, http.StatusNotFound, "unknown_worker",
			fmt.Sprintf("worker %q has not joined (coordinator restart? re-join)", req.Worker))
		return
	}
	co.touchLocked(wr, now)
	max := co.cfg.LeaseTrials
	if req.Max > 0 && req.Max < max {
		max = req.Max
	}
	resp := LeaseResponse{Schema: SchemaVersion}
	var leaseCtx obs.SpanContext
	switch l := co.grantLocked(wr, max, now); {
	case l != nil:
		resp.Lease = &Lease{
			ID:      l.id,
			Indices: append([]int(nil), l.indices...),
			TTLMs:   co.cfg.LeaseTTL.Milliseconds(),
		}
		leaseCtx = l.ctx
	case co.done == len(co.state):
		resp.Done = true
	default:
		resp.Wait = true
	}
	co.mu.Unlock()
	if leaseCtx.Valid() {
		// The lease's trace context rides a traceparent header: workers
		// that trace continue it (the coordinator/worker stitch), others
		// ignore it — the JSON payload is unchanged either way.
		w.Header().Set(obs.TraceparentHeader, leaseCtx.Traceparent())
	}
	writeJSON(w, resp)
}

func (co *Coordinator) handleResults(w http.ResponseWriter, r *http.Request) {
	var req ResultsRequest
	if !co.decode(w, r, &req) {
		return
	}
	if !co.checkSchema(w, req.Schema) {
		return
	}
	// Trace context is advisory: a malformed, missing, or foreign
	// traceparent header is ignored, never an error. A valid one in the
	// coordinator's own trace counts as a stitched submission and is
	// echoed back so the worker sees the round-trip.
	incoming, hasTP := obs.ParseTraceparent(r.Header.Get(obs.TraceparentHeader))
	if hasTP {
		w.Header().Set(obs.TraceparentHeader, incoming.Traceparent())
	}
	// Validate against the immutable campaign config, not co.state: the
	// index space is fixed at construction, and this keeps the
	// pre-lock validation off the mu-guarded fields.
	total := co.cfg.Campaign.Trials
	for _, tr := range req.Trials {
		if tr.Index < 0 || tr.Index >= total {
			report.WriteAPIError(w, http.StatusBadRequest, "index_out_of_range",
				fmt.Sprintf("trial index %d outside [0, %d)", tr.Index, total))
			return
		}
	}

	co.mu.Lock()
	now := co.now()
	co.sweepLocked(now)
	if hasTP && incoming.Trace == co.root.Trace && co.root.Valid() {
		co.stitched++
	}
	// Results are merged even from workers the coordinator no longer
	// knows (restart) or whose lease expired (slow worker racing its
	// reissue): correctness is index-keyed, and a finished trial is a
	// finished trial.
	if wr := co.workers[req.Worker]; wr != nil {
		co.touchLocked(wr, now)
	}
	resp := ResultsResponse{Schema: SchemaVersion}
	for _, tr := range req.Trials {
		if co.state[tr.Index] == stateDone {
			co.duplicates++
			resp.Duplicates++
			continue
		}
		co.state[tr.Index] = stateDone
		co.trials[tr.Index] = tr.Trial
		co.done++
		resp.Accepted++
		if wr := co.workers[req.Worker]; wr != nil {
			wr.trials++
		}
	}
	co.retireLeasesLocked(now)
	var ckptErr error
	co.sinceCkpt += resp.Accepted
	allDone := co.done == len(co.state)
	if co.cfg.CheckpointPath != "" && (co.sinceCkpt >= co.cfg.CheckpointEvery || allDone) && resp.Accepted > 0 {
		ckptErr = co.checkpointLocked()
		co.sinceCkpt = 0
	}
	if allDone {
		select {
		case <-co.finished:
		default:
			close(co.finished)
			// The campaign root span seals once, on the submission that
			// merged the last trial.
			if co.root.Valid() {
				co.cfg.Recorder.Record(obs.NewSpan(co.root, "", "campaign",
					co.start, now.Sub(co.start),
					obs.Int("trials", int64(len(co.state))),
					obs.Int("workers", int64(len(co.workers))),
					obs.Int("stitched_results", int64(co.stitched))))
			}
		}
		resp.Done = true
	}
	co.mu.Unlock()

	if ckptErr != nil {
		report.WriteAPIError(w, http.StatusInternalServerError, "checkpoint_failed", ckptErr.Error())
		return
	}
	writeJSON(w, resp)
}

// retireLeasesLocked drops leases whose every index is done, so the
// status report's outstanding counts reflect real in-flight work.
func (co *Coordinator) retireLeasesLocked(now time.Time) {
	for id, l := range co.leases {
		live := false
		for _, t := range l.indices {
			if co.state[t] == stateLeased {
				live = true
				break
			}
		}
		if !live {
			co.recordLeaseSpanLocked(l, now, "completed")
			co.dropLeaseLocked(id, l)
		}
	}
}

// checkpointLocked persists the done trials in the standard
// core.Checkpoint format (same fingerprint guard, atomic write).
func (co *Coordinator) checkpointLocked() error {
	ck := &core.Checkpoint{Fingerprint: co.fp}
	for t, st := range co.state {
		if st == stateDone {
			ck.Indices = append(ck.Indices, t)
			ck.Trials = append(ck.Trials, co.trials[t])
		}
	}
	return ck.Save(co.cfg.CheckpointPath)
}

// Checkpoint forces a checkpoint write (no-op without a path).
func (co *Coordinator) Checkpoint() error {
	co.mu.Lock()
	defer co.mu.Unlock()
	if co.cfg.CheckpointPath == "" {
		return nil
	}
	return co.checkpointLocked()
}

func (co *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		report.WriteAPIError(w, http.StatusMethodNotAllowed, "method_not_allowed", r.Method+" not allowed; use GET")
		return
	}
	writeJSON(w, co.Status())
}

// Status renders the fleet-level progress snapshot.
func (co *Coordinator) Status() StatusResponse {
	co.mu.Lock()
	defer co.mu.Unlock()
	now := co.now()
	co.sweepLocked(now)
	s := StatusResponse{
		Schema:          SchemaVersion,
		Version:         version.Version,
		Fingerprint:     co.fp,
		Trials:          len(co.state),
		Done:            co.done,
		ReissuedLeases:  co.reissued,
		DuplicateTrials: co.duplicates,
		StitchedResults: co.stitched,
		Finished:        co.done == len(co.state),
		ElapsedSec:      now.Sub(co.start).Seconds(),
	}
	if executed := co.done - co.restored; executed > 0 && s.ElapsedSec > 0 {
		s.TrialsPerSec = float64(executed) / s.ElapsedSec
	}
	for _, l := range co.leases {
		s.OutstandingLeases++
		for _, t := range l.indices {
			if co.state[t] == stateLeased {
				s.OutstandingTrials++
			}
		}
	}
	for _, name := range sortedWorkers(co.workers) {
		wr := co.workers[name]
		ws := WorkerStatus{
			Worker:      wr.name,
			Trials:      wr.trials,
			LastSeenSec: now.Sub(wr.lastSeen).Seconds(),
		}
		if up := now.Sub(wr.joined).Seconds(); up > 0 && wr.trials > 0 {
			ws.TrialsPerSec = float64(wr.trials) / up
		}
		for _, l := range wr.leases {
			ws.OutstandingLeases++
			for _, t := range l.indices {
				if co.state[t] == stateLeased {
					ws.OutstandingTrials++
				}
			}
		}
		s.Workers = append(s.Workers, ws)
	}
	return s
}

func (co *Coordinator) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", report.ContentTypeMetrics)
	_ = report.WriteBuildInfoText(w, SchemaVersion)
	_ = WriteFleetMetricsText(w, co.Status())
	// The aggregated worker series (llmfi_fleet_*) render after the
	// coordinator's own fabric families.
	_ = co.fan.WriteText(w)
}

// dashboardData gathers the live fleet view for /debug/fleet.
func (co *Coordinator) dashboardData() obs.DashboardData {
	s := co.Status()
	fleet := obs.DashboardSection{Title: "campaign", Rows: [][2]string{
		{"trials", fmt.Sprintf("%d / %d done", s.Done, s.Trials)},
		{"outstanding", fmt.Sprintf("%d trials in %d leases", s.OutstandingTrials, s.OutstandingLeases)},
		{"reissued leases", fmt.Sprintf("%d", s.ReissuedLeases)},
		{"duplicate trials", fmt.Sprintf("%d", s.DuplicateTrials)},
		{"stitched results", fmt.Sprintf("%d", s.StitchedResults)},
		{"throughput", fmt.Sprintf("%.1f trials/s", s.TrialsPerSec)},
	}}
	workers := obs.DashboardSection{Title: "workers"}
	for _, ws := range s.Workers {
		workers.Rows = append(workers.Rows, [2]string{
			ws.Worker,
			fmt.Sprintf("%d trials, %.1f/s, %d outstanding, seen %.1fs ago",
				ws.Trials, ws.TrialsPerSec, ws.OutstandingTrials, ws.LastSeenSec),
		})
	}
	var metrics strings.Builder
	_ = report.WriteBuildInfoText(&metrics, SchemaVersion)
	_ = WriteFleetMetricsText(&metrics, s)
	_ = co.fan.WriteText(&metrics)
	return obs.DashboardData{
		Title:    "llmfi fleet",
		Version:  version.Version,
		Sections: []obs.DashboardSection{fleet, workers},
		Metrics:  metrics.String(),
		Spans:    co.cfg.Recorder.Recent(32),
	}
}

func (co *Coordinator) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	done, total := co.Done()
	writeJSON(w, struct {
		Status   string `json:"status"`
		Done     int    `json:"done"`
		Total    int    `json:"total"`
		Finished bool   `json:"finished"`
	}{Status: "ok", Done: done, Total: total, Finished: done == total})
}

// decode parses a JSON request body, writing the error envelope (and
// returning false) on malformed input or a non-POST method.
func (co *Coordinator) decode(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		report.WriteAPIError(w, http.StatusMethodNotAllowed, "method_not_allowed", r.Method+" not allowed; use POST")
		return false
	}
	if err := report.DecodeJSON(r, v); err != nil {
		report.WriteAPIError(w, http.StatusBadRequest, "bad_request", err.Error())
		return false
	}
	return true
}

// checkSchema rejects requests speaking a different wire schema.
func (co *Coordinator) checkSchema(w http.ResponseWriter, schema int) bool {
	if schema != SchemaVersion {
		report.WriteAPIError(w, http.StatusConflict, "schema_mismatch",
			fmt.Sprintf("request speaks wire schema %d, coordinator %d", schema, SchemaVersion))
		return false
	}
	return true
}

// sortedWorkers returns the worker names in deterministic order.
func sortedWorkers(m map[string]*workerRec) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sortStrings(names)
	return names
}
