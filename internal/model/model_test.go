package model

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/numerics"
)

func testSpec(fam Family) Spec {
	cfg := Config{
		Name: "t", Vocab: 32, DModel: 16, NHeads: 2, NBlocks: 2,
		FFHidden: 24, MaxSeq: 24, Eps: 1e-5, DType: numerics.BF16,
		RopeTheta: 10000,
	}
	return Spec{Config: cfg, Family: fam, Seed: 9}
}

func TestBuildDeterministic(t *testing.T) {
	a := MustBuild(testSpec(QwenS))
	b := MustBuild(testSpec(QwenS))
	for i, v := range a.Embed.Data {
		if b.Embed.Data[i] != v {
			t.Fatal("same spec produced different embeddings")
		}
	}
	wa := a.Blocks[1].Wq.(*Dense)
	wb := b.Blocks[1].Wq.(*Dense)
	for i, v := range wa.T.Data {
		if wb.T.Data[i] != v {
			t.Fatal("same spec produced different weights")
		}
	}
}

func TestFamiliesDiffer(t *testing.T) {
	a := MustBuild(testSpec(QwenS))
	b := MustBuild(testSpec(FalconS))
	same := 0
	wa := a.Blocks[0].Wq.(*Dense).T
	wb := b.Blocks[0].Wq.(*Dense).T
	for i := range wa.Data {
		if wa.Data[i] == wb.Data[i] {
			same++
		}
	}
	if same > len(wa.Data)/10 {
		t.Fatal("families should have different weights")
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Vocab: 2, DModel: 16, NHeads: 2, NBlocks: 1, FFHidden: 8, MaxSeq: 8},
		{Vocab: 32, DModel: 15, NHeads: 2, NBlocks: 1, FFHidden: 8, MaxSeq: 8},
		{Vocab: 32, DModel: 6, NHeads: 2, NBlocks: 1, FFHidden: 8, MaxSeq: 8}, // head dim 3 is odd
		{Vocab: 32, DModel: 16, NHeads: 2, NBlocks: 0, FFHidden: 8, MaxSeq: 8},
		{Vocab: 32, DModel: 16, NHeads: 2, NBlocks: 1, FFHidden: 0, MaxSeq: 8},
		{Vocab: 32, DModel: 16, NHeads: 2, NBlocks: 1, FFHidden: 8, MaxSeq: 0},
		{Vocab: 32, DModel: 16, NHeads: 2, NBlocks: 1, FFHidden: 8, MaxSeq: 8, NumExperts: 4, TopK: 5},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d should be invalid", i)
		}
	}
}

func TestDecodeDeterministic(t *testing.T) {
	m := MustBuild(testSpec(LlamaS))
	run := func() []float32 {
		st := m.NewState()
		logits := st.Prefill([]int{1, 5, 6, 7})
		return append([]float32(nil), logits...)
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("decoding is not deterministic")
		}
	}
}

func TestForkContinuesIdentically(t *testing.T) {
	m := MustBuild(testSpec(QwenS))
	st := m.NewState()
	st.Prefill([]int{1, 5, 6})
	fork := st.Fork()
	a := append([]float32(nil), st.DecodeStep(7)...)
	b := append([]float32(nil), fork.DecodeStep(7)...)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("forked state diverges from original")
		}
	}
}

func TestCloneIsolatesWeights(t *testing.T) {
	m := MustBuild(testSpec(QwenS))
	c := m.Clone()
	w := c.Blocks[0].Wq.(*Dense)
	restore := w.FlipBits(0, 0, []int{14})
	orig := m.Blocks[0].Wq.(*Dense)
	if orig.T.At(0, 0) == w.T.At(0, 0) {
		t.Fatal("clone shares weight storage")
	}
	restore()
}

func TestHooksFireAndCanModify(t *testing.T) {
	m := MustBuild(testSpec(QwenS))
	fired := map[LayerKind]int{}
	m.AddHook(func(ref LayerRef, pos int, out []float32) {
		fired[ref.Kind]++
	})
	st := m.NewState()
	st.Prefill([]int{1, 5})
	m.ClearHooks()
	for _, k := range []LayerKind{KindQ, KindK, KindV, KindOut, KindGate, KindUp, KindDown, KindLMHead} {
		if fired[k] != 2*boolToInt(k != KindLMHead)+2*boolToInt(k == KindLMHead)*1 && fired[k] == 0 {
			t.Errorf("hook never fired for %v", k)
		}
	}
	// Per token: each block fires each kind once -> 2 tokens x 2 blocks = 4.
	if fired[KindQ] != 4 {
		t.Errorf("KindQ fired %d times, want 4", fired[KindQ])
	}
	if fired[KindLMHead] != 2 {
		t.Errorf("LMHead fired %d times, want 2", fired[KindLMHead])
	}
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

func TestHookModificationPropagates(t *testing.T) {
	m := MustBuild(testSpec(QwenS))
	clean := m.NewState().Prefill([]int{1, 5, 6})
	cleanCopy := append([]float32(nil), clean...)

	m.AddHook(func(ref LayerRef, pos int, out []float32) {
		if ref.Kind == KindUp && ref.Block == 0 && pos == 1 {
			out[0] = 1e30
		}
	})
	dirty := m.NewState().Prefill([]int{1, 5, 6})
	m.ClearHooks()
	diff := false
	for i := range dirty {
		if dirty[i] != cleanCopy[i] {
			diff = true
		}
	}
	if !diff {
		t.Fatal("hook modification did not propagate to logits")
	}
}

func TestLinearLayersEnumeration(t *testing.T) {
	m := MustBuild(testSpec(QwenS))
	layers := m.LinearLayers()
	// 2 blocks x (4 attention + 3 MLP) = 14.
	if len(layers) != 14 {
		t.Fatalf("got %d layers, want 14", len(layers))
	}
	for _, li := range layers {
		w, err := m.Layer(li.Ref)
		if err != nil {
			t.Fatalf("Layer(%v): %v", li.Ref, err)
		}
		if w != li.Weight {
			t.Fatalf("Layer(%v) returned different weight", li.Ref)
		}
	}
}

func TestMoEModel(t *testing.T) {
	spec := testSpec(LlamaS)
	spec.NumExperts = 4
	spec.TopK = 2
	m := MustBuild(spec)
	layers := m.LinearLayers()
	// 2 blocks x (4 attn + 1 router + 4 experts x 3) = 2 x 17 = 34.
	if len(layers) != 34 {
		t.Fatalf("MoE layers = %d, want 34", len(layers))
	}
	st := m.NewState()
	st.EnableExpertTrace()
	st.Prefill([]int{1, 5, 6})
	for b, tr := range st.ExpertTrace {
		if len(tr) != 3*spec.TopK {
			t.Fatalf("block %d expert trace has %d entries, want %d", b, len(tr), 3*spec.TopK)
		}
		for _, e := range tr {
			if e < 0 || e >= spec.NumExperts {
				t.Fatalf("invalid expert index %d", e)
			}
		}
	}
}

func TestSaveLoadRoundtrip(t *testing.T) {
	m := MustBuild(testSpec(FalconS))
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	l, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a := m.NewState().Prefill([]int{1, 6, 7, 8})
	b := l.NewState().Prefill([]int{1, 6, 7, 8})
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("loaded model computes different logits")
		}
	}
}

func TestSaveLoadMoE(t *testing.T) {
	spec := testSpec(LlamaS)
	spec.NumExperts = 4
	spec.TopK = 2
	m := MustBuild(spec)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	l, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a := m.NewState().Prefill([]int{1, 9})
	b := l.NewState().Prefill([]int{1, 9})
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("loaded MoE model differs")
		}
	}
}

func TestWithDTypeChangesBitBudget(t *testing.T) {
	m := MustBuild(testSpec(QwenS))
	fp16, err := WithDType(m, numerics.FP16)
	if err != nil {
		t.Fatal(err)
	}
	if fp16.Cfg.DType != numerics.FP16 {
		t.Fatal("dtype not set")
	}
	// A flipped exponent MSB in FP16 weights must stay <= 65504.
	w := fp16.Blocks[0].Wq
	restore := w.FlipBits(0, 0, []int{13})
	v := math.Abs(w.Get(0, 0))
	restore()
	if v > 65504 {
		t.Fatalf("FP16 weight after flip = %g, exceeds max finite", v)
	}
	// Original model is unchanged.
	if m.Cfg.DType != numerics.BF16 {
		t.Fatal("WithDType mutated the source model")
	}
}

func TestDenseFlipRestore(t *testing.T) {
	f := func(seed uint64, rRaw, cRaw, bitRaw uint8) bool {
		m := MustBuild(testSpec(QwenS))
		w := m.Blocks[0].Wo.(*Dense)
		r := int(rRaw) % w.In()
		c := int(cRaw) % w.Out()
		bit := int(bitRaw) % w.DT.Bits()
		before := w.T.At(r, c)
		restore := w.FlipBits(r, c, []int{bit})
		restore()
		return w.T.At(r, c) == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestContextOverflowPanics(t *testing.T) {
	m := MustBuild(testSpec(QwenS))
	st := m.NewState()
	defer func() {
		if recover() == nil {
			t.Error("expected panic on context overflow")
		}
	}()
	for i := 0; i < m.Cfg.MaxSeq+1; i++ {
		st.DecodeStep(5)
	}
}

func TestScaledConfig(t *testing.T) {
	base := StandardConfig("x", 100, numerics.BF16)
	small := ScaledConfig(base, 0.5, 2)
	if small.DModel%small.NHeads != 0 {
		t.Fatal("scaled d_model not divisible by heads")
	}
	if small.NBlocks != 2 {
		t.Fatal("blocks not applied")
	}
	if err := small.Validate(); err != nil {
		t.Fatal(err)
	}
	big := ScaledConfig(base, 2, 6)
	if big.NumParams() <= small.NumParams() {
		t.Fatal("scaling up should increase params")
	}
}

func TestNumParamsMatchesStorage(t *testing.T) {
	m := MustBuild(testSpec(QwenS))
	count := len(m.Embed.Data) + len(m.FinalNorm)
	count += m.LMHead.In() * m.LMHead.Out()
	for _, blk := range m.Blocks {
		count += len(blk.AttnNorm) + len(blk.MLPNorm)
		for _, w := range []Weight{blk.Wq, blk.Wk, blk.Wv, blk.Wo, blk.MLP.WGate, blk.MLP.WUp, blk.MLP.WDown} {
			count += w.In() * w.Out()
		}
	}
	if got := m.Cfg.NumParams(); got != count {
		t.Fatalf("NumParams = %d, actual storage %d", got, count)
	}
}
