package model

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// batchForwarder is implemented by weights that can push a whole block of
// activation rows through the layer at once. Implementations must keep
// every output row bit-identical to Forward on that row; Dense reuses the
// row-parallel matmul, whose per-row accumulation order matches MatVec.
// Weights without the interface (e.g. quantized storage) fall back to a
// per-row Forward loop, which is trivially identical.
type batchForwarder interface {
	ForwardBatch(out, x *tensor.Tensor, workers int)
}

// ForwardBatch computes out = x · W over all rows of x with up to workers
// goroutines.
func (d *Dense) ForwardBatch(out, x *tensor.Tensor, workers int) {
	tensor.MatMulP(out, x, d.T, workers)
}

// forwardRows runs every row of x through w into out, batched when the
// weight supports it.
func forwardRows(w Weight, out, x *tensor.Tensor, workers int) {
	if bf, ok := w.(batchForwarder); ok {
		bf.ForwardBatch(out, x, workers)
		return
	}
	for i := 0; i < x.Rows; i++ {
		w.Forward(out.Row(i), x.Row(i))
	}
}

// Prefill processes the whole prompt and returns the logits after the
// final prompt token (the distribution over the first generated token).
//
// Unlike the seed's per-token recurrence, each block runs its linear
// layers as one m×k matmul over every prompt position, which is where
// campaign prefill time goes. The result is bit-identical to the
// sequential loop: linears, norms, RoPE, and SwiGLU act on positions
// independently, causal attention at position p reads only KV rows <= p
// (all written earlier in the same block pass), and per-row float32
// accumulation order inside the matmul matches MatVec exactly.
//
// finishLinear — hook firing plus datatype rounding — still runs once per
// (layer, position), in increasing position order within each layer, so
// injected faults and mitigations observe the same vectors they would
// have seen token by token.
func (st *State) Prefill(prompt []int) []float32 {
	if len(prompt) == 0 {
		panic("model: empty prompt")
	}
	if st.m.seqPrefill {
		return st.prefillSequential(prompt)
	}
	if len(prompt) == 1 {
		return st.DecodeStep(prompt[0])
	}
	m := st.m
	cfg := &m.Cfg
	n := len(prompt)
	if st.Pos+n > cfg.MaxSeq {
		panic(fmt.Sprintf("model: context overflow (max %d)", cfg.MaxSeq))
	}
	base := st.Pos
	d := cfg.DModel
	threads := m.matmulThreads()

	X := tensor.New(n, d)  // residual stream
	H := tensor.New(n, d)  // normed input / attn-out projection
	Q := tensor.New(n, d)  // query rows
	Kb := tensor.New(n, d) // key rows (pre-cache)
	Vb := tensor.New(n, d) // value rows (pre-cache)
	A := tensor.New(n, d)  // concatenated attention head outputs
	D := tensor.New(n, d)  // MLP / MoE block output
	FF1 := tensor.New(n, cfg.FFHidden)
	FF2 := tensor.New(n, cfg.FFHidden)
	FFA := tensor.New(n, cfg.FFHidden)
	var R *tensor.Tensor
	if cfg.IsMoE() {
		R = tensor.New(n, cfg.NumExperts)
	}

	for i, tok := range prompt {
		if tok < 0 || tok >= cfg.Vocab {
			tok = 0
		}
		copy(X.Row(i), m.Embed.Row(tok))
	}

	// finishRows applies finishLinear per position, preserving the
	// per-position hook order of the sequential path within each layer.
	// in is the input tensor the batched matmul consumed, row-aligned
	// with the output — the checker verifies each position against the
	// exact input row its GEMM used.
	finishRows := func(ref LayerRef, w Weight, in, out *tensor.Tensor) {
		for i := 0; i < n; i++ {
			m.finishLinear(ref, base+i, w, in.Row(i), out.Row(i))
		}
	}
	normRows := func(t *tensor.Tensor, gain []float32) {
		for i := 0; i < n; i++ {
			tensor.RMSNormRow(t.Row(i), gain, cfg.Eps)
		}
	}

	for bi, blk := range m.Blocks {
		// --- attention sub-block ---
		H.CopyFrom(X)
		normRows(H, blk.AttnNorm)

		forwardRows(blk.Wq, Q, H, threads)
		finishRows(LayerRef{bi, KindQ, -1}, blk.Wq, H, Q)
		forwardRows(blk.Wk, Kb, H, threads)
		finishRows(LayerRef{bi, KindK, -1}, blk.Wk, H, Kb)
		forwardRows(blk.Wv, Vb, H, threads)
		finishRows(LayerRef{bi, KindV, -1}, blk.Wv, H, Vb)

		for i := 0; i < n; i++ {
			m.applyRoPE(Q.Row(i), base+i)
			m.applyRoPE(Kb.Row(i), base+i)
			copy(st.K[bi].Row(base+i), Kb.Row(i))
			copy(st.V[bi].Row(base+i), Vb.Row(i))
		}
		// Causal attention per position: position p reads cache rows
		// 0..p, all of which this pass has already written.
		for i := 0; i < n; i++ {
			m.attendAt(st, bi, base+i, Q.Row(i), A.Row(i))
		}

		forwardRows(blk.Wo, H, A, threads)
		finishRows(LayerRef{bi, KindOut, -1}, blk.Wo, A, H)
		X.AddInPlace(H)

		// --- MLP / MoE sub-block ---
		H.CopyFrom(X)
		normRows(H, blk.MLPNorm)

		if blk.Router != nil {
			forwardRows(blk.Router, R, H, threads)
			finishRows(LayerRef{bi, KindRouter, -1}, blk.Router, H, R)
			for i := 0; i < n; i++ {
				m.moeMix(m.rc(), st, blk, bi, base+i, R.Row(i), H.Row(i), D.Row(i))
			}
		} else {
			forwardRows(blk.MLP.WGate, FF1, H, threads)
			finishRows(LayerRef{bi, KindGate, -1}, blk.MLP.WGate, H, FF1)
			forwardRows(blk.MLP.WUp, FF2, H, threads)
			finishRows(LayerRef{bi, KindUp, -1}, blk.MLP.WUp, H, FF2)
			for i, g := range FF1.Data {
				FFA.Data[i] = float32(float64(g)/(1+math.Exp(-float64(g)))) * FF2.Data[i]
			}
			forwardRows(blk.MLP.WDown, D, FFA, threads)
			finishRows(LayerRef{bi, KindDown, -1}, blk.MLP.WDown, FFA, D)
		}
		X.AddInPlace(D)
	}

	normRows(X, m.FinalNorm)
	if len(m.hooks) > 0 {
		// Hooks observe (and may mutate) the LM-head output of every
		// position in the sequential path; keep that visible behaviour.
		L := tensor.New(n, cfg.Vocab)
		forwardRows(m.LMHead, L, X, threads)
		finishRows(LayerRef{-1, KindLMHead, -1}, m.LMHead, X, L)
		copy(st.logits, L.Row(n-1))
	} else {
		// Without hooks the intermediate logits are unobservable and
		// immediately overwritten — compute only the final row.
		m.LMHead.Forward(st.logits, X.Row(n-1))
		m.finishLinear(LayerRef{-1, KindLMHead, -1}, base+n-1, m.LMHead, X.Row(n-1), st.logits)
	}

	st.Pos += n
	return st.logits
}
