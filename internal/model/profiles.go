package model

import (
	"fmt"
	"math"

	"repro/internal/numerics"
	"repro/internal/prng"
	"repro/internal/tensor"
)

// Family identifies a surrogate model family. The three families differ
// in their weight/neuron value distributions, mirroring Figure 13's
// finding that Qwen2.5 / Llama3.1 / Falcon3 have visibly different
// down_proj distributions (narrow / medium / wide), which Observation #3
// links to their differing resilience.
type Family int

const (
	// QwenS uses a narrow Gaussian weight distribution.
	QwenS Family = iota
	// LlamaS uses a medium-width Laplace (heavier-tailed) distribution.
	LlamaS
	// FalconS uses a wide uniform distribution (bounded tails).
	FalconS
)

// String names the family.
func (f Family) String() string {
	switch f {
	case QwenS:
		return "QwenS"
	case LlamaS:
		return "LlamaS"
	case FalconS:
		return "FalconS"
	default:
		return fmt.Sprintf("Family(%d)", int(f))
	}
}

// Families lists all surrogate families.
var Families = []Family{QwenS, LlamaS, FalconS}

// scale returns the family's weight-scale multiplier relative to the
// 1/sqrt(d) baseline.
func (f Family) scale() float64 {
	switch f {
	case QwenS:
		return 0.75
	case FalconS:
		return 1.4
	default:
		return 1.0
	}
}

// sample draws one weight from the family's distribution with standard
// deviation sigma.
func (f Family) sample(src *prng.Source, sigma float64) float64 {
	switch f {
	case QwenS:
		return src.NormFloat64() * sigma
	case LlamaS:
		// Laplace with the same variance: b = sigma/sqrt(2).
		u := src.Float64() - 0.5
		b := sigma / math.Sqrt2
		if u < 0 {
			return b * math.Log(1+2*u)
		}
		return -b * math.Log(1-2*u)
	case FalconS:
		// Uniform with the same variance: half-width = sigma*sqrt(3).
		w := sigma * math.Sqrt(3)
		return (2*src.Float64() - 1) * w
	default:
		return src.NormFloat64() * sigma
	}
}

// Spec bundles everything needed to build a model with deterministic
// random weights.
type Spec struct {
	Config
	Family Family
	Seed   uint64
}

// Build constructs a model from spec. The same spec always yields
// bit-identical weights.
func Build(spec Spec) (*Model, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	cfg := spec.Config
	src := prng.New(spec.Seed ^ 0xabcdef1234567890)
	m := &Model{Cfg: cfg}

	d := cfg.DModel
	sigmaIn := spec.Family.scale() / math.Sqrt(float64(d))
	sigmaFF := spec.Family.scale() / math.Sqrt(float64(cfg.FFHidden))

	m.Embed = randTensor(src.Split(0), spec.Family, cfg.Vocab, d, 0.7*sigmaIn)
	m.FinalNorm = ones(d)
	m.LMHead = NewDense(randTensor(src.Split(1), spec.Family, d, cfg.Vocab, sigmaIn), cfg.DType)

	m.Blocks = make([]*Block, cfg.NBlocks)
	for b := range m.Blocks {
		bs := src.Split(uint64(100 + b))
		blk := &Block{
			AttnNorm: ones(d),
			MLPNorm:  ones(d),
			Wq:       NewDense(randTensor(bs.Split(0), spec.Family, d, d, sigmaIn), cfg.DType),
			Wk:       NewDense(randTensor(bs.Split(1), spec.Family, d, d, sigmaIn), cfg.DType),
			Wv:       NewDense(randTensor(bs.Split(2), spec.Family, d, d, sigmaIn), cfg.DType),
			Wo:       NewDense(randTensor(bs.Split(3), spec.Family, d, d, sigmaIn), cfg.DType),
		}
		if cfg.IsMoE() {
			blk.Router = NewDense(randTensor(bs.Split(4), spec.Family, d, cfg.NumExperts, sigmaIn), cfg.DType)
			blk.Experts = make([]*MLPWeights, cfg.NumExperts)
			for e := range blk.Experts {
				es := bs.Split(uint64(10 + e))
				blk.Experts[e] = newMLP(es, spec.Family, cfg, sigmaIn, sigmaFF)
			}
		} else {
			blk.MLP = newMLP(bs.Split(5), spec.Family, cfg, sigmaIn, sigmaFF)
		}
		m.Blocks[b] = blk
	}
	m.initRope()
	return m, nil
}

// MustBuild is Build that panics on error, for tests and examples with
// known-good specs.
func MustBuild(spec Spec) *Model {
	m, err := Build(spec)
	if err != nil {
		panic(err)
	}
	return m
}

func newMLP(src *prng.Source, fam Family, cfg Config, sigmaIn, sigmaFF float64) *MLPWeights {
	return &MLPWeights{
		WGate: NewDense(randTensor(src.Split(0), fam, cfg.DModel, cfg.FFHidden, sigmaIn), cfg.DType),
		WUp:   NewDense(randTensor(src.Split(1), fam, cfg.DModel, cfg.FFHidden, sigmaIn), cfg.DType),
		WDown: NewDense(randTensor(src.Split(2), fam, cfg.FFHidden, cfg.DModel, sigmaFF), cfg.DType),
	}
}

func randTensor(src *prng.Source, fam Family, rows, cols int, sigma float64) *tensor.Tensor {
	t := tensor.New(rows, cols)
	for i := range t.Data {
		t.Data[i] = float32(fam.sample(src, sigma))
	}
	return t
}

func ones(n int) []float32 {
	v := make([]float32, n)
	for i := range v {
		v[i] = 1
	}
	return v
}

// StandardConfig returns the default benchmark-scale architecture used by
// the characterization campaigns: a small but structurally faithful
// Llama-style decoder.
func StandardConfig(name string, vocab int, dt numerics.DType) Config {
	return Config{
		Name:      name,
		Vocab:     vocab,
		DModel:    64,
		NHeads:    4,
		NBlocks:   4,
		FFHidden:  176,
		MaxSeq:    160,
		Eps:       1e-5,
		DType:     dt,
		RopeTheta: 10000,
	}
}

// MoEConfig converts cfg into its top-2-of-8 Mixture-of-Experts
// counterpart (the Llama-3.2-8X3B-MOE setup of §4.2.3).
func MoEConfig(cfg Config) Config {
	cfg.Name = cfg.Name + "-moe"
	cfg.NumExperts = 8
	cfg.TopK = 2
	return cfg
}

// ScaledConfig returns cfg resized by the given width/depth multipliers,
// used by the model-scale study (Figure 16).
func ScaledConfig(cfg Config, widthMul float64, blocks int) Config {
	d := int(float64(cfg.DModel)*widthMul) / cfg.NHeads * cfg.NHeads
	if d < cfg.NHeads*2 {
		d = cfg.NHeads * 2
	}
	cfg.DModel = d
	cfg.FFHidden = int(float64(cfg.FFHidden) * widthMul)
	if cfg.FFHidden < 8 {
		cfg.FFHidden = 8
	}
	cfg.NBlocks = blocks
	return cfg
}
