package model

import "testing"

// TestAttnHookSerialBatchParity pins the attention-activation hook slot
// across both decode paths: a mutating hook installed via AddAttnHook on
// a serial DecodeStep run must produce bit-identical logits to the same
// hook dispatched through DecodeRow.AttnHooks on a batch row — and the
// sibling batch row, running hook-free, must stay bit-identical to a
// clean serial run.
func TestAttnHookSerialBatchParity(t *testing.T) {
	spec := testSpec(QwenS)
	m := MustBuild(spec)
	vocab := spec.Config.Vocab
	prompts := [][]int{promptOf(4, vocab), promptOf(6, vocab)}
	toks := []int{3, 21, 8}

	// The fault: scale one neuron of block 1's concatenated head outputs
	// at one position.
	target := len(prompts[0]) + 1
	mutate := func(ref LayerRef, pos int, out []float32) {
		if ref.Block == 1 && pos == target {
			out[2] *= 4
		}
	}

	runSerial := func(prompt []int, hook Hook) [][]float32 {
		st := m.NewState()
		st.Prefill(prompt)
		if hook != nil {
			m.AddAttnHook(hook)
			defer m.ClearAttnHooks()
		}
		return serialDecode(st, toks)
	}
	wantFaulty := runSerial(prompts[0], mutate)
	wantClean := runSerial(prompts[1], nil)

	// Capture hook on the faulty row: must observe only that row's
	// positions, and see KindAttnAct refs.
	var seen []hookKey
	capture := func(ref LayerRef, pos int, out []float32) {
		seen = append(seen, hookKey{ref, pos})
	}

	sts := make([]*State, len(prompts))
	rows := make([]*DecodeRow, len(prompts))
	for i, p := range prompts {
		sts[i] = m.NewState()
		sts[i].Prefill(p)
		rows[i] = &DecodeRow{St: sts[i], Logits: make([]float32, vocab)}
	}
	rows[0].AttnHooks = []Hook{mutate, capture}

	b := m.NewBatch(len(rows))
	for step := range toks {
		for _, row := range rows {
			row.Tok = toks[step]
		}
		b.Step(rows)
		for j, v := range rows[0].Logits {
			if v != wantFaulty[step][j] {
				t.Fatalf("faulty row step %d logit %d: batch %g serial %g", step, j, v, wantFaulty[step][j])
			}
		}
		for j, v := range rows[1].Logits {
			if v != wantClean[step][j] {
				t.Fatalf("clean row step %d logit %d: batch %g serial %g", step, j, v, wantClean[step][j])
			}
		}
	}

	wantCalls := len(toks) * spec.Config.NBlocks
	if len(seen) != wantCalls {
		t.Fatalf("capture hook saw %d calls, want %d", len(seen), wantCalls)
	}
	for _, k := range seen {
		if k.ref.Kind != KindAttnAct {
			t.Fatalf("attn hook fired with kind %v", k.ref.Kind)
		}
		if k.pos < len(prompts[0]) || k.pos >= len(prompts[0])+len(toks) {
			t.Fatalf("attn hook saw sibling position %d", k.pos)
		}
	}
}

// TestAttnHookIgnoredByBatch pins that model-level attention hooks do NOT
// fire during Batch.Step — batched trials scope injection per row, so a
// model-wide hook there would corrupt every row.
func TestAttnHookIgnoredByBatch(t *testing.T) {
	spec := testSpec(QwenS)
	m := MustBuild(spec)
	vocab := spec.Config.Vocab
	fired := 0
	m.AddAttnHook(func(ref LayerRef, pos int, out []float32) { fired++ })
	defer m.ClearAttnHooks()

	st := m.NewState()
	st.Prefill(promptOf(4, vocab))
	row := &DecodeRow{St: st, Tok: 3, Logits: make([]float32, vocab)}
	m.NewBatch(1).Step([]*DecodeRow{row})
	if fired != 0 {
		t.Fatalf("model-level attn hook fired %d times during Batch.Step", fired)
	}
}
