package model

import (
	"fmt"
	"runtime"

	"repro/internal/numerics"
	"repro/internal/tensor"
)

// Weight is a linear layer's parameter matrix, abstracted so that dense
// floating-point storage and quantized integer storage (internal/quant)
// are interchangeable. The fault injector needs only this interface:
// memory faults flip bits of the *storage* representation at (row, col)
// and must be restorable (flip-back after each trial, §3.2).
type Weight interface {
	// In returns the input dimension (rows of the matrix).
	In() int
	// Out returns the output dimension (columns).
	Out() int
	// Forward computes out = x · W for a single row vector x.
	Forward(out, x []float32)
	// Get returns the effective (dequantized) value at (r, c).
	Get(r, c int) float64
	// FlipBits flips the listed storage-bit positions of the element at
	// (r, c) and returns a function restoring the original storage.
	FlipBits(r, c int, bits []int) (restore func())
	// StorageBits returns the number of addressable bits per element.
	StorageBits() int
	// CloneWeight returns an independent deep copy. Campaign workers
	// clone the model so concurrent memory-fault trials cannot observe
	// each other's flipped weights.
	CloneWeight() Weight
}

// Dense is a Weight backed by a float32 tensor whose elements logically
// live in DT: they are pre-rounded to DT at construction, and FlipBits
// operates on the DT bit pattern (so a BF16 model's weights can reach
// ±3e38 after an exponent-MSB flip while an FP16 model's cannot exceed
// ±65504 — the mechanism of Observation #11).
type Dense struct {
	T  *tensor.Tensor // In x Out
	DT numerics.DType
}

// NewDense wraps t, rounding every element to dt.
func NewDense(t *tensor.Tensor, dt numerics.DType) *Dense {
	d := &Dense{T: t, DT: dt}
	if dt != numerics.FP32 {
		for i, v := range t.Data {
			t.Data[i] = float32(numerics.Round(dt, float64(v)))
		}
	}
	return d
}

// In returns the input dimension.
func (d *Dense) In() int { return d.T.Rows }

// Out returns the output dimension.
func (d *Dense) Out() int { return d.T.Cols }

// Forward computes out = x · W.
func (d *Dense) Forward(out, x []float32) { tensor.MatVec(out, x, d.T) }

// Get returns the element at (r, c).
func (d *Dense) Get(r, c int) float64 { return float64(d.T.At(r, c)) }

// StorageBits returns the bit width of the logical datatype.
func (d *Dense) StorageBits() int { return d.DT.Bits() }

// FlipBits flips the given bit positions of element (r, c) in the DT
// representation and returns a restorer.
func (d *Dense) FlipBits(r, c int, bits []int) func() {
	old := d.T.At(r, c)
	d.T.Set(r, c, float32(numerics.FlipBits(d.DT, float64(old), bits...)))
	return func() { d.T.Set(r, c, old) }
}

// CloneWeight returns a deep copy.
func (d *Dense) CloneWeight() Weight {
	return &Dense{T: d.T.Clone(), DT: d.DT}
}

// MLPWeights holds one SwiGLU feed-forward network: down(silu(gate(x)) *
// up(x)). For MoE models each expert owns one MLPWeights.
type MLPWeights struct {
	WGate, WUp, WDown Weight
}

// Block is one transformer block's parameters.
type Block struct {
	AttnNorm []float32 // RMSNorm gain before attention
	MLPNorm  []float32 // RMSNorm gain before MLP / MoE

	Wq, Wk, Wv, Wo Weight

	// Dense path (NumExperts == 0):
	MLP *MLPWeights

	// MoE path (NumExperts > 0):
	Router  Weight // d_model x NumExperts gate layer
	Experts []*MLPWeights
}

// Model is a complete decoder-only transformer. The parameter tensors are
// treated as read-only during inference except by the memory-fault
// injector, which requires exclusive access for flip/restore (campaigns
// serialize memory-fault trials per model instance, as the paper does).
type Model struct {
	Cfg Config

	Embed     *tensor.Tensor // Vocab x DModel
	Blocks    []*Block
	FinalNorm []float32
	LMHead    Weight // DModel x Vocab

	// ropeCos/ropeSin cache cos/sin tables per position and rotary pair.
	ropeCos, ropeSin [][]float32

	hooks []Hook

	// attnHooks observe the post-attention activation row per block per
	// step (see AddAttnHook) — the injection point for transient
	// attention-path faults.
	attnHooks []Hook

	// threads bounds the goroutines batched prefill may use for its
	// matmuls (0 = GOMAXPROCS). Campaigns set it per worker clone so the
	// worker pool cannot oversubscribe the machine.
	threads int

	// sharedWeights marks a CloneShared copy: parameter storage is shared
	// with the parent and must be privatized (copy-on-write) before any
	// in-place mutation. privatized tracks which layers this clone owns.
	sharedWeights bool
	privatized    map[LayerRef]bool

	// seqPrefill pins State.Prefill to the seed per-token reference loop;
	// golden tests and before/after benchmarks flip it.
	seqPrefill bool

	// checker, when non-nil, verifies every linear-layer output after the
	// forward hooks ran and before requantization (internal/abft). Like
	// hooks, it is not copied by Clone/CloneShared: each campaign worker
	// arms its own.
	checker LinearChecker
}

// SetThreads bounds the worker goroutines batched prefill may use for its
// matmuls (0 restores the GOMAXPROCS default). A campaign running W
// workers sets each worker clone to GOMAXPROCS/W, min 1.
func (m *Model) SetThreads(n int) { m.threads = n }

// matmulThreads resolves the effective matmul worker count.
func (m *Model) matmulThreads() int {
	if m.threads > 0 {
		return m.threads
	}
	return runtime.GOMAXPROCS(0)
}

// SetSequentialPrefill routes State.Prefill through the seed per-token
// loop instead of the batched pass. The two are bit-identical (enforced
// by golden tests); this exists so tests and benchmarks can compare
// against the reference path.
func (m *Model) SetSequentialPrefill(on bool) { m.seqPrefill = on }

// SharesWeights reports whether this model is a copy-on-write clone whose
// parameter storage is shared with its parent.
func (m *Model) SharesWeights() bool { return m.sharedWeights }

// Hook observes (and may modify in place) the output vector of a linear
// layer during a decode step. step is the absolute token position being
// computed. This is the software analogue of PyTorch forward hooks used
// for computational fault injection (§3.2).
type Hook func(ref LayerRef, step int, out []float32)

// AddHook registers h; hooks run in registration order.
func (m *Model) AddHook(h Hook) { m.hooks = append(m.hooks, h) }

// PopHook removes the most recently added hook, leaving earlier hooks
// installed. The tracing layer uses it to unwind a baseline-capture or
// probe hook without disturbing a campaign's ExtraHook.
func (m *Model) PopHook() {
	if n := len(m.hooks); n > 0 {
		m.hooks = m.hooks[:n-1]
	}
}

// AddAttnHook registers h on the attention-activation surface: it fires
// once per block per decode step on the post-attention row (ref kind
// KindAttnAct), after the head outputs are mixed and before the out_proj
// GEMM consumes them. This is a separate slot from the linear-layer
// hooks so activation-surface injection never perturbs what the linear
// hooks (probes, ABFT baselines) observe; with no attention hooks
// registered the decode path is bit-identical by construction — nothing
// runs.
func (m *Model) AddAttnHook(h Hook) { m.attnHooks = append(m.attnHooks, h) }

// ClearAttnHooks removes all attention-activation hooks.
func (m *Model) ClearAttnHooks() { m.attnHooks = nil }

// runAttnHooks fires the attention-surface hooks on one activation row.
func (m *Model) runAttnHooks(ref LayerRef, pos int, out []float32) {
	for _, h := range m.attnHooks {
		h(ref, pos, out)
	}
}

// LinearChecker verifies — and under a correcting policy may repair in
// place — the output vector of a linear layer. CheckLinear runs after the
// forward hooks (so it observes injected faults exactly as a deployed
// detector would) and before requantization to the model datatype. in is
// the input activation row the layer consumed; implementations must not
// retain in or out past the call. Unlike Hook this carries the layer's
// weight and input, which checksum-based detection (internal/abft) needs
// to form the expected output checksum and to recompute a flagged row.
type LinearChecker interface {
	CheckLinear(ref LayerRef, pos int, w Weight, in, out []float32)
}

// SetChecker installs (nil removes) the model's linear checker. Exactly
// one checker may be active; the campaign engine arms one per trial on
// each worker's clone.
func (m *Model) SetChecker(c LinearChecker) { m.checker = c }

// ClearHooks removes all hooks.
func (m *Model) ClearHooks() { m.hooks = nil }

// runHooks invokes registered hooks for a layer output.
func (m *Model) runHooks(ref LayerRef, step int, out []float32) {
	for _, h := range m.hooks {
		h(ref, step, out)
	}
}

// Clone returns a deep copy of the model sharing no mutable state with
// the original. Rotary tables (immutable) are shared.
func (m *Model) Clone() *Model {
	nm := &Model{
		Cfg:        m.Cfg,
		Embed:      m.Embed.Clone(),
		FinalNorm:  append([]float32(nil), m.FinalNorm...),
		LMHead:     m.LMHead.CloneWeight(),
		ropeCos:    m.ropeCos,
		ropeSin:    m.ropeSin,
		threads:    m.threads,
		seqPrefill: m.seqPrefill,
	}
	cloneMLP := func(w *MLPWeights) *MLPWeights {
		if w == nil {
			return nil
		}
		return &MLPWeights{
			WGate: w.WGate.CloneWeight(),
			WUp:   w.WUp.CloneWeight(),
			WDown: w.WDown.CloneWeight(),
		}
	}
	for _, blk := range m.Blocks {
		nb := &Block{
			AttnNorm: append([]float32(nil), blk.AttnNorm...),
			MLPNorm:  append([]float32(nil), blk.MLPNorm...),
			Wq:       blk.Wq.CloneWeight(),
			Wk:       blk.Wk.CloneWeight(),
			Wv:       blk.Wv.CloneWeight(),
			Wo:       blk.Wo.CloneWeight(),
			MLP:      cloneMLP(blk.MLP),
		}
		if blk.Router != nil {
			nb.Router = blk.Router.CloneWeight()
			for _, ex := range blk.Experts {
				nb.Experts = append(nb.Experts, cloneMLP(ex))
			}
		}
		nm.Blocks = append(nm.Blocks, nb)
	}
	return nm
}

// CloneShared returns a copy-on-write clone: block and MLP structure is
// duplicated so weight slots can be swapped per clone, but every weight,
// the embedding table, and the norm gains are SHARED with the receiver.
// Hooks are not copied — each clone arms its own faults and mitigations.
//
// Sharing is sound because inference treats parameters as read-only:
// computational faults and mitigations mutate activations through hooks,
// never weights. The one writer is the memory-fault injector, and
// LayerForWrite privatizes the single targeted weight before it flips —
// collapsing per-worker campaign memory from O(model) to O(KV cache).
func (m *Model) CloneShared() *Model {
	nm := &Model{
		Cfg:           m.Cfg,
		Embed:         m.Embed,
		FinalNorm:     m.FinalNorm,
		LMHead:        m.LMHead,
		ropeCos:       m.ropeCos,
		ropeSin:       m.ropeSin,
		threads:       m.threads,
		seqPrefill:    m.seqPrefill,
		sharedWeights: true,
	}
	shareMLP := func(w *MLPWeights) *MLPWeights {
		if w == nil {
			return nil
		}
		cp := *w
		return &cp
	}
	for _, blk := range m.Blocks {
		nb := &Block{
			AttnNorm: blk.AttnNorm,
			MLPNorm:  blk.MLPNorm,
			Wq:       blk.Wq,
			Wk:       blk.Wk,
			Wv:       blk.Wv,
			Wo:       blk.Wo,
			MLP:      shareMLP(blk.MLP),
		}
		if blk.Router != nil {
			nb.Router = blk.Router
			for _, ex := range blk.Experts {
				nb.Experts = append(nb.Experts, shareMLP(ex))
			}
		}
		nm.Blocks = append(nm.Blocks, nb)
	}
	return nm
}

// LayerInfo pairs a layer address with its weight for site enumeration.
type LayerInfo struct {
	Ref    LayerRef
	Weight Weight
}

// LinearLayers enumerates every linear layer inside the transformer
// blocks (the paper's injection sites: ~94% of compute). The LM head is
// excluded, matching §3.2. Order is deterministic.
func (m *Model) LinearLayers() []LayerInfo {
	var out []LayerInfo
	for b, blk := range m.Blocks {
		out = append(out,
			LayerInfo{LayerRef{b, KindQ, -1}, blk.Wq},
			LayerInfo{LayerRef{b, KindK, -1}, blk.Wk},
			LayerInfo{LayerRef{b, KindV, -1}, blk.Wv},
			LayerInfo{LayerRef{b, KindOut, -1}, blk.Wo},
		)
		if blk.MLP != nil {
			out = append(out,
				LayerInfo{LayerRef{b, KindGate, -1}, blk.MLP.WGate},
				LayerInfo{LayerRef{b, KindUp, -1}, blk.MLP.WUp},
				LayerInfo{LayerRef{b, KindDown, -1}, blk.MLP.WDown},
			)
		}
		if blk.Router != nil {
			out = append(out, LayerInfo{LayerRef{b, KindRouter, -1}, blk.Router})
			for e, ex := range blk.Experts {
				out = append(out,
					LayerInfo{LayerRef{b, KindGate, e}, ex.WGate},
					LayerInfo{LayerRef{b, KindUp, e}, ex.WUp},
					LayerInfo{LayerRef{b, KindDown, e}, ex.WDown},
				)
			}
		}
	}
	return out
}

// Layer returns the weight addressed by ref (including KindLMHead), or an
// error if the address does not exist in this model.
func (m *Model) Layer(ref LayerRef) (Weight, error) {
	slot, err := m.layerSlot(ref)
	if err != nil {
		return nil, err
	}
	return *slot, nil
}

// LayerForWrite returns the weight addressed by ref for in-place
// mutation. On a CloneShared model the weight is first privatized — the
// copy-on-write step — so flips never reach the parent or sibling clones;
// repeated writes to the same layer reuse the private copy.
func (m *Model) LayerForWrite(ref LayerRef) (Weight, error) {
	slot, err := m.layerSlot(ref)
	if err != nil {
		return nil, err
	}
	if m.sharedWeights && !m.privatized[ref] {
		*slot = (*slot).CloneWeight()
		if m.privatized == nil {
			m.privatized = map[LayerRef]bool{}
		}
		m.privatized[ref] = true
	}
	return *slot, nil
}

// NormForWrite returns the RMSNorm gain vector addressed by ref —
// KindAttnNorm or KindMLPNorm with a block index, or KindFinalNorm with
// Block = -1 — for in-place mutation. On a CloneShared model the vector
// is first privatized, exactly like LayerForWrite: norm gains are shared
// by reference across clones, so a flip through the shared slice would
// corrupt every sibling's inference. Repeated writes reuse the private
// copy.
func (m *Model) NormForWrite(ref LayerRef) ([]float32, error) {
	slot, err := m.normSlot(ref)
	if err != nil {
		return nil, err
	}
	if m.sharedWeights && !m.privatized[ref] {
		*slot = append([]float32(nil), *slot...)
		if m.privatized == nil {
			m.privatized = map[LayerRef]bool{}
		}
		m.privatized[ref] = true
	}
	return *slot, nil
}

// normSlot returns a pointer to the gain-vector field addressed by ref.
func (m *Model) normSlot(ref LayerRef) (*[]float32, error) {
	if ref.Kind == KindFinalNorm {
		return &m.FinalNorm, nil
	}
	if ref.Block < 0 || ref.Block >= len(m.Blocks) {
		return nil, fmt.Errorf("model: block %d out of range", ref.Block)
	}
	switch ref.Kind {
	case KindAttnNorm:
		return &m.Blocks[ref.Block].AttnNorm, nil
	case KindMLPNorm:
		return &m.Blocks[ref.Block].MLPNorm, nil
	}
	return nil, fmt.Errorf("model: %v is not a norm gain", ref)
}

// embedRef is the privatization key for the shared embedding table.
var embedRef = LayerRef{-1, KindEmbed, -1}

// EmbedForWrite returns the token embedding table for in-place mutation,
// privatizing it on a CloneShared model first (the table is O(Vocab ×
// DModel) — by far the largest privatization — but only embedding-fault
// trials pay it).
func (m *Model) EmbedForWrite() *tensor.Tensor {
	if m.sharedWeights && !m.privatized[embedRef] {
		m.Embed = m.Embed.Clone()
		if m.privatized == nil {
			m.privatized = map[LayerRef]bool{}
		}
		m.privatized[embedRef] = true
	}
	return m.Embed
}

// layerSlot returns a pointer to the Weight field addressed by ref.
func (m *Model) layerSlot(ref LayerRef) (*Weight, error) {
	if ref.Kind == KindLMHead {
		return &m.LMHead, nil
	}
	if ref.Block < 0 || ref.Block >= len(m.Blocks) {
		return nil, fmt.Errorf("model: block %d out of range", ref.Block)
	}
	blk := m.Blocks[ref.Block]
	switch ref.Kind {
	case KindQ:
		return &blk.Wq, nil
	case KindK:
		return &blk.Wk, nil
	case KindV:
		return &blk.Wv, nil
	case KindOut:
		return &blk.Wo, nil
	case KindRouter:
		if blk.Router == nil {
			return nil, fmt.Errorf("model: %v has no router (dense model)", ref)
		}
		return &blk.Router, nil
	case KindGate, KindUp, KindDown:
		mlp := blk.MLP
		if ref.Expert >= 0 {
			if blk.Experts == nil || ref.Expert >= len(blk.Experts) {
				return nil, fmt.Errorf("model: %v expert out of range", ref)
			}
			mlp = blk.Experts[ref.Expert]
		}
		if mlp == nil {
			return nil, fmt.Errorf("model: %v has no MLP weights", ref)
		}
		switch ref.Kind {
		case KindGate:
			return &mlp.WGate, nil
		case KindUp:
			return &mlp.WUp, nil
		default:
			return &mlp.WDown, nil
		}
	default:
		return nil, fmt.Errorf("model: unknown layer kind %v", ref.Kind)
	}
}
