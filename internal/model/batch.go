package model

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// DecodeRow is one in-flight trial's slot in a decode batch: its private
// KV-cache state over the shared weights, the token to decode this step,
// the trial's own observation context (fault hook, extra hooks, probe,
// ABFT checker), and the buffer its next-token logits are copied into.
type DecodeRow struct {
	// St is the trial's inference state. It must be bound to the same
	// model the Batch was created from (ForkFor onto the worker clone).
	St *State
	// Tok is the token to decode this step.
	Tok int
	// Hooks fire on every linear-layer output of this row only, in
	// order — the per-row analogue of Model.AddHook. The model's own
	// registered hooks do NOT fire during Batch.Step; a scheduler that
	// wants them must place them in each row's slice.
	Hooks []Hook
	// Checker, when non-nil, verifies this row's linear outputs — the
	// per-row analogue of Model.SetChecker.
	Checker LinearChecker
	// AttnHooks fire on this row's post-attention activation (kind
	// KindAttnAct) each block, after the head mix and before out_proj —
	// the per-row analogue of Model.AddAttnHook. Empty slices cost
	// nothing: the batched step is bit-identical with no hooks present.
	AttnHooks []Hook
	// Logits receives the row's next-token logits (len Vocab). The row
	// owns the buffer; it is overwritten each step.
	Logits []float32
}

func (r *DecodeRow) rc() rowCtx { return rowCtx{hooks: r.Hooks, checker: r.Checker} }

// rowsForwarder is implemented by weights that can push the leading rows
// of an activation tensor through the layer at once, leaving the rest of
// out untouched. Like batchForwarder, every computed row must be
// bit-identical to Forward on that row.
type rowsForwarder interface {
	ForwardRows(out, x *tensor.Tensor, rows, workers int)
}

// ForwardRows computes the first rows rows of out = x · W.
func (d *Dense) ForwardRows(out, x *tensor.Tensor, rows, workers int) {
	tensor.MatMulRows(out, x, d.T, rows, workers)
}

// forwardNRows runs the first rows rows of x through w into out, batched
// when the weight supports it.
func forwardNRows(w Weight, out, x *tensor.Tensor, rows, workers int) {
	if rf, ok := w.(rowsForwarder); ok {
		rf.ForwardRows(out, x, rows, workers)
		return
	}
	for i := 0; i < rows; i++ {
		w.Forward(out.Row(i), x.Row(i))
	}
}

// Batch is a continuous-batching decode engine: capacity-sized activation
// tensors over one model's weights, stepping up to capacity independent
// trial states through one stacked forward pass per token. Rows are
// independent — each reads and writes only its own State's KV cache, its
// own hooks and checker observe only its own activation rows, and every
// computed value is bit-identical to the same trial stepping alone
// through State.DecodeStep (the batched GEMM's per-row accumulation
// order matches MatVec, and norms, RoPE, attention, SwiGLU, and MoE
// routing act on rows independently). A Batch must not be shared between
// goroutines.
type Batch struct {
	m   *Model
	cap int

	// Stacked activations, capacity × dim; only the leading len(rows)
	// rows of each are touched by a Step.
	x, h, q, kb, vb, a, d *tensor.Tensor // capacity × DModel
	ff1, ff2, ffa         *tensor.Tensor // capacity × FFHidden
	r                     *tensor.Tensor // capacity × NumExperts (MoE only)
	l                     *tensor.Tensor // capacity × Vocab
}

// NewBatch allocates a decode batch engine of the given capacity over m.
func (m *Model) NewBatch(capacity int) *Batch {
	if capacity < 1 {
		panic("model: batch capacity must be at least 1")
	}
	cfg := &m.Cfg
	b := &Batch{
		m:   m,
		cap: capacity,
		x:   tensor.New(capacity, cfg.DModel),
		h:   tensor.New(capacity, cfg.DModel),
		q:   tensor.New(capacity, cfg.DModel),
		kb:  tensor.New(capacity, cfg.DModel),
		vb:  tensor.New(capacity, cfg.DModel),
		a:   tensor.New(capacity, cfg.DModel),
		d:   tensor.New(capacity, cfg.DModel),
		ff1: tensor.New(capacity, cfg.FFHidden),
		ff2: tensor.New(capacity, cfg.FFHidden),
		ffa: tensor.New(capacity, cfg.FFHidden),
		l:   tensor.New(capacity, cfg.Vocab),
	}
	if cfg.IsMoE() {
		b.r = tensor.New(capacity, cfg.NumExperts)
	}
	return b
}

// Capacity returns the maximum number of rows a Step may carry.
func (b *Batch) Capacity() int { return b.cap }

// Step decodes one token for every row: each row's Tok enters at its
// state's position, the linear layers run as one stacked GEMM over all
// rows, and each row's next-token logits land in its Logits buffer with
// its state advanced by one. Rows may sit at different positions. The
// model's registered hooks and checker are ignored; each row's own
// Hooks/Checker observe its rows (see DecodeRow).
func (b *Batch) Step(rows []*DecodeRow) {
	n := len(rows)
	if n == 0 {
		return
	}
	if n > b.cap {
		panic(fmt.Sprintf("model: decode batch of %d exceeds capacity %d", n, b.cap))
	}
	m := b.m
	cfg := &m.Cfg
	threads := m.matmulThreads()

	for i, row := range rows {
		if row.St.m != m {
			panic("model: decode row state bound to a different model")
		}
		if row.St.Pos >= cfg.MaxSeq {
			panic(fmt.Sprintf("model: context overflow (max %d)", cfg.MaxSeq))
		}
		if len(row.Logits) != cfg.Vocab {
			panic("model: decode row logits buffer has wrong length")
		}
		tok := row.Tok
		if tok < 0 || tok >= cfg.Vocab {
			tok = 0
		}
		copy(b.x.Row(i), m.Embed.Row(tok))
	}

	// finishRows applies each row's own context to its output row, in
	// row order — the per-trial hook/checker dispatch that keeps every
	// trial's observations identical to its serial run.
	finishRows := func(ref LayerRef, w Weight, in, out *tensor.Tensor) {
		for i, row := range rows {
			m.finishLinearRC(row.rc(), ref, row.St.Pos, w, in.Row(i), out.Row(i))
		}
	}
	normRows := func(t *tensor.Tensor, gain []float32) {
		for i := 0; i < n; i++ {
			tensor.RMSNormRow(t.Row(i), gain, cfg.Eps)
		}
	}
	addRows := func(dst, src *tensor.Tensor) {
		for i := 0; i < n; i++ {
			drow, srow := dst.Row(i), src.Row(i)
			for j := range drow {
				drow[j] += srow[j]
			}
		}
	}

	for bi, blk := range m.Blocks {
		// --- attention sub-block ---
		for i := 0; i < n; i++ {
			copy(b.h.Row(i), b.x.Row(i))
		}
		normRows(b.h, blk.AttnNorm)

		forwardNRows(blk.Wq, b.q, b.h, n, threads)
		finishRows(LayerRef{bi, KindQ, -1}, blk.Wq, b.h, b.q)
		forwardNRows(blk.Wk, b.kb, b.h, n, threads)
		finishRows(LayerRef{bi, KindK, -1}, blk.Wk, b.h, b.kb)
		forwardNRows(blk.Wv, b.vb, b.h, n, threads)
		finishRows(LayerRef{bi, KindV, -1}, blk.Wv, b.h, b.vb)

		for i, row := range rows {
			pos := row.St.Pos
			m.applyRoPE(b.q.Row(i), pos)
			m.applyRoPE(b.kb.Row(i), pos)
			copy(row.St.K[bi].Row(pos), b.kb.Row(i))
			copy(row.St.V[bi].Row(pos), b.vb.Row(i))
		}
		for i, row := range rows {
			m.attendAt(row.St, bi, row.St.Pos, b.q.Row(i), b.a.Row(i))
			if len(row.AttnHooks) > 0 {
				ref := LayerRef{bi, KindAttnAct, -1}
				for _, h := range row.AttnHooks {
					h(ref, row.St.Pos, b.a.Row(i))
				}
			}
		}

		forwardNRows(blk.Wo, b.h, b.a, n, threads)
		finishRows(LayerRef{bi, KindOut, -1}, blk.Wo, b.a, b.h)
		addRows(b.x, b.h)

		// --- MLP / MoE sub-block ---
		for i := 0; i < n; i++ {
			copy(b.h.Row(i), b.x.Row(i))
		}
		normRows(b.h, blk.MLPNorm)

		if blk.Router != nil {
			forwardNRows(blk.Router, b.r, b.h, n, threads)
			finishRows(LayerRef{bi, KindRouter, -1}, blk.Router, b.h, b.r)
			for i, row := range rows {
				m.moeMix(row.rc(), row.St, blk, bi, row.St.Pos, b.r.Row(i), b.h.Row(i), b.d.Row(i))
			}
		} else {
			forwardNRows(blk.MLP.WGate, b.ff1, b.h, n, threads)
			finishRows(LayerRef{bi, KindGate, -1}, blk.MLP.WGate, b.h, b.ff1)
			forwardNRows(blk.MLP.WUp, b.ff2, b.h, n, threads)
			finishRows(LayerRef{bi, KindUp, -1}, blk.MLP.WUp, b.h, b.ff2)
			for i := 0; i < n*cfg.FFHidden; i++ {
				g := b.ff1.Data[i]
				b.ffa.Data[i] = float32(float64(g)/(1+math.Exp(-float64(g)))) * b.ff2.Data[i]
			}
			forwardNRows(blk.MLP.WDown, b.d, b.ffa, n, threads)
			finishRows(LayerRef{bi, KindDown, -1}, blk.MLP.WDown, b.ffa, b.d)
		}
		addRows(b.x, b.d)
	}

	normRows(b.x, m.FinalNorm)
	forwardNRows(m.LMHead, b.l, b.x, n, threads)
	finishRows(LayerRef{-1, KindLMHead, -1}, m.LMHead, b.x, b.l)

	for i, row := range rows {
		copy(row.Logits, b.l.Row(i))
		row.St.Pos++
	}
}
