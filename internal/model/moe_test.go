package model

import (
	"math"
	"testing"

	"repro/internal/numerics"
	"repro/internal/tensor"
)

func moeSpec() Spec {
	spec := testSpec(LlamaS)
	spec.NumExperts = 4
	spec.TopK = 2
	return spec
}

// TestMoERoutingMatchesRouterLogits verifies that the experts recorded in
// the trace are exactly the top-k of the router layer's output, captured
// independently through a forward hook.
func TestMoERoutingMatchesRouterLogits(t *testing.T) {
	m := MustBuild(moeSpec())
	var routerOut [][]float32
	m.AddHook(func(ref LayerRef, pos int, out []float32) {
		if ref.Kind == KindRouter && ref.Block == 0 {
			routerOut = append(routerOut, append([]float32(nil), out...))
		}
	})
	st := m.NewState()
	st.EnableExpertTrace()
	st.Prefill([]int{1, 5, 6})
	m.ClearHooks()

	if len(routerOut) != 3 {
		t.Fatalf("captured %d router outputs, want 3", len(routerOut))
	}
	for pos, logits := range routerOut {
		want := tensor.TopK(logits, 2)
		got := st.ExpertTrace[0][pos*2 : pos*2+2]
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("pos %d: trace %v, topk %v", pos, got, want)
			}
		}
	}
}

// TestMoEMixtureBounded: the MoE output is a convex combination of
// expert outputs (weights sum to 1), so with one expert's output forced
// to zero via weight surgery, the block output magnitude cannot exceed
// the max expert magnitude.
func TestMoEMixtureIsConvex(t *testing.T) {
	m := MustBuild(moeSpec())
	// Probe: run a token, capture each expert's down_proj output and the
	// final mixture is not directly observable, but convexity implies the
	// mixture of identical experts equals the single expert output. Make
	// all experts identical and compare against the dense equivalent.
	denseSpec := testSpec(LlamaS)
	dm := MustBuild(denseSpec)
	for b, blk := range m.Blocks {
		src := dm.Blocks[b]
		// Copy attention weights so both models align.
		blk.Wq = src.Wq.CloneWeight()
		blk.Wk = src.Wk.CloneWeight()
		blk.Wv = src.Wv.CloneWeight()
		blk.Wo = src.Wo.CloneWeight()
		blk.AttnNorm = append([]float32(nil), src.AttnNorm...)
		blk.MLPNorm = append([]float32(nil), src.MLPNorm...)
		for e := range blk.Experts {
			blk.Experts[e] = &MLPWeights{
				WGate: src.MLP.WGate.CloneWeight(),
				WUp:   src.MLP.WUp.CloneWeight(),
				WDown: src.MLP.WDown.CloneWeight(),
			}
		}
	}
	m.Embed = dm.Embed.Clone()
	m.FinalNorm = append([]float32(nil), dm.FinalNorm...)
	m.LMHead = dm.LMHead.CloneWeight()

	a := m.NewState().Prefill([]int{1, 5, 6, 7})
	b := dm.NewState().Prefill([]int{1, 5, 6, 7})
	for i := range a {
		if math.Abs(float64(a[i]-b[i])) > 1e-3 {
			t.Fatalf("identical-experts MoE logit %d = %g, dense = %g", i, a[i], b[i])
		}
	}
}

// TestMoERouterFaultChangesRouting: corrupting the router weights must be
// able to change the expert trace — the Figure 15 mechanism, tested at
// the unit level.
func TestMoERouterFaultChangesRouting(t *testing.T) {
	m := MustBuild(moeSpec())
	prompt := []int{1, 5, 6, 7, 8}
	run := func() [][]int {
		st := m.NewState()
		st.EnableExpertTrace()
		st.Prefill(prompt)
		return st.ExpertTrace
	}
	clean := run()

	changedAny := false
	router := m.Blocks[0].Router
	msb := numerics.BF16.Bits() - 2
	for col := 0; col < router.Out() && !changedAny; col++ {
		for row := 0; row < router.In() && !changedAny; row += 3 {
			restore := router.FlipBits(row, col, []int{msb})
			faulty := run()
			restore()
			for b := range clean {
				for i := range clean[b] {
					if clean[b][i] != faulty[b][i] {
						changedAny = true
					}
				}
			}
		}
	}
	if !changedAny {
		t.Fatal("no router weight flip changed expert selection")
	}
}
