package model

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"repro/internal/numerics"
	"repro/internal/tensor"
)

// fileModel is the serialized form of a dense-weight model. Quantized
// models are produced in memory from dense ones and are not serialized.
type fileModel struct {
	Cfg       Config
	Embed     fileTensor
	FinalNorm []float32
	LMHead    fileTensor
	Blocks    []fileBlock
}

type fileTensor struct {
	Rows, Cols int
	Data       []float32
}

type fileBlock struct {
	AttnNorm, MLPNorm []float32
	Wq, Wk, Wv, Wo    fileTensor
	MLP               *fileMLP
	Router            *fileTensor
	Experts           []fileMLP
}

type fileMLP struct {
	WGate, WUp, WDown fileTensor
}

func toFileTensor(t *tensor.Tensor) fileTensor {
	return fileTensor{Rows: t.Rows, Cols: t.Cols, Data: t.Data}
}

func fromFileTensor(f fileTensor) *tensor.Tensor {
	return tensor.FromSlice(f.Rows, f.Cols, f.Data)
}

func denseTensor(w Weight) (fileTensor, error) {
	d, ok := w.(*Dense)
	if !ok {
		return fileTensor{}, fmt.Errorf("model: cannot serialize non-dense weight %T", w)
	}
	return toFileTensor(d.T), nil
}

// Save writes the model's parameters to w in gob format. Only models with
// dense weights can be saved.
func (m *Model) Save(w io.Writer) error {
	fm := fileModel{
		Cfg:       m.Cfg,
		Embed:     toFileTensor(m.Embed),
		FinalNorm: m.FinalNorm,
	}
	var err error
	if fm.LMHead, err = denseTensor(m.LMHead); err != nil {
		return err
	}
	for _, blk := range m.Blocks {
		fb := fileBlock{AttnNorm: blk.AttnNorm, MLPNorm: blk.MLPNorm}
		for _, pair := range []struct {
			dst *fileTensor
			src Weight
		}{{&fb.Wq, blk.Wq}, {&fb.Wk, blk.Wk}, {&fb.Wv, blk.Wv}, {&fb.Wo, blk.Wo}} {
			if *pair.dst, err = denseTensor(pair.src); err != nil {
				return err
			}
		}
		if blk.MLP != nil {
			fm2, err := toFileMLP(blk.MLP)
			if err != nil {
				return err
			}
			fb.MLP = &fm2
		}
		if blk.Router != nil {
			rt, err := denseTensor(blk.Router)
			if err != nil {
				return err
			}
			fb.Router = &rt
			for _, ex := range blk.Experts {
				fe, err := toFileMLP(ex)
				if err != nil {
					return err
				}
				fb.Experts = append(fb.Experts, fe)
			}
		}
		fm.Blocks = append(fm.Blocks, fb)
	}
	return gob.NewEncoder(w).Encode(&fm)
}

func toFileMLP(m *MLPWeights) (fileMLP, error) {
	var out fileMLP
	var err error
	if out.WGate, err = denseTensor(m.WGate); err != nil {
		return out, err
	}
	if out.WUp, err = denseTensor(m.WUp); err != nil {
		return out, err
	}
	out.WDown, err = denseTensor(m.WDown)
	return out, err
}

// Load reads a model previously written by Save. The datatype recorded in
// the config is re-applied (weights are re-rounded on load).
func Load(r io.Reader) (*Model, error) {
	var fm fileModel
	if err := gob.NewDecoder(r).Decode(&fm); err != nil {
		return nil, fmt.Errorf("model: decode: %w", err)
	}
	if err := fm.Cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Model{
		Cfg:       fm.Cfg,
		Embed:     fromFileTensor(fm.Embed),
		FinalNorm: fm.FinalNorm,
		LMHead:    NewDense(fromFileTensor(fm.LMHead), fm.Cfg.DType),
	}
	for _, fb := range fm.Blocks {
		blk := &Block{
			AttnNorm: fb.AttnNorm,
			MLPNorm:  fb.MLPNorm,
			Wq:       NewDense(fromFileTensor(fb.Wq), fm.Cfg.DType),
			Wk:       NewDense(fromFileTensor(fb.Wk), fm.Cfg.DType),
			Wv:       NewDense(fromFileTensor(fb.Wv), fm.Cfg.DType),
			Wo:       NewDense(fromFileTensor(fb.Wo), fm.Cfg.DType),
		}
		if fb.MLP != nil {
			blk.MLP = fromFileMLP(*fb.MLP, fm.Cfg.DType)
		}
		if fb.Router != nil {
			blk.Router = NewDense(fromFileTensor(*fb.Router), fm.Cfg.DType)
			for _, fe := range fb.Experts {
				blk.Experts = append(blk.Experts, fromFileMLP(fe, fm.Cfg.DType))
			}
		}
		m.Blocks = append(m.Blocks, blk)
	}
	m.initRope()
	return m, nil
}

func fromFileMLP(f fileMLP, dt numerics.DType) *MLPWeights {
	return &MLPWeights{
		WGate: NewDense(fromFileTensor(f.WGate), dt),
		WUp:   NewDense(fromFileTensor(f.WUp), dt),
		WDown: NewDense(fromFileTensor(f.WDown), dt),
	}
}

// SaveFile writes the model to path (creating directories is the caller's
// job).
func (m *Model) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := m.Save(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile reads a model from path.
func LoadFile(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
