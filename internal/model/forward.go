package model

import (
	"fmt"
	"math"

	"repro/internal/numerics"
	"repro/internal/tensor"
)

// State holds the mutable per-inference state: the KV cache and scratch
// buffers. A Model may serve many States; a State must not be shared
// between goroutines.
type State struct {
	m   *Model
	Pos int // number of tokens processed so far

	// Per block: cached keys and values, MaxSeq x DModel (head-major rows).
	K, V []*tensor.Tensor

	// Scratch buffers reused across steps.
	x, h, q, k, v, attnOut, ff1, ff2, ffa, logits []float32
	routerLogits                                  []float32

	// ExpertTrace, when non-nil, records the experts selected at each step
	// for each MoE block — Figure 15's "expert selection changed" analysis.
	ExpertTrace [][]int
}

// NewState allocates inference state for m.
func (m *Model) NewState() *State {
	st := &State{m: m}
	st.K = make([]*tensor.Tensor, m.Cfg.NBlocks)
	st.V = make([]*tensor.Tensor, m.Cfg.NBlocks)
	for i := range st.K {
		st.K[i] = tensor.New(m.Cfg.MaxSeq, m.Cfg.DModel)
		st.V[i] = tensor.New(m.Cfg.MaxSeq, m.Cfg.DModel)
	}
	d, ff := m.Cfg.DModel, m.Cfg.FFHidden
	st.x = make([]float32, d)
	st.h = make([]float32, d)
	st.q = make([]float32, d)
	st.k = make([]float32, d)
	st.v = make([]float32, d)
	st.attnOut = make([]float32, d)
	st.ff1 = make([]float32, ff)
	st.ff2 = make([]float32, ff)
	st.ffa = make([]float32, ff)
	st.logits = make([]float32, m.Cfg.Vocab)
	if m.Cfg.IsMoE() {
		st.routerLogits = make([]float32, m.Cfg.NumExperts)
	}
	return st
}

// Reset rewinds the state to an empty context so the buffers can be
// reused for a fresh inference.
func (st *State) Reset() {
	st.Pos = 0
	st.ExpertTrace = nil
}

// Fork returns an independent copy of the state: position and the live
// prefix of the KV cache are duplicated, scratch buffers are fresh. Beam
// search forks candidate hypotheses from a shared prefix with this.
func (st *State) Fork() *State { return st.ForkFor(st.m) }

// ForkFor returns a copy of the state bound to m2, which must be the
// state's own model or a clone with the same architecture. Campaign
// workers fork the baseline's post-prompt snapshot onto their own clone
// so the clone's hooks — not the baseline model's — fire when generation
// continues from the shared prefix.
func (st *State) ForkFor(m2 *Model) *State {
	if m2.Cfg.DModel != st.m.Cfg.DModel || m2.Cfg.NBlocks != st.m.Cfg.NBlocks || m2.Cfg.MaxSeq != st.m.Cfg.MaxSeq {
		panic("model: ForkFor across different architectures")
	}
	ns := m2.NewState()
	ns.Pos = st.Pos
	for i := range st.K {
		n := st.Pos * st.m.Cfg.DModel
		copy(ns.K[i].Data[:n], st.K[i].Data[:n])
		copy(ns.V[i].Data[:n], st.V[i].Data[:n])
	}
	if st.ExpertTrace != nil {
		ns.ExpertTrace = make([][]int, len(st.ExpertTrace))
		for i, tr := range st.ExpertTrace {
			ns.ExpertTrace[i] = append([]int(nil), tr...)
		}
	}
	return ns
}

// EnableExpertTrace starts recording MoE expert selections per block.
func (st *State) EnableExpertTrace() {
	st.ExpertTrace = make([][]int, st.m.Cfg.NBlocks)
}

// DecodeStep runs one token through the model, appending to the KV cache,
// and returns the next-token logits. The returned slice is reused by the
// next call; copy it if it must outlive the step.
func (st *State) DecodeStep(tok int) []float32 {
	m := st.m
	cfg := &m.Cfg
	if st.Pos >= cfg.MaxSeq {
		panic(fmt.Sprintf("model: context overflow (max %d)", cfg.MaxSeq))
	}
	if tok < 0 || tok >= cfg.Vocab {
		tok = 0
	}
	pos := st.Pos
	d := cfg.DModel

	copy(st.x, m.Embed.Row(tok))

	for bi, blk := range m.Blocks {
		// --- attention sub-block ---
		copy(st.h, st.x)
		tensor.RMSNormRow(st.h, blk.AttnNorm, cfg.Eps)

		blk.Wq.Forward(st.q, st.h)
		m.finishLinear(LayerRef{bi, KindQ, -1}, pos, blk.Wq, st.h, st.q)
		blk.Wk.Forward(st.k, st.h)
		m.finishLinear(LayerRef{bi, KindK, -1}, pos, blk.Wk, st.h, st.k)
		blk.Wv.Forward(st.v, st.h)
		m.finishLinear(LayerRef{bi, KindV, -1}, pos, blk.Wv, st.h, st.v)

		m.applyRoPE(st.q, pos)
		m.applyRoPE(st.k, pos)

		copy(st.K[bi].Row(pos), st.k)
		copy(st.V[bi].Row(pos), st.v)

		m.attendAt(st, bi, pos, st.q, st.attnOut)

		blk.Wo.Forward(st.h, st.attnOut)
		m.finishLinear(LayerRef{bi, KindOut, -1}, pos, blk.Wo, st.attnOut, st.h)
		for i := range st.x {
			st.x[i] += st.h[i]
		}

		// --- MLP / MoE sub-block ---
		copy(st.h, st.x)
		tensor.RMSNormRow(st.h, blk.MLPNorm, cfg.Eps)

		if blk.Router != nil {
			m.moeForward(st, blk, bi, pos)
		} else {
			m.mlpForward(st, blk.MLP, LayerRef{bi, 0, -1}, pos, st.h, st.h)
		}
		for i := 0; i < d; i++ {
			st.x[i] += st.h[i]
		}
	}

	tensor.RMSNormRow(st.x, m.FinalNorm, cfg.Eps)
	m.LMHead.Forward(st.logits, st.x)
	m.finishLinear(LayerRef{-1, KindLMHead, -1}, pos, m.LMHead, st.x, st.logits)

	st.Pos++
	return st.logits
}

// mlpForward computes dst = down(silu(gate(h)) * up(h)). base carries the
// block and expert indices; its Kind field is overwritten per projection.
// dst and h may alias.
func (m *Model) mlpForward(st *State, mlp *MLPWeights, base LayerRef, pos int, dst, h []float32) {
	base.Kind = KindGate
	mlp.WGate.Forward(st.ff1, h)
	m.finishLinear(base, pos, mlp.WGate, h, st.ff1)
	base.Kind = KindUp
	mlp.WUp.Forward(st.ff2, h)
	m.finishLinear(base, pos, mlp.WUp, h, st.ff2)
	for i, g := range st.ff1 {
		st.ffa[i] = float32(float64(g)/(1+math.Exp(-float64(g)))) * st.ff2[i]
	}
	base.Kind = KindDown
	mlp.WDown.Forward(dst, st.ffa)
	m.finishLinear(base, pos, mlp.WDown, st.ffa, dst)
}

// moeForward routes h through the top-K experts selected by the router
// gate layer and writes the probability-weighted mixture to st.h.
func (m *Model) moeForward(st *State, blk *Block, bi, pos int) {
	blk.Router.Forward(st.routerLogits, st.h)
	m.finishLinear(LayerRef{bi, KindRouter, -1}, pos, blk.Router, st.h, st.routerLogits)
	m.moeMix(st, blk, bi, pos, st.routerLogits, st.h, st.h)
}

// moeMix routes the post-norm row h through the top-K experts selected by
// the already-finished router logits and writes the probability-weighted
// mixture to dst. dst may alias h. Batched prefill runs the router linear
// for all positions at once and then mixes per position through here.
func (m *Model) moeMix(st *State, blk *Block, bi, pos int, routerLogits, h, dst []float32) {
	cfg := &m.Cfg
	sel := tensor.TopK(routerLogits, cfg.TopK)
	if st.ExpertTrace != nil {
		st.ExpertTrace[bi] = append(st.ExpertTrace[bi], sel...)
	}
	// Softmax over the selected logits only (Mixtral-style renormalization).
	probs := make([]float32, len(sel))
	var maxv float32 = float32(math.Inf(-1))
	for i, e := range sel {
		probs[i] = routerLogits[e]
		if probs[i] > maxv {
			maxv = probs[i]
		}
	}
	var sum float64
	for i := range probs {
		p := math.Exp(float64(probs[i] - maxv))
		probs[i] = float32(p)
		sum += p
	}
	if sum > 0 && !math.IsNaN(sum) && !math.IsInf(sum, 0) {
		for i := range probs {
			probs[i] = float32(float64(probs[i]) / sum)
		}
	} else {
		for i := range probs {
			probs[i] = 1 / float32(len(probs))
		}
	}

	mix := make([]float32, cfg.DModel)
	out := make([]float32, cfg.DModel)
	for i, e := range sel {
		m.mlpForward(st, blk.Experts[e], LayerRef{bi, 0, e}, pos, out, h)
		w := probs[i]
		for j, v := range out {
			mix[j] += w * v
		}
	}
	copy(dst, mix)
}

// attendAt computes causal multi-head attention for the token at pos using
// the block's KV cache: q is the position's rotated query row and the
// concatenated head outputs are written to out.
func (m *Model) attendAt(st *State, bi, pos int, qrow, out []float32) {
	cfg := &m.Cfg
	hd := cfg.HeadDim()
	scale := 1 / math.Sqrt(float64(hd))
	K, V := st.K[bi], st.V[bi]
	n := pos + 1

	scores := make([]float32, n)
	for h := 0; h < cfg.NHeads; h++ {
		off := h * hd
		q := qrow[off : off+hd]
		for t := 0; t < n; t++ {
			krow := K.Row(t)[off : off+hd]
			var dot float64
			for i, qv := range q {
				dot += float64(qv) * float64(krow[i])
			}
			scores[t] = float32(dot * scale)
		}
		tensor.SoftmaxRow(scores[:n])
		o := out[off : off+hd]
		for i := range o {
			o[i] = 0
		}
		for t := 0; t < n; t++ {
			w := scores[t]
			if w == 0 {
				continue
			}
			vrow := V.Row(t)[off : off+hd]
			for i, vv := range vrow {
				o[i] += w * vv
			}
		}
	}
}

// finishLinear applies the model's forward hooks to a linear layer's
// output, runs the linear checker if one is armed, and requantizes the
// output to the model datatype. Hooks run before rounding so an injected
// bit pattern is exactly the DType value; the checker runs after the
// hooks (it must see the fault) and before rounding (so its noise floor
// is the float32 kernel, not the storage datatype). w and in are the
// layer's weight and input row, which the checker needs to form the
// expected checksum and recompute a flagged output.
func (m *Model) finishLinear(ref LayerRef, pos int, w Weight, in, out []float32) {
	m.runHooks(ref, pos, out)
	if m.checker != nil {
		m.checker.CheckLinear(ref, pos, w, in, out)
	}
	if m.Cfg.DType != numerics.FP32 {
		dt := m.Cfg.DType
		for i, v := range out {
			out[i] = float32(numerics.Round(dt, float64(v)))
		}
	}
}

// applyRoPE rotates adjacent element pairs of each head of vec by the
// position-dependent angles of rotary position embedding.
func (m *Model) applyRoPE(vec []float32, pos int) {
	cosT, sinT := m.ropeCos[pos], m.ropeSin[pos]
	hd := m.Cfg.HeadDim()
	for h := 0; h < m.Cfg.NHeads; h++ {
		off := h * hd
		for i := 0; i < hd/2; i++ {
			c, s := cosT[i], sinT[i]
			a, b := vec[off+2*i], vec[off+2*i+1]
			vec[off+2*i] = a*c - b*s
			vec[off+2*i+1] = a*s + b*c
		}
	}
}

// InitRope precomputes the rotary embedding tables for every position.
// Build and Load call it automatically; packages that assemble a Model
// from parts (quantization, training export) must call it once before
// inference.
func (m *Model) InitRope() { m.initRope() }

// initRope precomputes the rotary tables for every position.
func (m *Model) initRope() {
	cfg := &m.Cfg
	hd := cfg.HeadDim()
	m.ropeCos = make([][]float32, cfg.MaxSeq)
	m.ropeSin = make([][]float32, cfg.MaxSeq)
	for p := 0; p < cfg.MaxSeq; p++ {
		cosT := make([]float32, hd/2)
		sinT := make([]float32, hd/2)
		for i := 0; i < hd/2; i++ {
			freq := 1 / math.Pow(cfg.RopeTheta, float64(2*i)/float64(hd))
			ang := float64(p) * freq
			cosT[i] = float32(math.Cos(ang))
			sinT[i] = float32(math.Sin(ang))
		}
		m.ropeCos[p] = cosT
		m.ropeSin[p] = sinT
	}
}

// prefillSequential feeds every prompt token through DecodeStep and
// returns the logits after the final prompt token. This is the seed
// per-token reference path; the batched Prefill in prefill.go is pinned
// bit-for-bit to it by golden tests, and SetSequentialPrefill routes
// Prefill back through here for those tests and for before/after
// benchmarks.
func (st *State) prefillSequential(prompt []int) []float32 {
	if len(prompt) == 0 {
		panic("model: empty prompt")
	}
	var logits []float32
	for _, t := range prompt {
		logits = st.DecodeStep(t)
	}
	return logits
}
