package model

import (
	"fmt"
	"math"

	"repro/internal/numerics"
	"repro/internal/tensor"
)

// State holds the mutable per-inference state: the KV cache and scratch
// buffers. A Model may serve many States; a State must not be shared
// between goroutines.
type State struct {
	m   *Model
	Pos int // number of tokens processed so far

	// Per block: cached keys and values, MaxSeq x DModel (head-major rows).
	K, V []*tensor.Tensor

	// Scratch buffers reused across steps.
	x, h, q, k, v, attnOut, ff1, ff2, ffa, logits []float32
	routerLogits                                  []float32
	attnScores                                    []float32
	attnQ                                         []float64

	// ExpertTrace, when non-nil, records the experts selected at each step
	// for each MoE block — Figure 15's "expert selection changed" analysis.
	ExpertTrace [][]int
}

// NewState allocates inference state for m.
func (m *Model) NewState() *State {
	st := &State{m: m}
	st.K = make([]*tensor.Tensor, m.Cfg.NBlocks)
	st.V = make([]*tensor.Tensor, m.Cfg.NBlocks)
	for i := range st.K {
		st.K[i] = tensor.New(m.Cfg.MaxSeq, m.Cfg.DModel)
		st.V[i] = tensor.New(m.Cfg.MaxSeq, m.Cfg.DModel)
	}
	d, ff := m.Cfg.DModel, m.Cfg.FFHidden
	st.x = make([]float32, d)
	st.h = make([]float32, d)
	st.q = make([]float32, d)
	st.k = make([]float32, d)
	st.v = make([]float32, d)
	st.attnOut = make([]float32, d)
	st.ff1 = make([]float32, ff)
	st.ff2 = make([]float32, ff)
	st.ffa = make([]float32, ff)
	st.logits = make([]float32, m.Cfg.Vocab)
	st.attnScores = make([]float32, m.Cfg.MaxSeq)
	st.attnQ = make([]float64, m.Cfg.HeadDim())
	if m.Cfg.IsMoE() {
		st.routerLogits = make([]float32, m.Cfg.NumExperts)
	}
	return st
}

// Reset rewinds the state to an empty context so the buffers can be
// reused for a fresh inference.
func (st *State) Reset() {
	st.Pos = 0
	st.ExpertTrace = nil
}

// Fork returns an independent copy of the state: position and the live
// prefix of the KV cache are duplicated, scratch buffers are fresh. Beam
// search forks candidate hypotheses from a shared prefix with this.
func (st *State) Fork() *State { return st.ForkFor(st.m) }

// ForkFor returns a copy of the state bound to m2, which must be the
// state's own model or a clone with the same architecture. Campaign
// workers fork the baseline's post-prompt snapshot onto their own clone
// so the clone's hooks — not the baseline model's — fire when generation
// continues from the shared prefix.
func (st *State) ForkFor(m2 *Model) *State {
	if m2.Cfg.DModel != st.m.Cfg.DModel || m2.Cfg.NBlocks != st.m.Cfg.NBlocks || m2.Cfg.MaxSeq != st.m.Cfg.MaxSeq {
		panic("model: ForkFor across different architectures")
	}
	return st.forkInto(m2.NewState())
}

// ForkForInto is ForkFor recycling a retired state's buffers instead of
// allocating fresh ones: dst must have come from NewState/ForkFor on a
// model of the same architecture, and everything it held is overwritten.
// A continuous-batching scheduler retires and admits one trial state per
// slot turnover; reusing the KV allocations keeps that churn off the
// allocator. A nil dst falls back to a fresh fork.
func (st *State) ForkForInto(m2 *Model, dst *State) *State {
	if dst == nil {
		return st.ForkFor(m2)
	}
	if m2.Cfg.DModel != st.m.Cfg.DModel || m2.Cfg.NBlocks != st.m.Cfg.NBlocks || m2.Cfg.MaxSeq != st.m.Cfg.MaxSeq {
		panic("model: ForkForInto across different architectures")
	}
	dst.m = m2
	dst.ExpertTrace = nil
	return st.forkInto(dst)
}

// forkInto copies the prefix snapshot into ns. Rows of ns's KV cache at
// or beyond st.Pos are left stale; attention only ever reads positions
// below the state's cursor, and decode writes each row before the step
// that reads it, so stale tails are unobservable.
func (st *State) forkInto(ns *State) *State {
	ns.Pos = st.Pos
	for i := range st.K {
		n := st.Pos * st.m.Cfg.DModel
		copy(ns.K[i].Data[:n], st.K[i].Data[:n])
		copy(ns.V[i].Data[:n], st.V[i].Data[:n])
	}
	if st.ExpertTrace != nil {
		ns.ExpertTrace = make([][]int, len(st.ExpertTrace))
		for i, tr := range st.ExpertTrace {
			ns.ExpertTrace[i] = append([]int(nil), tr...)
		}
	}
	return ns
}

// EnableExpertTrace starts recording MoE expert selections per block.
func (st *State) EnableExpertTrace() {
	st.ExpertTrace = make([][]int, st.m.Cfg.NBlocks)
}

// DecodeStep runs one token through the model, appending to the KV cache,
// and returns the next-token logits. The returned slice is reused by the
// next call; copy it if it must outlive the step.
func (st *State) DecodeStep(tok int) []float32 {
	m := st.m
	cfg := &m.Cfg
	if st.Pos >= cfg.MaxSeq {
		panic(fmt.Sprintf("model: context overflow (max %d)", cfg.MaxSeq))
	}
	if tok < 0 || tok >= cfg.Vocab {
		tok = 0
	}
	pos := st.Pos
	d := cfg.DModel

	copy(st.x, m.Embed.Row(tok))

	for bi, blk := range m.Blocks {
		// --- attention sub-block ---
		copy(st.h, st.x)
		tensor.RMSNormRow(st.h, blk.AttnNorm, cfg.Eps)

		blk.Wq.Forward(st.q, st.h)
		m.finishLinear(LayerRef{bi, KindQ, -1}, pos, blk.Wq, st.h, st.q)
		blk.Wk.Forward(st.k, st.h)
		m.finishLinear(LayerRef{bi, KindK, -1}, pos, blk.Wk, st.h, st.k)
		blk.Wv.Forward(st.v, st.h)
		m.finishLinear(LayerRef{bi, KindV, -1}, pos, blk.Wv, st.h, st.v)

		m.applyRoPE(st.q, pos)
		m.applyRoPE(st.k, pos)

		copy(st.K[bi].Row(pos), st.k)
		copy(st.V[bi].Row(pos), st.v)

		m.attendAt(st, bi, pos, st.q, st.attnOut)
		if len(m.attnHooks) > 0 {
			m.runAttnHooks(LayerRef{bi, KindAttnAct, -1}, pos, st.attnOut)
		}

		blk.Wo.Forward(st.h, st.attnOut)
		m.finishLinear(LayerRef{bi, KindOut, -1}, pos, blk.Wo, st.attnOut, st.h)
		for i := range st.x {
			st.x[i] += st.h[i]
		}

		// --- MLP / MoE sub-block ---
		copy(st.h, st.x)
		tensor.RMSNormRow(st.h, blk.MLPNorm, cfg.Eps)

		if blk.Router != nil {
			m.moeForward(st, blk, bi, pos)
		} else {
			m.mlpForward(m.rc(), st, blk.MLP, LayerRef{bi, 0, -1}, pos, st.h, st.h)
		}
		for i := 0; i < d; i++ {
			st.x[i] += st.h[i]
		}
	}

	tensor.RMSNormRow(st.x, m.FinalNorm, cfg.Eps)
	m.LMHead.Forward(st.logits, st.x)
	m.finishLinear(LayerRef{-1, KindLMHead, -1}, pos, m.LMHead, st.x, st.logits)

	st.Pos++
	return st.logits
}

// mlpForward computes dst = down(silu(gate(h)) * up(h)). base carries the
// block and expert indices; its Kind field is overwritten per projection.
// dst and h may alias. rc selects whose hooks and checker observe the
// three projections (the row's own trial in a decode batch).
func (m *Model) mlpForward(rc rowCtx, st *State, mlp *MLPWeights, base LayerRef, pos int, dst, h []float32) {
	base.Kind = KindGate
	mlp.WGate.Forward(st.ff1, h)
	m.finishLinearRC(rc, base, pos, mlp.WGate, h, st.ff1)
	base.Kind = KindUp
	mlp.WUp.Forward(st.ff2, h)
	m.finishLinearRC(rc, base, pos, mlp.WUp, h, st.ff2)
	for i, g := range st.ff1 {
		st.ffa[i] = float32(float64(g)/(1+math.Exp(-float64(g)))) * st.ff2[i]
	}
	base.Kind = KindDown
	mlp.WDown.Forward(dst, st.ffa)
	m.finishLinearRC(rc, base, pos, mlp.WDown, st.ffa, dst)
}

// moeForward routes h through the top-K experts selected by the router
// gate layer and writes the probability-weighted mixture to st.h.
func (m *Model) moeForward(st *State, blk *Block, bi, pos int) {
	blk.Router.Forward(st.routerLogits, st.h)
	m.finishLinear(LayerRef{bi, KindRouter, -1}, pos, blk.Router, st.h, st.routerLogits)
	m.moeMix(m.rc(), st, blk, bi, pos, st.routerLogits, st.h, st.h)
}

// moeMix routes the post-norm row h through the top-K experts selected by
// the already-finished router logits and writes the probability-weighted
// mixture to dst. dst may alias h. Batched prefill runs the router linear
// for all positions at once and then mixes per position through here; the
// decode batch engine does the same, handing each row's own rc.
func (m *Model) moeMix(rc rowCtx, st *State, blk *Block, bi, pos int, routerLogits, h, dst []float32) {
	cfg := &m.Cfg
	sel := tensor.TopK(routerLogits, cfg.TopK)
	if st.ExpertTrace != nil {
		st.ExpertTrace[bi] = append(st.ExpertTrace[bi], sel...)
	}
	// Softmax over the selected logits only (Mixtral-style renormalization).
	probs := make([]float32, len(sel))
	var maxv float32 = float32(math.Inf(-1))
	for i, e := range sel {
		probs[i] = routerLogits[e]
		if probs[i] > maxv {
			maxv = probs[i]
		}
	}
	var sum float64
	for i := range probs {
		p := math.Exp(float64(probs[i] - maxv))
		probs[i] = float32(p)
		sum += p
	}
	if sum > 0 && !math.IsNaN(sum) && !math.IsInf(sum, 0) {
		for i := range probs {
			probs[i] = float32(float64(probs[i]) / sum)
		}
	} else {
		for i := range probs {
			probs[i] = 1 / float32(len(probs))
		}
	}

	mix := make([]float32, cfg.DModel)
	out := make([]float32, cfg.DModel)
	for i, e := range sel {
		m.mlpForward(rc, st, blk.Experts[e], LayerRef{bi, 0, e}, pos, out, h)
		w := probs[i]
		for j, v := range out {
			mix[j] += w * v
		}
	}
	copy(dst, mix)
}

// attendAt computes causal multi-head attention for the token at pos using
// the block's KV cache: q is the position's rotated query row and the
// concatenated head outputs are written to out.
func (m *Model) attendAt(st *State, bi, pos int, qrow, out []float32) {
	cfg := &m.Cfg
	hd := cfg.HeadDim()
	scale := 1 / math.Sqrt(float64(hd))
	K, V := st.K[bi], st.V[bi]
	n := pos + 1

	scores := st.attnScores[:n]
	qf := st.attnQ[:hd]
	for h := 0; h < cfg.NHeads; h++ {
		off := h * hd
		for i, qv := range qrow[off : off+hd] {
			qf[i] = float64(qv)
		}
		// Four key positions per pass: each dot keeps its own float64
		// accumulator summed in i-ascending order — the exact sequence of
		// the one-position loop below — so every score is bit-identical
		// while the four independent chains hide the FP-add latency that
		// bounds a lone dot product.
		t := 0
		for ; t+4 <= n; t += 4 {
			k0 := K.Row(t)[off : off+hd]
			// Reslicing everything to len(k0) (all are hd long) lets the
			// compiler prove the range index in bounds for every operand,
			// dropping four per-element bounds checks from the hot loop.
			k1 := K.Row(t + 1)[off : off+hd][:len(k0)]
			k2 := K.Row(t + 2)[off : off+hd][:len(k0)]
			k3 := K.Row(t + 3)[off : off+hd][:len(k0)]
			qh := qf[:len(k0)]
			var d0, d1, d2, d3 float64
			for i, kv := range k0 {
				qv := qh[i]
				d0 += qv * float64(kv)
				d1 += qv * float64(k1[i])
				d2 += qv * float64(k2[i])
				d3 += qv * float64(k3[i])
			}
			scores[t] = float32(d0 * scale)
			scores[t+1] = float32(d1 * scale)
			scores[t+2] = float32(d2 * scale)
			scores[t+3] = float32(d3 * scale)
		}
		for ; t < n; t++ {
			krow := K.Row(t)[off : off+hd]
			var dot float64
			for i, kv := range krow {
				dot += qf[i] * float64(kv)
			}
			scores[t] = float32(dot * scale)
		}
		tensor.SoftmaxRow(scores[:n])
		// Attention-weighted value mix, eight output channels per pass
		// held in register accumulators — the matVecTiled layout. Each
		// output element still sums w·v in t-ascending order with
		// zero-weight positions skipped, exactly as the one-channel loop
		// below, so the mix is bit-identical while the per-t load/store
		// of the output row disappears.
		o := out[off : off+hd]
		i := 0
		for ; i+8 <= hd; i += 8 {
			lo := off + i
			var s0, s1, s2, s3, s4, s5, s6, s7 float32
			// Four value positions per pass (their loads overlap as four
			// independent streams); each accumulator still receives its
			// w·v terms strictly in t-ascending order with zero weights
			// skipped, so the unroll is bit-identical to the tail loop.
			t := 0
			for ; t+4 <= n; t += 4 {
				if w := scores[t]; w != 0 {
					vr := V.Row(t)[lo : lo+8 : lo+8]
					s0 += w * vr[0]
					s1 += w * vr[1]
					s2 += w * vr[2]
					s3 += w * vr[3]
					s4 += w * vr[4]
					s5 += w * vr[5]
					s6 += w * vr[6]
					s7 += w * vr[7]
				}
				if w := scores[t+1]; w != 0 {
					vr := V.Row(t + 1)[lo : lo+8 : lo+8]
					s0 += w * vr[0]
					s1 += w * vr[1]
					s2 += w * vr[2]
					s3 += w * vr[3]
					s4 += w * vr[4]
					s5 += w * vr[5]
					s6 += w * vr[6]
					s7 += w * vr[7]
				}
				if w := scores[t+2]; w != 0 {
					vr := V.Row(t + 2)[lo : lo+8 : lo+8]
					s0 += w * vr[0]
					s1 += w * vr[1]
					s2 += w * vr[2]
					s3 += w * vr[3]
					s4 += w * vr[4]
					s5 += w * vr[5]
					s6 += w * vr[6]
					s7 += w * vr[7]
				}
				if w := scores[t+3]; w != 0 {
					vr := V.Row(t + 3)[lo : lo+8 : lo+8]
					s0 += w * vr[0]
					s1 += w * vr[1]
					s2 += w * vr[2]
					s3 += w * vr[3]
					s4 += w * vr[4]
					s5 += w * vr[5]
					s6 += w * vr[6]
					s7 += w * vr[7]
				}
			}
			for ; t < n; t++ {
				w := scores[t]
				if w == 0 {
					continue
				}
				vr := V.Row(t)[lo : lo+8 : lo+8]
				s0 += w * vr[0]
				s1 += w * vr[1]
				s2 += w * vr[2]
				s3 += w * vr[3]
				s4 += w * vr[4]
				s5 += w * vr[5]
				s6 += w * vr[6]
				s7 += w * vr[7]
			}
			o[i], o[i+1], o[i+2], o[i+3] = s0, s1, s2, s3
			o[i+4], o[i+5], o[i+6], o[i+7] = s4, s5, s6, s7
		}
		for ; i < hd; i++ {
			var s float32
			for t := 0; t < n; t++ {
				w := scores[t]
				if w == 0 {
					continue
				}
				s += w * V.Row(t)[off+i]
			}
			o[i] = s
		}
	}
}

// rowCtx is the observation context of one activation row: which hooks
// fire on each linear-layer output and which checker verifies it. The
// serial path uses the model's registered hooks and checker for every
// row; the batched decode engine builds one rowCtx per in-flight trial
// so each batch row keeps its own injection site and detection verdict
// while sharing the stacked GEMMs.
type rowCtx struct {
	hooks   []Hook
	checker LinearChecker
}

// rc returns the model's own observation context (registered hooks plus
// the armed checker) — what every serial forward pass runs under.
func (m *Model) rc() rowCtx { return rowCtx{hooks: m.hooks, checker: m.checker} }

// finishLinear applies the model's forward hooks to a linear layer's
// output, runs the linear checker if one is armed, and requantizes the
// output to the model datatype.
func (m *Model) finishLinear(ref LayerRef, pos int, w Weight, in, out []float32) {
	m.finishLinearRC(m.rc(), ref, pos, w, in, out)
}

// finishLinearRC is finishLinear under an explicit row context. Hooks
// run before rounding so an injected bit pattern is exactly the DType
// value; the checker runs after the hooks (it must see the fault) and
// before rounding (so its noise floor is the float32 kernel, not the
// storage datatype). w and in are the layer's weight and input row,
// which the checker needs to form the expected checksum and recompute a
// flagged output.
func (m *Model) finishLinearRC(rc rowCtx, ref LayerRef, pos int, w Weight, in, out []float32) {
	for _, h := range rc.hooks {
		h(ref, pos, out)
	}
	if rc.checker != nil {
		rc.checker.CheckLinear(ref, pos, w, in, out)
	}
	numerics.RoundSlice(m.Cfg.DType, out)
}

// applyRoPE rotates adjacent element pairs of each head of vec by the
// position-dependent angles of rotary position embedding.
func (m *Model) applyRoPE(vec []float32, pos int) {
	cosT, sinT := m.ropeCos[pos], m.ropeSin[pos]
	hd := m.Cfg.HeadDim()
	for h := 0; h < m.Cfg.NHeads; h++ {
		off := h * hd
		for i := 0; i < hd/2; i++ {
			c, s := cosT[i], sinT[i]
			a, b := vec[off+2*i], vec[off+2*i+1]
			vec[off+2*i] = a*c - b*s
			vec[off+2*i+1] = a*s + b*c
		}
	}
}

// InitRope precomputes the rotary embedding tables for every position.
// Build and Load call it automatically; packages that assemble a Model
// from parts (quantization, training export) must call it once before
// inference.
func (m *Model) InitRope() { m.initRope() }

// initRope precomputes the rotary tables for every position.
func (m *Model) initRope() {
	cfg := &m.Cfg
	hd := cfg.HeadDim()
	m.ropeCos = make([][]float32, cfg.MaxSeq)
	m.ropeSin = make([][]float32, cfg.MaxSeq)
	for p := 0; p < cfg.MaxSeq; p++ {
		cosT := make([]float32, hd/2)
		sinT := make([]float32, hd/2)
		for i := 0; i < hd/2; i++ {
			freq := 1 / math.Pow(cfg.RopeTheta, float64(2*i)/float64(hd))
			ang := float64(p) * freq
			cosT[i] = float32(math.Cos(ang))
			sinT[i] = float32(math.Sin(ang))
		}
		m.ropeCos[p] = cosT
		m.ropeSin[p] = sinT
	}
}

// prefillSequential feeds every prompt token through DecodeStep and
// returns the logits after the final prompt token. This is the seed
// per-token reference path; the batched Prefill in prefill.go is pinned
// bit-for-bit to it by golden tests, and SetSequentialPrefill routes
// Prefill back through here for those tests and for before/after
// benchmarks.
func (st *State) prefillSequential(prompt []int) []float32 {
	if len(prompt) == 0 {
		panic("model: empty prompt")
	}
	var logits []float32
	for _, t := range prompt {
		logits = st.DecodeStep(t)
	}
	return logits
}
