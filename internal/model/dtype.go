package model

import (
	"fmt"

	"repro/internal/numerics"
)

// WithDType returns a copy of m whose weights and activations use the
// given storage format — the datatype study of §4.3.3 evaluates the same
// trained model under FP16, BF16, and FP32. Only dense-weight models can
// be retyped (quantized models have their own storage study, Figure 17).
func WithDType(m *Model, dt numerics.DType) (*Model, error) {
	nm := m.Clone()
	nm.Cfg.DType = dt
	retype := func(w Weight) (Weight, error) {
		d, ok := w.(*Dense)
		if !ok {
			return nil, fmt.Errorf("model: cannot retype %T weight", w)
		}
		return NewDense(d.T, dt), nil
	}
	var err error
	if nm.LMHead, err = retype(nm.LMHead); err != nil {
		return nil, err
	}
	for _, blk := range nm.Blocks {
		if blk.Wq, err = retype(blk.Wq); err != nil {
			return nil, err
		}
		if blk.Wk, err = retype(blk.Wk); err != nil {
			return nil, err
		}
		if blk.Wv, err = retype(blk.Wv); err != nil {
			return nil, err
		}
		if blk.Wo, err = retype(blk.Wo); err != nil {
			return nil, err
		}
		mlps := []*MLPWeights{blk.MLP}
		if blk.Router != nil {
			if blk.Router, err = retype(blk.Router); err != nil {
				return nil, err
			}
			mlps = blk.Experts
		}
		for _, mlp := range mlps {
			if mlp == nil {
				continue
			}
			if mlp.WGate, err = retype(mlp.WGate); err != nil {
				return nil, err
			}
			if mlp.WUp, err = retype(mlp.WUp); err != nil {
				return nil, err
			}
			if mlp.WDown, err = retype(mlp.WDown); err != nil {
				return nil, err
			}
		}
	}
	// Embeddings follow the model datatype as well.
	if dt != numerics.FP32 {
		for i, v := range nm.Embed.Data {
			nm.Embed.Data[i] = float32(numerics.Round(dt, float64(v)))
		}
	}
	return nm, nil
}
