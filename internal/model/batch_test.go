package model

import (
	"fmt"
	"testing"
)

// serialDecode runs toks through DecodeStep one at a time on st,
// recording the logits after every step.
func serialDecode(st *State, toks []int) [][]float32 {
	var out [][]float32
	for _, tok := range toks {
		out = append(out, append([]float32(nil), st.DecodeStep(tok)...))
	}
	return out
}

// recordingChecker counts and records CheckLinear calls — a stand-in for
// the ABFT checker that lets the tests assert per-row dispatch.
type recordingChecker struct {
	calls []hookKey
}

func (c *recordingChecker) CheckLinear(ref LayerRef, pos int, w Weight, in, out []float32) {
	c.calls = append(c.calls, hookKey{ref, pos})
}

// TestBatchStepGolden pins Batch.Step bit-for-bit to per-row DecodeStep:
// rows prefilled to different positions, decoding different token
// streams, over dense and MoE profiles. Logits after every step and the
// final KV caches must be identical to each row stepping alone.
func TestBatchStepGolden(t *testing.T) {
	for _, tc := range []struct {
		name string
		spec Spec
	}{
		{"dense", testSpec(QwenS)},
		{"moe", moeTestSpec(LlamaS)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m := MustBuild(tc.spec)
			vocab := tc.spec.Config.Vocab
			trace := tc.spec.Config.IsMoE()

			// Three rows at ragged positions with distinct token streams.
			prompts := [][]int{promptOf(3, vocab), promptOf(7, vocab), promptOf(5, vocab)}
			streams := [][]int{
				{1, 9, 17, 2, 30},
				{4, 4, 11, 0, 23},
				{29, 6, 13, 19, 7},
			}

			prep := func() []*State {
				sts := make([]*State, len(prompts))
				for i, p := range prompts {
					sts[i] = m.NewState()
					if trace {
						sts[i].EnableExpertTrace()
					}
					sts[i].Prefill(p)
				}
				return sts
			}

			want := make([][][]float32, len(prompts))
			serialSts := prep()
			for i, st := range serialSts {
				want[i] = serialDecode(st, streams[i])
			}

			batchSts := prep()
			b := m.NewBatch(len(prompts) + 2) // spare capacity: partial batches
			rows := make([]*DecodeRow, len(batchSts))
			for i, st := range batchSts {
				rows[i] = &DecodeRow{St: st, Logits: make([]float32, vocab)}
			}
			for step := 0; step < len(streams[0]); step++ {
				for i, row := range rows {
					row.Tok = streams[i][step]
				}
				b.Step(rows)
				for i, row := range rows {
					for j, v := range row.Logits {
						if v != want[i][step][j] {
							t.Fatalf("row %d step %d logit %d: batch %g serial %g",
								i, step, j, v, want[i][step][j])
						}
					}
				}
			}
			for i := range serialSts {
				if err := statesEqual(serialSts[i], batchSts[i]); err != nil {
					t.Fatalf("row %d state: %v", i, err)
				}
			}
		})
	}
}

// TestBatchStepPerRowHooks checks fault isolation: a mutating hook on one
// row must corrupt exactly that row's output (identically to the same
// hook on a serial run) and leave sibling rows bit-identical to clean
// serial runs. Each row's capture hook must also see only its own
// positions.
func TestBatchStepPerRowHooks(t *testing.T) {
	spec := testSpec(QwenS)
	m := MustBuild(spec)
	vocab := spec.Config.Vocab
	prompts := [][]int{promptOf(4, vocab), promptOf(6, vocab)}
	toks := []int{3, 21, 8}
	target := LayerRef{0, KindUp, -1}
	faultPos := len(prompts[0]) + 1 // second decoded position of row 0
	fault := func(ref LayerRef, pos int, out []float32) {
		if ref == target && pos == faultPos {
			out[3] += 40
		}
	}

	// Serial twins: row 0 with the hook installed on the model, row 1 clean.
	st0 := m.NewState()
	st0.Prefill(prompts[0])
	m.AddHook(fault)
	wantFaulty := serialDecode(st0, toks)
	m.ClearHooks()
	st1 := m.NewState()
	st1.Prefill(prompts[1])
	wantClean := serialDecode(st1, toks)

	// Batched: hook rides on row 0 only; row 1 carries a capture hook.
	caps := map[hookKey][]float32{}
	b0 := m.NewState()
	b0.Prefill(prompts[0])
	b1 := m.NewState()
	b1.Prefill(prompts[1])
	rows := []*DecodeRow{
		{St: b0, Hooks: []Hook{fault}, Logits: make([]float32, vocab)},
		{St: b1, Hooks: []Hook{captureHook(caps)}, Logits: make([]float32, vocab)},
	}
	bt := m.NewBatch(2)
	for step, tok := range toks {
		rows[0].Tok, rows[1].Tok = tok, tok
		bt.Step(rows)
		for j := range rows[0].Logits {
			if rows[0].Logits[j] != wantFaulty[step][j] {
				t.Fatalf("faulted row step %d logit %d diverges from serial faulted run", step, j)
			}
			if rows[1].Logits[j] != wantClean[step][j] {
				t.Fatalf("clean sibling step %d logit %d contaminated", step, j)
			}
		}
	}
	// Row 1's hook saw only row-1 positions.
	for k := range caps {
		if k.pos < len(prompts[1]) || k.pos >= len(prompts[1])+len(toks) {
			t.Fatalf("row 1 hook observed foreign position %d", k.pos)
		}
	}
	if len(caps) == 0 {
		t.Fatal("row hook never fired")
	}
}

// TestBatchStepPerRowChecker checks checker dispatch: only the row
// carrying a checker is checked, at exactly the (layer, position) sites
// its serial run would visit.
func TestBatchStepPerRowChecker(t *testing.T) {
	spec := testSpec(FalconS)
	m := MustBuild(spec)
	vocab := spec.Config.Vocab
	prompt := promptOf(5, vocab)
	toks := []int{2, 12}

	// Serial reference: checker armed on the model.
	ref := &recordingChecker{}
	st := m.NewState()
	st.Prefill(prompt)
	m.SetChecker(ref)
	serialDecode(st, toks)
	m.SetChecker(nil)

	got := &recordingChecker{}
	b0 := m.NewState()
	b0.Prefill(prompt)
	b1 := m.NewState()
	b1.Prefill(prompt)
	rows := []*DecodeRow{
		{St: b0, Checker: got, Logits: make([]float32, vocab)},
		{St: b1, Logits: make([]float32, vocab)},
	}
	bt := m.NewBatch(2)
	for _, tok := range toks {
		rows[0].Tok, rows[1].Tok = tok, tok
		bt.Step(rows)
	}
	if len(got.calls) != len(ref.calls) {
		t.Fatalf("checked row saw %d checks, serial saw %d", len(got.calls), len(ref.calls))
	}
	for i := range got.calls {
		if got.calls[i] != ref.calls[i] {
			t.Fatalf("check %d: batch %+v serial %+v", i, got.calls[i], ref.calls[i])
		}
	}
}

// TestBatchStepIgnoresModelHooks: hooks registered on the model itself
// must not fire during Batch.Step — per-row contexts are the only
// observation channel, so a scheduler cannot accidentally leak one
// trial's instrumentation into every row.
func TestBatchStepIgnoresModelHooks(t *testing.T) {
	spec := testSpec(QwenS)
	m := MustBuild(spec)
	vocab := spec.Config.Vocab
	st := m.NewState()
	st.Prefill(promptOf(4, vocab))
	want := serialDecode(st, []int{5})

	b0 := m.NewState()
	b0.Prefill(promptOf(4, vocab))
	fired := false
	m.AddHook(func(ref LayerRef, pos int, out []float32) { fired = true })
	defer m.ClearHooks()
	rows := []*DecodeRow{{St: b0, Tok: 5, Logits: make([]float32, vocab)}}
	m.NewBatch(1).Step(rows)
	if fired {
		t.Fatal("model-level hook fired during Batch.Step")
	}
	for j := range want[0] {
		if rows[0].Logits[j] != want[0][j] {
			t.Fatal("batch output diverges from serial")
		}
	}
}

// TestBatchStepGuards covers the contract panics: over-capacity batches,
// context overflow, wrong logits buffer, and a state bound to a foreign
// model.
func TestBatchStepGuards(t *testing.T) {
	spec := testSpec(QwenS)
	m := MustBuild(spec)
	vocab := spec.Config.Vocab
	mkRow := func() *DecodeRow {
		st := m.NewState()
		st.Prefill(promptOf(2, vocab))
		return &DecodeRow{St: st, Tok: 1, Logits: make([]float32, vocab)}
	}
	expectPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}

	expectPanic("capacity", func() {
		m.NewBatch(1).Step([]*DecodeRow{mkRow(), mkRow()})
	})
	expectPanic("overflow", func() {
		r := mkRow()
		r.St.Pos = spec.Config.MaxSeq
		m.NewBatch(1).Step([]*DecodeRow{r})
	})
	expectPanic("logits-len", func() {
		r := mkRow()
		r.Logits = r.Logits[:vocab-1]
		m.NewBatch(1).Step([]*DecodeRow{r})
	})
	expectPanic("foreign-state", func() {
		other := MustBuild(testSpec(QwenS))
		r := mkRow()
		r.St = other.NewState()
		r.St.Prefill([]int{1})
		m.NewBatch(1).Step([]*DecodeRow{r})
	})
	expectPanic("zero-capacity", func() { m.NewBatch(0) })

	// Empty batch is a no-op, not a panic.
	m.NewBatch(1).Step(nil)

	// Out-of-range tokens clamp to 0, as DecodeStep does.
	st := m.NewState()
	st.Prefill(promptOf(2, vocab))
	want := append([]float32(nil), st.DecodeStep(vocab+5)...)
	r := mkRow()
	r.Tok = vocab + 5
	m.NewBatch(1).Step([]*DecodeRow{r})
	for j := range want {
		if r.Logits[j] != want[j] {
			t.Fatal(fmt.Sprintf("clamped token logit %d diverges", j))
		}
	}
}
