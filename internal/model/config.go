// Package model implements the decoder-only transformer inference engine
// under study: Llama-architecture blocks (RMSNorm → multi-head causal
// attention with RoPE and a KV cache → RMSNorm → SwiGLU MLP), an optional
// top-k Mixture-of-Experts MLP with a router ("gate") layer, bit-exact
// datatype emulation, and forward hooks that the fault injector and the
// propagation tracer attach to (the PyTorch-hook mechanism of §3.2).
package model

import (
	"fmt"

	"repro/internal/numerics"
)

// Config describes a model architecture. All sizes are in elements, not
// bytes. The zero value is not usable; construct configs explicitly or
// via the profile helpers in profiles.go.
type Config struct {
	Name     string
	Vocab    int
	DModel   int // embedding width; must be divisible by NHeads
	NHeads   int
	NBlocks  int
	FFHidden int // SwiGLU hidden width (per expert, for MoE)
	MaxSeq   int
	Eps      float32 // RMSNorm epsilon
	DType    numerics.DType
	// RopeTheta is the rotary base frequency (Llama uses 10000 or 500000).
	RopeTheta float64
	// NumExperts > 0 replaces every MLP with a NumExperts-expert MoE
	// routed top-TopK by a gate layer (Figure 14's setup uses 2 of 8).
	NumExperts int
	TopK       int
}

// Validate reports a descriptive error for an inconsistent config.
func (c *Config) Validate() error {
	switch {
	case c.Vocab < token2: // at least reserved tokens + 1
		return fmt.Errorf("model: vocab %d too small", c.Vocab)
	case c.DModel <= 0 || c.NHeads <= 0 || c.DModel%c.NHeads != 0:
		return fmt.Errorf("model: d_model %d not divisible by heads %d", c.DModel, c.NHeads)
	case c.DModel/c.NHeads%2 != 0:
		return fmt.Errorf("model: head dim %d must be even for RoPE", c.DModel/c.NHeads)
	case c.NBlocks <= 0:
		return fmt.Errorf("model: need at least one block, got %d", c.NBlocks)
	case c.FFHidden <= 0:
		return fmt.Errorf("model: ff hidden %d invalid", c.FFHidden)
	case c.MaxSeq <= 0:
		return fmt.Errorf("model: max seq %d invalid", c.MaxSeq)
	case c.NumExperts < 0 || (c.NumExperts > 0 && (c.TopK <= 0 || c.TopK > c.NumExperts)):
		return fmt.Errorf("model: MoE top-%d of %d experts invalid", c.TopK, c.NumExperts)
	}
	return nil
}

const token2 = 5 // reserved ids + at least one real token

// HeadDim returns DModel / NHeads.
func (c *Config) HeadDim() int { return c.DModel / c.NHeads }

// IsMoE reports whether the config uses Mixture-of-Experts MLPs.
func (c *Config) IsMoE() bool { return c.NumExperts > 0 }

// NumParams returns the parameter count (embeddings + blocks + lm head).
func (c *Config) NumParams() int {
	d, ff := c.DModel, c.FFHidden
	attn := 4 * d * d
	mlp := 3 * d * ff
	perBlock := attn + mlp + 2*d // + two norm gains
	if c.IsMoE() {
		perBlock = attn + c.NumExperts*mlp + d*c.NumExperts + 2*d
	}
	return c.Vocab*d + c.NBlocks*perBlock + d + d*c.Vocab
}

// LayerKind identifies a linear layer type within a transformer block,
// matching the paper's injection-site taxonomy (q/k/v/out projections,
// gate/up/down projections, and the MoE router "gate layer").
type LayerKind int

const (
	// KindQ is the query projection.
	KindQ LayerKind = iota
	// KindK is the key projection.
	KindK
	// KindV is the value projection.
	KindV
	// KindOut is the attention output projection (out_proj).
	KindOut
	// KindGate is the MLP gate projection (gate_proj of SwiGLU).
	KindGate
	// KindUp is the MLP up projection (up_proj).
	KindUp
	// KindDown is the MLP down projection (down_proj).
	KindDown
	// KindRouter is the MoE gate (router) layer of Observation #6.
	KindRouter
	// KindLMHead is the output vocabulary projection. It is a linear layer
	// but lies outside the transformer blocks, so the paper's injection
	// campaigns exclude it; it is addressable for completeness.
	KindLMHead

	// The remaining kinds address non-linear fault surfaces
	// (GoldenTransformer's modular injection targets): they are not
	// weights in the Weight-interface sense and never appear in
	// LinearLayers, but LayerRef can name them so fault sites, hooks,
	// and reports share one address space.

	// KindAttnNorm is the RMSNorm gain vector before attention.
	KindAttnNorm
	// KindMLPNorm is the RMSNorm gain vector before the MLP / MoE.
	KindMLPNorm
	// KindFinalNorm is the pre-LM-head RMSNorm gain (Block = -1).
	KindFinalNorm
	// KindEmbed is the token embedding table (Block = -1).
	KindEmbed
	// KindAttnAct addresses the transient post-attention activation row
	// (the concatenated head outputs before the out_proj GEMM) — an
	// activation surface, observable through attention hooks only.
	KindAttnAct

	numLayerKinds
)

// String returns the HuggingFace-style layer name.
func (k LayerKind) String() string {
	switch k {
	case KindQ:
		return "q_proj"
	case KindK:
		return "k_proj"
	case KindV:
		return "v_proj"
	case KindOut:
		return "out_proj"
	case KindGate:
		return "gate_proj"
	case KindUp:
		return "up_proj"
	case KindDown:
		return "down_proj"
	case KindRouter:
		return "router_gate"
	case KindLMHead:
		return "lm_head"
	case KindAttnNorm:
		return "attn_norm"
	case KindMLPNorm:
		return "mlp_norm"
	case KindFinalNorm:
		return "final_norm"
	case KindEmbed:
		return "embed_tokens"
	case KindAttnAct:
		return "attn_act"
	default:
		return fmt.Sprintf("LayerKind(%d)", int(k))
	}
}

// LayerRef addresses one linear layer instance: block index, kind, and
// expert index (-1 unless the layer belongs to an MoE expert).
type LayerRef struct {
	Block  int
	Kind   LayerKind
	Expert int
}

// String renders e.g. "block10.up_proj" or "block3.expert5.down_proj".
func (r LayerRef) String() string {
	if r.Expert >= 0 {
		return fmt.Sprintf("block%d.expert%d.%s", r.Block, r.Expert, r.Kind)
	}
	return fmt.Sprintf("block%d.%s", r.Block, r.Kind)
}
