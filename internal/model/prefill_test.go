package model

import (
	"fmt"
	"testing"
)

func moeTestSpec(fam Family) Spec {
	s := testSpec(fam)
	s.Config.Name = "t-moe"
	s.Config.NumExperts = 4
	s.Config.TopK = 2
	return s
}

// hookKey identifies one finishLinear call site.
type hookKey struct {
	ref LayerRef
	pos int
}

// captureHook records a copy of every hooked vector by (layer, position).
// Batched prefill reorders calls layer-major, so equality is checked per
// call site rather than by global sequence.
func captureHook(dst map[hookKey][]float32) Hook {
	return func(ref LayerRef, pos int, out []float32) {
		dst[hookKey{ref, pos}] = append([]float32(nil), out...)
	}
}

func promptOf(n, vocab int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = (i*7 + 3) % vocab
	}
	return p
}

// runPrefill executes one prefill (sequential or batched) and returns the
// logits, final state, and per-site hook captures.
func runPrefill(t *testing.T, spec Spec, prompt []int, sequential, hooked, trace bool) ([]float32, *State, map[hookKey][]float32) {
	t.Helper()
	m := MustBuild(spec)
	m.SetSequentialPrefill(sequential)
	caps := map[hookKey][]float32{}
	if hooked {
		m.AddHook(captureHook(caps))
	}
	st := m.NewState()
	if trace {
		st.EnableExpertTrace()
	}
	logits := append([]float32(nil), st.Prefill(prompt)...)
	return logits, st, caps
}

func statesEqual(a, b *State) error {
	if a.Pos != b.Pos {
		return fmt.Errorf("Pos %d vs %d", a.Pos, b.Pos)
	}
	for bi := range a.K {
		n := a.Pos * a.m.Cfg.DModel
		for i := 0; i < n; i++ {
			if a.K[bi].Data[i] != b.K[bi].Data[i] {
				return fmt.Errorf("K[%d][%d] %g vs %g", bi, i, a.K[bi].Data[i], b.K[bi].Data[i])
			}
			if a.V[bi].Data[i] != b.V[bi].Data[i] {
				return fmt.Errorf("V[%d][%d] %g vs %g", bi, i, a.V[bi].Data[i], b.V[bi].Data[i])
			}
		}
	}
	if len(a.ExpertTrace) != len(b.ExpertTrace) {
		return fmt.Errorf("trace blocks %d vs %d", len(a.ExpertTrace), len(b.ExpertTrace))
	}
	for i := range a.ExpertTrace {
		if len(a.ExpertTrace[i]) != len(b.ExpertTrace[i]) {
			return fmt.Errorf("trace[%d] len %d vs %d", i, len(a.ExpertTrace[i]), len(b.ExpertTrace[i]))
		}
		for j := range a.ExpertTrace[i] {
			if a.ExpertTrace[i][j] != b.ExpertTrace[i][j] {
				return fmt.Errorf("trace[%d][%d] %d vs %d", i, j, a.ExpertTrace[i][j], b.ExpertTrace[i][j])
			}
		}
	}
	return nil
}

// TestBatchedPrefillGolden pins the batched prefill bit-for-bit to the
// seed's per-token loop: logits, KV cache, expert traces, and every
// hooked (layer, position) vector must be identical, for dense and MoE
// profiles, with and without hooks installed (the two LM-head branches).
func TestBatchedPrefillGolden(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
	}{
		{"dense-qwens", testSpec(QwenS)},
		{"dense-falcons", testSpec(FalconS)},
		{"moe-qwens", moeTestSpec(QwenS)},
	}
	for _, tc := range cases {
		for _, hooked := range []bool{false, true} {
			name := tc.name
			if hooked {
				name += "-hooked"
			}
			t.Run(name, func(t *testing.T) {
				trace := tc.spec.Config.IsMoE()
				prompt := promptOf(17, tc.spec.Config.Vocab)
				wantLogits, wantSt, wantCaps := runPrefill(t, tc.spec, prompt, true, hooked, trace)
				gotLogits, gotSt, gotCaps := runPrefill(t, tc.spec, prompt, false, hooked, trace)
				for i := range wantLogits {
					if wantLogits[i] != gotLogits[i] {
						t.Fatalf("logit %d: %g vs %g", i, wantLogits[i], gotLogits[i])
					}
				}
				if err := statesEqual(wantSt, gotSt); err != nil {
					t.Fatal(err)
				}
				if len(wantCaps) != len(gotCaps) {
					t.Fatalf("hook call sites %d vs %d", len(wantCaps), len(gotCaps))
				}
				for k, wv := range wantCaps {
					gv, ok := gotCaps[k]
					if !ok {
						t.Fatalf("batched path missed hook site %+v", k)
					}
					for i := range wv {
						if wv[i] != gv[i] {
							t.Fatalf("hook %+v elem %d: %g vs %g", k, i, wv[i], gv[i])
						}
					}
				}
			})
		}
	}
}

// TestBatchedPrefillMidContext checks prefill appended after existing
// context (a second Prefill on a warm state) stays identical to the
// sequential path — positions, RoPE angles, and the causal window all
// shift by the existing Pos.
func TestBatchedPrefillMidContext(t *testing.T) {
	spec := testSpec(LlamaS)
	p1 := promptOf(5, spec.Config.Vocab)
	p2 := promptOf(9, spec.Config.Vocab)

	run := func(sequential bool) ([]float32, *State) {
		m := MustBuild(spec)
		m.SetSequentialPrefill(sequential)
		st := m.NewState()
		st.Prefill(p1)
		logits := append([]float32(nil), st.Prefill(p2)...)
		return logits, st
	}
	wantLogits, wantSt := run(true)
	gotLogits, gotSt := run(false)
	for i := range wantLogits {
		if wantLogits[i] != gotLogits[i] {
			t.Fatalf("logit %d: %g vs %g", i, wantLogits[i], gotLogits[i])
		}
	}
	if err := statesEqual(wantSt, gotSt); err != nil {
		t.Fatal(err)
	}
}

// TestBatchedPrefillHookMutationPropagates ensures a mutating hook (the
// fault-injection mechanism) applied at a prompt position changes the
// batched result exactly as it changes the sequential one.
func TestBatchedPrefillHookMutationPropagates(t *testing.T) {
	spec := testSpec(QwenS)
	prompt := promptOf(11, spec.Config.Vocab)
	// Block 0 so the corrupted position's later-block KV rows carry the
	// mutation into the final position's logits.
	target := LayerRef{0, KindUp, -1}

	run := func(sequential bool) []float32 {
		m := MustBuild(spec)
		m.SetSequentialPrefill(sequential)
		m.AddHook(func(ref LayerRef, pos int, out []float32) {
			if ref == target && pos == 6 {
				out[3] += 40
			}
		})
		st := m.NewState()
		return append([]float32(nil), st.Prefill(prompt)...)
	}
	want := run(true)
	got := run(false)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("logit %d: %g vs %g", i, want[i], got[i])
		}
	}
	// Sanity: the mutation must actually reach the logits.
	m := MustBuild(spec)
	clean := m.NewState().Prefill(prompt)
	same := true
	for i := range clean {
		if clean[i] != got[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("hook mutation had no effect on prefill output")
	}
}

// TestBatchedPrefillSingleTokenAndOverflow covers the degenerate paths:
// a one-token prompt routes through DecodeStep, and an over-long prompt
// panics before touching the KV cache.
func TestBatchedPrefillSingleTokenAndOverflow(t *testing.T) {
	spec := testSpec(QwenS)
	m := MustBuild(spec)
	st := m.NewState()
	a := append([]float32(nil), st.Prefill([]int{4})...)
	m2 := MustBuild(spec)
	st2 := m2.NewState()
	b := st2.DecodeStep(4)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("single-token prefill differs from DecodeStep")
		}
	}

	defer func() {
		if recover() == nil {
			t.Fatal("expected context-overflow panic")
		}
	}()
	st.Prefill(promptOf(spec.Config.MaxSeq, spec.Config.Vocab))
}

// TestCloneSharedForwardIdentical checks a weight-sharing clone decodes
// exactly like its parent while reporting SharesWeights.
func TestCloneSharedForwardIdentical(t *testing.T) {
	for _, spec := range []Spec{testSpec(QwenS), moeTestSpec(FalconS)} {
		parent := MustBuild(spec)
		clone := parent.CloneShared()
		if !clone.SharesWeights() || parent.SharesWeights() {
			t.Fatal("SharesWeights flags wrong")
		}
		prompt := promptOf(13, spec.Config.Vocab)
		a := append([]float32(nil), parent.NewState().Prefill(prompt)...)
		b := clone.NewState().Prefill(prompt)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("shared clone logit %d: %g vs %g", i, a[i], b[i])
			}
		}
	}
}

// TestLayerForWritePrivatizes checks the copy-on-write contract: a write
// through LayerForWrite on a shared clone must not leak to the parent or
// to sibling clones, and repeated writes reuse the same private copy.
func TestLayerForWritePrivatizes(t *testing.T) {
	parent := MustBuild(testSpec(QwenS))
	c1 := parent.CloneShared()
	c2 := parent.CloneShared()
	ref := LayerRef{0, KindQ, -1}

	before, _ := parent.Layer(ref)
	orig := before.Get(0, 0)

	w, err := c1.LayerForWrite(ref)
	if err != nil {
		t.Fatal(err)
	}
	restore := w.FlipBits(0, 0, []int{0, 1})
	flipped := w.Get(0, 0)
	if flipped == orig {
		t.Fatal("flip had no effect")
	}
	for name, m := range map[string]*Model{"parent": parent, "sibling": c2} {
		lw, _ := m.Layer(ref)
		if lw.Get(0, 0) != orig {
			t.Fatalf("%s weight mutated through shared clone", name)
		}
	}
	restore()

	// A second write to the same ref must hit the already-private copy.
	w2, err := c1.LayerForWrite(ref)
	if err != nil {
		t.Fatal(err)
	}
	if w2 != w {
		t.Fatal("second LayerForWrite re-copied an already-private weight")
	}
	// The private copy must carry identical values after restore.
	if w2.Get(0, 0) != orig {
		t.Fatal("restore did not return private copy to original value")
	}

	// LayerForWrite on a deep model is a plain Layer lookup.
	dw, err := parent.LayerForWrite(ref)
	if err != nil {
		t.Fatal(err)
	}
	if dw != before {
		t.Fatal("LayerForWrite on a non-shared model must not copy")
	}
}

// TestForkForCrossModel checks snapshot forking onto a clone: generation
// from the fork on the clone matches generation continued on the parent.
func TestForkForCrossModel(t *testing.T) {
	spec := testSpec(QwenS)
	parent := MustBuild(spec)
	prompt := promptOf(8, spec.Config.Vocab)

	st := parent.NewState()
	st.Prefill(prompt)
	snap := st.Fork()

	a := append([]float32(nil), st.DecodeStep(5)...)

	clone := parent.CloneShared()
	st2 := snap.ForkFor(clone)
	b := st2.DecodeStep(5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("forked decode logit %d: %g vs %g", i, a[i], b[i])
		}
	}

	other := MustBuild(testSpec(FalconS))
	other.Cfg.MaxSeq = spec.Config.MaxSeq + 8
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("ForkFor across architectures must panic")
			}
		}()
		snap.ForkFor(other)
	}()
}
