// Package token provides the vocabulary and word-level tokenizer shared by
// the synthetic task suites. Real LLM tokenizers (BPE) are replaced by a
// closed-vocabulary word tokenizer: every task in this repository is
// generated from known wordlists, so subword merging adds nothing to the
// fault-propagation behaviour under study while complicating output
// inspection.
package token

import (
	"fmt"
	"sort"
	"strings"
)

// Reserved token ids present in every vocabulary.
const (
	PAD = 0 // padding (unused by inference, kept for training batches)
	BOS = 1 // beginning of sequence
	EOS = 2 // end of sequence
	UNK = 3 // unknown word
)

// NumReserved is the count of reserved ids.
const NumReserved = 4

// Vocab is an immutable bidirectional word↔id mapping.
type Vocab struct {
	words []string
	ids   map[string]int
}

// NewVocab builds a vocabulary containing the reserved tokens followed by
// words (deduplicated, order preserved).
func NewVocab(words []string) *Vocab {
	v := &Vocab{
		words: []string{"<pad>", "<bos>", "<eos>", "<unk>"},
		ids:   make(map[string]int, len(words)+NumReserved),
	}
	for i, w := range v.words {
		v.ids[w] = i
	}
	for _, w := range words {
		if _, ok := v.ids[w]; ok {
			continue
		}
		v.ids[w] = len(v.words)
		v.words = append(v.words, w)
	}
	return v
}

// Size returns the number of tokens including reserved ids.
func (v *Vocab) Size() int { return len(v.words) }

// ID returns the id of word, or UNK if absent.
func (v *Vocab) ID(word string) int {
	if id, ok := v.ids[word]; ok {
		return id
	}
	return UNK
}

// Has reports whether word is in the vocabulary.
func (v *Vocab) Has(word string) bool {
	_, ok := v.ids[word]
	return ok
}

// Word returns the word for id; out-of-range ids render as <inv:N> so a
// corrupted generation remains printable.
func (v *Vocab) Word(id int) string {
	if id < 0 || id >= len(v.words) {
		return fmt.Sprintf("<inv:%d>", id)
	}
	return v.words[id]
}

// Words returns a copy of the vocabulary in id order.
func (v *Vocab) Words() []string {
	out := make([]string, len(v.words))
	copy(out, v.words)
	return out
}

// Encode tokenizes text (whitespace-separated words) into ids, without
// BOS/EOS framing.
func (v *Vocab) Encode(text string) []int {
	fields := strings.Fields(text)
	ids := make([]int, len(fields))
	for i, w := range fields {
		ids[i] = v.ID(w)
	}
	return ids
}

// EncodeWords maps a word slice to ids.
func (v *Vocab) EncodeWords(words []string) []int {
	ids := make([]int, len(words))
	for i, w := range words {
		ids[i] = v.ID(w)
	}
	return ids
}

// Decode renders ids as a space-joined string, stopping at EOS and
// skipping BOS/PAD.
func (v *Vocab) Decode(ids []int) string {
	var b strings.Builder
	for _, id := range ids {
		if id == EOS {
			break
		}
		if id == BOS || id == PAD {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(v.Word(id))
	}
	return b.String()
}

// DecodeAll renders every id (including specials, not stopping at EOS);
// used when inspecting corrupted outputs.
func (v *Vocab) DecodeAll(ids []int) string {
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = v.Word(id)
	}
	return strings.Join(parts, " ")
}

// Merge returns a vocabulary containing the union of the word sets of all
// given vocabularies (reserved tokens first, then words sorted for
// determinism).
func Merge(vocabs ...*Vocab) *Vocab {
	set := make(map[string]bool)
	for _, v := range vocabs {
		for _, w := range v.words[NumReserved:] {
			set[w] = true
		}
	}
	words := make([]string, 0, len(set))
	for w := range set {
		words = append(words, w)
	}
	sort.Strings(words)
	return NewVocab(words)
}
