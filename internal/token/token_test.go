package token

import (
	"testing"
	"testing/quick"
)

func TestReservedIDs(t *testing.T) {
	v := NewVocab([]string{"hello", "world"})
	if v.ID("<pad>") != PAD || v.ID("<bos>") != BOS || v.ID("<eos>") != EOS || v.ID("<unk>") != UNK {
		t.Fatal("reserved ids misplaced")
	}
	if v.Size() != NumReserved+2 {
		t.Fatalf("size = %d", v.Size())
	}
}

func TestEncodeDecodeRoundtrip(t *testing.T) {
	v := NewVocab([]string{"a", "b", "c"})
	ids := v.Encode("a c b b")
	if got := v.Decode(ids); got != "a c b b" {
		t.Fatalf("roundtrip = %q", got)
	}
}

func TestUnknownWords(t *testing.T) {
	v := NewVocab([]string{"a"})
	ids := v.Encode("a zzz")
	if ids[1] != UNK {
		t.Fatal("unknown word should map to UNK")
	}
	if v.Has("zzz") {
		t.Fatal("Has should be false for unknown")
	}
}

func TestDecodeStopsAtEOS(t *testing.T) {
	v := NewVocab([]string{"a", "b"})
	ids := []int{v.ID("a"), EOS, v.ID("b")}
	if got := v.Decode(ids); got != "a" {
		t.Fatalf("Decode should stop at EOS, got %q", got)
	}
	if got := v.DecodeAll(ids); got != "a <eos> b" {
		t.Fatalf("DecodeAll = %q", got)
	}
}

func TestDecodeSkipsSpecials(t *testing.T) {
	v := NewVocab([]string{"x"})
	if got := v.Decode([]int{BOS, PAD, v.ID("x")}); got != "x" {
		t.Fatalf("Decode = %q", got)
	}
}

func TestInvalidIDPrintable(t *testing.T) {
	v := NewVocab([]string{"x"})
	if got := v.Word(999); got != "<inv:999>" {
		t.Fatalf("Word(999) = %q", got)
	}
	if got := v.Word(-1); got != "<inv:-1>" {
		t.Fatalf("Word(-1) = %q", got)
	}
}

func TestDeduplication(t *testing.T) {
	v := NewVocab([]string{"a", "a", "b", "a"})
	if v.Size() != NumReserved+2 {
		t.Fatalf("dedup failed, size %d", v.Size())
	}
}

func TestMerge(t *testing.T) {
	a := NewVocab([]string{"x", "y"})
	b := NewVocab([]string{"y", "z"})
	m := Merge(a, b)
	for _, w := range []string{"x", "y", "z"} {
		if !m.Has(w) {
			t.Fatalf("merged vocab missing %q", w)
		}
	}
	if m.Size() != NumReserved+3 {
		t.Fatalf("merged size = %d", m.Size())
	}
}

// Property: Word(ID(w)) == w for every vocabulary word.
func TestWordIDInverse(t *testing.T) {
	v := NewVocab([]string{"alpha", "beta", "gamma", "delta"})
	f := func(idx uint8) bool {
		w := v.Words()[int(idx)%v.Size()]
		return v.Word(v.ID(w)) == w
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWordsIsCopy(t *testing.T) {
	v := NewVocab([]string{"a"})
	ws := v.Words()
	ws[0] = "mutated"
	if v.Word(0) != "<pad>" {
		t.Fatal("Words leaked internal storage")
	}
}
