package lint

import (
	"go/ast"
	"go/types"
)

// modelStateTypes are the named types whose reachable memory belongs to
// the model: a store through any of them from inside a hook would let an
// observer perturb the computation it observes. Batch and DecodeRow are
// the continuous-batching decode state (PR 6): a hook runs on behalf of
// one row, so writing through a Batch or another row's DecodeRow would
// perturb co-scheduled trials.
var modelStateTypes = []string{"Model", "Block", "MLPWeights", "Tensor", "Dense", "Weight", "Batch", "DecodeRow"}

// AnalyzerHookPurity enforces the "observational by construction"
// contract of forward hooks and linear checkers: a hook may read layer
// outputs and mutate its own output row (that is how fault injection and
// mitigation work), but a store that reaches model-owned memory — weight
// tensors, blocks, the model struct — is a finding, as is a checker
// writing to its input activation row. PR 4's golden-equivalence tests
// catch such violations after the fact; this catches them at review.
var AnalyzerHookPurity = &Analyzer{
	Name: "hookpurity",
	Doc:  "hooks and checkers may write only their own output row, never model-reachable state",
	Run:  runHookPurity,
}

func runHookPurity(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body == nil {
					return true
				}
				if p.isHookSignature(n.Type) {
					p.checkHookBody(n.Body, p.hookParams(n.Type, 2, -1))
					return false
				}
				if n.Name.Name == "CheckLinear" && p.isCheckerSignature(n.Type) {
					p.checkHookBody(n.Body, p.hookParams(n.Type, 4, 3))
					return false
				}
			case *ast.FuncLit:
				if p.isHookSignature(n.Type) {
					p.checkHookBody(n.Body, p.hookParams(n.Type, 2, -1))
					return false
				}
			}
			return true
		})
	}
}

// hookCtx carries the parameter objects the purity rules special-case:
// out may be written (in place is the injection/mitigation mechanism),
// in must not be.
type hookCtx struct {
	out types.Object
	in  types.Object
}

// hookParams resolves the out (and for checkers, in) parameter objects.
func (p *Pass) hookParams(ft *ast.FuncType, outIdx, inIdx int) hookCtx {
	objs := p.paramObjs(ft)
	var hc hookCtx
	if outIdx >= 0 && outIdx < len(objs) {
		hc.out = objs[outIdx]
	}
	if inIdx >= 0 && inIdx < len(objs) {
		hc.in = objs[inIdx]
	}
	return hc
}

// isHookSignature matches model.Hook: func(LayerRef, int, []float32).
func (p *Pass) isHookSignature(ft *ast.FuncType) bool {
	if ft.Results != nil && len(ft.Results.List) > 0 {
		return false
	}
	params := p.sigParamTypes(ft)
	return len(params) == 3 &&
		typeNamed(params[0], "LayerRef") &&
		basicKind(params[1]) == types.Int &&
		isSliceOf(params[2], types.Float32)
}

// isCheckerSignature matches model.LinearChecker.CheckLinear:
// func(LayerRef, int, Weight, in, out []float32).
func (p *Pass) isCheckerSignature(ft *ast.FuncType) bool {
	params := p.sigParamTypes(ft)
	return len(params) == 5 &&
		typeNamed(params[0], "LayerRef") &&
		basicKind(params[1]) == types.Int &&
		isSliceOf(params[3], types.Float32) &&
		isSliceOf(params[4], types.Float32)
}

// checkHookBody walks one hook/checker body for impure stores.
func (p *Pass) checkHookBody(body *ast.BlockStmt, hc hookCtx) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				p.checkHookWrite(lhs, hc)
			}
		case *ast.IncDecStmt:
			p.checkHookWrite(n.X, hc)
		case *ast.CallExpr:
			p.checkHookCall(n)
		}
		return true
	})
}

// checkHookWrite flags a store whose target is model-reachable or the
// checker's input row.
func (p *Pass) checkHookWrite(lhs ast.Expr, hc hookCtx) {
	if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
		return
	}
	if root := rootIdent(lhs); root != nil {
		obj := p.objOf(root)
		if obj != nil && obj == hc.out {
			// Writing the own output row is the sanctioned mechanism
			// (fault hooks corrupt it, mitigations repair it).
			return
		}
		if obj != nil && hc.in != nil && obj == hc.in {
			p.Reportf(lhs.Pos(), "checker writes its input activation row: CheckLinear may repair out in place but must leave in untouched")
			return
		}
	}
	// A store is impure when the reference chain it writes through
	// passes model-owned memory (weights, blocks, tensors).
	if via := p.modelTypedSubexpr(lhs); via != "" {
		p.Reportf(lhs.Pos(), "hook stores to model-reachable memory (through %s): hooks observe the forward pass and may mutate only their own output row", via)
	}
}

// checkHookCall flags calls that mutate weights from inside a hook.
// Only method calls on model-owned types count: a pure value-level
// helper like numerics.FlipBits mutates nothing.
func (p *Pass) checkHookCall(call *ast.CallExpr) {
	name, recv := methodCall(call)
	switch name {
	case "FlipBits":
		if typeNamed(p.typeOf(recv), modelStateTypes...) {
			p.Reportf(call.Pos(), "hook calls FlipBits: weight mutation belongs to the fault injector (faults.Arm), never to an observer hook")
		}
	case "Set", "Fill":
		if typeNamed(p.typeOf(recv), "Tensor", "Dense") {
			p.Reportf(call.Pos(), "hook calls %s on a weight tensor: hooks must not mutate model parameters", name)
		}
	}
}

// modelTypedSubexpr reports the first step of an expression's reference
// chain whose type is model-owned (Model, Block, Tensor, Weight, ...),
// rendering it for the message; "" when the chain never touches one.
func (p *Pass) modelTypedSubexpr(e ast.Expr) string {
	for {
		if typeNamed(p.typeOf(e), modelStateTypes...) {
			if n := namedBase(p.typeOf(e)); n != nil {
				return "a " + n.Obj().Name() + " value"
			}
			return "model state"
		}
		switch x := e.(type) {
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.TypeAssertExpr:
			e = x.X
		default:
			return ""
		}
	}
}
