package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// modelStateTypes are the named types whose reachable memory belongs to
// the model: a store through any of them from inside a hook would let an
// observer perturb the computation it observes. Batch and DecodeRow are
// the continuous-batching decode state (PR 6): a hook runs on behalf of
// one row, so writing through a Batch or another row's DecodeRow would
// perturb co-scheduled trials.
var modelStateTypes = []string{"Model", "Block", "MLPWeights", "Tensor", "Dense", "Weight", "Batch", "DecodeRow"}

// AnalyzerHookPurity enforces the "observational by construction"
// contract of forward hooks and linear checkers: a hook may read layer
// outputs and mutate its own output row (that is how fault injection and
// mitigation work), but a store that reaches model-owned memory — weight
// tensors, blocks, the model struct — is a finding, as is a checker
// writing to its input activation row. PR 4's golden-equivalence tests
// catch such violations after the fact; this catches them at review.
var AnalyzerHookPurity = &Analyzer{
	Name: "hookpurity",
	Doc:  "hooks and checkers may write only their own output row, never model-reachable state",
	Run:  runHookPurity,
}

func runHookPurity(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body == nil {
					return true
				}
				if p.isHookSignature(n.Type) {
					p.checkHookBody(n.Body, p.hookParams(n.Type, 2, -1))
					return false
				}
				if n.Name.Name == "CheckLinear" && p.isCheckerSignature(n.Type) {
					p.checkHookBody(n.Body, p.hookParams(n.Type, 4, 3))
					return false
				}
			case *ast.FuncLit:
				if p.isHookSignature(n.Type) {
					p.checkHookBody(n.Body, p.hookParams(n.Type, 2, -1))
					return false
				}
			}
			return true
		})
	}
}

// hookCtx carries the parameter objects the purity rules special-case:
// out may be written (in place is the injection/mitigation mechanism),
// in must not be.
type hookCtx struct {
	out types.Object
	in  types.Object
}

// hookParams resolves the out (and for checkers, in) parameter objects.
func (p *Pass) hookParams(ft *ast.FuncType, outIdx, inIdx int) hookCtx {
	objs := p.paramObjs(ft)
	var hc hookCtx
	if outIdx >= 0 && outIdx < len(objs) {
		hc.out = objs[outIdx]
	}
	if inIdx >= 0 && inIdx < len(objs) {
		hc.in = objs[inIdx]
	}
	return hc
}

// isHookSignature matches model.Hook: func(LayerRef, int, []float32).
func (p *Pass) isHookSignature(ft *ast.FuncType) bool {
	if ft.Results != nil && len(ft.Results.List) > 0 {
		return false
	}
	params := p.sigParamTypes(ft)
	return len(params) == 3 &&
		typeNamed(params[0], "LayerRef") &&
		basicKind(params[1]) == types.Int &&
		isSliceOf(params[2], types.Float32)
}

// isCheckerSignature matches model.LinearChecker.CheckLinear:
// func(LayerRef, int, Weight, in, out []float32).
func (p *Pass) isCheckerSignature(ft *ast.FuncType) bool {
	params := p.sigParamTypes(ft)
	return len(params) == 5 &&
		typeNamed(params[0], "LayerRef") &&
		basicKind(params[1]) == types.Int &&
		isSliceOf(params[3], types.Float32) &&
		isSliceOf(params[4], types.Float32)
}

// checkHookBody walks one hook/checker body for impure stores.
func (p *Pass) checkHookBody(body *ast.BlockStmt, hc hookCtx) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				p.checkHookWrite(lhs, hc)
			}
			if len(n.Lhs) == len(n.Rhs) {
				for i, rhs := range n.Rhs {
					p.checkHookAlias(n.Lhs[i], rhs, hc)
				}
			}
		case *ast.IncDecStmt:
			p.checkHookWrite(n.X, hc)
		case *ast.SendStmt:
			if name, ok := p.rowAlias(n.Value, hc); ok {
				p.Reportf(n.Value.Pos(), "hook sends an alias of its %s row on a channel: copy the data first — a retained alias lets later forward passes mutate the recorded observation", name)
			}
		case *ast.CallExpr:
			p.checkHookCall(n)
		}
		return true
	})
}

// checkHookAlias flags a store that smuggles an alias of the hook's
// activation row (out, or a checker's in) into memory that outlives the
// call — a struct field, map/slice element, or pointer target. Span
// attributes and telemetry records built inside hooks are the motivating
// case: the recorded "observation" would silently change when a later
// forward pass reuses the row's backing array. Copying the data
// (append([]float32(nil), out...)) is always legal.
func (p *Pass) checkHookAlias(lhs, rhs ast.Expr, hc hookCtx) {
	name, ok := p.rowAlias(rhs, hc)
	if !ok || !escapingTarget(lhs) {
		return
	}
	p.Reportf(rhs.Pos(), "hook stores an alias of its %s row into escaping state: copy the data (append([]float32(nil), row...)) — a retained alias lets later forward passes mutate the recorded observation", name)
}

// rowAlias reports whether e evaluates to something sharing the backing
// array of the hook's out (or checker's in) parameter: the bare ident, a
// reslice of it, a composite literal or append retaining one, or its
// address. Element reads (out[i], float copies) and spreads
// (append(dst, out...) copies float32 values) are not aliases.
func (p *Pass) rowAlias(e ast.Expr, hc hookCtx) (string, bool) {
	switch x := e.(type) {
	case *ast.Ident:
		obj := p.objOf(x)
		if obj == nil {
			return "", false
		}
		if obj == hc.out {
			return "output", true
		}
		if hc.in != nil && obj == hc.in {
			return "input", true
		}
	case *ast.ParenExpr:
		return p.rowAlias(x.X, hc)
	case *ast.SliceExpr:
		return p.rowAlias(x.X, hc)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return p.rowAlias(x.X, hc)
		}
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if name, ok := p.rowAlias(el, hc); ok {
				return name, true
			}
		}
	case *ast.CallExpr:
		// append(dst, row) retains the slice header; append(dst, row...)
		// copies float32 elements and is the sanctioned escape hatch.
		if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "append" && x.Ellipsis == token.NoPos {
			for _, arg := range x.Args[1:] {
				if name, ok := p.rowAlias(arg, hc); ok {
					return name, true
				}
			}
		}
	}
	return "", false
}

// escapingTarget reports whether a store target outlives the hook call:
// a field, element, or pointer dereference. A plain local (row := out)
// stays in the frame and is the idiomatic way to name the row.
func escapingTarget(lhs ast.Expr) bool {
	switch x := lhs.(type) {
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	case *ast.ParenExpr:
		return escapingTarget(x.X)
	}
	return false
}

// checkHookWrite flags a store whose target is model-reachable or the
// checker's input row.
func (p *Pass) checkHookWrite(lhs ast.Expr, hc hookCtx) {
	if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
		return
	}
	if root := rootIdent(lhs); root != nil {
		obj := p.objOf(root)
		if obj != nil && obj == hc.out {
			// Writing the own output row is the sanctioned mechanism
			// (fault hooks corrupt it, mitigations repair it).
			return
		}
		if obj != nil && hc.in != nil && obj == hc.in {
			p.Reportf(lhs.Pos(), "checker writes its input activation row: CheckLinear may repair out in place but must leave in untouched")
			return
		}
	}
	// A store is impure when the reference chain it writes through
	// passes model-owned memory (weights, blocks, tensors).
	if via := p.modelTypedSubexpr(lhs); via != "" {
		p.Reportf(lhs.Pos(), "hook stores to model-reachable memory (through %s): hooks observe the forward pass and may mutate only their own output row", via)
	}
}

// checkHookCall flags calls that mutate weights from inside a hook.
// Only method calls on model-owned types count: a pure value-level
// helper like numerics.FlipBits mutates nothing.
func (p *Pass) checkHookCall(call *ast.CallExpr) {
	name, recv := methodCall(call)
	switch name {
	case "FlipBits":
		if typeNamed(p.typeOf(recv), modelStateTypes...) {
			p.Reportf(call.Pos(), "hook calls FlipBits: weight mutation belongs to the fault injector (faults.Arm), never to an observer hook")
		}
	case "Set", "Fill":
		if typeNamed(p.typeOf(recv), "Tensor", "Dense") {
			p.Reportf(call.Pos(), "hook calls %s on a weight tensor: hooks must not mutate model parameters", name)
		}
	}
}

// modelTypedSubexpr reports the first step of an expression's reference
// chain whose type is model-owned (Model, Block, Tensor, Weight, ...),
// rendering it for the message; "" when the chain never touches one.
func (p *Pass) modelTypedSubexpr(e ast.Expr) string {
	for {
		if typeNamed(p.typeOf(e), modelStateTypes...) {
			if n := namedBase(p.typeOf(e)); n != nil {
				return "a " + n.Obj().Name() + " value"
			}
			return "model state"
		}
		switch x := e.(type) {
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.TypeAssertExpr:
			e = x.X
		default:
			return ""
		}
	}
}
