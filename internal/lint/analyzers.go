package lint

import "strings"

// Analyzers returns the full analyzer suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		AnalyzerDeterminism,
		AnalyzerHookPurity,
		AnalyzerCOWWrite,
		AnalyzerChecksumWidth,
		AnalyzerCtxFlow,
		AnalyzerGuardedBy,
		AnalyzerAtomicMix,
		AnalyzerGoLife,
		AnalyzerWireSchema,
	}
}

// ByName resolves a subset of the suite by analyzer name; unknown names
// are reported in the error.
func ByName(names []string) ([]*Analyzer, error) {
	all := Analyzers()
	if len(names) == 0 {
		return all, nil
	}
	index := map[string]*Analyzer{}
	for _, a := range all {
		index[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range names {
		a, ok := index[n]
		if !ok {
			known := make([]string, len(all))
			for i, a := range all {
				known[i] = a.Name
			}
			return nil, &UnknownAnalyzerError{Name: n, Known: known}
		}
		out = append(out, a)
	}
	return out, nil
}

// UnknownAnalyzerError reports a -run name that matches no analyzer,
// listing the valid names so a typo never silently runs nothing.
type UnknownAnalyzerError struct {
	Name  string
	Known []string
}

func (e *UnknownAnalyzerError) Error() string {
	return "unknown analyzer " + e.Name + " (valid: " + strings.Join(e.Known, ", ") + ")"
}
