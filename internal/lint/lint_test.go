package lint

import (
	"strings"
	"testing"
)

func TestHasPathSuffix(t *testing.T) {
	cases := []struct {
		path, suffix string
		want         bool
	}{
		{"repro/internal/core", "internal/core", true},
		{"internal/core", "internal/core", true},
		{"repro/internal/corex", "internal/core", false},
		{"repro/xinternal/core", "internal/core", false},
		{"repro/internal/core/sub", "internal/core", false},
		{"core", "internal/core", false},
	}
	for _, c := range cases {
		if got := hasPathSuffix(c.path, c.suffix); got != c.want {
			t.Errorf("hasPathSuffix(%q, %q) = %v, want %v", c.path, c.suffix, got, c.want)
		}
	}
}

func TestByName(t *testing.T) {
	all, err := ByName(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 9 {
		t.Fatalf("expected 9 analyzers, got %d", len(all))
	}
	sub, err := ByName([]string{"cowwrite", "determinism"})
	if err != nil {
		t.Fatal(err)
	}
	if len(sub) != 2 || sub[0].Name != "cowwrite" || sub[1].Name != "determinism" {
		t.Fatalf("unexpected subset: %+v", sub)
	}
	_, err = ByName([]string{"nope"})
	if err == nil {
		t.Fatal("expected error for unknown analyzer")
	}
	// The error names the valid analyzers so a typo never silently runs
	// nothing.
	for _, name := range []string{"determinism", "guardedby", "atomicmix", "golife", "wireschema"} {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("unknown-analyzer error %q does not list %q", err, name)
		}
	}
}

func TestAnalyzerScopes(t *testing.T) {
	pkgIn := &Package{Path: "repro/internal/core", scoped: map[string]bool{}}
	pkgOut := &Package{Path: "repro/internal/report", scoped: map[string]bool{}}
	pkgOpted := &Package{Path: "anything", scoped: map[string]bool{"determinism": true}}
	a := AnalyzerDeterminism
	if !a.inScope(pkgIn) {
		t.Error("internal/core should be in determinism scope")
	}
	if a.inScope(pkgOut) {
		t.Error("internal/report should be outside determinism scope")
	}
	if !a.inScope(pkgOpted) {
		t.Error("//llmfi:scope should opt a package in")
	}
	if !AnalyzerHookPurity.inScope(pkgOut) {
		t.Error("nil scope should apply everywhere")
	}
}
