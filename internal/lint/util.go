package lint

import (
	"go/ast"
	"go/types"
)

// namedBase unwraps pointers and aliases and returns the named type
// behind t, or nil.
func namedBase(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n
	}
	if p, ok := t.(*types.Pointer); ok {
		if n, ok := p.Elem().(*types.Named); ok {
			return n
		}
	}
	return nil
}

// typeNamed reports whether t (possibly behind a pointer) is a named
// type with one of the given names, regardless of package. Name-based
// matching keeps the analyzers applicable to the self-contained corpus
// packages, which mirror the real types without importing them.
func typeNamed(t types.Type, names ...string) bool {
	n := namedBase(t)
	if n == nil {
		return false
	}
	got := n.Obj().Name()
	for _, want := range names {
		if got == want {
			return true
		}
	}
	return false
}

// isSliceOf reports whether t is a slice whose element type has the
// given basic kind.
func isSliceOf(t types.Type, kind types.BasicKind) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == kind
}

// basicKind returns the basic kind of t's underlying type, or
// types.Invalid.
func basicKind(t types.Type) types.BasicKind {
	if t == nil {
		return types.Invalid
	}
	if b, ok := t.Underlying().(*types.Basic); ok {
		return b.Kind()
	}
	return types.Invalid
}

// isInteger reports whether t is any integer type.
func isInteger(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// isFloat reports whether t is float32 or float64.
func isFloat(t types.Type) bool {
	k := basicKind(t)
	return k == types.Float32 || k == types.Float64
}

// rootIdent unwraps index, selector, star, and paren expressions and
// returns the identifier at the base of the reference chain (the x of
// x.f[i].g), or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.TypeAssertExpr:
			e = x.X
		case *ast.CallExpr:
			e = x.Fun
		default:
			return nil
		}
	}
}

// objOf resolves the object an identifier refers to (use or def).
func (p *Pass) objOf(id *ast.Ident) types.Object {
	if o := p.Info.Uses[id]; o != nil {
		return o
	}
	return p.Info.Defs[id]
}

// typeOf is Info.TypeOf, tolerant of nil.
func (p *Pass) typeOf(e ast.Expr) types.Type {
	if e == nil {
		return nil
	}
	return p.Info.TypeOf(e)
}

// calleeFunc resolves the *types.Func a call invokes (method or
// package-level function), or nil for indirect calls through variables.
func (p *Pass) calleeFunc(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if f, ok := p.objOf(fun.Sel).(*types.Func); ok {
			return f
		}
	case *ast.Ident:
		if f, ok := p.objOf(fun).(*types.Func); ok {
			return f
		}
	}
	return nil
}

// isPkgFunc reports whether call invokes the package-level function
// pkgPath.name (e.g. "time".Now).
func (p *Pass) isPkgFunc(call *ast.CallExpr, pkgPath, name string) bool {
	f := p.calleeFunc(call)
	if f == nil || f.Name() != name || f.Pkg() == nil {
		return false
	}
	return f.Pkg().Path() == pkgPath && f.Type().(*types.Signature).Recv() == nil
}

// methodCall returns the selector name of a method-style call ("Set" in
// w.Set(...)), together with the receiver expression, or "" when the
// call is not selector-shaped.
func methodCall(call *ast.CallExpr) (name string, recv ast.Expr) {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return sel.Sel.Name, sel.X
	}
	return "", nil
}

// paramObjs returns the declared objects of a function's parameters in
// order (nil entries for unnamed or blank parameters).
func (p *Pass) paramObjs(ft *ast.FuncType) []types.Object {
	var out []types.Object
	if ft.Params == nil {
		return out
	}
	for _, field := range ft.Params.List {
		if len(field.Names) == 0 {
			out = append(out, nil)
			continue
		}
		for _, name := range field.Names {
			out = append(out, p.Info.Defs[name])
		}
	}
	return out
}

// sigParamTypes flattens the parameter types of a function type
// expression as the type checker resolved them.
func (p *Pass) sigParamTypes(ft *ast.FuncType) []types.Type {
	var out []types.Type
	if ft.Params == nil {
		return out
	}
	for _, field := range ft.Params.List {
		t := p.typeOf(field.Type)
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		for i := 0; i < n; i++ {
			out = append(out, t)
		}
	}
	return out
}

// declaredWithin reports whether obj's declaration position lies inside
// node — "is this variable local to the loop/function body".
func declaredWithin(obj types.Object, node ast.Node) bool {
	return obj != nil && node != nil &&
		obj.Pos() != 0 && obj.Pos() >= node.Pos() && obj.Pos() <= node.End()
}
