// Package lint is a standard-library-only static analysis framework
// (go/parser + go/types, no golang.org/x/tools) that machine-checks the
// repository's campaign invariants: deterministic execution, observational
// hook purity, copy-on-write weight discipline, float64 checksum math,
// context-first cancellation, lock discipline (//llmfi:guardedby), atomic
// access consistency, goroutine lifecycle, and wire-schema hygiene. The
// cmd/llmfi-vet driver runs every analyzer
// over the module and exits non-zero on findings, so the invariants that
// make checkpoint/resume bit-identical (§3.3.4 seed fixing) and tracing
// observational are enforced at review time rather than discovered by
// golden-test failures after a campaign is corrupted.
//
// Findings are suppressed line-by-line with
//
//	//llmfi:allow <analyzer> <reason>
//
// placed on the offending line or the line directly above it. The reason
// is mandatory: an allow without one is itself a finding. A package
// outside an analyzer's default scope opts in with a file-level
// //llmfi:scope <analyzer> comment (the corpus tests use this).
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
)

// Diagnostic is one finding, positioned to the file:line:col the analyzer
// anchored it at.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one invariant check. Run inspects a type-checked package
// through the Pass and reports findings.
type Analyzer struct {
	// Name is the identifier used on the command line and in
	// //llmfi:allow annotations.
	Name string
	// Doc is a one-line description of the enforced invariant.
	Doc string
	// Scope lists import-path suffixes the analyzer applies to by
	// default (nil = every package). Packages outside the scope are
	// analyzed only when a file carries //llmfi:scope <name>.
	Scope []string
	// Run performs the analysis.
	Run func(*Pass)
}

// inScope reports whether the analyzer applies to pkg.
func (a *Analyzer) inScope(pkg *Package) bool {
	if pkg.scoped[a.Name] {
		return true
	}
	if a.Scope == nil {
		return true
	}
	for _, s := range a.Scope {
		if pkg.Path == s || hasPathSuffix(pkg.Path, s) {
			return true
		}
	}
	return false
}

// hasPathSuffix reports whether path ends in the slash-separated suffix.
func hasPathSuffix(path, suffix string) bool {
	if len(path) == len(suffix) {
		return path == suffix
	}
	return len(path) > len(suffix) &&
		path[len(path)-len(suffix)-1] == '/' &&
		path[len(path)-len(suffix):] == suffix
}

// Pass hands one package to one analyzer.
type Pass struct {
	*Package
	// Facts is the cross-package access-fact index shared by the
	// concurrency analyzers (guardedby, atomicmix). It is computed once
	// per Run over every loaded package, so an analyzer can relate a
	// field's accesses in this package to annotations or atomic
	// operations recorded in another.
	Facts    *Facts
	analyzer *Analyzer
	sink     *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.reportAt(p.Fset.Position(pos), format, args...)
}

// reportAt records a finding at an already-resolved position (the
// access-fact pass stores token.Position, not token.Pos).
func (p *Pass) reportAt(pos token.Position, format string, args ...any) {
	*p.sink = append(*p.sink, Diagnostic{
		Pos:      pos,
		Analyzer: p.analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Result is the outcome of running analyzers over packages.
type Result struct {
	// Findings are the surviving diagnostics, sorted by position.
	Findings []Diagnostic
	// Suppressed are findings silenced by a well-formed //llmfi:allow.
	Suppressed []Diagnostic
}

// Run applies every analyzer to every package (honoring scopes), then
// filters the raw findings through the //llmfi:allow annotations.
// Malformed annotations (missing reason, unknown analyzer) surface as
// findings of the pseudo-analyzer "allow".
func Run(pkgs []*Package, analyzers []*Analyzer) Result {
	// Allow names are validated against the full suite, not just the
	// analyzers selected for this run: a -run subset must not turn every
	// other analyzer's legitimate allows into "unknown analyzer" noise.
	known := map[string]bool{}
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var res Result
	var raw []Diagnostic
	facts := CollectFacts(pkgs)
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if !a.inScope(pkg) {
				continue
			}
			pass := &Pass{Package: pkg, Facts: facts, analyzer: a, sink: &raw}
			a.Run(pass)
		}
		res.Findings = append(res.Findings, pkg.allowProblems(known)...)
	}
	for _, d := range raw {
		pkg := pkgByFile(pkgs, d.Pos.Filename)
		if pkg != nil && pkg.allowed(d) {
			res.Suppressed = append(res.Suppressed, d)
			continue
		}
		res.Findings = append(res.Findings, d)
	}
	sortDiagnostics(res.Findings)
	sortDiagnostics(res.Suppressed)
	return res
}

// Audit returns every well-formed //llmfi:allow across pkgs in
// diagnostic order, plus findings for malformed or unknown-analyzer
// annotations (validated against the given suite). It is the engine of
// `llmfi-vet -suppressions`: the audited suppression budget in one list.
func Audit(pkgs []*Package, analyzers []*Analyzer) (allows []Allow, problems []Diagnostic) {
	// Same rationale as Run: validate against the full suite so a -run
	// subset does not misreport other analyzers' allows as unknown.
	known := map[string]bool{}
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	for _, pkg := range pkgs {
		allows = append(allows, pkg.Allows()...)
		problems = append(problems, pkg.allowProblems(known)...)
	}
	sort.Slice(allows, func(i, j int) bool {
		a, b := allows[i].Pos, allows[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	sortDiagnostics(problems)
	return allows, problems
}

// pkgByFile finds the package owning filename.
func pkgByFile(pkgs []*Package, filename string) *Package {
	for _, pkg := range pkgs {
		if pkg.fileSet[filename] {
			return pkg
		}
	}
	return nil
}

func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i].Pos, ds[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
}

// forEachFunc walks every function body in the package, calling fn with
// the declaration (nil for function literals reached outside any decl —
// impossible in practice, but kept total) and the body.
func forEachFunc(pkg *Package, fn func(decl *ast.FuncDecl, body *ast.BlockStmt)) {
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(fd, fd.Body)
			}
		}
	}
}
