package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// AnalyzerCtxFlow enforces the cancellation contract of the streaming
// runtime (PR 2): exported blocking entry points — Run-like functions —
// take a context.Context as their first parameter, and when the function
// body loops (trial loops, token loops, event pumps) at least one loop
// must consult the context (ctx.Err / ctx.Done / passing ctx onward), so
// a cancelled campaign stops within one iteration instead of running to
// completion. The serving engine and its load generator (PR 8) live
// under the same contract: SIGINT-driven graceful drain is ctx
// cancellation reaching the scheduler loop.
var AnalyzerCtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "exported Run-like functions take ctx first and check it inside loops",
	Scope: []string{
		"internal/core",
		"internal/experiments",
		"internal/serve",
		"internal/serve/loadgen",
	},
	Run: runCtxFlow,
}

// isRunLike matches the blocking entry-point names the contract covers.
func isRunLike(name string) bool {
	return name == "Run" || name == "Resume" || name == "Stream" ||
		strings.HasPrefix(name, "Run")
}

func runCtxFlow(p *Pass) {
	forEachFunc(p.Package, func(decl *ast.FuncDecl, body *ast.BlockStmt) {
		name := decl.Name.Name
		if !ast.IsExported(name) || !isRunLike(name) {
			return
		}
		params := p.sigParamTypes(decl.Type)
		if len(params) == 0 || !isContextType(params[0]) {
			p.Reportf(decl.Name.Pos(), "exported blocking function %s must take a context.Context as its first parameter so campaigns stay cancellable", name)
			return
		}
		objs := p.paramObjs(decl.Type)
		if len(objs) == 0 || objs[0] == nil {
			// Unnamed ctx parameter: it cannot be consulted at all.
			if p.hasLoop(body) {
				p.Reportf(decl.Name.Pos(), "%s discards its context (unnamed parameter) but contains loops: check ctx in the loop so cancellation stops the work", name)
			}
			return
		}
		ctxObj := objs[0]
		if p.hasLoop(body) && !p.loopConsultsCtx(body, ctxObj) {
			p.Reportf(decl.Name.Pos(), "%s loops without consulting its context: check ctx.Err/ctx.Done (or pass ctx to the loop body's callees) so cancellation stops within one iteration", name)
		}
	})
}

// isContextType matches context.Context.
func isContextType(t types.Type) bool {
	n := namedBase(t)
	return n != nil && n.Obj().Name() == "Context" &&
		n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "context"
}

// hasLoop reports whether body contains any for/range statement.
func (p *Pass) hasLoop(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			found = true
		}
		return !found
	})
	return found
}

// loopConsultsCtx reports whether any loop in body references ctxObj —
// a cancellation check or passing the context to a callee that performs
// one.
func (p *Pass) loopConsultsCtx(body *ast.BlockStmt, ctxObj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		var b *ast.BlockStmt
		switch n := n.(type) {
		case *ast.ForStmt:
			b = n.Body
		case *ast.RangeStmt:
			b = n.Body
		default:
			return true
		}
		ast.Inspect(b, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok && p.objOf(id) == ctxObj {
				found = true
			}
			return !found
		})
		return !found
	})
	return found
}
