package lint

import (
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// corpusCases maps each testdata corpus to the analyzer it exercises.
// Every corpus demonstrates at least one caught violation (a `want`
// expectation) and, unless noted, at least one honored suppression.
var corpusCases = []struct {
	dir            string
	analyzer       string
	wantSuppressed bool
}{
	{"determinism", "determinism", true},
	{"hookpurity", "hookpurity", true},
	{"hookpurity_serve", "hookpurity", false},
	{"hookpurity_obs", "hookpurity", false},
	{"cowwrite", "cowwrite", true},
	{"checksumwidth", "checksumwidth", true},
	{"checksumwidth_abft", "checksumwidth", false},
	{"ctxflow", "ctxflow", true},
	{"guardedby", "guardedby", true},
	{"atomicmix", "atomicmix", true},
	{"golife", "golife", true},
	{"wireschema", "wireschema", true},
}

// wantPattern is one expectation: a finding on file:line whose message
// matches re.
type wantPattern struct {
	re   *regexp.Regexp
	used bool
}

type lineKey struct {
	file string
	line int
}

var wantRE = regexp.MustCompile("`([^`]*)`")

// collectWants parses the corpus's `// want ...` and /* want ... */
// comments into per-line expectations. Patterns are backtick-quoted
// regexps; a line may carry several.
func collectWants(t *testing.T, pkg *Package) map[lineKey][]*wantPattern {
	t.Helper()
	wants := map[lineKey][]*wantPattern{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if strings.HasPrefix(text, "//") {
					text = strings.TrimPrefix(text, "//")
				} else {
					text = strings.TrimSuffix(strings.TrimPrefix(text, "/*"), "*/")
				}
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				k := lineKey{pos.Filename, pos.Line}
				for _, m := range wantRE.FindAllStringSubmatch(text, -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, m[1], err)
					}
					wants[k] = append(wants[k], &wantPattern{re: re})
				}
			}
		}
	}
	return wants
}

func TestCorpus(t *testing.T) {
	modRoot, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range corpusCases {
		t.Run(tc.dir, func(t *testing.T) {
			pkg, err := LoadDir(modRoot, filepath.Join("testdata", tc.dir))
			if err != nil {
				t.Fatalf("loading corpus: %v", err)
			}
			analyzers, err := ByName([]string{tc.analyzer})
			if err != nil {
				t.Fatal(err)
			}
			res := Run([]*Package{pkg}, analyzers)

			wants := collectWants(t, pkg)
			if len(wants) == 0 {
				t.Fatalf("corpus %s has no want expectations", tc.dir)
			}
		findings:
			for _, d := range res.Findings {
				for _, w := range wants[lineKey{d.Pos.Filename, d.Pos.Line}] {
					if !w.used && w.re.MatchString(d.Message) {
						w.used = true
						continue findings
					}
				}
				t.Errorf("unexpected finding: %s", d)
			}
			for k, ws := range wants {
				for _, w := range ws {
					if !w.used {
						t.Errorf("%s:%d: expected finding matching %q, got none", k.file, k.line, w.re)
					}
				}
			}

			if tc.wantSuppressed && len(res.Suppressed) == 0 {
				t.Errorf("corpus %s: expected at least one honored //llmfi:allow suppression", tc.dir)
			}
			for _, d := range res.Suppressed {
				for _, f := range res.Findings {
					if f.Pos == d.Pos && f.Message == d.Message {
						t.Errorf("diagnostic both suppressed and reported: %s", d)
					}
				}
			}
		})
	}
}
