package lint

import (
	"go/ast"
	"go/types"
)

// AnalyzerCOWWrite enforces the copy-on-write discipline of CloneShared
// worker models (PR 1): campaign workers share parameter storage with
// the parent model, so every in-place weight mutation must flow through
// Model.LayerForWrite, which privatizes the targeted tensor first. A
// weight obtained from Model.Layer or LinearLayers is a read-only alias —
// flipping bits or setting elements through it would corrupt the parent
// and every sibling worker. internal/model is in scope since PR 6: the
// batched decode path (Batch.Step, DecodeRow) runs against the same
// shared-weight clones, so helper code there is held to the same rule.
var AnalyzerCOWWrite = &Analyzer{
	Name: "cowwrite",
	Doc:  "weight mutation in worker/trial code must flow through LayerForWrite",
	Scope: []string{
		"internal/core",
		"internal/faults",
		"internal/experiments",
		"internal/mitigate",
		"internal/model",
	},
	Run: runCOWWrite,
}

func runCOWWrite(p *Pass) {
	forEachFunc(p.Package, func(decl *ast.FuncDecl, body *ast.BlockStmt) {
		p.checkCOWFunc(body)
	})
}

// checkCOWFunc tracks, with function-local dataflow, which weight
// variables are read-only aliases (from Layer / LinearLayers) and flags
// mutating calls through them. Aliases reassigned from LayerForWrite
// become writable again.
func (p *Pass) checkCOWFunc(body *ast.BlockStmt) {
	readonly := map[types.Object]bool{}

	// First pass: classify weight-typed variables by provenance, in
	// source order (good enough for the straight-line arm/flip sequences
	// this invariant lives in).
	ast.Inspect(body, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok || len(asg.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(asg.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		name, recv := methodCall(call)
		if !typeNamed(p.typeOf(recv), "Model") {
			return true
		}
		var ro bool
		switch name {
		case "Layer":
			ro = true
		case "LayerForWrite":
			ro = false
		default:
			return true
		}
		if id, ok := ast.Unparen(asg.Lhs[0]).(*ast.Ident); ok && id.Name != "_" {
			if obj := p.objOf(id); obj != nil {
				readonly[obj] = ro
			}
		}
		return true
	})

	// Second pass: flag mutations through read-only aliases, and
	// mutations through LayerInfo.Weight (the LinearLayers enumeration),
	// which never hands out writable weights.
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name, recv := methodCall(call)
		switch name {
		case "FlipBits":
		case "Set", "Fill":
			if !typeNamed(p.typeOf(recv), "Tensor", "Dense") {
				return true
			}
		default:
			return true
		}
		root := rootIdent(recv)
		if root == nil {
			return true
		}
		switch obj := p.objOf(root); {
		case obj != nil && readonly[obj]:
			p.Reportf(call.Pos(), "%s through a weight obtained from Model.Layer: on a CloneShared worker this mutates the parent's shared tensor — use LayerForWrite, which privatizes it first", name)
		case p.viaLayerInfo(recv):
			p.Reportf(call.Pos(), "%s through LayerInfo.Weight: LinearLayers enumerates read-only aliases — resolve a writable weight with LayerForWrite", name)
		}
		return true
	})
}

// viaLayerInfo reports whether the receiver chain passes a
// LayerInfo.Weight selection (li.Weight.FlipBits, infos[i].Weight.Set).
func (p *Pass) viaLayerInfo(e ast.Expr) bool {
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			if x.Sel.Name == "Weight" && typeNamed(p.typeOf(x.X), "LayerInfo") {
				return true
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.TypeAssertExpr:
			e = x.X
		default:
			return false
		}
	}
}
