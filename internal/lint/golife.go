package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AnalyzerGoLife enforces goroutine lifecycle discipline: every `go`
// statement in the scoped packages must have a visible termination
// story. A spawned function literal complies when its body consults a
// context (any context.Context reference covers ctx.Done() selects and
// passing ctx into a blocking callee), receives from or ranges over a
// channel (quit/work channels close to terminate it), or participates in
// a sync.WaitGroup (Done in the body, Wait on behalf of others, or an
// Add(..) on the spawn site's preceding line). A named call complies
// when a context flows in as an argument. Anything else — the
// fire-and-forget goroutine that outlives the drain path — needs an
// audited //llmfi:allow golife. This pins the property the serve drain
// and fabric shutdown paths depend on: SIGINT reaches a quiescent
// process, not one still running leaked workers (DESIGN.md §13/§14).
var AnalyzerGoLife = &Analyzer{
	Name: "golife",
	Doc:  "goroutines must consult ctx/a quit channel or be WaitGroup-tracked",
	Scope: []string{
		"internal/core", "internal/serve", "internal/serve/loadgen",
		"internal/fabric", "internal/obs", "internal/report",
		"internal/experiments", "internal/tensor", "cmd/llmfi",
	},
	Run: runGoLife,
}

func runGoLife(pass *Pass) {
	forEachFunc(pass.Package, func(decl *ast.FuncDecl, body *ast.BlockStmt) {
		ast.Inspect(body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.BlockStmt:
				checkGoLifeBlock(pass, x.List)
			case *ast.CaseClause:
				checkGoLifeBlock(pass, x.Body)
			case *ast.CommClause:
				checkGoLifeBlock(pass, x.Body)
			}
			return true
		})
	})
}

// checkGoLifeBlock checks the go statements of one statement list, so
// the wg.Add-on-the-previous-line pattern is visible.
func checkGoLifeBlock(pass *Pass, list []ast.Stmt) {
	for i, s := range list {
		gs, ok := s.(*ast.GoStmt)
		if !ok {
			continue
		}
		if i > 0 && isWaitGroupAdd(pass, list[i-1]) {
			continue
		}
		checkGoStmt(pass, gs)
	}
}

// isWaitGroupAdd reports whether s is a wg.Add(...) call on a
// sync.WaitGroup.
func isWaitGroupAdd(pass *Pass, s ast.Stmt) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	name, recv := methodCall(call)
	return name == "Add" && typeNamed(pass.typeOf(recv), "WaitGroup")
}

func checkGoStmt(pass *Pass, gs *ast.GoStmt) {
	if lit, ok := gs.Call.Fun.(*ast.FuncLit); ok {
		if compliantGoBody(pass, lit) {
			return
		}
		pass.Reportf(gs.Pos(), "goroutine has no termination story: consult ctx.Done()/a quit channel, track it with a sync.WaitGroup, or annotate //llmfi:allow golife")
		return
	}
	// Named call: a context argument hands the callee its lifetime.
	for _, a := range gs.Call.Args {
		if isContextType(pass.typeOf(a)) {
			return
		}
	}
	pass.Reportf(gs.Pos(), "goroutine calls %s without a context argument: pass a ctx, or annotate //llmfi:allow golife", callName(gs.Call))
}

func callName(call *ast.CallExpr) string {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		return f.Sel.Name
	}
	return "a function"
}

// compliantGoBody reports whether the literal's body has a recognized
// termination story.
func compliantGoBody(pass *Pass, lit *ast.FuncLit) bool {
	ok := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if ok {
			return false
		}
		switch x := n.(type) {
		case *ast.Ident:
			if isContextType(pass.typeOf(x)) {
				ok = true
			}
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				ok = true // channel receive: a close terminates the loop
			}
		case *ast.RangeStmt:
			if isChanType(pass.typeOf(x.X)) {
				ok = true // ranging a work channel: close terminates it
			}
		case *ast.CallExpr:
			name, recv := methodCall(x)
			if (name == "Done" || name == "Wait") && typeNamed(pass.typeOf(recv), "WaitGroup") {
				ok = true
			}
		}
		return !ok
	})
	return ok
}

// isChanType reports whether t's underlying type is a channel.
func isChanType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}
