package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
	"regexp"
	"strconv"
	"strings"
)

// AnalyzerWireSchema locks the wire contracts of the fabric, serve,
// report, and obs HTTP/JSONL surfaces so schema drift can never ship
// half-applied (the failure mode PR 9's SchemaVersion 1→2 bump was one
// review away from). Four rules: (1) every json struct tag must be
// lower_snake, so the wire never leaks Go casing; (2) wire bytes are
// decoded strictly — json.Unmarshal is forbidden and every
// json.NewDecoder must call DisallowUnknownFields before Decode, so a
// peer speaking a newer schema fails loudly instead of silently dropping
// fields; (3) a Schema field is always set from and compared against the
// SchemaVersion constant, never an integer literal, so encoder and
// decoder can't disagree; (4) API error responses flow through
// report.WriteAPIError's typed codes, not http.Error plaintext.
var AnalyzerWireSchema = &Analyzer{
	Name: "wireschema",
	Doc:  "wire structs use lower_snake json tags, strict decoders, and SchemaVersion constants",
	Scope: []string{
		"internal/fabric", "internal/serve", "internal/serve/loadgen",
		"internal/report", "internal/obs",
	},
	Run: runWireSchema,
}

var lowerSnakeRE = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

func runWireSchema(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if st, ok := n.(*ast.StructType); ok {
				checkJSONTags(pass, st)
			}
			return true
		})
	}
	forEachFunc(pass.Package, func(decl *ast.FuncDecl, body *ast.BlockStmt) {
		checkDecoders(pass, body)
		ast.Inspect(body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				if pass.isPkgFunc(x, "encoding/json", "Unmarshal") {
					pass.Reportf(x.Pos(), "json.Unmarshal skips DisallowUnknownFields: decode wire bytes with a strict decoder (report.DecodeJSON or json.NewDecoder + DisallowUnknownFields)")
				}
				if pass.isPkgFunc(x, "net/http", "Error") {
					pass.Reportf(x.Pos(), "http.Error sends untyped plaintext: use report.WriteAPIError with a typed error code")
				}
			case *ast.AssignStmt:
				for i, lhs := range x.Lhs {
					if i < len(x.Rhs) {
						checkSchemaLiteral(pass, lhs, x.Rhs[i])
					}
				}
			case *ast.KeyValueExpr:
				if id, ok := x.Key.(*ast.Ident); ok && isSchemaName(id.Name) {
					if isIntLiteral(x.Value) {
						pass.Reportf(x.Value.Pos(), "%s set from an integer literal: reference the SchemaVersion constant so encoder and decoder can't drift", id.Name)
					}
				}
			case *ast.BinaryExpr:
				if x.Op == token.EQL || x.Op == token.NEQ {
					checkSchemaCompare(pass, x.X, x.Y)
					checkSchemaCompare(pass, x.Y, x.X)
				}
			}
			return true
		})
	})
}

// checkJSONTags enforces lower_snake tag names on every json-tagged
// struct field ("-" opts a field out of the wire).
func checkJSONTags(pass *Pass, st *ast.StructType) {
	for _, field := range st.Fields.List {
		if field.Tag == nil {
			continue
		}
		raw, err := strconv.Unquote(field.Tag.Value)
		if err != nil {
			continue
		}
		tag, ok := reflect.StructTag(raw).Lookup("json")
		if !ok {
			continue
		}
		name, _, _ := strings.Cut(tag, ",")
		if name == "" || name == "-" {
			continue
		}
		if !lowerSnakeRE.MatchString(name) {
			pass.Reportf(field.Tag.Pos(), "json tag %q is not lower_snake: wire field names never leak Go casing", name)
		}
	}
}

// checkDecoders enforces DisallowUnknownFields on every json.Decoder
// that Decodes within the function.
func checkDecoders(pass *Pass, body *ast.BlockStmt) {
	strict := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name, recv := methodCall(call); name == "DisallowUnknownFields" && typeNamed(pass.typeOf(recv), "Decoder") {
			if id := rootIdent(recv); id != nil {
				if obj := pass.objOf(id); obj != nil {
					strict[obj] = true
				}
			}
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name, recv := methodCall(call)
		if name != "Decode" || !typeNamed(pass.typeOf(recv), "Decoder") {
			return true
		}
		// Only json.Decoder (gob/xml decoders have no unknown-field mode).
		if nb := namedBase(pass.typeOf(recv)); nb == nil || nb.Obj().Pkg() == nil ||
			nb.Obj().Pkg().Path() != "encoding/json" {
			return true
		}
		if inner, ok := ast.Unparen(recv).(*ast.CallExpr); ok && pass.isPkgFunc(inner, "encoding/json", "NewDecoder") {
			pass.Reportf(call.Pos(), "chained json.NewDecoder(...).Decode leaves unknown fields enabled: bind the decoder and call DisallowUnknownFields first")
			return true
		}
		id := rootIdent(recv)
		if id == nil {
			return true
		}
		if obj := pass.objOf(id); obj != nil && !strict[obj] {
			pass.Reportf(call.Pos(), "Decode on a json.Decoder without DisallowUnknownFields: a peer speaking a newer wire schema would be silently truncated")
		}
		return true
	})
}

func isSchemaName(name string) bool {
	return name == "Schema" || name == "SchemaVersion"
}

func isIntLiteral(e ast.Expr) bool {
	lit, ok := ast.Unparen(e).(*ast.BasicLit)
	return ok && lit.Kind == token.INT
}

// checkSchemaLiteral flags `x.Schema = 2`-style assignments.
func checkSchemaLiteral(pass *Pass, lhs, rhs ast.Expr) {
	sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
	if !ok || !isSchemaName(sel.Sel.Name) {
		return
	}
	if isIntLiteral(rhs) {
		pass.Reportf(rhs.Pos(), "%s assigned an integer literal: reference the SchemaVersion constant so encoder and decoder can't drift", sel.Sel.Name)
	}
}

// checkSchemaCompare flags `x.Schema != 2`-style comparisons.
func checkSchemaCompare(pass *Pass, side, other ast.Expr) {
	sel, ok := ast.Unparen(side).(*ast.SelectorExpr)
	if !ok || !isSchemaName(sel.Sel.Name) {
		return
	}
	if isIntLiteral(other) {
		pass.Reportf(other.Pos(), "%s compared against an integer literal: reference the SchemaVersion constant so encoder and decoder can't drift", sel.Sel.Name)
	}
}
