package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// This file is the cross-package access-fact pass shared by the
// concurrency analyzers. One walk over every loaded package records, for
// each struct field of interest, where and how it is touched: plainly
// read or written, operated on through sync/atomic, or copied as a
// value. Fields are keyed by (package path, type name, field name)
// strings rather than types.Object identity, because a field observed
// through export data in an importing package is a different object than
// the one in its defining package.
//
// The pass also resolves lock context. Fields annotated
//
//	//llmfi:guardedby <mu>
//
// (on the field's line or doc comment, naming a sibling sync.Mutex or
// sync.RWMutex field) have every access checked against a conservative
// dominance approximation: a lock counts as held if an x.mu.Lock() (or
// RLock) statement precedes the access in the same or an enclosing
// block with no intervening x.mu.Unlock(); defer x.mu.Unlock() keeps it
// held to function end. Three escapes are recognized: accesses whose
// root object is declared inside the enclosing function (pre-publication
// construction), methods following the xxxLocked naming convention
// (caller holds the receiver's lock), and function literals spawned via
// `go` (which get an empty lock environment — locks held at the spawn
// site do not protect the goroutine's body).

// FieldKey names one struct field across package boundaries.
type FieldKey struct {
	Pkg   string // defining package's import path
	Type  string // named struct type
	Field string // field name
}

func (k FieldKey) String() string { return k.Pkg + "." + k.Type + "." + k.Field }

// AccessKind classifies one field access.
type AccessKind int

const (
	// AccessRead is a plain read of the field's value.
	AccessRead AccessKind = iota
	// AccessWrite is a plain write: assignment, ++/--, or address-taken.
	AccessWrite
	// AccessAtomicOp is a sync/atomic operation: the field's address
	// passed to an atomic function, or a method call on an
	// atomic.Int64-style field.
	AccessAtomicOp
	// AccessAtomicValue copies an atomic.Int64-style field as a plain
	// value, silently forking its state.
	AccessAtomicValue
)

func (k AccessKind) String() string {
	switch k {
	case AccessRead:
		return "read"
	case AccessWrite:
		return "write"
	case AccessAtomicOp:
		return "atomic op"
	default:
		return "value copy"
	}
}

// Access is one recorded field access.
type Access struct {
	Key  FieldKey
	Pos  token.Position
	Pkg  string // import path of the package containing the access site
	Kind AccessKind
	// Local marks accesses whose root object is declared inside the
	// enclosing function: pre-publication construction, exempt from
	// locking and atomicity discipline.
	Local bool
	// HeldExclusive and HeldShared report whether the field's guardedby
	// mutex was held (via Lock / RLock) on a dominating path. Only
	// meaningful for annotated fields.
	HeldExclusive bool
	HeldShared    bool
}

// Guard is one //llmfi:guardedby annotation.
type Guard struct {
	Key   FieldKey
	Mutex string // sibling mutex field name
	RW    bool   // guard is a sync.RWMutex
	Pos   token.Position
}

// LockedCall is a call to a method following the xxxLocked naming
// convention on a type that has guarded fields: the caller must already
// hold one of the receiver's locks.
type LockedCall struct {
	Pos    token.Position
	Pkg    string
	Method string
	Recv   FieldKey // Field empty: just (pkg, type)
	// HeldAny: some lock rooted at the receiver is held at the call.
	HeldAny bool
	Local   bool
}

// GuardProblem is a malformed //llmfi:guardedby annotation.
type GuardProblem struct {
	Pkg string
	Pos token.Position
	Msg string
}

// Facts is the cross-package access-fact index.
type Facts struct {
	// Guards maps annotated fields to their guard.
	Guards map[FieldKey]Guard
	// AtomicTyped marks fields declared with a sync/atomic value type
	// (atomic.Int64 and friends).
	AtomicTyped map[FieldKey]bool
	// Accesses collects the recorded accesses per field, in source order
	// per package.
	Accesses map[FieldKey][]Access
	// LockedCalls are calls to xxxLocked-convention methods on types
	// with guarded fields.
	LockedCalls []LockedCall
	// Problems are malformed guardedby annotations, reported by the
	// guardedby analyzer in the owning package.
	Problems []GuardProblem
	// guardedTypes marks (pkg, type) pairs carrying >= 1 guard.
	guardedTypes map[FieldKey]bool
}

// CollectFacts builds the access-fact index over every loaded package:
// first the guardedby annotations (so access recording knows which
// fields need lock context), then the accesses themselves.
func CollectFacts(pkgs []*Package) *Facts {
	f := &Facts{
		Guards:       map[FieldKey]Guard{},
		AtomicTyped:  map[FieldKey]bool{},
		Accesses:     map[FieldKey][]Access{},
		guardedTypes: map[FieldKey]bool{},
	}
	for _, pkg := range pkgs {
		f.collectGuards(pkg)
	}
	for _, pkg := range pkgs {
		f.collectAccesses(pkg)
	}
	return f
}

// guardAnnotation extracts the mutex name from a //llmfi:guardedby
// comment group, or "" when the group carries none. found reports
// whether the marker itself appeared (so a missing name is a problem,
// not silence).
func guardAnnotation(groups ...*ast.CommentGroup) (mutex string, pos token.Pos, found bool) {
	for _, cg := range groups {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			if !strings.HasPrefix(text, "llmfi:guardedby") {
				continue
			}
			fields := strings.Fields(strings.TrimPrefix(text, "llmfi:guardedby"))
			if len(fields) == 0 {
				return "", c.Pos(), true
			}
			return fields[0], c.Pos(), true
		}
	}
	return "", token.NoPos, false
}

// fieldNames returns a struct field's effective names (embedded fields
// answer to their type's base name).
func fieldNames(field *ast.Field) []string {
	if len(field.Names) > 0 {
		names := make([]string, len(field.Names))
		for i, n := range field.Names {
			names[i] = n.Name
		}
		return names
	}
	t := field.Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.SelectorExpr:
			return []string{x.Sel.Name}
		case *ast.Ident:
			return []string{x.Name}
		default:
			return nil
		}
	}
}

// collectGuards indexes pkg's //llmfi:guardedby annotations and records
// problems for malformed ones.
func (f *Facts) collectGuards(pkg *Package) {
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				f.collectStructGuards(pkg, ts.Name.Name, st)
			}
		}
	}
}

func (f *Facts) collectStructGuards(pkg *Package, typeName string, st *ast.StructType) {
	// Index sibling fields by name for mutex validation.
	byName := map[string]*ast.Field{}
	for _, field := range st.Fields.List {
		for _, n := range fieldNames(field) {
			byName[n] = field
		}
	}
	for _, field := range st.Fields.List {
		mutex, pos, found := guardAnnotation(field.Doc, field.Comment)
		if !found {
			continue
		}
		problem := func(format string, args ...any) {
			f.Problems = append(f.Problems, GuardProblem{
				Pkg: pkg.Path, Pos: pkg.Fset.Position(pos), Msg: fmt.Sprintf(format, args...),
			})
		}
		if mutex == "" {
			problem("//llmfi:guardedby needs a mutex field name")
			continue
		}
		mf, ok := byName[mutex]
		if !ok {
			problem("//llmfi:guardedby %s: %s.%s has no field %q", mutex, pkg.Path, typeName, mutex)
			continue
		}
		mt := pkg.Info.TypeOf(mf.Type)
		if !typeNamed(mt, "Mutex", "RWMutex") {
			problem("//llmfi:guardedby %s: field %q is %v, not a sync.Mutex or sync.RWMutex", mutex, mutex, mt)
			continue
		}
		rw := typeNamed(mt, "RWMutex")
		for _, n := range fieldNames(field) {
			key := FieldKey{pkg.Path, typeName, n}
			f.Guards[key] = Guard{Key: key, Mutex: mutex, RW: rw, Pos: pkg.Fset.Position(pos)}
			f.guardedTypes[FieldKey{Pkg: pkg.Path, Type: typeName}] = true
		}
	}
}

// lockKind distinguishes exclusive from shared holds.
type lockKind int

const (
	lockExcl lockKind = iota
	lockShared
)

// lockID names one held lock: the root object plus the dot-joined
// selector path from it to the mutex ("mu", "inner.mu").
type lockID struct {
	root types.Object
	path string
}

type lockEnv map[lockID]lockKind

func (e lockEnv) clone() lockEnv {
	c := make(lockEnv, len(e))
	for k, v := range e {
		c[k] = v
	}
	return c
}

// accessWalker walks one function body with a lock environment.
type accessWalker struct {
	pkg   *Package
	hp    *Pass // helper shell for util.go resolvers (never reports)
	facts *Facts
	// body is the outermost function body, the declaredWithin horizon
	// for the pre-publication exemption.
	body ast.Node
	// recv is the receiver object when the function is a method.
	recv types.Object
	// locked: the function name ends in "Locked" (caller holds the
	// receiver's lock by convention).
	locked bool
	// skip marks selector nodes already consumed as atomic operands or
	// mutex references.
	skip map[ast.Node]bool
}

// collectAccesses records every interesting field access in pkg.
func (f *Facts) collectAccesses(pkg *Package) {
	hp := &Pass{Package: pkg}
	forEachFunc(pkg, func(decl *ast.FuncDecl, body *ast.BlockStmt) {
		w := &accessWalker{
			pkg: pkg, hp: hp, facts: f, body: body,
			skip: map[ast.Node]bool{},
		}
		if decl.Recv != nil && len(decl.Recv.List) == 1 && len(decl.Recv.List[0].Names) == 1 {
			w.recv = pkg.Info.Defs[decl.Recv.List[0].Names[0]]
		}
		w.locked = strings.HasSuffix(decl.Name.Name, "Locked")
		w.stmts(body.List, lockEnv{})
	})
}

// selectorPath renders e as a dot-joined field path from its root
// identifier ("mu", "inner.mu"); ok is false when the chain passes
// through anything but plain selectors.
func selectorPath(e ast.Expr) (root *ast.Ident, path string, ok bool) {
	var parts []string
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
				parts[i], parts[j] = parts[j], parts[i]
			}
			return x, strings.Join(parts, "."), true
		case *ast.SelectorExpr:
			parts = append(parts, x.Sel.Name)
			e = x.X
		default:
			return nil, "", false
		}
	}
}

// joinPath appends a field name to a selector path.
func joinPath(prefix, name string) string {
	if prefix == "" {
		return name
	}
	return prefix + "." + name
}

// lockCall decodes expr as x.<path>.Lock/RLock/Unlock/RUnlock() on a
// sync mutex and returns the lock identity and operation name.
func (w *accessWalker) lockCall(e ast.Expr) (id lockID, op string, ok bool) {
	call, okc := e.(*ast.CallExpr)
	if !okc {
		return id, "", false
	}
	sel, oks := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !oks {
		return id, "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return id, "", false
	}
	if !typeNamed(w.pkg.Info.TypeOf(sel.X), "Mutex", "RWMutex") {
		return id, "", false
	}
	root, path, okp := selectorPath(sel.X)
	if !okp {
		return id, "", false
	}
	obj := w.hp.objOf(root)
	if obj == nil {
		return id, "", false
	}
	// The mutex reference itself is not a field access of interest.
	w.markSkip(sel.X)
	return lockID{root: obj, path: path}, sel.Sel.Name, true
}

// markSkip excludes a selector chain from access recording.
func (w *accessWalker) markSkip(e ast.Expr) {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			w.skip[x] = true
			e = x.X
		default:
			return
		}
	}
}

func (w *accessWalker) stmts(list []ast.Stmt, env lockEnv) {
	for _, s := range list {
		w.stmt(s, env)
	}
}

func (w *accessWalker) stmt(s ast.Stmt, env lockEnv) {
	switch st := s.(type) {
	case nil:
	case *ast.ExprStmt:
		if id, op, ok := w.lockCall(st.X); ok {
			switch op {
			case "Lock":
				env[id] = lockExcl
			case "RLock":
				env[id] = lockShared
			case "Unlock", "RUnlock":
				delete(env, id)
			}
			return
		}
		w.expr(st.X, env)
	case *ast.DeferStmt:
		if _, op, ok := w.lockCall(st.Call); ok {
			// defer mu.Unlock(): the lock stays held to function end.
			// defer mu.Lock() would be bizarre; ignore both ways.
			_ = op
			return
		}
		if lit, ok := st.Call.Fun.(*ast.FuncLit); ok {
			// Deferred closures run at return with whatever locks the
			// straight-line body still holds; approximating with the
			// current environment is conservative for Lock+defer pairs.
			w.stmts(lit.Body.List, env.clone())
		} else {
			w.expr(st.Call.Fun, env)
		}
		for _, a := range st.Call.Args {
			w.expr(a, env)
		}
	case *ast.GoStmt:
		// Locks held at the spawn site do not protect the goroutine.
		if lit, ok := st.Call.Fun.(*ast.FuncLit); ok {
			w.stmts(lit.Body.List, lockEnv{})
		} else {
			w.expr(st.Call.Fun, env)
		}
		for _, a := range st.Call.Args {
			w.expr(a, env)
		}
	case *ast.AssignStmt:
		for _, rhs := range st.Rhs {
			w.expr(rhs, env)
		}
		for _, lhs := range st.Lhs {
			w.writeExpr(lhs, env)
		}
	case *ast.IncDecStmt:
		w.writeExpr(st.X, env)
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.expr(v, env)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, r := range st.Results {
			w.expr(r, env)
		}
	case *ast.SendStmt:
		w.expr(st.Chan, env)
		w.expr(st.Value, env)
	case *ast.IfStmt:
		w.stmt(st.Init, env)
		w.expr(st.Cond, env)
		w.stmts(st.Body.List, env.clone())
		if st.Else != nil {
			w.stmt(st.Else, env.clone())
		}
	case *ast.ForStmt:
		w.stmt(st.Init, env)
		w.expr(st.Cond, env)
		inner := env.clone()
		w.stmt(st.Post, inner)
		w.stmts(st.Body.List, inner)
	case *ast.RangeStmt:
		w.expr(st.X, env)
		w.stmts(st.Body.List, env.clone())
	case *ast.BlockStmt:
		w.stmts(st.List, env.clone())
	case *ast.SwitchStmt:
		w.stmt(st.Init, env)
		w.expr(st.Tag, env)
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				inner := env.clone()
				for _, e := range cc.List {
					w.expr(e, inner)
				}
				w.stmts(cc.Body, inner)
			}
		}
	case *ast.TypeSwitchStmt:
		w.stmt(st.Init, env)
		w.stmt(st.Assign, env)
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body, env.clone())
			}
		}
	case *ast.SelectStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				inner := env.clone()
				w.stmt(cc.Comm, inner)
				w.stmts(cc.Body, inner)
			}
		}
	case *ast.LabeledStmt:
		w.stmt(st.Stmt, env)
	}
}

// expr walks e in read context.
func (w *accessWalker) expr(e ast.Expr, env lockEnv) {
	switch x := e.(type) {
	case nil:
	case *ast.Ident, *ast.BasicLit:
	case *ast.ParenExpr:
		w.expr(x.X, env)
	case *ast.SelectorExpr:
		w.selector(x, AccessRead, env)
	case *ast.CallExpr:
		w.call(x, env)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			// &x.f: the address escapes; unless it feeds an atomic
			// operation (handled in call()), treat it as a write.
			if sel, ok := ast.Unparen(x.X).(*ast.SelectorExpr); ok {
				w.selector(sel, AccessWrite, env)
				return
			}
		}
		w.expr(x.X, env)
	case *ast.StarExpr:
		w.expr(x.X, env)
	case *ast.BinaryExpr:
		w.expr(x.X, env)
		w.expr(x.Y, env)
	case *ast.IndexExpr:
		w.expr(x.X, env)
		w.expr(x.Index, env)
	case *ast.IndexListExpr:
		w.expr(x.X, env)
		for _, i := range x.Indices {
			w.expr(i, env)
		}
	case *ast.SliceExpr:
		w.expr(x.X, env)
		w.expr(x.Low, env)
		w.expr(x.High, env)
		w.expr(x.Max, env)
	case *ast.TypeAssertExpr:
		w.expr(x.X, env)
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				if _, isIdent := kv.Key.(*ast.Ident); !isIdent {
					w.expr(kv.Key, env)
				}
				w.expr(kv.Value, env)
				continue
			}
			w.expr(el, env)
		}
	case *ast.FuncLit:
		// Literals outside go statements execute on the current
		// goroutine (immediately, or synchronously via sort.Slice-style
		// callbacks); they inherit the lock environment.
		w.stmts(x.Body.List, env.clone())
	case *ast.KeyValueExpr:
		w.expr(x.Key, env)
		w.expr(x.Value, env)
	}
}

// writeExpr walks e in write context: the terminal field of the chain is
// a write, everything feeding it a read.
func (w *accessWalker) writeExpr(e ast.Expr, env lockEnv) {
	switch x := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		w.selector(x, AccessWrite, env)
	case *ast.IndexExpr:
		// m[k] = v / s[i] = v mutate the container the field holds:
		// still a write to the field's region.
		w.writeExpr(x.X, env)
		w.expr(x.Index, env)
	case *ast.StarExpr:
		w.expr(x.X, env)
	default:
		w.expr(e, env)
	}
}

// call handles atomic-function operands, atomic method receivers, and
// xxxLocked-convention call sites before walking the call generically.
func (w *accessWalker) call(call *ast.CallExpr, env lockEnv) {
	// sync/atomic functions: &x.f operands are atomic ops, not writes.
	if f := w.hp.calleeFunc(call); f != nil && f.Pkg() != nil && f.Pkg().Path() == "sync/atomic" &&
		f.Type().(*types.Signature).Recv() == nil {
		for _, a := range call.Args {
			if u, ok := ast.Unparen(a).(*ast.UnaryExpr); ok && u.Op == token.AND {
				if sel, ok := ast.Unparen(u.X).(*ast.SelectorExpr); ok {
					w.selector(sel, AccessAtomicOp, env)
					continue
				}
			}
			w.expr(a, env)
		}
		return
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		// Method call on an atomic-typed field (possibly through an
		// index: h.buckets[i].Add(1)): an atomic op on that field.
		base := ast.Unparen(sel.X)
		for {
			if ix, ok := base.(*ast.IndexExpr); ok {
				w.expr(ix.Index, env)
				base = ast.Unparen(ix.X)
				continue
			}
			break
		}
		if fsel, ok := base.(*ast.SelectorExpr); ok && w.atomicNamed(w.pkg.Info.TypeOf(fsel)) {
			w.selector(fsel, AccessAtomicOp, env)
			for _, a := range call.Args {
				w.expr(a, env)
			}
			return
		}
		// xxxLocked convention: note the call site if the receiver's
		// type has guarded fields.
		if strings.HasSuffix(sel.Sel.Name, "Locked") {
			w.lockedCall(call, sel, env)
		}
	}
	w.expr(call.Fun, env)
	for _, a := range call.Args {
		w.expr(a, env)
	}
}

// atomicNamed reports whether t's named base lives in sync/atomic.
func (w *accessWalker) atomicNamed(t types.Type) bool {
	n := namedBase(t)
	return n != nil && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "sync/atomic"
}

// lockedCall records a call to an xxxLocked-convention method.
func (w *accessWalker) lockedCall(call *ast.CallExpr, sel *ast.SelectorExpr, env lockEnv) {
	named := namedBase(w.pkg.Info.TypeOf(sel.X))
	if named == nil || named.Obj().Pkg() == nil {
		return
	}
	tkey := FieldKey{Pkg: named.Obj().Pkg().Path(), Type: named.Obj().Name()}
	if !w.facts.guardedTypes[tkey] {
		return
	}
	root, _, ok := selectorPath(sel.X)
	if !ok {
		return
	}
	obj := w.hp.objOf(root)
	if obj == nil {
		return
	}
	heldAny := w.locked && w.recv != nil && obj == w.recv
	for id := range env {
		if id.root == obj {
			heldAny = true
		}
	}
	w.facts.LockedCalls = append(w.facts.LockedCalls, LockedCall{
		Pos: w.pkg.Fset.Position(call.Pos()), Pkg: w.pkg.Path,
		Method: sel.Sel.Name, Recv: tkey,
		HeldAny: heldAny,
		Local:   declaredWithin(obj, w.body),
	})
}

// atomicEligible reports whether a field's type could be the target of a
// sync/atomic function: the width-specific integer kinds.
func atomicEligible(t types.Type) bool {
	switch basicKind(t) {
	case types.Int32, types.Int64, types.Uint32, types.Uint64, types.Uintptr:
		return true
	}
	return false
}

// selector records a field access (if the selection is a field of
// interest) and walks the rest of the chain in read context.
func (w *accessWalker) selector(sel *ast.SelectorExpr, kind AccessKind, env lockEnv) {
	defer func() {
		// The chain below the accessed field is read, unless the base is
		// a bare package qualifier.
		if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
			if _, isPkg := w.hp.objOf(id).(*types.PkgName); isPkg {
				return
			}
		}
		w.expr(sel.X, env)
	}()
	if w.skip[sel] {
		return
	}
	s, ok := w.pkg.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal || len(s.Index()) != 1 {
		return
	}
	named := namedBase(s.Recv())
	if named == nil || named.Obj().Pkg() == nil {
		return
	}
	key := FieldKey{Pkg: named.Obj().Pkg().Path(), Type: named.Obj().Name(), Field: sel.Sel.Name}

	ftype := s.Obj().Type()
	guard, guarded := w.facts.Guards[key]
	isAtomicType := w.atomicNamed(ftype)
	if isAtomicType {
		w.facts.AtomicTyped[key] = true
	}
	if !guarded && !isAtomicType && !atomicEligible(ftype) {
		return
	}
	if isAtomicType && kind == AccessRead {
		// A plain-value use of an atomic box (not a method call, not an
		// address) silently copies its state.
		kind = AccessAtomicValue
	}
	if isAtomicType && kind == AccessWrite {
		// &x.f on an atomic field keeps atomicity; the box is shared,
		// not copied.
		kind = AccessAtomicOp
	}

	root, prefix, okp := selectorPath(sel.X)
	var rootObj types.Object
	if okp {
		rootObj = w.hp.objOf(root)
	}
	acc := Access{
		Key: key, Pos: w.pkg.Fset.Position(sel.Sel.Pos()), Pkg: w.pkg.Path, Kind: kind,
		Local: rootObj != nil && declaredWithin(rootObj, w.body),
	}
	if guarded && rootObj != nil {
		if w.locked && w.recv != nil && rootObj == w.recv {
			acc.HeldExclusive = true
		}
		if k, held := env[lockID{root: rootObj, path: joinPath(prefix, guard.Mutex)}]; held {
			if k == lockExcl {
				acc.HeldExclusive = true
			} else {
				acc.HeldShared = true
			}
		}
	}
	w.facts.Accesses[key] = append(w.facts.Accesses[key], acc)
}
