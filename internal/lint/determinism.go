package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// deterministicScope is the campaign hot path: every value that can reach
// a Result, a checkpoint, or a trial outcome is computed inside these
// packages, so any order- or clock-dependence here breaks the paper's
// §3.3.4 guarantee that clean and faulty runs visit identical injection
// sites and that checkpoint/resume is bit-identical.
var deterministicScope = []string{
	"internal/core",
	"internal/faults",
	"internal/gen",
	"internal/model",
	"internal/experiments",
	"internal/abft",
	// The observability plane is observational by construction: it never
	// feeds values back into outcomes, but it runs on the hot path, so
	// clock access must stay behind annotated seams and its aggregation
	// must not depend on map order.
	"internal/obs",
}

// AnalyzerDeterminism flags nondeterminism sources in the campaign hot
// path: wall-clock reads (time.Now/Since/Until — allowed only in
// telemetry/progress code, which must carry an explicit allow
// annotation), math/rand imports (all campaign randomness must derive
// from the splittable internal/prng streams), and ranges over maps whose
// body is order-sensitive (floating-point accumulation, appends, or
// writes not keyed by the iteration key).
var AnalyzerDeterminism = &Analyzer{
	Name:  "determinism",
	Doc:   "forbid wall-clock, math/rand, and order-sensitive map iteration in campaign code",
	Scope: deterministicScope,
	Run:   runDeterminism,
}

func runDeterminism(p *Pass) {
	for _, f := range p.Files {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if path == "math/rand" || path == "math/rand/v2" {
				p.Reportf(imp.Pos(), "import of %s in deterministic campaign code: derive randomness from the splittable internal/prng streams instead", path)
			}
		}
		sorted := p.sortCallTargets(f)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				for _, fn := range [...]string{"Now", "Since", "Until"} {
					if p.isPkgFunc(n, "time", fn) {
						p.Reportf(n.Pos(), "wall-clock read time.%s in deterministic campaign code: results must be a pure function of the campaign seed (telemetry-only timing needs //llmfi:allow determinism <reason>)", fn)
					}
				}
			case *ast.RangeStmt:
				p.checkMapRange(n, sorted)
			}
			return true
		})
	}
}

// sortCallTargets maps each object passed as the first argument of a
// sort call to the call positions. A slice populated in map iteration
// order and sorted afterwards is order-independent — the ubiquitous
// collect-keys-then-sort idiom — so map-range appends to such slices
// are exempt.
func (p *Pass) sortCallTargets(f *ast.File) map[types.Object][]token.Pos {
	out := map[types.Object][]token.Pos{}
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 || !p.isSortCall(call) {
			return true
		}
		if root := rootIdent(call.Args[0]); root != nil {
			if obj := p.objOf(root); obj != nil {
				out[obj] = append(out[obj], call.Pos())
			}
		}
		return true
	})
	return out
}

// isSortCall matches the stdlib sorting entry points.
func (p *Pass) isSortCall(call *ast.CallExpr) bool {
	for _, fn := range [...]string{"Slice", "SliceStable", "Sort", "Stable", "Ints", "Strings", "Float64s"} {
		if p.isPkgFunc(call, "sort", fn) {
			return true
		}
	}
	for _, fn := range [...]string{"Sort", "SortFunc", "SortStableFunc"} {
		if p.isPkgFunc(call, "slices", fn) {
			return true
		}
	}
	return false
}

// checkMapRange flags order-sensitive statements inside a range over a
// map. Per-key effects (writes indexed by the iteration key) and
// commutative integer accumulation are order-independent and pass;
// anything whose result can depend on Go's randomized map iteration
// order is a finding.
func (p *Pass) checkMapRange(rng *ast.RangeStmt, sorted map[types.Object][]token.Pos) {
	if rng.X == nil {
		return
	}
	t := p.typeOf(rng.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	keyObj := p.rangeVarObj(rng.Key)
	valObj := p.rangeVarObj(rng.Value)

	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A closure defined in the body runs later (or not at all);
			// its statements are not iteration-order effects.
			return false
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				return true
			}
			for i, lhs := range n.Lhs {
				if n.Tok == token.ASSIGN && i < len(n.Rhs) && p.appendToSorted(lhs, n.Rhs[i], sorted) {
					continue
				}
				p.checkMapRangeWrite(rng, n.Tok, lhs, keyObj)
			}
		case *ast.IncDecStmt:
			p.checkMapRangeWrite(rng, token.ADD_ASSIGN, n.X, keyObj)
		case *ast.SendStmt:
			p.Reportf(n.Pos(), "channel send inside range over map: delivery order follows the randomized iteration order")
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if p.usesObj(res, keyObj) || p.usesObj(res, valObj) {
					p.Reportf(n.Pos(), "return of map iteration key/value: which entry is returned depends on the randomized iteration order")
					break
				}
			}
		}
		return true
	})
}

// checkMapRangeWrite flags one left-hand side inside a map-range body
// when the write is order-sensitive.
func (p *Pass) checkMapRangeWrite(rng *ast.RangeStmt, tok token.Token, lhs ast.Expr, keyObj types.Object) {
	if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
		return
	}
	// Writes indexed by the iteration key touch a distinct location per
	// iteration: m2[k] = ..., m2[k] = append(m2[k], ...).
	if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok && keyObj != nil {
		if id, ok := ast.Unparen(idx.Index).(*ast.Ident); ok && p.objOf(id) == keyObj {
			return
		}
	}
	root := rootIdent(lhs)
	if root == nil {
		return
	}
	obj := p.objOf(root)
	if obj == nil || declaredWithin(obj, rng.Body) {
		return
	}
	lhsType := p.typeOf(lhs)
	// Commutative integer/bool accumulation is order-independent.
	switch tok {
	case token.ADD_ASSIGN, token.MUL_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
		if isInteger(lhsType) {
			return
		}
		if isFloat(lhsType) {
			p.Reportf(lhs.Pos(), "floating-point accumulation over map iteration order: float addition is not associative, so the sum depends on the randomized order")
			return
		}
	}
	p.Reportf(lhs.Pos(), "write to %s inside range over map: the final value can depend on the randomized iteration order (iterate sorted keys, or key the write by the iteration variable)", root.Name)
}

// appendToSorted reports whether lhs = rhs is a self-append to a slice
// that a later sort call puts in deterministic order
// (xs = append(xs, k) ... sort.Ints(xs)).
func (p *Pass) appendToSorted(lhs, rhs ast.Expr, sorted map[types.Object][]token.Pos) bool {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	if fn, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || fn.Name != "append" {
		return false
	}
	root := rootIdent(lhs)
	if root == nil {
		return false
	}
	obj := p.objOf(root)
	if obj == nil {
		return false
	}
	if arg := rootIdent(call.Args[0]); arg == nil || p.objOf(arg) != obj {
		return false
	}
	for _, pos := range sorted[obj] {
		if pos > lhs.Pos() {
			return true
		}
	}
	return false
}

// rangeVarObj resolves the object of a range key/value identifier.
func (p *Pass) rangeVarObj(e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	return p.objOf(id)
}

// usesObj reports whether e references obj.
func (p *Pass) usesObj(e ast.Expr, obj types.Object) bool {
	if obj == nil || e == nil {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && p.objOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}
