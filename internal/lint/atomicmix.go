package lint

import "sort"

// AnalyzerAtomicMix forbids mixed atomic and plain access to the same
// struct field: once any code path touches a field through sync/atomic
// (or the field is declared with an atomic.Int64-style box), every other
// access must be atomic too. A single plain read beside an atomic
// counter is exactly the half-torn bug class the metrics registries
// (core.Telemetry, serve.Metrics, the fabric worker's self-counters) are
// most exposed to, and the race detector only catches it when both sides
// happen to run concurrently under -race. The facts are cross-package:
// an atomic op in the defining package poisons plain accesses observed
// anywhere else. Pre-publication construction (the field's owner still
// local to the enclosing function) is exempt; atomic-typed fields
// additionally may never be copied as plain values, which silently forks
// the counter.
var AnalyzerAtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc:  "fields accessed via sync/atomic must never be read or written plainly",
	Run:  runAtomicMix,
}

func runAtomicMix(pass *Pass) {
	facts := pass.Facts
	if facts == nil {
		return
	}
	keys := make([]FieldKey, 0, len(facts.Accesses))
	for key := range facts.Accesses {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].String() < keys[j].String() })
	for _, key := range keys {
		accs := facts.Accesses[key]
		var atomicAt string
		for _, a := range accs {
			if a.Kind == AccessAtomicOp {
				atomicAt = a.Pos.String()
				break
			}
		}
		for _, a := range accs {
			if a.Pkg != pass.Path || a.Local {
				continue
			}
			switch a.Kind {
			case AccessAtomicValue:
				pass.reportAt(a.Pos, "%s.%s is an atomic value; copying it forks the counter (use Load/Store or a pointer)",
					key.Type, key.Field)
			case AccessRead, AccessWrite:
				if atomicAt == "" {
					continue
				}
				pass.reportAt(a.Pos, "plain %s of %s.%s, which is accessed atomically (e.g. %s)",
					a.Kind, key.Type, key.Field, atomicAt)
			}
		}
	}
}
