package lint

import "sort"

// AnalyzerGuardedBy enforces //llmfi:guardedby field annotations: every
// read or write of an annotated struct field must happen while the named
// sibling mutex is held on a dominating path. Writes require the
// exclusive lock; reads accept a read lock when the guard is a
// sync.RWMutex. The pass recognizes defer mu.Unlock(), the xxxLocked
// naming convention (the caller holds the receiver's lock — and call
// sites of such methods are themselves checked), and pre-publication
// construction (accesses through objects local to the enclosing
// function). This is the static half of DESIGN.md §13–15's concurrency
// story: the coordinator's lease table, the serve engine's drain state,
// and the obs fan-in's per-worker series are annotated, so the invariant
// "all mutations happen under mu" is machine-checked instead of relying
// on the race detector happening to schedule the conflict.
var AnalyzerGuardedBy = &Analyzer{
	Name: "guardedby",
	Doc:  "annotated struct fields must only be accessed with their named mutex held",
	Run:  runGuardedBy,
}

func runGuardedBy(pass *Pass) {
	facts := pass.Facts
	if facts == nil {
		return
	}
	for _, pr := range facts.Problems {
		if pr.Pkg == pass.Path {
			pass.reportAt(pr.Pos, "%s", pr.Msg)
		}
	}
	keys := make([]FieldKey, 0, len(facts.Guards))
	for key := range facts.Guards {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].String() < keys[j].String() })
	for _, key := range keys {
		g := facts.Guards[key]
		for _, a := range facts.Accesses[key] {
			if a.Pkg != pass.Path || a.Local {
				continue
			}
			switch {
			case a.Kind == AccessWrite && !a.HeldExclusive:
				pass.reportAt(a.Pos, "write to %s.%s (guarded by %s) without %s.Lock() held",
					key.Type, key.Field, g.Mutex, g.Mutex)
			case a.Kind != AccessWrite && !a.HeldExclusive && !a.HeldShared:
				pass.reportAt(a.Pos, "read of %s.%s (guarded by %s) without %s held",
					key.Type, key.Field, g.Mutex, g.Mutex)
			}
		}
	}
	for _, c := range facts.LockedCalls {
		if c.Pkg != pass.Path || c.Local || c.HeldAny {
			continue
		}
		pass.reportAt(c.Pos, "call to %s.%s without a lock held on the receiver (xxxLocked convention: caller holds the lock)",
			c.Recv.Type, c.Method)
	}
}
