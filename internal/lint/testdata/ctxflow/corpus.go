//llmfi:scope ctxflow

// Package ctxflow is the linter corpus for the ctxflow analyzer:
// exported Run-like entry points take a context first and consult it
// from their loops.
package ctxflow

import "context"

func work(i int) {}

// RunMissingCtx is exported and Run-like but takes no context.
func RunMissingCtx(n int) { // want `must take a context.Context as its first parameter`
	for i := 0; i < n; i++ {
		work(i)
	}
}

// RunNoCheck takes the context but never consults it from the loop.
func RunNoCheck(ctx context.Context, n int) { // want `loops without consulting its context`
	for i := 0; i < n; i++ {
		work(i)
	}
}

// RunChecked polls ctx.Err each iteration: the sanctioned shape.
func RunChecked(ctx context.Context, n int) error {
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		work(i)
	}
	return nil
}

// RunForwarded passes ctx to the loop body's callee, which performs the
// check: also sanctioned.
func RunForwarded(ctx context.Context, n int) error {
	for i := 0; i < n; i++ {
		if err := step(ctx, i); err != nil {
			return err
		}
	}
	return nil
}

func step(ctx context.Context, i int) error { return ctx.Err() }

// RunDiscarded cannot consult a context it never names.
func RunDiscarded(context.Context, int) { // want `discards its context`
	for {
		return
	}
}

// Stream is Run-like by name but loop-free: nothing to consult from.
func Stream(ctx context.Context) {}

// runInternal is unexported: the contract covers exported entry points.
func runInternal(n int) {
	for i := 0; i < n; i++ {
		work(i)
	}
}

// Runtime is exported and Run-prefixed without being a blocking entry
// point; with no loops and a context first, it is clean.
func Runtime(ctx context.Context) error { return ctx.Err() }

// RunSuppressed demonstrates an honored suppression.
func RunSuppressed(n int) { //llmfi:allow ctxflow corpus case: an honored suppression
	for i := 0; i < n; i++ {
		work(i)
	}
}
