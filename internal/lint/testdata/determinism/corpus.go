//llmfi:scope determinism

// Package determinism is the linter corpus for the determinism
// analyzer: wall-clock reads, math/rand imports, and order-sensitive
// map iteration.
package determinism

import (
	"math/rand" // want `import of math/rand in deterministic campaign code`
	"sort"
	"time"
)

var _ = rand.Int

// Timestamp reads the wall clock without an allowance.
func Timestamp() time.Time {
	return time.Now() // want `wall-clock read time.Now`
}

// Elapsed reads the wall clock through Since.
func Elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `wall-clock read time.Since`
}

// AllowedTimestamp carries the sanctioned annotation and is suppressed.
func AllowedTimestamp() time.Time {
	return time.Now() //llmfi:allow determinism corpus case: an honored suppression
}

// FPAccum sums floats in map order: not associative, flagged.
func FPAccum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `floating-point accumulation over map iteration order`
	}
	return sum
}

// IntAccum is commutative integer accumulation: order-independent.
func IntAccum(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// KeyedWrite touches a distinct location per iteration: clean.
func KeyedWrite(m map[string]int) map[string]int {
	out := map[string]int{}
	for k, v := range m {
		out[k] = v * 2
	}
	return out
}

// CollectSort is the collect-keys-then-sort idiom: clean.
func CollectSort(m map[int]bool) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// CollectNoSort appends in map order and never sorts: flagged.
func CollectNoSort(m map[int]bool) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k) // want `write to keys inside range over map`
	}
	return keys
}

// SendOrder delivers map entries on a channel in iteration order.
func SendOrder(m map[int]bool, ch chan int) {
	for k := range m {
		ch <- k // want `channel send inside range over map`
	}
}

// PickAny returns whichever entry the randomized iteration visits first.
func PickAny(m map[int]bool) int {
	for k := range m {
		return k // want `return of map iteration key/value`
	}
	return 0
}

// LocalOK only mutates state declared inside the loop body: clean.
func LocalOK(m map[int]int) {
	for _, v := range m {
		x := v * 2
		x++
		_ = x
	}
}

// ClosureOK defines (but does not run) closures in the body: the float
// accumulation inside them is not an iteration-order effect, so the
// only finding is the unsorted append that collects them.
func ClosureOK(m map[int]float64) []func() float64 {
	var fns []func() float64
	total := 0.0
	for _, v := range m {
		v := v
		fns = append(fns, func() float64 { total += v; return total }) // want `write to fns inside range over map`
	}
	return fns
}
