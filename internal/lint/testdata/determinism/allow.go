//llmfi:scope determinism

package determinism

import "time"

// MissingReason carries an allow without the mandatory reason: the
// annotation itself is a finding and suppresses nothing, so the
// wall-clock read surfaces too.
func MissingReason() time.Time {
	return time.Now() /* want `needs a reason` `wall-clock read time.Now` */ //llmfi:allow determinism
}

// UnknownName names an analyzer that does not exist: the typo is a
// finding (it would otherwise silently suppress nothing) and the
// wall-clock read survives.
func UnknownName() time.Time {
	return time.Now() /* want `unknown analyzer` `wall-clock read time.Now` */ //llmfi:allow nosuchcheck looks plausible but suppresses nothing
}

/* want `needs an analyzer name and a reason` */ //llmfi:allow
