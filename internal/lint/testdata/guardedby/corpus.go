//llmfi:scope guardedby

// Package guardedby is the linter corpus for the guardedby analyzer:
// fields annotated //llmfi:guardedby <mu> may only be touched with the
// named mutex held on a dominating path.
package guardedby

import "sync"

// registry mirrors the coordinator/fan-in shape: a mutex beside the
// state it guards.
type registry struct {
	mu    sync.Mutex
	count int            //llmfi:guardedby mu
	byID  map[string]int //llmfi:guardedby mu

	rw    sync.RWMutex
	gauge int //llmfi:guardedby rw

	ghost int /* want `has no field "nosuchmu"` */ //llmfi:guardedby nosuchmu

	notAMutex int
	wrong     int /* want `not a sync.Mutex` */ //llmfi:guardedby notAMutex
}

// lockedIncrement is the sanctioned pattern: Lock + defer Unlock.
func (r *registry) lockedIncrement() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.count++
	r.byID["x"] = r.count
}

// windowIncrement holds the lock in a window; the access after Unlock
// is the violation.
func (r *registry) windowIncrement() int {
	r.mu.Lock()
	r.count++
	r.mu.Unlock()
	return r.count // want `read of registry.count \(guarded by mu\) without mu held`
}

// bareWrite never takes the lock.
func (r *registry) bareWrite() {
	r.count = 0 // want `write to registry.count \(guarded by mu\) without mu.Lock\(\) held`
}

// mapMutation writes through the map without the lock.
func (r *registry) mapMutation() {
	r.byID["x"] = 1 // want `write to registry.byID \(guarded by mu\) without mu.Lock\(\) held`
}

// readUnderRLock: a shared lock satisfies reads of RWMutex-guarded
// fields...
func (r *registry) readUnderRLock() int {
	r.rw.RLock()
	defer r.rw.RUnlock()
	return r.gauge
}

// ...but not writes.
func (r *registry) writeUnderRLock() {
	r.rw.RLock()
	defer r.rw.RUnlock()
	r.gauge++ // want `write to registry.gauge \(guarded by rw\) without rw.Lock\(\) held`
}

// resetLocked follows the xxxLocked convention: the caller holds mu.
func (r *registry) resetLocked() {
	r.count = 0
	for k := range r.byID {
		delete(r.byID, k)
	}
}

// sweep calls the Locked helper correctly.
func (r *registry) sweep() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.resetLocked()
}

// sweepWithoutLock calls the Locked helper bare: flagged.
func (r *registry) sweepWithoutLock() {
	r.resetLocked() // want `call to registry.resetLocked without a lock held`
}

// newRegistry constructs pre-publication: accesses through the local
// object are exempt.
func newRegistry() *registry {
	r := &registry{byID: map[string]int{}}
	r.count = 1
	return r
}

// closureUnderLock: synchronously-invoked literals (sort.Slice-style
// callbacks) inherit the lock environment.
func (r *registry) closureUnderLock(each func(func())) {
	r.mu.Lock()
	defer r.mu.Unlock()
	each(func() { r.count++ })
}

// spawned goroutines do not inherit the spawn site's locks.
func (r *registry) spawnLeak() {
	r.mu.Lock()
	defer r.mu.Unlock()
	done := make(chan struct{})
	go func() {
		r.count++ // want `write to registry.count \(guarded by mu\) without mu.Lock\(\) held`
		close(done)
	}()
	<-done
}

// suppressed demonstrates an honored suppression.
func (r *registry) suppressed() int {
	return r.count //llmfi:allow guardedby corpus case: an honored suppression
}

// missingReason: the allow itself is a finding and suppresses nothing.
func (r *registry) missingReason() int {
	return r.count /* want `needs a reason` `read of registry.count` */ //llmfi:allow guardedby
}
