//llmfi:scope checksumwidth

// Package abft exercises the checksumwidth analyzer's package-name gate:
// in a package named abft, every function is checksum math, so even a
// helper with no checksum-ish name is checked.
package abft

// accumulate has no checksum-marker in its name but lives in package
// abft: flagged anyway.
func accumulate(xs []float32) float32 {
	var s float32
	for _, x := range xs {
		s += x // want `float32 checksum accumulator`
	}
	return s
}

// accumulate64 is the correct width.
func accumulate64(xs []float32) float64 {
	var s float64
	for _, x := range xs {
		s += float64(x)
	}
	return s
}
