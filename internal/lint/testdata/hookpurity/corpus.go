// Package hookpurity is the linter corpus for the hookpurity analyzer.
// It mirrors the model package's hook/checker shapes with self-contained
// look-alike types; the analyzer has no default scope, so no
// //llmfi:scope opt-in is needed.
package hookpurity

// LayerRef, Tensor, Weight, and Model mirror the repro/internal/model
// types by name: the analyzer matches named types, not import paths.
type LayerRef struct{ Block, Kind int }

type Tensor struct{ data []float32 }

func (t *Tensor) Set(i, j int, v float64) {}
func (t *Tensor) Fill(v float64)          {}
func (t *Tensor) At(i, j int) float64     { return 0 }

type Weight interface {
	FlipBits(i, j int, bits []int) func()
	Forward(dst, in []float32)
}

type Model struct {
	counter int
	W       *Tensor
}

// helper is NOT a model-owned type: its FlipBits is a pure value-level
// function, like numerics.FlipBits in the real tree.
type helper struct{}

func (helper) FlipBits(v float64, bits ...int) float64 { return v }

// goodHook mutates only its own output row: the sanctioned mechanism.
func goodHook(ref LayerRef, step int, out []float32) {
	out[0] = 1
	for i := range out {
		out[i] *= 2
	}
}

// pureFlipHook calls FlipBits on a non-model type: clean after the
// receiver-type refinement.
func pureFlipHook(ref LayerRef, step int, out []float32) {
	var h helper
	out[0] = float32(h.FlipBits(float64(out[0]), 1))
}

// ownStateHook captures non-model state: clean.
func ownStateHook() func(LayerRef, int, []float32) {
	seen := 0
	return func(ref LayerRef, step int, out []float32) {
		seen++
		_ = seen
	}
}

// badStoreHook stores through the captured model: flagged.
func badStoreHook(m *Model) func(LayerRef, int, []float32) {
	return func(ref LayerRef, step int, out []float32) {
		m.counter++ // want `stores to model-reachable memory`
	}
}

// badTensorHook mutates a weight tensor from inside a hook: flagged.
func badTensorHook(m *Model) func(LayerRef, int, []float32) {
	return func(ref LayerRef, step int, out []float32) {
		m.W.Set(0, 0, 1) // want `hook calls Set on a weight tensor`
	}
}

// badFlipHook flips weight bits from inside a hook: flagged.
func badFlipHook(w Weight) func(LayerRef, int, []float32) {
	return func(ref LayerRef, step int, out []float32) {
		w.FlipBits(0, 0, []int{14}) // want `hook calls FlipBits`
	}
}

// suppressedHook demonstrates an honored suppression.
func suppressedHook(m *Model) func(LayerRef, int, []float32) {
	return func(ref LayerRef, step int, out []float32) {
		m.counter++ //llmfi:allow hookpurity corpus case: an honored suppression
	}
}

// DecodeRow and Batch mirror the continuous-batching decode state
// (model.Batch / model.DecodeRow): a hook fires on behalf of exactly one
// row, so stores through a captured Batch or a sibling row are flagged.
type DecodeRow struct {
	Logits []float32
	Done   bool
}

type Batch struct {
	rows []*DecodeRow
	x    *Tensor
}

// rowLocalHook writes only its own output row even while a batch is in
// scope: clean.
func rowLocalHook(b *Batch) func(LayerRef, int, []float32) {
	return func(ref LayerRef, step int, out []float32) {
		_ = len(b.rows)
		out[0] = 1
	}
}

// badSiblingRowHook reaches into a co-scheduled row's logits: flagged.
func badSiblingRowHook(b *Batch) func(LayerRef, int, []float32) {
	return func(ref LayerRef, step int, out []float32) {
		b.rows[0].Logits[0] = 0 // want `stores to model-reachable memory`
	}
}

// badRetireHook retires a sibling row from inside a hook: flagged.
func badRetireHook(row *DecodeRow) func(LayerRef, int, []float32) {
	return func(ref LayerRef, step int, out []float32) {
		row.Done = true // want `stores to model-reachable memory`
	}
}

// badBatchTensorHook mutates the batch's stacked activation tensor:
// flagged via the Set rule.
func badBatchTensorHook(b *Batch) func(LayerRef, int, []float32) {
	return func(ref LayerRef, step int, out []float32) {
		b.x.Set(0, 0, 1) // want `hook calls Set on a weight tensor`
	}
}

// checker mirrors a LinearChecker implementation.
type checker struct{ events int }

// CheckLinear may update its own state and repair out in place, but the
// input activation row is read-only.
func (c *checker) CheckLinear(ref LayerRef, pos int, w Weight, in, out []float32) {
	c.events++
	out[pos] = 0
	in[0] = 0 // want `checker writes its input activation row`
}

// notAHook has a different signature, so none of the hook rules apply.
func notAHook(m *Model, out []float32) {
	m.counter++
	m.W.Fill(0)
}
