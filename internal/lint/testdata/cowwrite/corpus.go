//llmfi:scope cowwrite

// Package cowwrite is the linter corpus for the cowwrite analyzer: weight
// mutation in worker/trial code must flow through Model.LayerForWrite.
package cowwrite

type LayerRef struct{ Block, Kind int }

type Tensor struct{ data []float32 }

func (t *Tensor) Set(i, j int, v float64) {}

type Weight interface {
	FlipBits(i, j int, bits []int) func()
	Get(i, j int) float64
}

type LayerInfo struct {
	Ref    LayerRef
	Weight Weight
}

type Model struct{}

func (m *Model) Layer(ref LayerRef) (Weight, error)         { return nil, nil }
func (m *Model) LayerForWrite(ref LayerRef) (Weight, error) { return nil, nil }
func (m *Model) LinearLayers() []LayerInfo                  { return nil }

// flipReadOnly mutates through a Layer alias: on a CloneShared worker
// that flips the parent's shared tensor.
func flipReadOnly(m *Model, ref LayerRef) {
	w, _ := m.Layer(ref)
	restore := w.FlipBits(0, 0, []int{14}) // want `FlipBits through a weight obtained from Model.Layer`
	restore()
}

// flipWritable privatizes first: the sanctioned path.
func flipWritable(m *Model, ref LayerRef) {
	w, _ := m.LayerForWrite(ref)
	restore := w.FlipBits(0, 0, []int{14})
	restore()
}

// readThroughLayer only reads: Layer aliases are fine for that.
func readThroughLayer(m *Model, ref LayerRef) float64 {
	w, _ := m.Layer(ref)
	return w.Get(0, 0)
}

// flipViaEnumeration mutates through LinearLayers, which only hands out
// read-only aliases.
func flipViaEnumeration(m *Model) {
	for _, li := range m.LinearLayers() {
		li.Weight.FlipBits(0, 0, []int{14}) // want `FlipBits through LayerInfo.Weight`
	}
}

// flipSuppressed demonstrates an honored suppression.
func flipSuppressed(m *Model, ref LayerRef) {
	w, _ := m.Layer(ref)
	w.FlipBits(0, 0, nil) //llmfi:allow cowwrite corpus case: an honored suppression
}

// Batch mirrors the continuous-batching decode state: it runs against a
// CloneShared worker model, so batched helpers are held to the same
// copy-on-write rule (internal/model joined the default scope in PR 6).
type Batch struct{ m *Model }

// flipInBatchStep mutates through a Layer alias from inside the batched
// decode path: flagged.
func (b *Batch) flipInBatchStep(ref LayerRef) {
	w, _ := b.m.Layer(ref)
	w.FlipBits(0, 0, []int{14}) // want `FlipBits through a weight obtained from Model.Layer`
}

// flipInBatchStepWritable privatizes first: the sanctioned path, even
// mid-batch.
func (b *Batch) flipInBatchStepWritable(ref LayerRef) {
	w, _ := b.m.LayerForWrite(ref)
	restore := w.FlipBits(0, 0, []int{14})
	restore()
}

// reclassified shows an alias becoming writable when reassigned from
// LayerForWrite (function-local provenance, source order).
func reclassified(m *Model, ref LayerRef) {
	w, _ := m.Layer(ref)
	_ = w.Get(0, 0)
	w, _ = m.LayerForWrite(ref)
	w.FlipBits(0, 0, []int{1})
}
