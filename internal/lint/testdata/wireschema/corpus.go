//llmfi:scope wireschema

// Package wireschema is the linter corpus for the wireschema analyzer:
// wire structs use lower_snake json tags, wire bytes are decoded
// strictly, Schema fields reference the SchemaVersion constant, and API
// errors are typed — never http.Error plaintext.
package wireschema

import (
	"bytes"
	"encoding/json"
	"net/http"
)

// SchemaVersion is this corpus's wire schema constant.
const SchemaVersion = 3

// joinRequest is a well-formed wire struct.
type joinRequest struct {
	Schema   int    `json:"schema"`
	Worker   string `json:"worker_name"`
	Binary   string `json:"binary_version,omitempty"`
	Internal int    `json:"-"`
}

// driftedResponse leaks Go casing onto the wire.
type driftedResponse struct {
	Schema  int    `json:"schema"`
	Granted bool   `json:"Granted"`  // want `json tag "Granted" is not lower_snake`
	LeaseID uint64 `json:"leaseID"`  // want `json tag "leaseID" is not lower_snake`
	Camels  string `json:"so-kebab"` // want `json tag "so-kebab" is not lower_snake`
}

// decodeStrict is the sanctioned decode path.
func decodeStrict(data []byte) (joinRequest, error) {
	var req joinRequest
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	err := dec.Decode(&req)
	return req, err
}

// decodeLoose binds a decoder but never disallows unknown fields.
func decodeLoose(data []byte) (joinRequest, error) {
	var req joinRequest
	dec := json.NewDecoder(bytes.NewReader(data))
	err := dec.Decode(&req) // want `Decode on a json.Decoder without DisallowUnknownFields`
	return req, err
}

// decodeChained can never be strict.
func decodeChained(data []byte) (joinRequest, error) {
	var req joinRequest
	err := json.NewDecoder(bytes.NewReader(data)).Decode(&req) // want `chained json.NewDecoder\(...\).Decode`
	return req, err
}

// decodeUnmarshal uses the forbidden plain path.
func decodeUnmarshal(data []byte) (joinRequest, error) {
	var req joinRequest
	err := json.Unmarshal(data, &req) // want `json.Unmarshal skips DisallowUnknownFields`
	return req, err
}

// encodeConst is the sanctioned schema stamp.
func encodeConst() joinRequest {
	return joinRequest{Schema: SchemaVersion}
}

// encodeLiteral hard-codes the schema in a composite literal: encoder
// and decoder can now drift.
func encodeLiteral() joinRequest {
	return joinRequest{Schema: 3} // want `Schema set from an integer literal`
}

// stampLiteral hard-codes it in an assignment.
func stampLiteral(req *joinRequest) {
	req.Schema = 3 // want `Schema assigned an integer literal`
}

// checkLiteral compares against a literal.
func checkLiteral(req joinRequest) bool {
	return req.Schema != 3 // want `Schema compared against an integer literal`
}

// checkConst compares against the constant: sanctioned.
func checkConst(req joinRequest) bool {
	return req.Schema == SchemaVersion
}

// plaintextError answers with untyped plaintext.
func plaintextError(w http.ResponseWriter) {
	http.Error(w, "bad request", http.StatusBadRequest) // want `http.Error sends untyped plaintext`
}

// suppressed demonstrates an honored suppression (a deliberately
// tolerant error-envelope sniff).
func suppressed(data []byte) bool {
	var env struct {
		Error string `json:"error"`
	}
	return json.Unmarshal(data, &env) == nil //llmfi:allow wireschema corpus case: an honored suppression
}

// missingReason: the allow itself is a finding and suppresses nothing.
func missingReason(data []byte, v any) error {
	return json.Unmarshal(data, v) /* want `needs a reason` `json.Unmarshal skips` */ //llmfi:allow wireschema
}
