// Package accessfacts is the framework-test fixture for the shared
// access-fact pass (CollectFacts). It is loaded by access_test.go and
// asserted on directly — recorded guards, access kinds, lock-held
// resolution, locality — rather than through analyzer diagnostics like
// the corpus packages.
package accessfacts

import (
	"sync"
	"sync/atomic"
)

// table mixes every fact class the pass records: a Mutex-guarded field,
// an RWMutex-guarded field, an old-style atomic int, and an atomic box.
type table struct {
	mu    sync.Mutex
	count int //llmfi:guardedby mu

	rw    sync.RWMutex
	gauge int //llmfi:guardedby rw

	hits  int64 // accessed via atomic.AddInt64
	boxed atomic.Int64
}

func (t *table) lockedWrite() {
	t.mu.Lock()
	t.count++ // marker: locked-write
	t.mu.Unlock()
}

func (t *table) deferredWrite() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.count = 1 // marker: deferred-write
}

func (t *table) bareWrite() {
	t.count = 2 // marker: bare-write
}

func (t *table) sharedRead() int {
	t.rw.RLock()
	defer t.rw.RUnlock()
	return t.gauge // marker: shared-read
}

func (t *table) bareRead() int {
	return t.gauge // marker: bare-read
}

// newTable constructs pre-publication: the root object is function-local.
func newTable() *table {
	t := &table{}
	t.count = 7 // marker: local-write
	return t
}

func (t *table) bump() {
	atomic.AddInt64(&t.hits, 1) // marker: atomic-op
	t.boxed.Add(1)              // marker: box-op
}

func (t *table) tornRead() int64 {
	return t.hits // marker: torn-read
}

func (t *table) forkBox() atomic.Int64 {
	return t.boxed // marker: box-copy
}

// resetLocked follows the xxxLocked convention: the body's guarded
// access is held by convention, and call sites are recorded.
func (t *table) resetLocked() {
	t.count = 0 // marker: convention-write
}

func (t *table) withLock() {
	t.mu.Lock()
	t.resetLocked() // marker: locked-call-held
	t.mu.Unlock()
}

func (t *table) withoutLock() {
	t.resetLocked() // marker: locked-call-bare
}
