//llmfi:scope checksumwidth

// Package checksumwidth is the linter corpus for the checksumwidth
// analyzer: in checksum-path functions (name contains Checksum, Checked,
// or CheckRow), loop accumulation must be float64.
package checksumwidth

// RowChecksum accumulates correctly in float64 alongside a float32
// accumulator that is flagged.
func RowChecksum(xs []float32) float64 {
	var sum float64
	var bad float32
	for _, x := range xs {
		sum += float64(x)
		bad += x // want `float32 checksum accumulator`
	}
	_ = bad
	return sum
}

// CheckRowDelta hides the accumulation behind a plain assignment
// (d = d + x): still flagged.
func CheckRowDelta(xs []float32) float32 {
	var d float32
	for i := 0; i < len(xs); i++ {
		d = d + xs[i] // want `float32 checksum accumulator`
	}
	return d
}

// MatMulCheckedScale narrows only outside any loop: the rule targets
// running sums, not single casts.
func MatMulCheckedScale(xs []float32) float32 {
	var sum float64
	for _, x := range xs {
		sum += float64(x)
	}
	scaled := float32(sum)
	scaled += 1
	return scaled
}

// kernelDot is not a checksum-path function, so its float32 accumulator
// is the kernel's business (that is where the eps32 noise the tolerance
// absorbs comes from).
func kernelDot(a, b []float32) float32 {
	var s float32
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// ChecksumSuppressed demonstrates an honored suppression.
func ChecksumSuppressed(xs []float32) float32 {
	var s float32
	for _, x := range xs {
		s += x //llmfi:allow checksumwidth corpus case: an honored suppression
	}
	return s
}
