// Package hookpurity_obs is the observability corpus for the
// hookpurity analyzer's alias-escape rule: a hook that builds a span or
// telemetry record may read its output row, but storing the row itself
// (or a reslice of it) into a recorder keeps a live alias of
// model-owned memory — the "observation" silently changes when a later
// forward pass reuses the row's backing array. Look-alike types
// suffice: the analyzer matches hook signatures, not import paths.
package hookpurity_obs

// LayerRef mirrors repro/internal/model.LayerRef by name.
type LayerRef struct{ Block, Kind int }

// Attr and Span mirror the repro/internal/obs shapes: a span attribute
// that (wrongly) carries a float row instead of a scalar.
type Attr struct {
	Key string
	Row []float32
}

type Span struct {
	Name  string
	Attrs []Attr
}

// Recorder mirrors an obs recorder: everything it holds outlives the
// hook call that wrote it.
type Recorder struct {
	last  []float32
	spans []Span
	attrs []Attr
	ch    chan []float32
}

// observeCopied is the sanctioned shape: the attribute owns a copy of
// the row, so later forward passes cannot rewrite the observation.
func (r *Recorder) observeCopied() func(LayerRef, int, []float32) {
	return func(ref LayerRef, step int, out []float32) {
		r.attrs = append(r.attrs, Attr{Key: "row", Row: append([]float32(nil), out...)})
		r.last = append([]float32(nil), out...)
	}
}

// observeScalars reads element values (float copies, not aliases) and
// names the row through a local — both fine.
func (r *Recorder) observeScalars() func(LayerRef, int, []float32) {
	return func(ref LayerRef, step int, out []float32) {
		row := out
		r.attrs = append(r.attrs, Attr{Key: "first", Row: []float32{row[0], out[len(out)-1]}})
	}
}

// observeAliased stores the raw row into the recorder: flagged — the
// span now aliases tensor memory the model will overwrite.
func (r *Recorder) observeAliased() func(LayerRef, int, []float32) {
	return func(ref LayerRef, step int, out []float32) {
		r.last = out // want `stores an alias of its output row into escaping state`
	}
}

// observeResliced hides the alias behind a reslice: still the same
// backing array, still flagged.
func (r *Recorder) observeResliced() func(LayerRef, int, []float32) {
	return func(ref LayerRef, step int, out []float32) {
		r.last = out[:4] // want `stores an alias of its output row into escaping state`
	}
}

// observeAttrAlias smuggles the alias through a span attribute inside
// an append: flagged — append retains the slice header in the element.
func (r *Recorder) observeAttrAlias() func(LayerRef, int, []float32) {
	return func(ref LayerRef, step int, out []float32) {
		r.attrs = append(r.attrs, Attr{Key: "row", Row: out}) // want `stores an alias of its output row into escaping state`
	}
}

// observeSent ships the alias across a channel: flagged — the receiver
// holds live tensor memory after the hook returns.
func (r *Recorder) observeSent() func(LayerRef, int, []float32) {
	return func(ref LayerRef, step int, out []float32) {
		r.ch <- out // want `sends an alias of its output row on a channel`
	}
}

// Weight mirrors the checker's weight parameter type by name.
type Weight struct{ rows int }

// checker mirrors an ABFT linear checker that records its input row.
type checker struct {
	rec *Recorder
}

// CheckLinear aliasing its input activation row is flagged the same
// way: in must stay untouched and unretained.
func (c *checker) CheckLinear(ref LayerRef, step int, w Weight, in, out []float32) {
	c.rec.last = in // want `stores an alias of its input row into escaping state`
	out[0] = out[0]
}
