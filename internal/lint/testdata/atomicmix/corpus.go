//llmfi:scope atomicmix

// Package atomicmix is the linter corpus for the atomicmix analyzer: a
// field accessed through sync/atomic anywhere may never be read or
// written plainly, and atomic.Int64-style boxes may never be copied as
// values.
package atomicmix

import "sync/atomic"

// counters mirrors the metrics-registry shape that mixes old-style
// atomic function calls with modern atomic boxes.
type counters struct {
	hits   int64 // accessed via atomic.AddInt64: plain access is a tear
	misses int64 // never atomic: plain access is fine
	boxed  atomic.Int64
}

// record is the sanctioned path.
func (c *counters) record() {
	atomic.AddInt64(&c.hits, 1)
	c.boxed.Add(1)
}

// snapshot reads hits plainly beside the atomic writer: the torn-read
// bug class.
func (c *counters) snapshot() int64 {
	return c.hits // want `plain read of counters.hits, which is accessed atomically`
}

// reset writes plainly.
func (c *counters) reset() {
	c.hits = 0 // want `plain write of counters.hits, which is accessed atomically`
}

// plainField is untouched by sync/atomic: plain access everywhere is
// fine.
func (c *counters) plainField() int64 {
	c.misses++
	return c.misses
}

// copyBox copies the atomic value, silently forking the counter.
func (c *counters) copyBox() int64 {
	b := c.boxed // want `copying it forks the counter`
	return b.Load()
}

// loadBox is the sanctioned read of a box.
func (c *counters) loadBox() int64 {
	return c.boxed.Load()
}

// shareBox hands out the box by pointer: atomicity is preserved.
func (c *counters) shareBox() *atomic.Int64 {
	return &c.boxed
}

// newCounters constructs pre-publication: plain init through the local
// object is exempt.
func newCounters() *counters {
	c := &counters{}
	c.hits = 0
	return c
}

// suppressed demonstrates an honored suppression.
func (c *counters) suppressed() int64 {
	return c.hits //llmfi:allow atomicmix corpus case: an honored suppression
}

// missingReason: the allow itself is a finding and suppresses nothing.
func (c *counters) missingReason() int64 {
	return c.hits /* want `needs a reason` `plain read of counters.hits` */ //llmfi:allow atomicmix
}
