//llmfi:scope golife

// Package golife is the linter corpus for the golife analyzer: every
// spawned goroutine needs a visible termination story — a context, a
// quit/work channel, a WaitGroup, or an audited allow.
package golife

import (
	"context"
	"sync"
)

func work(int) {}

func runCtx(ctx context.Context) {}

// fireAndForget has no termination story at all.
func fireAndForget() {
	go func() { // want `goroutine has no termination story`
		for {
			work(1)
		}
	}()
}

// namedNoCtx spawns a named callee without handing it a lifetime.
func namedNoCtx() {
	go leak() // want `goroutine calls leak without a context argument`
}

func leak() {
	for {
		work(2)
	}
}

// ctxSelect consults ctx.Done: compliant.
func ctxSelect(ctx context.Context) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			default:
				work(3)
			}
		}
	}()
}

// namedWithCtx hands the callee a context: compliant.
func namedWithCtx(ctx context.Context) {
	go runCtx(ctx)
}

// quitChannel receives from a quit channel: compliant.
func quitChannel(quit chan struct{}) {
	go func() {
		<-quit
		work(4)
	}()
}

// workChannel ranges a channel; closing it terminates the goroutine:
// compliant.
func workChannel(jobs chan int) {
	go func() {
		for j := range jobs {
			work(j)
		}
	}()
}

// waitGroupTracked: wg.Add on the spawn site's previous line plus Done
// in the body.
func waitGroupTracked() {
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work(5)
		}()
	}
	wg.Wait()
}

// closerGoroutine waits on the group on behalf of others: compliant.
func closerGoroutine(wg *sync.WaitGroup, results chan int) {
	go func() {
		wg.Wait()
		close(results)
	}()
}

// suppressed demonstrates an honored suppression.
func suppressed() {
	go func() { //llmfi:allow golife corpus case: an honored suppression
		for {
			work(6)
		}
	}()
}

// missingReason: the allow itself is a finding and suppresses nothing.
func missingReason() {
	go func() { /* want `needs a reason` `goroutine has no termination story` */ //llmfi:allow golife
		for {
			work(7)
		}
	}()
}
