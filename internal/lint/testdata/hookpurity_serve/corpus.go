// Package hookpurity_serve is the serving-engine corpus for the
// hookpurity analyzer: the live engine (repro/internal/serve) arms one
// fault hook per admitted request on a model shared by every in-flight
// stream, so a hook that stores through the engine's model corrupts
// other requests' computations — exactly the class of bug the analyzer
// exists to catch at review. Look-alike types suffice: the analyzer
// matches named types, not import paths.
package hookpurity_serve

// LayerRef, Tensor, and Model mirror the repro/internal/model types by
// name.
type LayerRef struct{ Block, Kind int }

type Tensor struct{ data []float32 }

func (t *Tensor) Set(i, j int, v float64) {}

type Model struct {
	steps int
	W     *Tensor
}

// Engine mirrors the serving engine: one shared model, many in-flight
// requests, one armed hook per request.
type Engine struct {
	m *Model
}

// request carries per-request state a hook may freely own.
type request struct {
	id    string
	fired bool
}

// armClean installs the sanctioned shape: the hook flips its own output
// row and records the strike in request-owned state.
func (e *Engine) armClean(req *request) func(LayerRef, int, []float32) {
	return func(ref LayerRef, step int, out []float32) {
		out[0] = -out[0]
		req.fired = true
	}
}

// armCounting stores through the engine's shared model from inside the
// hook: flagged — every other in-flight request sees the mutation.
func (e *Engine) armCounting(req *request) func(LayerRef, int, []float32) {
	return func(ref LayerRef, step int, out []float32) {
		e.m.steps++ // want `stores to model-reachable memory`
		out[0] = 0
	}
}

// armWeightPatch "repairs" a weight from inside the hook: flagged —
// weight mutation belongs to the injector (faults.Arm), which restores
// the bits on Disarm; a hook-side store would leak into every stream.
func (e *Engine) armWeightPatch() func(LayerRef, int, []float32) {
	return func(ref LayerRef, step int, out []float32) {
		e.m.W.Set(0, 0, 1) // want `hook calls Set on a weight tensor`
	}
}
