package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed, type-checked package plus the annotation index
// the suppression layer needs.
type Package struct {
	// Path is the import path ("repro/internal/core").
	Path string
	// Dir is the package directory on disk.
	Dir string

	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	// fileSet indexes the package's file names for diagnostic routing.
	fileSet map[string]bool
	// allows indexes well-formed //llmfi:allow annotations by file:line,
	// mapping to the audited reason text.
	allows map[allowKey]string
	// allowList is every well-formed allow in source order, for the
	// -suppressions audit listing.
	allowList []Allow
	// badAllows are malformed or unknown-analyzer annotations.
	badAllows []badAllow
	// scoped marks analyzers opted in via //llmfi:scope.
	scoped map[string]bool
}

type allowKey struct {
	file     string
	line     int
	analyzer string
}

type badAllow struct {
	pos      token.Position
	analyzer string
	problem  string
}

// Allow is one well-formed //llmfi:allow annotation: the audited
// suppression budget is the list of these across the module.
type Allow struct {
	Pos      token.Position
	Analyzer string
	Reason   string
}

// Allows returns the package's well-formed allow annotations in source
// order.
func (p *Package) Allows() []Allow { return p.allowList }

// allowed reports whether d is silenced by an annotation on its line or
// the line directly above.
func (p *Package) allowed(d Diagnostic) bool {
	if _, ok := p.allows[allowKey{d.Pos.Filename, d.Pos.Line, d.Analyzer}]; ok {
		return true
	}
	_, ok := p.allows[allowKey{d.Pos.Filename, d.Pos.Line - 1, d.Analyzer}]
	return ok
}

// allowProblems renders the package's malformed annotations as findings
// of the pseudo-analyzer "allow". known filters analyzer-name typos.
func (p *Package) allowProblems(known map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, b := range p.badAllows {
		msg := b.problem
		if msg == "" && !known[b.analyzer] {
			msg = fmt.Sprintf("unknown analyzer %q in //llmfi:allow", b.analyzer)
		}
		if msg == "" {
			continue
		}
		out = append(out, Diagnostic{Pos: b.pos, Analyzer: "allow", Message: msg})
	}
	return out
}

// indexComments scans f for //llmfi:allow and //llmfi:scope annotations.
func (p *Package) indexComments(f *ast.File) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			if !strings.HasPrefix(text, "llmfi:") {
				continue
			}
			pos := p.Fset.Position(c.Pos())
			switch {
			case strings.HasPrefix(text, "llmfi:allow"):
				fields := strings.Fields(strings.TrimPrefix(text, "llmfi:allow"))
				switch {
				case len(fields) == 0:
					p.badAllows = append(p.badAllows, badAllow{pos: pos,
						problem: "//llmfi:allow needs an analyzer name and a reason"})
				case len(fields) == 1:
					p.badAllows = append(p.badAllows, badAllow{pos: pos, analyzer: fields[0],
						problem: fmt.Sprintf("//llmfi:allow %s needs a reason", fields[0])})
				default:
					reason := strings.Join(fields[1:], " ")
					p.allows[allowKey{pos.Filename, pos.Line, fields[0]}] = reason
					p.allowList = append(p.allowList, Allow{Pos: pos, Analyzer: fields[0], Reason: reason})
					// Still validate the analyzer name (typos would
					// otherwise silently suppress nothing).
					p.badAllows = append(p.badAllows, badAllow{pos: pos, analyzer: fields[0]})
				}
			case strings.HasPrefix(text, "llmfi:scope"):
				for _, name := range strings.Fields(strings.TrimPrefix(text, "llmfi:scope")) {
					p.scoped[name] = true
				}
			}
		}
	}
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// goList runs `go list -deps -export -json` in dir over patterns and
// returns the decoded packages.
func goList(dir string, patterns []string) ([]listPkg, error) {
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Dir,Export,GoFiles,Standard,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter returns a go/types importer resolving import paths
// through compiler export data files (as reported by `go list -export`).
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
}

// Load parses and type-checks the non-test Go files of every package
// matching patterns, resolving imports from compiler export data. dir is
// the directory `go list` runs in (the module root, normally).
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	var targets []listPkg
	for _, p := range listed {
		if p.Error != nil {
			return nil, fmt.Errorf("package %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	var out []*Package
	for _, t := range targets {
		files := make([]string, len(t.GoFiles))
		for i, f := range t.GoFiles {
			files[i] = filepath.Join(t.Dir, f)
		}
		pkg, err := check(fset, imp, t.ImportPath, t.Dir, files)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// LoadDir parses and type-checks the single ad-hoc package in dir (the
// corpus-test entry point: testdata packages are invisible to `go list`
// pattern expansion, so their stdlib imports are resolved by an extra
// `go list` over exactly the imported paths). modRoot is where the go
// command runs.
func LoadDir(modRoot, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	// Pre-parse to discover imports, then fetch export data for them.
	fset := token.NewFileSet()
	var asts []*ast.File
	for _, fn := range files {
		f, err := parser.ParseFile(fset, fn, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		asts = append(asts, f)
	}
	paths := map[string]bool{}
	for _, f := range asts {
		for _, imp := range f.Imports {
			paths[strings.Trim(imp.Path.Value, `"`)] = true
		}
	}
	exports := map[string]string{}
	if len(paths) > 0 {
		var pats []string
		for p := range paths {
			pats = append(pats, p)
		}
		sort.Strings(pats)
		listed, err := goList(modRoot, pats)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	return check(fset, exportImporter(fset, exports), filepath.Base(dir), dir, files)
}

// check parses files and type-checks them into a Package.
func check(fset *token.FileSet, imp types.Importer, path, dir string, files []string) (*Package, error) {
	pkg := &Package{
		Path: path, Dir: dir, Fset: fset,
		fileSet: map[string]bool{},
		allows:  map[allowKey]string{},
		scoped:  map[string]bool{},
	}
	for _, fn := range files {
		f, err := parser.ParseFile(fset, fn, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		pkg.Files = append(pkg.Files, f)
		pkg.fileSet[fn] = true
		pkg.indexComments(f)
	}
	var typeErrs []error
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	pkg.Info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	tpkg, _ := conf.Check(path, fset, pkg.Files, pkg.Info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("type-checking %s: %v (and %d more)", path, typeErrs[0], len(typeErrs)-1)
	}
	pkg.Types = tpkg
	return pkg, nil
}
