package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AnalyzerChecksumWidth enforces float64 accumulation in the ABFT
// checksum math. The detection tolerance is derived from the float32
// kernel's rounding noise (~sqrt(k)·eps32); the check side must therefore
// accumulate in float64, whose ~eps64-per-term error stays three orders
// of magnitude below that. A float32 accumulator — or narrowing a partial
// sum to float32 mid-loop — would raise the check's own noise to the
// level of the signal and silently destroy the zero-false-positive
// margin the tolerance was derived for.
var AnalyzerChecksumWidth = &Analyzer{
	Name: "checksumwidth",
	Doc:  "checksum accumulation must be float64 end to end",
	Scope: []string{
		"internal/abft",
		"internal/tensor",
	},
	Run: runChecksumWidth,
}

// checksumFuncNames marks the tensor-package functions that belong to the
// checksum path; in package abft every function is checksum math.
var checksumFuncNames = []string{"Checksum", "Checked", "CheckRow"}

func runChecksumWidth(p *Pass) {
	allFuncs := p.Types != nil && p.Types.Name() == "abft"
	forEachFunc(p.Package, func(decl *ast.FuncDecl, body *ast.BlockStmt) {
		if !allFuncs && !isChecksumFuncName(decl.Name.Name) {
			return
		}
		p.checkChecksumFunc(body)
	})
}

func isChecksumFuncName(name string) bool {
	for _, frag := range checksumFuncNames {
		if strings.Contains(name, frag) {
			return true
		}
	}
	return false
}

// checkChecksumFunc flags float32 accumulation inside the loops of a
// checksum function.
func (p *Pass) checkChecksumFunc(body *ast.BlockStmt) {
	var loopDepth int
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			loopDepth++
			var b *ast.BlockStmt
			if fs, ok := n.(*ast.ForStmt); ok {
				b = fs.Body
			} else {
				b = n.(*ast.RangeStmt).Body
			}
			ast.Inspect(b, walk)
			loopDepth--
			return false
		case *ast.AssignStmt:
			if loopDepth == 0 {
				return true
			}
			switch n.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN:
				for _, lhs := range n.Lhs {
					if basicKind(p.typeOf(lhs)) == types.Float32 {
						p.Reportf(lhs.Pos(), "float32 checksum accumulator: accumulate in float64 — a float32 running sum has the same rounding noise as the kernel the checksum must out-resolve")
					}
				}
			case token.ASSIGN:
				for i, lhs := range n.Lhs {
					if basicKind(p.typeOf(lhs)) != types.Float32 || i >= len(n.Rhs) {
						continue
					}
					if p.selfAccumulation(lhs, n.Rhs[i]) {
						p.Reportf(lhs.Pos(), "float32 checksum accumulator: accumulate in float64 — a float32 running sum has the same rounding noise as the kernel the checksum must out-resolve")
					}
				}
			}
		}
		return true
	}
	ast.Inspect(body, walk)
}

// selfAccumulation reports whether rhs is an additive expression
// involving lhs itself (x = x + e, x = e - x, ...).
func (p *Pass) selfAccumulation(lhs, rhs ast.Expr) bool {
	bin, ok := ast.Unparen(rhs).(*ast.BinaryExpr)
	if !ok || (bin.Op != token.ADD && bin.Op != token.SUB) {
		return false
	}
	root := rootIdent(lhs)
	if root == nil {
		return false
	}
	obj := p.objOf(root)
	return p.usesObj(bin.X, obj) || p.usesObj(bin.Y, obj)
}
