package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// loadFacts loads the accessfacts fixture and runs the access-fact pass
// over it alone.
func loadFacts(t *testing.T) (*Package, *Facts) {
	t.Helper()
	modRoot, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := LoadDir(modRoot, filepath.Join("testdata", "accessfacts"))
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	return pkg, CollectFacts([]*Package{pkg})
}

// markerLine finds the fixture line carrying "marker: <name>".
func markerLine(t *testing.T, name string) int {
	t.Helper()
	path := filepath.Join("testdata", "accessfacts", "facts.go")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i, ln := range strings.Split(string(data), "\n") {
		if strings.Contains(ln, "marker: "+name) {
			return i + 1
		}
	}
	t.Fatalf("fixture has no marker %q", name)
	return 0
}

// accessAt finds the unique access to key on the marker's line.
func accessAt(t *testing.T, facts *Facts, key FieldKey, marker string) Access {
	t.Helper()
	line := markerLine(t, marker)
	var found []Access
	for _, a := range facts.Accesses[key] {
		if a.Pos.Line == line {
			found = append(found, a)
		}
	}
	if len(found) != 1 {
		t.Fatalf("marker %s: %d accesses to %s on line %d, want 1", marker, len(found), key, line)
	}
	return found[0]
}

func TestCollectFactsGuards(t *testing.T) {
	_, facts := loadFacts(t)
	count := FieldKey{Pkg: "accessfacts", Type: "table", Field: "count"}
	gauge := FieldKey{Pkg: "accessfacts", Type: "table", Field: "gauge"}

	g, ok := facts.Guards[count]
	if !ok || g.Mutex != "mu" || g.RW {
		t.Errorf("Guards[count] = %+v, %v; want mutex mu, plain Mutex", g, ok)
	}
	g, ok = facts.Guards[gauge]
	if !ok || g.Mutex != "rw" || !g.RW {
		t.Errorf("Guards[gauge] = %+v, %v; want mutex rw, RWMutex", g, ok)
	}
	if len(facts.Problems) != 0 {
		t.Errorf("well-formed fixture produced guard problems: %v", facts.Problems)
	}
}

func TestCollectFactsLockHeld(t *testing.T) {
	_, facts := loadFacts(t)
	count := FieldKey{Pkg: "accessfacts", Type: "table", Field: "count"}
	gauge := FieldKey{Pkg: "accessfacts", Type: "table", Field: "gauge"}

	cases := []struct {
		marker        string
		key           FieldKey
		kind          AccessKind
		heldExclusive bool
		heldShared    bool
		local         bool
	}{
		// Lock()...Unlock() brackets the write.
		{"locked-write", count, AccessWrite, true, false, false},
		// defer mu.Unlock() keeps the lock held to function end.
		{"deferred-write", count, AccessWrite, true, false, false},
		// No lock anywhere in scope.
		{"bare-write", count, AccessWrite, false, false, false},
		// RLock grants shared, not exclusive.
		{"shared-read", gauge, AccessRead, false, true, false},
		{"bare-read", gauge, AccessRead, false, false, false},
		// Root object declared in the enclosing function: pre-publication.
		{"local-write", count, AccessWrite, false, false, true},
		// Inside an xxxLocked method the receiver's lock is held by
		// convention.
		{"convention-write", count, AccessWrite, true, false, false},
	}
	for _, tc := range cases {
		a := accessAt(t, facts, tc.key, tc.marker)
		if a.Kind != tc.kind || a.HeldExclusive != tc.heldExclusive ||
			a.HeldShared != tc.heldShared || a.Local != tc.local {
			t.Errorf("%s: got kind=%v excl=%v shared=%v local=%v, want kind=%v excl=%v shared=%v local=%v",
				tc.marker, a.Kind, a.HeldExclusive, a.HeldShared, a.Local,
				tc.kind, tc.heldExclusive, tc.heldShared, tc.local)
		}
	}
}

func TestCollectFactsAtomic(t *testing.T) {
	_, facts := loadFacts(t)
	hits := FieldKey{Pkg: "accessfacts", Type: "table", Field: "hits"}
	boxed := FieldKey{Pkg: "accessfacts", Type: "table", Field: "boxed"}

	if !facts.AtomicTyped[boxed] {
		t.Errorf("AtomicTyped[%s] = false, want true", boxed)
	}
	if facts.AtomicTyped[hits] {
		t.Errorf("AtomicTyped[%s] = true, want false (plain int64)", hits)
	}

	cases := []struct {
		marker string
		key    FieldKey
		kind   AccessKind
	}{
		// &t.hits passed to atomic.AddInt64.
		{"atomic-op", hits, AccessAtomicOp},
		// Plain read beside the atomic writer: the torn-read bug class.
		{"torn-read", hits, AccessRead},
		// Method call on the box.
		{"box-op", boxed, AccessAtomicOp},
		// Returning the box by value forks its state.
		{"box-copy", boxed, AccessAtomicValue},
	}
	for _, tc := range cases {
		if a := accessAt(t, facts, tc.key, tc.marker); a.Kind != tc.kind {
			t.Errorf("%s: kind = %v, want %v", tc.marker, a.Kind, tc.kind)
		}
	}
}

func TestCollectFactsLockedCalls(t *testing.T) {
	_, facts := loadFacts(t)
	byLine := map[int]LockedCall{}
	for _, lc := range facts.LockedCalls {
		byLine[lc.Pos.Line] = lc
	}
	if len(facts.LockedCalls) != 2 {
		t.Fatalf("recorded %d locked calls, want 2: %v", len(facts.LockedCalls), facts.LockedCalls)
	}

	held := byLine[markerLine(t, "locked-call-held")]
	if held.Method != "resetLocked" || !held.HeldAny {
		t.Errorf("call under mu.Lock: %+v, want resetLocked with HeldAny", held)
	}
	bare := byLine[markerLine(t, "locked-call-bare")]
	if bare.Method != "resetLocked" || bare.HeldAny {
		t.Errorf("call without lock: %+v, want resetLocked without HeldAny", bare)
	}
}
