// Package pretrained is the registry of trained model checkpoints: which
// task-skilled models exist, how each is trained (architecture, seed,
// fine-tuning lineage), and how to load them from disk. It is shared by
// cmd/pretrain (which produces the checkpoints) and the experiment
// harness (which consumes them).
//
// The roster mirrors Table 1's model column:
//
//	GSM8k          → math-qwens, math-falcons
//	WMT16 de-en    → wmt-qwens, wmt-llamas, wmt-alma (fine-tuned)
//	XLSum          → xlsum-llamas, xlsum-qwens, xlsum-summarizer (fine-tuned)
//	SQuAD v2       → squad-llamas, squad-qwens, squad-falcons
package pretrained

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/model"
	"repro/internal/numerics"
	"repro/internal/tasks"
	"repro/internal/train"
)

// Job describes one checkpoint.
type Job struct {
	Name string
	Task string // math | translation | summarization | qa
	Arch model.Config
	Seed uint64
	// Base names the checkpoint this one fine-tunes from ("" = trained
	// from scratch).
	Base  string
	DType numerics.DType
	// Steps and Batch are the training budget that produces the shipped
	// checkpoint. General-purpose checkpoints deliberately stop short of
	// convergence on some tasks; fine-tunes (Base != "") train Steps
	// *additional* steps from their base, reaching near-perfect task
	// performance — the general-vs-specialized contrast of Observation #4.
	Steps int
	Batch int
}

// MathOperandMax bounds the arithmetic task's operands.
const MathOperandMax = 9

var (
	taskOnce  sync.Once
	mathTask  *tasks.MathTask
	transTask *tasks.TranslationTask
	summTask  *tasks.SummTask
	qaTask    *tasks.QATask
)

func initTasks() {
	taskOnce.Do(func() {
		mathTask = tasks.NewMathTask(MathOperandMax)
		transTask = tasks.NewTranslationTask()
		summTask = tasks.NewSummTask()
		qaTask = tasks.NewQATask()
	})
}

// MathTask returns the shared arithmetic task instance.
func MathTask() *tasks.MathTask { initTasks(); return mathTask }

// TranslationTask returns the shared translation task instance.
func TranslationTask() *tasks.TranslationTask { initTasks(); return transTask }

// SummTask returns the shared summarization task instance.
func SummTask() *tasks.SummTask { initTasks(); return summTask }

// QATask returns the shared QA task instance.
func QATask() *tasks.QATask { initTasks(); return qaTask }

// TaskByName resolves a task name to its TrainTask.
func TaskByName(name string) tasks.TrainTask {
	initTasks()
	switch name {
	case "math":
		return mathTask
	case "translation":
		return transTask
	case "summarization":
		return summTask
	case "qa":
		return qaTask
	default:
		panic(fmt.Sprintf("pretrained: unknown task %q", name))
	}
}

func arch(name string, d, heads, blocks, ff, maxSeq int) model.Config {
	return model.Config{
		Name: name, Vocab: 8 /* overwritten from task */, DModel: d,
		NHeads: heads, NBlocks: blocks, FFHidden: ff, MaxSeq: maxSeq,
		Eps: 1e-5, RopeTheta: 10000,
	}
}

// Jobs returns the full checkpoint roster in training order (bases before
// fine-tunes).
func Jobs() []Job {
	mathArch := arch("math", 48, 4, 2, 112, 28)
	wmtArch := arch("wmt", 40, 4, 2, 96, 26)
	xlsumArch := arch("xlsum", 40, 4, 2, 96, 32)
	squadArch := arch("squad", 32, 4, 2, 64, 26)
	bf := numerics.BF16
	return []Job{
		{Name: "math-qwens", Task: "math", Arch: mathArch, Seed: 11, DType: bf, Steps: 1100, Batch: 32},
		{Name: "math-falcons", Task: "math", Arch: mathArch, Seed: 12, DType: bf, Steps: 1100, Batch: 32},
		{Name: "wmt-qwens", Task: "translation", Arch: wmtArch, Seed: 21, DType: bf, Steps: 380, Batch: 16},
		{Name: "wmt-llamas", Task: "translation", Arch: wmtArch, Seed: 22, DType: bf, Steps: 380, Batch: 16},
		{Name: "wmt-alma", Task: "translation", Arch: wmtArch, Seed: 23, Base: "wmt-llamas", DType: bf, Steps: 700, Batch: 16},
		{Name: "xlsum-llamas", Task: "summarization", Arch: xlsumArch, Seed: 31, DType: bf, Steps: 130, Batch: 16},
		{Name: "xlsum-qwens", Task: "summarization", Arch: xlsumArch, Seed: 32, DType: bf, Steps: 130, Batch: 16},
		{Name: "xlsum-summarizer", Task: "summarization", Arch: xlsumArch, Seed: 33, Base: "xlsum-llamas", DType: bf, Steps: 400, Batch: 16},
		{Name: "squad-llamas", Task: "qa", Arch: squadArch, Seed: 41, DType: bf, Steps: 800, Batch: 32},
		{Name: "squad-qwens", Task: "qa", Arch: squadArch, Seed: 42, DType: bf, Steps: 800, Batch: 32},
		{Name: "squad-falcons", Task: "qa", Arch: squadArch, Seed: 43, DType: bf, Steps: 800, Batch: 32},
	}
}

// JobByName looks up one job.
func JobByName(name string) (Job, error) {
	for _, j := range Jobs() {
		if j.Name == name {
			return j, nil
		}
	}
	return Job{}, fmt.Errorf("pretrained: unknown checkpoint %q", name)
}

// Loader loads checkpoints from a directory, caching them. If a
// checkpoint file is missing and Fallback is true, the model is trained
// on the fly with FallbackSteps steps (slower and lower quality, but
// keeps tests and examples self-contained).
type Loader struct {
	Dir           string
	Fallback      bool
	FallbackSteps int

	mu    sync.Mutex
	cache map[string]*model.Model
}

// NewLoader returns a Loader over dir with on-the-fly fallback enabled.
func NewLoader(dir string) *Loader {
	return &Loader{Dir: dir, Fallback: true, FallbackSteps: 220, cache: map[string]*model.Model{}}
}

// DefaultDir locates the repository's checkpoint directory: the
// "pretrained" directory next to go.mod, found by walking up from the
// working directory (tests run from their package directory). It returns
// "pretrained" if no module root is found.
func DefaultDir() string {
	dir, err := os.Getwd()
	if err != nil {
		return "pretrained"
	}
	for i := 0; i < 8; i++ {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return filepath.Join(dir, "pretrained")
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			break
		}
		dir = parent
	}
	return "pretrained"
}

// Load returns the named checkpoint.
func (l *Loader) Load(name string) (*model.Model, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if m, ok := l.cache[name]; ok {
		return m, nil
	}
	path := filepath.Join(l.Dir, name+".gob")
	if m, err := model.LoadFile(path); err == nil {
		l.cache[name] = m
		return m, nil
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("pretrained: %s: %w", path, err)
	}
	if !l.Fallback {
		return nil, fmt.Errorf("pretrained: checkpoint %s missing (run cmd/pretrain)", path)
	}
	m, err := l.trainFallback(name)
	if err != nil {
		return nil, err
	}
	l.cache[name] = m
	return m, nil
}

// trainFallback trains the job (and its base, recursively) in-process.
func (l *Loader) trainFallback(name string) (*model.Model, error) {
	job, err := JobByName(name)
	if err != nil {
		return nil, err
	}
	task := TaskByName(job.Task)
	cfg := train.DefaultConfig(job.Seed)
	cfg.Steps = l.FallbackSteps
	cfg.EvalEvery = 0

	var tr *train.Trainable
	if job.Base == "" {
		if tr, err = train.Run(task, job.Arch, cfg); err != nil {
			return nil, err
		}
	} else {
		baseJob, err := JobByName(job.Base)
		if err != nil {
			return nil, err
		}
		baseCfg := cfg
		baseCfg.Seed = baseJob.Seed
		base, err := train.Run(task, baseJob.Arch, baseCfg)
		if err != nil {
			return nil, err
		}
		tr = base.CloneWeights()
		ftCfg := cfg
		ftCfg.Steps = l.FallbackSteps
		if err := train.Continue(tr, task, ftCfg); err != nil {
			return nil, err
		}
	}
	return tr.Export(job.Name, job.DType), nil
}
