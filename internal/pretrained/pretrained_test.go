package pretrained

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRegistryConsistent(t *testing.T) {
	seen := map[string]bool{}
	seeds := map[uint64]bool{}
	for _, j := range Jobs() {
		if seen[j.Name] {
			t.Fatalf("duplicate job %s", j.Name)
		}
		seen[j.Name] = true
		if seeds[j.Seed] {
			t.Fatalf("duplicate seed %d", j.Seed)
		}
		seeds[j.Seed] = true
		if j.Steps <= 0 || j.Batch <= 0 {
			t.Fatalf("%s: missing training budget", j.Name)
		}
		task := TaskByName(j.Task) // panics on unknown task
		arch := j.Arch
		arch.Vocab = task.Vocab().Size()
		if err := arch.Validate(); err != nil {
			t.Fatalf("%s: invalid arch: %v", j.Name, err)
		}
		if arch.MaxSeq < task.MaxLen() {
			t.Fatalf("%s: MaxSeq %d < task MaxLen %d", j.Name, arch.MaxSeq, task.MaxLen())
		}
		if j.Base != "" {
			if _, err := JobByName(j.Base); err != nil {
				t.Fatalf("%s: missing base %s", j.Name, j.Base)
			}
			base, _ := JobByName(j.Base)
			if base.Task != j.Task {
				t.Fatalf("%s: fine-tune task differs from base", j.Name)
			}
		}
	}
	if _, err := JobByName("nope"); err == nil {
		t.Fatal("unknown job should error")
	}
}

func TestTasksAreSingletons(t *testing.T) {
	if MathTask() != MathTask() || TranslationTask() != TranslationTask() {
		t.Fatal("task accessors should return shared instances")
	}
}

func TestLoaderReadsCheckpoints(t *testing.T) {
	dir := DefaultDir()
	if _, err := os.Stat(filepath.Join(dir, "math-qwens.gob")); err != nil {
		t.Skipf("checkpoints not present at %s; run cmd/pretrain", dir)
	}
	l := NewLoader(dir)
	m, err := l.Load("math-qwens")
	if err != nil {
		t.Fatal(err)
	}
	if m.Cfg.Vocab != MathTask().Vocab().Size() {
		t.Fatalf("loaded vocab %d != task vocab %d", m.Cfg.Vocab, MathTask().Vocab().Size())
	}
	// Cached: second load returns the same instance.
	m2, _ := l.Load("math-qwens")
	if m != m2 {
		t.Fatal("loader should cache")
	}
}

func TestDefaultDirFindsModuleRoot(t *testing.T) {
	dir := DefaultDir()
	if filepath.Base(dir) != "pretrained" {
		t.Fatalf("DefaultDir = %s", dir)
	}
	// Must resolve relative to go.mod, not the package directory.
	if filepath.Base(filepath.Dir(dir)) == "internal" {
		t.Fatalf("DefaultDir resolved inside internal/: %s", dir)
	}
}

func TestLoaderFallbackTrains(t *testing.T) {
	if testing.Short() {
		t.Skip("fallback training is slow")
	}
	l := NewLoader(t.TempDir()) // empty dir: forces fallback
	l.FallbackSteps = 30
	m, err := l.Load("squad-qwens")
	if err != nil {
		t.Fatal(err)
	}
	if m.Cfg.Name != "squad-qwens" {
		t.Fatal("fallback model misnamed")
	}
}

func TestLoaderNoFallbackErrors(t *testing.T) {
	l := NewLoader(t.TempDir())
	l.Fallback = false
	if _, err := l.Load("math-qwens"); err == nil {
		t.Fatal("expected missing-checkpoint error")
	}
}
