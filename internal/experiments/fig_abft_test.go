package experiments

import (
	"context"
	"strings"
	"testing"
)

func TestFigABFTSmoke(t *testing.T) {
	e, err := Get("fig_abft")
	if err != nil {
		t.Fatal(err)
	}
	out, err := e.Run(context.Background(), tinyCfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Recall%", "dense", "moe", "1bit-comp", "2bits-mem", "overhead"} {
		if !strings.Contains(out.Text, want) {
			t.Errorf("fig_abft text missing %q", want)
		}
	}
	for _, prof := range []string{"dense", "moe"} {
		for _, fm := range []string{"1bit-comp", "2bits-comp", "2bits-mem"} {
			key := "fig_abft." + prof + "." + fm + ".recall"
			r, ok := out.Numbers[key]
			if !ok {
				t.Fatalf("missing %s", key)
			}
			if r < 0 || r > 1 {
				t.Errorf("%s = %f out of range", key, r)
			}
			if fp := out.Numbers["fig_abft."+prof+"."+fm+".false_positives"]; fp != 0 {
				t.Errorf("%s/%s: %v false positives on the derived tolerance", prof, fm, fp)
			}
		}
	}
	if _, ok := out.Numbers["fig_abft.overhead_frac"]; !ok {
		t.Error("missing overhead number")
	}
}
