package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/numerics"
	"repro/internal/report"
	"repro/internal/tasks"
	"repro/internal/trace"
)

func init() {
	register(Experiment{
		ID:       "fig_propagation",
		Title:    "Propagation depth from traces: exponent vs mantissa bits, dense vs MoE",
		PaperRef: "Figs. 5-6 (propagation/cascade characterization), via the tracing layer",
		Run:      runFigPropagation,
	})
}

// runFigPropagation reproduces the paper's propagation-depth
// characterization from full campaign traces: every trial of a
// single-bit computational-fault campaign runs with a propagation probe
// (internal/trace) that diffs its layer activations against the clean
// baseline capture. The traces give, per highest-flipped-bit class,
// where the first divergence appears (it should be the injection site),
// how many downstream blocks the corruption cascades through, and what
// fraction of the post-site layers it saturates — exponent-bit flips
// should cascade through essentially the whole network while mantissa
// flips die inside the struck layer's numerical noise.
func runFigPropagation(ctx context.Context, cfg Config) (*Outcome, error) {
	cfg = cfg.withDefaults()
	o := newOutcome("fig_propagation", "Fault propagation depth from traces")
	dense, moe, err := moeModels(cfg)
	if err != nil {
		return nil, err
	}
	suite := tasks.NewSelfRefSuite("prop", cfg.Seed, cfg.Instances, 24, 10, []metrics.Kind{metrics.KindBLEU})
	dt := numerics.BF16

	var b strings.Builder
	t := report.NewTable("Profile", "Bits", "Fired", "Diverged%", "AtSite%", "Depth", "Blast%", "SDC%")
	for _, prof := range []struct {
		name string
		m    *model.Model
	}{{"dense", dense}, {"moe", moe}} {
		recs, err := cfg.tracedCampaign(ctx, "prop "+prof.name, core.Campaign{
			Model: prof.m, Suite: suite, Fault: faults.Comp1Bit,
			Trials:  cfg.Trials,
			Seed:    cfg.Seed ^ hash2("prop", prof.name, "comp1"),
			Workers: cfg.Workers,
		})
		if err != nil {
			return nil, err
		}

		groups := map[numerics.BitClass][]trace.Record{}
		byBit := map[int][]trace.Record{}
		for _, r := range recs {
			if !r.Fired {
				continue
			}
			cls := numerics.ClassifyBit(dt, r.HighestBit)
			groups[cls] = append(groups[cls], r)
			byBit[r.HighestBit] = append(byBit[r.HighestBit], r)
		}
		for _, cls := range []numerics.BitClass{numerics.ExponentBit, numerics.MantissaBit, numerics.SignBit} {
			g := groups[cls]
			if len(g) == 0 {
				continue
			}
			st := summarizeTraces(g)
			t.Row(prof.name, cls.String(), len(g),
				100*st.divergedFrac, 100*st.atSiteFrac, st.meanDepth, 100*st.meanBlast, 100*st.sdcFrac)
			key := prof.name + "." + shortClass(cls)
			o.set(key+".fired", float64(len(g)))
			o.set(key+".diverged_frac", st.divergedFrac)
			o.set(key+".first_div_at_site", st.atSiteFrac)
			o.set(key+".mean_depth", st.meanDepth)
			o.set(key+".mean_blast", st.meanBlast)
		}

		fmt.Fprintf(&b, "%s — mean propagation depth (blocks past tolerance) by flipped bit:\n", prof.name)
		bits := make([]int, 0, len(byBit))
		for bit := range byBit {
			bits = append(bits, bit)
		}
		sort.Ints(bits)
		blocks := prof.m.Cfg.NBlocks
		for _, bit := range bits {
			st := summarizeTraces(byBit[bit])
			bar := 0
			if blocks > 0 {
				bar = int(st.meanDepth / float64(blocks) * 40)
			}
			fmt.Fprintf(&b, "  bit %2d (%-8s) n=%-3d depth %5.2f  %s\n",
				bit, numerics.ClassifyBit(dt, bit), len(byBit[bit]), st.meanDepth,
				strings.Repeat("█", bar))
		}
		b.WriteByte('\n')
	}

	o.Text = t.String() + "\n" + b.String() +
		"Expected shape (Figs. 5-6): the first out-of-tolerance activation sits\n" +
		"at the injected layer itself (AtSite ≈ 100% of diverged trials), and\n" +
		"exponent-bit flips cascade through essentially every downstream block\n" +
		"(depth ≈ model depth, blast ≈ 100%) while mantissa flips drown in\n" +
		"kernel round-off inside the struck layer (depth ≈ 0) — the numerical\n" +
		"mechanism behind mantissa faults being overwhelmingly Masked.\n"
	return o, nil
}

// traceStats aggregates a group of fired trace records.
type traceStats struct {
	divergedFrac float64 // fraction with any out-of-tolerance layer
	atSiteFrac   float64 // of diverged: first divergence at the injected layer+position
	meanDepth    float64 // mean blocks past tolerance at the strike position
	meanBlast    float64 // mean fraction of post-site invocations past tolerance
	sdcFrac      float64 // fraction with a non-Masked outcome
}

func summarizeTraces(g []trace.Record) traceStats {
	var st traceStats
	diverged := 0
	atSite := 0
	for _, r := range g {
		if r.FirstDivergence != nil {
			diverged++
			if r.FirstDivergence.Layer == r.Layer && r.FirstDivergence.Pos == r.StrikePos {
				atSite++
			}
		}
		st.meanDepth += float64(r.PropagationDepth)
		st.meanBlast += r.BlastRadius
		if r.Outcome != "Masked" {
			st.sdcFrac++
		}
	}
	n := float64(len(g))
	if n == 0 {
		return st
	}
	st.divergedFrac = float64(diverged) / n
	st.atSiteFrac = frac(atSite, diverged)
	st.meanDepth /= n
	st.meanBlast /= n
	st.sdcFrac /= n
	return st
}

func shortClass(c numerics.BitClass) string {
	switch c {
	case numerics.ExponentBit:
		return "exp"
	case numerics.MantissaBit:
		return "mant"
	case numerics.SignBit:
		return "sign"
	}
	return c.String()
}

// tracedCampaign runs a campaign with full (every-trial) propagation
// tracing and returns the collected records. They are also forwarded to
// cfg.TraceSink when one is configured, so a cmd/figures -trace run
// captures them in its JSONL export.
func (c Config) tracedCampaign(ctx context.Context, label string, camp core.Campaign) ([]trace.Record, error) {
	var recs []trace.Record
	sink := func(r trace.Record) error {
		recs = append(recs, r)
		if c.TraceSink != nil {
			return c.TraceSink(r)
		}
		return nil
	}
	var final core.CampaignDone
	for ev := range core.NewRunner(camp, core.WithTrace(1, sink)).Stream(ctx) {
		switch e := ev.(type) {
		case core.Progress:
			if c.Progress != nil {
				fmt.Fprintf(c.Progress, "\r%-100s", report.ProgressLine(label, e))
			}
		case core.CampaignDone:
			final = e
		}
	}
	if c.Progress != nil {
		fmt.Fprintf(c.Progress, "\r%-100s\r", "")
	}
	return recs, final.Err
}
