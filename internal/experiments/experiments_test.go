package experiments

import (
	"context"
	"strings"
	"testing"
)

// tinyCfg keeps experiment tests fast.
var tinyCfg = Config{Trials: 12, Instances: 3, Seed: 11}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		// every paper artifact...
		"table1", "table2",
		"fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
		"fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17",
		"fig18", "fig19", "fig20", "fig21",
		// ...plus the observation-focused, extension, and ablation studies.
		"obs4", "ext1", "ext2", "abl1", "abl2", "abl3",
		// ABFT detection-layer extension (PR 3).
		"fig_abft",
		// Propagation-trace observability extension (PR 4).
		"fig_propagation",
		// Serving-under-faults extension (PR 8).
		"fig_serving",
	}
	have := map[string]bool{}
	for _, e := range All() {
		have[e.ID] = true
		if e.Title == "" || e.Run == nil {
			t.Errorf("%s: incomplete registration", e.ID)
		}
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("missing experiment %s", id)
		}
	}
	if len(have) != len(want) {
		t.Errorf("registry has %d experiments, want %d", len(have), len(want))
	}
	if _, err := Get("nope"); err == nil {
		t.Error("unknown id should error")
	}
}

func TestTable2Static(t *testing.T) {
	e, err := Get("table2")
	if err != nil {
		t.Fatal(err)
	}
	out, err := e.Run(context.Background(), tinyCfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"FP16", "BF16", "FP32", "6.55e+04"} {
		if !strings.Contains(out.Text, want) {
			t.Errorf("table2 missing %q", want)
		}
	}
	if out.Numbers["table2.FP16.expbits"] != 5 {
		t.Error("FP16 exponent bits wrong")
	}
}

func TestFig13Shapes(t *testing.T) {
	e, _ := Get("fig13")
	out, err := e.Run(context.Background(), tinyCfg)
	if err != nil {
		t.Fatal(err)
	}
	q := out.Numbers["fig13.QwenS.weight_std"]
	f := out.Numbers["fig13.FalconS.weight_std"]
	if !(q < f) {
		t.Errorf("QwenS std %.4f should be narrower than FalconS %.4f", q, f)
	}
}

func TestFig5ColumnPropagation(t *testing.T) {
	e, _ := Get("fig5")
	out, err := e.Run(context.Background(), tinyCfg)
	if err != nil {
		t.Fatal(err)
	}
	// The faulted layer shows a thin corruption; the next layer is fully
	// corrupted — the paper's central propagation asymmetry.
	if out.Numbers["fig5.faulted_layer_frac"] > 0.2 {
		t.Errorf("memory fault should corrupt ~1 column, got frac %.3f",
			out.Numbers["fig5.faulted_layer_frac"])
	}
	if out.Numbers["fig5.next_layer_frac"] < 0.9 {
		t.Errorf("next layer should be (nearly) fully corrupted, got %.3f",
			out.Numbers["fig5.next_layer_frac"])
	}
}

func TestFig6RowContainment(t *testing.T) {
	e, _ := Get("fig6")
	out, err := e.Run(context.Background(), tinyCfg)
	if err != nil {
		t.Fatal(err)
	}
	if out.Numbers["fig6.next_layer_frac"] > 0.5 {
		t.Errorf("computational fault should stay row-local, got %.3f",
			out.Numbers["fig6.next_layer_frac"])
	}
}

func TestHash2Distinct(t *testing.T) {
	a := hash2("a", "b")
	b := hash2("ab")
	c := hash2("a", "b", "c")
	if a == b || a == c || b == c {
		t.Error("hash2 collisions on trivially different inputs")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Trials == 0 || c.Instances == 0 || c.Seed == 0 || c.Dir == "" {
		t.Fatalf("defaults not applied: %+v", c)
	}
}
