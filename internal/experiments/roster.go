package experiments

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/numerics"
	"repro/internal/pretrained"
	"repro/internal/tasks"
)

// profileModel builds the untrained general-purpose surrogate of a family
// over the shared MC vocabulary (BF16, the paper's base datatype).
func profileModel(fam model.Family, seed uint64) (*model.Model, error) {
	vocab := tasks.GeneralVocab()
	cfg := model.StandardConfig(fam.String(), vocab.Size(), numerics.BF16)
	return model.Build(model.Spec{Config: cfg, Family: fam, Seed: seed})
}

// mcModels returns the three general-purpose profile models, mirroring
// Table 1's Llama3.1 / Qwen2.5 / Falcon3 roster for the MC suites.
func mcModels(cfg Config) (map[model.Family]*model.Model, error) {
	out := make(map[model.Family]*model.Model, 3)
	for _, fam := range model.Families {
		m, err := profileModel(fam, cfg.Seed+uint64(fam))
		if err != nil {
			return nil, err
		}
		out[fam] = m
	}
	return out, nil
}

// mcSuites builds the five multiple-choice suites.
func mcSuites(cfg Config) ([]*tasks.Suite, error) {
	var out []*tasks.Suite
	for _, name := range tasks.MCSuiteNames() {
		s, err := tasks.NewMCSuite(name, cfg.Seed, cfg.Instances)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// namedModel pairs a display name (the paper's model) with a checkpoint.
type namedModel struct {
	Display string
	Model   *model.Model
}

// generativeRoster maps each generative suite to its Table 1 models.
func generativeRoster(cfg Config) (map[string][]namedModel, map[string]*tasks.Suite, error) {
	loader := cfg.loader()
	load := func(name string) (*model.Model, error) {
		m, err := loader.Load(name)
		if err != nil {
			return nil, fmt.Errorf("roster: %s: %w", name, err)
		}
		return m, nil
	}
	roster := map[string][]struct{ disp, ckpt string }{
		"gsm8k": {
			{"Qwen2.5-S", "math-qwens"},
			{"Falcon3-S", "math-falcons"},
		},
		"wmt16": {
			{"Qwen2.5-S", "wmt-qwens"},
			{"Llama2-S", "wmt-llamas"},
			{"ALMA-S", "wmt-alma"},
		},
		"xlsum": {
			{"Llama3.1-S", "xlsum-llamas"},
			{"Qwen2.5-S", "xlsum-qwens"},
			{"Summarizer-S", "xlsum-summarizer"},
		},
		"squadv2": {
			{"Llama3.1-S", "squad-llamas"},
			{"Qwen2.5-S", "squad-qwens"},
			{"Falcon3-S", "squad-falcons"},
		},
	}
	models := map[string][]namedModel{}
	for suite, entries := range roster {
		for _, e := range entries {
			m, err := load(e.ckpt)
			if err != nil {
				return nil, nil, err
			}
			models[suite] = append(models[suite], namedModel{Display: e.disp, Model: m})
		}
	}
	suites := map[string]*tasks.Suite{
		"gsm8k":   pretrained.MathTask().Suite(cfg.Seed, cfg.Instances, true),
		"wmt16":   pretrained.TranslationTask().Suite(cfg.Seed, cfg.Instances),
		"xlsum":   pretrained.SummTask().Suite(cfg.Seed, cfg.Instances),
		"squadv2": pretrained.QATask().Suite(cfg.Seed, cfg.Instances),
	}
	return models, suites, nil
}

// generativeOrder fixes the display order of the generative suites.
var generativeOrder = []string{"gsm8k", "wmt16", "xlsum", "squadv2"}

// selfRefGenSuites returns the self-referential generative suites used by
// the MoE / gate / scale studies on untrained profile models.
func selfRefGenSuites(cfg Config) (translation, qa *tasks.Suite) {
	translation = tasks.NewSelfRefSuite("wmt16-like", cfg.Seed, cfg.Instances, 8, 12,
		[]metrics.Kind{metrics.KindBLEU, metrics.KindChrF})
	qa = tasks.NewSelfRefSuite("squad-like", cfg.Seed, cfg.Instances, 14, 6,
		[]metrics.Kind{metrics.KindEM, metrics.KindF1})
	return translation, qa
}
