package experiments

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/numerics"
	"repro/internal/pretrained"
	"repro/internal/prng"
	"repro/internal/report"
	"repro/internal/tasks"
	"repro/internal/train"
)

func init() {
	register(Experiment{
		ID:       "abl3",
		Title:    "Ablation 3: CoT recovery requires denoising training",
		PaperRef: "Observation #10 boundary condition",
		Run:      runAbl3,
	})
}

// cleanMathTask wraps MathTask but disables the input-corruption channel,
// producing a model trained only on pristine reasoning chains.
type cleanMathTask struct {
	*tasks.MathTask
}

// CorruptInputs overrides the noisy channel with the identity.
func (c cleanMathTask) CorruptInputs(_ *prng.Source, inputs []int, _ int) []int {
	return inputs
}

// runAbl3 trains two small math models — one on clean chains only, one
// with the denoising corruption the shipped checkpoints use — and
// compares their CoT-vs-direct resilience. It isolates the mechanism
// behind Observation #10: a model that has never seen a corrupted chain
// trusts its own (possibly faulty) intermediate tokens and loses the CoT
// advantage; denoising training restores it.
func runAbl3(ctx context.Context, cfg Config) (*Outcome, error) {
	cfg = cfg.withDefaults()
	o := newOutcome("abl3", "CoT denoising-training ablation")

	mt := pretrained.MathTask()
	arch := model.Config{
		Name: "abl3", Vocab: 8, DModel: 48, NHeads: 4, NBlocks: 2,
		FFHidden: 112, MaxSeq: 28, Eps: 1e-5, RopeTheta: 10000,
	}
	tcfg := train.DefaultConfig(404)
	tcfg.Steps = 900
	tcfg.Batch = 24

	variants := []struct {
		label string
		task  tasks.TrainTask
	}{
		{"denoising (shipped recipe)", mt},
		{"clean chains only", cleanMathTask{mt}},
	}

	t := report.NewTable("Training", "Fault", "CoT NormAcc", "Direct NormAcc", "CoT - Direct")
	for _, v := range variants {
		tr, err := train.Run(v.task, arch, tcfg)
		if err != nil {
			return nil, err
		}
		m := tr.Export("abl3-"+v.label, numerics.BF16)
		for _, fm := range []faults.Model{faults.Comp2Bit, faults.Mem2Bit} {
			var norms [2]float64
			for i, cot := range []bool{true, false} {
				suite := mt.Suite(cfg.Seed, cfg.Instances, cot)
				res, err := core.Campaign{
					Model: m, Suite: suite, Fault: fm,
					Trials: cfg.Trials, Seed: cfg.Seed ^ hash2("abl3", v.label, fm.String(), fmt.Sprint(cot)),
					ReasoningOnly: cot && fm == faults.Comp2Bit,
					Workers:       cfg.Workers,
				}.Run(ctx)
				if err != nil {
					return nil, err
				}
				norms[i] = res.Normalized(metrics.KindAccuracy).Value
			}
			t.Row(v.label, fm.String(), norms[0], norms[1], norms[0]-norms[1])
			key := fmt.Sprintf("%s.%v.gap", shortLabel(v.label), fm)
			o.set(key, norms[0]-norms[1])
		}
	}
	o.Text = t.String() + "\nExpected shape: denoising training shrinks (and, at the full\n" +
		"cmd/pretrain budget, flips positive) the CoT-minus-direct gap, while\n" +
		"the clean-chains model stays clearly negative — it blindly propagates\n" +
		"corrupted intermediate tokens. This bounds when the paper's\n" +
		"Observation #10 applies: the deployed model must actually possess\n" +
		"chain-recovery ability.\n"
	return o, nil
}

func shortLabel(l string) string {
	if l[0] == 'd' {
		return "denoise"
	}
	return "clean"
}
