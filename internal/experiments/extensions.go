package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/mitigate"
	"repro/internal/model"
	"repro/internal/outcome"
	"repro/internal/pretrained"
	"repro/internal/prng"
	"repro/internal/report"
	"repro/internal/tasks"
)

// These experiments go beyond the paper's figures: they implement its
// future-work directions (fault isolation / mitigation) and ablate the
// reproduction's own design choices.

func init() {
	register(Experiment{
		ID:       "ext1",
		Title:    "Extension 1: Range restriction as a fault-isolation defense",
		PaperRef: "§7 LLM providers (fault isolation); cites Chen et al. [12]",
		Run:      runExt1,
	})
	register(Experiment{
		ID:       "ext2",
		Title:    "Extension 2: ABFT weight-checksum detection of memory faults",
		PaperRef: "§5 related work (ALBERTA [46], checksums [49])",
		Run:      runExt2,
	})
	register(Experiment{
		ID:       "abl1",
		Title:    "Ablation 1: site-sampling weighting (layer-type-uniform vs instance-uniform)",
		PaperRef: "§3.2 sampling; Figure 14 discussion",
		Run:      runAbl1,
	})
	register(Experiment{
		ID:       "abl2",
		Title:    "Ablation 2: distortion-classifier threshold sensitivity",
		PaperRef: "§4.1.1 SDC taxonomy",
		Run:      runAbl2,
	})
}

func runExt1(ctx context.Context, cfg Config) (*Outcome, error) {
	cfg = cfg.withDefaults()
	o := newOutcome("ext1", "Range restriction")
	m, err := cfg.loader().Load("math-qwens")
	if err != nil {
		return nil, err
	}
	suite := pretrained.MathTask().Suite(cfg.Seed, cfg.Instances, true)

	// Calibrate the per-layer activation ranges on held-out fault-free
	// prompts (a different seed than the evaluation suite).
	calib := pretrained.MathTask().Suite(cfg.Seed+991, 16, true)
	profile := mitigate.Calibrate(m.Clone(), calib, 16)

	t := report.NewTable("Fault", "Unprotected NormAcc", "Protected NormAcc", "Recovered%")
	for _, fm := range []faults.Model{faults.Comp2Bit, faults.Mem2Bit} {
		base := core.Campaign{
			Model: m, Suite: suite, Fault: fm,
			Trials: cfg.Trials, Seed: cfg.Seed ^ hash2("ext1", fm.String()),
			Workers: cfg.Workers,
		}
		resPlain, err := base.Run(ctx)
		if err != nil {
			return nil, err
		}
		restrictor := mitigate.NewRestrictor(profile)
		base.ExtraHook = restrictor.Hook
		resProt, err := base.Run(ctx)
		if err != nil {
			return nil, err
		}
		plain := resPlain.Normalized(metrics.KindAccuracy).Value
		prot := resProt.Normalized(metrics.KindAccuracy).Value
		recovered := 0.0
		if plain < 1 {
			recovered = (prot - plain) / (1 - plain) * 100
		}
		t.Row(fm.String(), plain, prot, recovered)
		o.set(fm.String()+".plain", plain)
		o.set(fm.String()+".protected", prot)
	}
	o.Text = fmt.Sprintf("profiled %d layers on %d calibration prompts (margin 1.25x)\n\n",
		profile.Layers(), 16) + t.String() +
		"\nExpected shape: clamping layer outputs to profiled ranges removes\n" +
		"most of the degradation — the dominant SDCs come from exponent-MSB\n" +
		"flips whose 1e30-scale values range restriction squashes (Figs. 9-10).\n"
	return o, nil
}

func runExt2(ctx context.Context, cfg Config) (*Outcome, error) {
	cfg = cfg.withDefaults()
	o := newOutcome("ext2", "ABFT weight-checksum detection")
	m, err := cfg.loader().Load("wmt-qwens")
	if err != nil {
		return nil, err
	}
	wm := m.Clone()
	wc := mitigate.NewWeightChecksums(wm)
	if v := wc.Verify(wm); len(v) != 0 {
		return nil, fmt.Errorf("ext2: fault-free model reports %d violations", len(v))
	}

	sampler, err := faults.NewSampler(wm, nil)
	if err != nil {
		return nil, err
	}
	src := prng.New(cfg.Seed ^ hash2("ext2"))
	detected, localized := 0, 0
	trials := cfg.Trials
	for i := 0; i < trials; i++ {
		// The checksum sweep runs outside a campaign, so honor ctx here.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		site := sampler.Sample(src.Split(uint64(i)), faults.Mem2Bit, 1)
		inj, err := faults.Arm(wm, site, 0)
		if err != nil {
			return nil, err
		}
		violations := wc.Verify(wm)
		if len(violations) > 0 {
			detected++
			if len(violations) == 1 && violations[0].Layer == site.Layer && violations[0].Column == site.Col {
				localized++
			}
		}
		inj.Disarm()
	}
	dRate := float64(detected) / float64(trials)
	lRate := float64(localized) / float64(trials)
	var b strings.Builder
	fmt.Fprintf(&b, "%d 2bits-mem weight faults, column checksums over every linear layer\n\n", trials)
	fmt.Fprintf(&b, "detected:                 %5.1f%%\n", dRate*100)
	fmt.Fprintf(&b, "localized to exact cell:  %5.1f%%\n", lRate*100)
	b.WriteString("\nNear-perfect coverage is expected: a flipped weight bit moves exactly\n" +
		"one column sum, and weights are static during inference. Misses can\n" +
		"only come from flips too small for the relative tolerance (low mantissa\n" +
		"bits of tiny weights) — which are also the faults that never cause SDCs.\n")
	o.Text = b.String()
	o.set("detected", dRate)
	o.set("localized", lRate)
	return o, nil
}

func runAbl1(ctx context.Context, cfg Config) (*Outcome, error) {
	cfg = cfg.withDefaults()
	o := newOutcome("abl1", "Sampling-weighting ablation")
	_, moe, err := moeModels(cfg)
	if err != nil {
		return nil, err
	}
	mmlu, err := tasks.NewMCSuite("mmlu", cfg.Seed, cfg.Instances)
	if err != nil {
		return nil, err
	}

	// Layer-type-uniform (the paper's §3.2 hierarchy, our default).
	resType, err := core.Campaign{
		Model: moe, Suite: mmlu, Fault: faults.Mem2Bit,
		Trials: cfg.Trials, Seed: cfg.Seed ^ hash2("abl1", "type"),
		Workers: cfg.Workers,
	}.Run(ctx)
	if err != nil {
		return nil, err
	}

	// Instance-uniform: every weight matrix equally likely, so the 8
	// expert MLPs soak up ~8x more faults than the dense model's single
	// MLP would. Emulated by a filter-free sampler over instances via
	// expert-stratified seeds: we re-weight by running a campaign
	// restricted to expert layers and one restricted to non-expert
	// layers, mixing by instance counts.
	expertOnly := func(ref model.LayerRef) bool { return ref.Expert >= 0 }
	nonExpert := func(ref model.LayerRef) bool { return ref.Expert < 0 }
	resExp, err := core.Campaign{
		Model: moe, Suite: mmlu, Fault: faults.Mem2Bit,
		Trials: cfg.Trials, Seed: cfg.Seed ^ hash2("abl1", "exp"),
		Filter: expertOnly, Workers: cfg.Workers,
	}.Run(ctx)
	if err != nil {
		return nil, err
	}
	resNon, err := core.Campaign{
		Model: moe, Suite: mmlu, Fault: faults.Mem2Bit,
		Trials: cfg.Trials, Seed: cfg.Seed ^ hash2("abl1", "non"),
		Filter: nonExpert, Workers: cfg.Workers,
	}.Run(ctx)
	if err != nil {
		return nil, err
	}
	// Instance-uniform mixture weights: parameter-count shares.
	expertParams := 8 * 3 * moe.Cfg.DModel * moe.Cfg.FFHidden
	otherParams := 4*moe.Cfg.DModel*moe.Cfg.DModel + moe.Cfg.DModel*moe.Cfg.NumExperts
	wExp := float64(expertParams) / float64(expertParams+otherParams)
	instUniform := wExp*resExp.MaskedRate() + (1-wExp)*resNon.MaskedRate()

	t := report.NewTable("Sampling", "MoE masked rate (mmlu, 2bits-mem)")
	t.Row("layer-type-uniform (§3.2)", resType.MaskedRate())
	t.Row("instance-uniform (weights)", instUniform)
	t.Row("  experts only", resExp.MaskedRate())
	t.Row("  attention+router only", resNon.MaskedRate())
	o.Text = t.String() + "\nInstance-uniform sampling funnels most faults into the 24 expert\n" +
		"matrices, 75% of which are cold for any given token — inflating MoE's\n" +
		"apparent resilience. The §3.2 hierarchy avoids that bias; this is why\n" +
		"the sampler weights blocks, then layer TYPES, then instances.\n"
	o.set("type_uniform", resType.MaskedRate())
	o.set("instance_uniform", instUniform)
	return o, nil
}

func runAbl2(ctx context.Context, cfg Config) (*Outcome, error) {
	cfg = cfg.withDefaults()
	o := newOutcome("abl2", "Distortion-threshold sensitivity")
	m, err := cfg.loader().Load("math-qwens")
	if err != nil {
		return nil, err
	}
	suite := pretrained.MathTask().Suite(cfg.Seed, cfg.Instances, true)
	t := report.NewTable("RepetitionFrac thr", "LengthExplosion thr", "Distorted", "Subtle", "Masked")
	for _, th := range []outcome.Thresholds{
		{RepetitionFrac: 0.3, LengthExplosion: 2},
		{RepetitionFrac: 0.5, LengthExplosion: 3}, // defaults
		{RepetitionFrac: 0.7, LengthExplosion: 5},
	} {
		res, err := core.Campaign{
			Model: m, Suite: suite, Fault: faults.Mem2Bit,
			Trials: cfg.Trials, Seed: cfg.Seed ^ hash2("abl2"), // same faults each row
			Thresholds: th, Workers: cfg.Workers,
		}.Run(ctx)
		if err != nil {
			return nil, err
		}
		tally := res.Tally()
		t.Row(th.RepetitionFrac, th.LengthExplosion, tally.Distorted, tally.Subtle, tally.Masked)
		o.set(fmt.Sprintf("rep%.1f.distorted", th.RepetitionFrac), float64(tally.Distorted))
	}
	o.Text = t.String() + "\nTightening the thresholds only moves borderline outputs between the\n" +
		"distorted class and the answer-based classes; the headline claims\n" +
		"(Figs. 8-10: subtle dominates, mem >> comp distortion) hold across\n" +
		"this range.\n"
	return o, nil
}
