package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/abft"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/gen"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/numerics"
	"repro/internal/report"
	"repro/internal/tasks"
)

func init() {
	register(Experiment{
		ID:       "fig_abft",
		Title:    "ABFT extension: checksum-GEMM detection recall by bit position and runtime overhead",
		PaperRef: "§6 related work (ReaLM-style ABFT over the §3 fault models)",
		Run:      runFigABFT,
	})
}

// runFigABFT measures the online checksum detector against every fault
// model on the dense and MoE profiles: per-bit detection recall (the
// ReaLM-shaped result — exponent-bit corruptions are caught, low-order
// mantissa flips fall below the kernel noise floor and escape), noise
// false positives, and the wall-clock overhead of checking every layer.
func runFigABFT(ctx context.Context, cfg Config) (*Outcome, error) {
	cfg = cfg.withDefaults()
	o := newOutcome("fig_abft", "ABFT detection recall and overhead")
	dense, moe, err := moeModels(cfg)
	if err != nil {
		return nil, err
	}
	suite := tasks.NewSelfRefSuite("abft", cfg.Seed, cfg.Instances, 24, 10, []metrics.Kind{metrics.KindBLEU})

	var b strings.Builder
	t := report.NewTable("Profile", "Fault", "Fired", "Recall%", "ExpRecall%", "MantRecall%", "FalsePos", "Corrected")
	dt := numerics.BF16
	for _, prof := range []struct {
		name string
		m    *model.Model
	}{{"dense", dense}, {"moe", moe}} {
		for _, fm := range faults.Models {
			res, err := cfg.campaign(ctx, fmt.Sprintf("abft %s/%v", prof.name, fm), core.Campaign{
				Model: prof.m, Suite: suite, Fault: fm,
				Trials:  cfg.Trials,
				Seed:    cfg.Seed ^ hash2("abft", prof.name, fm.String()),
				Workers: cfg.Workers,
				ABFT:    &core.ABFTConfig{},
			})
			if err != nil {
				return nil, err
			}
			s := res.Detection()
			expFired, expDet, mantFired, mantDet := 0, 0, 0, 0
			byBit := res.DetectionByBit()
			for _, br := range byBit {
				switch numerics.ClassifyBit(dt, br.Bit) {
				case numerics.ExponentBit:
					expFired += br.Fired
					expDet += br.Detected
				case numerics.MantissaBit:
					mantFired += br.Fired
					mantDet += br.Detected
				}
			}
			t.Row(prof.name, fm.String(), s.Fired, 100*s.Recall(),
				100*frac(expDet, expFired), 100*frac(mantDet, mantFired),
				s.FalsePositives, s.Corrected)
			key := prof.name + "." + fm.String()
			o.set(key+".recall", s.Recall())
			o.set(key+".exp_recall", frac(expDet, expFired))
			o.set(key+".false_positives", float64(s.FalsePositives))

			fmt.Fprintf(&b, "%s / %v — detection recall by highest flipped bit:\n", prof.name, fm)
			for _, br := range byBit {
				r := frac(br.Detected, br.Fired)
				fmt.Fprintf(&b, "  bit %2d (%-8s) %3d/%3d %6.1f%% %s\n",
					br.Bit, numerics.ClassifyBit(dt, br.Bit), br.Detected, br.Fired,
					100*r, strings.Repeat("█", int(r*40)))
			}
			b.WriteByte('\n')
		}
	}

	// Wall-clock overhead of checking every linear layer, measured on
	// fault-free generation over the suite (best case for the adversary:
	// no faults, so the entire cost is the checksum arithmetic).
	base, checked, err := abftOverhead(dense, suite)
	if err != nil {
		return nil, err
	}
	overhead := 0.0
	if base > 0 {
		overhead = (checked - base) / base
	}
	o.set("overhead_frac", overhead)

	o.Text = t.String() + "\n" + b.String() +
		fmt.Sprintf("All-layer checking overhead: %.1f%% (unchecked %.0fms vs checked %.0fms)\n\n",
			100*overhead, 1000*base, 1000*checked) +
		"Expected shape (ReaLM): exponent-bit computational faults are detected\n" +
		"near-100% — the flip multiplies the struck value by 2^(2^i), towering\n" +
		"over the float32 noise floor — while low-order mantissa flips perturb\n" +
		"the checksum by less than kernel round-off and escape (they are the\n" +
		"Masked faults of Figure 9, so missing them is free). Memory faults on\n" +
		"small-magnitude weights sit in between.\n"
	return o, nil
}

func frac(num, den int) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// abftOverhead times fault-free generation over the suite with no checker
// and with every layer checksummed, interleaving repetitions so clock
// drift hits both arms equally.
func abftOverhead(m *model.Model, suite *tasks.Suite) (base, checked float64, err error) {
	run := func(ch *abft.Checker) error {
		if ch != nil {
			m.SetChecker(ch)
			defer m.SetChecker(nil)
		}
		for _, inst := range suite.Instances {
			gen.Generate(m, inst.Prompt, gen.Defaults(inst.MaxNew))
		}
		return nil
	}
	ch := abft.New(abft.Config{})
	if err := ch.ProtectAll(m); err != nil {
		return 0, 0, err
	}
	// One untimed warmup pair, then interleaved timed reps.
	run(nil)
	run(ch)
	const reps = 5
	for i := 0; i < reps; i++ {
		t0 := time.Now() //llmfi:allow determinism overhead benchmark: the measured quantity IS wall time
		run(nil)
		t1 := time.Now() //llmfi:allow determinism overhead benchmark: the measured quantity IS wall time
		run(ch)
		base += t1.Sub(t0).Seconds()
		checked += time.Since(t1).Seconds() //llmfi:allow determinism overhead benchmark: the measured quantity IS wall time
	}
	return base / reps, checked / reps, nil
}
