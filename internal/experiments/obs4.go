package experiments

import (
	"context"
	"fmt"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/report"
	"repro/internal/tasks"
)

func init() {
	register(Experiment{
		ID:       "obs4",
		Title:    "Observation #4: fine-tuned models vs general-purpose models under memory faults",
		PaperRef: "§4.2.2, Figure 3(d)",
		Run:      runObs4,
	})
}

// runObs4 isolates the right-hand bars of Figure 3(d): on the
// translation and summarization workloads, the task-fine-tuned
// checkpoints (ALMA-S, Summarizer-S) are compared against their
// general-purpose counterparts under 2-bit memory faults. The paper
// attributes the fine-tuned models' edge to their stronger grip on
// output structure and fluency; in this reproduction that manifests as
// sharper output distributions (lower-entropy logits survive larger
// perturbations before the argmax flips).
func runObs4(ctx context.Context, cfg Config) (*Outcome, error) {
	cfg = cfg.withDefaults()
	o := newOutcome("obs4", "Fine-tuned vs general under memory faults")
	genModels, genSuites, err := generativeRoster(cfg)
	if err != nil {
		return nil, err
	}

	groups := []struct {
		suite     string
		fineTuned string
	}{
		{"wmt16", "ALMA-S"},
		{"xlsum", "Summarizer-S"},
	}
	t := report.NewTable("Suite", "Model", "Role", "Fault-free", "NormPerf (2bits-mem)")
	for _, g := range groups {
		suite := genSuites[g.suite]
		var ftNorm, genSum float64
		genN := 0
		for _, nm := range genModels[g.suite] {
			res, err := cfg.campaign(ctx, fmt.Sprintf("obs4 %s/%s", g.suite, nm.Display), core.Campaign{
				Model: nm.Model, Suite: suite, Fault: faults.Mem2Bit,
				Trials: cfg.Trials, Seed: cfg.Seed ^ hash2("obs4", g.suite, nm.Display),
				Workers: cfg.Workers,
			})
			if err != nil {
				return nil, err
			}
			role := "general"
			if nm.Display == g.fineTuned {
				role = "fine-tuned"
			}
			norm := res.NormalizedPrimary().Value
			t.Row(g.suite, nm.Display, role,
				res.Baseline.MetricMeans[suite.Metrics[0]], norm)
			if nm.Display == g.fineTuned {
				ftNorm = norm
			} else {
				genSum += norm
				genN++
			}
		}
		o.set(g.suite+".finetuned", ftNorm)
		o.set(g.suite+".general_avg", genSum/float64(genN))
	}
	o.Text = t.String() + "\nExpected shape (Obs #4): the fine-tuned checkpoint matches or beats the\n" +
		"general-purpose models' normalized performance under memory faults,\n" +
		"on top of its (much) higher fault-free quality — so its absolute\n" +
		"faulty-output quality dominates on both axes.\n"
	_ = tasks.Generative // keep the tasks import for the doc cross-reference
	return o, nil
}
