package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/faults"
	"repro/internal/gen"
	"repro/internal/metrics"
	"repro/internal/mitigate"
	"repro/internal/model"
	"repro/internal/report"
	"repro/internal/serve"
	"repro/internal/serve/loadgen"
	"repro/internal/tasks"
)

func init() {
	register(Experiment{
		ID:       "fig_serving",
		Title:    "Serving extension: latency and SLO violations under live fault injection, ABFT off/site/all",
		PaperRef: "§5 end-to-end perspective (offline trial contract carried into a live service)",
		Run:      runFigServing,
	})
}

// runFigServing drives concurrent request streams at the live serving
// engine while injecting one fault per request across all five surfaces
// (linear, KV cache, norm gains, embedding rows, attention activations),
// and measures what an operator would: p50/p99 request latency, the
// SLO-violation rate (SLO = 2x the clean pass's p99), outcome mix, and
// ABFT detections under three protection arms — off, site-scoped, and
// all-layers. The headline is the coverage boundary: ABFT checksums the
// linear GEMMs, so KV/norm/embed/attention corruptions pass every check
// while still producing SDCs.
func runFigServing(ctx context.Context, cfg Config) (*Outcome, error) {
	cfg = cfg.withDefaults()
	o := newOutcome("fig_serving", "Serving under faults: latency, SLO violations, and detection")

	vocab := tasks.GeneralVocab()
	m, err := profileModel(model.LlamaS, cfg.Seed+7001)
	if err != nil {
		return nil, err
	}
	const (
		streams   = 8
		maxNew    = 12
		promptLen = 16
	)
	requests := cfg.Trials
	suite := tasks.NewSelfRefSuite("serving", cfg.Seed, cfg.Instances, promptLen, maxNew, []metrics.Kind{metrics.KindBLEU})
	prompts := make([][]int, len(suite.Instances))
	baselines := make([][]int, len(suite.Instances))
	for i, inst := range suite.Instances {
		prompts[i] = inst.Prompt
		baselines[i] = gen.Generate(m, inst.Prompt, gen.Defaults(maxNew)).Tokens
	}

	type armResult struct {
		st       *loadgen.Stats
		detected int64
	}
	runArm := func(inject *serve.InjectConfig, slo time.Duration) (*armResult, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		e, err := serve.NewEngine(serve.Config{
			Model: m, Vocab: vocab, Width: streams, SLO: slo, Inject: inject,
		})
		if err != nil {
			return nil, err
		}
		runCtx, cancel := context.WithCancel(ctx)
		runDone := make(chan error, 1)
		go func() { runDone <- e.Run(runCtx) }()
		// Every arm uses the same load seed: identical requests and, in
		// the fault arms, identical per-request fault sites, so latency
		// and detection differences are attributable to the arm alone.
		st, lerr := loadgen.Run(ctx, e, loadgen.Config{
			Streams: streams, Requests: requests, Prompts: prompts,
			Baselines: baselines, MaxNew: maxNew,
			Seed: cfg.Seed ^ hash2("serving", "load"), SLO: slo,
		})
		cancel()
		if rerr := <-runDone; lerr == nil {
			lerr = rerr
		}
		if lerr != nil {
			return nil, lerr
		}
		return &armResult{st: st, detected: e.Metrics().Snapshot().Detected}, nil
	}
	inject := func(abft *serve.ABFTConfig) *serve.InjectConfig {
		return &serve.InjectConfig{
			Fault:    faults.Comp1Bit,
			Surfaces: faults.Surfaces,
			Seed:     cfg.Seed + 7070,
			ABFT:     abft,
		}
	}

	// Warmup pass (cold allocator and page-in costs must not set the
	// objective), then a clean pass whose p99 defines the SLO.
	if _, err := runArm(nil, 0); err != nil {
		return nil, err
	}
	clean, err := runArm(nil, 0)
	if err != nil {
		return nil, err
	}
	slo := 2 * clean.st.P99

	arms := []struct {
		name string
		cfg  *serve.InjectConfig
	}{
		{"clean", nil},
		{"abft-off", inject(nil)},
		{"abft-site", inject(&serve.ABFTConfig{Policy: mitigate.PolicyDetect})},
		{"abft-all", inject(&serve.ABFTConfig{Policy: mitigate.PolicyDetect, AllLayers: true})},
	}
	t := report.NewTable("Arm", "OK", "Fired", "p50 ms", "p99 ms", "SLOviol%", "Masked%", "SDC%", "Detected")
	for _, a := range arms {
		r, err := runArm(a.cfg, slo)
		if err != nil {
			return nil, err
		}
		st := r.st
		masked := st.Outcomes["Masked"]
		sdc := st.Outcomes["SDC-subtle"] + st.Outcomes["SDC-distorted"]
		classified := masked + sdc
		t.Row(a.name, st.OK, st.Fired,
			float64(st.P50)/float64(time.Millisecond),
			float64(st.P99)/float64(time.Millisecond),
			100*float64(st.SLOViolations)/float64(requests),
			100*frac(masked, classified), 100*frac(sdc, classified),
			r.detected)
		key := a.name
		o.set(key+".p50_ms", float64(st.P50)/float64(time.Millisecond))
		o.set(key+".p99_ms", float64(st.P99)/float64(time.Millisecond))
		o.set(key+".slo_violation_rate", frac(st.SLOViolations, requests))
		if a.cfg != nil {
			o.set(key+".fired", float64(st.Fired))
			o.set(key+".sdc_rate", frac(sdc, classified))
			o.set(key+".detected", float64(r.detected))
		}
	}

	o.Text = t.String() + fmt.Sprintf(`
Serving %d requests over %d concurrent streams (SLO = 2x clean p99 = %.2fms).
Each campaign request carries one fault sampled uniformly over the five
surfaces: linear layers, KV cache, RMSNorm gains, embedding rows, and
attention activations. Expected shape: the site-scoped and all-layers
ABFT arms detect only linear-surface strikes — the checksum verifies
out = W*in for each GEMM, so corruption of the GEMM's *inputs* (KV
cache, attention activations) or of pre-GEMM state (norm gains,
embedding rows) passes every check while still producing SDCs. The
all-layers arm pays the largest latency premium for the same recall on
this fault mix, which is the serving-side cost/coverage trade-off.
`, requests, streams, float64(slo)/float64(time.Millisecond))
	return o, nil
}
