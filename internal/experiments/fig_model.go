package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/numerics"
	"repro/internal/pretrained"
	"repro/internal/quant"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/tasks"
)

func init() {
	register(Experiment{
		ID:       "fig13",
		Title:    "Figure 13: Weight and neuron value distributions of the three model families",
		PaperRef: "Observation #3",
		Run:      runFig13,
	})
	register(Experiment{
		ID:       "fig14",
		Title:    "Figure 14: MoE vs dense resilience on multiple-choice and generative tasks",
		PaperRef: "Observation #5",
		Run:      runFig14,
	})
	register(Experiment{
		ID:       "fig15",
		Title:    "Figure 15: Faults in MoE gate layers change expert selection and outputs",
		PaperRef: "Observation #6",
		Run:      runFig15,
	})
	register(Experiment{
		ID:       "fig16",
		Title:    "Figure 16: Resilience across model scales",
		PaperRef: "Observation #7",
		Run:      runFig16,
	})
	register(Experiment{
		ID:       "fig17",
		Title:    "Figure 17: Resilience of GPTQ-style quantized models",
		PaperRef: "Observation #8",
		Run:      runFig17,
	})
}

func runFig13(ctx context.Context, cfg Config) (*Outcome, error) {
	cfg = cfg.withDefaults()
	o := newOutcome("fig13", "Weight/neuron distributions (down_proj, last block)")
	profs, err := mcModels(cfg)
	if err != nil {
		return nil, err
	}
	suite, err := tasks.NewMCSuite("mmlu", cfg.Seed, 1)
	if err != nil {
		return nil, err
	}
	var b strings.Builder
	for _, fam := range model.Families {
		m := profs[fam]
		last := m.Cfg.NBlocks - 1
		w, err := m.Layer(model.LayerRef{Block: last, Kind: model.KindDown, Expert: -1})
		if err != nil {
			return nil, err
		}
		// Weights.
		var wvals []float64
		for r := 0; r < w.In(); r++ {
			for c := 0; c < w.Out(); c++ {
				wvals = append(wvals, w.Get(r, c))
			}
		}
		ws := stats.Summarize(wvals)
		// Neurons: capture the layer's outputs over a sample prompt.
		ref := model.LayerRef{Block: last, Kind: model.KindDown, Expert: -1}
		_, cs := tracedRun(m.Clone(), suite.Instances[0].Prompt, 0, []model.LayerRef{ref})
		var nvals []float64
		nt := cs.tensorOf(ref)
		for _, v := range nt.Data {
			nvals = append(nvals, float64(v))
		}
		ns := stats.Summarize(nvals)

		fmt.Fprintf(&b, "%s:\n  weights: std %.4f  p01 %.4f  p99 %.4f  range [%.4f, %.4f]\n",
			fam, ws.Std, ws.P01, ws.P99, ws.Min, ws.Max)
		fmt.Fprintf(&b, "  neurons: std %.4f  p01 %.4f  p99 %.4f\n", ns.Std, ns.P01, ns.P99)
		b.WriteString(histogramArt(wvals, ws))
		o.set(fam.String()+".weight_std", ws.Std)
	}
	b.WriteString("\nExpected shape: the three families have visibly different widths\n" +
		"(QwenS narrow Gaussian < LlamaS Laplace < FalconS wide uniform), the\n" +
		"independent variable behind their differing resilience (Obs #3).\n")
	o.Text = b.String()
	return o, nil
}

// histogramArt renders a 31-bin histogram over ±3 std.
func histogramArt(vals []float64, s stats.Summary) string {
	lo, hi := -3*s.Std, 3*s.Std
	h := stats.NewHistogram(vals, lo, hi, 31)
	fr := h.Fractions()
	maxf := 0.0
	for _, f := range fr {
		if f > maxf {
			maxf = f
		}
	}
	var b strings.Builder
	b.WriteString("  ")
	levels := []rune(" ▁▂▃▄▅▆▇█")
	for _, f := range fr {
		idx := 0
		if maxf > 0 {
			idx = int(f / maxf * float64(len(levels)-1))
		}
		b.WriteRune(levels[idx])
	}
	fmt.Fprintf(&b, "  (bins over ±3σ, under %d over %d)\n", h.Under, h.Over)
	return b.String()
}

// moeModels builds the dense model and its 2-of-8 MoE counterpart with
// identical attention weights (the MoE adds a router and 8 experts).
func moeModels(cfg Config) (dense, moe *model.Model, err error) {
	vocab := tasks.GeneralVocab()
	base := model.StandardConfig("dense", vocab.Size(), numerics.BF16)
	dense, err = model.Build(model.Spec{Config: base, Family: model.LlamaS, Seed: cfg.Seed + 101})
	if err != nil {
		return nil, nil, err
	}
	moe, err = model.Build(model.Spec{Config: model.MoEConfig(base), Family: model.LlamaS, Seed: cfg.Seed + 101})
	if err != nil {
		return nil, nil, err
	}
	return dense, moe, nil
}

func runFig14(ctx context.Context, cfg Config) (*Outcome, error) {
	cfg = cfg.withDefaults()
	o := newOutcome("fig14", "MoE vs dense resilience")
	dense, moe, err := moeModels(cfg)
	if err != nil {
		return nil, err
	}
	mmlu, err := tasks.NewMCSuite("mmlu", cfg.Seed, cfg.Instances)
	if err != nil {
		return nil, err
	}
	arc, err := tasks.NewMCSuite("arc", cfg.Seed, cfg.Instances)
	if err != nil {
		return nil, err
	}
	trans, qa := selfRefGenSuites(cfg)
	suites := []*tasks.Suite{mmlu, arc, trans, qa}

	t := report.NewTable("Suite", "Type", "Dense NormPerf", "MoE NormPerf", "MoE - Dense")
	for _, suite := range suites {
		var norms [2]float64
		for i, m := range []*model.Model{dense, moe} {
			res, err := core.Campaign{
				Model: m, Suite: suite, Fault: faults.Mem2Bit,
				Trials: cfg.Trials, Seed: cfg.Seed ^ hash2("fig14", suite.Name, fmt.Sprint(i)),
				Workers: cfg.Workers,
			}.Run(ctx)
			if err != nil {
				return nil, err
			}
			if suite.Type == tasks.MultipleChoice {
				norms[i] = mcNormalized(res)
			} else {
				norms[i] = res.MeanNormalized()
			}
		}
		t.Row(suite.Name, suite.Type.String(), norms[0], norms[1], norms[1]-norms[0])
		o.set(suite.Name+".dense", norms[0])
		o.set(suite.Name+".moe", norms[1])
	}
	o.Text = t.String() + "\nExpected shape (Obs #5): MoE slightly WORSE than dense on multiple-\n" +
		"choice (router corruption hits the single scoring pass), but BETTER on\n" +
		"generative tasks (later iterations route around the faulty expert).\n"
	return o, nil
}

func runFig15(ctx context.Context, cfg Config) (*Outcome, error) {
	cfg = cfg.withDefaults()
	o := newOutcome("fig15", "Gate-layer faults")
	_, moe, err := moeModels(cfg)
	if err != nil {
		return nil, err
	}
	trans, _ := selfRefGenSuites(cfg)
	res, err := core.Campaign{
		Model: moe, Suite: trans, Fault: faults.Mem2Bit,
		Trials: cfg.Trials, Seed: cfg.Seed ^ hash2("fig15"),
		Filter: faults.GateOnly, Workers: cfg.Workers,
	}.Run(ctx)
	if err != nil {
		return nil, err
	}
	expertChanged := res.ExpertChangedRate()
	// Among expert-changed trials, how many changed the output?
	changedGivenExpert := 0.0
	nExpert := 0
	for _, tr := range res.Trials {
		if tr.ExpertChanged {
			nExpert++
			if tr.Outcome.Changed {
				changedGivenExpert++
			}
		}
	}
	if nExpert > 0 {
		changedGivenExpert /= float64(nExpert)
	}
	bleu := res.Normalized(metrics.KindBLEU)
	chrf := res.Normalized(metrics.KindChrF)

	var b strings.Builder
	fmt.Fprintf(&b, "2bits-mem faults injected ONLY into gate (router) layers, %d trials\n\n", len(res.Trials))
	fmt.Fprintf(&b, "expert selection changed:            %5.1f%%  (paper: 78.6%%)\n", expertChanged*100)
	fmt.Fprintf(&b, "output changed | expert changed:     %5.1f%%  (paper: 47.4%%)\n", changedGivenExpert*100)
	fmt.Fprintf(&b, "BLEU degradation:                    %5.1f%%  (paper: 2.1%%)\n", (1-bleu.Value)*100)
	fmt.Fprintf(&b, "chrF++ degradation:                  %5.1f%%  (paper: 1.8%%)\n", (1-chrf.Value)*100)
	b.WriteString("\nObservation #6: gate layers are a distinct, security-relevant attack\nsurface — corrupting them changes outputs without touching any expert.\n")
	o.Text = b.String()
	o.set("expert_changed", expertChanged)
	o.set("output_changed_given_expert", changedGivenExpert)
	o.set("bleu_norm", bleu.Value)
	o.set("chrf_norm", chrf.Value)
	return o, nil
}

func runFig16(ctx context.Context, cfg Config) (*Outcome, error) {
	cfg = cfg.withDefaults()
	o := newOutcome("fig16", "Resilience across model scales")
	vocab := tasks.GeneralVocab()
	base := model.StandardConfig("scale", vocab.Size(), numerics.BF16)
	scales := []struct {
		label  string
		width  float64
		blocks int
	}{
		{"1.5B-S", 0.5, 2}, {"3B-S", 0.75, 3}, {"7B-S", 1.0, 4},
		{"14B-S", 1.5, 5}, {"32B-S", 2.0, 6},
	}
	mmlu, err := tasks.NewMCSuite("mmlu", cfg.Seed, cfg.Instances)
	if err != nil {
		return nil, err
	}
	trans, _ := selfRefGenSuites(cfg)

	t := report.NewTable("Scale", "Params", "mmlu 2bits-mem", "mmlu 2bits-comp", "gen 2bits-mem")
	var norms []float64
	for _, sc := range scales {
		cfgM := model.ScaledConfig(base, sc.width, sc.blocks)
		cfgM.Name = sc.label
		m, err := model.Build(model.Spec{Config: cfgM, Family: model.QwenS, Seed: cfg.Seed + 7})
		if err != nil {
			return nil, err
		}
		row := []any{sc.label, cfgM.NumParams()}
		for _, run := range []struct {
			suite *tasks.Suite
			fm    faults.Model
		}{{mmlu, faults.Mem2Bit}, {mmlu, faults.Comp2Bit}, {trans, faults.Mem2Bit}} {
			res, err := core.Campaign{
				Model: m, Suite: run.suite, Fault: run.fm,
				Trials: cfg.Trials, Seed: cfg.Seed ^ hash2("fig16", sc.label, run.fm.String()),
				Workers: cfg.Workers,
			}.Run(ctx)
			if err != nil {
				return nil, err
			}
			v := res.MeanNormalized()
			if run.suite.Type == tasks.MultipleChoice {
				v = mcNormalized(res)
			}
			row = append(row, v)
			if run.fm == faults.Mem2Bit && run.suite == mmlu {
				norms = append(norms, v)
				o.set(sc.label, v)
			}
		}
		t.Row(row...)
	}
	spread := stats.Summarize(norms)
	o.set("spread_std", spread.Std)
	o.Text = t.String() + fmt.Sprintf(
		"\nnormalized-performance spread across scales (mmlu/mem): std %.4f\n"+
			"Expected shape (Obs #7): no clear relationship between scale and\nresilience — the spread stays within campaign noise.\n", spread.Std)
	return o, nil
}

func runFig17(ctx context.Context, cfg Config) (*Outcome, error) {
	cfg = cfg.withDefaults()
	o := newOutcome("fig17", "Quantized-model resilience")
	m, err := cfg.loader().Load("wmt-qwens")
	if err != nil {
		return nil, err
	}
	suite := pretrained.TranslationTask().Suite(cfg.Seed, cfg.Instances)

	variants := []struct {
		label string
		build func() (*model.Model, error)
	}{
		{"BF16", func() (*model.Model, error) { return m, nil }},
		{"GPTQ-8bit", func() (*model.Model, error) { return quant.QuantizeModel(m, 8) }},
		{"GPTQ-4bit", func() (*model.Model, error) { return quant.QuantizeModel(m, 4) }},
	}
	t := report.NewTable("Variant", "Fault-free BLEU", "NormPerf (2bits-mem)", "95% CI")
	for _, v := range variants {
		vm, err := v.build()
		if err != nil {
			return nil, err
		}
		res, err := core.Campaign{
			Model: vm, Suite: suite, Fault: faults.Mem2Bit,
			Trials: cfg.Trials, Seed: cfg.Seed ^ hash2("fig17", v.label),
			Workers: cfg.Workers,
		}.Run(ctx)
		if err != nil {
			return nil, err
		}
		ratio := res.Normalized(metrics.KindBLEU)
		t.Row(v.label, res.Baseline.MetricMeans[metrics.KindBLEU], ratio.Value,
			fmt.Sprintf("[%.3f, %.3f]", ratio.Lo, ratio.Hi))
		o.set(v.label, ratio.Value)
	}
	o.Text = t.String() + "\nExpected shape (Obs #8): both quantized variants stay near 1.0 —\n" +
		"an INT4/INT8 code flip moves a weight by at most scale*2^(bits-1),\n" +
		"never to ~1e38, so quantized models are MORE resilient (counter to\n" +
		"intuition), while BF16 degrades.\n"
	return o, nil
}
