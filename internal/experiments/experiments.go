// Package experiments implements every table and figure of the paper's
// evaluation as a runnable experiment: each one assembles the models,
// task suites, and fault-injection campaigns it needs, runs them, and
// renders the result as text plus a set of named key numbers used by
// EXPERIMENTS.md to compare against the paper.
package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/pretrained"
	"repro/internal/report"
	"repro/internal/trace"
)

// Config scales an experiment run. Zero fields take defaults.
type Config struct {
	// Trials is the number of fault injections per campaign (the paper
	// uses 500–3000; figures here default to 120 for tractable CPU runs
	// — raise via cmd/figures -trials for tighter intervals).
	Trials int
	// Instances is the evaluation-subset size per suite (paper: 100
	// tinyBenchmarks inputs; default 10).
	Instances int
	Seed      uint64
	Workers   int
	// Dir is the pretrained-checkpoint directory ("" = auto-locate).
	Dir string
	// Progress, when non-nil, receives a live single-line status update
	// (overwritten in place) for each long-running campaign. cmd/figures
	// wires stderr here behind -progress.
	Progress io.Writer
	// TraceEvery, with TraceSink, enables propagation tracing for every
	// campaign an experiment runs: each N-th trial's trace.Record goes to
	// the sink. cmd/figures wires a report.TraceWriter here behind
	// -trace. Experiments that consume traces themselves (fig_propagation)
	// trace their campaigns regardless of this setting.
	TraceEvery int
	TraceSink  func(trace.Record) error
}

func (c Config) withDefaults() Config {
	if c.Trials == 0 {
		c.Trials = 120
	}
	if c.Instances == 0 {
		c.Instances = 10
	}
	if c.Seed == 0 {
		c.Seed = 2025
	}
	if c.Dir == "" {
		c.Dir = pretrained.DefaultDir()
	}
	return c
}

// loader returns the checkpoint loader for the config.
func (c Config) loader() *pretrained.Loader {
	return pretrained.NewLoader(c.Dir)
}

// campaign executes one fault-injection campaign on behalf of an
// experiment: blocking when neither a progress sink nor tracing is
// configured, otherwise through the streaming runner with a live status
// line labelled after the campaign.
func (c Config) campaign(ctx context.Context, label string, camp core.Campaign) (*core.Result, error) {
	var ropts []core.RunnerOption
	if c.TraceEvery > 0 && c.TraceSink != nil {
		ropts = append(ropts, core.WithTrace(c.TraceEvery, c.TraceSink))
	}
	if c.Progress == nil && len(ropts) == 0 {
		return camp.Run(ctx)
	}
	var final core.CampaignDone
	for ev := range core.NewRunner(camp, ropts...).Stream(ctx) {
		switch e := ev.(type) {
		case core.Progress:
			if c.Progress != nil {
				fmt.Fprintf(c.Progress, "\r%-100s", report.ProgressLine(label, e))
			}
		case core.CampaignDone:
			final = e
		}
	}
	if c.Progress != nil {
		fmt.Fprintf(c.Progress, "\r%-100s\r", "")
	}
	return final.Result, final.Err
}

// Outcome is a completed experiment.
type Outcome struct {
	ID    string
	Title string
	// Text is the rendered figure/table.
	Text string
	// Numbers holds the headline quantities, keyed "<id>.<name>", for the
	// paper-vs-measured records in EXPERIMENTS.md.
	Numbers map[string]float64
	// Keys preserves insertion order of Numbers.
	Keys []string
}

func newOutcome(id, title string) *Outcome {
	return &Outcome{ID: id, Title: title, Numbers: map[string]float64{}}
}

func (o *Outcome) set(name string, v float64) {
	key := o.ID + "." + name
	if _, dup := o.Numbers[key]; !dup {
		o.Keys = append(o.Keys, key)
	}
	o.Numbers[key] = v
}

// Experiment binds a paper artifact to its reproduction. Run honors
// ctx cancellation: an interrupted experiment returns ctx.Err().
type Experiment struct {
	ID       string // "table1", "fig3", ...
	Title    string
	PaperRef string // section / observation reference
	Run      func(context.Context, Config) (*Outcome, error)
}

var (
	regMu    sync.Mutex
	registry = map[string]Experiment{}
	order    []string
)

func register(e Experiment) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[e.ID]; dup {
		panic("experiments: duplicate id " + e.ID)
	}
	registry[e.ID] = e
	order = append(order, e.ID)
}

// Get returns the experiment with the given id.
func Get(id string) (Experiment, error) {
	regMu.Lock()
	defer regMu.Unlock()
	e, ok := registry[id]
	if !ok {
		ids := append([]string(nil), order...)
		sort.Strings(ids)
		return Experiment{}, fmt.Errorf("experiments: unknown id %q (have %v)", id, ids)
	}
	return e, nil
}

// Run looks up and executes one experiment under ctx.
func Run(ctx context.Context, id string, cfg Config) (*Outcome, error) {
	e, err := Get(id)
	if err != nil {
		return nil, err
	}
	return e.Run(ctx, cfg)
}

// All returns every experiment in registration (paper) order.
func All() []Experiment {
	regMu.Lock()
	defer regMu.Unlock()
	out := make([]Experiment, 0, len(order))
	for _, id := range order {
		out = append(out, registry[id])
	}
	return out
}
