package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/model"
	"repro/internal/outcome"
	"repro/internal/pretrained"
)

func init() {
	register(Experiment{
		ID:       "fig5",
		Title:    "Figure 5: Propagation trace of a memory fault (column → whole tensor)",
		PaperRef: "§4.1.1",
		Run:      runFig5,
	})
	register(Experiment{
		ID:       "fig6",
		Title:    "Figure 6: Propagation trace of a computational fault (single row, masked by normalization)",
		PaperRef: "§4.1.1",
		Run:      runFig6,
	})
	register(Experiment{
		ID:       "fig7",
		Title:    "Figure 7: Examples of distorted and subtly wrong outputs",
		PaperRef: "§4.1.1",
		Run:      runFig7,
	})
	register(Experiment{
		ID:       "fig12",
		Title:    "Figure 12: A fault in the reasoning chain propagates to the final answer",
		PaperRef: "§4.1.2",
		Run:      runFig12,
	})
}

// traceSetup prepares the model, prompt, and observed layers shared by
// the two propagation experiments: the paper injects into up_proj of a
// middle block at weight/neuron position (20, 20) and watches the fault
// spread through the following layers.
func traceSetup(cfg Config) (*model.Model, []int, []model.LayerRef, error) {
	m, err := cfg.loader().Load("wmt-alma")
	if err != nil {
		return nil, nil, nil, err
	}
	suite := pretrained.TranslationTask().Suite(cfg.Seed, 1)
	prompt := suite.Instances[0].Prompt
	blk := m.Cfg.NBlocks / 2
	if blk >= m.Cfg.NBlocks-1 {
		blk = m.Cfg.NBlocks - 2
	}
	refs := []model.LayerRef{
		{Block: blk, Kind: model.KindUp, Expert: -1},
		{Block: blk, Kind: model.KindDown, Expert: -1},
		{Block: blk + 1, Kind: model.KindUp, Expert: -1},
		{Block: blk + 1, Kind: model.KindDown, Expert: -1},
	}
	return m.Clone(), prompt, refs, nil
}

func runFig5(ctx context.Context, cfg Config) (*Outcome, error) {
	cfg = cfg.withDefaults()
	o := newOutcome("fig5", "Memory-fault propagation")
	m, prompt, refs, err := traceSetup(cfg)
	if err != nil {
		return nil, err
	}
	const maxNew = 8

	_, clean := tracedRun(m, prompt, maxNew, refs)

	// MSB-of-exponent flip of weight (20, 20) in up_proj, as in the paper.
	msb := m.Cfg.DType.Bits() - 2
	site := faults.Site{
		Fault: faults.Mem2Bit, Layer: refs[0],
		Row: 20, Col: 20, Bits: []int{msb, msb - 3},
	}
	before, after, err := faults.FaultValue(m, site)
	if err != nil {
		return nil, err
	}
	inj, err := faults.Arm(m, site, len(prompt))
	if err != nil {
		return nil, err
	}
	_, faulty := tracedRun(m, prompt, maxNew, refs)
	inj.Disarm()

	var b strings.Builder
	fmt.Fprintf(&b, "injected: %v (weight %.4g -> %.4g)\n", site, before, after)
	b.WriteString("(masks compare the prompt-prefill rows, where faulty and fault-free\n runs see identical inputs — a single forward pass, as in the paper)\n\n")
	var stats []float64
	for _, ref := range refs {
		txt, st := maskSummary(ref.String(),
			subRows(faulty.tensorOf(ref), len(prompt)),
			subRows(clean.tensorOf(ref), len(prompt)))
		b.WriteString(txt)
		stats = append(stats, st.CorruptedFrac)
	}
	b.WriteString("\nfaulted-layer output heatmap (|value|, '#' = fault-magnitude):\n")
	b.WriteString(faulty.tensorOf(refs[0]).Heatmap(16, 50))
	b.WriteString("\nExpected shape: a single corrupted COLUMN in the faulted layer's output,\n" +
		"then the fault covers (nearly) the whole tensor one layer later (paper Fig. 5).\n")
	o.Text = b.String()
	o.set("faulted_layer_frac", stats[0])
	o.set("next_layer_frac", stats[1])
	o.set("next_block_frac", stats[2])
	return o, nil
}

func runFig6(ctx context.Context, cfg Config) (*Outcome, error) {
	cfg = cfg.withDefaults()
	o := newOutcome("fig6", "Computational-fault propagation")
	m, prompt, refs, err := traceSetup(cfg)
	if err != nil {
		return nil, err
	}
	const maxNew = 8

	_, clean := tracedRun(m, prompt, maxNew, refs)

	// Strike one neuron during prompt processing (token position
	// len(prompt)/2), so the single-forward-pass propagation is visible
	// across the prefill rows.
	msb := m.Cfg.DType.Bits() - 2
	site := faults.Site{
		Fault: faults.Comp2Bit, Layer: refs[0],
		Col: 20, Bits: []int{msb, msb - 3}, GenIter: len(prompt) / 2,
	}
	inj, err := faults.Arm(m, site, 0)
	if err != nil {
		return nil, err
	}
	_, faulty := tracedRun(m, prompt, maxNew, refs)
	fired := inj.Fired
	inj.Disarm()

	var b strings.Builder
	fmt.Fprintf(&b, "injected: %v at prompt position %d (fired=%v)\n\n", site, site.GenIter, fired)
	var stats []float64
	for _, ref := range refs {
		ft := subRows(faulty.tensorOf(ref), len(prompt))
		ct := subRows(clean.tensorOf(ref), len(prompt))
		txt, st := maskSummary(ref.String(), ft, ct)
		b.WriteString(txt)
		fmt.Fprintf(&b, "%-28s max |Δ| = %.4g\n", "", maxAbsDiff(ft, ct))
		stats = append(stats, st.CorruptedFrac)
	}
	b.WriteString("\nExpected shape: the transient corrupts a single ROW (one token's\n" +
		"activations); RMSNorm squashes the huge value so later layers see a\n" +
		"bounded perturbation confined to that token position until residual\n" +
		"mixing (paper Fig. 6).\n")
	o.Text = b.String()
	o.set("faulted_layer_frac", stats[0])
	o.set("next_layer_frac", stats[1])
	o.set("next_block_frac", stats[2])
	return o, nil
}

// findExamples runs memory-fault trials on the math task until it has a
// subtly-wrong and (if possible) a distorted example.
func findExamples(ctx context.Context, cfg Config, trials int) (*core.Result, error) {
	loader := cfg.loader()
	m, err := loader.Load("math-qwens")
	if err != nil {
		return nil, err
	}
	suite := pretrained.MathTask().Suite(cfg.Seed, minInt(cfg.Instances, 6), true)
	return cfg.campaign(ctx, "examples math/mem-2bit", core.Campaign{
		Model: m, Suite: suite, Fault: faults.Mem2Bit,
		Trials: trials, Seed: cfg.Seed + 7, Workers: cfg.Workers,
	})
}

func runFig7(ctx context.Context, cfg Config) (*Outcome, error) {
	cfg = cfg.withDefaults()
	o := newOutcome("fig7", "Examples of distorted and subtly wrong outputs")
	res, err := findExamples(ctx, cfg, maxInt(cfg.Trials, 200))
	if err != nil {
		return nil, err
	}
	suite := res.Campaign.Suite
	var b strings.Builder
	var haveSubtle, haveDistorted bool
	for _, tr := range res.Trials {
		if (tr.Outcome.Class == outcome.SDCSubtle && !haveSubtle) ||
			(tr.Outcome.Class == outcome.SDCDistorted && !haveDistorted) {
			base := res.Baseline.Instances[tr.Instance]
			inst := suite.Instances[tr.Instance]
			fmt.Fprintf(&b, "--- %v example (site %v) ---\n", tr.Outcome.Class, tr.Site)
			fmt.Fprintf(&b, "Question:  %s\n", suite.Vocab.DecodeAll(inst.Prompt[1:]))
			fmt.Fprintf(&b, "Reference: %s\n", inst.Reference)
			fmt.Fprintf(&b, "Baseline:  %s\n", base.Text)
			fmt.Fprintf(&b, "Faulty:    %s\n\n", rerunFaulty(res, tr))
			if tr.Outcome.Class == outcome.SDCSubtle {
				haveSubtle = true
			} else {
				haveDistorted = true
			}
		}
		if haveSubtle && haveDistorted {
			break
		}
	}
	if !haveSubtle && !haveDistorted {
		b.WriteString("no SDC found at this trial budget; raise -trials\n")
	}
	tally := res.Tally()
	fmt.Fprintf(&b, "campaign tally: %+v\n", tally)
	o.Text = b.String()
	o.set("subtle", float64(tally.Subtle))
	o.set("distorted", float64(tally.Distorted))
	return o, nil
}

// rerunFaulty re-executes a trial to obtain its output text (trials store
// metrics, not full outputs, to keep campaign memory flat).
func rerunFaulty(res *core.Result, tr core.Trial) string {
	c := res.Campaign
	m := c.Model.Clone()
	inst := c.Suite.Instances[tr.Instance]
	inj, err := faults.Arm(m, tr.Site, len(inst.Prompt))
	if err != nil {
		return "(rerun failed: " + err.Error() + ")"
	}
	defer inj.Disarm()
	out := core.RerunInstance(m, c.Suite, &inst)
	return out
}

func runFig12(ctx context.Context, cfg Config) (*Outcome, error) {
	cfg = cfg.withDefaults()
	o := newOutcome("fig12", "Reasoning-chain corruption example")
	res, err := findExamples(ctx, cfg, maxInt(cfg.Trials, 200))
	if err != nil {
		return nil, err
	}
	suite := res.Campaign.Suite
	var b strings.Builder
	found := false
	for _, tr := range res.Trials {
		if tr.Outcome.Class != outcome.SDCSubtle || tr.AnswerOK {
			continue
		}
		base := res.Baseline.Instances[tr.Instance]
		inst := suite.Instances[tr.Instance]
		faultyText := rerunFaulty(res, tr)
		if faultyText == base.Text {
			continue
		}
		fmt.Fprintf(&b, "Question:        %s\n", suite.Vocab.DecodeAll(inst.Prompt[1:]))
		fmt.Fprintf(&b, "Gold answer:     %s\n", inst.Reference)
		fmt.Fprintf(&b, "Fault-free CoT:  %s\n", base.Text)
		fmt.Fprintf(&b, "Faulty CoT:      %s\n", faultyText)
		fmt.Fprintf(&b, "Diverging words: %s\n", diffWords(base.Text, faultyText))
		fmt.Fprintf(&b, "(site %v)\n", tr.Site)
		found = true
		break
	}
	if !found {
		b.WriteString("no reasoning-chain SDC found at this budget; raise -trials\n")
	}
	o.Text = b.String()
	o.set("found", b2n(found))
	return o, nil
}

// diffWords marks the word positions where two texts diverge.
func diffWords(a, b string) string {
	aw, bw := strings.Fields(a), strings.Fields(b)
	var out []string
	for i := 0; i < maxInt(len(aw), len(bw)); i++ {
		av, bv := "", ""
		if i < len(aw) {
			av = aw[i]
		}
		if i < len(bw) {
			bv = bw[i]
		}
		if av != bv {
			out = append(out, fmt.Sprintf("pos %d: %q -> %q", i, av, bv))
		}
	}
	return strings.Join(out, "; ")
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func b2n(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
