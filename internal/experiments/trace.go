package experiments

import (
	"fmt"

	"repro/internal/gen"
	"repro/internal/model"
	"repro/internal/tensor"
)

// captureSet records the output vectors of selected layers at every token
// position, reassembling them into (positions x width) tensors — the
// propagation-trace instrument behind Figures 5 and 6.
type captureSet struct {
	want map[model.LayerRef]bool
	rows map[model.LayerRef][][]float32
}

func newCaptureSet(refs ...model.LayerRef) *captureSet {
	cs := &captureSet{
		want: make(map[model.LayerRef]bool, len(refs)),
		rows: make(map[model.LayerRef][][]float32, len(refs)),
	}
	for _, r := range refs {
		cs.want[r] = true
	}
	return cs
}

// hook returns the forward hook that records layer outputs.
func (cs *captureSet) hook() model.Hook {
	return func(ref model.LayerRef, pos int, out []float32) {
		if !cs.want[ref] {
			return
		}
		cs.rows[ref] = append(cs.rows[ref], append([]float32(nil), out...))
	}
}

// tensorOf assembles the captured rows of a layer.
func (cs *captureSet) tensorOf(ref model.LayerRef) *tensor.Tensor {
	rows := cs.rows[ref]
	if len(rows) == 0 {
		return tensor.New(0, 0)
	}
	t := tensor.New(len(rows), len(rows[0]))
	for i, r := range rows {
		copy(t.Row(i), r)
	}
	return t
}

// tracedRun generates from m while capturing the listed layers. arm, when
// non-nil, is invoked after hooks are installed and may arm an injection
// (memory faults arm before generation; computational faults were armed
// by the caller adding their hook first).
func tracedRun(m *model.Model, prompt []int, maxNew int, refs []model.LayerRef) (gen.Result, *captureSet) {
	cs := newCaptureSet(refs...)
	m.AddHook(cs.hook())
	res := gen.Generate(m, prompt, gen.Defaults(maxNew))
	m.ClearHooks()
	return res, cs
}

// maskSummary renders a corruption-mask comparison of a layer between a
// faulty and a fault-free capture.
func maskSummary(label string, faulty, clean *tensor.Tensor) (string, tensor.MaskStats) {
	if faulty.Rows != clean.Rows || faulty.Cols != clean.Cols {
		// Generation lengths diverged — compare the shared prefix.
		r := minInt(faulty.Rows, clean.Rows)
		faulty = subRows(faulty, r)
		clean = subRows(clean, r)
	}
	mask := tensor.CorruptionMask(faulty, clean, 1e-3)
	st := tensor.SummarizeMask(mask)
	txt := fmt.Sprintf("%-28s corrupted %5.1f%%  full-cols %d/%d  full-rows %d/%d  touched-cols %d  touched-rows %d\n",
		label, st.CorruptedFrac*100, st.FullColumns, faulty.Cols, st.FullRows, faulty.Rows, st.TouchedCols, st.TouchedRows)
	return txt, st
}

// maxAbsDiff reports the largest elementwise deviation between two
// captures (after truncating to matching row counts).
func maxAbsDiff(a, b *tensor.Tensor) float64 {
	r := minInt(a.Rows, b.Rows)
	return tensor.MaxAbsDiff(subRows(a, r), subRows(b, r))
}

func subRows(t *tensor.Tensor, r int) *tensor.Tensor {
	if r > t.Rows {
		r = t.Rows
	}
	return tensor.FromSlice(r, t.Cols, t.Data[:r*t.Cols])
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
