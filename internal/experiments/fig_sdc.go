package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/numerics"
	"repro/internal/outcome"
	"repro/internal/pretrained"
	"repro/internal/report"
)

func init() {
	register(Experiment{
		ID:       "fig8",
		Title:    "Figure 8: SDC breakdown into distorted and subtly wrong outputs (GSM8k)",
		PaperRef: "§4.1.1",
		Run:      runFig8,
	})
	register(Experiment{
		ID:       "fig9",
		Title:    "Figure 9: Subtly-wrong outputs grouped by highest flipped bit",
		PaperRef: "§4.1.1",
		Run:      runFig9,
	})
	register(Experiment{
		ID:       "fig10",
		Title:    "Figure 10: Distorted outputs grouped by highest flipped bit",
		PaperRef: "§4.1.1",
		Run:      runFig10,
	})
}

// sdcGrid runs the GSM8k campaigns behind Figures 8–10: both math models
// under computational and memory faults.
type sdcRow struct {
	Model string
	Fault faults.Model
	Res   *core.Result
}

var (
	sdcMu    sync.Mutex
	sdcCache = map[string][]sdcRow{}
)

func sdcGrid(ctx context.Context, cfg Config) ([]sdcRow, error) {
	key := fmt.Sprintf("%d/%d/%d", cfg.Trials, cfg.Instances, cfg.Seed)
	sdcMu.Lock()
	if rows, ok := sdcCache[key]; ok {
		sdcMu.Unlock()
		return rows, nil
	}
	sdcMu.Unlock()

	loader := cfg.loader()
	suite := pretrained.MathTask().Suite(cfg.Seed, cfg.Instances, true)
	var rows []sdcRow
	for _, entry := range []struct{ disp, ckpt string }{
		{"Qwen2.5-S", "math-qwens"},
		{"Falcon3-S", "math-falcons"},
	} {
		m, err := loader.Load(entry.ckpt)
		if err != nil {
			return nil, err
		}
		for _, fm := range []faults.Model{faults.Comp2Bit, faults.Mem2Bit} {
			res, err := cfg.campaign(ctx, fmt.Sprintf("sdc %s/%s", entry.disp, fm), core.Campaign{
				Model: m, Suite: suite, Fault: fm,
				Trials:  cfg.Trials * 2, // Figures 8-10 need SDC counts, not just means
				Seed:    cfg.Seed ^ hash2("sdc", entry.disp, fm.String()),
				Workers: cfg.Workers,
			})
			if err != nil {
				return nil, err
			}
			rows = append(rows, sdcRow{Model: entry.disp, Fault: fm, Res: res})
		}
	}
	sdcMu.Lock()
	sdcCache[key] = rows
	sdcMu.Unlock()
	return rows, nil
}

func runFig8(ctx context.Context, cfg Config) (*Outcome, error) {
	cfg = cfg.withDefaults()
	rows, err := sdcGrid(ctx, cfg)
	if err != nil {
		return nil, err
	}
	o := newOutcome("fig8", "SDC breakdown (distorted vs subtly wrong)")
	t := report.NewTable("Model", "Fault", "Trials", "Masked%", "Subtle%", "Distorted%", "Distorted/SDC%")
	for _, r := range rows {
		tally := r.Res.Tally()
		n := float64(tally.Total())
		sdc := float64(tally.Subtle + tally.Distorted)
		distOfSDC := 0.0
		if sdc > 0 {
			distOfSDC = float64(tally.Distorted) / sdc * 100
		}
		t.Row(r.Model, r.Fault.String(), tally.Total(),
			100*float64(tally.Masked)/n, 100*float64(tally.Subtle)/n,
			100*float64(tally.Distorted)/n, distOfSDC)
		key := fmt.Sprintf("%s.%v.distorted_frac", r.Model, r.Fault)
		o.set(key, float64(tally.Distorted)/n)
	}
	o.Text = t.String() + "\nExpected shape: subtly wrong outputs dominate SDCs; distorted outputs\n" +
		"are far more frequent under memory faults than computational faults\n" +
		"(paper: 13.28% of memory-fault outputs distorted vs 0.89-1.21% comp).\n"
	return o, nil
}

// bitFigure renders the per-bit-position proportion figure for a class.
func bitFigure(ctx context.Context, cfg Config, class outcome.Class, id, title string) (*Outcome, error) {
	rows, err := sdcGrid(ctx, cfg)
	if err != nil {
		return nil, err
	}
	o := newOutcome(id, title)
	var b strings.Builder
	dt := numerics.BF16
	for _, r := range rows {
		props := r.Res.BitProportions(class)
		if len(props) == 0 {
			fmt.Fprintf(&b, "%s / %v: no %v outputs at this budget\n\n", r.Model, r.Fault, class)
			continue
		}
		fmt.Fprintf(&b, "%s / %v (share of all %v outputs by highest flipped bit):\n", r.Model, r.Fault, class)
		bits := make([]int, 0, len(props))
		for bit := range props {
			bits = append(bits, bit)
		}
		sort.Ints(bits)
		for _, bit := range bits {
			fmt.Fprintf(&b, "  bit %2d (%-8s) %6.1f%% %s\n", bit, numerics.ClassifyBit(dt, bit),
				props[bit]*100, strings.Repeat("█", int(props[bit]*60)))
		}
		// Headline: share contributed by the exponent MSB (bit 14 in BF16).
		o.set(fmt.Sprintf("%s.%v.bit14", r.Model, r.Fault), props[dt.Bits()-2])
		// Sum in sorted bit order so the float total is bit-reproducible.
		mantissa := 0.0
		for _, bit := range bits {
			if numerics.ClassifyBit(dt, bit) == numerics.MantissaBit {
				mantissa += props[bit]
			}
		}
		o.set(fmt.Sprintf("%s.%v.mantissa", r.Model, r.Fault), mantissa)
		b.WriteByte('\n')
	}
	if class == outcome.SDCDistorted {
		b.WriteString("Expected shape: bit 14 (the exponent MSB of BF16) dominates; mantissa\nbits contribute zero distorted outputs (paper Fig. 10).\n")
	} else {
		b.WriteString("Expected shape: bit 14 (the exponent MSB of BF16) is the most vulnerable\nposition (paper Fig. 9).\n")
	}
	o.Text = b.String()
	return o, nil
}

func runFig9(ctx context.Context, cfg Config) (*Outcome, error) {
	return bitFigure(ctx, cfg.withDefaults(), outcome.SDCSubtle, "fig9", "Subtly-wrong outputs by bit position")
}

func runFig10(ctx context.Context, cfg Config) (*Outcome, error) {
	return bitFigure(ctx, cfg.withDefaults(), outcome.SDCDistorted, "fig10", "Distorted outputs by bit position")
}
