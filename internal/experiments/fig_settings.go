package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/gen"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/numerics"
	"repro/internal/pretrained"
	"repro/internal/report"
	"repro/internal/tasks"
)

func init() {
	register(Experiment{
		ID:       "fig18",
		Title:    "Figure 18: Beam search vs greedy search under computational faults",
		PaperRef: "Observation #9",
		Run:      runFig18,
	})
	register(Experiment{
		ID:       "fig19",
		Title:    "Figure 19: Resilience/runtime trade-off across beam counts",
		PaperRef: "§4.3.1",
		Run:      runFig19,
	})
	register(Experiment{
		ID:       "fig20",
		Title:    "Figure 20: Chain-of-Thought resilience",
		PaperRef: "Observation #10",
		Run:      runFig20,
	})
	register(Experiment{
		ID:       "fig21",
		Title:    "Figure 21: Resilience across datatypes (FP16 / FP32 / BF16)",
		PaperRef: "Observation #11",
		Run:      runFig21,
	})
}

// beamCampaign runs a 2bits-comp campaign with the given beam count.
func beamCampaign(ctx context.Context, cfg Config, m *model.Model, suite *tasks.Suite, beams int, tag string) (*core.Result, error) {
	return cfg.campaign(ctx, fmt.Sprintf("beam %s/b%d", tag, beams), core.Campaign{
		Model: m, Suite: suite, Fault: faults.Comp2Bit,
		Trials: cfg.Trials, Seed: cfg.Seed ^ hash2("beam", tag, fmt.Sprint(beams)),
		Gen:     gen.Settings{NumBeams: beams},
		Workers: cfg.Workers,
	})
}

func runFig18(ctx context.Context, cfg Config) (*Outcome, error) {
	cfg = cfg.withDefaults()
	o := newOutcome("fig18", "Beam vs greedy under 2bits-comp")
	loader := cfg.loader()

	configs := []struct {
		label, ckpt string
		suite       *tasks.Suite
		metric      metrics.Kind
	}{
		{"WMT16/ALMA-S", "wmt-alma", pretrained.TranslationTask().Suite(cfg.Seed, cfg.Instances), metrics.KindBLEU},
		{"WMT16/Qwen2.5-S", "wmt-qwens", pretrained.TranslationTask().Suite(cfg.Seed, cfg.Instances), metrics.KindBLEU},
		{"XLSum/Summarizer-S", "xlsum-summarizer", pretrained.SummTask().Suite(cfg.Seed, cfg.Instances), metrics.KindRouge1},
		{"XLSum/Llama3.1-S", "xlsum-llamas", pretrained.SummTask().Suite(cfg.Seed, cfg.Instances), metrics.KindRouge1},
	}
	t := report.NewTable("Workload", "Metric", "Greedy NormPerf", "Beam-6 NormPerf", "Beam - Greedy")
	for _, c := range configs {
		m, err := loader.Load(c.ckpt)
		if err != nil {
			return nil, err
		}
		var norms [2]float64
		for i, beams := range []int{1, 6} {
			res, err := beamCampaign(ctx, cfg, m, c.suite, beams, c.label)
			if err != nil {
				return nil, err
			}
			norms[i] = res.Normalized(c.metric).Value
		}
		t.Row(c.label, string(c.metric), norms[0], norms[1], norms[1]-norms[0])
		o.set(c.label+".greedy", norms[0])
		o.set(c.label+".beam6", norms[1])
	}
	o.Text = t.String() + "\nExpected shape (Obs #9): beam search matches or beats greedy for the\n" +
		"fine-tuned models — a corrupted token tanks its path's cumulative\n" +
		"probability and the search switches to an unaffected path.\n"
	return o, nil
}

func runFig19(ctx context.Context, cfg Config) (*Outcome, error) {
	cfg = cfg.withDefaults()
	o := newOutcome("fig19", "Beam-count trade-off")
	m, err := cfg.loader().Load("wmt-alma")
	if err != nil {
		return nil, err
	}
	suite := pretrained.TranslationTask().Suite(cfg.Seed, cfg.Instances)
	t := report.NewTable("Beams", "NormPerf (BLEU)", "Decode steps/trial", "Wall ms/trial")
	var perf, steps []float64
	for _, beams := range []int{1, 2, 4, 6, 8} {
		start := time.Now() //llmfi:allow determinism wall-ms-per-trial column is measured, not derived from the seed
		res, err := beamCampaign(ctx, cfg, m, suite, beams, "fig19")
		if err != nil {
			return nil, err
		}
		elapsed := time.Since(start).Seconds() * 1000 / float64(cfg.Trials) //llmfi:allow determinism wall-ms-per-trial column is measured, not derived from the seed
		norm := res.Normalized(metrics.KindBLEU).Value
		t.Row(beams, norm, res.MeanSteps(), elapsed)
		perf = append(perf, norm)
		steps = append(steps, res.MeanSteps())
		o.set(fmt.Sprintf("beam%d.norm", beams), norm)
		o.set(fmt.Sprintf("beam%d.steps", beams), res.MeanSteps())
	}
	o.Text = t.String() + fmt.Sprintf(
		"\nExpected shape (Fig. 19): normalized performance jumps from beam 1 to\n"+
			"2 (%.4f -> %.4f) then plateaus, while runtime keeps climbing\n"+
			"(%.0f -> %.0f steps); the sweet spot is num_beams = 2.\n",
		perf[0], perf[1], steps[0], steps[len(steps)-1])
	return o, nil
}

func runFig20(ctx context.Context, cfg Config) (*Outcome, error) {
	cfg = cfg.withDefaults()
	o := newOutcome("fig20", "Chain-of-Thought resilience")
	loader := cfg.loader()
	mt := pretrained.MathTask()
	cotSuite := mt.Suite(cfg.Seed, cfg.Instances, true)
	directSuite := mt.Suite(cfg.Seed, cfg.Instances, false)

	t := report.NewTable("Model", "Fault", "CoT NormAcc", "Direct NormAcc", "CoT - Direct")
	for _, entry := range []struct{ disp, ckpt string }{
		{"Qwen2.5-S", "math-qwens"},
		{"Falcon3-S", "math-falcons"},
	} {
		m, err := loader.Load(entry.ckpt)
		if err != nil {
			return nil, err
		}
		for _, fm := range []faults.Model{faults.Comp2Bit, faults.Mem2Bit} {
			var norms [2]float64
			for i, mode := range []struct {
				suite     *tasks.Suite
				reasoning bool
			}{{cotSuite, fm == faults.Comp2Bit}, {directSuite, false}} {
				res, err := core.Campaign{
					Model: m, Suite: mode.suite, Fault: fm,
					Trials: cfg.Trials, Seed: cfg.Seed ^ hash2("fig20", entry.disp, fm.String(), fmt.Sprint(i)),
					// Computational faults in the CoT arm strike only the
					// reasoning-token iterations, as in §4.3.2.
					ReasoningOnly: mode.reasoning,
					Workers:       cfg.Workers,
				}.Run(ctx)
				if err != nil {
					return nil, err
				}
				norms[i] = res.Normalized(metrics.KindAccuracy).Value
			}
			t.Row(entry.disp, fm.String(), norms[0], norms[1], norms[0]-norms[1])
			o.set(fmt.Sprintf("%s.%v.cot", entry.disp, fm), norms[0])
			o.set(fmt.Sprintf("%s.%v.direct", entry.disp, fm), norms[1])
		}
	}
	o.Text = t.String() + "\nExpected shape (Obs #10): CoT ≥ direct. Computational faults inside the\n" +
		"reasoning chain barely move the final answer (norm ≈ 1.0) because the\n" +
		"model can re-derive from the operands; memory faults hurt both but CoT\n" +
		"retains an edge (paper: ~1.0 comp, ~0.9 mem).\n"
	return o, nil
}

func runFig21(ctx context.Context, cfg Config) (*Outcome, error) {
	cfg = cfg.withDefaults()
	o := newOutcome("fig21", "Datatype study")
	base, err := cfg.loader().Load("wmt-qwens")
	if err != nil {
		return nil, err
	}
	suite := pretrained.TranslationTask().Suite(cfg.Seed, cfg.Instances)

	t := report.NewTable("DType", "Fault", "NormPerf (BLEU)", "95% CI")
	for _, dt := range []numerics.DType{numerics.FP16, numerics.FP32, numerics.BF16} {
		m, err := model.WithDType(base, dt)
		if err != nil {
			return nil, err
		}
		for _, fm := range []faults.Model{faults.Comp2Bit, faults.Mem2Bit} {
			res, err := core.Campaign{
				Model: m, Suite: suite, Fault: fm,
				Trials: cfg.Trials, Seed: cfg.Seed ^ hash2("fig21", dt.String(), fm.String()),
				Workers: cfg.Workers,
			}.Run(ctx)
			if err != nil {
				return nil, err
			}
			ratio := res.Normalized(metrics.KindBLEU)
			t.Row(dt.String(), fm.String(), ratio.Value, fmt.Sprintf("[%.3f, %.3f]", ratio.Lo, ratio.Hi))
			o.set(fmt.Sprintf("%s.%v", dt, fm), ratio.Value)
		}
	}
	o.Text = t.String() + "\nExpected shape (Obs #11): FP16 (5 exponent bits, max 65504) is the most\n" +
		"resilient; BF16 (8 exponent bits, max 3.4e38) the most vulnerable; FP32\n" +
		"sits between — the representable range, not the bit count, dominates.\n"
	return o, nil
}
