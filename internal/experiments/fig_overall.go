package experiments

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/model"
	"repro/internal/numerics"
	"repro/internal/report"
	"repro/internal/tasks"
)

// gridRow is one (suite, model, fault-model) campaign of the Figure 3
// grid.
type gridRow struct {
	Suite   string
	Type    tasks.Type
	Model   string
	Fault   faults.Model
	Res     *core.Result
	NormAvg float64 // mean normalized performance over the suite metrics
}

var (
	gridMu    sync.Mutex
	gridCache = map[string][]gridRow{}
)

// overallGrid runs (or returns the cached) full characterization grid:
// every suite × its Table 1 models × all three fault models.
func overallGrid(ctx context.Context, cfg Config) ([]gridRow, error) {
	key := fmt.Sprintf("%d/%d/%d", cfg.Trials, cfg.Instances, cfg.Seed)
	gridMu.Lock()
	if rows, ok := gridCache[key]; ok {
		gridMu.Unlock()
		return rows, nil
	}
	gridMu.Unlock()

	var rows []gridRow

	// Multiple-choice suites × profile models.
	profs, err := mcModels(cfg)
	if err != nil {
		return nil, err
	}
	suites, err := mcSuites(cfg)
	if err != nil {
		return nil, err
	}
	for _, suite := range suites {
		for _, fam := range model.Families {
			for _, fm := range faults.Models {
				label := fmt.Sprintf("grid %s/%s/%s", suite.Name, fam, fm)
				res, err := cfg.campaign(ctx, label, core.Campaign{
					Model: profs[fam], Suite: suite, Fault: fm,
					Trials: cfg.Trials, Seed: cfg.Seed ^ hash2(suite.Name, fam.String(), fm.String()),
					Workers: cfg.Workers,
				})
				if err != nil {
					return nil, err
				}
				rows = append(rows, gridRow{
					Suite: suite.Name, Type: suite.Type, Model: fam.String(),
					Fault: fm, Res: res, NormAvg: mcNormalized(res),
				})
			}
		}
	}

	// Generative suites × trained checkpoints.
	genModels, genSuites, err := generativeRoster(cfg)
	if err != nil {
		return nil, err
	}
	for _, sname := range generativeOrder {
		suite := genSuites[sname]
		for _, nm := range genModels[sname] {
			for _, fm := range faults.Models {
				label := fmt.Sprintf("grid %s/%s/%s", sname, nm.Display, fm)
				res, err := cfg.campaign(ctx, label, core.Campaign{
					Model: nm.Model, Suite: suite, Fault: fm,
					Trials: cfg.Trials, Seed: cfg.Seed ^ hash2(sname, nm.Display, fm.String()),
					Workers: cfg.Workers,
				})
				if err != nil {
					return nil, err
				}
				rows = append(rows, gridRow{
					Suite: sname, Type: suite.Type, Model: nm.Display,
					Fault: fm, Res: res, NormAvg: res.MeanNormalized(),
				})
			}
		}
	}

	gridMu.Lock()
	gridCache[key] = rows
	gridMu.Unlock()
	return rows, nil
}

// mcNormalized returns the normalized performance of a multiple-choice
// campaign. The paper normalizes accuracy against gold answers; with the
// untrained profile models the gold-referenced ratio is dominated by
// chance-level noise, so the library reports the Masked rate — the
// fraction of trials whose chosen option matched the fault-free choice,
// which equals normalized accuracy in the limit where the fault-free
// model is the reference oracle. The gold-referenced ratio remains
// available via Res.Normalized(KindAccuracy).
func mcNormalized(res *core.Result) float64 {
	return res.MaskedRate()
}

// hash2 folds strings into a seed component.
func hash2(parts ...string) uint64 {
	var h uint64 = 14695981039346656037
	for _, p := range parts {
		for i := 0; i < len(p); i++ {
			h ^= uint64(p[i])
			h *= 1099511628211
		}
		h ^= 0xff
		h *= 1099511628211
	}
	return h
}

func init() {
	register(Experiment{
		ID:       "table1",
		Title:    "Table 1: Selected LLM workloads and metrics",
		PaperRef: "§3.3",
		Run:      runTable1,
	})
	register(Experiment{
		ID:       "table2",
		Title:    "Table 2: Format of floating-point data types",
		PaperRef: "§4.3.3",
		Run:      runTable2,
	})
	register(Experiment{
		ID:       "fig3",
		Title:    "Figure 3: LLM performance change after fault injection (all tasks/models/faults)",
		PaperRef: "§4.1",
		Run:      runFig3,
	})
	register(Experiment{
		ID:       "fig4",
		Title:    "Figure 4: Average performance change under different fault models",
		PaperRef: "Observation #1",
		Run:      runFig4,
	})
	register(Experiment{
		ID:       "fig11",
		Title:    "Figure 11: Performance change per downstream task",
		PaperRef: "Observation #2",
		Run:      runFig11,
	})
}

func runTable1(ctx context.Context, cfg Config) (*Outcome, error) {
	cfg = cfg.withDefaults()
	o := newOutcome("table1", "Selected LLM workloads and metrics")
	t := report.NewTable("Task", "Dataset (surrogate)", "Type", "Metrics", "Models")
	suites, err := mcSuites(cfg)
	if err != nil {
		return nil, err
	}
	for _, s := range suites {
		t.Row("understanding/reasoning", s.Dataset+" → "+s.Name, s.Type.String(),
			kindList(s), "QwenS, LlamaS, FalconS")
	}
	genModels, genSuites, err := generativeRoster(cfg)
	if err != nil {
		return nil, err
	}
	taskNames := map[string]string{
		"gsm8k": "Math", "wmt16": "Translation",
		"xlsum": "Summarization", "squadv2": "Question Answering",
	}
	for _, sname := range generativeOrder {
		s := genSuites[sname]
		names := ""
		for i, nm := range genModels[sname] {
			if i > 0 {
				names += ", "
			}
			names += nm.Display
		}
		t.Row(taskNames[sname], s.Dataset+" → "+s.Name, s.Type.String(), kindList(s), names)
	}
	o.Text = t.String()
	o.set("suites", float64(len(suites)+len(genSuites)))
	return o, nil
}

func kindList(s *tasks.Suite) string {
	out := ""
	for i, k := range s.Metrics {
		if i > 0 {
			out += ", "
		}
		out += string(k)
	}
	return out
}

func runTable2(ctx context.Context, cfg Config) (*Outcome, error) {
	o := newOutcome("table2", "Format of floating-point data types")
	t := report.NewTable("Format", "Total Bits", "Exp Bits", "Mantissa Bits", "Max Finite", "Smallest Normal")
	for _, dt := range []numerics.DType{numerics.FP16, numerics.FP32, numerics.BF16} {
		t.Row(dt.String(), dt.Bits(), dt.ExponentBits(), dt.MantissaBits(),
			fmt.Sprintf("%.4g", dt.MaxFinite()), fmt.Sprintf("%.4g", dt.SmallestNormal()))
		o.set(dt.String()+".expbits", float64(dt.ExponentBits()))
	}
	o.Text = t.String()
	return o, nil
}

func runFig3(ctx context.Context, cfg Config) (*Outcome, error) {
	cfg = cfg.withDefaults()
	rows, err := overallGrid(ctx, cfg)
	if err != nil {
		return nil, err
	}
	o := newOutcome("fig3", "Normalized performance after fault injection")
	t := report.NewTable("Suite", "Model", "Fault", "NormPerf", "95% CI", "Masked", "SDCs", "GoldAcc")
	var minNorm float64 = 2
	minLabel := ""
	for _, r := range rows {
		ratio := r.Res.NormalizedPrimary()
		tally := r.Res.Tally()
		t.Row(r.Suite, r.Model, r.Fault.String(), r.NormAvg,
			fmt.Sprintf("[%.3f, %.3f]", ratio.Lo, ratio.Hi),
			tally.Masked, tally.Subtle+tally.Distorted,
			r.Res.GoldAccuracy())
		if r.NormAvg < minNorm {
			minNorm, minLabel = r.NormAvg, fmt.Sprintf("%s/%s/%v", r.Suite, r.Model, r.Fault)
		}
	}
	o.Text = t.String() + fmt.Sprintf("\nworst case: %s at %.4f (paper: max degradation 13.09%%, Qwen2.5 GSM8k mem)\n", minLabel, minNorm)
	var sum float64
	for _, r := range rows {
		sum += r.NormAvg
	}
	o.set("mean_norm", sum/float64(len(rows)))
	o.set("worst_norm", minNorm)
	return o, nil
}

func runFig4(ctx context.Context, cfg Config) (*Outcome, error) {
	cfg = cfg.withDefaults()
	rows, err := overallGrid(ctx, cfg)
	if err != nil {
		return nil, err
	}
	o := newOutcome("fig4", "Average performance change per fault model")
	sums := map[faults.Model]float64{}
	counts := map[faults.Model]int{}
	for _, r := range rows {
		sums[r.Fault] += r.NormAvg
		counts[r.Fault]++
	}
	labels := make([]string, 0, 3)
	values := make([]float64, 0, 3)
	for _, fm := range faults.Models {
		avg := sums[fm] / float64(counts[fm])
		labels = append(labels, fm.String())
		values = append(values, avg)
		o.set(fm.String(), avg)
	}
	o.Text = report.BarChart(labels, values, min64(values)*0.98, 1.0) +
		"\nExpected shape (Obs #1): memory faults degrade more than computational faults.\n" +
		fmt.Sprintf("mem-vs-comp gap: %.4f\n", (values[0]+values[1])/2-values[2])
	return o, nil
}

func runFig11(ctx context.Context, cfg Config) (*Outcome, error) {
	cfg = cfg.withDefaults()
	rows, err := overallGrid(ctx, cfg)
	if err != nil {
		return nil, err
	}
	o := newOutcome("fig11", "Performance change per downstream task")
	sums := map[string]float64{}
	counts := map[string]int{}
	types := map[string]tasks.Type{}
	var order []string
	for _, r := range rows {
		if counts[r.Suite] == 0 {
			order = append(order, r.Suite)
		}
		sums[r.Suite] += r.NormAvg
		counts[r.Suite]++
		types[r.Suite] = r.Type
	}
	t := report.NewTable("Suite", "Type", "MeanNormPerf", "Degradation%")
	var mcSum, genSum float64
	var mcN, genN int
	for _, s := range order {
		avg := sums[s] / float64(counts[s])
		t.Row(s, types[s].String(), avg, (1-avg)*100)
		o.set(s, avg)
		if types[s] == tasks.MultipleChoice {
			mcSum += avg
			mcN++
		} else {
			genSum += avg
			genN++
		}
	}
	mcAvg, genAvg := mcSum/float64(mcN), genSum/float64(genN)
	o.set("mc_avg", mcAvg)
	o.set("gen_avg", genAvg)
	o.Text = t.String() + fmt.Sprintf(
		"\nmultiple-choice avg %.4f vs generative avg %.4f (paper: MC -1.65%% vs generative -3.2%%)\n",
		mcAvg, genAvg)
	return o, nil
}

func min64(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}
