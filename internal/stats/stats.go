// Package stats provides the statistical machinery of §3.3.3: normalized
// performance (fault-injected metric over fault-free metric), 95%
// confidence intervals via the log-transformation (Katz) method for
// ratios, normal-approximation intervals for proportions, bootstrap
// intervals for continuous metrics, and histogram summaries used by the
// weight-distribution analysis (Figure 13).
package stats

import (
	"math"
	"sort"

	"repro/internal/prng"
)

// z95 is the two-sided 95% normal quantile.
const z95 = 1.959963984540054

// Ratio is a normalized-performance estimate with its confidence bounds.
type Ratio struct {
	Value    float64 // P_fault_injected / P_fault_free
	Lo, Hi   float64 // 95% CI
	NumFault int     // trials behind the numerator
}

// NormalizedPerformance computes faulty/baseline with a Katz
// log-transform CI treating both inputs as mean proportions over their
// trial counts. baseline == 0 yields Value 1 with degenerate bounds (the
// paper normalizes only when the fault-free metric is nonzero).
func NormalizedPerformance(faulty, baseline float64, nFaulty, nBaseline int) Ratio {
	if baseline == 0 {
		return Ratio{Value: 1, Lo: 1, Hi: 1, NumFault: nFaulty}
	}
	r := faulty / baseline
	if faulty <= 0 || nFaulty == 0 || nBaseline == 0 {
		return Ratio{Value: r, Lo: 0, Hi: 0, NumFault: nFaulty}
	}
	// Katz (1978) log CI for a ratio of proportions:
	// Var[ln R] ≈ (1-p1)/(n1·p1) + (1-p0)/(n0·p0), with metrics clamped
	// into (0, 1] so quality scores behave like proportions, as the paper
	// does when applying the method to BLEU/ROUGE-style metrics.
	p1 := clampProb(faulty)
	p0 := clampProb(baseline)
	se := math.Sqrt((1-p1)/(float64(nFaulty)*p1) + (1-p0)/(float64(nBaseline)*p0))
	return Ratio{
		Value:    r,
		Lo:       r * math.Exp(-z95*se),
		Hi:       r * math.Exp(z95*se),
		NumFault: nFaulty,
	}
}

func clampProb(p float64) float64 {
	if p < 1e-9 {
		return 1e-9
	}
	if p > 1 {
		return 1
	}
	return p
}

// ProportionCI returns the Wald 95% interval for k successes in n trials.
func ProportionCI(k, n int) (p, lo, hi float64) {
	if n == 0 {
		return 0, 0, 0
	}
	p = float64(k) / float64(n)
	se := math.Sqrt(p * (1 - p) / float64(n))
	lo = math.Max(0, p-z95*se)
	hi = math.Min(1, p+z95*se)
	return p, lo, hi
}

// BootstrapMeanCI resamples xs (seeded, deterministic) and returns the
// mean with a percentile 95% interval over iters resamples.
func BootstrapMeanCI(xs []float64, iters int, seed uint64) (mean, lo, hi float64) {
	if len(xs) == 0 {
		return 0, 0, 0
	}
	mean = meanOf(xs)
	if len(xs) == 1 || iters <= 0 {
		return mean, mean, mean
	}
	src := prng.New(seed)
	means := make([]float64, iters)
	for it := range means {
		var sum float64
		for i := 0; i < len(xs); i++ {
			sum += xs[src.Intn(len(xs))]
		}
		means[it] = sum / float64(len(xs))
	}
	sort.Float64s(means)
	lo = means[int(0.025*float64(iters))]
	hi = means[int(math.Min(0.975*float64(iters), float64(iters-1)))]
	return mean, lo, hi
}

func meanOf(xs []float64) float64 {
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Summary holds basic moments of a sample.
type Summary struct {
	N                int
	Mean, Std        float64
	Min, Max         float64
	P01, P50, P99    float64
	AbsMean          float64
	FracBeyondTwoStd float64
}

// Summarize computes a Summary of xs (which is not modified).
func Summarize(xs []float64) Summary {
	var s Summary
	s.N = len(xs)
	if s.N == 0 {
		return s
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Min, s.Max = sorted[0], sorted[s.N-1]
	s.P01 = quantile(sorted, 0.01)
	s.P50 = quantile(sorted, 0.50)
	s.P99 = quantile(sorted, 0.99)
	var sum, absSum float64
	for _, x := range xs {
		sum += x
		absSum += math.Abs(x)
	}
	s.Mean = sum / float64(s.N)
	s.AbsMean = absSum / float64(s.N)
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if s.N > 1 {
		s.Std = math.Sqrt(ss / float64(s.N-1))
	}
	if s.Std > 0 {
		beyond := 0
		for _, x := range xs {
			if math.Abs(x-s.Mean) > 2*s.Std {
				beyond++
			}
		}
		s.FracBeyondTwoStd = float64(beyond) / float64(s.N)
	}
	return s
}

func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	pos := q * float64(len(sorted)-1)
	i := int(pos)
	if i >= len(sorted)-1 {
		return sorted[len(sorted)-1]
	}
	frac := pos - float64(i)
	return sorted[i]*(1-frac) + sorted[i+1]*frac
}

// Histogram is a fixed-width binning of a sample.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	Under  int // below Lo
	Over   int // above Hi
	Total  int
}

// NewHistogram bins xs into nbins equal-width bins over [lo, hi].
func NewHistogram(xs []float64, lo, hi float64, nbins int) *Histogram {
	h := &Histogram{Lo: lo, Hi: hi, Counts: make([]int, nbins)}
	width := (hi - lo) / float64(nbins)
	for _, x := range xs {
		h.Total++
		switch {
		case x < lo:
			h.Under++
		case x >= hi:
			h.Over++
		default:
			b := int((x - lo) / width)
			if b >= nbins {
				b = nbins - 1
			}
			h.Counts[b]++
		}
	}
	return h
}

// Fractions returns each bin's share of the total.
func (h *Histogram) Fractions() []float64 {
	out := make([]float64, len(h.Counts))
	if h.Total == 0 {
		return out
	}
	for i, c := range h.Counts {
		out[i] = float64(c) / float64(h.Total)
	}
	return out
}
