package stats

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/prng"
)

func TestNormalizedPerformanceBasics(t *testing.T) {
	r := NormalizedPerformance(0.8, 1.0, 100, 100)
	if math.Abs(r.Value-0.8) > 1e-12 {
		t.Fatalf("ratio = %g", r.Value)
	}
	if !(r.Lo < r.Value && r.Value < r.Hi) {
		t.Fatalf("CI [%g, %g] does not bracket %g", r.Lo, r.Hi, r.Value)
	}
}

func TestNormalizedPerformanceZeroBaseline(t *testing.T) {
	r := NormalizedPerformance(0.5, 0, 10, 10)
	if r.Value != 1 {
		t.Fatal("zero baseline should normalize to 1 by convention")
	}
}

func TestNormalizedPerformanceCINarrowsWithN(t *testing.T) {
	small := NormalizedPerformance(0.9, 0.95, 20, 20)
	large := NormalizedPerformance(0.9, 0.95, 2000, 2000)
	if large.Hi-large.Lo >= small.Hi-small.Lo {
		t.Fatal("CI should narrow with more trials")
	}
}

func TestProportionCI(t *testing.T) {
	p, lo, hi := ProportionCI(50, 100)
	if p != 0.5 || lo >= p || hi <= p {
		t.Fatalf("ProportionCI(50,100) = %g [%g, %g]", p, lo, hi)
	}
	if _, lo, _ := ProportionCI(0, 100); lo != 0 {
		t.Fatal("lower bound should clamp at 0")
	}
	if _, _, hi := ProportionCI(100, 100); hi != 1 {
		t.Fatal("upper bound should clamp at 1")
	}
}

func TestBootstrapDeterministic(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6}
	m1, lo1, hi1 := BootstrapMeanCI(xs, 500, 9)
	m2, lo2, hi2 := BootstrapMeanCI(xs, 500, 9)
	if m1 != m2 || lo1 != lo2 || hi1 != hi2 {
		t.Fatal("bootstrap is not deterministic for fixed seed")
	}
	if !(lo1 <= m1 && m1 <= hi1) {
		t.Fatalf("bootstrap CI [%g, %g] does not bracket mean %g", lo1, hi1, m1)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 {
		t.Fatalf("summary %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(5.0/3)) > 1e-12 {
		t.Fatalf("std = %g", s.Std)
	}
	if s.P50 != 2.5 {
		t.Fatalf("median = %g", s.P50)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 {
		t.Fatal("empty summary")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{-5, 0.1, 0.2, 0.9, 5}, 0, 1, 10)
	if h.Under != 1 || h.Over != 1 || h.Total != 5 {
		t.Fatalf("histogram bookkeeping: %+v", h)
	}
	sum := 0
	for _, c := range h.Counts {
		sum += c
	}
	if sum != 3 {
		t.Fatalf("binned count = %d", sum)
	}
	fr := h.Fractions()
	var fsum float64
	for _, f := range fr {
		fsum += f
	}
	if math.Abs(fsum-0.6) > 1e-12 {
		t.Fatalf("fractions sum %g, want 0.6", fsum)
	}
}

// Property: the Katz interval always brackets the point estimate for
// valid proportion-like inputs.
func TestKatzBrackets(t *testing.T) {
	f := func(seed uint64) bool {
		src := prng.New(seed)
		faulty := src.Float64()*0.99 + 0.005
		base := src.Float64()*0.99 + 0.005
		n1 := src.Intn(1000) + 2
		n0 := src.Intn(1000) + 2
		r := NormalizedPerformance(faulty, base, n1, n0)
		return r.Lo <= r.Value+1e-12 && r.Value <= r.Hi+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: quantiles are monotone.
func TestQuantilesMonotone(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%40) + 2
		src := prng.New(seed)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = src.NormFloat64()
		}
		s := Summarize(xs)
		return s.Min <= s.P01 && s.P01 <= s.P50 && s.P50 <= s.P99 && s.P99 <= s.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
