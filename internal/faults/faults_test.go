package faults

import (
	"testing"
	"testing/quick"

	"repro/internal/model"
	"repro/internal/numerics"
	"repro/internal/prng"
)

func testModel(t *testing.T, experts int) *model.Model {
	t.Helper()
	cfg := model.Config{
		Name: "ft", Vocab: 32, DModel: 16, NHeads: 2, NBlocks: 3,
		FFHidden: 24, MaxSeq: 24, Eps: 1e-5, DType: numerics.BF16,
		RopeTheta: 10000,
	}
	if experts > 0 {
		cfg.NumExperts = experts
		cfg.TopK = 2
	}
	return model.MustBuild(model.Spec{Config: cfg, Family: model.QwenS, Seed: 5})
}

func TestFaultModelProperties(t *testing.T) {
	if Comp1Bit.NumBits() != 1 || Comp2Bit.NumBits() != 2 || Mem2Bit.NumBits() != 2 {
		t.Fatal("bit counts")
	}
	if Comp1Bit.IsMemory() || Comp2Bit.IsMemory() || !Mem2Bit.IsMemory() {
		t.Fatal("memory classification")
	}
}

func TestSamplerSitesValid(t *testing.T) {
	m := testModel(t, 0)
	sp, err := NewSampler(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed uint64, fmRaw uint8) bool {
		fm := Models[int(fmRaw)%len(Models)]
		site := sp.Sample(prng.New(seed), fm, 10)
		w, err := m.Layer(site.Layer)
		if err != nil {
			return false
		}
		if fm.IsMemory() {
			if site.Row < 0 || site.Row >= w.In() || site.Col < 0 || site.Col >= w.Out() {
				return false
			}
		} else {
			if site.Col < 0 || site.Col >= w.Out() || site.GenIter < 0 || site.GenIter >= 10 {
				return false
			}
		}
		if len(site.Bits) != fm.NumBits() {
			return false
		}
		for _, b := range site.Bits {
			if b < 0 || b >= w.StorageBits() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSamplerBlockUniform(t *testing.T) {
	m := testModel(t, 0)
	sp, err := NewSampler(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	src := prng.New(3)
	counts := map[int]int{}
	const trials = 6000
	for i := 0; i < trials; i++ {
		counts[sp.Sample(src, Mem2Bit, 1).Layer.Block]++
	}
	want := trials / m.Cfg.NBlocks
	for b, c := range counts {
		if c < want*8/10 || c > want*12/10 {
			t.Errorf("block %d sampled %d times, want ~%d", b, c, want)
		}
	}
}

func TestSamplerLayerTypeUniform(t *testing.T) {
	// §3.2 sampling: with 8 experts, the probability of hitting an expert
	// MLP layer type must equal the dense model's MLP probability — not
	// be 8x larger.
	moe := testModel(t, 8)
	sp, err := NewSampler(moe, nil)
	if err != nil {
		t.Fatal(err)
	}
	src := prng.New(4)
	const trials = 8000
	mlpHits := 0
	for i := 0; i < trials; i++ {
		site := sp.Sample(src, Mem2Bit, 1)
		switch site.Layer.Kind {
		case model.KindGate, model.KindUp, model.KindDown:
			mlpHits++
		}
	}
	// 8 layer types per MoE block (q,k,v,o,router,gate,up,down): MLP
	// kinds are 3 of 8.
	frac := float64(mlpHits) / trials
	if frac < 0.30 || frac > 0.45 {
		t.Errorf("MLP-type fraction %f, want ~3/8 despite 8 experts", frac)
	}
}

func TestGateOnlyFilter(t *testing.T) {
	moe := testModel(t, 4)
	sp, err := NewSampler(moe, GateOnly)
	if err != nil {
		t.Fatal(err)
	}
	src := prng.New(9)
	for i := 0; i < 100; i++ {
		site := sp.Sample(src, Mem2Bit, 1)
		if site.Layer.Kind != model.KindRouter {
			t.Fatalf("gate-only sampler yielded %v", site.Layer)
		}
	}
	// A dense model has no gate layers: the sampler must refuse.
	dense := testModel(t, 0)
	if _, err := NewSampler(dense, GateOnly); err == nil {
		t.Fatal("expected error for gate-only on dense model")
	}
}

func TestMemoryInjectionFlipRestore(t *testing.T) {
	m := testModel(t, 0)
	sp, _ := NewSampler(m, nil)
	src := prng.New(11)
	for i := 0; i < 50; i++ {
		site := sp.Sample(src, Mem2Bit, 1)
		w, _ := m.Layer(site.Layer)
		before := w.Get(site.Row, site.Col)
		inj, err := Arm(m, site, 0)
		if err != nil {
			t.Fatal(err)
		}
		during := w.Get(site.Row, site.Col)
		inj.Disarm()
		after := w.Get(site.Row, site.Col)
		if after != before {
			t.Fatalf("weight not restored: %g -> %g -> %g", before, during, after)
		}
		if !inj.Fired {
			t.Fatal("memory faults always fire")
		}
	}
}

func TestCompInjectionOneShot(t *testing.T) {
	m := testModel(t, 0)
	site := Site{
		Fault: Comp2Bit,
		Layer: model.LayerRef{Block: 1, Kind: model.KindUp, Expert: -1},
		Col:   3, Bits: []int{14, 2}, GenIter: 1,
	}
	inj, err := Arm(m, site, 2) // fires at absolute position 3
	if err != nil {
		t.Fatal(err)
	}
	st := m.NewState()
	for pos := 0; pos < 6; pos++ {
		st.DecodeStep(5)
		if pos < 3 && inj.Fired {
			t.Fatalf("fired too early at pos %d", pos)
		}
	}
	if !inj.Fired {
		t.Fatal("computational fault never fired")
	}
	inj.Disarm()

	// After disarm, hooks are gone: a fresh decode is fault-free.
	clean := m.NewState().Prefill([]int{1, 5, 6, 7})
	m2 := testModel(t, 0)
	ref := m2.NewState().Prefill([]int{1, 5, 6, 7})
	for i := range clean {
		if clean[i] != ref[i] {
			t.Fatal("model still corrupted after Disarm")
		}
	}
}

func TestCompInjectionChangesActivation(t *testing.T) {
	m := testModel(t, 0)
	prompt := []int{1, 5, 6, 7}
	clean := append([]float32(nil), m.NewState().Prefill(prompt)...)

	site := Site{
		Fault: Comp1Bit,
		Layer: model.LayerRef{Block: 0, Kind: model.KindDown, Expert: -1},
		Col:   1, Bits: []int{14}, GenIter: 0,
	}
	inj, err := Arm(m, site, 0) // strike the first prompt token
	if err != nil {
		t.Fatal(err)
	}
	faulty := m.NewState().Prefill(prompt)
	inj.Disarm()
	diff := false
	for i := range clean {
		if clean[i] != faulty[i] {
			diff = true
		}
	}
	if !diff {
		t.Fatal("MSB computational fault should change logits")
	}
}

func TestFaultValue(t *testing.T) {
	m := testModel(t, 0)
	site := Site{
		Fault: Mem2Bit,
		Layer: model.LayerRef{Block: 0, Kind: model.KindQ, Expert: -1},
		Row:   1, Col: 2, Bits: []int{14, 0},
	}
	before, after, err := FaultValue(m, site)
	if err != nil {
		t.Fatal(err)
	}
	if before == after {
		t.Fatal("flip should change the value")
	}
	w, _ := m.Layer(site.Layer)
	if w.Get(1, 2) != before {
		t.Fatal("FaultValue must restore the weight")
	}
	if _, _, err := FaultValue(m, Site{Fault: Comp1Bit}); err == nil {
		t.Fatal("FaultValue should reject computational faults")
	}
}

func TestHighestBit(t *testing.T) {
	s := Site{Bits: []int{3, 14, 7}}
	if s.HighestBit() != 14 {
		t.Fatal("highest bit")
	}
	if (Site{}).HighestBit() != -1 {
		t.Fatal("empty bits should report -1")
	}
}

func TestDistinctBits(t *testing.T) {
	f := func(seed uint64) bool {
		src := prng.New(seed)
		bits := distinctBits(src, 2, 16)
		return len(bits) == 2 && bits[0] != bits[1] &&
			bits[0] >= 0 && bits[1] < 16 && bits[0] < bits[1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestArmRejectsOutOfRange(t *testing.T) {
	m := testModel(t, 0)
	site := Site{
		Fault: Mem2Bit,
		Layer: model.LayerRef{Block: 0, Kind: model.KindQ, Expert: -1},
		Row:   10000, Col: 0, Bits: []int{0, 1},
	}
	if _, err := Arm(m, site, 0); err == nil {
		t.Fatal("expected range error")
	}
}
