package faults

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/numerics"
)

// Injection is an armed fault. Arm it immediately before an inference and
// Disarm it immediately after, so the next trial starts from a fault-free
// model (§3.2's flip-back protocol). Exactly one Injection may be armed
// on a model at a time; the campaign engine enforces this.
type Injection struct {
	Site    Site
	m       *model.Model
	restore func()
	hooked  bool
	// Fired reports whether a computational fault actually struck (its
	// target iteration was reached). Memory faults always count as fired.
	Fired bool
}

// Arm applies the fault described by site to m. promptLen is the length
// of the prompt that will be fed before generation starts; computational
// faults trigger at absolute position promptLen + site.GenIter.
func Arm(m *model.Model, site Site, promptLen int) (*Injection, error) {
	inj := &Injection{Site: site, m: m}
	if site.Fault.IsMemory() {
		// LayerForWrite privatizes the target tensor on a weight-sharing
		// clone before the flip, so sibling campaign workers never observe
		// each other's faults.
		w, err := m.LayerForWrite(site.Layer)
		if err != nil {
			return nil, err
		}
		if site.Row >= w.In() || site.Col >= w.Out() {
			return nil, fmt.Errorf("faults: site %v out of range for %dx%d weight", site, w.In(), w.Out())
		}
		inj.restore = w.FlipBits(site.Row, site.Col, site.Bits)
		inj.Fired = true
		return inj, nil
	}

	// Computational fault: a one-shot forward hook. It fires the first
	// time the target layer computes the target position — with beam
	// search this corrupts exactly one hypothesis's row, which is how a
	// transient in a batched GEMM behaves (one row of the output tensor),
	// and is the mechanism behind Observation #9.
	target := promptLen + site.GenIter
	dt := m.Cfg.DType
	inj.hooked = true
	m.AddHook(func(ref model.LayerRef, pos int, out []float32) {
		if inj.Fired || ref != site.Layer || pos != target {
			return
		}
		if site.Col < len(out) {
			out[site.Col] = float32(numerics.FlipBits(dt, float64(out[site.Col]), site.Bits...))
			inj.Fired = true
		}
	})
	return inj, nil
}

// ArmHook builds the one-shot computational-fault hook for site without
// installing it on any model — the batched decode scheduler dispatches
// it on the trial's own batch row, so the fault strikes exactly that
// row's activations and never a sibling trial's. Memory faults mutate
// shared weight storage and cannot be scoped to a row; they return an
// error (the scheduler routes such trials through the serial path).
// The returned Injection has nothing to restore: Disarm is a no-op, and
// dropping the hook retires the fault.
func ArmHook(m *model.Model, site Site, promptLen int) (*Injection, model.Hook, error) {
	if site.Fault.IsMemory() {
		return nil, nil, fmt.Errorf("faults: memory fault %v cannot arm as a row hook", site)
	}
	inj := &Injection{Site: site, m: m}
	target := promptLen + site.GenIter
	dt := m.Cfg.DType
	hook := func(ref model.LayerRef, pos int, out []float32) {
		if inj.Fired || ref != site.Layer || pos != target {
			return
		}
		if site.Col < len(out) {
			out[site.Col] = float32(numerics.FlipBits(dt, float64(out[site.Col]), site.Bits...))
			inj.Fired = true
		}
	}
	return inj, hook, nil
}

// Disarm restores the model to its fault-free configuration.
func (inj *Injection) Disarm() {
	if inj.restore != nil {
		inj.restore()
		inj.restore = nil
	}
	if inj.hooked {
		// Hooks are cleared wholesale: the campaign engine owns the hook
		// list during a trial.
		inj.m.ClearHooks()
		inj.hooked = false
	}
}

// FaultValue returns, for a memory fault, the weight value before and
// after the flip — used by propagation traces and reports. The flip is
// transient (restored before returning) but still a write, so it must
// go through LayerForWrite: on a CloneShared worker a flip through
// Layer would momentarily corrupt the parent's shared tensor under
// every sibling worker's feet.
func FaultValue(m *model.Model, site Site) (before, after float64, err error) {
	if !site.Fault.IsMemory() {
		return 0, 0, fmt.Errorf("faults: FaultValue applies to memory faults only")
	}
	w, err := m.LayerForWrite(site.Layer)
	if err != nil {
		return 0, 0, err
	}
	before = w.Get(site.Row, site.Col)
	restore := w.FlipBits(site.Row, site.Col, site.Bits)
	after = w.Get(site.Row, site.Col)
	restore()
	return before, after, nil
}
