package faults

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/numerics"
)

// Injection is an armed fault. Arm it immediately before an inference and
// Disarm it immediately after, so the next trial starts from a fault-free
// model (§3.2's flip-back protocol). Exactly one Injection may be armed
// on a model at a time; the campaign engine enforces this.
type Injection struct {
	Site       Site
	m          *model.Model
	restore    func()
	hooked     bool
	attnHooked bool
	// Fired reports whether a computational fault actually struck (its
	// target iteration was reached). Memory faults always count as fired.
	Fired bool
}

// Arm applies the fault described by site to m. promptLen is the length
// of the prompt that will be fed before generation starts; computational
// faults trigger at absolute position promptLen + site.GenIter.
//
// Non-linear surfaces arm here too: norm and embedding sites flip their
// storage through the copy-on-write write paths (NormForWrite,
// EmbedForWrite) and restore on Disarm; attention-activation sites
// install a one-shot attention hook. KV-cache sites mutate a State, not
// the model — arm those with ArmKV.
func Arm(m *model.Model, site Site, promptLen int) (*Injection, error) {
	inj := &Injection{Site: site, m: m}
	switch site.Surface {
	case SurfaceNorm:
		g, err := m.NormForWrite(site.Layer)
		if err != nil {
			return nil, err
		}
		if site.Col >= len(g) {
			return nil, fmt.Errorf("faults: site %v out of range for %d-gain norm", site, len(g))
		}
		old := g[site.Col]
		g[site.Col] = float32(numerics.FlipBits(numerics.FP32, float64(old), site.Bits...))
		inj.restore = func() { g[site.Col] = old }
		inj.Fired = true
		return inj, nil
	case SurfaceEmbed:
		t := m.EmbedForWrite()
		if site.Row >= t.Rows || site.Col >= t.Cols {
			return nil, fmt.Errorf("faults: site %v out of range for %dx%d embedding", site, t.Rows, t.Cols)
		}
		old := t.At(site.Row, site.Col)
		t.Set(site.Row, site.Col, float32(numerics.FlipBits(numerics.FP32, float64(old), site.Bits...)))
		inj.restore = func() { t.Set(site.Row, site.Col, old) }
		inj.Fired = true
		return inj, nil
	case SurfaceAttn:
		hook, err := attnFaultHook(inj, site, promptLen)
		if err != nil {
			return nil, err
		}
		inj.attnHooked = true
		m.AddAttnHook(hook)
		return inj, nil
	case SurfaceKV:
		return nil, fmt.Errorf("faults: kv site %v is state-scoped; arm with ArmKV", site)
	}
	if site.Fault.IsMemory() {
		// LayerForWrite privatizes the target tensor on a weight-sharing
		// clone before the flip, so sibling campaign workers never observe
		// each other's faults.
		w, err := m.LayerForWrite(site.Layer)
		if err != nil {
			return nil, err
		}
		if site.Row >= w.In() || site.Col >= w.Out() {
			return nil, fmt.Errorf("faults: site %v out of range for %dx%d weight", site, w.In(), w.Out())
		}
		inj.restore = w.FlipBits(site.Row, site.Col, site.Bits)
		inj.Fired = true
		return inj, nil
	}

	// Computational fault: a one-shot forward hook. It fires the first
	// time the target layer computes the target position — with beam
	// search this corrupts exactly one hypothesis's row, which is how a
	// transient in a batched GEMM behaves (one row of the output tensor),
	// and is the mechanism behind Observation #9.
	target := promptLen + site.GenIter
	dt := m.Cfg.DType
	inj.hooked = true
	m.AddHook(func(ref model.LayerRef, pos int, out []float32) {
		if inj.Fired || ref != site.Layer || pos != target {
			return
		}
		if site.Col < len(out) {
			out[site.Col] = float32(numerics.FlipBits(dt, float64(out[site.Col]), site.Bits...))
			inj.Fired = true
		}
	})
	return inj, nil
}

// ArmHook builds the one-shot computational-fault hook for site without
// installing it on any model — the batched decode scheduler dispatches
// it on the trial's own batch row, so the fault strikes exactly that
// row's activations and never a sibling trial's. Weight-resident faults
// mutate shared storage and cannot be scoped to a row; they return an
// error (the scheduler routes such trials through the serial path).
// Attention-activation sites are row-scopeable: their hook must go in
// the row's AttnHooks slot, not Hooks (check Site.Surface). The
// returned Injection has nothing to restore: Disarm is a no-op, and
// dropping the hook retires the fault.
func ArmHook(m *model.Model, site Site, promptLen int) (*Injection, model.Hook, error) {
	if site.WeightResident() {
		return nil, nil, fmt.Errorf("faults: weight-resident fault %v cannot arm as a row hook", site)
	}
	if site.Surface == SurfaceKV {
		return nil, nil, fmt.Errorf("faults: kv site %v is state-scoped; arm with ArmKV", site)
	}
	inj := &Injection{Site: site, m: m}
	if site.Surface == SurfaceAttn {
		hook, err := attnFaultHook(inj, site, promptLen)
		return inj, hook, err
	}
	target := promptLen + site.GenIter
	dt := m.Cfg.DType
	hook := func(ref model.LayerRef, pos int, out []float32) {
		if inj.Fired || ref != site.Layer || pos != target {
			return
		}
		if site.Col < len(out) {
			out[site.Col] = float32(numerics.FlipBits(dt, float64(out[site.Col]), site.Bits...))
			inj.Fired = true
		}
	}
	return inj, hook, nil
}

// attnFaultHook builds the one-shot attention-activation flip: it fires
// on the site's block the first time the attention output row for the
// target position is observed, flipping the FP32 pattern of one neuron
// of the concatenated head outputs before out_proj consumes them.
func attnFaultHook(inj *Injection, site Site, promptLen int) (model.Hook, error) {
	if site.Layer.Kind != model.KindAttnAct {
		return nil, fmt.Errorf("faults: attn site %v must address attn_act", site)
	}
	target := promptLen + site.GenIter
	return func(ref model.LayerRef, pos int, out []float32) {
		if inj.Fired || ref != site.Layer || pos != target {
			return
		}
		if site.Col < len(out) {
			out[site.Col] = float32(numerics.FlipBits(numerics.FP32, float64(out[site.Col]), site.Bits...))
			inj.Fired = true
		}
	}, nil
}

// Disarm restores the model to its fault-free configuration.
func (inj *Injection) Disarm() {
	if inj.restore != nil {
		inj.restore()
		inj.restore = nil
	}
	if inj.hooked {
		// Hooks are cleared wholesale: the campaign engine owns the hook
		// list during a trial.
		inj.m.ClearHooks()
		inj.hooked = false
	}
	if inj.attnHooked {
		inj.m.ClearAttnHooks()
		inj.attnHooked = false
	}
}

// FaultValue returns, for a memory fault, the weight value before and
// after the flip — used by propagation traces and reports. The flip is
// transient (restored before returning) but still a write, so it must
// go through LayerForWrite: on a CloneShared worker a flip through
// Layer would momentarily corrupt the parent's shared tensor under
// every sibling worker's feet.
func FaultValue(m *model.Model, site Site) (before, after float64, err error) {
	if !site.Fault.IsMemory() {
		return 0, 0, fmt.Errorf("faults: FaultValue applies to memory faults only")
	}
	w, err := m.LayerForWrite(site.Layer)
	if err != nil {
		return 0, 0, err
	}
	before = w.Get(site.Row, site.Col)
	restore := w.FlipBits(site.Row, site.Col, site.Bits)
	after = w.Get(site.Row, site.Col)
	restore()
	return before, after, nil
}
