package faults

import (
	"math"
	"math/bits"
	"sync"
	"testing"

	"repro/internal/model"
	"repro/internal/numerics"
	"repro/internal/prng"
)

// fuzzSampler caches one model + sampler across fuzz iterations: building
// a model per input would dominate the fuzzing budget.
var fuzzSampler = sync.OnceValue(func() *Sampler {
	cfg := model.Config{
		Name: "fuzz", Vocab: 32, DModel: 16, NHeads: 2, NBlocks: 3,
		FFHidden: 24, MaxSeq: 24, Eps: 1e-5, DType: numerics.BF16,
		RopeTheta: 10000,
	}
	m := model.MustBuild(model.Spec{Config: cfg, Family: model.QwenS, Seed: 5})
	sp, err := NewSampler(m, nil)
	if err != nil {
		panic(err)
	}
	return sp
})

// FuzzFlipBits drives the site sampler and the bit-flip primitive with
// arbitrary seeds and values, checking the invariants the whole injection
// layer rests on: sampled sites flip exactly the fault model's bit count
// at distinct, sorted, in-range positions; a flip changes exactly those
// bits of the encoded pattern; and flipping twice is the identity on the
// format-rounded value (which is what lets Disarm restore memory faults
// by re-flipping).
func FuzzFlipBits(f *testing.F) {
	f.Add(uint64(1), uint8(0), 1.5)
	f.Add(uint64(2), uint8(1), -0.0)
	f.Add(uint64(3), uint8(2), 1e38)
	f.Add(uint64(99), uint8(1), 6.1e-5)
	f.Add(uint64(7), uint8(2), math.Inf(1))

	f.Fuzz(func(t *testing.T, seed uint64, fmSel uint8, v float64) {
		sp := fuzzSampler()
		fm := Models[int(fmSel)%len(Models)]
		src := prng.New(seed)
		site := sp.Sample(src, fm, 12)

		if site.Fault != fm {
			t.Fatalf("site fault %v, sampled for %v", site.Fault, fm)
		}
		if got := len(site.Bits); got != fm.NumBits() {
			t.Fatalf("%v site flips %d bits, model says %d", fm, got, fm.NumBits())
		}
		width := numerics.BF16.Bits()
		for i, b := range site.Bits {
			if b < 0 || b >= width {
				t.Fatalf("bit %d out of range [0,%d)", b, width)
			}
			if i > 0 && site.Bits[i] <= site.Bits[i-1] {
				t.Fatalf("bits %v not strictly increasing", site.Bits)
			}
		}
		if fm.IsMemory() {
			if site.GenIter != 0 {
				t.Fatalf("memory site carries GenIter %d", site.GenIter)
			}
		} else if site.GenIter < 0 || site.GenIter >= 12 {
			t.Fatalf("comp site GenIter %d outside [0,12)", site.GenIter)
		}
		if site.HighestBit() != site.Bits[len(site.Bits)-1] {
			t.Fatalf("HighestBit %d vs bits %v", site.HighestBit(), site.Bits)
		}

		// The flip primitive: XOR semantics and involutivity on the
		// rounded value. NaN intermediates are excluded because Encode
		// canonicalizes NaN payloads, which legitimately breaks the
		// round trip.
		const dt = numerics.BF16
		r := numerics.Round(dt, v)
		if math.IsNaN(r) {
			t.Skip("NaN payload")
		}
		flipped := numerics.FlipBits(dt, r, site.Bits...)
		if math.IsNaN(flipped) {
			t.Skip("flip produced NaN")
		}
		diff := numerics.Encode(dt, r) ^ numerics.Encode(dt, flipped)
		if got := bits.OnesCount32(diff); got != len(site.Bits) {
			t.Fatalf("flip of %v changed %d bits (pattern %#x), want %d", site.Bits, got, diff, len(site.Bits))
		}
		if back := numerics.FlipBits(dt, flipped, site.Bits...); back != r && !(back == 0 && r == 0) {
			t.Fatalf("double flip of %g at %v gives %g, want identity", r, site.Bits, back)
		}
	})
}
