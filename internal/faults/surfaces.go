// Fault surfaces beyond the linear-layer outputs: KV-cache residence,
// RMSNorm gains, embedding rows, and transient attention-path
// activations — the modular injection targets GoldenTransformer
// (PAPERS.md) studies and the paper's §3.2 taxonomy stops short of.
// Each surface keeps the statistical-FI estimator shape: uniform over
// the surface's instances, coordinates, and storage-bit positions, with
// transient surfaces striking one uniformly chosen generation iteration.
package faults

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/numerics"
	"repro/internal/prng"
)

// Surface selects what a fault site strikes.
type Surface int

const (
	// SurfaceLinear is a linear layer's output (computational faults) or
	// weight storage (memory faults) — the original §3.2 site and the
	// zero value, so pre-surface Sites decode unchanged from gob.
	SurfaceLinear Surface = iota
	// SurfaceKV flips bits of one stored KV-cache element: the value was
	// computed clean, corrupted at rest, and every subsequent attention
	// read consumes the corruption. Transient per-request state.
	SurfaceKV
	// SurfaceNorm flips bits of one RMSNorm gain element (attention,
	// MLP, or final norm) for the whole inference — weight-resident.
	SurfaceNorm
	// SurfaceEmbed flips bits of one embedding-table element for the
	// whole inference — weight-resident.
	SurfaceEmbed
	// SurfaceAttn flips bits of the post-attention activation row
	// (before out_proj) during a single generation iteration — the
	// attention-path analogue of a computational fault, delivered
	// through the model's attention-hook slot.
	SurfaceAttn
)

// Surfaces lists every injection surface.
var Surfaces = []Surface{SurfaceLinear, SurfaceKV, SurfaceNorm, SurfaceEmbed, SurfaceAttn}

// String names the surface as used in flags and reports.
func (s Surface) String() string {
	switch s {
	case SurfaceLinear:
		return "linear"
	case SurfaceKV:
		return "kv"
	case SurfaceNorm:
		return "norm"
	case SurfaceEmbed:
		return "embed"
	case SurfaceAttn:
		return "attn"
	default:
		return fmt.Sprintf("Surface(%d)", int(s))
	}
}

// ParseSurface resolves a surface name used on command lines.
func ParseSurface(name string) (Surface, error) {
	for _, s := range Surfaces {
		if s.String() == name {
			return s, nil
		}
	}
	return 0, fmt.Errorf("faults: unknown surface %q (want linear, kv, norm, embed, or attn)", name)
}

// Runtime-state surfaces (KV cache, attention activations) flip bits in
// the FP32 pattern: the engine's caches and activation rows are float32
// storage regardless of the model's logical weight datatype, so that is
// the physical word a particle would strike. Norm gains and the
// embedding table are likewise kept as unquantized float32 storage by
// the model builder (only Weight-interface parameters are rounded to
// Cfg.DType), so their memory faults use the FP32 pattern too.
const surfaceBits = 32

// SampleKV draws a KV-cache site for m: uniform block, K or V plane,
// strike iteration g in [0, maxGenIters), struck cache position in
// [0, promptLen+g) (any row written before the strike), and dimension.
// Arm with ArmKV; the strike lands before decode iteration g computes.
func SampleKV(src *prng.Source, m *model.Model, fm Model, maxGenIters, promptLen int) Site {
	if maxGenIters < 1 {
		maxGenIters = 1
	}
	if promptLen < 1 {
		promptLen = 1
	}
	kind := model.KindK
	if src.Intn(2) == 1 {
		kind = model.KindV
	}
	g := src.Intn(maxGenIters)
	return Site{
		Fault:   fm,
		Surface: SurfaceKV,
		Layer:   model.LayerRef{Block: src.Intn(m.Cfg.NBlocks), Kind: kind, Expert: -1},
		Row:     src.Intn(promptLen + g),
		Col:     src.Intn(m.Cfg.DModel),
		GenIter: g,
		Bits:    distinctBits(src, fm.NumBits(), surfaceBits),
	}
}

// SampleNorm draws a norm-gain site: uniform over the 2·NBlocks+1 gain
// vectors (attention and MLP norms per block, plus the final norm), then
// a uniform element. Weight-resident; arm with Arm.
func SampleNorm(src *prng.Source, m *model.Model, fm Model) Site {
	n := 2*m.Cfg.NBlocks + 1
	pick := src.Intn(n)
	ref := model.LayerRef{Block: -1, Kind: model.KindFinalNorm, Expert: -1}
	if pick < 2*m.Cfg.NBlocks {
		kind := model.KindAttnNorm
		if pick%2 == 1 {
			kind = model.KindMLPNorm
		}
		ref = model.LayerRef{Block: pick / 2, Kind: kind, Expert: -1}
	}
	return Site{
		Fault:   fm,
		Surface: SurfaceNorm,
		Layer:   ref,
		Col:     src.Intn(m.Cfg.DModel),
		Bits:    distinctBits(src, fm.NumBits(), surfaceBits),
	}
}

// SampleEmbed draws an embedding-table site: uniform token row and
// dimension. Weight-resident; arm with Arm.
func SampleEmbed(src *prng.Source, m *model.Model, fm Model) Site {
	return Site{
		Fault:   fm,
		Surface: SurfaceEmbed,
		Layer:   model.LayerRef{Block: -1, Kind: model.KindEmbed, Expert: -1},
		Row:     src.Intn(m.Cfg.Vocab),
		Col:     src.Intn(m.Cfg.DModel),
		Bits:    distinctBits(src, fm.NumBits(), surfaceBits),
	}
}

// SampleAttn draws an attention-activation site: uniform block, neuron
// of the concatenated head outputs, and strike iteration. Arm with Arm
// (serial) or ArmHook (per decode-batch row, via DecodeRow.AttnHooks).
func SampleAttn(src *prng.Source, m *model.Model, fm Model, maxGenIters int) Site {
	if maxGenIters < 1 {
		maxGenIters = 1
	}
	return Site{
		Fault:   fm,
		Surface: SurfaceAttn,
		Layer:   model.LayerRef{Block: src.Intn(m.Cfg.NBlocks), Kind: model.KindAttnAct, Expert: -1},
		Col:     src.Intn(m.Cfg.DModel),
		GenIter: src.Intn(maxGenIters),
		Bits:    distinctBits(src, fm.NumBits(), surfaceBits),
	}
}

// SampleSurface dispatches to the surface's sampler. sp is consulted for
// SurfaceLinear only (it may be nil otherwise); promptLen bounds the KV
// strike position.
func SampleSurface(src *prng.Source, sp *Sampler, m *model.Model, surf Surface, fm Model, maxGenIters, promptLen int) (Site, error) {
	switch surf {
	case SurfaceLinear:
		if sp == nil {
			return Site{}, fmt.Errorf("faults: SurfaceLinear needs a Sampler")
		}
		return sp.Sample(src, fm, maxGenIters), nil
	case SurfaceKV:
		return SampleKV(src, m, fm, maxGenIters, promptLen), nil
	case SurfaceNorm:
		return SampleNorm(src, m, fm), nil
	case SurfaceEmbed:
		return SampleEmbed(src, m, fm), nil
	case SurfaceAttn:
		return SampleAttn(src, m, fm, maxGenIters), nil
	}
	return Site{}, fmt.Errorf("faults: unknown surface %v", surf)
}

// StateFault is an armed KV-cache fault. Unlike an Injection it mutates
// a State, not a Model: the decode loop calls BeforeStep between steps,
// and the flip lands exactly once, when the state reaches the strike
// iteration. Never calling BeforeStep leaves every bit of the inference
// untouched — disarmed KV injection is bit-identical by construction.
type StateFault struct {
	Site Site
	// target is the absolute position whose decode step first reads the
	// corrupted cache entry.
	target int
	// Fired reports whether the flip has landed.
	Fired bool
}

// ArmKV prepares a KV-cache fault for a request whose prompt is
// promptLen tokens long. The site must have Surface SurfaceKV.
func ArmKV(site Site, promptLen int) (*StateFault, error) {
	if site.Surface != SurfaceKV {
		return nil, fmt.Errorf("faults: ArmKV wants a kv site, got %v", site)
	}
	if site.Layer.Kind != model.KindK && site.Layer.Kind != model.KindV {
		return nil, fmt.Errorf("faults: kv site %v must address k_proj or v_proj cache", site)
	}
	return &StateFault{Site: site, target: promptLen + site.GenIter}, nil
}

// BeforeStep flips the cache bits once st has reached the strike
// iteration; the step that follows (and every later one) attends over
// the corrupted entry. Call it immediately before each DecodeStep or
// Batch.Step covering st. Out-of-range sites (a request shorter than
// the sampled strike) simply never fire.
func (sf *StateFault) BeforeStep(st *model.State) {
	if sf.Fired || st.Pos < sf.target {
		return
	}
	b := sf.Site.Layer.Block
	if b < 0 || b >= len(st.K) {
		return
	}
	plane := st.K[b]
	if sf.Site.Layer.Kind == model.KindV {
		plane = st.V[b]
	}
	if sf.Site.Row >= st.Pos || sf.Site.Col >= plane.Cols {
		return
	}
	v := plane.At(sf.Site.Row, sf.Site.Col)
	plane.Set(sf.Site.Row, sf.Site.Col,
		float32(numerics.FlipBits(numerics.FP32, float64(v), sf.Site.Bits...)))
	sf.Fired = true
}
