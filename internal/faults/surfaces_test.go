package faults

import (
	"reflect"
	"testing"

	"repro/internal/gen"
	"repro/internal/model"
	"repro/internal/outcome"
	"repro/internal/prng"
)

var surfacePrompt = []int{5, 9, 17, 4, 12, 7}

// surfaceBaseline decodes the test model fault-free.
func surfaceBaseline(m *model.Model) []int {
	return gen.Generate(m, surfacePrompt, gen.Defaults(8)).Tokens
}

// decodeWithKV runs a serial decode calling sf.BeforeStep between steps,
// the way the serving scheduler and campaign engine do.
func decodeWithKV(m *model.Model, sf *StateFault, maxNew int) []int {
	st := m.NewState()
	logits := st.Prefill(surfacePrompt)
	stepper := gen.NewStepper(gen.Defaults(maxNew))
	tok, ok := stepper.Next(logits, st.Pos, m.Cfg.MaxSeq)
	for ok {
		if sf != nil {
			sf.BeforeStep(st)
		}
		logits = st.DecodeStep(tok)
		tok, ok = stepper.Next(logits, st.Pos, m.Cfg.MaxSeq)
	}
	return stepper.Result().Tokens
}

func TestParseSurfaceRoundTrip(t *testing.T) {
	for _, s := range Surfaces {
		got, err := ParseSurface(s.String())
		if err != nil || got != s {
			t.Fatalf("ParseSurface(%q) = %v, %v", s.String(), got, err)
		}
	}
	if _, err := ParseSurface("flux-capacitor"); err == nil {
		t.Fatal("want error for unknown surface")
	}
}

func TestSurfaceWeightResident(t *testing.T) {
	cases := []struct {
		site Site
		want bool
	}{
		{Site{Fault: Comp1Bit, Surface: SurfaceLinear}, false},
		{Site{Fault: Mem2Bit, Surface: SurfaceLinear}, true},
		{Site{Fault: Comp1Bit, Surface: SurfaceKV}, false},
		{Site{Fault: Comp1Bit, Surface: SurfaceNorm}, true},
		{Site{Fault: Comp1Bit, Surface: SurfaceEmbed}, true},
		{Site{Fault: Comp1Bit, Surface: SurfaceAttn}, false},
	}
	for _, c := range cases {
		if got := c.site.WeightResident(); got != c.want {
			t.Errorf("WeightResident(%v/%v) = %v, want %v", c.site.Surface, c.site.Fault, got, c.want)
		}
	}
}

// TestSurfaceSamplersBounds draws many sites per surface and checks every
// coordinate stays inside its storage.
func TestSurfaceSamplersBounds(t *testing.T) {
	m := testModel(t, 0)
	sp, err := NewSampler(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	const maxGen, promptLen = 10, 6
	for _, surf := range Surfaces {
		src := prng.New(77)
		for i := 0; i < 500; i++ {
			site, err := SampleSurface(src, sp, m, surf, Comp1Bit, maxGen, promptLen)
			if err != nil {
				t.Fatalf("%v: %v", surf, err)
			}
			if site.Surface != surf {
				t.Fatalf("%v: sampled surface %v", surf, site.Surface)
			}
			for _, b := range site.Bits {
				if b < 0 || b >= 32 {
					t.Fatalf("%v: bit %d out of fp32 range", surf, b)
				}
			}
			switch surf {
			case SurfaceKV:
				if site.Layer.Kind != model.KindK && site.Layer.Kind != model.KindV {
					t.Fatalf("kv kind %v", site.Layer.Kind)
				}
				if site.GenIter < 0 || site.GenIter >= maxGen ||
					site.Row < 0 || site.Row >= promptLen+site.GenIter+1 ||
					site.Col < 0 || site.Col >= m.Cfg.DModel ||
					site.Layer.Block < 0 || site.Layer.Block >= m.Cfg.NBlocks {
					t.Fatalf("kv site out of bounds: %+v", site)
				}
			case SurfaceNorm:
				switch site.Layer.Kind {
				case model.KindFinalNorm:
					if site.Layer.Block != -1 {
						t.Fatalf("final norm block %d", site.Layer.Block)
					}
				case model.KindAttnNorm, model.KindMLPNorm:
					if site.Layer.Block < 0 || site.Layer.Block >= m.Cfg.NBlocks {
						t.Fatalf("norm block %d", site.Layer.Block)
					}
				default:
					t.Fatalf("norm kind %v", site.Layer.Kind)
				}
				if site.Col < 0 || site.Col >= m.Cfg.DModel {
					t.Fatalf("norm col %d", site.Col)
				}
			case SurfaceEmbed:
				if site.Row < 0 || site.Row >= m.Cfg.Vocab || site.Col < 0 || site.Col >= m.Cfg.DModel {
					t.Fatalf("embed site out of bounds: %+v", site)
				}
			case SurfaceAttn:
				if site.Layer.Kind != model.KindAttnAct ||
					site.Layer.Block < 0 || site.Layer.Block >= m.Cfg.NBlocks ||
					site.Col < 0 || site.Col >= m.Cfg.DModel ||
					site.GenIter < 0 || site.GenIter >= maxGen {
					t.Fatalf("attn site out of bounds: %+v", site)
				}
			}
		}
	}
}

// TestSurfaceSamplingDeterminism pins that a site is a pure function of
// the seed — the property per-request fault determinism in the serving
// engine rests on.
func TestSurfaceSamplingDeterminism(t *testing.T) {
	m := testModel(t, 0)
	sp, err := NewSampler(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, surf := range Surfaces {
		a, err1 := SampleSurface(prng.New(123).Split(9), sp, m, surf, Comp2Bit, 8, 6)
		b, err2 := SampleSurface(prng.New(123).Split(9), sp, m, surf, Comp2Bit, 8, 6)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%v: same seed, different sites:\n%+v\n%+v", surf, a, b)
		}
	}
}

// TestSurfaceArmDisarmBitIdentity proves the weight-resident surfaces
// restore the model exactly: after Arm+Disarm, generation is
// bit-identical to never having armed.
func TestSurfaceArmDisarmBitIdentity(t *testing.T) {
	m := testModel(t, 0)
	clean := surfaceBaseline(m)
	sites := []Site{
		{Fault: Comp1Bit, Surface: SurfaceNorm,
			Layer: model.LayerRef{Block: 1, Kind: model.KindAttnNorm, Expert: -1}, Col: 3, Bits: []int{30}},
		{Fault: Comp1Bit, Surface: SurfaceNorm,
			Layer: model.LayerRef{Block: -1, Kind: model.KindFinalNorm, Expert: -1}, Col: 7, Bits: []int{30}},
		{Fault: Comp1Bit, Surface: SurfaceEmbed,
			Layer: model.LayerRef{Block: -1, Kind: model.KindEmbed, Expert: -1}, Row: 9, Col: 2, Bits: []int{30}},
		{Fault: Comp1Bit, Surface: SurfaceAttn,
			Layer: model.LayerRef{Block: 0, Kind: model.KindAttnAct, Expert: -1}, Col: 5, GenIter: 1, Bits: []int{30}},
	}
	for _, site := range sites {
		inj, err := Arm(m, site, len(surfacePrompt))
		if err != nil {
			t.Fatalf("%v: %v", site, err)
		}
		inj.Disarm()
		if got := surfaceBaseline(m); !reflect.DeepEqual(got, clean) {
			t.Fatalf("%v: arm+disarm perturbed generation: %v vs %v", site, got, clean)
		}
	}
	// A KV fault whose BeforeStep never runs leaves the inference
	// untouched — disarmed-by-construction.
	sf, err := ArmKV(Site{Fault: Comp1Bit, Surface: SurfaceKV,
		Layer: model.LayerRef{Block: 1, Kind: model.KindK, Expert: -1}, Row: 2, Col: 3, GenIter: 1, Bits: []int{30}},
		len(surfacePrompt))
	if err != nil {
		t.Fatal(err)
	}
	_ = sf
	if got := surfaceBaseline(m); !reflect.DeepEqual(got, clean) {
		t.Fatalf("ArmKV without BeforeStep perturbed generation")
	}
	if got := decodeWithKV(m, nil, 8); !reflect.DeepEqual(got, clean) {
		t.Fatalf("manual decode loop disagrees with gen.Generate: %v vs %v", got, clean)
	}
}

// TestSurfaceArmValidation pins the arming dispatch rules.
func TestSurfaceArmValidation(t *testing.T) {
	m := testModel(t, 0)
	kv := Site{Fault: Comp1Bit, Surface: SurfaceKV,
		Layer: model.LayerRef{Block: 0, Kind: model.KindK, Expert: -1}, Row: 1, Col: 1, Bits: []int{3}}
	if _, err := Arm(m, kv, 4); err == nil {
		t.Fatal("Arm must reject kv sites")
	}
	if _, _, err := ArmHook(m, kv, 4); err == nil {
		t.Fatal("ArmHook must reject kv sites")
	}
	norm := Site{Fault: Comp1Bit, Surface: SurfaceNorm,
		Layer: model.LayerRef{Block: 0, Kind: model.KindAttnNorm, Expert: -1}, Col: 1, Bits: []int{3}}
	if _, _, err := ArmHook(m, norm, 4); err == nil {
		t.Fatal("ArmHook must reject weight-resident sites")
	}
	if _, err := ArmKV(norm, 4); err == nil {
		t.Fatal("ArmKV must reject non-kv sites")
	}
	bad := kv
	bad.Layer.Kind = model.KindQ
	if _, err := ArmKV(bad, 4); err == nil {
		t.Fatal("ArmKV must reject non-cache kinds")
	}
}

// TestStateFaultFiresOnce pins the KV strike semantics: the flip lands
// exactly at the strike iteration, once.
func TestStateFaultFiresOnce(t *testing.T) {
	m := testModel(t, 0)
	site := Site{Fault: Comp1Bit, Surface: SurfaceKV,
		Layer: model.LayerRef{Block: 1, Kind: model.KindV, Expert: -1}, Row: 2, Col: 3, GenIter: 2, Bits: []int{30}}
	sf, err := ArmKV(site, len(surfacePrompt))
	if err != nil {
		t.Fatal(err)
	}
	st := m.NewState()
	st.Prefill(surfacePrompt)
	sf.BeforeStep(st) // Pos == promptLen < target: must not fire
	if sf.Fired {
		t.Fatal("fired before strike iteration")
	}
	st.DecodeStep(4)
	st.DecodeStep(4)
	before := st.V[1].At(2, 3)
	sf.BeforeStep(st)
	if !sf.Fired {
		t.Fatal("did not fire at strike iteration")
	}
	if st.V[1].At(2, 3) == before {
		t.Fatal("strike did not change the cache element")
	}
	after := st.V[1].At(2, 3)
	sf.BeforeStep(st)
	if st.V[1].At(2, 3) != after {
		t.Fatal("second BeforeStep must be a no-op")
	}
}

// TestSurfaceOutcomeGoldens pins the outcome classification for one
// exponent-bit and one low-mantissa-bit flip per surface, against the
// deterministic test model. High-exponent strikes blow up the struck
// value and corrupt generation; mantissa-LSB strikes sit below the
// numeric noise floor and stay Masked.
func TestSurfaceOutcomeGoldens(t *testing.T) {
	m := testModel(t, 0)
	baseline := surfaceBaseline(m)

	kvSite := func(bits ...int) Site {
		return Site{Fault: Comp1Bit, Surface: SurfaceKV,
			Layer: model.LayerRef{Block: 1, Kind: model.KindK, Expert: -1}, Row: 2, Col: 3, GenIter: 1, Bits: bits}
	}
	normSite := func(bits ...int) Site {
		return Site{Fault: Comp1Bit, Surface: SurfaceNorm,
			Layer: model.LayerRef{Block: 1, Kind: model.KindAttnNorm, Expert: -1}, Col: 3, Bits: bits}
	}
	embedSite := func(bits ...int) Site {
		// Row 5 is the first prompt token, so the corrupted row is embedded.
		return Site{Fault: Comp1Bit, Surface: SurfaceEmbed,
			Layer: model.LayerRef{Block: -1, Kind: model.KindEmbed, Expert: -1}, Row: 5, Col: 2, Bits: bits}
	}
	attnSite := func(bits ...int) Site {
		return Site{Fault: Comp1Bit, Surface: SurfaceAttn,
			Layer: model.LayerRef{Block: 0, Kind: model.KindAttnAct, Expert: -1}, Col: 5, GenIter: 0, Bits: bits}
	}

	cases := []struct {
		name string
		site Site
		want string
	}{
		{"kv/exp30", kvSite(30), "SDC-subtle"},
		{"kv/mant0", kvSite(0), "Masked"},
		{"norm/exp30", normSite(30), "SDC-subtle"},
		{"norm/mant0", normSite(0), "Masked"},
		{"embed/exp30", embedSite(30), "SDC-subtle"},
		{"embed/mant0", embedSite(0), "Masked"},
		{"attn/exp30", attnSite(30), "SDC-subtle"},
		{"attn/mant0", attnSite(0), "Masked"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var tokens []int
			var fired bool
			if c.site.Surface == SurfaceKV {
				sf, err := ArmKV(c.site, len(surfacePrompt))
				if err != nil {
					t.Fatal(err)
				}
				tokens = decodeWithKV(m, sf, 8)
				fired = sf.Fired
			} else {
				inj, err := Arm(m, c.site, len(surfacePrompt))
				if err != nil {
					t.Fatal(err)
				}
				tokens = gen.Generate(m, surfacePrompt, gen.Defaults(8)).Tokens
				fired = inj.Fired
				inj.Disarm()
			}
			if !fired {
				t.Fatalf("fault did not fire")
			}
			matches := reflect.DeepEqual(tokens, baseline)
			an := outcome.Classify(tokens, baseline, matches, outcome.Thresholds{})
			if got := an.Class.String(); got != c.want {
				t.Errorf("outcome = %s, want %s (tokens %v vs baseline %v)", got, c.want, tokens, baseline)
			}
			// Each trial must leave the model clean for the next.
			if got := surfaceBaseline(m); !reflect.DeepEqual(got, baseline) {
				t.Fatalf("model not restored after trial: %v vs %v", got, baseline)
			}
		})
	}
}
