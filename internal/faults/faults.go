// Package faults implements the fault models and injection mechanisms of
// §3.1–3.2:
//
//   - 1bit-comp / 2bits-comp: transient computational faults modeled as
//     bit flips in one neuron of a linear layer's output tensor during a
//     single (randomly chosen) token-generation iteration, applied
//     through the model's forward-hook mechanism — the PyTorchFI-style
//     approach.
//   - 2bits-mem: a double-bit memory fault (the ECC-uncorrectable case)
//     modeled as flipping two bits of one stored weight before the
//     inference and restoring them afterwards ("flip the same bits back
//     to their fault-free values", §3.2).
//
// Injection sites are sampled uniformly over the linear layers of the
// transformer blocks, their weight/neuron coordinates, and the bit
// positions of the storage format, exactly the statistical-FI estimator
// of the paper.
package faults

import (
	"fmt"
	"sort"

	"repro/internal/model"
	"repro/internal/prng"
)

// Model enumerates the studied fault models.
type Model int

const (
	// Comp1Bit is a single-bit computational fault.
	Comp1Bit Model = iota
	// Comp2Bit is a double-bit computational fault.
	Comp2Bit
	// Mem2Bit is a double-bit (ECC-uncorrectable) memory fault.
	Mem2Bit
)

// String names the fault model as in the paper's figures.
func (fm Model) String() string {
	switch fm {
	case Comp1Bit:
		return "1bit-comp"
	case Comp2Bit:
		return "2bits-comp"
	case Mem2Bit:
		return "2bits-mem"
	default:
		return fmt.Sprintf("Model(%d)", int(fm))
	}
}

// Models lists all fault models.
var Models = []Model{Comp1Bit, Comp2Bit, Mem2Bit}

// IsMemory reports whether the fault persists in weights across the whole
// inference (vs. a transient computational fault).
func (fm Model) IsMemory() bool { return fm == Mem2Bit }

// NumBits returns how many bits the fault flips.
func (fm Model) NumBits() int {
	if fm == Comp1Bit {
		return 1
	}
	return 2
}

// Site fully describes one injection: the layer, the element coordinates,
// the flipped bit positions, and — for computational faults — the token
// generation iteration during which the transient occurs.
type Site struct {
	Fault Model
	// Surface selects what the fault strikes. The zero value is
	// SurfaceLinear — the PR≤7 linear-layer site — so gob checkpoints
	// and call sites written before the surface taxonomy decode and
	// behave unchanged.
	Surface Surface
	Layer   model.LayerRef
	// Row, Col locate the weight for memory faults. For computational
	// faults only Col is used: it is the neuron index within the layer's
	// output vector. Non-linear surfaces reuse them (SampleKV: Row is
	// the struck cache position; SampleEmbed: Row is the token id).
	Row, Col int
	// Bits are the flipped bit positions (0 = LSB of the storage format).
	Bits []int
	// GenIter is the generation iteration (0 = first generated token) at
	// which a computational fault strikes. Ignored for memory faults,
	// which corrupt the weight for the entire inference.
	GenIter int
}

// HighestBit returns the largest flipped bit position — the grouping key
// of Figures 9–10.
func (s Site) HighestBit() int {
	hb := -1
	for _, b := range s.Bits {
		if b > hb {
			hb = b
		}
	}
	return hb
}

// String renders a compact site descriptor.
func (s Site) String() string {
	switch s.Surface {
	case SurfaceKV:
		return fmt.Sprintf("%v kv %v cache(t%d,d%d) iter%d bits%v",
			s.Fault, s.Layer, s.Row, s.Col, s.GenIter, s.Bits)
	case SurfaceNorm:
		return fmt.Sprintf("%v norm %s g%d bits%v", s.Fault, normName(s.Layer), s.Col, s.Bits)
	case SurfaceEmbed:
		return fmt.Sprintf("%v embed w(%d,%d) bits%v", s.Fault, s.Row, s.Col, s.Bits)
	case SurfaceAttn:
		return fmt.Sprintf("%v attn %v n%d iter%d bits%v", s.Fault, s.Layer, s.Col, s.GenIter, s.Bits)
	}
	if s.Fault.IsMemory() {
		return fmt.Sprintf("%v %v w(%d,%d) bits%v", s.Fault, s.Layer, s.Row, s.Col, s.Bits)
	}
	return fmt.Sprintf("%v %v n%d iter%d bits%v", s.Fault, s.Layer, s.Col, s.GenIter, s.Bits)
}

// normName renders a norm-gain address without the "block-1." artifact
// the generic LayerRef form would give the final norm.
func normName(ref model.LayerRef) string {
	if ref.Kind == model.KindFinalNorm {
		return "final_norm"
	}
	return ref.String()
}

// WeightResident reports whether the armed fault lives in parameter
// storage for the whole inference — norm/embedding flips and linear
// memory faults — rather than striking transient per-request state
// (activations, KV cache). Weight-resident faults cannot be scoped to
// one row of a shared decode batch: concurrent schedulers must run them
// on a private copy-on-write clone (the serving engine's serial path),
// exactly as offline campaigns serialize memory-fault trials per model
// instance.
func (s Site) WeightResident() bool {
	switch s.Surface {
	case SurfaceNorm, SurfaceEmbed:
		return true
	case SurfaceLinear:
		return s.Fault.IsMemory()
	}
	return false
}

// TargetFilter restricts which layers a sampler may pick. Nil accepts all
// transformer-block linear layers.
type TargetFilter func(model.LayerRef) bool

// GateOnly restricts injection to MoE router (gate) layers — the
// Figure 15 campaign.
func GateOnly(ref model.LayerRef) bool { return ref.Kind == model.KindRouter }

// ExcludeRouters excludes MoE routers, leaving ordinary linears.
func ExcludeRouters(ref model.LayerRef) bool { return ref.Kind != model.KindRouter }

// Sampler draws injection sites for a model following §3.2's hierarchy:
// "the block ID is randomly selected among all decoder blocks, and the
// layer ID is the type of the target linear layer" — i.e. a uniform
// block, then a uniform layer *type* within that block, then (for MoE
// expert layers) a uniform expert. This weighting matters: sampling
// uniformly over weight instances instead would make an 8-expert MoE
// absorb 8x more MLP faults into cold experts, silently inflating its
// apparent resilience.
type Sampler struct {
	// buckets[block][kind] lists the layer instances of that type.
	buckets map[int]map[model.LayerKind][]model.LayerInfo
	blocks  []int
	kinds   map[int][]model.LayerKind
	m       *model.Model
}

// NewSampler enumerates the injectable layers of m, optionally filtered.
func NewSampler(m *model.Model, filter TargetFilter) (*Sampler, error) {
	sp := &Sampler{
		buckets: map[int]map[model.LayerKind][]model.LayerInfo{},
		kinds:   map[int][]model.LayerKind{},
		m:       m,
	}
	for _, li := range m.LinearLayers() {
		if filter != nil && !filter(li.Ref) {
			continue
		}
		bk := sp.buckets[li.Ref.Block]
		if bk == nil {
			bk = map[model.LayerKind][]model.LayerInfo{}
			sp.buckets[li.Ref.Block] = bk
			sp.blocks = append(sp.blocks, li.Ref.Block)
		}
		if len(bk[li.Ref.Kind]) == 0 {
			sp.kinds[li.Ref.Block] = append(sp.kinds[li.Ref.Block], li.Ref.Kind)
		}
		bk[li.Ref.Kind] = append(bk[li.Ref.Kind], li)
	}
	if len(sp.blocks) == 0 {
		return nil, fmt.Errorf("faults: no injectable layers after filtering")
	}
	sort.Ints(sp.blocks)
	return sp, nil
}

// pickLayer draws block -> layer type -> instance.
func (sp *Sampler) pickLayer(src *prng.Source) model.LayerInfo {
	block := sp.blocks[src.Intn(len(sp.blocks))]
	kinds := sp.kinds[block]
	kind := kinds[src.Intn(len(kinds))]
	instances := sp.buckets[block][kind]
	return instances[src.Intn(len(instances))]
}

// Sample draws one site for fault model fm. maxGenIters bounds the
// generation iteration for computational faults (use the task's
// MaxNewTokens; 1 for single-scoring-pass tasks).
func (sp *Sampler) Sample(src *prng.Source, fm Model, maxGenIters int) Site {
	li := sp.pickLayer(src)
	w := li.Weight
	site := Site{Fault: fm, Layer: li.Ref}

	var nbits int
	if fm.IsMemory() {
		site.Row = src.Intn(w.In())
		site.Col = src.Intn(w.Out())
		nbits = w.StorageBits()
	} else {
		site.Col = src.Intn(w.Out())
		nbits = sp.m.Cfg.DType.Bits()
		if maxGenIters < 1 {
			maxGenIters = 1
		}
		site.GenIter = src.Intn(maxGenIters)
	}
	site.Bits = distinctBits(src, fm.NumBits(), nbits)
	return site
}

// distinctBits draws k distinct positions in [0, n).
func distinctBits(src *prng.Source, k, n int) []int {
	if k > n {
		k = n
	}
	picked := make(map[int]bool, k)
	out := make([]int, 0, k)
	for len(out) < k {
		b := src.Intn(n)
		if !picked[b] {
			picked[b] = true
			out = append(out, b)
		}
	}
	sort.Ints(out)
	return out
}
