package core

import (
	"context"

	"testing"

	"repro/internal/faults"
	"repro/internal/gen"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/pretrained"
	"repro/internal/tasks"
	"repro/internal/token"
)

func TestDefaultCheckerMath(t *testing.T) {
	mt := pretrained.MathTask()
	suite := mt.Suite(1, 3, true)
	check := DefaultChecker(suite)
	inst := &suite.Instances[0]
	p := tasks.Problem{} // reconstruct gold from reference
	_ = p
	// The gold completion must pass the checker.
	v := suite.Vocab
	gold := v.Encode(inst.Reference)
	toks := append([]int{v.ID(tasks.MathAnswer)}, gold...)
	if !check(inst, toks) {
		t.Fatal("gold answer rejected")
	}
	// A wrong number must fail.
	wrong := []int{v.ID(tasks.MathAnswer), v.ID("0")}
	if inst.Reference != "0" && check(inst, wrong) {
		t.Fatal("wrong answer accepted")
	}
}

func TestDefaultCheckerText(t *testing.T) {
	qt := pretrained.QATask()
	suite := qt.Suite(1, 2)
	check := DefaultChecker(suite)
	inst := &suite.Instances[0]
	if !check(inst, suite.Vocab.Encode(inst.Reference)) {
		t.Fatal("exact reference rejected")
	}
	if check(inst, []int{token.UNK}) {
		t.Fatal("garbage accepted")
	}
}

func TestBaselineSelfReference(t *testing.T) {
	vocab := tasks.GeneralVocab()
	cfg := model.StandardConfig("b", vocab.Size(), 0)
	m := model.MustBuild(model.Spec{Config: cfg, Family: model.QwenS, Seed: 3})
	suite := tasks.NewSelfRefSuite("x", 5, 4, 6, 8, []metrics.Kind{metrics.KindBLEU})
	b := EvalBaseline(m, suite, gen.Settings{NumBeams: 1, StopToken: token.EOS, BanSpecials: true}, nil)
	// Self-referential baselines score exactly 1.0 on every metric.
	if b.MetricMeans[metrics.KindBLEU] != 1 {
		t.Fatalf("self-ref baseline BLEU = %f, want 1", b.MetricMeans[metrics.KindBLEU])
	}
	for _, ib := range b.Instances {
		if ib.Reference == "" && ib.Text != "" {
			t.Fatal("reference not filled from fault-free output")
		}
	}
}

func TestBeamCampaignRuns(t *testing.T) {
	loader := pretrained.NewLoader(pretrained.DefaultDir())
	m, err := loader.Load("wmt-alma")
	if err != nil {
		t.Fatal(err)
	}
	suite := pretrained.TranslationTask().Suite(2, 3)
	res, err := Campaign{
		Model: m, Suite: suite, Fault: faults.Comp2Bit,
		Trials: 10, Seed: 4, Gen: gen.Settings{NumBeams: 3},
	}.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanSteps() <= float64(len(suite.Instances[0].Prompt)) {
		t.Fatal("beam campaign should report meaningful step counts")
	}
}

func TestReasoningOnlyRestrictsIterations(t *testing.T) {
	loader := pretrained.NewLoader(pretrained.DefaultDir())
	m, err := loader.Load("math-qwens")
	if err != nil {
		t.Fatal(err)
	}
	mt := pretrained.MathTask()
	suite := mt.Suite(2, 4, true)
	res, err := Campaign{
		Model: m, Suite: suite, Fault: faults.Comp2Bit,
		Trials: 40, Seed: 5, ReasoningOnly: true,
	}.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range res.Trials {
		base := res.Baseline.Instances[tr.Instance]
		if base.ReasoningLen > 0 && tr.Site.GenIter >= base.ReasoningLen {
			t.Fatalf("trial iteration %d beyond reasoning length %d",
				tr.Site.GenIter, base.ReasoningLen)
		}
	}
}

func TestGateOnlyCampaignOnDenseFails(t *testing.T) {
	vocab := tasks.GeneralVocab()
	cfg := model.StandardConfig("d", vocab.Size(), 0)
	m := model.MustBuild(model.Spec{Config: cfg, Family: model.QwenS, Seed: 3})
	suite, _ := tasks.NewMCSuite("arc", 1, 2)
	_, err := Campaign{
		Model: m, Suite: suite, Fault: faults.Mem2Bit,
		Trials: 4, Seed: 1, Filter: faults.GateOnly,
	}.Run(context.Background())
	if err == nil {
		t.Fatal("gate-only on dense model must error")
	}
}

func TestCampaignValidation(t *testing.T) {
	vocab := tasks.GeneralVocab()
	cfg := model.StandardConfig("v", vocab.Size(), 0)
	m := model.MustBuild(model.Spec{Config: cfg, Family: model.QwenS, Seed: 3})
	suite, _ := tasks.NewMCSuite("arc", 1, 2)
	if _, err := (Campaign{Model: m, Suite: suite, Fault: faults.Mem2Bit}).Run(context.Background()); err == nil {
		t.Fatal("zero trials should error")
	}
	small := cfg
	small.MaxSeq = 4
	sm := model.MustBuild(model.Spec{Config: small, Family: model.QwenS, Seed: 3})
	if _, err := (Campaign{Model: sm, Suite: suite, Fault: faults.Mem2Bit, Trials: 2}).Run(context.Background()); err == nil {
		t.Fatal("context too small should error")
	}
}

func TestRerunInstanceMatchesBaseline(t *testing.T) {
	loader := pretrained.NewLoader(pretrained.DefaultDir())
	m, err := loader.Load("squad-qwens")
	if err != nil {
		t.Fatal(err)
	}
	suite := pretrained.QATask().Suite(9, 3)
	b := EvalBaseline(m, suite, defaultGen(), nil)
	for i := range suite.Instances {
		if got := RerunInstance(m, suite, &suite.Instances[i]); got != b.Instances[i].Text {
			t.Fatalf("RerunInstance %d = %q, baseline %q", i, got, b.Instances[i].Text)
		}
	}
}
