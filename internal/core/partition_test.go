package core

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/tasks"
)

func partitionCampaign(t *testing.T) Campaign {
	t.Helper()
	return New(
		goldenModel(t, model.QwenS, false),
		tasks.NewSelfRefSuite("part", 3, 2, 16, 6, []metrics.Kind{metrics.KindBLEU}),
		faults.Comp2Bit, 10, 17,
	)
}

// TestWithOnlyPartitionGolden splits the trial-index space across three
// disjoint WithOnly runners and requires the union to be bit-identical
// to the full run — the property the distributed fabric's merge rests
// on (trial t is a pure function of the fingerprint and t).
func TestWithOnlyPartitionGolden(t *testing.T) {
	c := partitionCampaign(t)
	full, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	parts := [][]int{{0, 3, 6, 9}, {1, 4, 7}, {2, 5, 8}}
	merged := make([]Trial, c.Trials)
	seen := make([]bool, c.Trials)
	for _, idx := range parts {
		res, err := NewRunner(c, WithOnly(idx)).Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		want := map[int]bool{}
		for _, i := range idx {
			want[i] = true
		}
		for i, tr := range res.Trials {
			if !want[i] {
				// Unselected indices stay zero-valued in the partial Result.
				if !reflect.DeepEqual(tr, Trial{}) {
					t.Fatalf("partition %v executed unselected trial %d: %+v", idx, i, tr)
				}
				continue
			}
			merged[i] = tr
			seen[i] = true
		}
	}
	for i := range seen {
		if !seen[i] {
			t.Fatalf("trial %d not covered by any partition", i)
		}
		if !reflect.DeepEqual(merged[i], full.Trials[i]) {
			t.Fatalf("trial %d differs from the full run:\npart %+v\nfull %+v", i, merged[i], full.Trials[i])
		}
	}
}

// TestWithOnlyBounds: out-of-range indices are ignored and an empty
// selection runs zero trials.
func TestWithOnlyBounds(t *testing.T) {
	c := partitionCampaign(t)
	res, err := NewRunner(c, WithOnly([]int{-1, 2, c.Trials, c.Trials + 5})).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ran := 0
	for i, tr := range res.Trials {
		if !reflect.DeepEqual(tr, Trial{}) {
			if i != 2 {
				t.Fatalf("unexpected trial %d executed", i)
			}
			ran++
		}
	}
	if ran != 1 {
		t.Fatalf("ran %d trials, want 1 (only index 2 is in range)", ran)
	}

	empty, err := NewRunner(c, WithOnly([]int{})).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for i, tr := range empty.Trials {
		if !reflect.DeepEqual(tr, Trial{}) {
			t.Fatalf("empty selection executed trial %d", i)
		}
	}
}

// TestWithBaselineReuse runs the campaign against a precomputed baseline
// (the fabric worker's steady state: evaluate once, reuse per lease) and
// requires trials bit-identical to the self-evaluating run.
func TestWithBaselineReuse(t *testing.T) {
	c := partitionCampaign(t)
	full, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	base := c.EvalBaseline()
	res, err := NewRunner(c, WithBaseline(base)).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Baseline != base {
		t.Fatal("result did not adopt the provided baseline")
	}
	for i := range full.Trials {
		if !reflect.DeepEqual(res.Trials[i], full.Trials[i]) {
			t.Fatalf("trial %d differs under reused baseline:\ngot  %+v\nwant %+v", i, res.Trials[i], full.Trials[i])
		}
	}

	// The standalone evaluation itself must match the runner's own.
	for i := range full.Baseline.Instances {
		a, b := &full.Baseline.Instances[i], &base.Instances[i]
		if a.Text != b.Text || a.Steps != b.Steps || !reflect.DeepEqual(a.Metrics, b.Metrics) {
			t.Fatalf("EvalBaseline instance %d differs:\nrun  %+v\neval %+v", i, a, b)
		}
	}
}
