package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/abft"
	"repro/internal/faults"
	"repro/internal/gen"
	"repro/internal/metrics"
	"repro/internal/mitigate"
	"repro/internal/model"
	"repro/internal/outcome"
	"repro/internal/prng"
	"repro/internal/tasks"
	"repro/internal/token"
	"repro/internal/trace"
)

// Campaign describes one statistical fault-injection configuration: a
// model, a task suite, a fault model, and how many uniformly-sampled
// injection trials to run.
type Campaign struct {
	Model  *model.Model
	Suite  *tasks.Suite
	Fault  faults.Model
	Trials int
	Seed   uint64
	// Filter restricts the injectable layers (nil = all block linears;
	// faults.GateOnly reproduces the Figure 15 gate-layer campaign).
	Filter faults.TargetFilter
	// Gen carries decoding settings (NumBeams; MaxNewTokens comes from
	// each instance). Zero value = greedy with EOS stop.
	Gen gen.Settings
	// Check overrides the answer criterion (nil = DefaultChecker).
	Check AnswerChecker
	// ReasoningOnly restricts computational-fault iterations to the
	// reasoning segment of the baseline output (the CoT study, §4.3.2).
	ReasoningOnly bool
	// Workers bounds the worker pool (0 = GOMAXPROCS). Each worker owns
	// a model clone, so memory-fault flips never leak across trials.
	Workers int
	// Thresholds tunes the distortion classifier.
	Thresholds outcome.Thresholds
	// ExtraHook, when non-nil, supplies an additional forward hook
	// installed for the baseline and for every trial AFTER the fault
	// hook — the slot where deployed mitigations (e.g. range
	// restriction, internal/mitigate) run, seeing the corrupted values
	// exactly as real protection software would. The factory is invoked
	// once per installation; share state through the closure if the
	// mitigation needs campaign-wide counters.
	ExtraHook func() model.Hook
	// ABFT, when non-nil, arms the online checksum detector
	// (internal/abft) for every trial: each worker owns a Checker whose
	// clean-weight checksums are computed before the trial's fault is
	// armed, and each trial's verdicts land in Trial.Detection. The
	// baseline runs unchecked — it is the fault-free reference.
	ABFT *ABFTConfig
	// BatchDecode enables continuous-batching decode: each worker keeps up
	// to BatchDecode trials in flight, running one stacked forward pass
	// per token across all of them and admitting the next trial as soon as
	// one retires (≤1 = serial decode). Observationally inert — every
	// trial's computation, hooks, checker verdicts, and sampled randomness
	// are bit-identical to the serial path — so it is deliberately
	// excluded from the checkpoint Fingerprint (like tracing, a resumed
	// campaign may change it freely). Campaigns the batched path cannot
	// express (multiple-choice scoring, memory faults, beam search) fall
	// back to serial decode automatically; see batchEligible.
	BatchDecode int

	// noPrefixReuse forces every trial through full prefill and
	// deepClones gives every worker a deep model copy — together they
	// recover the seed execution path exactly. Test knobs for the golden
	// equivalence tests; production campaigns leave them false.
	noPrefixReuse bool
	deepClones    bool

	// ckptPath/ckptEvery are the campaign-level checkpoint settings
	// (WithCheckpointPath / WithCheckpointInterval); NewRunner adopts
	// them as its defaults so Campaign.Run checkpoints without an
	// explicit RunnerOption. Deliberately outside the Fingerprint:
	// where (and how often) completed trials are persisted never
	// changes what they contain.
	ckptPath  string
	ckptEvery int
}

// ABFTConfig configures the campaign's online detection layer.
type ABFTConfig struct {
	// Tol overrides the per-layer derived tolerance (0 = abft.DefaultTol
	// of each protected layer's input width).
	Tol float64
	// Policy is the response escalation: detect-only, recompute-correct,
	// or correct-or-skip (zero the row when recomputation still fails).
	Policy mitigate.Policy
	// AllLayers protects every block linear layer instead of only each
	// trial's sampled injection-site layer. Site-only protection is the
	// measurement configuration (the checked layer is always the struck
	// one); AllLayers is the deployment configuration whose full coverage
	// cost the BENCH_3 comparison measures.
	AllLayers bool
}

// Detection summarizes one trial's ABFT verdicts.
type Detection struct {
	// Checks counts checksum evaluations; Flagged the violations.
	Checks, Flagged int
	// AtSite reports a violation attributable to the injected fault: at
	// the site layer — for computational faults at the struck position,
	// for memory faults at any position (the resident corruption is live
	// for the whole trial).
	AtSite bool
	// Cascaded counts violations at other layers/positions while the
	// fault was live — downstream saturation of a genuine corruption, not
	// noise.
	Cascaded int
	// FalsePositives counts violations with no fault active: pure
	// accumulation noise crossing the tolerance.
	FalsePositives int
	// Corrected and Skipped count recompute-repaired and zeroed outputs.
	Corrected, Skipped int
}

// Trial is the outcome of one injection.
type Trial struct {
	Site     faults.Site
	Instance int
	// Fired reports whether the fault actually struck (a computational
	// fault targeting an iteration past the end of generation does not).
	Fired bool
	// Outcome classifies the trial against the fault-free baseline.
	Outcome outcome.Analysis
	// AnswerOK is correctness against the gold reference.
	AnswerOK bool
	// Choice is the selected option (multiple-choice suites).
	Choice int
	// Metrics are the trial's quality scores.
	Metrics map[metrics.Kind]float64
	// ExpertChanged reports a different MoE expert-selection trace than
	// the baseline (MoE greedy campaigns only).
	ExpertChanged bool
	// Steps is the decode-step count of the trial.
	Steps int
	// Detection is the trial's ABFT record (nil without Campaign.ABFT).
	Detection *Detection
}

// Result is a completed campaign.
type Result struct {
	Campaign Campaign
	Baseline *Baseline
	Trials   []Trial
}

// defaultGen returns the paper's default generation settings: greedy
// decoding, EOS stop, specials banned.
func defaultGen() gen.Settings {
	return gen.Settings{NumBeams: 1, StopToken: token.EOS, BanSpecials: true}
}

// validate checks the campaign configuration, wrapping the typed
// sentinel errors with detail so callers can test with errors.Is.
func (c Campaign) validate() error {
	if c.Trials <= 0 {
		return ErrNoTrials
	}
	if len(c.Suite.Instances) == 0 {
		return fmt.Errorf("%w: suite %s", ErrEmptySuite, c.Suite.Name)
	}
	if c.Model.Cfg.MaxSeq < c.Suite.MaxSeqNeeded() {
		return fmt.Errorf("%w: model %s context %d < suite %s need %d",
			ErrContextTooSmall,
			c.Model.Cfg.Name, c.Model.Cfg.MaxSeq, c.Suite.Name, c.Suite.MaxSeqNeeded())
	}
	return nil
}

// effective resolves the zero-value decoding settings and answer
// checker to the paper defaults.
func (c Campaign) effective() (gen.Settings, AnswerChecker) {
	check := c.Check
	if check == nil {
		check = DefaultChecker(c.Suite)
	}
	gs := c.Gen
	if gs.NumBeams == 0 {
		gs.NumBeams = 1
	}
	if gs.StopToken == 0 {
		gs.StopToken = token.EOS
		gs.BanSpecials = true
	}
	return gs, check
}

// Run executes the campaign to completion, honoring ctx cancellation.
// Trials are distributed over a worker pool; trial t derives its
// randomness from Split(t) of the campaign seed, so results are
// bit-identical for any worker count. For the event stream, checkpoint
// persistence, and telemetry, use NewRunner directly.
func (c Campaign) Run(ctx context.Context) (*Result, error) {
	return NewRunner(c).Run(ctx)
}

// spanTimes accumulates one trial's phase timings. The worker observes
// them into the telemetry histograms after the trial completes, and a
// traced trial additionally exports them as Record.Spans.
type spanTimes struct {
	prefill  time.Duration
	decode   time.Duration
	classify time.Duration
	abft     time.Duration
	mitigate time.Duration
	// steps is the decode-step count behind the decode span (0 for
	// multiple-choice scoring, where per-token timing is undefined).
	steps int
	// abftOn marks that a checker ran, so zero-duration check spans are
	// still meaningful observations.
	abftOn bool
}

// spans renders the accumulated timings as trace spans.
func (sp *spanTimes) spans() []trace.Span {
	s := []trace.Span{
		{Phase: trace.PhasePrefill, Seconds: sp.prefill.Seconds()},
		{Phase: trace.PhaseDecode, Seconds: sp.decode.Seconds(), Count: sp.steps},
	}
	if sp.steps > 0 {
		s = append(s, trace.Span{
			Phase:   trace.PhaseDecodeToken,
			Seconds: sp.decode.Seconds() / float64(sp.steps),
			Count:   sp.steps,
		})
	}
	if sp.abftOn {
		s = append(s,
			trace.Span{Phase: trace.PhaseABFTCheck, Seconds: sp.abft.Seconds()},
			trace.Span{Phase: trace.PhaseMitigate, Seconds: sp.mitigate.Seconds()})
	}
	return append(s, trace.Span{Phase: trace.PhaseClassify, Seconds: sp.classify.Seconds()})
}

// trialInstr carries the runner's per-trial instrumentation decisions
// into runTrial: whether this trial is propagation-traced and at what
// divergence tolerance.
type trialInstr struct {
	traced bool
	tol    float64
}

// timedChecker wraps the worker's LinearChecker to measure total time
// inside checks; the mitigation share is recovered from the inner
// checker's own clock so detection and repair report as separate phases.
type timedChecker struct {
	inner model.LinearChecker
	total time.Duration
}

func (tc *timedChecker) CheckLinear(ref model.LayerRef, pos int, w model.Weight, in, out []float32) {
	start := now()
	tc.inner.CheckLinear(ref, pos, w, in, out)
	tc.total += since(start)
}

// runTrial performs one injection on the worker's model clone. checker is
// the worker's ABFT detector (nil when the campaign runs without one).
// sp receives the trial's phase timings; a non-nil Record is returned
// when instr requested tracing.
func (c Campaign) runTrial(wm *model.Model, sampler *faults.Sampler, src *prng.Source, t int, baseline *Baseline, gs gen.Settings, check AnswerChecker, checker *abft.Checker, instr trialInstr, sp *spanTimes) (Trial, *trace.Record, error) {
	idx := t % len(c.Suite.Instances)
	inst := c.Suite.Instances[idx]
	base := &baseline.Instances[idx]

	// Effective reference: gold, or the fault-free output (self-relative).
	if inst.Reference == "" {
		inst.Reference = base.Reference
	}

	maxIters, promptLen := c.faultWindow(&inst, base)
	site := sampler.Sample(src, c.Fault, maxIters)

	// strikePos is the absolute token position a transient fault fires at;
	// resident (memory) faults are live everywhere (-1).
	strikePos := -1
	if !c.Fault.IsMemory() && c.Suite.Type != tasks.MultipleChoice {
		strikePos = promptLen + site.GenIter
	}
	var probe *trace.Probe
	if instr.traced && base.capture != nil {
		probe = trace.NewProbe(base.capture, trace.ProbeConfig{
			Tol: instr.tol, StrikePos: strikePos, Site: site.Layer,
		})
	}

	var timed *timedChecker
	if checker != nil {
		// Checksums must snapshot clean weights, so Protect precedes Arm.
		var perr error
		if c.ABFT.AllLayers {
			perr = checker.ProtectAll(wm)
		} else {
			perr = checker.Protect(wm, site.Layer)
		}
		if perr != nil {
			return Trial{}, nil, &TrialError{Index: t, Site: site, Err: perr}
		}
		checker.Reset()
		timed = &timedChecker{inner: checker}
		wm.SetChecker(timed)
		sp.abftOn = true
	}

	inj, err := faults.Arm(wm, site, promptLen)
	if err != nil {
		wm.SetChecker(nil)
		return Trial{}, nil, &TrialError{Index: t, Site: site, Err: err}
	}
	if c.ExtraHook != nil {
		// Mitigations observe values after the fault hook mutated them.
		wm.AddHook(c.ExtraHook())
	}
	if probe != nil {
		// The probe observes last — after the fault and any mitigation
		// hook have mutated the row — and never modifies it.
		wm.AddHook(probe.Hook())
	}
	var ib InstanceBaseline
	if c.reusePrefix(base) {
		ib = c.resumeInstance(wm, base, &inst, gs, check, sp)
	} else {
		ib = evalInstance(wm, c.Suite, &inst, gs, check, false, false, sp)
	}
	fired := inj.Fired
	inj.Disarm()
	wm.ClearHooks()

	trial := Trial{
		Site:     site,
		Instance: idx,
		Fired:    fired,
		AnswerOK: ib.AnswerOK,
		Choice:   ib.Choice,
		Metrics:  ib.Metrics,
		Steps:    ib.Steps,
	}
	if checker != nil {
		wm.SetChecker(nil)
		sp.mitigate = checker.MitigationTime()
		sp.abft = timed.total - sp.mitigate
		classifyStart := now()
		trial.Detection = summarizeDetection(checker, site, promptLen, fired)
		sp.classify += since(classifyStart)
	}
	classifyStart := now()
	if c.Suite.Type == tasks.MultipleChoice {
		masked := ib.Choice == base.Choice
		trial.Outcome = outcome.Analysis{Changed: !masked}
		if !masked {
			trial.Outcome.Class = outcome.SDCSubtle
		}
	} else {
		trial.Outcome = outcome.Classify(ib.Tokens, base.Tokens, ib.AnswerOK, c.Thresholds)
		if wm.Cfg.IsMoE() && gs.NumBeams <= 1 {
			trial.ExpertChanged = !expertTraceEqual(ib.ExpertTrace, base.ExpertTrace)
		}
	}
	sp.classify += since(classifyStart)

	var rec *trace.Record
	if instr.traced {
		rec = &trace.Record{
			Schema:     trace.SchemaVersion,
			Trial:      t,
			Instance:   idx,
			Fault:      site.Fault.String(),
			Site:       site.String(),
			Layer:      site.Layer.String(),
			Block:      site.Layer.Block,
			Bits:       site.Bits,
			HighestBit: site.HighestBit(),
			GenIter:    site.GenIter,
			StrikePos:  strikePos,
			Fired:      fired,
			Outcome:    trial.Outcome.Class.String(),
			AnswerOK:   trial.AnswerOK,
			Steps:      trial.Steps,
		}
		if probe != nil {
			probe.Fill(rec)
		}
		rec.Spans = sp.spans()
	}
	return trial, rec, nil
}

// batchEligible reports whether the campaign's trials can run through
// the continuous-batching decode scheduler. The batched path decodes
// from the baseline's post-prompt snapshot with per-row fault hooks, so
// it requires everything prefix reuse requires — and additionally a
// single greedy decode stream per trial: multiple-choice scoring has no
// decode loop, memory faults mutate the weights every in-flight sibling
// shares, and beam search forks states mid-decode.
func (c Campaign) batchEligible(gs gen.Settings) bool {
	return c.BatchDecode > 1 &&
		c.Suite.Type != tasks.MultipleChoice &&
		!c.Fault.IsMemory() &&
		gs.NumBeams <= 1 &&
		!c.noPrefixReuse
}

// reusePrefix reports whether a trial may resume from the baseline's
// post-prompt snapshot instead of re-running prefill. Sound only when the
// faulted computation is bit-identical to the fault-free one over the
// whole prompt: generative computational faults target absolute position
// promptLen + GenIter, which never lands inside the prompt. Memory faults
// corrupt the weights prefill itself reads, and multiple-choice scoring
// (promptLen 0) can be struck at any prompt position, so both keep the
// full path.
func (c Campaign) reusePrefix(base *InstanceBaseline) bool {
	return !c.noPrefixReuse &&
		c.Suite.Type != tasks.MultipleChoice &&
		!c.Fault.IsMemory() &&
		base.prefix != nil
}

// resumeInstance runs a trial from the baseline's shared prefix: the
// snapshot is forked onto the worker's clone (so the worker's fault and
// mitigation hooks fire from the first generated token) and decoding
// continues from a private copy of the snapshot logits — both decode
// strategies mask logits in place, so the shared slice must not be handed
// over directly.
func (c Campaign) resumeInstance(wm *model.Model, base *InstanceBaseline, inst *tasks.Instance, gs gen.Settings, check AnswerChecker, sp *spanTimes) InstanceBaseline {
	var ib InstanceBaseline
	gs.MaxNewTokens = inst.MaxNew
	gs.MinNewTokens = inst.MinNew
	prefillStart := now()
	st := base.prefix.ForkFor(wm)
	logits := append([]float32(nil), base.prefixLogits...)
	if sp != nil {
		// The fork stands in for prefill on this path.
		sp.prefill += since(prefillStart)
	}
	decodeStart := now()
	res := gen.GenerateFrom(wm, st, logits, gs)
	if sp != nil {
		sp.decode += since(decodeStart)
		sp.steps = res.Steps
	}
	// Steps is the runtime proxy for the modeled inference, which still
	// includes the prompt the snapshot stands in for.
	res.Steps += len(inst.Prompt)
	if wm.Cfg.IsMoE() && gs.NumBeams <= 1 {
		ib.ExpertTrace = st.ExpertTrace
	}
	classifyStart := now()
	finishGenerative(&ib, c.Suite, inst, res, check, false)
	if sp != nil {
		sp.classify += since(classifyStart)
	}
	return ib
}

// faultWindow returns the iteration window and the Arm promptLen for an
// instance: computational faults on generative tasks strike a uniformly
// random generation iteration within the baseline's actual output length
// (§3.2 "randomly choose a single token generation iteration");
// multiple-choice scoring has no generation, so the transient may strike
// during any token of the scoring passes.
func (c Campaign) faultWindow(inst *tasks.Instance, base *InstanceBaseline) (maxIters, promptLen int) {
	if c.Suite.Type == tasks.MultipleChoice {
		longest := 0
		for _, o := range inst.Options {
			if len(o) > longest {
				longest = len(o)
			}
		}
		return len(inst.Prompt) + longest, 0
	}
	n := len(base.Tokens)
	if c.ReasoningOnly && base.ReasoningLen > 0 {
		n = base.ReasoningLen
	}
	if n < 1 {
		n = 1
	}
	return n, len(inst.Prompt)
}

// summarizeDetection folds the checker's per-trial event log into the
// Trial.Detection record, attributing each violation to the injected
// fault, to its downstream cascade, or to noise.
func summarizeDetection(checker *abft.Checker, site faults.Site, promptLen int, fired bool) *Detection {
	st := checker.Stats()
	d := &Detection{
		Checks:    st.Checks,
		Flagged:   st.Flagged,
		Corrected: st.Corrected,
		Skipped:   st.Skipped,
	}
	target := promptLen + site.GenIter
	for _, ev := range checker.Events() {
		switch {
		case ev.Ref == site.Layer && (site.Fault.IsMemory() || ev.Pos == target):
			d.AtSite = true
		case site.Fault.IsMemory() || (fired && ev.Pos >= target):
			// The fault was live when this check ran: a flag elsewhere is
			// the corruption propagating (e.g. float32 saturation of a
			// downstream GEMM), not detector noise.
			d.Cascaded++
		default:
			d.FalsePositives++
		}
	}
	return d
}

// expertTraceEqual compares two per-block expert selection traces.
func expertTraceEqual(a, b [][]int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}
