// Package core is the paper's methodology as a library: it evaluates
// fault-free baselines, runs statistical fault-injection campaigns over
// (model, task-suite, fault-model) configurations with a worker pool, and
// aggregates the outcomes into the normalized-performance numbers, SDC
// breakdowns, and bit-position profiles that the figures report.
package core

import (
	"strconv"
	"strings"

	"repro/internal/gen"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/tasks"
	"repro/internal/trace"
)

// AnswerChecker decides whether a generated token sequence answers an
// instance correctly — the Masked/SDC criterion for direct-answer tasks.
type AnswerChecker func(inst *tasks.Instance, generated []int) bool

// DefaultChecker derives the answer criterion from the suite: math suites
// compare the extracted number after the '#' marker against the gold
// answer; other generative suites compare the full text against the
// reference (so Masked = unchanged output, the strictest reading).
func DefaultChecker(suite *tasks.Suite) AnswerChecker {
	if strings.HasPrefix(suite.Name, "gsm8k") {
		marker := suite.Vocab.ID(tasks.MathAnswer)
		return func(inst *tasks.Instance, generated []int) bool {
			want, err := strconv.Atoi(inst.Reference)
			if err != nil {
				return false
			}
			got, ok := extractNumber(generated, marker, suite)
			return ok && got == want
		}
	}
	return func(inst *tasks.Instance, generated []int) bool {
		return suite.Vocab.Decode(generated) == inst.Reference
	}
}

// extractNumber returns the number following the last marker token,
// falling back to the last number token in the sequence.
func extractNumber(toks []int, marker int, suite *tasks.Suite) (int, bool) {
	val, found := 0, false
	for i, tok := range toks {
		v, err := strconv.Atoi(suite.Vocab.Word(tok))
		if err != nil {
			continue
		}
		if i > 0 && toks[i-1] == marker {
			val, found = v, true
		}
	}
	if found {
		return val, true
	}
	for i := len(toks) - 1; i >= 0; i-- {
		if v, err := strconv.Atoi(suite.Vocab.Word(toks[i])); err == nil {
			return v, true
		}
	}
	return 0, false
}

// reasoningLen returns the number of generated tokens before the math
// answer marker (the reasoning segment of §4.3.2).
func reasoningLen(toks []int, suite *tasks.Suite) int {
	marker := suite.Vocab.ID(tasks.MathAnswer)
	for i, tok := range toks {
		if tok == marker {
			return i
		}
	}
	return len(toks)
}

// InstanceBaseline is the fault-free result for one instance.
type InstanceBaseline struct {
	// Choice is the selected option (multiple-choice only).
	Choice int
	// Tokens / Text are the fault-free generation (generative only).
	Tokens []int
	Text   string
	// Reference is the effective reference text: the instance gold
	// reference, or the fault-free output when the instance has none
	// (self-relative evaluation for the untrained profile models).
	Reference string
	// Metrics are the fault-free quality scores against Reference.
	Metrics map[metrics.Kind]float64
	// AnswerOK reports whether the fault-free answer was correct.
	AnswerOK bool
	// ReasoningLen is the generated-token count before the math answer
	// marker (math suites only).
	ReasoningLen int
	// ExpertTrace records MoE expert selections per block (MoE greedy
	// decoding only).
	ExpertTrace [][]int
	// Steps counts decode steps (the runtime proxy of Figure 19).
	Steps int

	// prefix is the post-prompt KV snapshot captured during the fault-free
	// run, and prefixLogits the logits after the final prompt token. The
	// campaign engine forks trials from them instead of re-running prefill
	// when that is sound (generative computational faults, whose target
	// iteration lies past the prompt). Baseline-only; nil after Rerun.
	prefix       *model.State
	prefixLogits []float32
	// capture holds the instance's clean per-layer activations when the
	// runner traces the campaign: the propagation probes of sampled
	// trials diff against it, so tracing never re-runs a clean forward.
	// Sealed (read-only) before workers start.
	capture *trace.Capture
}

// Baseline is the fault-free evaluation of a suite on a model.
type Baseline struct {
	Suite     *tasks.Suite
	Instances []InstanceBaseline
	// MetricMeans holds the mean fault-free score per metric — the
	// P_fault_free denominators of the normalization.
	MetricMeans map[metrics.Kind]float64
	// GoldAccuracy is the fault-free accuracy against gold answers.
	GoldAccuracy float64
	// TotalSteps sums decode steps over all instances.
	TotalSteps int
}

// EvalBaseline runs the suite fault-free on m with the given generation
// settings (NumBeams etc.; MaxNewTokens is set per instance).
func EvalBaseline(m *model.Model, suite *tasks.Suite, gs gen.Settings, check AnswerChecker) *Baseline {
	return evalBaseline(m, suite, gs, check, nil)
}

// EvalBaseline evaluates the campaign's fault-free baseline with its
// effective decoding settings and answer checker — the same evaluation
// every runner of the campaign performs. The fabric coordinator uses it
// to complete the merged distributed Result: the baseline is
// deterministic, so the coordinator's copy is bit-identical to the one
// each worker computed locally.
func (c Campaign) EvalBaseline() *Baseline {
	gs, check := c.effective()
	return evalBaseline(c.Model, c.Suite, gs, check, nil)
}

// evalBaseline is EvalBaseline plus optional activation capture: when
// capMinPos is non-nil, each instance's clean per-layer outputs from
// position capMinPos(inst) onward are recorded (via a temporary hook on
// m) into InstanceBaseline.capture for the propagation probes.
func evalBaseline(m *model.Model, suite *tasks.Suite, gs gen.Settings, check AnswerChecker, capMinPos func(inst *tasks.Instance) int) *Baseline {
	if check == nil {
		check = DefaultChecker(suite)
	}
	b := &Baseline{Suite: suite, MetricMeans: map[metrics.Kind]float64{}}
	goldHits := 0
	for i := range suite.Instances {
		inst := &suite.Instances[i]
		var cc *trace.Capture
		if capMinPos != nil {
			cc = trace.NewCapture(capMinPos(inst))
			m.AddHook(cc.Hook())
		}
		ib := evalInstance(m, suite, inst, gs, check, true, true, nil)
		if cc != nil {
			m.PopHook()
			cc.Seal()
			ib.capture = cc
		}
		b.Instances = append(b.Instances, ib)
		if ib.AnswerOK {
			goldHits++
		}
		for k, v := range ib.Metrics {
			b.MetricMeans[k] += v
		}
		b.TotalSteps += ib.Steps
	}
	n := float64(len(suite.Instances))
	for k := range b.MetricMeans {
		b.MetricMeans[k] /= n
	}
	b.GoldAccuracy = float64(goldHits) / n
	return b
}

// evalInstance runs one instance on the (possibly fault-armed) model.
// selfRefOK makes an empty instance reference count as a correct answer
// (fault-free runs define the reference). snap additionally captures the
// post-prompt state and logits into the returned baseline so later trials
// can resume from the shared prefix. sp, when non-nil, receives the
// phase timings (prefill/decode/classify) of the run.
func evalInstance(m *model.Model, suite *tasks.Suite, inst *tasks.Instance, gs gen.Settings, check AnswerChecker, selfRefOK, snap bool, sp *spanTimes) InstanceBaseline {
	var ib InstanceBaseline
	if suite.Type == tasks.MultipleChoice {
		decodeStart := now()
		choice, _ := gen.ChooseOption(m, inst.Prompt, inst.Options)
		if sp != nil {
			// Option scoring interleaves prefill and scoring passes; the
			// whole evaluation reports as one decode span (steps 0, so no
			// per-token observation is derived).
			sp.decode += since(decodeStart)
		}
		ib.Choice = choice
		ib.AnswerOK = choice == inst.Gold
		ib.Metrics = map[metrics.Kind]float64{metrics.KindAccuracy: b2f(ib.AnswerOK)}
		ib.Steps = scoreSteps(inst)
		return ib
	}

	gs.MaxNewTokens = inst.MaxNew
	gs.MinNewTokens = inst.MinNew
	st := m.NewState()
	// Expert-trace comparison is only defined for the single-path greedy
	// mode used by the MoE study (beam search forks states).
	expertTrace := m.Cfg.IsMoE() && gs.NumBeams <= 1
	if expertTrace {
		st.EnableExpertTrace()
	}
	prefillStart := now()
	logits := st.Prefill(inst.Prompt)
	if sp != nil {
		sp.prefill += since(prefillStart)
	}
	if snap {
		ib.prefix = st.Fork()
		ib.prefixLogits = append([]float32(nil), logits...)
	}
	decodeStart := now()
	res := gen.GenerateFrom(m, st, logits, gs)
	if sp != nil {
		sp.decode += since(decodeStart)
		sp.steps = res.Steps
	}
	res.Steps += len(inst.Prompt)
	if expertTrace {
		ib.ExpertTrace = st.ExpertTrace
	}
	classifyStart := now()
	finishGenerative(&ib, suite, inst, res, check, selfRefOK)
	if sp != nil {
		sp.classify += since(classifyStart)
	}
	return ib
}

// finishGenerative scores a completed generation into ib — shared by the
// full path above and the campaign's resume-from-prefix path.
func finishGenerative(ib *InstanceBaseline, suite *tasks.Suite, inst *tasks.Instance, res gen.Result, check AnswerChecker, selfRefOK bool) {
	ib.Tokens = res.Tokens
	ib.Text = suite.Vocab.Decode(res.Tokens)
	ib.Steps = res.Steps

	ib.Reference = inst.Reference
	if ib.Reference == "" {
		ib.Reference = ib.Text
		ib.AnswerOK = selfRefOK
	} else {
		ib.AnswerOK = check(inst, res.Tokens)
	}
	ib.Metrics = scoreGenerative(suite, ib.Text, ib.Reference, ib.AnswerOK)
	if strings.HasPrefix(suite.Name, "gsm8k") {
		ib.ReasoningLen = reasoningLen(res.Tokens, suite)
	}
}

// RerunInstance executes one instance on m (typically with a fault armed
// by the caller) and returns the output text — the chosen option for
// multiple-choice suites, the decoded generation otherwise. Campaign
// trials store metrics rather than full outputs; reports re-run the
// interesting trials through this to show example outputs (Figures 7,
// 12, 15).
func RerunInstance(m *model.Model, suite *tasks.Suite, inst *tasks.Instance) string {
	ib := evalInstance(m, suite, inst, defaultGen(), DefaultChecker(suite), false, false, nil)
	if suite.Type == tasks.MultipleChoice {
		return suite.Vocab.DecodeAll(inst.Options[ib.Choice])
	}
	return ib.Text
}

// scoreSteps estimates decode steps for a multiple-choice instance: the
// prompt plus each option is processed once per option scoring.
func scoreSteps(inst *tasks.Instance) int {
	steps := 0
	for _, opt := range inst.Options {
		steps += len(inst.Prompt) + len(opt)
	}
	return steps
}

// scoreGenerative computes the suite's metrics for a candidate text.
func scoreGenerative(suite *tasks.Suite, text, reference string, answerOK bool) map[metrics.Kind]float64 {
	out := make(map[metrics.Kind]float64, len(suite.Metrics))
	for _, k := range suite.Metrics {
		if k == metrics.KindAccuracy {
			out[k] = b2f(answerOK)
			continue
		}
		out[k] = metrics.ByKind(k)(text, reference)
	}
	return out
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
